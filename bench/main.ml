(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7).

     dune exec bench/main.exe              run everything
     dune exec bench/main.exe -- fig1      Fig. 1c  worked examples
     dune exec bench/main.exe -- tables    Tbl. 1 & Tbl. 5 (capability tables)
     dune exec bench/main.exe -- fig7      Fig. 7   CPU-time distribution
     dune exec bench/main.exe -- table2    Tbl. 2   bug classes found per target
     dune exec bench/main.exe -- table3    Tbl. 3   BMv2 bug details
     dune exec bench/main.exe -- table4a   Tbl. 4a  large-program statistics
     dune exec bench/main.exe -- table4b   Tbl. 4b  precondition effect
     dune exec bench/main.exe -- bechamel  micro-benchmarks (one per driver)
     dune exec bench/main.exe -- json F [N] [D..]   machine-readable results -> F
                                           (default bench.json; a bare integer N
                                           sets --path-jobs, other args filter
                                           the driver list)
     dune exec bench/main.exe -- compare B [F] [--noise-ms N]  diff two json
                                           files; exit 1 on a >10% wall-clock
                                           regression past the noise floor
                                           (default 50ms) or any solver.checks
                                           increase vs baseline B (warns when
                                           the two hosts differ)
     dune exec bench/main.exe -- qcache [F]  query-cache gate: every driver with
                                           the cache off vs on must emit
                                           bit-identical suites (also pj1 vs
                                           pj4) and spend >=30% fewer solver
                                           checks; cache-on rows -> F
                                           (default BENCH_pr9.json)
     dune exec bench/main.exe -- corpus [F] [N]  coverage-guided-corpus gate:
                                           the selftest campaign at N cases
                                           (default 60) in corpus mode must
                                           beat pure random on coverage per
                                           1000 cases; row -> F
                                           (default BENCH_pr10.json)
     dune exec bench/main.exe -- scaling [D] [F]  wall-clock + speedup per
                                           path-jobs in {1,2,4,8} on driver D
                                           (default middleblock_2acl -> BENCH_pr6.json)
     dune exec bench/main.exe -- gate [F]  parallel-speedup gate over a scaling
                                           document: for every driver doing real
                                           work, path-jobs 4 must not be slower
                                           than path-jobs 1 (50ms noise floor)

   Absolute numbers differ from the paper (its substrate was BMv2/Tofino
   hardware and 13-hour runs); the *shape* of each result is the claim
   being reproduced — see EXPERIMENTS.md. *)

module Bits = Bitv.Bits
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime

let hr () = print_endline (String.make 78 '-')

let header title =
  hr ();
  Printf.printf "%s\n" title;
  hr ()

let target_of arch = Option.get (Targets.Registry.find arch)

let generate ?(opts = Runtime.default_options) ?(config = Explore.default_config) arch src =
  Oracle.generate ~opts ~config (target_of arch) src

(* ------------------------------------------------------------------ *)
(* Fig. 1c: worked examples *)

let fig1 () =
  header "Fig. 1c — tests generated for the programs of Fig. 1a / Fig. 1b";
  let show name src =
    Printf.printf "--- %s ---\n" name;
    Printf.printf "%-8s %-5s %-30s %-5s %-30s %s\n" "SizeIn" "In" "Input data" "Out"
      "Output data" "Config";
    let run = generate "v1model" src in
    List.iter
      (fun (t : Testgen.Testspec.t) ->
        let out_port, out_data =
          match (Testgen.Testspec.outputs t) with
          | [] -> ("X", "(drop)")
          | o :: _ -> (string_of_int (Bits.to_int o.port), Bits.to_hex o.data)
        in
        Printf.printf "%-8d %-5d %-30s %-5s %-30s %s\n" (Bits.width (Testgen.Testspec.input t).data)
          (Bits.to_int (Testgen.Testspec.input t).port) (Bits.to_hex (Testgen.Testspec.input t).data) out_port out_data
          (String.concat "; " (List.map (fun e -> Format.asprintf "%a" Testgen.Testspec.pp_entry e) t.entries)))
      run.Oracle.result.Explore.tests;
    print_newline ()
  in
  show "Fig. 1a (forward on EtherType)" Progzoo.Corpus.fig1a;
  show "Fig. 1b (checksum validation, concolic)" Progzoo.Corpus.fig1b

(* ------------------------------------------------------------------ *)
(* Tbl. 1 and Tbl. 5 *)

let tables () =
  header "Tbl. 1 — P4Testgen extensions";
  Printf.printf "%-14s %-14s %s\n" "Architecture" "Target" "Test back ends";
  List.iter
    (fun (arch, (device, backends)) ->
      Printf.printf "%-14s %-14s %s\n" arch device (String.concat ", " backends))
    Targets.Registry.capabilities;
  print_newline ();
  header "Tbl. 5 — tools that test the P4 toolchain (static comparison)";
  Printf.printf "%-12s %-12s %-12s %-16s %s\n" "Tool" "Method" "No input?" "Target agnostic"
    "Target semantics";
  List.iter
    (fun (t, m, ni, ta, ts) -> Printf.printf "%-12s %-12s %-12s %-16s %s\n" t m ni ta ts)
    [
      ("Gauntlet", "Symbex", "yes", "yes", "no");
      ("Meissa", "Symbex", "no", "no", "yes");
      ("SwitchV", "Hybrid", "no", "no", "yes");
      ("Petr4", "Symbex", "no", "yes", "yes");
      ("p4pktgen", "Symbex", "yes", "no", "no");
      ("PTA", "Fuzzing", "no", "yes", "no");
      ("DBVal", "Fuzzing", "no", "yes", "no");
      ("FP4", "Fuzzing", "no", "yes", "no");
      ("P4Testgen", "Symbex", "yes", "yes", "yes");
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 7: CPU-time distribution *)

let fig7 () =
  header "Fig. 7 — average CPU time spent in P4Testgen phases";
  let sample name arch src config =
    let p = Oracle.prepare (target_of arch) src in
    let prep = p.Oracle.prep_time in
    let st = Oracle.initial_state p in
    let result = Explore.run ~config p.Oracle.ctx st in
    let total = prep +. result.Explore.total_time in
    let solve = result.Explore.solve_time in
    let step = result.Explore.stats.Explore.t_step in
    let emit = result.Explore.stats.Explore.t_emit in
    let emit_solve = result.Explore.stats.Explore.t_emit_solve in
    (* emission includes its own solver calls; attribute them to the
       solver bucket and keep buckets disjoint *)
    let emit_pure = max 0.0 (emit -. emit_solve) in
    let other = max 0.0 (total -. prep -. step -. solve -. emit_pure) in
    let pct x = 100.0 *. x /. total in
    Printf.printf "%-24s %6d tests  %6.2fs total\n" name
      (List.length result.Explore.tests) total;
    Printf.printf "    IR preparation     %5.1f%%\n" (pct prep);
    Printf.printf "    symbolic stepping  %5.1f%%\n" (pct step);
    Printf.printf "    SMT solving        %5.1f%%   (the paper reports < 10%% for Z3)\n"
      (pct solve);
    Printf.printf "    test emission      %5.1f%%\n" (pct emit_pure);
    Printf.printf "    other              %5.1f%%\n" (pct other);
    (pct solve, total)
  in
  let cap n = { Explore.default_config with Explore.max_tests = Some n } in
  let s1, _ = sample "middleblock (2 ACLs)" "v1model" (Progzoo.Generators.middleblock ~acl_stages:2 ()) (cap 400) in
  let s2, _ = sample "up4" "v1model" (Progzoo.Generators.up4 ()) Explore.default_config in
  let s3, _ = sample "switch (6 stages, tna)" "tna" (Progzoo.Generators.switch_tna ~stages:6 ()) (cap 400) in
  Printf.printf "\nsolver share across programs: %.1f%% / %.1f%% / %.1f%%\n" s1 s2 s3

(* ------------------------------------------------------------------ *)
(* Tbl. 2 / Tbl. 3: the bug-finding study, shared with the selftest
   subsystem's mutation scorer (which also runs on dune runtest) *)

module Mutscore = Selftest.Mutscore

let campaign () = Mutscore.score ()

let table2 () =
  header "Tbl. 2 — toolchain bugs discovered, by type and target";
  Printf.printf "(reproduced as a seeded-fault campaign: %d faults injected into the\n"
    (List.length Sim.Mutation.corpus);
  Printf.printf " simulated toolchains; a fault counts as a discovered bug when at least\n";
  Printf.printf " one generated test exposes it)\n\n";
  let results = campaign () in
  (* a detected fault counts under the bug's class (as the paper's
     tables classify bugs, not failure symptoms) *)
  let count target kind =
    List.length
      (List.filter
         (fun ((m : Sim.Mutation.t), d) ->
           m.m_target = target && m.m_kind = kind && d <> Mutscore.Undetected)
         results)
  in
  let undetected = Mutscore.undetected results in
  Printf.printf "%-12s %-8s %-8s %s\n" "Bug Type" "BMv2" "Tofino" "Total";
  let exc_b = count "BMv2" Sim.Mutation.Exception
  and exc_t = count "Tofino" Sim.Mutation.Exception in
  let wrg_b = count "BMv2" Sim.Mutation.Wrong_code
  and wrg_t = count "Tofino" Sim.Mutation.Wrong_code in
  Printf.printf "%-12s %-8d %-8d %d\n" "Exception" exc_b exc_t (exc_b + exc_t);
  Printf.printf "%-12s %-8d %-8d %d\n" "Wrong Code" wrg_b wrg_t (wrg_b + wrg_t);
  Printf.printf "%-12s %-8d %-8d %d\n" "Total" (exc_b + wrg_b) (exc_t + wrg_t)
    (exc_b + wrg_b + exc_t + wrg_t);
  Printf.printf "(paper: Exception 8/9/17, Wrong Code 1/7/8, Total 9/16/25)\n";
  if undetected <> [] then begin
    Printf.printf "\nundetected faults:\n";
    List.iter
      (fun ((m : Sim.Mutation.t), _) ->
        Printf.printf "  %-8s %s\n" m.m_label m.m_desc)
      undetected
  end

let table3 () =
  header "Tbl. 3 — BMv2/P4C bugs (details and campaign status)";
  let results = campaign () in
  Printf.printf "%-9s %-10s %-12s %s\n" "Bug" "Status" "Type" "Description";
  List.iter
    (fun ((m : Sim.Mutation.t), d) ->
      if m.m_target = "BMv2" then
        Printf.printf "%-9s %-10s %-12s %s\n" m.m_label
          (match d with Mutscore.Detected _ -> "Detected" | Mutscore.Undetected -> "Missed")
          (Sim.Mutation.kind_name m.m_kind) m.m_desc)
    results

(* ------------------------------------------------------------------ *)
(* Tbl. 4a: large-program statistics *)

let table4a () =
  header "Tbl. 4a — P4Testgen statistics for large P4 programs";
  Printf.printf "%-26s %-9s %-12s %-9s %s\n" "P4 program" "Arch." "Valid tests" "Time"
    "Stmt. cov.";
  let row name arch src cap =
    let config = { Explore.default_config with Explore.max_tests = cap } in
    let run = generate arch src ~config in
    let r = run.Oracle.result in
    let n = List.length r.Explore.tests in
    let capped = match cap with Some c when n >= c -> true | _ -> false in
    Printf.printf "%-26s %-9s %-12s %-9s %.0f%%\n" name arch
      ((if capped then ">" else "") ^ string_of_int n)
      (Printf.sprintf "%.1fs" r.Explore.total_time)
      (Explore.coverage_pct r)
  in
  row "middleblock (2 ACLs)" "v1model" (Progzoo.Generators.middleblock ~acl_stages:2 ()) None;
  row "up4" "v1model" (Progzoo.Generators.up4 ()) None;
  row "switch (8 stages)" "tna" (Progzoo.Generators.switch_tna ~stages:8 ()) (Some 1000);
  row "switch (8 stages)" "t2na" (Progzoo.Generators.switch_tna ~stages:8 ()) (Some 1000);
  Printf.printf
    "(paper: middleblock ~238k/13h/100%%, up4 ~34k/2h/95%%, switch >1000k/41%% and 30%%;\n\
    \ shape to check: middleblock reaches full coverage, up4 stops short of 100%%\n\
    \ because the unconfigured meter never returns RED, switch is capped with\n\
    \ coverage well below the others)\n"

(* ------------------------------------------------------------------ *)
(* Tbl. 4b: effect of preconditions *)

let table4b () =
  header "Tbl. 4b — preconditions vs number of generated tests (middleblock)";
  let src = Progzoo.Generators.middleblock ~acl_stages:2 () in
  let run_with name constraints fixed =
    let opts =
      {
        Runtime.default_options with
        apply_constraints = constraints;
        fixed_packet_bytes = fixed;
      }
    in
    let run = generate ~opts "v1model" src in
    let r = run.Oracle.result in
    (name, r.Explore.stats.Explore.paths, Explore.coverage_pct r)
  in
  let rows =
    [
      run_with "None" false None;
      run_with "Fixed-size pkt. (1500B)" false (Some 1500);
      run_with "P4-constraints" true None;
      run_with "P4-constraints & fixed-size" true (Some 1500);
    ]
  in
  let base = match rows with (_, n, _) :: _ -> float_of_int n | [] -> 1.0 in
  Printf.printf "%-30s %-18s %-11s %s\n" "Applied precondition" "Valid test paths" "Reduction"
    "Stmt. cov.";
  List.iter
    (fun (name, n, cov) ->
      Printf.printf "%-30s %-18d %-11s %.0f%%\n" name n
        (Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (float_of_int n /. base))))
        cov)
    rows;
  Printf.printf "(paper: 237846/0%%, 178384/25%%, 135719/43%%, 101789/57%%; all 100%% coverage)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment driver *)

let bechamel () =
  header "Bechamel micro-benchmarks (one per table/figure driver)";
  let open Bechamel in
  let stage f = Staged.stage f in
  let t_fig1 =
    Test.make ~name:"fig1c-oracle-fig1a" (stage (fun () -> ignore (generate "v1model" Progzoo.Corpus.fig1a)))
  in
  let t_fig1b =
    Test.make ~name:"fig1c-oracle-fig1b-concolic"
      (stage (fun () -> ignore (generate "v1model" Progzoo.Corpus.fig1b)))
  in
  let mb_src = Progzoo.Generators.middleblock ~acl_stages:1 () in
  let t_4a =
    Test.make ~name:"table4a-middleblock-50tests"
      (stage (fun () ->
           let config = { Explore.default_config with Explore.max_tests = Some 50 } in
           ignore (generate ~config "v1model" mb_src)))
  in
  let t_4b =
    Test.make ~name:"table4b-preconditions"
      (stage (fun () ->
           let opts =
             { Runtime.default_options with fixed_packet_bytes = Some 1500 }
           in
           let config = { Explore.default_config with Explore.max_tests = Some 50 } in
           ignore (generate ~opts ~config "v1model" mb_src)))
  in
  let fig1a_tests =
    (generate "v1model" Progzoo.Corpus.fig1a).Oracle.result.Explore.tests
  in
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.fig1a in
  let t_2 =
    Test.make ~name:"table2-sim-executes-suite"
      (stage (fun () -> ignore (Sim.Harness.run_suite sim fig1a_tests)))
  in
  let t_7 =
    Test.make ~name:"fig7-solver-query"
      (stage (fun () ->
           let ectx = Smt.Expr.create_ctx () in
           let s = Smt.Solver.create ectx in
           let x = Smt.Expr.fresh_var ectx "bench_x" 32 in
           Smt.Solver.assert_ s
             (Smt.Expr.eq
                (Smt.Expr.mul x (Smt.Expr.of_int ectx ~width:32 3))
                (Smt.Expr.of_int ectx ~width:32 123));
           ignore (Smt.Solver.check s)))
  in
  let grouped =
    Test.make_grouped ~name:"p4testgen" [ t_fig1; t_fig1b; t_4a; t_4b; t_2; t_7 ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] -> Printf.printf "%-40s %12.1f us/run\n" name (ns /. 1000.0)
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Corpus-wide batch generation across domains *)

let batch jobs =
  header (Printf.sprintf "Batch — corpus-wide generation on %d domain(s)" jobs);
  let arch_of = function
    | "ebpf_filter" -> "ebpf_model"
    | "tna_basic" -> "tna"
    | _ -> "v1model"
  in
  let js =
    List.map
      (fun (name, src) -> Oracle.job ~label:name (target_of (arch_of name)) src)
      Progzoo.Corpus.all
  in
  (* the large generated programs carry most of the work; without them
     the corpus is too small for the domain fan-out to pay off *)
  let cap = { Explore.default_config with Explore.max_tests = Some 300 } in
  let big =
    [
      Oracle.job ~label:"middleblock" ~config:cap (target_of "v1model")
        (Progzoo.Generators.middleblock ~acl_stages:2 ());
      Oracle.job ~label:"up4" ~config:cap (target_of "v1model") (Progzoo.Generators.up4 ());
      Oracle.job ~label:"switch4_tna" ~config:cap (target_of "tna")
        (Progzoo.Generators.switch_tna ~stages:4 ());
      Oracle.job ~label:"switch6_tna" ~config:cap (target_of "tna")
        (Progzoo.Generators.switch_tna ~stages:6 ());
    ]
  in
  let b = Oracle.generate_batch ~jobs (big @ js) in
  List.iter
    (fun (label, o) ->
      match o with
      | Oracle.Finished r ->
          Printf.printf "%-20s %5d tests  %6.2fs
" label
            (List.length r.Oracle.result.Explore.tests)
            r.Oracle.result.Explore.total_time
      | Oracle.Failed msg -> Printf.printf "%-20s FAILED: %s
" label msg)
    b.Oracle.outcomes;
  Printf.printf "
%d paths / %d tests across the corpus; wall-clock %.2fs on %d domain(s)
"
    b.Oracle.merged_stats.Explore.paths b.Oracle.merged_stats.Explore.tests
    b.Oracle.batch_wall jobs

(* ------------------------------------------------------------------ *)
(* Machine-readable results: one JSON document over the standard
   drivers, for plotting / regression tracking outside the repo *)

let std_drivers () =
  let cap n = { Explore.default_config with Explore.max_tests = Some n } in
  let dflt = Runtime.default_options in
  [
    ("fig1a", "v1model", Progzoo.Corpus.fig1a, dflt, Explore.default_config);
    ("fig1b", "v1model", Progzoo.Corpus.fig1b, dflt, Explore.default_config);
    ( "middleblock_2acl",
      "v1model",
      Progzoo.Generators.middleblock ~acl_stages:2 (),
      dflt,
      cap 400 );
    ("up4", "v1model", Progzoo.Generators.up4 (), dflt, Explore.default_config);
    ("switch6_tna", "tna", Progzoo.Generators.switch_tna ~stages:6 (), dflt, cap 400);
    (* register-dependent 2-packet sequences: exercises cross-packet
       extern-state continuity on the oracle's hot path *)
    ( "register_seq2",
      "v1model",
      Progzoo.Corpus.register_program,
      { dflt with Runtime.seq_packets = 2 },
      Explore.default_config );
  ]

(* Host identification, recorded in every JSON result row: scaling
   numbers from different machines must never be compared silently.
   [host_cores] counts the machine's processors (via /proc/cpuinfo
   where available); [Domain.recommended_domain_count] is what the
   runtime will actually fan out to. *)
let host_cores () =
  match In_channel.with_open_text "/proc/cpuinfo" In_channel.input_all with
  | exception Sys_error _ -> Domain.recommended_domain_count ()
  | s ->
      let n =
        List.length
          (List.filter
             (fun l -> String.length l >= 9 && String.sub l 0 9 = "processor")
             (String.split_on_char '\n' s))
      in
      if n > 0 then n else Domain.recommended_domain_count ()

(* one measured oracle run, printed and rendered as a JSON object;
   shared by [json] and [scaling] *)
let json_row name arch src opts config =
  let run = generate ~opts ~config arch src in
  let r = run.Oracle.result in
  Printf.printf "%-20s %5d tests  %6.2fs\n" name (List.length r.Explore.tests)
    r.Explore.total_time;
  ( Printf.sprintf
      "  {\"name\": %S, \"arch\": %S, \"tests\": %d, \"paths\": %d, \
       \"coverage_pct\": %.2f, \"prep_time\": %.6f, \"total_time\": %.6f, \
       \"solve_time\": %.6f, \"host_cores\": %d, \"recommended_domains\": %d,\n\
      \   \"metrics\": %s}"
      name arch
      (List.length r.Explore.tests)
      r.Explore.stats.Explore.paths (Explore.coverage_pct r)
      run.Oracle.prepared.Oracle.prep_time r.Explore.total_time r.Explore.solve_time
      (host_cores ())
      (Domain.recommended_domain_count ())
      (Obs.Snapshot.to_json (Obs.Registry.snapshot (Oracle.registry run))),
    r.Explore.total_time,
    run )

let write_bench_doc out rows =
  Out_channel.with_open_text out (fun oc ->
      Printf.fprintf oc "{\"results\": [\n%s\n]}\n" (String.concat ",\n" rows));
  Printf.printf "wrote %s\n" out

let json ?(only = []) ?(path_jobs = 0) out =
  header
    (if path_jobs > 0 then
       Printf.sprintf "JSON results (path-jobs %d) -> %s" path_jobs out
     else Printf.sprintf "JSON results -> %s" out);
  let drivers = std_drivers () in
  let drivers =
    match only with
    | [] -> drivers
    | names ->
        List.iter
          (fun n ->
            if not (List.exists (fun (d, _, _, _, _) -> d = n) drivers) then begin
              Printf.eprintf "unknown driver %s (have: %s)\n" n
                (String.concat ", " (List.map (fun (d, _, _, _, _) -> d) drivers));
              exit 1
            end)
          names;
        List.filter (fun (d, _, _, _, _) -> List.mem d names) drivers
  in
  let row (name, arch, src, opts, config) =
    let r, _, _ = json_row name arch src opts { config with Explore.path_jobs } in
    r
  in
  write_bench_doc out (List.map row drivers)

(* ------------------------------------------------------------------ *)
(* scaling: wall-clock per path-jobs value on one driver, written in
   the same JSON document shape so [compare] can gate it *)

let scaling driver out =
  header (Printf.sprintf "Scaling — %s at path-jobs {1,2,4,8} -> %s" driver out);
  match List.find_opt (fun (d, _, _, _, _) -> d = driver) (std_drivers ()) with
  | None ->
      Printf.eprintf "unknown driver %s (have: %s)\n" driver
        (String.concat ", " (List.map (fun (d, _, _, _, _) -> d) (std_drivers ())));
      exit 1
  | Some (name, arch, src, opts, config) ->
      let measured =
        List.map
          (fun pj ->
            let row, total, _ =
              json_row
                (Printf.sprintf "%s@pj%d" name pj)
                arch src opts
                { config with Explore.path_jobs = pj }
            in
            (pj, row, total))
          [ 1; 2; 4; 8 ]
      in
      hr ();
      let base = match measured with (_, _, t) :: _ -> t | [] -> 1.0 in
      List.iter
        (fun (pj, _, t) ->
          Printf.printf "path-jobs %d: %8.3fs   speedup x%.2f\n" pj t (base /. t))
        measured;
      Printf.printf
        "(host reports %d usable core(s); speedup saturates at the hardware)\n"
        (Domain.recommended_domain_count ());
      write_bench_doc out (List.map (fun (_, row, _) -> row) measured)

(* ------------------------------------------------------------------ *)
(* qcache: the query-cache acceptance gate.  Runs every std driver
   with the cache off and on, asserts the emitted suites are
   bit-identical (and identical again at path-jobs 1 vs 4 with the
   cache on), requires an aggregate solver.checks drop of at least
   30%, prints per-driver hit rates, and writes the cache-on rows as
   a bench JSON document for [compare] to gate in CI. *)

let qcache out =
  header (Printf.sprintf "Query-cache gate — off vs on, bit-identity, checks -> %s" out);
  let drivers = std_drivers () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let tests run =
    List.map Testgen.Testspec.to_string run.Oracle.result.Explore.tests
  in
  let metric run k =
    Obs.Snapshot.get_int (Obs.Registry.snapshot (Oracle.registry run)) k
  in
  let total_off = ref 0 and total_on = ref 0 in
  let rows =
    List.map
      (fun (name, arch, src, opts, config) ->
        let off =
          generate ~opts ~config:{ config with Explore.query_cache = false } arch src
        in
        let row, _, on = json_row name arch src opts config in
        let pj eng_pj =
          generate ~opts
            ~config:{ config with Explore.path_jobs = eng_pj; split_tasks = 6 }
            arch src
        in
        let on1 = pj 1 and on4 = pj 4 in
        if tests off <> tests on then
          fail "%s: cache-on suite differs from cache-off" name;
        if tests on1 <> tests on4 then
          fail "%s: path-jobs 1 and 4 suites differ with the cache on" name;
        let coff = metric off "solver.checks" and con = metric on "solver.checks" in
        total_off := !total_off + coff;
        total_on := !total_on + con;
        let avoided = metric on "qcache.solver_checks_avoided" in
        let slices = metric on "qcache.slices" in
        Printf.printf
          "  %-18s checks %5d -> %5d   hits: model %d, unsat %d, subsumed %d \
           (avoided %d / %d sliced)\n"
          name coff con
          (metric on "qcache.model_hits")
          (metric on "qcache.unsat_hits")
          (metric on "qcache.subsumed")
          avoided slices;
        row)
      drivers
  in
  hr ();
  let drop =
    if !total_off > 0 then
      100.0 *. float_of_int (!total_off - !total_on) /. float_of_int !total_off
    else 0.0
  in
  Printf.printf "solver.checks total: %d (cache off) -> %d (cache on), drop %.1f%%\n"
    !total_off !total_on drop;
  if drop < 30.0 then
    fail "aggregate solver.checks drop %.1f%% is below the 30%% gate" drop;
  write_bench_doc out rows;
  match List.rev !failures with
  | [] -> Printf.printf "OK: suites bit-identical, checks drop >= 30%%\n"
  | fs ->
      List.iter (fun m -> Printf.printf "FAIL: %s\n" m) fs;
      exit 1

(* ------------------------------------------------------------------ *)
(* compare: diff two bench JSON documents (as written by [json]) and
   fail on wall-clock regressions, for use as a CI gate *)

(* minimal recursive-descent JSON reader — enough for the documents
   this harness itself writes, so no external dependency is needed *)
module Json_read = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if peek () = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at offset %d" c !pos))
    in
    let lit word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else raise (Bad (Printf.sprintf "bad literal at offset %d" !pos))
    in
    let string_ () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (match peek () with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                (* the writer only emits \u for control chars; decode
                   the low byte and drop the high one *)
                let h = String.sub s (!pos + 1) 4 in
                Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ h) land 0xff));
                pos := !pos + 4
            | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      do
        incr pos
      done;
      float_of_string (String.sub s start (!pos - start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          incr pos;
          skip_ws ();
          if peek () = '}' then begin incr pos; Obj [] end
          else
            let rec members acc =
              skip_ws ();
              let k = string_ () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | c -> raise (Bad (Printf.sprintf "expected , or } but saw %c" c))
            in
            members []
      | '[' ->
          incr pos;
          skip_ws ();
          if peek () = ']' then begin incr pos; Arr [] end
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  elements (v :: acc)
              | ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | c -> raise (Bad (Printf.sprintf "expected , or ] but saw %c" c))
            in
            elements []
      | '"' -> Str (string_ ())
      | 't' -> lit "true" (Bool true)
      | 'f' -> lit "false" (Bool false)
      | 'n' -> lit "null" Null
      | _ -> Num (number ())
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing garbage at offset %d" !pos));
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let num = function Some (Num f) -> Some f | _ -> None

  let str = function Some (Str s) -> Some s | _ -> None
end

(* one bench-result row, reduced to what the gate compares *)
type bench_row = {
  br_name : string;
  br_total : float; (* total_time, seconds *)
  br_solve : float; (* solve_time, seconds *)
  br_conflicts : float; (* sat.conflicts counter *)
  br_checks : float; (* solver.checks counter (0 = not recorded) *)
  br_cores : int; (* host_cores of the recording machine (0 = unknown) *)
  br_domains : int; (* recommended_domain_count there (0 = unknown) *)
}

let load_bench file : bench_row list =
  let doc =
    try Json_read.parse (In_channel.with_open_text file In_channel.input_all) with
    | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Json_read.Bad msg ->
        Printf.eprintf "error: %s: malformed JSON (%s)\n" file msg;
        exit 2
  in
  match Json_read.member "results" doc with
  | Some (Json_read.Arr rows) ->
      List.filter_map
        (fun row ->
          match Json_read.(str (member "name" row)) with
          | None -> None
          | Some name ->
              let f k = Option.value ~default:0.0 Json_read.(num (member k row)) in
              let metric k =
                match Json_read.member "metrics" row with
                | Some m -> Option.value ~default:0.0 Json_read.(num (member k m))
                | None -> 0.0
              in
              Some
                {
                  br_name = name;
                  br_total = f "total_time";
                  br_solve = f "solve_time";
                  br_conflicts = metric "sat.conflicts";
                  br_checks = metric "solver.checks";
                  br_cores = int_of_float (f "host_cores");
                  br_domains = int_of_float (f "recommended_domains");
                })
        rows
  | _ ->
      Printf.eprintf "error: %s has no \"results\" array\n" file;
      exit 2

(* the (cores, recommended domains) pair a document was recorded on;
   rows of one document always agree, so the first row speaks for it *)
let doc_host rows =
  match rows with [] -> None | r :: _ -> Some (r.br_cores, r.br_domains)

let warn_host_mismatch baseline base current cur =
  match (doc_host base, doc_host cur) with
  | Some ((bc, bd) as h1), Some h2 when h1 <> h2 && h1 <> (0, 0) && h2 <> (0, 0) ->
      let cc, cd = h2 in
      Printf.printf
        "WARNING: hosts differ — %s was recorded on %d core(s) (%d domains), %s on %d \
         core(s) (%d domains); wall-clock deltas are not comparable\n"
        baseline bc bd current cc cd
  | _ -> ()

let compare_benches ?(noise_ms = 50.0) baseline current =
  header (Printf.sprintf "Compare — %s (baseline) vs %s" baseline current);
  let base = load_bench baseline and cur = load_bench current in
  warn_host_mismatch baseline base current cur;
  let pct old now = if old > 0.0 then 100.0 *. (now -. old) /. old else 0.0 in
  let regression_limit = 10.0 in
  (* percentages on sub-millisecond drivers are timer noise; only gate a
     driver when it also lost a perceptible amount of absolute time
     ([--noise-ms], default 50ms) *)
  let noise_floor = noise_ms /. 1000.0 in
  let regressed = ref [] in
  Printf.printf "%-20s %10s %10s %8s   %10s %10s %8s\n" "driver" "base s" "cur s" "Δtime"
    "base cfl" "cur cfl" "Δcfl";
  let matched =
    List.filter_map
      (fun b ->
        match List.find_opt (fun c -> c.br_name = b.br_name) cur with
        | None ->
            Printf.printf "%-20s %10.3f %10s (driver missing from %s)\n" b.br_name
              b.br_total "-" current;
            None
        | Some c -> Some (b, c))
      base
  in
  List.iter
    (fun (b, c) ->
      let dt = pct b.br_total c.br_total in
      let dc = pct b.br_conflicts c.br_conflicts in
      let bad = dt > regression_limit && c.br_total -. b.br_total > noise_floor in
      (* solver.checks is deterministic per driver (no timer noise), so
         any increase over the recorded baseline means the query cache
         or the exploration lost ground — gate with a 2% slack only for
         rows recorded before the counter existed (0 = not recorded) *)
      let bad_checks =
        b.br_checks > 0.0 && c.br_checks > b.br_checks *. 1.02
      in
      if bad then regressed := b.br_name :: !regressed;
      if bad_checks then regressed := (b.br_name ^ " (solver.checks)") :: !regressed;
      Printf.printf "%-20s %10.3f %10.3f %+7.1f%%   %10.0f %10.0f %+7.1f%%%s%s\n"
        b.br_name b.br_total c.br_total dt b.br_conflicts c.br_conflicts dc
        (if bad then "  REGRESSION" else "")
        (if bad_checks then
           Printf.sprintf "  CHECKS %.0f->%.0f" b.br_checks c.br_checks
         else ""))
    matched;
  List.iter
    (fun c ->
      if not (List.exists (fun b -> b.br_name = c.br_name) base) then
        Printf.printf "%-20s %10s %10.3f (driver new since baseline)\n" c.br_name "-"
          c.br_total)
    cur;
  let sum f rows = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let bt = sum (fun (b, _) -> b.br_total) matched
  and ct = sum (fun (_, c) -> c.br_total) matched in
  let bs = sum (fun (b, _) -> b.br_solve) matched
  and cs = sum (fun (_, c) -> c.br_solve) matched in
  hr ();
  Printf.printf "total wall-clock  %10.3f -> %10.3f  (%+.1f%%)\n" bt ct (pct bt ct);
  Printf.printf "total solve time  %10.3f -> %10.3f  (%+.1f%%)\n" bs cs (pct bs cs);
  let total_regressed = pct bt ct > regression_limit && ct -. bt > noise_floor in
  if total_regressed && not (List.mem "TOTAL" !regressed) then
    regressed := "TOTAL" :: !regressed;
  if !regressed <> [] then begin
    Printf.printf "\nFAIL: regression (wall-clock > %.0f%% or solver.checks up) in: %s\n"
      regression_limit
      (String.concat ", " (List.rev !regressed));
    exit 1
  end
  else
    Printf.printf "\nOK: no driver regressed (wall-clock limit %.0f%%, noise floor %.0fms)\n"
      regression_limit noise_ms

(* ------------------------------------------------------------------ *)
(* gate: the parallel-speedup CI check over one scaling document
   (rows named driver@pjN, as [scaling] writes them).  For every
   driver whose sequential run does a minimum amount of work,
   path-jobs 4 must not be slower than path-jobs 1 beyond a noise
   floor — parallel exploration has to pay for itself or get out of
   the way.  Drivers below the work threshold are reported but not
   gated: their wall-clock is all fixed cost and timer noise. *)

let gate_bench file =
  header (Printf.sprintf "Gate — pj4 <= pj1 over %s" file);
  let rows = load_bench file in
  (* "driver@pjN" -> (driver, N) *)
  let split_pj name =
    match String.index_opt name '@' with
    | Some i
      when i + 3 <= String.length name && String.sub name (i + 1) 2 = "pj" ->
        int_of_string_opt (String.sub name (i + 3) (String.length name - i - 3))
        |> Option.map (fun pj -> (String.sub name 0 i, pj))
    | _ -> None
  in
  let by_pj =
    List.filter_map
      (fun r -> Option.map (fun (d, pj) -> (d, pj, r.br_total)) (split_pj r.br_name))
      rows
  in
  let drivers =
    List.sort_uniq compare (List.map (fun (d, _, _) -> d) by_pj)
  in
  if drivers = [] then begin
    Printf.eprintf
      "error: %s has no driver@pjN rows (run `bench scaling` to produce one)\n" file;
    exit 2
  end;
  (match doc_host rows with
  | Some (c, d) when (c, d) <> (0, 0) ->
      Printf.printf "recorded on %d core(s), %d recommended domain(s)\n" c d
  | _ -> ());
  let min_work = 0.2 (* s: below this, the run is fixed cost, not scaling *) in
  let noise_floor = 0.05 (* s: scheduler jitter allowance *) in
  let failed = ref [] in
  List.iter
    (fun d ->
      let t pj =
        List.find_map (fun (d', pj', t) -> if d' = d && pj' = pj then Some t else None) by_pj
      in
      match (t 1, t 4) with
      | Some t1, Some t4 ->
          let verdict =
            if t1 <= min_work then "skipped (below min-work threshold)"
            else if t4 <= t1 +. noise_floor then "ok"
            else begin
              failed := d :: !failed;
              "FAIL"
            end
          in
          Printf.printf "%-20s pj1 %8.3fs   pj4 %8.3fs   %s\n" d t1 t4 verdict
      | _ -> Printf.printf "%-20s (missing pj1 or pj4 row; not gated)\n" d)
    drivers;
  if !failed <> [] then begin
    Printf.printf "\nFAIL: path-jobs 4 slower than path-jobs 1 on: %s\n"
      (String.concat ", " (List.rev !failed));
    exit 1
  end
  else Printf.printf "\nOK: parallel exploration is never slower than sequential\n"

(* ------------------------------------------------------------------ *)
(* serve: cold-vs-warm request latency through the daemon.  Every cold
   sample hits an emptied cache (a flush precedes it) and pays
   preparation; warm samples find the prepared oracle cached and skip
   it.  The exploration budget is pinned small so the request latency
   is dominated by what the cache can and cannot save — this measures
   the serving path, not the path-explosion budget.  The run gates
   itself: warm p50 strictly below cold p50 on every driver, and every
   warm response reporting zero preparation time. *)

let percentile sorted_asc p =
  match sorted_asc with
  | [] -> 0.0
  | l ->
      let n = List.length l in
      let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
      List.nth l (max 0 (min (n - 1) idx))

(* programs sized so preparation is the dominant, measurable cost of a
   cold request (a few ms) while the capped exploration stays cheap:
   the quantity the cache saves has to clear scheduling noise *)
let serve_drivers () =
  [
    ( "middleblock_128acl",
      "v1model",
      Progzoo.Generators.middleblock ~acl_stages:128 () );
    ( "middleblock_400acl",
      "v1model",
      Progzoo.Generators.middleblock ~acl_stages:400 () );
    ( "middleblock_800acl",
      "v1model",
      Progzoo.Generators.middleblock ~acl_stages:800 () );
  ]

let serve_bench out =
  header (Printf.sprintf "Serve — cold vs warm request latency -> %s" out);
  let sock = Filename.temp_file "p4tg-bench" ".sock" in
  let ep = Serve.Wire.Unix_sock sock in
  let server =
    Serve.Server.start
      {
        Serve.Server.default_config with
        Serve.Server.endpoint = ep;
        cache_slots = 8;
        workers = 2;
      }
  in
  if not (Serve.Client.wait_ready ep) then begin
    Printf.eprintf "error: serve daemon did not come up on %s\n" sock;
    exit 2
  end;
  let rpc rq =
    match Serve.Client.request ep rq with
    | Ok evs -> evs
    | Error msg ->
        Printf.eprintf "error: serve request failed: %s\n" msg;
        Serve.Server.stop server;
        exit 2
  in
  let flush () =
    ignore (rpc { Serve.Wire.default_request with Serve.Wire.rq_op = Serve.Wire.Flush })
  in
  let cold_samples = 11 in
  let warm_samples = cold_samples in
  let failed = ref [] in
  let rows =
    List.concat_map
      (fun (name, arch, src) ->
        let rq =
          {
            Serve.Wire.default_request with
            Serve.Wire.rq_arch = arch;
            rq_max_tests = Some 1;
            rq_source = Some src;
          }
        in
        let sample () =
          let t0 = Obs.Clock.now () in
          let evs = rpc rq in
          let dt = Obs.Clock.now () -. t0 in
          let summary = Option.value ~default:[] (Serve.Client.find_summary evs) in
          let get k = Option.value ~default:"" (Serve.Client.summary_get summary k) in
          (match Serve.Client.find_error evs with
          | Some (kind, msg) ->
              Printf.eprintf "error: %s: server said %s: %s\n" name kind msg;
              Serve.Server.stop server;
              exit 2
          | None -> ());
          (dt, float_of_string (get "prep_seconds"), get "tests", evs)
        in
        ignore (sample ());  (* absorb one-off warm-up costs *)
        (* paired sampling: each flush -> cold -> warm triple shares its
           ambient conditions (GC phase, scheduling), so drift hits both
           series alike and the cold-warm gap survives it *)
        let pairs =
          List.init cold_samples (fun _ ->
              flush ();
              let c = sample () in
              let w = sample () in
              (c, w))
        in
        let cold = List.map fst pairs and warm = List.map snd pairs in
        let lat s = List.sort compare (List.map (fun (d, _, _, _) -> d) s) in
        let cold_lat = lat cold and warm_lat = lat warm in
        let cold_p50 = percentile cold_lat 0.50
        and cold_p95 = percentile cold_lat 0.95
        and warm_p50 = percentile warm_lat 0.50
        and warm_p95 = percentile warm_lat 0.95 in
        let cold_prep =
          percentile (List.sort compare (List.map (fun (_, p, _, _) -> p) cold)) 0.50
        in
        let warm_prep_max =
          List.fold_left (fun acc (_, p, _, _) -> Float.max acc p) 0.0 warm
        in
        let tests = match cold with (_, _, t, _) :: _ -> t | [] -> "0" in
        let verdict =
          if warm_p50 < cold_p50 && warm_prep_max = 0.0 then "ok"
          else begin
            failed := name :: !failed;
            "FAIL"
          end
        in
        Printf.printf
          "%-20s cold p50 %7.3fms p95 %7.3fms (prep %6.3fms)   warm p50 %7.3fms \
           p95 %7.3fms   %s\n"
          name (1e3 *. cold_p50) (1e3 *. cold_p95) (1e3 *. cold_prep)
          (1e3 *. warm_p50) (1e3 *. warm_p95) verdict;
        let obs_of evs =
          List.fold_left
            (fun acc ev -> match ev with Serve.Wire.Obs j -> j | _ -> acc)
            "{}" evs
        in
        let row phase p50 p95 prep evs =
          Printf.sprintf
            "  {\"name\": \"%s@%s\", \"arch\": %S, \"tests\": %s, \"samples\": %d, \
             \"total_time\": %.6f, \"lat_p95\": %.6f, \"prep_time\": %.6f, \
             \"host_cores\": %d, \"recommended_domains\": %d,\n\
            \   \"metrics\": %s}"
            name phase arch tests
            (if phase = "cold" then cold_samples else warm_samples)
            p50 p95 prep (host_cores ())
            (Domain.recommended_domain_count ())
            (obs_of evs)
        in
        let last l = List.nth l (List.length l - 1) in
        let (_, _, _, cold_evs) = last cold and (_, _, _, warm_evs) = last warm in
        [
          row "cold" cold_p50 cold_p95 cold_prep cold_evs;
          row "warm" warm_p50 warm_p95 warm_prep_max warm_evs;
        ])
      (serve_drivers ())
  in
  Serve.Server.stop server;
  write_bench_doc out rows;
  if !failed <> [] then begin
    Printf.printf
      "\nFAIL: warm requests not measurably cheaper than cold on: %s\n"
      (String.concat ", " (List.rev !failed));
    exit 1
  end
  else
    Printf.printf
      "\nOK: warm requests skip preparation on every driver (warm p50 < cold \
       p50, warm prep = 0)\n"

(* ------------------------------------------------------------------ *)
(* corpus: the coverage-guided-corpus acceptance gate.  Runs the
   self-validation campaign twice at the same master seed and per-case
   oracle budget — once in corpus mode (corpus persisted to a scratch
   directory) and once pure-random — and requires corpus mode to reach
   strictly higher oracle-code coverage per 1000 cases.  Emits one
   bench JSON row with both coverage figures and the corpus hit rate
   (fraction of evaluated cases derived by mutation). *)

let corpus_bench ?(cases = 60) out =
  header
    (Printf.sprintf "Corpus gate — corpus vs pure-random at %d cases -> %s" cases out);
  let module Campaign = Selftest.Campaign in
  let module Corpus = Selftest.Corpus in
  let base =
    {
      Campaign.default_config with
      Campaign.cases;
      seed = 7;
      jobs = 1;
      reduce = false;
    }
  in
  let scratch =
    let f = Filename.temp_file "p4tg-bench-corpus" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect
    ~finally:(fun () -> rm_rf scratch)
    (fun () ->
      let corpus = Campaign.run { base with Campaign.corpus_dir = Some scratch } in
      let random = Campaign.run base in
      let cc = Campaign.cov_per_1000 corpus and cr = Campaign.cov_per_1000 random in
      let hit_rate =
        if corpus.Campaign.s_ran = 0 then 0.0
        else float_of_int corpus.Campaign.s_mutated /. float_of_int corpus.Campaign.s_ran
      in
      let csize, admits, evictions =
        match corpus.Campaign.s_corpus with
        | Some c -> (Corpus.size c, c.Corpus.admits, c.Corpus.evictions)
        | None -> (0, 0, 0)
      in
      Printf.printf "corpus mode:  %s (%.2fs)\n" (Campaign.summary_line corpus)
        corpus.Campaign.s_wall;
      Printf.printf "pure random:  %s (%.2fs)\n" (Campaign.summary_line random)
        random.Campaign.s_wall;
      hr ();
      Printf.printf
        "cov/1000: corpus %.1f vs random %.1f   corpus hit rate %.2f (%d mutated / %d \
         ran)\n"
        cc cr hit_rate corpus.Campaign.s_mutated corpus.Campaign.s_ran;
      let row =
        Printf.sprintf
          "  {\"name\": \"corpus_campaign\", \"arch\": \"mixed\", \"cases\": %d, \
           \"tests\": %d, \"cov1000_corpus\": %.1f, \"cov1000_random\": %.1f, \
           \"corpus_hit_rate\": %.4f, \"corpus_size\": %d, \"admits\": %d, \
           \"evictions\": %d, \"total_time\": %.6f, \"host_cores\": %d, \
           \"recommended_domains\": %d,\n\
          \   \"metrics\": %s}"
          cases corpus.Campaign.s_tests cc cr hit_rate csize admits evictions
          corpus.Campaign.s_wall (host_cores ())
          (Domain.recommended_domain_count ())
          (Obs.Snapshot.to_json corpus.Campaign.s_obs)
      in
      write_bench_doc out [ row ];
      if corpus.Campaign.s_failures <> [] || random.Campaign.s_failures <> [] then begin
        Printf.printf "FAIL: campaign reported differential failures\n";
        exit 1
      end;
      if cc > cr then
        Printf.printf "OK: corpus mode beats pure random (%.1f > %.1f cov/1000)\n" cc cr
      else begin
        Printf.printf
          "FAIL: corpus mode does not beat pure random (%.1f vs %.1f cov/1000)\n" cc cr;
        exit 1
      end)

(* ------------------------------------------------------------------ *)

let all () =
  fig1 ();
  tables ();
  table2 ();
  table3 ();
  table4a ();
  table4b ();
  fig7 ();
  bechamel ()

let () =
  match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
  | None -> all ()
  | Some "fig1" -> fig1 ()
  | Some "tables" -> tables ()
  | Some "fig7" -> fig7 ()
  | Some "table2" -> table2 ()
  | Some "table3" -> table3 ()
  | Some "table4a" -> table4a ()
  | Some "table4b" -> table4b ()
  | Some "bechamel" -> bechamel ()
  | Some "batch" ->
      let jobs =
        if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1
      in
      batch jobs
  | Some "json" ->
      let out = if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench.json" in
      (* among the trailing args, a bare integer sets path-jobs and
         everything else filters the driver list *)
      let rest =
        Array.to_list (Array.sub Sys.argv 3 (max 0 (Array.length Sys.argv - 3)))
      in
      let is_int a = a <> "" && String.for_all (fun c -> c >= '0' && c <= '9') a in
      let path_jobs =
        List.fold_left (fun acc a -> if is_int a then int_of_string a else acc) 0 rest
      in
      let only = List.filter (fun a -> not (is_int a)) rest in
      json ~only ~path_jobs out
  | Some "compare" ->
      (* positional: baseline [current]; flag: --noise-ms N anywhere *)
      let rest =
        Array.to_list (Array.sub Sys.argv 2 (max 0 (Array.length Sys.argv - 2)))
      in
      let rec split_flags pos noise = function
        | "--noise-ms" :: v :: tl -> (
            match float_of_string_opt v with
            | Some n when n >= 0.0 -> split_flags pos n tl
            | _ ->
                Printf.eprintf "error: --noise-ms expects a non-negative number\n";
                exit 2)
        | a :: tl -> split_flags (a :: pos) noise tl
        | [] -> (List.rev pos, noise)
      in
      let pos, noise_ms = split_flags [] 50.0 rest in
      (match pos with
      | baseline :: rest ->
          let current = match rest with c :: _ -> c | [] -> "bench.json" in
          compare_benches ~noise_ms baseline current
      | [] ->
          Printf.eprintf
            "usage: compare baseline.json [current.json] [--noise-ms N]\n";
          exit 2)
  | Some "qcache" ->
      let out =
        if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_pr9.json"
      in
      qcache out
  | Some "scaling" ->
      let driver =
        if Array.length Sys.argv > 2 then Sys.argv.(2) else "middleblock_2acl"
      in
      let out = if Array.length Sys.argv > 3 then Sys.argv.(3) else "BENCH_pr6.json" in
      scaling driver out
  | Some "gate" ->
      let file =
        if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_pr6.json"
      in
      gate_bench file
  | Some "corpus" ->
      let out =
        if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_pr10.json"
      in
      let cases =
        if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 60
      in
      corpus_bench ~cases out
  | Some "serve" ->
      let out =
        if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_pr8.json"
      in
      serve_bench out
  | Some other ->
      Printf.eprintf
        "unknown experiment %s (fig1, tables, fig7, table2, table3, table4a, table4b, bechamel, \
         batch [jobs], json [out.json] [path-jobs] [drivers...], compare baseline.json \
         [current.json] [--noise-ms N], scaling [driver] [out.json], gate [scaling.json], \
         serve [out.json], qcache [out.json], corpus [out.json] [cases])\n"
        other;
      exit 1
