(* p4testgen — command-line front end of the test oracle.

   Mirrors the upstream tool's interface: a P4 program, a target
   identifier, and a test framework; produces a test file plus a
   statement-coverage report (§4). *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let list_targets () =
  print_endline "Available targets and their test back ends:";
  List.iter
    (fun (arch, (device, backends)) ->
      Printf.printf "  %-12s (device: %-12s back ends: %s)\n" arch device
        (String.concat ", " backends))
    Targets.Registry.capabilities

(* shared by generate and batch: print a registry/merged snapshot and
   write the Chrome trace file *)
let report_obs ~metrics ~trace (tracks : (string * Obs.Registry.t) list) =
  if metrics then begin
    print_endline "metrics:";
    List.iter
      (fun (label, reg) ->
        if List.length tracks > 1 then Printf.printf "-- %s\n" label;
        Format.printf "%a@?" Obs.Snapshot.pp (Obs.Registry.snapshot reg))
      tracks
  end;
  match trace with
  | None -> 0
  | Some f -> (
      try
        Out_channel.with_open_text f (fun oc -> Obs.Trace.write_chrome oc tracks);
        Printf.printf "wrote trace %s (load in about:tracing or ui.perfetto.dev)\n" f;
        0
      with Sys_error msg ->
        Printf.eprintf "error: cannot write trace: %s\n" msg;
        1)

let run_generate file target backend max_tests max_paths seed strategy fixed_size
    no_constraints no_random unroll seq_packets solver_knobs parallel_knobs out_file
    validate print_tests metrics trace verbose =
  setup_logs verbose;
  match Targets.Registry.find target with
  | None ->
      Printf.eprintf "error: unknown target %s\n" target;
      list_targets ();
      1
  | Some tgt -> (
      match Backends.Registry.find backend with
      | None ->
          Printf.eprintf "error: unknown back end %s (stf, ptf, protobuf)\n" backend;
          1
      | Some be -> (
          let source = In_channel.with_open_text file In_channel.input_all in
          let opts =
            {
              Testgen.Runtime.default_options with
              seed;
              fixed_packet_bytes = fixed_size;
              apply_constraints = not no_constraints;
              randomize = not no_random;
              unroll_bound = unroll;
              seq_packets;
            }
          in
          let config =
            parallel_knobs
              (solver_knobs
                 { Testgen.Explore.default_config with max_tests; max_paths; strategy })
          in
          match Testgen.Oracle.generate ~opts ~config tgt source with
          | exception Testgen.Runtime.Exec_error msg ->
              Printf.eprintf "error: %s\n" msg;
              1
          | exception P4.Parser.Error (msg, pos) ->
              Printf.eprintf "%s:%d:%d: parse error: %s\n" file pos.P4.Ast.line
                pos.P4.Ast.col msg;
              1
          | run ->
              let reg = Testgen.Oracle.registry run in
              let result = run.Testgen.Oracle.result in
              let tests = result.Testgen.Explore.tests in
              let stats = result.Testgen.Explore.stats in
              Printf.printf "generated %d tests (%d paths, %d infeasible, %d abandoned)\n"
                (List.length tests) stats.Testgen.Explore.paths
                stats.Testgen.Explore.infeasible stats.Testgen.Explore.abandoned;
              let cov = Testgen.Oracle.coverage_report run in
              Format.printf "%a@." Testgen.Oracle.pp_coverage cov;
              Printf.printf "timing: %.3fs total (%.3fs solver, %d checks)\n"
                result.Testgen.Explore.total_time result.Testgen.Explore.solve_time
                stats.Testgen.Explore.solver_checks;
              if print_tests then
                List.iter (fun t -> print_endline (Testgen.Testspec.to_string t)) tests;
              let out =
                match out_file with
                | Some f -> f
                | None -> Filename.remove_extension file ^ be.Backends.Registry.extension
              in
              Out_channel.with_open_text out (fun oc ->
                  Out_channel.output_string oc
                    (Backends.Registry.emit_observed ~obs:reg be tests));
              Printf.printf "wrote %s\n" out;
              let rc =
                if validate then
                  Obs.Span.with_ reg "validate" (fun () ->
                      let sim = Sim.Harness.prepare ~arch:target source in
                      let summary, results = Sim.Harness.run_suite sim tests in
                      Printf.printf "validation on the %s software model: %d/%d pass\n"
                        target summary.Sim.Harness.passed summary.Sim.Harness.total;
                      List.iter
                        (fun (t, v) ->
                          match v with
                          | Sim.Harness.Pass -> ()
                          | Sim.Harness.Wrong_output m ->
                              Printf.printf "  WRONG: %s\n    %s\n" m
                                (Testgen.Testspec.to_string t)
                          | Sim.Harness.Crash m -> Printf.printf "  CRASH: %s\n" m)
                        results;
                      if summary.Sim.Harness.passed <> summary.Sim.Harness.total then 2
                      else 0)
                else 0
              in
              (* one trace track for the run plus one per path worker
                 (frontier driver; empty for the sequential driver) *)
              let obs_rc =
                report_obs ~metrics ~trace
                  ((file, reg) :: result.Testgen.Explore.workers)
              in
              if rc <> 0 then rc else obs_rc))

let file =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"PROGRAM.p4" ~doc:"P4 program")

let target =
  Arg.(
    value & opt string "v1model"
    & info [ "t"; "target"; "arch" ] ~docv:"TARGET"
        ~doc:"Target architecture (v1model, tna, t2na, ebpf_model)")

let backend =
  Arg.(
    value & opt string "stf"
    & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc:"Test back end (stf, ptf, protobuf)")

let max_tests =
  Arg.(value & opt (some int) None & info [ "max-tests" ] ~doc:"Stop after N tests")

let max_paths =
  Arg.(value & opt (some int) None & info [ "max-paths" ] ~doc:"Stop after N explored paths")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")

let strategy =
  (* an enum: an unknown strategy is a CLI error, not a silent dfs *)
  let strategies =
    [ ("dfs", Testgen.Explore.Dfs); ("rnd", Testgen.Explore.Rnd); ("cov", Testgen.Explore.Cov) ]
  in
  Arg.(
    value
    & opt (enum strategies) Testgen.Explore.Dfs
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Path selection: $(b,dfs) (exhaustive), $(b,rnd) (random order), $(b,cov) \
           (coverage-greedy)")

let fixed_size =
  Arg.(
    value & opt (some int) None
    & info [ "fixed-packet-size" ] ~docv:"BYTES"
        ~doc:"Precondition: fix the input packet size (avoids parser rejects, Tbl. 4b)")

let no_constraints =
  Arg.(value & flag & info [ "no-constraints" ] ~doc:"Ignore @entry_restriction annotations")

let no_random =
  Arg.(value & flag & info [ "no-random" ] ~doc:"Do not randomize free test inputs")

let unroll =
  Arg.(value & opt int 3 & info [ "unroll" ] ~doc:"Parser loop unrolling bound")

let seq_packets =
  Arg.(
    value & opt int 1
    & info [ "seq-packets" ] ~docv:"N"
        ~doc:
          "Packets per generated test.  With $(docv) > 1 every test is an \
           ordered multi-packet sequence: stateful externs (registers) keep \
           their value between the packets, so later packets can depend on \
           state the earlier ones wrote.  The default 1 keeps the classic \
           single-packet tests")

let out_file = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc:"Output file")

let validate =
  Arg.(
    value & flag
    & info [ "validate" ] ~doc:"Execute the generated tests on the built-in software model")

let print_tests =
  Arg.(value & flag & info [ "print-tests" ] ~doc:"Print the abstract test specifications")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the run's metric registry (counters, gauges, timers) after the run")

let trace =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's spans and counters as a Chrome $(b,trace_event) JSON file, \
           loadable in about:tracing or ui.perfetto.dev")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging")

(* solver tuning knobs, folded into the exploration config as a
   transformer so both subcommands share them *)
let solver_knobs =
  let no_phase_saving =
    Arg.(
      value & flag
      & info [ "no-phase-saving" ]
          ~doc:"SAT: do not reuse the last assigned polarity when branching")
  in
  let no_target_phase =
    Arg.(
      value & flag
      & info [ "no-target-phase" ]
          ~doc:"SAT: do not replay the last model's polarities in later solves")
  in
  let no_reduce_db =
    Arg.(
      value & flag
      & info [ "no-reduce-db" ] ~doc:"SAT: never delete learnt clauses (keep them all)")
  in
  let no_minimise =
    Arg.(
      value & flag
      & info [ "no-minimise" ]
          ~doc:"SAT: skip recursive self-subsumption minimisation of learnt clauses")
  in
  let no_rewrite =
    Arg.(
      value & flag
      & info [ "no-rewrite" ]
          ~doc:"Skip the word-level rewrite pass applied to terms before bit-blasting")
  in
  let rebuild_threshold =
    Arg.(
      value & opt (some int) None
      & info [ "rebuild-threshold" ] ~docv:"VARS"
          ~doc:
            "Rebuild the incremental solver once it holds more than $(docv) SAT \
             variables (dead circuits from popped scopes dominate past this point)")
  in
  let no_query_cache =
    Arg.(
      value & flag
      & info [ "no-query-cache" ]
          ~doc:
            "Disable the branch-feasibility query cache (independence slicing, \
             model reuse, UNSAT-slice memoisation).  Emitted tests are \
             bit-identical either way; only the number of solver calls changes")
  in
  let qcache_slots =
    Arg.(
      value & opt (some int) None
      & info [ "qcache-slots" ] ~docv:"N"
          ~doc:
            "Capacity of each query-cache digest-set ring (default 512); \
             bounds the memory the cache may hold")
  in
  let apply nps ntp nrdb nmin nrw rth nqc qslots config =
    let sat_options =
      {
        Smt.Sat.default_options with
        Smt.Sat.o_phase_saving = not nps;
        o_target_phase = not ntp;
        o_reduce_db = not nrdb;
        o_minimise = not nmin;
      }
    in
    {
      config with
      Testgen.Explore.sat_options;
      word_rewrite = not nrw;
      rebuild_size_threshold =
        Option.value rth ~default:config.Testgen.Explore.rebuild_size_threshold;
      query_cache = not nqc;
      qcache_slots =
        Option.value qslots ~default:config.Testgen.Explore.qcache_slots;
    }
  in
  Term.(
    const apply $ no_phase_saving $ no_target_phase $ no_reduce_db $ no_minimise
    $ no_rewrite $ rebuild_threshold $ no_query_cache $ qcache_slots)

(* intra-program parallelism knobs, same transformer pattern *)
let parallel_knobs =
  let path_jobs =
    Arg.(
      value & opt int 0
      & info [ "path-jobs" ] ~docv:"N"
          ~doc:
            "Explore path subtrees of each program on $(docv) worker domains \
             (frontier-split driver).  0 (the default) keeps the classic \
             sequential DFS; any N >= 1 produces bit-identical tests, so \
             $(b,--path-jobs 1) is the reference for higher values.  Composes \
             with $(b,--jobs) in batch mode through one shared domain budget")
  in
  let split_tasks =
    Arg.(
      value
      & opt int Testgen.Explore.default_config.Testgen.Explore.split_tasks
      & info [ "split-tasks" ] ~docv:"T"
          ~doc:
            "Target number of subtree tasks the adaptive splitter prepares \
             for $(b,--path-jobs) workers: the heaviest task is split one \
             fork level deeper until $(docv) tasks exist (more = finer \
             load balancing, slightly more per-task overhead)")
  in
  let snapshot_max_bytes =
    Arg.(
      value
      & opt int
          Testgen.Explore.default_config.Testgen.Explore.snapshot_max_bytes
      & info
          [ "snapshot-max-bytes" ]
          ~docv:"B"
          ~doc:
            "Estimated term weight above which a subtree task is started by \
             replaying its branch prefix instead of importing a state \
             snapshot (0 forces replay for every task)")
  in
  let apply pj st sb config =
    {
      config with
      Testgen.Explore.path_jobs = pj;
      split_tasks = st;
      snapshot_max_bytes = sb;
    }
  in
  Term.(const apply $ path_jobs $ split_tasks $ snapshot_max_bytes)

let generate_t =
  Term.(
    const run_generate $ file $ target $ backend $ max_tests $ max_paths $ seed $ strategy
    $ fixed_size $ no_constraints $ no_random $ unroll $ seq_packets $ solver_knobs
    $ parallel_knobs $ out_file $ validate $ print_tests $ metrics $ trace $ verbose)

(* ------------------------------------------------------------------ *)
(* batch: many programs across domains *)

let run_batch files target jobs max_tests max_paths seed strategy fixed_size no_constraints
    no_random unroll seq_packets solver_knobs parallel_knobs metrics trace verbose =
  setup_logs verbose;
  match Targets.Registry.find target with
  | None ->
      Printf.eprintf "error: unknown target %s\n" target;
      list_targets ();
      1
  | Some tgt ->
      let opts =
        {
          Testgen.Runtime.default_options with
          seed;
          fixed_packet_bytes = fixed_size;
          apply_constraints = not no_constraints;
          randomize = not no_random;
          unroll_bound = unroll;
          seq_packets;
        }
      in
      let config =
        parallel_knobs
          (solver_knobs
             { Testgen.Explore.default_config with max_tests; max_paths; strategy })
      in
      let js =
        List.map
          (fun f ->
            let source = In_channel.with_open_text f In_channel.input_all in
            Testgen.Oracle.job ~opts ~config ~label:f tgt source)
          files
      in
      let b = Testgen.Oracle.generate_batch ~jobs js in
      let failed = ref 0 in
      List.iter
        (fun (label, o) ->
          match o with
          | Testgen.Oracle.Finished r ->
              let result = r.Testgen.Oracle.result in
              Printf.printf "%-32s %5d tests  %5.1f%% coverage  %.3fs\n" label
                (List.length result.Testgen.Explore.tests)
                (Testgen.Explore.coverage_pct result)
                result.Testgen.Explore.total_time
          | Testgen.Oracle.Failed msg ->
              incr failed;
              Printf.printf "%-32s FAILED: %s\n" label msg)
        b.Testgen.Oracle.outcomes;
      let stats = b.Testgen.Oracle.merged_stats in
      Printf.printf "batch: %d programs, %d paths, %d tests; wall-clock %.3fs on %d job(s)\n"
        (List.length files) stats.Testgen.Explore.paths stats.Testgen.Explore.tests
        b.Testgen.Oracle.batch_wall jobs;
      if metrics then begin
        print_endline "metrics (merged over jobs):";
        Format.printf "%a@?" Obs.Snapshot.pp b.Testgen.Oracle.merged_obs
      end;
      (* the trace gets one track (tid) per finished job, plus the
         job's path-worker tracks when it ran with --path-jobs *)
      let tracks =
        List.concat_map
          (fun (label, o) ->
            match o with
            | Testgen.Oracle.Finished r ->
                (label, Testgen.Oracle.registry r)
                :: List.map
                     (fun (w, wr) -> (label ^ "/" ^ w, wr))
                     r.Testgen.Oracle.result.Testgen.Explore.workers
            | Testgen.Oracle.Failed _ -> [])
          b.Testgen.Oracle.outcomes
      in
      let obs_rc = report_obs ~metrics:false ~trace tracks in
      if !failed > 0 then 1 else obs_rc

let batch_files =
  Arg.(
    non_empty & pos_all non_dir_file []
    & info [] ~docv:"PROGRAM.p4" ~doc:"P4 programs to generate tests for")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains; each program runs in its own term context")

let batch_t =
  Term.(
    const run_batch $ batch_files $ target $ jobs $ max_tests $ max_paths $ seed $ strategy
    $ fixed_size $ no_constraints $ no_random $ unroll $ seq_packets $ solver_knobs
    $ parallel_knobs $ metrics $ trace $ verbose)

(* ------------------------------------------------------------------ *)
(* selftest: the differential fuzzing campaign (§7/§8) *)

let run_selftest cases jobs seed max_seconds out_dir archs max_tests fault no_reduce
    sequences corpus_dir mutation_ratio mutation_score metrics trace verbose =
  setup_logs verbose;
  let fault =
    match fault with
    | None -> Ok Sim.Mutation.No_fault
    | Some s -> (
        match Sim.Mutation.fault_of_string s with
        | Some f -> Ok f
        | None -> Error s)
  in
  match fault with
  | Error s ->
      Printf.eprintf "error: unknown fault %s (use a corpus label like TOF-12 or a name like %s)\n"
        s
        (Sim.Mutation.fault_name Sim.Mutation.Swallow_apply);
      1
  | Ok fault ->
      let archs =
        match archs with
        | [] -> Progzoo.Randprog.all_archs
        | names ->
            List.filter_map Progzoo.Randprog.arch_of_string names
      in
      if archs = [] then begin
        Printf.eprintf "error: no valid architecture (v1model, ebpf_model, tna)\n";
        1
      end
      else begin
        let cfg =
          {
            Selftest.Campaign.default_config with
            Selftest.Campaign.cases;
            jobs;
            seed;
            max_seconds;
            archs;
            max_tests;
            fault;
            reduce = not no_reduce;
            sequences;
            out_dir;
            corpus_dir;
            mutation_ratio;
          }
        in
        let s = Selftest.Campaign.run cfg in
        Format.printf "%a@?" Selftest.Campaign.pp_summary s;
        let mut_rc =
          if mutation_score then begin
            let results = Selftest.Mutscore.score () in
            let missed = Selftest.Mutscore.undetected results in
            Printf.printf "mutation score: %d/%d faults killed\n"
              (List.length results - List.length missed)
              (List.length results);
            List.iter
              (fun ((m : Sim.Mutation.t), _) ->
                Printf.printf "  MISSED %-8s %s\n" m.Sim.Mutation.m_label
                  m.Sim.Mutation.m_desc)
              missed;
            if missed <> [] then 1 else 0
          end
          else 0
        in
        if metrics then begin
          print_endline "metrics (merged over workers):";
          Format.printf "%a@?" Obs.Snapshot.pp s.Selftest.Campaign.s_obs
        end;
        let obs_rc = report_obs ~metrics:false ~trace s.Selftest.Campaign.s_workers in
        if s.Selftest.Campaign.s_failures <> [] then 1
        else if mut_rc <> 0 then mut_rc
        else obs_rc
      end

let selftest_cases =
  Arg.(value & opt int 50 & info [ "cases" ] ~docv:"N" ~doc:"Random programs to check")

let selftest_seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Campaign master seed")

let selftest_max_seconds =
  Arg.(
    value & opt (some float) None
    & info [ "max-seconds" ] ~docv:"T"
        ~doc:
          "Wall-clock budget; cases not started in time are skipped (reported in \
           the summary)")

let selftest_out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Write failing programs (reduced repros) to $(docv)")

let selftest_archs =
  Arg.(
    value & opt_all string []
    & info [ "arch" ] ~docv:"ARCH"
        ~doc:
          "Restrict generation to $(docv) (repeatable; default: v1model, \
           ebpf_model and tna round-robin)")

let selftest_max_tests =
  Arg.(
    value & opt int 12
    & info [ "max-tests" ] ~docv:"N" ~doc:"Oracle test budget per generated program")

let selftest_fault =
  Arg.(
    value & opt (some string) None
    & info [ "fault" ] ~docv:"FAULT"
        ~doc:
          "Seed this simulator fault (a corpus label like $(b,TOF-13) or a name \
           like $(b,drop_second_emit)) — the campaign must then detect it; used \
           to self-test the campaign")

let selftest_no_reduce =
  Arg.(value & flag & info [ "no-reduce" ] ~doc:"Skip delta-debugging failing programs")

let selftest_sequences =
  Arg.(
    value & flag
    & info [ "sequences" ]
        ~doc:
          "Generate multi-packet test sequences (2\226\128\1473 packets, derived \
           from each case seed) instead of single-packet tests, exercising \
           stateful-extern continuity across packet boundaries")

let selftest_corpus =
  Arg.(
    value & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Coverage-guided corpus mode: keep a persistent corpus of interesting \
           programs under $(docv), derive most cases by mutating corpus members \
           once it is warm, and checkpoint after every batch so a killed \
           campaign resumes deterministically (same seed/config) from $(docv)")

let selftest_mutation_ratio =
  Arg.(
    value & opt float 0.75
    & info [ "mutation-ratio" ] ~docv:"R"
        ~doc:
          "Fraction of cases derived by mutation (vs. generated from scratch) \
           once the corpus is warm; only meaningful with $(b,--corpus)")

let selftest_mutation_score =
  Arg.(
    value & flag
    & info [ "mutation-score" ]
        ~doc:
          "Also run the seeded-fault catalogue (Tbl. 2) and require every fault \
           to be killed by a generated suite")

let selftest_t =
  Term.(
    const run_selftest $ selftest_cases $ jobs $ selftest_seed $ selftest_max_seconds
    $ selftest_out $ selftest_archs $ selftest_max_tests $ selftest_fault
    $ selftest_no_reduce $ selftest_sequences $ selftest_corpus
    $ selftest_mutation_ratio $ selftest_mutation_score $ metrics $ trace $ verbose)

(* ------------------------------------------------------------------ *)
(* serve / client / fingerprint: the oracle as a long-running daemon *)

let endpoint_arg =
  Arg.(
    value & opt string "p4testgen.sock"
    & info [ "listen"; "connect" ] ~docv:"ENDPOINT"
        ~doc:
          "Socket endpoint: $(b,unix:PATH) (or a bare path) for a Unix domain \
           socket, $(b,tcp:HOST:PORT) for TCP")

let run_serve endpoint cache_slots workers queue_cap deadline_ms verbose =
  setup_logs verbose;
  match Serve.Wire.endpoint_of_string endpoint with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok ep ->
      let cfg =
        {
          Serve.Server.endpoint = ep;
          cache_slots;
          workers;
          queue_cap;
          default_deadline_ms = deadline_ms;
        }
      in
      Printf.printf "p4testgen serving on %s (cache %d slots, %d workers)\n%!"
        (Serve.Wire.string_of_endpoint ep)
        cache_slots workers;
      Serve.Server.run cfg;
      print_endline "p4testgen serve: shut down";
      0

let serve_t =
  let cache_slots =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.cache_slots
      & info [ "cache-slots" ] ~docv:"N"
          ~doc:"Prepared oracles kept warm (LRU eviction past $(docv))")
  in
  let workers =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Executor domains (drawn from the shared exploration pool; the \
             grant may be smaller on loaded hosts)")
  in
  let queue_cap =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission bound: connections queued past $(docv) are rejected \
             with a $(b,busy) frame instead of waiting")
  in
  let deadline_ms =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request budget, measured from admission; a request \
             over budget returns the tests found so far with \
             $(b,timed_out true)")
  in
  Term.(
    const run_serve $ endpoint_arg $ cache_slots $ workers $ queue_cap
    $ deadline_ms $ verbose)

let strategy_name = function
  | Testgen.Explore.Dfs -> "dfs"
  | Testgen.Explore.Rnd -> "rnd"
  | Testgen.Explore.Cov -> "cov"

let run_client endpoint file target backend strategy seed max_tests max_paths
    seq_packets path_jobs deadline_ms key ping flush shutdown out_file
    print_tests metrics verbose =
  setup_logs verbose;
  match Serve.Wire.endpoint_of_string endpoint with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok ep -> (
      let source =
        Option.map (fun f -> In_channel.with_open_text f In_channel.input_all) file
      in
      let op =
        if ping then Serve.Wire.Ping
        else if flush then Serve.Wire.Flush
        else if shutdown then Serve.Wire.Shutdown
        else Serve.Wire.Generate
      in
      if op = Serve.Wire.Generate && source = None && key = None then begin
        Printf.eprintf
          "error: client needs a PROGRAM.p4 argument or --key FINGERPRINT \
           (or one of --ping/--flush/--shutdown)\n";
        1
      end
      else
        let rq =
          {
            Serve.Wire.rq_op = op;
            rq_arch = target;
            rq_backend = backend;
            rq_strategy = strategy_name strategy;
            rq_seed = seed;
            rq_max_tests = max_tests;
            rq_max_paths = max_paths;
            rq_seq_packets = seq_packets;
            rq_path_jobs = path_jobs;
            rq_deadline_ms = deadline_ms;
            rq_key = key;
            rq_source = source;
          }
        in
        let rc = ref 0 in
        let on_event = function
          | Serve.Wire.Test (n, body) ->
              if print_tests then Printf.printf "-- test %d --\n%s\n%!" n body
          | Serve.Wire.File (be, body) -> (
              match out_file with
              | Some f ->
                  Out_channel.with_open_text f (fun oc ->
                      Out_channel.output_string oc body);
                  Printf.printf "wrote %s\n" f
              | None ->
                  Printf.printf "-- %s file (%d bytes; use -o to save) --\n" be
                    (String.length body))
          | Serve.Wire.Summary kvs ->
              List.iter (fun (k, v) -> Printf.printf "%s %s\n" k v) kvs
          | Serve.Wire.Obs json -> if metrics then Printf.printf "obs %s\n" json
          | Serve.Wire.Error (kind, msg) ->
              Printf.eprintf "error (%s): %s\n" kind msg;
              rc := 1
          | Serve.Wire.Okay body -> Printf.printf "ok %s\n" body
          | Serve.Wire.End -> ()
        in
        match Serve.Client.request ~on_event ep rq with
        | Ok _ -> !rc
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1)

let client_t =
  let client_file =
    Arg.(
      value & pos 0 (some non_dir_file) None
      & info [] ~docv:"PROGRAM.p4" ~doc:"P4 program to send (optional with --key)")
  in
  let client_backend =
    Arg.(
      value & opt (some string) None
      & info [ "b"; "backend" ] ~docv:"BACKEND"
          ~doc:"Also stream the rendered test file (stf, ptf, protobuf)")
  in
  let deadline_ms =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request budget")
  in
  let key =
    Arg.(
      value & opt (some string) None
      & info [ "key" ] ~docv:"FINGERPRINT"
          ~doc:
            "Request by cache key alone (no source shipped); the server \
             answers $(b,unknown-fingerprint) when the oracle is not cached")
  in
  let path_jobs =
    Arg.(
      value & opt int 0
      & info [ "path-jobs" ] ~docv:"N" ~doc:"Per-request worker domains")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Health-check the daemon") in
  let flush =
    Arg.(value & flag & info [ "flush" ] ~doc:"Empty the server's oracle cache")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Stop the daemon gracefully")
  in
  Term.(
    const run_client $ endpoint_arg $ client_file $ target $ client_backend
    $ strategy $ seed $ max_tests $ max_paths $ seq_packets $ path_jobs
    $ deadline_ms $ key $ ping $ flush $ shutdown $ out_file $ print_tests
    $ metrics $ verbose)

let run_fingerprint file target =
  let source = In_channel.with_open_text file In_channel.input_all in
  match Testgen.Oracle.fingerprint ~arch:target source with
  | Ok key ->
      print_endline key;
      0
  | Error e ->
      Printf.eprintf "%s: %s\n" file (Testgen.Oracle.prepare_error_message e);
      1

let fingerprint_t = Term.(const run_fingerprint $ file $ target)

(* ------------------------------------------------------------------ *)

let man =
  [
    `S Manpage.s_description;
    `P
      "$(mname) symbolically executes a P4-16 program under a target \
       architecture's whole-program semantics and emits, for each feasible \
       program path, a test: an input packet, the control-plane \
       configuration needed to drive the path, and the expected output \
       packet(s).";
    `P "An OCaml reproduction of P4Testgen (Ruffy et al., SIGCOMM 2023).";
  ]

let generate_cmd =
  let doc = "generate input-output packet tests for one P4 program (the default)" in
  Cmd.v (Cmd.info "generate" ~doc ~man) generate_t

let batch_cmd =
  let doc = "generate tests for many P4 programs in parallel across domains" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the oracle over each given program.  With $(b,--jobs) N the \
         programs are distributed over N domains; every program owns its \
         term context and solver, so results are identical to a sequential \
         run with the same seed.";
    ]
  in
  Cmd.v (Cmd.info "batch" ~doc ~man) batch_t

let selftest_cmd =
  let doc = "differentially fuzz the oracle against the built-in software models" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random well-typed P4 programs for all three architectures, \
         runs the oracle on each, executes every generated test on the \
         independent concrete simulator, and checks cross-cutting invariants \
         (seed determinism, parallel-exploration determinism, strategy \
         agreement).  Any disagreement is automatically shrunk to a minimal \
         repro with AST-level delta debugging.";
      `P
        "The campaign summary (cases, failures, tests, feature coverage) is \
         independent of $(b,--jobs): identical for any worker count.";
    ]
  in
  Cmd.v (Cmd.info "selftest" ~doc ~man) selftest_t

let serve_cmd =
  let doc = "run the oracle as a long-running daemon with a prepared-oracle cache" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Listens on a Unix or TCP socket for framed requests (4-byte \
         big-endian length prefix; see the README's Serving section).  \
         Prepared oracles — parsed, type-checked, mid-end-passed programs — \
         are cached under a fingerprint of the source token stream, so \
         repeat requests for the same program skip preparation entirely and \
         go straight to path exploration.  Tests stream back as individual \
         frames while paths close, followed by a summary and a metric \
         snapshot.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man) serve_t

let client_cmd =
  let doc = "send one request to a p4testgen serve daemon" in
  Cmd.v (Cmd.info "client" ~doc ~man) client_t

let fingerprint_cmd =
  let doc = "print the serve cache key of a program" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The fingerprint digests the source's token stream (whitespace and \
         comments never change it), the architecture name and a format \
         version — exactly the key the serve daemon caches prepared oracles \
         under, so a client can probe or address the cache without shipping \
         the source.";
    ]
  in
  Cmd.v (Cmd.info "fingerprint" ~doc ~man) fingerprint_t

let cmd =
  let doc = "generate input-output packet tests for P4 programs" in
  Cmd.group ~default:generate_t
    (Cmd.info "p4testgen" ~version:"1.0.0" ~doc ~man)
    [ generate_cmd; batch_cmd; selftest_cmd; serve_cmd; client_cmd; fingerprint_cmd ]

let () =
  (* back-compat: `p4testgen prog.p4 ...` (no subcommand) still runs
     the generator — route anything that is not a known subcommand or a
     group-level flag to `generate` *)
  let argv = Sys.argv in
  let argv =
    if
      Array.length argv > 1
      &&
      match argv.(1) with
      | "batch" | "generate" | "selftest" | "serve" | "client" | "fingerprint"
      | "--help" | "--version" ->
          false
      | _ -> true
    then
      Array.concat [ [| argv.(0); "generate" |]; Array.sub argv 1 (Array.length argv - 1) ]
    else argv
  in
  exit (Cmd.eval' ~argv cmd)
