lib/progzoo/generators.ml: Buffer Printf
