lib/progzoo/randprog.ml: Buffer List Printf Random String
