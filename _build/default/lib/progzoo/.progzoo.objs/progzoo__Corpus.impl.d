lib/progzoo/corpus.ml:
