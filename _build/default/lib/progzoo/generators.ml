(* Program generators for the large-program experiments (Tbl. 4a/4b).

   The paper evaluates middleblock.p4 (SONiC/PINS data-center switch,
   with P4-constraints annotations), up4.p4 (ONF 5G UPF), and the
   switch.p4 of the Tofino SDE.  Those sources are proprietary or tied
   to vendor toolchains, so we generate programs with the same
   *structure*: the same protocol stacks, the same table/branch
   shapes, parameterized in size. *)

let buf_program f =
  let b = Buffer.create 8192 in
  f b;
  Buffer.contents b

let common_headers =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> total_len;
  bit<16> identification; bit<3> flags; bit<13> frag_offset;
  bit<8> ttl; bit<8> protocol; bit<16> hdr_checksum;
  bit<32> src_addr; bit<32> dst_addr;
}
header tcp_t {
  bit<16> src_port; bit<16> dst_port; bit<32> seq_no; bit<32> ack_no;
  bit<4> data_offset; bit<4> res; bit<8> flags; bit<16> window;
  bit<16> checksum; bit<16> urgent_ptr;
}
header udp_t { bit<16> src_port; bit<16> dst_port; bit<16> len; bit<16> checksum; }
|}

let l3_parser =
  {|
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition select(hdr.ipv4.protocol) {
      6 : parse_tcp;
      17 : parse_udp;
      default : accept;
    }
  }
  state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
  state parse_udp { pkt.extract(hdr.udp); transition accept; }
}
|}

(** A middleblock.p4-style program (§6.1.1, Tbl. 4): L3 admit,
    [acl_stages] ingress ACL tables carrying P4-constraints
    [@entry_restriction] annotations, an LPM route table and a
    next-hop table. *)
let middleblock ?(acl_stages = 2) () =
  buf_program (fun b ->
      Buffer.add_string b common_headers;
      Buffer.add_string b
        {|
struct headers_t { ethernet_t eth; ipv4_t ipv4; tcp_t tcp; udp_t udp; }
struct meta_t {
  bit<1> admitted;
  bit<8> acl_class;
  bit<32> nexthop_id;
}
|};
      Buffer.add_string b l3_parser;
      Buffer.add_string b
        {|
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  action admit() { meta.admitted = 1; }
  action deny_admit() { meta.admitted = 0; }
  table l3_admit {
    key = {
      hdr.eth.dst : ternary @name("dst_mac");
    }
    actions = { admit; deny_admit; }
    default_action = deny_admit();
  }
|};
      for i = 0 to acl_stages - 1 do
        Buffer.add_string b
          (Printf.sprintf
             {|
  action acl_permit_%d() { meta.acl_class = %d; }
  action acl_drop_%d() { mark_to_drop(sm); }
  @entry_restriction("(proto == 6 || proto == 17) && ttl != 0 && ttl != 255")
  table acl_%d {
    key = {
      hdr.ipv4.ttl : exact @name("ttl");
      hdr.ipv4.protocol : ternary @name("proto");
    }
    actions = { acl_permit_%d; acl_drop_%d; }
    default_action = acl_permit_%d();
  }
|}
             i (i + 1) i i i i i)
      done;
      Buffer.add_string b
        {|
  action set_nexthop(bit<32> nid, bit<9> port) {
    meta.nexthop_id = nid;
    sm.egress_spec = port;
    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
  }
  action route_drop() { mark_to_drop(sm); }
  table routes {
    key = { hdr.ipv4.dst_addr : lpm @name("dst_ip"); }
    actions = { set_nexthop; route_drop; }
    default_action = route_drop();
  }
  action rewrite(bit<48> smac, bit<48> dmac) {
    hdr.eth.src = smac;
    hdr.eth.dst = dmac;
  }
  action nexthop_miss() { }
  table nexthop {
    key = { meta.nexthop_id : exact @name("nid"); }
    actions = { rewrite; nexthop_miss; }
    default_action = nexthop_miss();
  }
  apply {
    if (hdr.ipv4.isValid()) {
      l3_admit.apply();
      if (meta.admitted == 1) {
        if (hdr.ipv4.ttl == 0) {
          mark_to_drop(sm);
        } else {
|};
      for i = 0 to acl_stages - 1 do
        Buffer.add_string b (Printf.sprintf "          acl_%d.apply();\n" i)
      done;
      Buffer.add_string b
        {|
          routes.apply();
          nexthop.apply();
        }
      } else {
        mark_to_drop(sm);
      }
    } else {
      mark_to_drop(sm);
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) {
  apply {
    update_checksum(hdr.ipv4.isValid(),
                    {hdr.ipv4.version, hdr.ipv4.ihl, hdr.ipv4.diffserv,
                     hdr.ipv4.total_len, hdr.ipv4.identification,
                     hdr.ipv4.flags, hdr.ipv4.frag_offset, hdr.ipv4.ttl,
                     hdr.ipv4.protocol, hdr.ipv4.src_addr, hdr.ipv4.dst_addr},
                    hdr.ipv4.hdr_checksum, HashAlgorithm.csum16);
  }
}
control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
    pkt.emit(hdr.tcp);
    pkt.emit(hdr.udp);
  }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|})

(** An up4.p4-style 5G UPF program: GTP-U encap/decap, PDR and FAR
    tables, and a meter whose RED verdict cannot be exercised without
    meter configuration — the reason the paper reports 95% rather than
    100% coverage for up4.p4 (§7). *)
let up4 () =
  buf_program (fun b ->
      Buffer.add_string b common_headers;
      Buffer.add_string b
        {|
header gtpu_t {
  bit<3> version; bit<1> pt; bit<1> spare; bit<1> ex_flag;
  bit<1> seq_flag; bit<1> npdu_flag; bit<8> msgtype; bit<16> msglen;
  bit<32> teid;
}
struct headers_t { ethernet_t eth; ipv4_t ipv4; udp_t udp; gtpu_t gtpu; ipv4_t inner_ipv4; }
struct meta_t {
  bit<1> is_uplink;
  bit<32> far_id;
  bit<8> color;
  bit<1> needs_decap;
}

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition select(hdr.ipv4.protocol) {
      17 : parse_udp;
      default : accept;
    }
  }
  state parse_udp {
    pkt.extract(hdr.udp);
    transition select(hdr.udp.dst_port) {
      2152 : parse_gtpu;
      default : accept;
    }
  }
  state parse_gtpu {
    pkt.extract(hdr.gtpu);
    transition parse_inner;
  }
  state parse_inner {
    pkt.extract(hdr.inner_ipv4);
    transition accept;
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  meter<bit<8>>(1024) session_meter;
  action set_uplink() { meta.is_uplink = 1; }
  action set_downlink() { meta.is_uplink = 0; }
  table source_iface {
    key = { sm.ingress_port : exact @name("port"); }
    actions = { set_uplink; set_downlink; }
    default_action = set_downlink();
  }
  action set_far(bit<32> far) { meta.far_id = far; meta.needs_decap = 1; }
  action pdr_miss() { mark_to_drop(sm); }
  table pdrs {
    key = {
      hdr.gtpu.teid : exact @name("teid");
      hdr.inner_ipv4.src_addr : ternary @name("ue_addr");
    }
    actions = { set_far; pdr_miss; }
    default_action = pdr_miss();
  }
  action forward(bit<9> port, bit<48> dmac) {
    sm.egress_spec = port;
    hdr.eth.dst = dmac;
  }
  action tunnel_drop() { mark_to_drop(sm); }
  table fars {
    key = { meta.far_id : exact @name("far_id"); }
    actions = { forward; tunnel_drop; }
    default_action = tunnel_drop();
  }
  apply {
    source_iface.apply();
    if (hdr.gtpu.isValid()) {
      pdrs.apply();
      session_meter.execute_meter(0, meta.color);
      if (meta.color == 2) {
        mark_to_drop(sm);
      } else {
        fars.apply();
        if (meta.needs_decap == 1) {
          hdr.gtpu.setInvalid();
          hdr.udp.setInvalid();
          hdr.ipv4.setInvalid();
        }
      }
    } else {
      mark_to_drop(sm);
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
    pkt.emit(hdr.udp);
    pkt.emit(hdr.gtpu);
    pkt.emit(hdr.inner_ipv4);
  }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|})

(** A switch.p4-style TNA program: [stages] match-action stages in
    ingress and in egress over an L2/L3 stack.  Path count grows
    exponentially with [stages] — the reason exhaustive generation on
    switch.p4 never terminated in the paper (Tbl. 4a). *)
let switch_tna ?(stages = 4) () =
  buf_program (fun b ->
      Buffer.add_string b common_headers;
      Buffer.add_string b
        {|
struct headers_t { ethernet_t eth; ipv4_t ipv4; tcp_t tcp; udp_t udp; }
struct meta_t { bit<16> l4_sport; bit<16> l4_dport; bit<8> class; }

parser IgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out ingress_intrinsic_metadata_t ig_intr_md) {
  state start { pkt.extract(ig_intr_md); transition parse_eth; }
  state parse_eth {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition select(hdr.ipv4.protocol) {
      6 : parse_tcp;
      17 : parse_udp;
      default : accept;
    }
  }
  state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
  state parse_udp { pkt.extract(hdr.udp); transition accept; }
}
control Ig(inout headers_t hdr, inout meta_t md,
           in ingress_intrinsic_metadata_t ig_intr_md,
           in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
           inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
           inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
|};
      for i = 0 to stages - 1 do
        Buffer.add_string b
          (Printf.sprintf
             {|
  action stage%d_hit(bit<8> tag) { md.class = tag; }
  action stage%d_route(bit<9> port) { ig_tm_md.ucast_egress_port = port; }
  action stage%d_drop() { ig_dprsr_md.drop_ctl = 1; }
  table stage%d {
    key = {
      hdr.ipv4.dst_addr : exact @name("dst%d");
      md.class : ternary @name("class%d");
    }
    actions = { stage%d_hit; stage%d_route; stage%d_drop; }
    default_action = stage%d_hit(0);
  }
|}
             i i i i i i i i i i)
      done;
      Buffer.add_string b "  apply {\n    if (hdr.ipv4.isValid()) {\n";
      for i = 0 to stages - 1 do
        Buffer.add_string b (Printf.sprintf "      stage%d.apply();\n" i)
      done;
      Buffer.add_string b
        {|
    } else {
      ig_dprsr_md.drop_ctl = 1;
    }
  }
}
control IgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
    pkt.emit(hdr.tcp);
    pkt.emit(hdr.udp);
  }
}
parser EgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out egress_intrinsic_metadata_t eg_intr_md) {
  state start {
    pkt.extract(eg_intr_md);
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}
control Eg(inout headers_t hdr, inout meta_t md,
           in egress_intrinsic_metadata_t eg_intr_md,
           in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
           inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
           inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
  action nat(bit<32> addr) { hdr.ipv4.src_addr = addr; }
  action skip() { }
  table snat {
    key = { hdr.ipv4.src_addr : exact @name("orig"); }
    actions = { nat; skip; }
    default_action = skip();
  }
  apply {
    if (hdr.ipv4.isValid()) {
      snat.apply();
    }
  }
}
control EgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
  }
}
Switch(Pipeline(IgParser(), Ig(), IgDeparser(), EgParser(), Eg(), EgDeparser())) main;
|})
