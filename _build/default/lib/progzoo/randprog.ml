(* Random well-typed v1model program generator.

   Used for differential fuzzing of the oracle against the concrete
   simulator (the same methodology Gauntlet applies to P4 compilers,
   §8, pointed back at ourselves): for any generated program, every
   test the oracle emits must pass on the software model.

   Programs are emitted as P4 source so each fuzz case also exercises
   the lexer/parser. *)

type rng = Random.State.t

let pick (st : rng) (xs : 'a list) = List.nth xs (Random.State.int st (List.length xs))

let range (st : rng) lo hi = lo + Random.State.int st (hi - lo + 1)

(* available scalar slots: (l-value syntax, width) *)
type slot = { path : string; width : int; writable : bool }

let header_fields =
  [
    ("eth", [ ("dst", 48); ("src", 48); ("etype", 16) ]);
    ("ipv4", [ ("ttl", 8); ("proto", 8); ("saddr", 32); ("daddr", 32) ]);
    ("extra", [ ("a", 8); ("b", 16); ("c", 24) ]);
  ]

let meta_fields = [ ("m0", 8); ("m1", 16); ("m2", 32) ]

let slots_of_header h =
  List.map
    (fun (f, w) -> { path = Printf.sprintf "hdr.%s.%s" h f; width = w; writable = true })
    (List.assoc h header_fields)

let meta_slots =
  List.map (fun (f, w) -> { path = "meta." ^ f; width = w; writable = true }) meta_fields

(* expression generator: produces a P4 expression string of the given
   width over the available slots *)
let rec gen_expr (st : rng) (slots : slot list) ~width ~depth : string =
  let const () = Printf.sprintf "%dw%d" width (Random.State.int st (1 lsl min width 24)) in
  let reads = List.filter (fun s -> s.width >= 1) slots in
  if depth = 0 || reads = [] then
    if reads <> [] && Random.State.bool st then begin
      let s = pick st reads in
      if s.width = width then s.path
      else if s.width > width then
        Printf.sprintf "%s[%d:%d]" s.path (width - 1) 0
      else Printf.sprintf "(bit<%d>)%s" width s.path
    end
    else const ()
  else begin
    let sub ?(w = width) () = gen_expr st slots ~width:w ~depth:(depth - 1) in
    match range st 0 9 with
    | 0 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 1 -> Printf.sprintf "(%s - %s)" (sub ()) (sub ())
    | 2 -> Printf.sprintf "(%s & %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s | %s)" (sub ()) (sub ())
    | 4 -> Printf.sprintf "(%s ^ %s)" (sub ()) (sub ())
    | 5 -> Printf.sprintf "(~%s)" (sub ())
    | 6 -> Printf.sprintf "(%s << %d)" (sub ()) (range st 0 (min width 7))
    | 7 -> Printf.sprintf "(%s >> %d)" (sub ()) (range st 0 (min width 7))
    | 8 when width >= 2 ->
        let wl = range st 1 (width - 1) in
        Printf.sprintf "(%s ++ %s)"
          (gen_expr st slots ~width:(width - wl) ~depth:(depth - 1))
          (gen_expr st slots ~width:wl ~depth:(depth - 1))
    | _ -> Printf.sprintf "(%s %s %s ? %s : %s)" (sub ()) (pick st [ "=="; "!=" ]) (sub ())
             (sub ()) (sub ())
  end

let gen_cond (st : rng) slots ~depth : string =
  let w = pick st [ 8; 16 ] in
  Printf.sprintf "%s %s %s"
    (gen_expr st slots ~width:w ~depth)
    (pick st [ "=="; "!="; "<"; "<="; ">"; ">=" ])
    (gen_expr st slots ~width:w ~depth)

let rec gen_stmts (st : rng) (slots : slot list) ~n ~depth : string list =
  if n = 0 then []
  else begin
    let stmt =
      match range st 0 5 with
      | 0 | 1 | 2 ->
          let dst = pick st (List.filter (fun s -> s.writable) slots) in
          Printf.sprintf "%s = %s;" dst.path (gen_expr st slots ~width:dst.width ~depth:2)
      | 3 ->
          Printf.sprintf "if (%s) {\n      %s\n    } else {\n      %s\n    }"
            (gen_cond st slots ~depth:1)
            (String.concat "\n      " (gen_stmts st slots ~n:(min 2 n) ~depth:(depth - 1)))
            (String.concat "\n      " (gen_stmts st slots ~n:1 ~depth:(depth - 1)))
      | 4 ->
          let dst = pick st (List.filter (fun s -> s.writable) slots) in
          let hi = range st 0 (dst.width - 1) in
          let lo = range st 0 hi in
          Printf.sprintf "%s[%d:%d] = %s;" dst.path hi lo
            (gen_expr st slots ~width:(hi - lo + 1) ~depth:1)
      | _ ->
          let dst = pick st (List.filter (fun s -> s.writable) slots) in
          Printf.sprintf "%s = %s;" dst.path (gen_expr st slots ~width:dst.width ~depth:1)
    in
    stmt :: gen_stmts st slots ~n:(n - 1) ~depth
  end

(* a random table over the currently-valid slots *)
let gen_table (st : rng) slots ~idx : string * string =
  let key = pick st slots in
  let kind = pick st [ "exact"; "ternary"; "lpm" ] in
  let nactions = range st 1 2 in
  let actions =
    List.init nactions (fun i ->
        let body =
          String.concat "\n    " (gen_stmts st slots ~n:(range st 1 2) ~depth:1)
        in
        Printf.sprintf
          "action t%d_act%d(bit<9> p) {\n    sm.egress_spec = p;\n    %s\n  }" idx i body)
  in
  let decl =
    Printf.sprintf
      {|%s
  action t%d_miss() { }
  table t%d {
    key = { %s : %s @name("k%d"); }
    actions = { %s t%d_miss; }
    default_action = t%d_miss();
  }|}
      (String.concat "\n  " actions)
      idx idx key.path kind idx
      (String.concat " "
         (List.init nactions (fun i -> Printf.sprintf "t%d_act%d;" idx i)))
      idx idx
  in
  (decl, Printf.sprintf "t%d.apply();" idx)

(** Generate a random v1model program from a seed. *)
let generate ~seed : string =
  let st = Random.State.make [| seed |] in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    {|
header eth_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4ish_t { bit<8> ttl; bit<8> proto; bit<32> saddr; bit<32> daddr; }
header extra_t { bit<8> a; bit<16> b; bit<24> c; }
struct headers_t { eth_t eth; ipv4ish_t ipv4; extra_t extra; }
struct meta_t { bit<8> m0; bit<16> m1; bit<32> m2; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      0x1234 : parse_extra;
      default : accept;
    }
  }
  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
  state parse_extra {
    pkt.extract(hdr.extra);
    transition select(hdr.extra.a) {
      0xFF : parse_ipv4;
      default : accept;
    }
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
|};
  (* the ingress only touches eth (always valid on the main path) and
     metadata, so generated programs stay deterministic; guarded blocks
     below use ipv4/extra under validity checks *)
  let base_slots = slots_of_header "eth" @ meta_slots in
  let ntables = range st 1 2 in
  let tables = List.init ntables (fun i -> gen_table st base_slots ~idx:i) in
  List.iter (fun (decl, _) -> Buffer.add_string b ("  " ^ decl ^ "\n")) tables;
  Buffer.add_string b "  apply {\n";
  let stmts = gen_stmts st base_slots ~n:(range st 2 4) ~depth:2 in
  List.iter (fun s -> Buffer.add_string b ("    " ^ s ^ "\n")) stmts;
  List.iter (fun (_, app) -> Buffer.add_string b ("    " ^ app ^ "\n")) tables;
  (* a guarded block over ipv4 fields *)
  let ipv4_slots = slots_of_header "ipv4" @ base_slots in
  Buffer.add_string b "    if (hdr.ipv4.isValid()) {\n";
  List.iter
    (fun s -> Buffer.add_string b ("      " ^ s ^ "\n"))
    (gen_stmts st ipv4_slots ~n:(range st 1 3) ~depth:1);
  Buffer.add_string b "    }\n";
  (* sometimes a conditional drop *)
  if Random.State.bool st then
    Buffer.add_string b
      (Printf.sprintf "    if (%s) {\n      mark_to_drop(sm);\n    }\n"
         (gen_cond st base_slots ~depth:1));
  Buffer.add_string b "  }\n}\n";
  Buffer.add_string b
    {|
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
    pkt.emit(hdr.extra);
  }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|};
  Buffer.contents b
