(* Hand-written lexer for the P4-16 subset. *)

type token =
  | IDENT of string
  | NUMBER of { iv : int; width : int option; signed : bool; base : int }
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LANGLE (* < *)
  | RANGLE (* > *)
  | SEMI
  | COLON
  | COMMA
  | DOT
  | ASSIGN (* = *)
  | PLUS
  | PLUS_SAT (* |+| *)
  | MINUS
  | MINUS_SAT (* |-| *)
  | STAR
  | SLASH
  | PERCENT
  | AMP (* & *)
  | AMP_AMP (* && *)
  | AMP3 (* &&& *)
  | PIPE (* | *)
  | PIPE_PIPE (* || *)
  | CARET (* ^ *)
  | TILDE (* ~ *)
  | BANG (* ! *)
  | EQ_EQ
  | NEQ
  | LE
  | GE
  | SHL (* << *)
  (* there is no SHR token: '>' is always lexed as RANGLE so nested
     type arguments like bit<bit<8>> work; the expression parser
     reassembles adjacent RANGLEs into a right shift *)
  | PLUSPLUS (* ++ *)
  | QUESTION
  | AT (* @ *)
  | DOTDOT (* .. *)
  | UNDERSCORE
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable peeked : (token * Ast.pos) option;
  mutable peeked2 : (token * Ast.pos) option;
}

exception Error of string * Ast.pos

let create src = { src; pos = 0; line = 1; col = 1; peeked = None; peeked2 = None }

let error lx msg = raise (Error (msg, { line = lx.line; col = lx.col }))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when peek_char2 lx = Some '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance lx
      done;
      skip_ws lx
  | Some '/' when peek_char2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec go () =
        match (peek_char lx, peek_char2 lx) with
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | Some _, _ ->
            advance lx;
            go ()
        | None, _ -> error lx "unterminated comment"
      in
      go ();
      skip_ws lx
  | Some '#' ->
      (* preprocessor lines are ignored *)
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance lx
      done;
      skip_ws lx
  | _ -> ()

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let first = String.sub lx.src start (lx.pos - start) in
  (* width prefix: 8w255, 4s7 *)
  match peek_char lx with
  | Some ('w' | 's') when first <> "" ->
      let signed = peek_char lx = Some 's' in
      advance lx;
      let width = int_of_string first in
      let base, digits_start =
        match (peek_char lx, peek_char2 lx) with
        | Some '0', Some ('x' | 'X') ->
            advance lx;
            advance lx;
            (16, lx.pos)
        | Some '0', Some ('b' | 'B') ->
            advance lx;
            advance lx;
            (2, lx.pos)
        | _ -> (10, lx.pos)
      in
      while
        match peek_char lx with
        | Some c -> is_hex c || c = '_'
        | None -> false
      do
        advance lx
      done;
      let digits = String.sub lx.src digits_start (lx.pos - digits_start) in
      let digits = String.concat "" (String.split_on_char '_' digits) in
      let iv =
        match base with
        | 16 -> int_of_string ("0x" ^ digits)
        | 2 -> int_of_string ("0b" ^ digits)
        | _ -> int_of_string digits
      in
      NUMBER { iv; width = Some width; signed; base }
  | _ ->
      if first = "0" && (match peek_char lx with Some ('x' | 'X' | 'b' | 'B') -> true | _ -> false)
      then begin
        let base = match peek_char lx with Some ('x' | 'X') -> 16 | _ -> 2 in
        advance lx;
        let ds = lx.pos in
        while
          match peek_char lx with Some c -> is_hex c || c = '_' | None -> false
        do
          advance lx
        done;
        let digits = String.sub lx.src ds (lx.pos - ds) in
        let digits = String.concat "" (String.split_on_char '_' digits) in
        let iv =
          if base = 16 then int_of_string ("0x" ^ digits) else int_of_string ("0b" ^ digits)
        in
        NUMBER { iv; width = None; signed = false; base }
      end
      else NUMBER { iv = int_of_string first; width = None; signed = false; base = 10 }

let raw_next lx =
  skip_ws lx;
  let pos = { Ast.line = lx.line; col = lx.col } in
  let tok =
    match peek_char lx with
    | None -> EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c ->
        let start = lx.pos in
        while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
          advance lx
        done;
        let s = String.sub lx.src start (lx.pos - start) in
        if s = "_" then UNDERSCORE else IDENT s
    | Some '"' ->
        advance lx;
        let b = Buffer.create 16 in
        let rec go () =
          match peek_char lx with
          | Some '"' -> advance lx
          | Some '\\' ->
              advance lx;
              (match peek_char lx with
              | Some c ->
                  Buffer.add_char b c;
                  advance lx
              | None -> error lx "unterminated string");
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance lx;
              go ()
          | None -> error lx "unterminated string"
        in
        go ();
        STRING (Buffer.contents b)
    | Some c ->
        advance lx;
        let two next tok1 tok2 =
          if peek_char lx = Some next then begin
            advance lx;
            tok2
          end
          else tok1
        in
        (match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | '{' -> LBRACE
        | '}' -> RBRACE
        | '[' -> LBRACKET
        | ']' -> RBRACKET
        | ';' -> SEMI
        | ':' -> COLON
        | ',' -> COMMA
        | '.' -> two '.' DOT DOTDOT
        | '?' -> QUESTION
        | '@' -> AT
        | '~' -> TILDE
        | '^' -> CARET
        | '*' -> STAR
        | '/' -> SLASH
        | '%' -> PERCENT
        | '+' -> two '+' PLUS PLUSPLUS
        | '-' -> MINUS
        | '=' -> two '=' ASSIGN EQ_EQ
        | '!' -> two '=' BANG NEQ
        | '<' ->
            if peek_char lx = Some '=' then (advance lx; LE)
            else if peek_char lx = Some '<' then (advance lx; SHL)
            else LANGLE
        | '>' ->
            (* '>>' is never lexed as one token: nested type arguments
               like bit<bit<8>> need the two RANGLEs.  The expression
               parser reassembles shifts. *)
            if peek_char lx = Some '=' then (advance lx; GE) else RANGLE
        | '&' ->
            if peek_char lx = Some '&' then begin
              advance lx;
              if peek_char lx = Some '&' then (advance lx; AMP3) else AMP_AMP
            end
            else AMP
        | '|' ->
            if peek_char lx = Some '|' then (advance lx; PIPE_PIPE)
            else if peek_char lx = Some '+' && peek_char2 lx = Some '|' then begin
              advance lx; advance lx; PLUS_SAT
            end
            else if peek_char lx = Some '-' && peek_char2 lx = Some '|' then begin
              advance lx; advance lx; MINUS_SAT
            end
            else PIPE
        | c -> error lx (Printf.sprintf "unexpected character %C" c))
  in
  (tok, pos)

let next lx =
  match lx.peeked with
  | Some t ->
      lx.peeked <- lx.peeked2;
      lx.peeked2 <- None;
      t
  | None -> raw_next lx

let peek lx =
  match lx.peeked with
  | Some t -> t
  | None ->
      let t = raw_next lx in
      lx.peeked <- Some t;
      t

let peek2 lx =
  ignore (peek lx);
  match lx.peeked2 with
  | Some t -> t
  | None ->
      let t = raw_next lx in
      lx.peeked2 <- Some t;
      t

let show_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER { iv; _ } -> Printf.sprintf "number %d" iv
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LANGLE -> "'<'"
  | RANGLE -> "'>'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | PLUS_SAT -> "'|+|'"
  | MINUS -> "'-'"
  | MINUS_SAT -> "'|-|'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | AMP_AMP -> "'&&'"
  | AMP3 -> "'&&&'"
  | PIPE -> "'|'"
  | PIPE_PIPE -> "'||'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | EQ_EQ -> "'=='"
  | NEQ -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | SHL -> "'<<'"
  | PLUSPLUS -> "'++'"
  | QUESTION -> "'?'"
  | AT -> "'@'"
  | DOTDOT -> "'..'"
  | UNDERSCORE -> "'_'"
  | EOF -> "end of input"
