(* Type context: layout queries over the declared headers, structs,
   typedefs, and enums of a program.  The symbolic executor and the
   concrete simulator both use it to materialize storage for the
   per-packet data structures. *)

type ctx = {
  headers : (string, Ast.field list) Hashtbl.t;
  structs : (string, Ast.field list) Hashtbl.t;
  unions : (string, Ast.field list) Hashtbl.t;
  typedefs : (string, Ast.typ) Hashtbl.t;
  enums : (string, string list) Hashtbl.t;
  ser_enums : (string, Ast.typ * (string * Ast.expr) list) Hashtbl.t;
  consts : (string, Ast.expr) Hashtbl.t;
  mutable errors : string list;  (** declared error constants, in order *)
  actions : (string, Ast.action_decl) Hashtbl.t;  (** top-level actions *)
  header_annos : (string, Ast.anno list) Hashtbl.t;
}

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let default_errors =
  [
    "NoError";
    "PacketTooShort";
    "NoMatch";
    "StackOutOfBounds";
    "HeaderTooShort";
    "ParserTimeout";
    "ParserInvalidArgument";
  ]

let create () =
  {
    headers = Hashtbl.create 32;
    structs = Hashtbl.create 32;
    unions = Hashtbl.create 4;
    typedefs = Hashtbl.create 32;
    enums = Hashtbl.create 8;
    ser_enums = Hashtbl.create 8;
    consts = Hashtbl.create 32;
    errors = default_errors;
    actions = Hashtbl.create 16;
    header_annos = Hashtbl.create 32;
  }

let add_decl ctx (d : Ast.decl) =
  match d with
  | DHeader (n, fs, annos) ->
      Hashtbl.replace ctx.headers n fs;
      Hashtbl.replace ctx.header_annos n annos
  | DStruct (n, fs, _) -> Hashtbl.replace ctx.structs n fs
  | DHeaderUnion (n, fs, _) -> Hashtbl.replace ctx.unions n fs
  | DTypedef (t, n) -> Hashtbl.replace ctx.typedefs n t
  | DEnum (n, ms) -> Hashtbl.replace ctx.enums n ms
  | DSerEnum (t, n, ms) -> Hashtbl.replace ctx.ser_enums n (t, ms)
  | DConst (_, n, e) -> Hashtbl.replace ctx.consts n e
  | DError ms -> ctx.errors <- ctx.errors @ List.filter (fun m -> not (List.mem m ctx.errors)) ms
  | DAction a -> Hashtbl.replace ctx.actions a.act_name a
  | DMatchKind _ | DParser _ | DControl _ | DExtern _ | DPackage _
  | DInstantiation _ | DParserType _ | DControlType _ -> ()

let build (prog : Ast.program) =
  let ctx = create () in
  List.iter (add_decl ctx) prog;
  ctx

let rec resolve ctx (t : Ast.typ) =
  match t with
  | TName n -> (
      match Hashtbl.find_opt ctx.typedefs n with
      | Some t' -> resolve ctx t'
      | None -> (
          match Hashtbl.find_opt ctx.ser_enums n with
          | Some (t', _) -> resolve ctx t'
          | None -> t))
  | t -> t

(* The abstract [error] type is represented as an 8-bit code indexing
   into the declared error list. *)
let error_width = 8

let error_code ctx name =
  let rec idx i = function
    | [] -> err "unknown error constant %s" name
    | e :: _ when e = name -> i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 ctx.errors

let enum_code ctx ename mname =
  match Hashtbl.find_opt ctx.enums ename with
  | None -> err "unknown enum %s" ename
  | Some ms ->
      let rec idx i = function
        | [] -> err "unknown enum member %s.%s" ename mname
        | m :: _ when m = mname -> i
        | _ :: rest -> idx (i + 1) rest
      in
      idx 0 ms

(* enums are represented in 8 bits (programs in our corpus have < 256
   members) *)
let enum_width = 8

let rec width_of ctx (t : Ast.typ) =
  match resolve ctx t with
  | TBit w | TInt w -> w
  | TVarbit w -> w
  | TBool -> 1
  | TError -> error_width
  | TVoid -> 0
  | TStack (h, n) -> n * width_of ctx (TName h)
  | TSpec (n, _) -> err "width of unspecialized type %s" n
  | TName n -> (
      match Hashtbl.find_opt ctx.headers n with
      | Some fs -> List.fold_left (fun acc f -> acc + width_of ctx f.Ast.f_typ) 0 fs
      | None -> (
          match Hashtbl.find_opt ctx.structs n with
          | Some fs -> List.fold_left (fun acc f -> acc + width_of ctx f.Ast.f_typ) 0 fs
          | None -> (
              match Hashtbl.find_opt ctx.unions n with
              | Some fs ->
                  (* width of a union is the max member width *)
                  List.fold_left (fun acc f -> max acc (width_of ctx f.Ast.f_typ)) 0 fs
              | None -> (
                  match Hashtbl.find_opt ctx.enums n with
                  | Some _ -> enum_width
                  | None -> err "unknown type %s" n))))

let header_fields ctx n = Hashtbl.find_opt ctx.headers n
let struct_fields ctx n = Hashtbl.find_opt ctx.structs n
let union_fields ctx n = Hashtbl.find_opt ctx.unions n

let is_header ctx t =
  match resolve ctx t with
  | TName n -> Hashtbl.mem ctx.headers n
  | TStack _ -> true
  | _ -> false

let is_struct ctx t =
  match resolve ctx t with TName n -> Hashtbl.mem ctx.structs n | _ -> false

let is_signed ctx t = match resolve ctx t with Ast.TInt _ -> true | _ -> false

(* Type of an l-value given a scope of variable types. *)
let rec typ_of_lvalue ctx scope (e : Ast.expr) : Ast.typ option =
  match e with
  | EVar n -> Option.map (resolve ctx) (List.assoc_opt n scope)
  | EMember (b, f) -> (
      match typ_of_lvalue ctx scope b with
      | Some (TName s) -> (
          let fields =
            match Hashtbl.find_opt ctx.headers s with
            | Some fs -> Some fs
            | None -> (
                match Hashtbl.find_opt ctx.structs s with
                | Some fs -> Some fs
                | None -> Hashtbl.find_opt ctx.unions s)
          in
          match fields with
          | Some fs ->
              List.find_opt (fun fd -> fd.Ast.f_name = f) fs
              |> Option.map (fun fd -> resolve ctx fd.Ast.f_typ)
          | None -> None)
      | Some (TStack (h, _)) when f = "next" || f = "last" -> Some (TName h)
      | _ -> None)
  | EIndex (b, _) -> (
      match typ_of_lvalue ctx scope b with
      | Some (TStack (h, _)) -> Some (TName h)
      | _ -> None)
  | ESlice (_, hi, lo) -> Some (TBit (hi - lo + 1))
  | ECast (t, _) -> Some (resolve ctx t)
  | _ -> None

(* Field offset within a header, measured from the MSB end (wire
   order): the first field occupies the topmost bits. *)
let field_range ctx fields fname =
  let total = List.fold_left (fun acc f -> acc + width_of ctx f.Ast.f_typ) 0 fields in
  let rec go off = function
    | [] -> err "unknown field %s" fname
    | f :: rest ->
        let w = width_of ctx f.Ast.f_typ in
        if f.Ast.f_name = fname then
          (* bit positions, LSB = 0 *)
          (total - off - 1, total - off - w)
        else go (off + w) rest
  in
  go 0 fields
