(* Recursive-descent parser for the P4-16 subset. *)

open Ast

exception Error of string * pos

type t = { lx : Lexer.t }

let err p msg = raise (Error (msg, snd (Lexer.peek p.lx)))

let next p = Lexer.next p.lx
let peek_tok p = fst (Lexer.peek p.lx)
let peek2_tok p = fst (Lexer.peek2 p.lx)

let expect p tok =
  let got, pos = next p in
  if got <> tok then
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (Lexer.show_token tok)
             (Lexer.show_token got),
           pos ))

let expect_ident p =
  match next p with
  | Lexer.IDENT s, _ -> s
  | got, pos ->
      raise (Error ("expected identifier, found " ^ Lexer.show_token got, pos))

let accept p tok =
  if peek_tok p = tok then begin
    ignore (next p);
    true
  end
  else false

let cur_pos p = snd (Lexer.peek p.lx)

(* save/restore for backtracking (type-argument ambiguity) *)
type snapshot = int * int * int * (Lexer.token * pos) option * (Lexer.token * pos) option

let save p : snapshot =
  let lx = p.lx in
  (lx.Lexer.pos, lx.Lexer.line, lx.Lexer.col, lx.Lexer.peeked, lx.Lexer.peeked2)

let restore p ((pos, line, col, pk, pk2) : snapshot) =
  let lx = p.lx in
  lx.Lexer.pos <- pos;
  lx.Lexer.line <- line;
  lx.Lexer.col <- col;
  lx.Lexer.peeked <- pk;
  lx.Lexer.peeked2 <- pk2

let try_parse p f =
  let snap = save p in
  try Some (f p)
  with Error _ | Lexer.Error _ ->
    restore p snap;
    None

(* ------------------------------------------------------------------ *)
(* Types *)

let rec parse_type p =
  match next p with
  | Lexer.IDENT "bit", _ ->
      if accept p Lexer.LANGLE then begin
        let w = parse_const_int p in
        expect p Lexer.RANGLE;
        TBit w
      end
      else TBit 1
  | Lexer.IDENT "int", _ ->
      expect p Lexer.LANGLE;
      let w = parse_const_int p in
      expect p Lexer.RANGLE;
      TInt w
  | Lexer.IDENT "varbit", _ ->
      expect p Lexer.LANGLE;
      let w = parse_const_int p in
      expect p Lexer.RANGLE;
      TVarbit w
  | Lexer.IDENT "bool", _ -> TBool
  | Lexer.IDENT "error", _ -> TError
  | Lexer.IDENT "void", _ -> TVoid
  | Lexer.IDENT name, _ ->
      if peek_tok p = Lexer.LANGLE then begin
        ignore (next p);
        let args = ref [ parse_type p ] in
        while accept p Lexer.COMMA do
          args := parse_type p :: !args
        done;
        expect p Lexer.RANGLE;
        TSpec (name, List.rev !args)
      end
      else if
        peek_tok p = Lexer.LBRACKET
        && match peek2_tok p with Lexer.NUMBER _ -> true | _ -> false
      then begin
        expect p Lexer.LBRACKET;
        let n = parse_const_int p in
        expect p Lexer.RBRACKET;
        TStack (name, n)
      end
      else TName name
  | got, pos -> raise (Error ("expected a type, found " ^ Lexer.show_token got, pos))

and parse_const_int p =
  match next p with
  | Lexer.NUMBER { iv; _ }, _ -> iv
  | got, pos -> raise (Error ("expected integer, found " ^ Lexer.show_token got, pos))

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let rec parse_expr p = parse_ternary p

and parse_ternary p =
  let c = parse_lor p in
  if accept p Lexer.QUESTION then begin
    let t = parse_expr p in
    expect p Lexer.COLON;
    let f = parse_ternary p in
    ETernary (c, t, f)
  end
  else c

and parse_lor p =
  let rec go acc =
    if accept p Lexer.PIPE_PIPE then go (EBinop (LOr, acc, parse_land p)) else acc
  in
  go (parse_land p)

and parse_land p =
  let rec go acc =
    if accept p Lexer.AMP_AMP then go (EBinop (LAnd, acc, parse_equality p)) else acc
  in
  go (parse_equality p)

and parse_equality p =
  let rec go acc =
    match peek_tok p with
    | Lexer.EQ_EQ ->
        ignore (next p);
        go (EBinop (Eq, acc, parse_rel p))
    | Lexer.NEQ ->
        ignore (next p);
        go (EBinop (Neq, acc, parse_rel p))
    | _ -> acc
  in
  go (parse_rel p)

and parse_rel p =
  let rec go acc =
    match peek_tok p with
    | Lexer.LANGLE ->
        ignore (next p);
        go (EBinop (Lt, acc, parse_bor p))
    | Lexer.RANGLE when not (rangle_is_shift p) ->
        ignore (next p);
        go (EBinop (Gt, acc, parse_bor p))
    | Lexer.LE ->
        ignore (next p);
        go (EBinop (Le, acc, parse_bor p))
    | Lexer.GE ->
        ignore (next p);
        go (EBinop (Ge, acc, parse_bor p))
    | _ -> acc
  in
  go (parse_bor p)

and rangle_is_shift p =
  (* two adjacent RANGLEs form a right shift *)
  match (Lexer.peek p.lx, Lexer.peek2 p.lx) with
  | (Lexer.RANGLE, p1), (Lexer.RANGLE, p2) ->
      p2.line = p1.line && p2.col = p1.col + 1
  | _ -> false

and parse_bor p =
  let rec go acc =
    if peek_tok p = Lexer.PIPE then begin
      ignore (next p);
      go (EBinop (BOr, acc, parse_bxor p))
    end
    else acc
  in
  go (parse_bxor p)

and parse_bxor p =
  let rec go acc =
    if accept p Lexer.CARET then go (EBinop (BXor, acc, parse_band p)) else acc
  in
  go (parse_band p)

and parse_band p =
  let rec go acc =
    if peek_tok p = Lexer.AMP then begin
      ignore (next p);
      go (EBinop (BAnd, acc, parse_shift p))
    end
    else acc
  in
  go (parse_shift p)

and parse_shift p =
  let rec go acc =
    match peek_tok p with
    | Lexer.SHL ->
        ignore (next p);
        go (EBinop (Shl, acc, parse_additive p))
    | Lexer.RANGLE when rangle_is_shift p ->
        ignore (next p);
        ignore (next p);
        go (EBinop (Shr, acc, parse_additive p))
    | _ -> acc
  in
  go (parse_additive p)

and parse_additive p =
  let rec go acc =
    match peek_tok p with
    | Lexer.PLUS ->
        ignore (next p);
        go (EBinop (Add, acc, parse_mult p))
    | Lexer.MINUS ->
        ignore (next p);
        go (EBinop (Sub, acc, parse_mult p))
    | Lexer.PLUS_SAT ->
        ignore (next p);
        go (EBinop (AddSat, acc, parse_mult p))
    | Lexer.MINUS_SAT ->
        ignore (next p);
        go (EBinop (SubSat, acc, parse_mult p))
    | Lexer.PLUSPLUS ->
        ignore (next p);
        go (EBinop (Concat, acc, parse_mult p))
    | _ -> acc
  in
  go (parse_mult p)

and parse_mult p =
  let rec go acc =
    match peek_tok p with
    | Lexer.STAR ->
        ignore (next p);
        go (EBinop (Mul, acc, parse_unary p))
    | Lexer.SLASH ->
        ignore (next p);
        go (EBinop (Div, acc, parse_unary p))
    | Lexer.PERCENT ->
        ignore (next p);
        go (EBinop (Mod, acc, parse_unary p))
    | _ -> acc
  in
  go (parse_unary p)

and parse_unary p =
  match peek_tok p with
  | Lexer.BANG ->
      ignore (next p);
      EUnop (LNot, parse_unary p)
  | Lexer.TILDE ->
      ignore (next p);
      EUnop (BitNot, parse_unary p)
  | Lexer.MINUS ->
      ignore (next p);
      EUnop (Neg, parse_unary p)
  | _ -> parse_postfix p

and parse_postfix p =
  let rec go acc =
    match peek_tok p with
    | Lexer.DOT ->
        ignore (next p);
        let m = expect_ident p in
        go (EMember (acc, m))
    | Lexer.LBRACKET ->
        ignore (next p);
        let i = parse_expr p in
        if accept p Lexer.COLON then begin
          let lo = parse_expr p in
          expect p Lexer.RBRACKET;
          match (i, lo) with
          | EInt { iv = hi; _ }, EInt { iv = lo; _ } -> go (ESlice (acc, hi, lo))
          | _ -> err p "slice bounds must be constant"
        end
        else begin
          expect p Lexer.RBRACKET;
          go (EIndex (acc, i))
        end
    | Lexer.LPAREN ->
        ignore (next p);
        let args = parse_args p in
        expect p Lexer.RPAREN;
        go (ECall (acc, args))
    | Lexer.LANGLE -> (
        (* possible explicit type argument: m<bit<16>>(...) *)
        match
          try_parse p (fun p ->
              expect p Lexer.LANGLE;
              let t = parse_type p in
              expect p Lexer.RANGLE;
              expect p Lexer.LPAREN;
              let args = parse_args p in
              expect p Lexer.RPAREN;
              (t, args))
        with
        | Some (t, args) -> go (ECall (acc, ETypeArg t :: args))
        | None -> acc)
    | _ -> acc
  in
  go (parse_primary p)

and parse_args p =
  if peek_tok p = Lexer.RPAREN then []
  else begin
    let args = ref [ parse_expr p ] in
    while accept p Lexer.COMMA do
      args := parse_expr p :: !args
    done;
    List.rev !args
  end

and parse_primary p =
  match peek_tok p with
  | Lexer.NUMBER { iv; width; signed; _ } ->
      ignore (next p);
      let value = Option.map (fun w -> Bitv.Bits.of_int ~width:w iv) width in
      EInt { value; iv; width; signed }
  | Lexer.STRING s ->
      ignore (next p);
      EString s
  | Lexer.UNDERSCORE ->
      ignore (next p);
      EDontCare
  | Lexer.IDENT "true" ->
      ignore (next p);
      EBool true
  | Lexer.IDENT "false" ->
      ignore (next p);
      EBool false
  | Lexer.IDENT "default" ->
      ignore (next p);
      EDefault
  | Lexer.IDENT name ->
      ignore (next p);
      EVar name
  | Lexer.LPAREN -> (
      ignore (next p);
      (* cast or parenthesized expression *)
      match peek_tok p with
      | Lexer.IDENT ("bit" | "int" | "bool" | "varbit") ->
          let t = parse_type p in
          expect p Lexer.RPAREN;
          ECast (t, parse_unary p)
      | _ ->
          let e = parse_expr p in
          expect p Lexer.RPAREN;
          e)
  | Lexer.LBRACE ->
      ignore (next p);
      let es = ref [] in
      if peek_tok p <> Lexer.RBRACE then begin
        es := [ parse_expr p ];
        while accept p Lexer.COMMA do
          if peek_tok p <> Lexer.RBRACE then es := parse_expr p :: !es
        done
      end;
      expect p Lexer.RBRACE;
      EList (List.rev !es)
  | got -> err p ("expected an expression, found " ^ Lexer.show_token got)

(* select patterns allow masks and ranges at the top level *)
let rec parse_select_pattern p =
  let e =
    match peek_tok p with
    | Lexer.LPAREN ->
        ignore (next p);
        let es = ref [ parse_select_pattern_atom p ] in
        while accept p Lexer.COMMA do
          es := parse_select_pattern_atom p :: !es
        done;
        expect p Lexer.RPAREN;
        (match List.rev !es with [ e ] -> e | es -> EList es)
    | _ -> parse_select_pattern_atom p
  in
  e

and parse_select_pattern_atom p =
  let e = parse_expr p in
  if accept p Lexer.AMP3 then EMask (e, parse_expr p)
  else if accept p Lexer.DOTDOT then ERange (e, parse_expr p)
  else e

(* ------------------------------------------------------------------ *)
(* Annotations *)

let parse_anno p =
  expect p Lexer.AT;
  let name = expect_ident p in
  if accept p Lexer.LPAREN then begin
    let args = ref [] in
    if peek_tok p <> Lexer.RPAREN then begin
      let parse_arg p =
        match (peek_tok p, peek2_tok p) with
        | Lexer.STRING s, _ ->
            ignore (next p);
            AnnoString s
        | Lexer.IDENT k, Lexer.ASSIGN ->
            ignore (next p);
            ignore (next p);
            AnnoKv (k, parse_expr p)
        | _ -> AnnoExpr (parse_expr p)
      in
      args := [ parse_arg p ];
      while accept p Lexer.COMMA do
        args := parse_arg p :: !args
      done
    end;
    expect p Lexer.RPAREN;
    { an_name = name; an_args = List.rev !args }
  end
  else { an_name = name; an_args = [] }

let parse_annos p =
  let rec go acc = if peek_tok p = Lexer.AT then go (parse_anno p :: acc) else List.rev acc in
  go []

(* ------------------------------------------------------------------ *)
(* Statements *)

let is_decl_start p =
  (* a statement starting with [TYPE IDENT] is a variable declaration *)
  match (peek_tok p, peek2_tok p) with
  | Lexer.IDENT ("bit" | "int" | "varbit"), Lexer.LANGLE -> true
  | Lexer.IDENT "bool", Lexer.IDENT _ -> true
  | Lexer.IDENT _, Lexer.IDENT _ -> true
  | _ -> false

let rec parse_stmt p =
  let pos = cur_pos p in
  let _annos = parse_annos p in
  match peek_tok p with
  | Lexer.LBRACE -> SBlock (parse_block p)
  | Lexer.SEMI ->
      ignore (next p);
      SEmpty
  | Lexer.IDENT "if" ->
      ignore (next p);
      expect p Lexer.LPAREN;
      let c = parse_expr p in
      expect p Lexer.RPAREN;
      let then_ = parse_stmt_as_block p in
      let else_ =
        if peek_tok p = Lexer.IDENT "else" then begin
          ignore (next p);
          parse_stmt_as_block p
        end
        else []
      in
      SIf (pos, c, then_, else_)
  | Lexer.IDENT "switch" ->
      ignore (next p);
      expect p Lexer.LPAREN;
      let e = parse_expr p in
      expect p Lexer.RPAREN;
      expect p Lexer.LBRACE;
      let cases = ref [] in
      while peek_tok p <> Lexer.RBRACE do
        let labels = ref [] in
        let rec collect () =
          (match next p with
          | Lexer.IDENT l, _ -> labels := l :: !labels
          | Lexer.UNDERSCORE, _ -> labels := "default" :: !labels
          | got, pos -> raise (Error ("bad switch label " ^ Lexer.show_token got, pos)));
          expect p Lexer.COLON;
          match peek_tok p with
          | Lexer.IDENT _ when peek2_tok p = Lexer.COLON -> collect ()
          | Lexer.UNDERSCORE -> collect ()
          | _ -> ()
        in
        collect ();
        let body = if peek_tok p = Lexer.LBRACE then Some (parse_block p) else None in
        cases := { sw_labels = List.rev !labels; sw_body = body } :: !cases
      done;
      expect p Lexer.RBRACE;
      SSwitch (pos, e, List.rev !cases)
  | Lexer.IDENT "return" ->
      ignore (next p);
      if accept p Lexer.SEMI then SReturn (pos, None)
      else begin
        let e = parse_expr p in
        expect p Lexer.SEMI;
        SReturn (pos, Some e)
      end
  | Lexer.IDENT "exit" ->
      ignore (next p);
      expect p Lexer.SEMI;
      SExit pos
  | Lexer.IDENT "const" ->
      ignore (next p);
      let t = parse_type p in
      let name = expect_ident p in
      expect p Lexer.ASSIGN;
      let e = parse_expr p in
      expect p Lexer.SEMI;
      SConstDecl (pos, t, name, e)
  | _ when is_decl_start p ->
      let t = parse_type p in
      let name = expect_ident p in
      let init =
        if accept p Lexer.ASSIGN then Some (parse_expr p) else None
      in
      expect p Lexer.SEMI;
      SVarDecl (pos, t, name, init)
  | _ ->
      (* assignment or call *)
      let lhs = parse_postfix p in
      if accept p Lexer.ASSIGN then begin
        let rhs = parse_expr p in
        expect p Lexer.SEMI;
        SAssign (pos, lhs, rhs)
      end
      else begin
        expect p Lexer.SEMI;
        match lhs with
        | ECall (f, args) -> SCall (pos, f, args)
        | _ -> err p "expected an assignment or a call"
      end

and parse_stmt_as_block p =
  match parse_stmt p with SBlock b -> b | s -> [ s ]

and parse_block p =
  expect p Lexer.LBRACE;
  let stmts = ref [] in
  while peek_tok p <> Lexer.RBRACE do
    stmts := parse_stmt p :: !stmts
  done;
  expect p Lexer.RBRACE;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_params p =
  expect p Lexer.LPAREN;
  let params = ref [] in
  if peek_tok p <> Lexer.RPAREN then begin
    let parse_param p =
      let _annos = parse_annos p in
      let dir =
        match peek_tok p with
        | Lexer.IDENT "in" when (match peek2_tok p with Lexer.IDENT _ -> true | _ -> false) ->
            ignore (next p);
            DirIn
        | Lexer.IDENT "out" ->
            ignore (next p);
            DirOut
        | Lexer.IDENT "inout" ->
            ignore (next p);
            DirInOut
        | _ -> DirNone
      in
      let t = parse_type p in
      let name = expect_ident p in
      { par_dir = dir; par_typ = t; par_name = name }
    in
    params := [ parse_param p ];
    while accept p Lexer.COMMA do
      params := parse_param p :: !params
    done
  end;
  expect p Lexer.RPAREN;
  List.rev !params

let parse_fields p =
  expect p Lexer.LBRACE;
  let fields = ref [] in
  while peek_tok p <> Lexer.RBRACE do
    let annos = parse_annos p in
    let t = parse_type p in
    let name = expect_ident p in
    expect p Lexer.SEMI;
    fields := { f_name = name; f_typ = t; f_annos = annos } :: !fields
  done;
  expect p Lexer.RBRACE;
  List.rev !fields

let parse_action p =
  (* "action" already consumed; annotations passed in *)
  fun annos ->
    let name = expect_ident p in
    let params = parse_params p in
    let body = parse_block p in
    { act_name = name; act_params = params; act_body = body; act_annos = annos }

let parse_table p annos =
  let name = expect_ident p in
  expect p Lexer.LBRACE;
  let keys = ref [] in
  let actions = ref [] in
  let default = ref None in
  let entries = ref [] in
  let size = ref None in
  let props = ref [] in
  while peek_tok p <> Lexer.RBRACE do
    match next p with
    | Lexer.IDENT "key", _ ->
        expect p Lexer.ASSIGN;
        expect p Lexer.LBRACE;
        while peek_tok p <> Lexer.RBRACE do
          let e = parse_expr p in
          expect p Lexer.COLON;
          let kind = expect_ident p in
          let annos = parse_annos p in
          expect p Lexer.SEMI;
          keys := { tk_expr = e; tk_kind = kind; tk_annos = annos } :: !keys
        done;
        expect p Lexer.RBRACE;
        ignore (accept p Lexer.SEMI)
    | Lexer.IDENT "actions", _ ->
        expect p Lexer.ASSIGN;
        expect p Lexer.LBRACE;
        while peek_tok p <> Lexer.RBRACE do
          let annos = parse_annos p in
          (* NoAction or qualified .NoAction *)
          ignore (accept p Lexer.DOT);
          let a = expect_ident p in
          (* allow and ignore parameter bindings like a(x) in action lists *)
          if accept p Lexer.LPAREN then begin
            let rec skip depth =
              match fst (next p) with
              | Lexer.LPAREN -> skip (depth + 1)
              | Lexer.RPAREN -> if depth > 0 then skip (depth - 1)
              | _ -> skip depth
            in
            skip 0
          end;
          expect p Lexer.SEMI;
          actions := (a, annos) :: !actions
        done;
        expect p Lexer.RBRACE;
        ignore (accept p Lexer.SEMI)
    | Lexer.IDENT ("default_action" | "const_default_action"), _ ->
        expect p Lexer.ASSIGN;
        ignore (accept p Lexer.DOT);
        let a = expect_ident p in
        let args =
          if accept p Lexer.LPAREN then begin
            let args = parse_args p in
            expect p Lexer.RPAREN;
            args
          end
          else []
        in
        expect p Lexer.SEMI;
        default := Some (a, args)
    | Lexer.IDENT "const", _ when peek_tok p = Lexer.IDENT "entries" ->
        ignore (next p);
        expect p Lexer.ASSIGN;
        expect p Lexer.LBRACE;
        while peek_tok p <> Lexer.RBRACE do
          let annos = parse_annos p in
          let prio =
            match find_anno "priority" annos with
            | Some a -> anno_int a
            | None -> None
          in
          let ks =
            if accept p Lexer.LPAREN then begin
              let ks = ref [ parse_select_pattern_atom p ] in
              while accept p Lexer.COMMA do
                ks := parse_select_pattern_atom p :: !ks
              done;
              expect p Lexer.RPAREN;
              List.rev !ks
            end
            else [ parse_select_pattern_atom p ]
          in
          expect p Lexer.COLON;
          let a = expect_ident p in
          let args =
            if accept p Lexer.LPAREN then begin
              let args = parse_args p in
              expect p Lexer.RPAREN;
              args
            end
            else []
          in
          expect p Lexer.SEMI;
          entries := { te_keys = ks; te_action = a; te_args = args; te_priority = prio } :: !entries
        done;
        expect p Lexer.RBRACE;
        ignore (accept p Lexer.SEMI)
    | Lexer.IDENT "const", _ when peek_tok p = Lexer.IDENT "default_action" ->
        ignore (next p);
        expect p Lexer.ASSIGN;
        ignore (accept p Lexer.DOT);
        let a = expect_ident p in
        let args =
          if accept p Lexer.LPAREN then begin
            let args = parse_args p in
            expect p Lexer.RPAREN;
            args
          end
          else []
        in
        expect p Lexer.SEMI;
        default := Some (a, args)
    | Lexer.IDENT "size", _ ->
        expect p Lexer.ASSIGN;
        size := Some (parse_const_int p);
        expect p Lexer.SEMI
    | Lexer.IDENT prop, _ ->
        expect p Lexer.ASSIGN;
        let e = parse_expr p in
        expect p Lexer.SEMI;
        props := (prop, e) :: !props
    | got, pos -> raise (Error ("unexpected table property " ^ Lexer.show_token got, pos))
  done;
  expect p Lexer.RBRACE;
  {
    tbl_name = name;
    tbl_keys = List.rev !keys;
    tbl_actions = List.rev !actions;
    tbl_default = !default;
    tbl_entries = List.rev !entries;
    tbl_size = !size;
    tbl_annos = annos;
    tbl_props = List.rev !props;
  }

let parse_locals p =
  (* local declarations inside parsers/controls, until "state"/"apply" *)
  let locals = ref [] in
  let continue = ref true in
  while !continue do
    let annos = parse_annos p in
    match peek_tok p with
    | Lexer.IDENT "state" | Lexer.IDENT "apply" | Lexer.RBRACE ->
        if annos <> [] then err p "dangling annotation";
        continue := false
    | Lexer.IDENT "action" ->
        ignore (next p);
        locals := LAction (parse_action p annos) :: !locals
    | Lexer.IDENT "table" ->
        ignore (next p);
        locals := LTable (parse_table p annos) :: !locals
    | Lexer.IDENT "const" ->
        ignore (next p);
        let t = parse_type p in
        let name = expect_ident p in
        expect p Lexer.ASSIGN;
        let e = parse_expr p in
        expect p Lexer.SEMI;
        locals := LConst (t, name, e) :: !locals
    | _ -> (
        (* variable declaration or instantiation *)
        let t = parse_type p in
        match peek_tok p with
        | Lexer.LPAREN ->
            (* instantiation: register<bit<32>>(1024) name; *)
            ignore (next p);
            let args = parse_args p in
            expect p Lexer.RPAREN;
            let name = expect_ident p in
            expect p Lexer.SEMI;
            locals := LInstantiation (t, args, name) :: !locals
        | _ ->
            let name = expect_ident p in
            let init = if accept p Lexer.ASSIGN then Some (parse_expr p) else None in
            expect p Lexer.SEMI;
            locals := LVar (t, name, init) :: !locals)
  done;
  List.rev !locals

let parse_parser_states p =
  let states = ref [] in
  while peek_tok p = Lexer.IDENT "state" do
    ignore (next p);
    let name = expect_ident p in
    expect p Lexer.LBRACE;
    let stmts = ref [] in
    while peek_tok p <> Lexer.RBRACE && peek_tok p <> Lexer.IDENT "transition" do
      stmts := parse_stmt p :: !stmts
    done;
    let trans =
      if accept p (Lexer.IDENT "transition") then begin
        if peek_tok p = Lexer.IDENT "select" then begin
          ignore (next p);
          expect p Lexer.LPAREN;
          let keys = ref [ parse_expr p ] in
          while accept p Lexer.COMMA do
            keys := parse_expr p :: !keys
          done;
          expect p Lexer.RPAREN;
          expect p Lexer.LBRACE;
          let cases = ref [] in
          while peek_tok p <> Lexer.RBRACE do
            let pat = parse_select_pattern p in
            expect p Lexer.COLON;
            let nxt = expect_ident p in
            expect p Lexer.SEMI;
            let keys = match pat with EList es -> es | e -> [ e ] in
            cases := { sel_keys = keys; sel_next = nxt } :: !cases
          done;
          expect p Lexer.RBRACE;
          TrSelect (List.rev !keys, List.rev !cases)
        end
        else begin
          let nxt = expect_ident p in
          expect p Lexer.SEMI;
          TrDirect nxt
        end
      end
      else TrDirect "reject"
    in
    expect p Lexer.RBRACE;
    states := { st_name = name; st_stmts = List.rev !stmts; st_trans = trans } :: !states
  done;
  List.rev !states

let rec parse_decl p annos =
  match peek_tok p with
  | Lexer.IDENT "header" ->
      ignore (next p);
      let name = expect_ident p in
      let fields = parse_fields p in
      ignore (accept p Lexer.SEMI);
      Some (DHeader (name, fields, annos))
  | Lexer.IDENT "header_union" ->
      ignore (next p);
      let name = expect_ident p in
      let fields = parse_fields p in
      ignore (accept p Lexer.SEMI);
      Some (DHeaderUnion (name, fields, annos))
  | Lexer.IDENT "struct" ->
      ignore (next p);
      let name = expect_ident p in
      let fields = parse_fields p in
      ignore (accept p Lexer.SEMI);
      Some (DStruct (name, fields, annos))
  | Lexer.IDENT "typedef" ->
      ignore (next p);
      let t = parse_type p in
      let name = expect_ident p in
      expect p Lexer.SEMI;
      Some (DTypedef (t, name))
  | Lexer.IDENT "enum" ->
      ignore (next p);
      if peek_tok p = Lexer.IDENT "bit" then begin
        let t = parse_type p in
        let name = expect_ident p in
        expect p Lexer.LBRACE;
        let members = ref [] in
        while peek_tok p <> Lexer.RBRACE do
          let m = expect_ident p in
          expect p Lexer.ASSIGN;
          let e = parse_expr p in
          ignore (accept p Lexer.COMMA);
          members := (m, e) :: !members
        done;
        expect p Lexer.RBRACE;
        Some (DSerEnum (t, name, List.rev !members))
      end
      else begin
        let name = expect_ident p in
        expect p Lexer.LBRACE;
        let members = ref [] in
        while peek_tok p <> Lexer.RBRACE do
          members := expect_ident p :: !members;
          ignore (accept p Lexer.COMMA)
        done;
        expect p Lexer.RBRACE;
        Some (DEnum (name, List.rev !members))
      end
  | Lexer.IDENT "error" ->
      ignore (next p);
      expect p Lexer.LBRACE;
      let members = ref [] in
      while peek_tok p <> Lexer.RBRACE do
        members := expect_ident p :: !members;
        ignore (accept p Lexer.COMMA)
      done;
      expect p Lexer.RBRACE;
      Some (DError (List.rev !members))
  | Lexer.IDENT "match_kind" ->
      ignore (next p);
      expect p Lexer.LBRACE;
      let members = ref [] in
      while peek_tok p <> Lexer.RBRACE do
        members := expect_ident p :: !members;
        ignore (accept p Lexer.COMMA)
      done;
      expect p Lexer.RBRACE;
      ignore (accept p Lexer.SEMI);
      Some (DMatchKind (List.rev !members))
  | Lexer.IDENT "const" ->
      ignore (next p);
      let t = parse_type p in
      let name = expect_ident p in
      expect p Lexer.ASSIGN;
      let e = parse_expr p in
      expect p Lexer.SEMI;
      Some (DConst (t, name, e))
  | Lexer.IDENT "action" ->
      ignore (next p);
      Some (DAction (parse_action p annos))
  | Lexer.IDENT "parser" ->
      ignore (next p);
      let name = expect_ident p in
      skip_type_params p;
      let params = parse_params p in
      if accept p Lexer.SEMI then Some (DParserType (name, params))
      else begin
        expect p Lexer.LBRACE;
        let locals = parse_locals p in
        let states = parse_parser_states p in
        expect p Lexer.RBRACE;
        Some (DParser ({ p_name = name; p_params = params; p_locals = locals; p_states = states }, annos))
      end
  | Lexer.IDENT "control" ->
      ignore (next p);
      let name = expect_ident p in
      skip_type_params p;
      let params = parse_params p in
      if accept p Lexer.SEMI then Some (DControlType (name, params))
      else begin
        expect p Lexer.LBRACE;
        let locals = parse_locals p in
        let body =
          if peek_tok p = Lexer.IDENT "apply" then begin
            ignore (next p);
            parse_block p
          end
          else []
        in
        expect p Lexer.RBRACE;
        Some (DControl ({ c_name = name; c_params = params; c_locals = locals; c_body = body }, annos))
      end
  | Lexer.IDENT "extern" ->
      ignore (next p);
      let name =
        match peek_tok p with
        | Lexer.IDENT n -> n
        | _ -> "anonymous"
      in
      (* permissive: skip to matching close *)
      let rec skim depth =
        match fst (next p) with
        | Lexer.LBRACE -> skim (depth + 1)
        | Lexer.RBRACE -> if depth > 1 then skim (depth - 1)
        | Lexer.SEMI when depth = 0 -> ()
        | Lexer.EOF -> err p "unterminated extern declaration"
        | _ -> skim depth
      in
      skim 0;
      Some (DExtern (name, []))
  | Lexer.IDENT "package" ->
      ignore (next p);
      let name = expect_ident p in
      skip_type_params p;
      let params = parse_params p in
      expect p Lexer.SEMI;
      Some (DPackage (name, params))
  | Lexer.EOF -> None
  | Lexer.IDENT _ ->
      (* package / extern instantiation: Type(args) name; *)
      let t = parse_type p in
      let tname = match t with TName n | TSpec (n, _) -> n | _ -> err p "bad instantiation" in
      expect p Lexer.LPAREN;
      let args = parse_args p in
      expect p Lexer.RPAREN;
      let iname = expect_ident p in
      expect p Lexer.SEMI;
      Some (DInstantiation (tname, args, iname, annos))
  | got -> err p ("expected a declaration, found " ^ Lexer.show_token got)

and skip_type_params p =
  if peek_tok p = Lexer.LANGLE then begin
    let rec go depth =
      match fst (next p) with
      | Lexer.LANGLE -> go (depth + 1)
      | Lexer.RANGLE -> if depth > 1 then go (depth - 1)
      | Lexer.EOF -> err p "unterminated type parameters"
      | _ -> go depth
    in
    go 0
  end

let parse_program src =
  let p = { lx = Lexer.create src } in
  let decls = ref [] in
  let rec go () =
    let annos = parse_annos p in
    match parse_decl p annos with
    | Some d ->
        decls := d :: !decls;
        go ()
    | None -> ()
  in
  go ();
  List.rev !decls

let parse_expr_string src =
  let p = { lx = Lexer.create src } in
  parse_expr p
