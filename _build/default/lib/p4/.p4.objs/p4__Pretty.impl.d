lib/p4/pretty.ml: Ast Format List
