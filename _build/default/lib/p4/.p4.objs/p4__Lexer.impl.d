lib/p4/lexer.ml: Ast Buffer Printf String
