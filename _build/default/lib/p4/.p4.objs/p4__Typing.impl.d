lib/p4/typing.ml: Ast Format Hashtbl List Option
