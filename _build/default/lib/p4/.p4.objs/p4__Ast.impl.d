lib/p4/ast.ml: Bitv List Option Printf
