lib/p4/passes.ml: Ast Bitv List Option Typing
