lib/p4/parser.ml: Ast Bitv Lexer List Option Printf
