(* P4 source pretty-printer.  [program] output re-parses to the same
   AST (round-trip tested), which is how Progzoo's generated programs
   are fed through the real front end. *)

open Ast
open Format

let rec pp_typ ppf = function
  | TBit 1 -> fprintf ppf "bit"
  | TBit w -> fprintf ppf "bit<%d>" w
  | TInt w -> fprintf ppf "int<%d>" w
  | TVarbit w -> fprintf ppf "varbit<%d>" w
  | TBool -> fprintf ppf "bool"
  | TError -> fprintf ppf "error"
  | TVoid -> fprintf ppf "void"
  | TName n -> fprintf ppf "%s" n
  | TStack (h, n) -> fprintf ppf "%s[%d]" h n
  | TSpec (n, args) ->
      fprintf ppf "%s<%a>" n (pp_print_list ~pp_sep:(fun p () -> fprintf p ", ") pp_typ) args

let pp_unop ppf = function
  | Neg -> fprintf ppf "-"
  | BitNot -> fprintf ppf "~"
  | LNot -> fprintf ppf "!"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | AddSat -> "|+|"
  | SubSat -> "|-|"
  | Shl -> "<<"
  | Shr -> ">>"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | LAnd -> "&&"
  | LOr -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Concat -> "++"

let rec pp_expr ppf = function
  | EBool true -> fprintf ppf "true"
  | EBool false -> fprintf ppf "false"
  | EInt { iv; width = Some w; signed; _ } ->
      fprintf ppf "%d%c%d" w (if signed then 's' else 'w') iv
  | EInt { iv; _ } -> fprintf ppf "%d" iv
  | EString s -> fprintf ppf "%S" s
  | EVar n -> fprintf ppf "%s" n
  | EMember (e, f) -> fprintf ppf "%a.%s" pp_expr e f
  | EIndex (e, i) -> fprintf ppf "%a[%a]" pp_expr e pp_expr i
  | ESlice (e, hi, lo) -> fprintf ppf "%a[%d:%d]" pp_expr e hi lo
  | EUnop (op, e) -> fprintf ppf "(%a%a)" pp_unop op pp_expr e
  | EBinop (op, a, b) -> fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | ETernary (c, t, f) -> fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr f
  | ECast (t, e) -> fprintf ppf "(%a)%a" pp_typ t pp_expr e
  | ECall (f, ETypeArg t :: args) ->
      fprintf ppf "%a<%a>(%a)" pp_expr f pp_typ t pp_args args
  | ECall (f, args) -> fprintf ppf "%a(%a)" pp_expr f pp_args args
  | ETypeArg t -> pp_typ ppf t
  | EList es -> fprintf ppf "{%a}" pp_args es
  | EDontCare -> fprintf ppf "_"
  | EDefault -> fprintf ppf "default"
  | EMask (e, m) -> fprintf ppf "%a &&& %a" pp_expr e pp_expr m
  | ERange (a, b) -> fprintf ppf "%a .. %a" pp_expr a pp_expr b

and pp_args ppf args =
  pp_print_list ~pp_sep:(fun p () -> fprintf p ", ") pp_expr ppf args

let pp_anno ppf a =
  let pp_arg ppf = function
    | AnnoString s -> fprintf ppf "%S" s
    | AnnoExpr e -> pp_expr ppf e
    | AnnoKv (k, e) -> fprintf ppf "%s = %a" k pp_expr e
  in
  if a.an_args = [] then fprintf ppf "@%s" a.an_name
  else
    fprintf ppf "@%s(%a)" a.an_name
      (pp_print_list ~pp_sep:(fun p () -> fprintf p ", ") pp_arg)
      a.an_args

let pp_annos ppf annos =
  List.iter (fun a -> fprintf ppf "%a " pp_anno a) annos

let rec pp_stmt ppf = function
  | SAssign (_, l, r) -> fprintf ppf "@[<h>%a = %a;@]" pp_expr l pp_expr r
  | SCall (_, f, args) -> fprintf ppf "@[<h>%a(%a);@]" pp_expr f pp_args args
  | SIf (_, c, t, []) -> fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | SIf (_, c, t, e) ->
      fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c pp_block t
        pp_block e
  | SSwitch (_, e, cases) ->
      let pp_case ppf c =
        List.iter (fun l -> fprintf ppf "%s:@ " l) c.sw_labels;
        match c.sw_body with
        | Some b -> fprintf ppf "@[<v 2>{@,%a@]@,}" pp_block b
        | None -> ()
      in
      fprintf ppf "@[<v 2>switch (%a) {@,%a@]@,}" pp_expr e
        (pp_print_list ~pp_sep:pp_print_cut pp_case)
        cases
  | SVarDecl (_, t, n, None) -> fprintf ppf "%a %s;" pp_typ t n
  | SVarDecl (_, t, n, Some e) -> fprintf ppf "%a %s = %a;" pp_typ t n pp_expr e
  | SConstDecl (_, t, n, e) -> fprintf ppf "const %a %s = %a;" pp_typ t n pp_expr e
  | SReturn (_, None) -> fprintf ppf "return;"
  | SReturn (_, Some e) -> fprintf ppf "return %a;" pp_expr e
  | SExit _ -> fprintf ppf "exit;"
  | SBlock b -> fprintf ppf "@[<v 2>{@,%a@]@,}" pp_block b
  | SEmpty -> fprintf ppf ";"

and pp_block ppf stmts =
  pp_print_list ~pp_sep:pp_print_cut pp_stmt ppf stmts

let pp_param ppf p =
  let dir =
    match p.par_dir with
    | DirNone -> ""
    | DirIn -> "in "
    | DirOut -> "out "
    | DirInOut -> "inout "
  in
  fprintf ppf "%s%a %s" dir pp_typ p.par_typ p.par_name

let pp_params ppf ps =
  pp_print_list ~pp_sep:(fun p () -> fprintf p ", ") pp_param ppf ps

let pp_field ppf f =
  fprintf ppf "%a%a %s;" pp_annos f.f_annos pp_typ f.f_typ f.f_name

let pp_fields ppf fs = pp_print_list ~pp_sep:pp_print_cut pp_field ppf fs

let pp_action ppf (a : action_decl) =
  fprintf ppf "@[<v 2>%aaction %s(%a) {@,%a@]@,}" pp_annos a.act_annos a.act_name pp_params
    a.act_params pp_block a.act_body

let pp_table ppf (t : table) =
  fprintf ppf "@[<v 2>%atable %s {@," pp_annos t.tbl_annos t.tbl_name;
  if t.tbl_keys <> [] then begin
    fprintf ppf "@[<v 2>key = {@,";
    List.iter
      (fun k ->
        fprintf ppf "%a : %s %a;@," pp_expr k.tk_expr k.tk_kind pp_annos k.tk_annos)
      t.tbl_keys;
    fprintf ppf "@]}@,"
  end;
  fprintf ppf "@[<v 2>actions = {@,";
  List.iter (fun (a, annos) -> fprintf ppf "%a%s;@," pp_annos annos a) t.tbl_actions;
  fprintf ppf "@]}@,";
  (match t.tbl_default with
  | Some (a, args) -> fprintf ppf "default_action = %s(%a);@," a pp_args args
  | None -> ());
  if t.tbl_entries <> [] then begin
    fprintf ppf "@[<v 2>const entries = {@,";
    List.iter
      (fun e ->
        (match e.te_priority with
        | Some pr -> fprintf ppf "@priority(%d) " pr
        | None -> ());
        fprintf ppf "(%a) : %s(%a);@," pp_args e.te_keys e.te_action pp_args e.te_args)
      t.tbl_entries;
    fprintf ppf "@]}@,"
  end;
  (match t.tbl_size with Some n -> fprintf ppf "size = %d;@," n | None -> ());
  List.iter (fun (k, e) -> fprintf ppf "%s = %a;@," k pp_expr e) t.tbl_props;
  fprintf ppf "@]}"

let pp_local ppf = function
  | LVar (t, n, None) -> fprintf ppf "%a %s;" pp_typ t n
  | LVar (t, n, Some e) -> fprintf ppf "%a %s = %a;" pp_typ t n pp_expr e
  | LConst (t, n, e) -> fprintf ppf "const %a %s = %a;" pp_typ t n pp_expr e
  | LAction a -> pp_action ppf a
  | LTable t -> pp_table ppf t
  | LInstantiation (t, args, n) -> fprintf ppf "%a(%a) %s;" pp_typ t pp_args args n

let pp_transition ppf = function
  | TrDirect n -> fprintf ppf "transition %s;" n
  | TrSelect (keys, cases) ->
      let pp_case ppf c =
        match c.sel_keys with
        | [ k ] -> fprintf ppf "%a : %s;" pp_expr k c.sel_next
        | ks -> fprintf ppf "(%a) : %s;" pp_args ks c.sel_next
      in
      fprintf ppf "@[<v 2>transition select(%a) {@,%a@]@,}" pp_args keys
        (pp_print_list ~pp_sep:pp_print_cut pp_case)
        cases

let pp_state ppf (s : parser_state) =
  fprintf ppf "@[<v 2>state %s {@,%a%s%a@]@,}" s.st_name pp_block s.st_stmts
    (if s.st_stmts = [] then "" else "\n")
    pp_transition s.st_trans

let pp_decl ppf = function
  | DHeader (n, fs, annos) ->
      fprintf ppf "@[<v 2>%aheader %s {@,%a@]@,}" pp_annos annos n pp_fields fs
  | DStruct (n, fs, annos) ->
      fprintf ppf "@[<v 2>%astruct %s {@,%a@]@,}" pp_annos annos n pp_fields fs
  | DHeaderUnion (n, fs, annos) ->
      fprintf ppf "@[<v 2>%aheader_union %s {@,%a@]@,}" pp_annos annos n pp_fields fs
  | DTypedef (t, n) -> fprintf ppf "typedef %a %s;" pp_typ t n
  | DEnum (n, ms) ->
      fprintf ppf "@[<v 2>enum %s {@,%a@]@,}" n
        (pp_print_list ~pp_sep:(fun p () -> fprintf p ",@,") pp_print_string)
        ms
  | DSerEnum (t, n, ms) ->
      fprintf ppf "@[<v 2>enum %a %s {@,%a@]@,}" pp_typ t n
        (pp_print_list ~pp_sep:(fun p () -> fprintf p ",@,") (fun ppf (m, e) ->
             fprintf ppf "%s = %a" m pp_expr e))
        ms
  | DError ms ->
      fprintf ppf "@[<v 2>error {@,%a@]@,}"
        (pp_print_list ~pp_sep:(fun p () -> fprintf p ",@,") pp_print_string)
        ms
  | DMatchKind ms ->
      fprintf ppf "@[<v 2>match_kind {@,%a@]@,}"
        (pp_print_list ~pp_sep:(fun p () -> fprintf p ",@,") pp_print_string)
        ms
  | DConst (t, n, e) -> fprintf ppf "const %a %s = %a;" pp_typ t n pp_expr e
  | DParser (pd, annos) ->
      fprintf ppf "@[<v 2>%aparser %s(%a) {@,%a@,%a@]@,}" pp_annos annos pd.p_name pp_params
        pd.p_params
        (pp_print_list ~pp_sep:pp_print_cut pp_local)
        pd.p_locals
        (pp_print_list ~pp_sep:pp_print_cut pp_state)
        pd.p_states
  | DControl (cd, annos) ->
      fprintf ppf "@[<v 2>%acontrol %s(%a) {@,%a@,@[<v 2>apply {@,%a@]@,}@]@,}" pp_annos annos
        cd.c_name pp_params cd.c_params
        (pp_print_list ~pp_sep:pp_print_cut pp_local)
        cd.c_locals pp_block cd.c_body
  | DAction a -> pp_action ppf a
  | DExtern (n, _) -> fprintf ppf "extern %s;" n
  | DPackage (n, ps) -> fprintf ppf "package %s(%a);" n pp_params ps
  | DInstantiation (t, args, n, annos) ->
      fprintf ppf "%a%s(%a) %s;" pp_annos annos t pp_args args n
  | DParserType (n, ps) -> fprintf ppf "parser %s(%a);" n pp_params ps
  | DControlType (n, ps) -> fprintf ppf "control %s(%a);" n pp_params ps

let pp_program ppf prog =
  fprintf ppf "@[<v 0>%a@]@."
    (pp_print_list ~pp_sep:(fun p () -> fprintf p "@,@,") pp_decl)
    prog

let program_to_string prog = Format.asprintf "%a" pp_program prog
let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "@[<v 0>%a@]" pp_stmt s
