(* Abstract syntax for the P4-16 subset this toolchain supports.

   The subset corresponds to what P4Testgen sees after P4C's front end:
   headers, structs, header stacks, parsers with select transitions,
   controls with actions and match-action tables, extern method calls,
   and a top-level package instantiation.  Programs are produced either
   by the parser ({!Parser}) or programmatically ({!Progzoo}). *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

type typ =
  | TBit of int  (** [bit<n>] *)
  | TInt of int  (** [int<n>] (signed) *)
  | TVarbit of int  (** [varbit<n>]: max width *)
  | TBool
  | TError
  | TVoid
  | TName of string  (** reference to a header/struct/typedef/enum name *)
  | TStack of string * int  (** header stack [h\[n\]] *)
  | TSpec of string * typ list  (** specialized generic, e.g. [register<bit<32>>] *)

type dir = DirNone | DirIn | DirOut | DirInOut

type param = { par_dir : dir; par_typ : typ; par_name : string }

type anno = { an_name : string; an_args : anno_arg list }

and anno_arg = AnnoString of string | AnnoExpr of expr | AnnoKv of string * expr

and unop = Neg | BitNot | LNot

and binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | AddSat
  | SubSat
  | Shl
  | Shr
  | BAnd
  | BOr
  | BXor
  | LAnd
  | LOr
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Concat

and expr =
  | EBool of bool
  | EInt of { value : Bitv.Bits.t option; iv : int; width : int option; signed : bool }
      (** Integer literal.  [width = None] for arbitrary-precision
          literals whose width is inferred by {!Typing.infer_widths};
          [value] carries the exact bits once a width is known, [iv]
          the (possibly lossy) OCaml int view used for folding. *)
  | EString of string
  | EVar of string
  | EMember of expr * string
  | EIndex of expr * expr
  | ESlice of expr * int * int  (** [e\[hi:lo\]] *)
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | ETernary of expr * expr * expr
  | ECast of typ * expr
  | ECall of expr * expr list
      (** method/function call in expression position, e.g.
          [hdr.eth.isValid()], [pkt.lookahead<bit<16>>()] (the type
          argument is encoded as an [ETypeArg]) *)
  | ETypeArg of typ
  | EList of expr list  (** [{ e1, ..., en }] *)
  | EDontCare  (** [_] in select patterns and default entries *)
  | EDefault  (** the [default] keyword in select patterns *)
  | EMask of expr * expr  (** [e &&& mask] *)
  | ERange of expr * expr  (** [lo .. hi] *)

type stmt =
  | SAssign of pos * expr * expr
  | SCall of pos * expr * expr list
  | SIf of pos * expr * block * block
  | SSwitch of pos * expr * switch_case list
      (** [switch (t.apply().action_run) { ... }] *)
  | SVarDecl of pos * typ * string * expr option
  | SConstDecl of pos * typ * string * expr
  | SReturn of pos * expr option
  | SExit of pos
  | SBlock of block
  | SEmpty

and block = stmt list

and switch_case = {
  sw_labels : string list;  (** action names; ["default"] for default *)
  sw_body : block option;  (** [None] for fall-through labels *)
}

type select_case = { sel_keys : expr list; sel_next : string }

type transition =
  | TrDirect of string  (** "accept", "reject" or a state name *)
  | TrSelect of expr list * select_case list

type parser_state = {
  st_name : string;
  st_stmts : stmt list;
  st_trans : transition;
}

type table_key = { tk_expr : expr; tk_kind : string; tk_annos : anno list }

type table_entry = {
  te_keys : expr list;
  te_action : string;
  te_args : expr list;
  te_priority : int option;  (** from the [@priority] annotation *)
}

type table = {
  tbl_name : string;
  tbl_keys : table_key list;
  tbl_actions : (string * anno list) list;
  tbl_default : (string * expr list) option;
  tbl_entries : table_entry list;
  tbl_size : int option;
  tbl_annos : anno list;
  tbl_props : (string * expr) list;  (** other target-specific properties *)
}

type action_decl = {
  act_name : string;
  act_params : param list;
  act_body : block;
  act_annos : anno list;
}

type field = { f_name : string; f_typ : typ; f_annos : anno list }

type parser_decl = {
  p_name : string;
  p_params : param list;
  p_locals : local_decl list;
  p_states : parser_state list;
}

and control_decl = {
  c_name : string;
  c_params : param list;
  c_locals : local_decl list;
  c_body : block;
}

and local_decl =
  | LVar of typ * string * expr option
  | LConst of typ * string * expr
  | LAction of action_decl
  | LTable of table
  | LInstantiation of typ * expr list * string  (** e.g. register<bit<32>>(1024) r; *)

type decl =
  | DHeader of string * field list * anno list
  | DStruct of string * field list * anno list
  | DHeaderUnion of string * field list * anno list
  | DTypedef of typ * string
  | DEnum of string * string list
  | DSerEnum of typ * string * (string * expr) list  (** enum bit<n> X { ... } *)
  | DError of string list
  | DMatchKind of string list
  | DConst of typ * string * expr
  | DParser of parser_decl * anno list
  | DControl of control_decl * anno list
  | DAction of action_decl
  | DExtern of string * string list  (** name, raw method names (permissive) *)
  | DPackage of string * param list
  | DInstantiation of string * expr list * string * anno list
      (** package/extern instantiation: type, args, instance name *)
  | DParserType of string * param list  (** parser type declaration *)
  | DControlType of string * param list

type program = decl list

(* ------------------------------------------------------------------ *)
(* Helpers *)

let stmt_pos = function
  | SAssign (p, _, _)
  | SCall (p, _, _)
  | SIf (p, _, _, _)
  | SSwitch (p, _, _)
  | SVarDecl (p, _, _, _)
  | SConstDecl (p, _, _, _)
  | SReturn (p, _)
  | SExit p -> p
  | SBlock _ | SEmpty -> no_pos

let rec lvalue_base = function
  | EVar n -> n
  | EMember (e, _) | EIndex (e, _) | ESlice (e, _, _) -> lvalue_base e
  | _ -> invalid_arg "Ast.lvalue_base: not an l-value"

(** Renders an l-value as a dotted path, e.g. ["hdr.eth.type"]. *)
let rec lvalue_path = function
  | EVar n -> n
  | EMember (e, f) -> lvalue_path e ^ "." ^ f
  | EIndex (e, EInt { iv; _ }) -> Printf.sprintf "%s[%d]" (lvalue_path e) iv
  | EIndex (e, _) -> lvalue_path e ^ "[?]"
  | ESlice (e, hi, lo) -> Printf.sprintf "%s[%d:%d]" (lvalue_path e) hi lo
  | _ -> invalid_arg "Ast.lvalue_path: not an l-value"

let int_lit ?width iv =
  let value = Option.map (fun w -> Bitv.Bits.of_int ~width:w iv) width in
  EInt { value; iv; width; signed = false }

let find_anno name annos = List.find_opt (fun a -> a.an_name = name) annos

let has_anno name annos = Option.is_some (find_anno name annos)

let anno_string a =
  match a.an_args with
  | [ AnnoString s ] -> Some s
  | [ AnnoExpr (EString s) ] -> Some s
  | _ -> None

let anno_int a =
  match a.an_args with
  | [ AnnoExpr (EInt { iv; _ }) ] -> Some iv
  | _ -> None
