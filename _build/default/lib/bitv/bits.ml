(* Arbitrary-width bitvectors stored LSB-first in a byte buffer.
   Invariant: bits at positions >= width are zero (canonical form), so
   structural equality of (width, data) is value equality. *)

type t = { width : int; data : bytes }

let width v = v.width

let nbytes w = (w + 7) / 8

(* Zero out the unused high bits of the last byte. *)
let canon v =
  let w = v.width in
  let n = nbytes w in
  if n > 0 && w land 7 <> 0 then begin
    let mask = (1 lsl (w land 7)) - 1 in
    let last = Char.code (Bytes.get v.data (n - 1)) in
    Bytes.set v.data (n - 1) (Char.chr (last land mask))
  end;
  v

let make w = { width = w; data = Bytes.make (nbytes w) '\000' }

let zero w =
  if w < 0 then invalid_arg "Bits.zero: negative width";
  make w

let ones w =
  if w < 0 then invalid_arg "Bits.ones: negative width";
  let v = { width = w; data = Bytes.make (nbytes w) '\255' } in
  canon v

let get v i =
  if i < 0 || i >= v.width then invalid_arg "Bits.get: index out of range";
  Char.code (Bytes.get v.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* Internal: set bit in a mutable buffer under construction. *)
let set_bit data i b =
  let byte = Char.code (Bytes.get data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set data (i lsr 3) (Char.chr byte)

let init w f =
  let v = make w in
  for i = 0 to w - 1 do
    if f i then set_bit v.data i true
  done;
  v

let of_int ~width:w n =
  if w < 0 then invalid_arg "Bits.of_int: negative width";
  init w (fun i -> if i < 63 then (n asr i) land 1 = 1 else n < 0)

let of_bool_list bs =
  let n = List.length bs in
  let v = make n in
  List.iteri (fun i b -> if b then set_bit v.data (n - 1 - i) true) bs;
  v

let to_bool_list v =
  (* MSB-first: bit (width-1) first. *)
  let rec go i acc = if i < 0 then acc else go (i - 1) (get v i :: acc) in
  List.rev (go (v.width - 1) [])

let of_bin s =
  let n = String.length s in
  let v = make n in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set_bit v.data (n - 1 - i) true
      | _ -> invalid_arg "Bits.of_bin: expected only 0 and 1")
    s;
  v

let to_bin v =
  String.init v.width (fun i -> if get v (v.width - 1 - i) then '1' else '0')

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bits.of_hex: bad hex digit"

let of_hex ~width:w s =
  if w < 0 then invalid_arg "Bits.of_hex: negative width";
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  let v = make w in
  (* Last digit holds bits 0..3, previous 4..7, etc. *)
  List.iteri
    (fun i c ->
      let d = hex_digit c in
      let pos = 4 * (List.length digits - 1 - i) in
      for b = 0 to 3 do
        if pos + b < w && d land (1 lsl b) <> 0 then set_bit v.data (pos + b) true
      done)
    digits;
  v

let to_hex v =
  let ndigits = if v.width = 0 then 0 else (v.width + 3) / 4 in
  String.init ndigits (fun i ->
      let pos = 4 * (ndigits - 1 - i) in
      let d = ref 0 in
      for b = 0 to 3 do
        if pos + b < v.width && get v (pos + b) then d := !d lor (1 lsl b)
      done;
      "0123456789ABCDEF".[!d])

let random st w =
  let v = make w in
  for i = 0 to nbytes w - 1 do
    Bytes.set v.data i (Char.chr (Random.State.int st 256))
  done;
  canon v

let to_int v =
  let n = min v.width 62 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    r := (!r lsl 1) lor if get v i then 1 else 0
  done;
  !r

let is_zero v = Bytes.for_all (fun c -> c = '\000') v.data

let to_int_checked v =
  let fits =
    let rec hi i = i >= v.width || ((not (get v i)) && hi (i + 1)) in
    hi 62
  in
  if fits then Some (to_int v) else None

let popcount v =
  let c = ref 0 in
  for i = 0 to v.width - 1 do
    if get v i then incr c
  done;
  !c

let is_ones v = popcount v = v.width
let msb v = v.width > 0 && get v (v.width - 1)

let concat hi lo =
  let w = hi.width + lo.width in
  init w (fun i -> if i < lo.width then get lo i else get hi (i - lo.width))

let slice v ~hi ~lo =
  if lo < 0 || hi < lo || hi >= v.width then
    invalid_arg "Bits.slice: bounds out of range";
  init (hi - lo + 1) (fun i -> get v (lo + i))

let zext v w =
  if w < 0 then invalid_arg "Bits.zext: negative width";
  init w (fun i -> i < v.width && get v i)

let sext v w =
  if w < 0 then invalid_arg "Bits.sext: negative width";
  if v.width = 0 then zero w
  else init w (fun i -> if i < v.width then get v i else msb v)

let check_same_width name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" name a.width b.width)

let map2_bytes f a b =
  let v = make a.width in
  for i = 0 to Bytes.length a.data - 1 do
    Bytes.set v.data i
      (Char.chr (f (Char.code (Bytes.get a.data i)) (Char.code (Bytes.get b.data i)) land 0xff))
  done;
  canon v

let logand a b = check_same_width "logand" a b; map2_bytes ( land ) a b
let logor a b = check_same_width "logor" a b; map2_bytes ( lor ) a b
let logxor a b = check_same_width "logxor" a b; map2_bytes ( lxor ) a b

let lognot a =
  let v = make a.width in
  for i = 0 to Bytes.length a.data - 1 do
    Bytes.set v.data i (Char.chr (lnot (Char.code (Bytes.get a.data i)) land 0xff))
  done;
  canon v

let add a b =
  check_same_width "add" a b;
  let v = make a.width in
  let carry = ref 0 in
  for i = 0 to Bytes.length a.data - 1 do
    let s = Char.code (Bytes.get a.data i) + Char.code (Bytes.get b.data i) + !carry in
    Bytes.set v.data i (Char.chr (s land 0xff));
    carry := s lsr 8
  done;
  canon v

let lognot_inplace_add1 a =
  (* two's complement negation *)
  let v = lognot a in
  let carry = ref 1 in
  let i = ref 0 in
  let n = Bytes.length v.data in
  while !carry > 0 && !i < n do
    let s = Char.code (Bytes.get v.data !i) + !carry in
    Bytes.set v.data !i (Char.chr (s land 0xff));
    carry := s lsr 8;
    incr i
  done;
  canon v

let neg a = lognot_inplace_add1 a
let sub a b = check_same_width "sub" a b; add a (neg b)

let mul a b =
  check_same_width "mul" a b;
  let w = a.width in
  let n = nbytes w in
  let acc = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    let ai = Char.code (Bytes.get a.data i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to n - 1 - i do
        let k = i + j in
        let s = Char.code (Bytes.get acc k) + (ai * Char.code (Bytes.get b.data j)) + !carry in
        Bytes.set acc k (Char.chr (s land 0xff));
        carry := s lsr 8
      done
    end
  done;
  canon { width = w; data = acc }

let ult a b =
  check_same_width "ult" a b;
  let rec go i =
    if i < 0 then false
    else
      let x = Char.code (Bytes.get a.data i) and y = Char.code (Bytes.get b.data i) in
      if x <> y then x < y else go (i - 1)
  in
  go (Bytes.length a.data - 1)

let ule a b = not (ult b a)

let slt a b =
  check_same_width "slt" a b;
  match (msb a, msb b) with
  | true, false -> true
  | false, true -> false
  | _ -> ult a b

let sle a b = not (slt b a)

let equal a b = a.width = b.width && Bytes.equal a.data b.data

let compare a b =
  if a.width <> b.width then Stdlib.compare a.width b.width
  else
    let rec go i =
      if i < 0 then 0
      else
        let c = Stdlib.compare (Bytes.get a.data i) (Bytes.get b.data i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Bytes.length a.data - 1)

let shift_left a k =
  if k < 0 then invalid_arg "Bits.shift_left: negative amount";
  init a.width (fun i -> i >= k && get a (i - k))

let shift_right a k =
  if k < 0 then invalid_arg "Bits.shift_right: negative amount";
  init a.width (fun i -> i + k < a.width && get a (i + k))

let shift_right_arith a k =
  if k < 0 then invalid_arg "Bits.shift_right_arith: negative amount";
  init a.width (fun i -> if i + k < a.width then get a (i + k) else msb a)

let udiv a b =
  check_same_width "udiv" a b;
  if is_zero b then ones a.width
  else begin
    (* Long division, MSB first. *)
    let w = a.width in
    let q = make w in
    let r = ref (zero w) in
    for i = w - 1 downto 0 do
      r := shift_left !r 1;
      if get a i then r := logor !r (of_int ~width:w 1);
      if ule b !r then begin
        r := sub !r b;
        set_bit q.data i true
      end
    done;
    canon q
  end

let urem a b =
  check_same_width "urem" a b;
  if is_zero b then a
  else begin
    let w = a.width in
    let r = ref (zero w) in
    for i = w - 1 downto 0 do
      r := shift_left !r 1;
      if get a i then r := logor !r (of_int ~width:w 1);
      if ule b !r then r := sub !r b
    done;
    !r
  end

let pp ppf v = Format.fprintf ppf "0x%s/%d" (to_hex v) v.width
let to_string v = Format.asprintf "%a" pp v
