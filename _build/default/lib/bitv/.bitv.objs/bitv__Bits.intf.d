lib/bitv/bits.mli: Format Random
