lib/bitv/bits.ml: Bytes Char Format List Printf Random Seq Stdlib String
