(** Arbitrary-width bitvectors.

    [Bits.t] is the value domain for P4 [bit<n>] data and for packets:
    an immutable vector of [width] bits with modular (two's-complement)
    arithmetic.  Bit 0 is the least-significant bit.  Packets are
    bitvectors whose most-significant bits are the first bits on the
    wire, so [concat] follows P4's [++]: [concat hi lo] places [hi]
    above [lo]. *)

type t

val width : t -> int

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zero vector of width [w]; [w >= 0]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of
    [n] to [width] bits. *)

val of_bool_list : bool list -> t
(** [of_bool_list bs] builds a vector from MSB-first bits. *)

val of_bin : string -> t
(** [of_bin "1010"] parses an MSB-first binary string. *)

val of_hex : width:int -> string -> t
(** [of_hex ~width s] parses a hex string (MSB first, no prefix,
    underscores ignored) and truncates/zero-extends to [width]. *)

val random : Random.State.t -> int -> t
(** [random st w] draws [w] uniform bits. *)

(** {1 Observation} *)

val get : t -> int -> bool
(** [get v i] is bit [i] (LSB = 0).  Raises [Invalid_argument] when out
    of range. *)

val to_int : t -> int
(** Low [min width 62] bits as a non-negative OCaml int. *)

val to_int_checked : t -> int option
(** [Some] iff the value fits a non-negative OCaml int exactly. *)

val to_bin : t -> string
(** MSB-first binary string of length [width]. *)

val to_hex : t -> string
(** MSB-first hex string, [ceil (width / 4)] digits. *)

val to_bool_list : t -> bool list
(** MSB-first bit list. *)

val is_zero : t -> bool
val is_ones : t -> bool
val popcount : t -> int
val msb : t -> bool

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat hi lo]: P4's [hi ++ lo]. *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo]: P4's [v\[hi:lo\]], inclusive, width
    [hi - lo + 1].  Requires [0 <= lo <= hi < width v]. *)

val zext : t -> int -> t
(** [zext v w] zero-extends (or truncates) to width [w]. *)

val sext : t -> int -> t
(** [sext v w] sign-extends (or truncates) to width [w]. *)

(** {1 Bitwise and arithmetic operations}

    Binary operations require equal widths and raise
    [Invalid_argument] otherwise.  Arithmetic is modulo [2^width]. *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
(** Unsigned division; division by zero yields all-ones (SMT-LIB). *)

val urem : t -> t -> t
(** Unsigned remainder; remainder by zero yields the dividend. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical right shift. *)

val shift_right_arith : t -> int -> t

(** {1 Comparisons} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: by width, then unsigned value. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Prints [0xHH…/w]. *)

val to_string : t -> string
