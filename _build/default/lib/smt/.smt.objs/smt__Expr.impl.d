lib/smt/expr.ml: Bitv Format Hashtbl List Printf
