lib/smt/sat.mli:
