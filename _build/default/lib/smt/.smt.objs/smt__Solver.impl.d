lib/smt/solver.ml: Array Bitv Blast Expr Hashtbl List Sat Unix
