lib/smt/blast.ml: Array Bitv Expr Hashtbl List Sat
