lib/smt/solver.mli: Bitv Expr
