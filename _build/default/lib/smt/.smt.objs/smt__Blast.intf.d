lib/smt/blast.mli: Expr Sat
