lib/smt/expr.mli: Bitv Format
