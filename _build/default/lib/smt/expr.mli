(** Hash-consed bitvector terms.

    All terms are bitvectors; booleans are width-1 vectors ([tru] and
    [fls]).  Smart constructors perform constant folding and algebraic
    simplification, including the taint-elimination rewrites of the
    paper (§5.3), e.g. [mul taint zero = zero].

    Terms are hash-consed in a module-global context: structurally
    equal terms are physically equal and share a [tag].  [Taint] nodes
    are the exception — every call to {!fresh_taint} yields a distinct
    unknown. *)

type var = private { vname : string; vwidth : int; vid : int }

type t = private { node : node; tag : int; width : int; tainted : bool }

and node =
  | Const of Bitv.Bits.t
  | Var of var
  | Taint of int  (** a fresh nondeterministic unknown (§5.3) *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Concat of t * t  (** [Concat (hi, lo)] — P4's [hi ++ lo] *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)], inclusive *)
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ite of t * t * t  (** condition has width 1 *)
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t

val width : t -> int
val tainted : t -> bool

(** {1 Variables} *)

val reset : unit -> unit
(** Clears the hash-consing context (all terms, variables, taint ids).
    Only safe between independent runs: terms and solvers created
    before the reset must not be used afterwards. *)

val on_reset : (unit -> unit) -> unit
(** Registers a callback invoked by {!reset} (used by caches keyed on
    term tags). *)

val var : string -> int -> t
(** [var name w] returns the (unique) variable [name] of width [w].
    Raises [Invalid_argument] if [name] exists with another width. *)

val var_of : t -> var
(** The variable underlying a [Var] term.  Raises otherwise. *)

val fresh_var : string -> int -> t
(** [fresh_var prefix w] mints a variable with a unique suffixed name. *)

val fresh_taint : int -> t

(** {1 Constructors} *)

val const : Bitv.Bits.t -> t
val of_int : width:int -> int -> t
val zero : int -> t
val ones : int -> t
val tru : t
val fls : t
val of_bool : bool -> t

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val concat : t -> t -> t
val slice : t -> hi:int -> lo:int -> t
val zext : t -> int -> t
val sext : t -> int -> t
val eq : t -> t -> t
val neq : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t
val ite : t -> t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

(** Width-1 boolean helpers. *)

val band : t -> t -> t
val bor : t -> t -> t
val bnot : t -> t
val conj : t list -> t
val disj : t list -> t
val implies : t -> t -> t

(** {1 Observation} *)

val is_const : t -> Bitv.Bits.t option
val is_true : t -> bool
val is_false : t -> bool

val taint_mask : t -> Bitv.Bits.t
(** Conservative per-bit taint: bit [i] set iff output bit [i] may
    depend on a nondeterministic source.  Arithmetic spreads taint
    upward from the lowest tainted operand bit (carry direction);
    comparisons and taint-conditioned [Ite]s taint every result bit. *)

val vars : t -> var list
(** All variables occurring in the term, each once, in [vid] order. *)

val eval : ?taint:(int -> int -> Bitv.Bits.t) -> (var -> Bitv.Bits.t) -> t -> Bitv.Bits.t
(** Concrete evaluation.  [taint id width] supplies values for taint
    nodes (defaults to zero). *)

val subst : (var -> t option) -> t -> t
(** Capture-free substitution of variables. *)

val size : t -> int
(** Number of distinct subterms (DAG size). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
