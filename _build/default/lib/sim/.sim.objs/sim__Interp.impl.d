lib/sim/interp.ml: Array Ast Bitv Format Hashtbl List Map Mutation Option P4 Pretty Printf Random String Targets Testgen Typing
