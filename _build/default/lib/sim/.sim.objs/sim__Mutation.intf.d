lib/sim/mutation.mli:
