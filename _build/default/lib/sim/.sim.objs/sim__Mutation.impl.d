lib/sim/mutation.ml: List
