lib/sim/harness.ml: Ast Bitv Hashtbl Interp List Mutation P4 Printf Targets Testgen Typing
