(* Top-level test-oracle API: everything from P4 source to tests.

   Mirrors the three-phase workflow of §4:
   1. parse + prelude + mid-end passes ([prepare]),
   2. symbolic execution over whole-program semantics ([Explore.run]
      with the target's pipeline template),
   3. abstract test specifications ([Testspec.t]) that back ends
      concretize. *)

open Runtime

type prepared = {
  ctx : Runtime.ctx;
  prog : P4.Ast.program;
  target : (module Target_intf.S);
  prep_time : float;
}

let prepare ?(opts = Runtime.default_options) (target : (module Target_intf.S)) (source : string)
    : prepared =
  let module T = (val target) in
  let t0 = Unix.gettimeofday () in
  (* each run gets a fresh term context; terms and solvers never cross
     run boundaries *)
  Smt.Expr.reset ();
  let prelude = P4.Parser.parse_program T.prelude in
  let user = P4.Parser.parse_program source in
  let prog = prelude @ user in
  let prog = P4.Passes.fold prog in
  let tctx = P4.Typing.build prog in
  let prog = P4.Passes.elim_stack_indices tctx prog in
  let prog, nstmts = P4.Passes.number_statements prog in
  let ctx = Runtime.make_ctx ~opts prog ~nstmts tctx in
  ctx.extern_hook <- T.extern;
  ctx.reject_hook <- T.on_reject;
  { ctx; prog; target; prep_time = Unix.gettimeofday () -. t0 }

let initial_state (p : prepared) : Runtime.state =
  let module T = (val p.target) in
  let st = Runtime.initial_state p.ctx ~port_width:T.port_width in
  T.init p.ctx st

type run = { result : Explore.result; prepared : prepared }

let generate ?(opts = Runtime.default_options) ?(config = Explore.default_config)
    (target : (module Target_intf.S)) (source : string) : run =
  let p = prepare ~opts target source in
  let st = initial_state p in
  let result = Explore.run ~config p.ctx st in
  { result; prepared = p }

(* ------------------------------------------------------------------ *)
(* Coverage report (§7, "What exactly do P4Testgen's tests cover?") *)

type coverage_report = {
  covered_count : int;
  total_count : int;
  percentage : float;
  uncovered : int list;  (** statement ids never exercised *)
}

let coverage_report (r : run) : coverage_report =
  let covered = r.result.Explore.covered in
  let total = r.result.Explore.total_stmts in
  let uncovered =
    List.filter (fun i -> not (IntSet.mem i covered)) (List.init total (fun i -> i + 1))
  in
  {
    covered_count = IntSet.cardinal covered;
    total_count = total;
    percentage = Explore.coverage_pct r.result;
    uncovered;
  }

let pp_coverage ppf (c : coverage_report) =
  Format.fprintf ppf "statement coverage: %d/%d (%.1f%%)" c.covered_count c.total_count
    c.percentage;
  if c.uncovered <> [] then
    Format.fprintf ppf "; uncovered ids: %s"
      (String.concat "," (List.map string_of_int c.uncovered))
