lib/core/eval.ml: Ast Bitv Env Format Hashtbl List P4 Pretty Printf Runtime Smt Typing
