lib/core/testspec.mli: Bitv Format
