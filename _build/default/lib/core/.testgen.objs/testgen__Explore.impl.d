lib/core/explore.ml: Bitv Concolic IntSet List Logs Random Runtime Smt Step String Testspec Unix
