lib/core/testspec.ml: Bitv Format List Printf
