lib/core/oracle.mli: Explore Format P4 Runtime Target_intf
