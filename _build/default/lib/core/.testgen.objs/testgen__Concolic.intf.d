lib/core/concolic.mli: Bitv Runtime Smt
