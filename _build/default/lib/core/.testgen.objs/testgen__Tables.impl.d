lib/core/tables.ml: Ast Bitv Eval List Option P4 Printf Runtime Smt Typing
