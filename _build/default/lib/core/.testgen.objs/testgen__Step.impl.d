lib/core/step.ml: Ast Bitv Env Eval List Option P4 Pretty Printf Runtime Smt Tables Typing
