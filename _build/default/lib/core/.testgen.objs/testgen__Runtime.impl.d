lib/core/runtime.ml: Array Ast Bitv Format Fun Hashtbl Int List Map P4 Printf Random Set Smt String Testspec Typing
