lib/core/oracle.ml: Explore Format IntSet List P4 Runtime Smt String Target_intf Unix
