lib/core/concolic.ml: Bitv List Runtime Smt
