lib/core/target_intf.ml: List P4 Runtime
