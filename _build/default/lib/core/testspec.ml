(* Abstract test specification (§4, phase 3).

   A test is everything needed to exercise one program path on a real
   target: the input packet and port, the control-plane configuration
   (table entries, register initialization), and the expected outputs.
   Test back ends ({!Backends}) concretize this representation into
   STF, PTF, or protobuf text. *)

module Bits = Bitv.Bits

type key_match =
  | MExact of Bits.t
  | MTernary of Bits.t * Bits.t  (** value, mask (1 = care) *)
  | MLpm of Bits.t * int  (** value, prefix length *)
  | MRange of Bits.t * Bits.t  (** inclusive bounds *)
  | MOptional of Bits.t option

type entry = {
  e_table : string;
  e_keys : (string * key_match) list;  (** key field name -> match *)
  e_action : string;
  e_args : (string * Bits.t) list;  (** action parameter name -> value *)
  e_priority : int option;
}

type register_init = { r_name : string; r_index : int; r_value : Bits.t }

type packet = {
  port : Bits.t;
  data : Bits.t;
  dontcare : Bits.t;  (** per-bit mask: 1 = don't care (tainted output) *)
}

type t = {
  input : packet;
  outputs : packet list;  (** expected packets; [] means dropped *)
  entries : entry list;
  registers : register_init list;
  covered : int list;  (** ids of statements this test covers *)
  comment : string;  (** human-readable path description *)
}

let make ~input ~outputs ~entries ~registers ~covered ~comment =
  { input; outputs; entries; registers; covered; comment }

let packet ?(dontcare = Bits.zero 0) ~port data =
  let dontcare =
    if Bits.width dontcare = Bits.width data then dontcare
    else Bits.zero (Bits.width data)
  in
  { port; data; dontcare }

let is_drop t = t.outputs = []

let pp_key_match ppf = function
  | MExact v -> Format.fprintf ppf "%s" (Bits.to_hex v)
  | MTernary (v, m) -> Format.fprintf ppf "%s &&& %s" (Bits.to_hex v) (Bits.to_hex m)
  | MLpm (v, l) -> Format.fprintf ppf "%s/%d" (Bits.to_hex v) l
  | MRange (a, b) -> Format.fprintf ppf "%s..%s" (Bits.to_hex a) (Bits.to_hex b)
  | MOptional (Some v) -> Format.fprintf ppf "%s" (Bits.to_hex v)
  | MOptional None -> Format.fprintf ppf "*"

let pp_entry ppf e =
  Format.fprintf ppf "%s: match(%a) action(%s(%a))%s" e.e_table
    (Format.pp_print_list
       ~pp_sep:(fun p () -> Format.fprintf p ", ")
       (fun p (k, m) -> Format.fprintf p "%s=%a" k pp_key_match m))
    e.e_keys e.e_action
    (Format.pp_print_list
       ~pp_sep:(fun p () -> Format.fprintf p ", ")
       (fun p (k, v) -> Format.fprintf p "%s=%s" k (Bits.to_hex v)))
    e.e_args
    (match e.e_priority with
    | Some p -> Printf.sprintf " prio=%d" p
    | None -> "")

let pp_packet ppf p =
  Format.fprintf ppf "port %s len %db data %s" (Bits.to_hex p.port)
    (Bits.width p.data) (Bits.to_hex p.data);
  if not (Bits.is_zero p.dontcare) then
    Format.fprintf ppf " mask %s" (Bits.to_hex (Bits.lognot p.dontcare))

let pp ppf t =
  Format.fprintf ppf "@[<v 2>test {@,input:  %a@," pp_packet t.input;
  (match t.outputs with
  | [] -> Format.fprintf ppf "output: DROP@,"
  | ps -> List.iter (fun p -> Format.fprintf ppf "output: %a@," pp_packet p) ps);
  List.iter (fun e -> Format.fprintf ppf "entry:  %a@," pp_entry e) t.entries;
  List.iter
    (fun r -> Format.fprintf ppf "reg:    %s[%d] = %s@," r.r_name r.r_index (Bits.to_hex r.r_value))
    t.registers;
  Format.fprintf ppf "path:   %s@]@,}" t.comment

let to_string t = Format.asprintf "%a" pp t
