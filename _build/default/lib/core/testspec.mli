(** Abstract test specifications (§4, phase 3).

    A test is everything needed to exercise one program path on a real
    target: the input packet and port, the control-plane configuration
    (table entries, register initialization), and the expected
    output(s).  Back ends ({!Backends.Stf}, {!Backends.Ptf},
    {!Backends.Proto}) concretize this representation into framework
    files; {!Sim.Harness} executes it on a software model. *)

module Bits = Bitv.Bits

(** One key field's match in a table entry. *)
type key_match =
  | MExact of Bits.t
  | MTernary of Bits.t * Bits.t  (** value, mask (1 = care) *)
  | MLpm of Bits.t * int  (** value, prefix length *)
  | MRange of Bits.t * Bits.t  (** inclusive bounds *)
  | MOptional of Bits.t option  (** [None] is the wildcard *)

(** A control-plane table entry (or parser value-set member, with
    [e_action = "__vs_member__"]). *)
type entry = {
  e_table : string;
  e_keys : (string * key_match) list;  (** key field name -> match *)
  e_action : string;
  e_args : (string * Bits.t) list;  (** action parameter name -> value *)
  e_priority : int option;
}

type register_init = { r_name : string; r_index : int; r_value : Bits.t }

(** A packet with its port; [dontcare] marks bits the target leaves
    undefined (tainted output, §5.3), which executors must ignore. *)
type packet = { port : Bits.t; data : Bits.t; dontcare : Bits.t }

type t = {
  input : packet;
  outputs : packet list;  (** expected packets; [] means dropped *)
  entries : entry list;
  registers : register_init list;
  covered : int list;  (** ids of statements this test covers *)
  comment : string;  (** human-readable path description *)
}

val make :
  input:packet ->
  outputs:packet list ->
  entries:entry list ->
  registers:register_init list ->
  covered:int list ->
  comment:string ->
  t

val packet : ?dontcare:Bits.t -> port:Bits.t -> Bits.t -> packet
(** [packet ~port data] builds a packet; a missing or size-mismatched
    [dontcare] defaults to all-zero (every bit checked). *)

val is_drop : t -> bool

val pp_key_match : Format.formatter -> key_match -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_packet : Format.formatter -> packet -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
