(** Two-phase concolic resolution (§5.4).

    Complex extern results (checksums, hashes) are modeled during
    symbolic execution as unconstrained placeholder variables with a
    recorded concrete implementation ({!Runtime.concolic_call}).  At
    path end {!resolve} binds them:

    + phase 1 solves the path constraints and reads the model values of
      each call's arguments (calls evaluated oldest-first, so earlier
      results feed later arguments);
    + phase 2 runs the concrete implementation on those values and
      re-checks the path with the argument and result equalities added.

    When phase 2 is unsatisfiable the failing argument assignment is
    blocked and the process retries a bounded number of times before
    the path is discarded.  The paper's checksum-specific optimization
    (forcing the reference value to equal the computed checksum) falls
    out of the encoding: [verify_checksum] produces the constraint
    [r == given] on the match path, and binding [r] lets the solver
    choose [given] accordingly when it is symbolic. *)

val max_retries : int

type outcome =
  | Resolved of (Smt.Expr.t -> Bitv.Bits.t)
      (** evaluator over the final model, used to concretize the test *)
  | Infeasible
      (** no consistent concrete binding exists within the retry budget *)

val resolve : ?extra:Smt.Expr.t list -> Smt.Solver.t -> Runtime.state -> outcome
(** [resolve solver st] assumes the solver currently holds [st]'s path
    constraints (the explorer's DFS spine).  [extra] adds best-effort
    assumptions dropped on conflict. *)
