(* The target-extension interface.

   A target extension supplies everything the core executor does not
   bake in (§5.1): the architecture prelude (type and block
   declarations corresponding to e.g. v1model.p4), the pipeline
   template (initial continuation stack with interstitial glue), the
   extern implementations, and the parser-reject semantics.  All four
   shipped extensions ({!Targets.V1model}, {!Targets.Tna},
   {!Targets.T2na}, {!Targets.Ebpf}) implement this signature without
   touching the core. *)

module type S = sig
  val name : string

  val prelude : string
  (** P4 source prepended to the user program (architecture types,
      extern declarations, standard metadata structures). *)

  val port_width : int

  val min_packet_bytes : int option
  (** Frames shorter than this are padded with payload before the
      pipeline runs (e.g. 64 bytes on Tofino, Tbl. 6). *)

  val init : Runtime.ctx -> Runtime.state -> Runtime.state
  (** Declare the pipeline state and push the full pipeline template
      (blocks plus glue continuations) onto the work stack.  Raises
      {!Runtime.Exec_error} when the program's [main] instantiation
      does not fit the architecture. *)

  val extern : Runtime.extern_hook
  (** Dispatch for all extern functions and extern-object methods. *)

  val on_reject : Runtime.reject_hook
  (** Target-specific parser-error semantics (Tbl. 6). *)
end

(* Helpers shared by target implementations *)

let find_instantiation (prog : P4.Ast.program) =
  List.find_map
    (function
      | P4.Ast.DInstantiation (typ, args, name, _) -> Some (typ, args, name)
      | _ -> None)
    prog

let constructor_name (e : P4.Ast.expr) =
  match e with
  | P4.Ast.ECall (EVar n, _) -> n
  | P4.Ast.EVar n -> n
  | e -> Runtime.fail "bad package argument %s" (P4.Pretty.expr_to_string e)
