(* The t2na architecture extension (Tofino 2, §6.1.2).

   t2na shares the tna pipeline template and adds the ghost-thread
   metadata types; ghost blocks in the package instantiation are
   accepted and ignored (the ghost thread runs concurrently with
   packet processing and does not affect single-packet tests). *)

let target : (module Testgen.Target_intf.S) = Tofino.make Tofino.T2na
