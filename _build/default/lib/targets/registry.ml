(* Registry of all shipped target extensions (Tbl. 1). *)

let all : (string * (module Testgen.Target_intf.S)) list =
  [
    ("v1model", V1model.target);
    ("tna", Tna.target);
    ("t2na", T2na.target);
    ("ebpf_model", Ebpf.target);
  ]

let find name = List.assoc_opt name all

(** Tbl. 1: extension -> (target device, test back ends). *)
let capabilities =
  [
    ("v1model", ("BMv2", [ "STF"; "PTF"; "Protobuf" ]));
    ("tna", ("Tofino 1", [ "Internal"; "PTF" ]));
    ("t2na", ("Tofino 2", [ "Internal"; "PTF" ]));
    ("ebpf_model", ("Linux Kernel", [ "STF" ]));
  ]
