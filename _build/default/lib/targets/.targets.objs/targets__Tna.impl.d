lib/targets/tna.ml: Testgen Tofino
