lib/targets/checksums.ml: Bitv List
