lib/targets/tofino.ml: Ast Bitv Checksums Eval Hashtbl List Option P4 Smt Step String Target_intf Testgen
