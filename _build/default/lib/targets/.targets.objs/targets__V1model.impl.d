lib/targets/v1model.ml: Array Ast Bitv Checksums Env Eval Hashtbl List Option P4 Smt Step String Target_intf Testgen Typing
