lib/targets/registry.ml: Ebpf List T2na Testgen Tna V1model
