lib/targets/ebpf.ml: Ast Checksums Eval Hashtbl List P4 Smt Step String Target_intf Testgen
