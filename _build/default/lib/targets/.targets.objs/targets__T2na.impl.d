lib/targets/t2na.ml: Testgen Tofino
