(* Concrete implementations of the hash/checksum externs.

   These are the functions the concolic engine (§5.4) executes to bind
   placeholder variables: the symbolic executor never encodes them in
   first-order logic. *)

module Bits = Bitv.Bits

(* data as bytes, MSB first; odd widths are padded with zero bits at
   the tail, mirroring BMv2's calculation buffers *)
let to_bytes (b : Bits.t) : int list =
  let w = Bits.width b in
  let padded = if w mod 8 = 0 then b else Bits.concat b (Bits.zero (8 - (w mod 8))) in
  let n = Bits.width padded / 8 in
  List.init n (fun i ->
      Bits.to_int (Bits.slice padded ~hi:(Bits.width padded - (8 * i) - 1) ~lo:(Bits.width padded - (8 * (i + 1)))))

(** RFC 1071 ones'-complement 16-bit checksum. *)
let csum16 (data : Bits.t) : Bits.t =
  let bytes = to_bytes data in
  let rec words = function
    | [] -> []
    | [ a ] -> [ a * 256 ]
    | a :: b :: rest -> ((a * 256) + b) :: words rest
  in
  let sum = List.fold_left ( + ) 0 (words bytes) in
  let rec fold s = if s > 0xFFFF then fold ((s land 0xFFFF) + (s lsr 16)) else s in
  Bits.of_int ~width:16 (lnot (fold sum) land 0xFFFF)

(** CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). *)
let crc32 (data : Bits.t) : Bits.t =
  let crc = ref 0xFFFFFFFF in
  List.iter
    (fun byte ->
      crc := !crc lxor byte;
      for _ = 1 to 8 do
        if !crc land 1 = 1 then crc := (!crc lsr 1) lxor 0xEDB88320 else crc := !crc lsr 1
      done)
    (to_bytes data);
  Bits.of_int ~width:32 (lnot !crc land 0xFFFFFFFF)

(** CRC-16 (ARC, reflected, poly 0xA001). *)
let crc16 (data : Bits.t) : Bits.t =
  let crc = ref 0 in
  List.iter
    (fun byte ->
      crc := !crc lxor byte;
      for _ = 1 to 8 do
        if !crc land 1 = 1 then crc := (!crc lsr 1) lxor 0xA001 else crc := !crc lsr 1
      done)
    (to_bytes data);
  Bits.of_int ~width:16 !crc

(** XOR of all 16-bit words. *)
let xor16 (data : Bits.t) : Bits.t =
  let bytes = to_bytes data in
  let rec words = function
    | [] -> []
    | [ a ] -> [ a * 256 ]
    | a :: b :: rest -> ((a * 256) + b) :: words rest
  in
  Bits.of_int ~width:16 (List.fold_left ( lxor ) 0 (words bytes))

(** Identity "hash": the low [width] bits of the input. *)
let identity ~width (data : Bits.t) : Bits.t = Bits.zext data width

let by_algorithm ~width (algo : string) : Bits.t -> Bits.t =
  match algo with
  | "csum16" -> fun d -> Bits.zext (csum16 d) width
  | "crc16" -> fun d -> Bits.zext (crc16 d) width
  | "crc32" | "crc32_custom" -> fun d -> Bits.zext (crc32 d) width
  | "xor16" -> fun d -> Bits.zext (xor16 d) width
  | "identity" -> identity ~width
  | _ -> fun d -> Bits.zext (crc32 d) width
