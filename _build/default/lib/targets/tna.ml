(* The tna architecture extension (Tofino 1, §6.1.2). *)

let target : (module Testgen.Target_intf.S) = Tofino.make Tofino.Tna
