(* Back-end registry: concretizers from abstract test specifications
   (§4 phase 3) to framework files. *)

type t = { name : string; extension : string; emit : Testgen.Testspec.t list -> string }

let all =
  [
    { name = "stf"; extension = ".stf"; emit = Stf.emit };
    { name = "ptf"; extension = "_ptf.py"; emit = Ptf.emit };
    { name = "protobuf"; extension = ".txtpb"; emit = Proto.emit };
  ]

let find name = List.find_opt (fun b -> b.name = name) all
