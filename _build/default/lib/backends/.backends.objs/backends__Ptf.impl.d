lib/backends/ptf.ml: Bitv Buffer Char Format List Printf String Testgen Testspec
