lib/backends/proto.ml: Bitv Buffer Char Format List String Testgen Testspec
