lib/backends/stf.ml: Bitv Buffer Format List Printf String Testgen Testspec
