lib/backends/registry.ml: List Proto Ptf Stf Testgen
