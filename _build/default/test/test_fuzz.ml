(* Differential fuzzing: random well-typed v1model programs, oracle vs
   the concrete simulator.  For every seed:

     1. the program must parse and pretty-print round-trip,
     2. the oracle must generate at least one test,
     3. every generated test must pass on the software model.

   This is the §7 correctness methodology scaled to arbitrary
   programs, and the same idea Gauntlet uses against compilers. *)

module Oracle = Testgen.Oracle
module Explore = Testgen.Explore

let num_seeds = 25

let fuzz_one seed () =
  let src = Progzoo.Randprog.generate ~seed in
  (* 1. front-end round trip *)
  let prog =
    try P4.Parser.parse_program src
    with P4.Parser.Error (msg, pos) ->
      Alcotest.failf "seed %d: parse error at %d:%d: %s\n%s" seed pos.P4.Ast.line
        pos.P4.Ast.col msg src
  in
  let printed = P4.Pretty.program_to_string prog in
  (match P4.Parser.parse_program printed with
  | _ -> ()
  | exception P4.Parser.Error (msg, _) ->
      Alcotest.failf "seed %d: pretty-printed program does not reparse: %s" seed msg);
  (* 2. generate *)
  let config = { Explore.default_config with Explore.max_tests = Some 40 } in
  let opts = { Testgen.Runtime.default_options with seed } in
  let run =
    try Oracle.generate ~opts ~config Targets.V1model.target src
    with Testgen.Runtime.Exec_error msg ->
      Alcotest.failf "seed %d: oracle failed: %s\n%s" seed msg src
  in
  let tests = run.Oracle.result.Explore.tests in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d generates tests" seed)
    true (tests <> []);
  (* 3. validate on the independent model *)
  let sim = Sim.Harness.prepare ~arch:"v1model" src in
  let summary, results = Sim.Harness.run_suite sim tests in
  List.iter
    (fun ((t : Testgen.Testspec.t), v) ->
      match v with
      | Sim.Harness.Pass -> ()
      | Sim.Harness.Wrong_output msg ->
          Alcotest.failf "seed %d: WRONG %s\ntest: %s\nprogram:\n%s" seed msg
            (Testgen.Testspec.to_string t) src
      | Sim.Harness.Crash msg ->
          Alcotest.failf "seed %d: CRASH %s\nprogram:\n%s" seed msg src)
    results;
  Alcotest.(check int)
    (Printf.sprintf "seed %d all pass" seed)
    summary.Sim.Harness.total summary.Sim.Harness.passed

let () =
  Alcotest.run "fuzz"
    [
      ( "oracle-vs-model",
        List.init num_seeds (fun i ->
            Alcotest.test_case (Printf.sprintf "seed %d" (i + 1)) `Quick (fuzz_one (i + 1)))
      );
    ]
