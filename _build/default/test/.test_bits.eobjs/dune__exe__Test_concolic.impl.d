test/test_concolic.ml: Alcotest Bitv List Printf Progzoo Targets Testgen
