test/test_backends.ml: Alcotest Backends Bitv List Option Progzoo String Targets Testgen
