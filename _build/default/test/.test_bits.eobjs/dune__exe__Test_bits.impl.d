test/test_bits.ml: Alcotest Bitv QCheck QCheck_alcotest
