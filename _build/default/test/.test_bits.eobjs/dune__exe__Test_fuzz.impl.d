test/test_fuzz.ml: Alcotest List P4 Printf Progzoo Sim Targets Testgen
