test/test_explore.ml: Alcotest Bitv List Printf Progzoo String Targets Testgen
