test/test_p4.ml: Alcotest Ast Lexer List Option P4 Parser Passes Pretty String Typing
