test/test_validation.ml: Alcotest Bitv List Option Progzoo Sim Targets Testgen
