test/test_oracle.ml: Alcotest Bitv List Printf Targets Testgen
