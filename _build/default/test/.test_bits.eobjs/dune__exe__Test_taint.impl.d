test/test_taint.ml: Alcotest Bitv List Printf Smt Targets Testgen
