test/test_smt.ml: Alcotest Array Bitv Fun List Option Printf QCheck QCheck_alcotest Smt
