test/test_sim.ml: Alcotest Bitv Progzoo Sim Testgen
