(* The correctness experiment of §7 ("Does P4Testgen produce correct
   tests?"): generate tests for every corpus program, execute them on
   the corresponding concrete software model, and require that every
   test passes.  The simulator is an independent evaluator, so passing
   means the oracle's whole-program semantics and the model agree.

   Also exercises the bug-finding machinery: seeding a fault into the
   simulator must make at least one generated test fail. *)

module Bits = Bitv.Bits
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore

let arch_of name =
  match name with
  | "ebpf_filter" -> "ebpf_model"
  | "tna_basic" | "tna_kitchen" -> "tna"
  | _ -> "v1model"

let target_of arch = Option.get (Targets.Registry.find arch)

let generate ?(seed = 1) name src =
  let arch = arch_of name in
  let opts = { Testgen.Runtime.default_options with seed } in
  let run = Oracle.generate ~opts (target_of arch) src in
  (arch, run.Oracle.result.Explore.tests)

let validate_program (name, src) () =
  let arch, tests = generate name src in
  Alcotest.(check bool) (name ^ " generates tests") true (tests <> []);
  let sim = Sim.Harness.prepare ~arch src in
  let summary, results = Sim.Harness.run_suite sim tests in
  List.iter
    (fun ((t : Testgen.Testspec.t), v) ->
      match v with
      | Sim.Harness.Pass -> ()
      | Sim.Harness.Wrong_output msg ->
          Alcotest.failf "%s: WRONG %s\n%s" name msg (Testgen.Testspec.to_string t)
      | Sim.Harness.Crash msg ->
          Alcotest.failf "%s: CRASH %s\n%s" name msg (Testgen.Testspec.to_string t))
    results;
  Alcotest.(check int) (name ^ " all pass") summary.Sim.Harness.total
    summary.Sim.Harness.passed

(* programs the concrete simulator can execute (no recirculation) *)
let validatable =
  Progzoo.Corpus.v1model_validatable
  @ [
      ("ebpf_filter", Progzoo.Corpus.ebpf_filter);
      ("tna_basic", Progzoo.Corpus.tna_basic);
      ("tna_kitchen", Progzoo.Corpus.tna_kitchen);
    ]

(* --------------------------------------------------------------- *)
(* fault injection smoke tests *)

let test_fault_wrong_code () =
  (* P4C-7: the switch case body is swallowed -> wrong output *)
  let _, tests = generate "switch_action_run" Progzoo.Corpus.switch_action_run in
  let sim =
    Sim.Harness.prepare ~arch:"v1model" ~fault:Sim.Mutation.Swallow_apply
      Progzoo.Corpus.switch_action_run
  in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Alcotest.(check bool) "fault detected as wrong output" true (summary.Sim.Harness.wrong > 0)

let test_fault_crash () =
  (* P4C-4: missing name annotations crash the test back end *)
  let _, tests = generate "fig1a" Progzoo.Corpus.fig1a in
  let sim =
    Sim.Harness.prepare ~arch:"v1model" ~fault:Sim.Mutation.Crash_missing_name
      Progzoo.Corpus.fig1a
  in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Alcotest.(check bool) "fault detected as crash" true (summary.Sim.Harness.crashed > 0)

let test_fault_checksum () =
  let _, tests = generate "ipv4_checksum" Progzoo.Corpus.ipv4_checksum in
  let sim =
    Sim.Harness.prepare ~arch:"v1model" ~fault:Sim.Mutation.Wrong_checksum_fold
      Progzoo.Corpus.ipv4_checksum
  in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Alcotest.(check bool) "checksum fault detected" true (summary.Sim.Harness.wrong > 0)

let test_no_fault_baseline () =
  (* sanity: without a fault the mutation harness reports all-pass *)
  let _, tests = generate "switch_action_run" Progzoo.Corpus.switch_action_run in
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.switch_action_run in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Alcotest.(check int) "baseline passes" summary.Sim.Harness.total summary.Sim.Harness.passed

(* --------------------------------------------------------------- *)
(* determinism: same seed, same tests *)

let test_deterministic () =
  let _, t1 = generate ~seed:7 "fig1a" Progzoo.Corpus.fig1a in
  let _, t2 = generate ~seed:7 "fig1a" Progzoo.Corpus.fig1a in
  Alcotest.(check int) "same count" (List.length t1) (List.length t2);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same test" (Testgen.Testspec.to_string a)
        (Testgen.Testspec.to_string b))
    t1 t2

let () =
  Alcotest.run "validation"
    [
      ( "oracle-vs-model",
        List.map
          (fun (name, src) -> Alcotest.test_case name `Quick (validate_program (name, src)))
          validatable );
      ( "fault-injection",
        [
          Alcotest.test_case "baseline" `Quick test_no_fault_baseline;
          Alcotest.test_case "wrong code" `Quick test_fault_wrong_code;
          Alcotest.test_case "crash" `Quick test_fault_crash;
          Alcotest.test_case "checksum" `Quick test_fault_checksum;
        ] );
      ("determinism", [ Alcotest.test_case "fixed seed" `Quick test_deterministic ]);
    ]
