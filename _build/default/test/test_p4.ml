(* Frontend tests: lexer, parser, pretty-printer round-trip, typing,
   and mid-end passes, exercised on paper-style programs. *)

open P4

let fig1a =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> type;
}

struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}

control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
  action noop() { }
  action set_out(bit<9> port) {
    meta.output_port = port;
  }
  table forward_table {
    key = { h.eth.type : exact @name("type"); }
    actions = { noop; set_out; }
    default_action = noop();
  }
  apply {
    h.eth.type = 0xBEEF;
    forward_table.apply();
    sm.egress_spec = meta.output_port;
  }
}
|}

let fig1b =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> type;
}

struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> checksum_err; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}

control MyVerify(inout headers_t hdr, inout meta_t meta) {
  apply {
    verify_checksum(hdr.eth.isValid(), {hdr.eth.dst, hdr.eth.src},
                    hdr.eth.type, HashAlgorithm.csum16);
  }
}

control MyIngress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) {
  apply {
    if (meta.checksum_err == 1) {
      mark_to_drop(sm);
    }
  }
}
|}

let parses_ok name src () =
  match Parser.parse_program src with
  | _decls -> ()
  | exception Parser.Error (msg, pos) ->
      Alcotest.failf "%s: parse error at %d:%d: %s" name pos.Ast.line pos.Ast.col msg
  | exception Lexer.Error (msg, pos) ->
      Alcotest.failf "%s: lex error at %d:%d: %s" name pos.Ast.line pos.Ast.col msg

let test_fig1a_shape () =
  let prog = Parser.parse_program fig1a in
  Alcotest.(check int) "decl count" 5 (List.length prog);
  let tbl =
    List.find_map
      (function
        | Ast.DControl (cd, _) ->
            List.find_map (function Ast.LTable t -> Some t | _ -> None) cd.c_locals
        | _ -> None)
      prog
    |> Option.get
  in
  Alcotest.(check string) "table name" "forward_table" tbl.tbl_name;
  Alcotest.(check int) "keys" 1 (List.length tbl.tbl_keys);
  Alcotest.(check (list string)) "actions" [ "noop"; "set_out" ]
    (List.map fst tbl.tbl_actions);
  let key = List.hd tbl.tbl_keys in
  Alcotest.(check string) "match kind" "exact" key.tk_kind;
  Alcotest.(check bool) "name anno" true (Ast.has_anno "name" key.tk_annos)

let test_fig1b_shape () =
  let prog = Parser.parse_program fig1b in
  let verify =
    List.find_map
      (function
        | Ast.DControl (cd, _) when cd.c_name = "MyVerify" -> Some cd
        | _ -> None)
      prog
    |> Option.get
  in
  match verify.c_body with
  | [ Ast.SCall (_, EVar "verify_checksum", args) ] ->
      Alcotest.(check int) "args" 4 (List.length args)
  | _ -> Alcotest.fail "unexpected MyVerify body"

let test_roundtrip () =
  let check_rt name src =
    let p1 = Parser.parse_program src in
    let printed = Pretty.program_to_string p1 in
    let p2 =
      try Parser.parse_program printed
      with Parser.Error (msg, pos) ->
        Alcotest.failf "%s: reparse error at %d:%d: %s\n%s" name pos.Ast.line pos.Ast.col msg
          printed
    in
    let printed2 = Pretty.program_to_string p2 in
    Alcotest.(check string) (name ^ " round trip") printed printed2
  in
  check_rt "fig1a" fig1a;
  check_rt "fig1b" fig1b

let test_expr_parsing () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  Alcotest.(check int) "precedence" 7 (Option.get (Passes.eval_const [] e));
  let e = Parser.parse_expr_string "(1 + 2) * 3" in
  Alcotest.(check int) "parens" 9 (Option.get (Passes.eval_const [] e));
  let e = Parser.parse_expr_string "16w0xBEEF" in
  (match e with
  | Ast.EInt { iv; width = Some 16; _ } -> Alcotest.(check int) "sized hex" 0xBEEF iv
  | _ -> Alcotest.fail "expected sized literal");
  let e = Parser.parse_expr_string "x >> 2" in
  (match e with
  | Ast.EBinop (Ast.Shr, Ast.EVar "x", _) -> ()
  | _ -> Alcotest.fail "expected right shift");
  let e = Parser.parse_expr_string "a ++ b" in
  (match e with
  | Ast.EBinop (Ast.Concat, _, _) -> ()
  | _ -> Alcotest.fail "expected concat");
  let e = Parser.parse_expr_string "hdr.eth.isValid() && x < 5" in
  match e with
  | Ast.EBinop (Ast.LAnd, Ast.ECall (Ast.EMember (_, "isValid"), []), Ast.EBinop (Ast.Lt, _, _))
    -> ()
  | _ -> Alcotest.fail "expected && of isValid and comparison"

let test_typeargs () =
  let e = Parser.parse_expr_string "pkt.lookahead<bit<16>>()" in
  match e with
  | Ast.ECall (Ast.EMember (_, "lookahead"), [ Ast.ETypeArg (Ast.TBit 16) ]) -> ()
  | _ -> Alcotest.fail "expected lookahead with type arg"

let test_select_parsing () =
  let src =
    {|
parser P(packet_in pkt, out H hdr) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.type, hdr.eth.src) {
      (0x0800, _) : ipv4;
      (0x8100 &&& 0xEFFF, _) : vlan;
      (16w5 .. 16w10, _) : weird;
      default : accept;
    }
  }
  state ipv4 { transition accept; }
  state vlan { transition accept; }
  state weird { transition accept; }
}
|}
  in
  let prog = Parser.parse_program src in
  let p =
    List.find_map (function Ast.DParser (pd, _) -> Some pd | _ -> None) prog |> Option.get
  in
  Alcotest.(check int) "states" 4 (List.length p.p_states);
  let start = List.find (fun s -> s.Ast.st_name = "start") p.p_states in
  match start.st_trans with
  | TrSelect ([ _; _ ], cases) ->
      Alcotest.(check int) "cases" 4 (List.length cases);
      let c2 = List.nth cases 1 in
      (match c2.sel_keys with
      | [ Ast.EMask _; Ast.EDontCare ] -> ()
      | _ -> Alcotest.fail "expected mask pattern");
      let c3 = List.nth cases 2 in
      (match c3.sel_keys with
      | [ Ast.ERange _; Ast.EDontCare ] -> ()
      | _ -> Alcotest.fail "expected range pattern")
  | _ -> Alcotest.fail "expected select transition"

let test_entries_parsing () =
  let src =
    {|
control C(inout H h) {
  action a(bit<9> p) { }
  action b() { }
  table t {
    key = { h.f : ternary; h.g : exact; }
    actions = { a; b; }
    const entries = {
      (0x1 &&& 0xF, 10) : a(1);
      @priority(3) (_, 11) : b();
    }
    default_action = b();
    size = 64;
  }
  apply { t.apply(); }
}
|}
  in
  let prog = Parser.parse_program src in
  let tbl =
    List.find_map
      (function
        | Ast.DControl (cd, _) ->
            List.find_map (function Ast.LTable t -> Some t | _ -> None) cd.c_locals
        | _ -> None)
      prog
    |> Option.get
  in
  Alcotest.(check int) "entries" 2 (List.length tbl.tbl_entries);
  Alcotest.(check (option int)) "priority" (Some 3)
    (List.nth tbl.tbl_entries 1).te_priority;
  Alcotest.(check (option int)) "size" (Some 64) tbl.tbl_size

let test_typing_widths () =
  let prog = Parser.parse_program fig1a in
  let ctx = Typing.build prog in
  Alcotest.(check int) "eth width" 112 (Typing.width_of ctx (Ast.TName "ethernet_t"));
  Alcotest.(check int) "headers width" 112 (Typing.width_of ctx (Ast.TName "headers_t"));
  Alcotest.(check int) "meta width" 9 (Typing.width_of ctx (Ast.TName "meta_t"));
  let fs = Option.get (Typing.header_fields ctx "ethernet_t") in
  Alcotest.(check (pair int int)) "dst range" (111, 64) (Typing.field_range ctx fs "dst");
  Alcotest.(check (pair int int)) "type range" (15, 0) (Typing.field_range ctx fs "type")

let test_fold () =
  let src =
    {|
const bit<16> ETHERTYPE = 0x800;
control C(inout H h) {
  apply {
    if (ETHERTYPE == 0x800) {
      h.f = 1;
    } else {
      h.f = 2;
    }
    h.g = 4 + 3 * 2;
  }
}
|}
  in
  let prog = Passes.fold (Parser.parse_program src) in
  let cd =
    List.find_map (function Ast.DControl (cd, _) -> Some cd | _ -> None) prog |> Option.get
  in
  match cd.c_body with
  | [ Ast.SBlock [ Ast.SAssign (_, _, EInt { iv = 1; _ }) ]; Ast.SAssign (_, _, EInt { iv = 10; _ }) ]
    -> ()
  | b -> Alcotest.failf "fold failed: %s" (String.concat " " (List.map Pretty.stmt_to_string b))

let test_stack_elim () =
  let src =
    {|
header h_t { bit<8> v; }
struct hdrs { h_t[3] stk; }
control C(inout hdrs h, in bit<8> i) {
  apply {
    h.stk[i].v = 1;
  }
}
|}
  in
  let prog = Parser.parse_program src in
  let ctx = Typing.build prog in
  let prog = Passes.elim_stack_indices ctx prog in
  let cd =
    List.find_map (function Ast.DControl (cd, _) -> Some cd | _ -> None) prog |> Option.get
  in
  (* expect an if-chain of depth 3 *)
  let rec depth = function
    | [ Ast.SIf (_, _, _, e) ] -> 1 + depth e
    | _ -> 0
  in
  Alcotest.(check int) "chain depth" 3 (depth cd.c_body)

let test_numbering () =
  let prog = Parser.parse_program fig1a in
  let prog, n = Passes.number_statements prog in
  Alcotest.(check bool) "counted statements" true (n >= 5);
  (* all leaf statements have distinct ids *)
  let ids = ref [] in
  let rec collect_stmt s =
    match s with
    | Ast.SAssign (p, _, _) | Ast.SCall (p, _, _) | Ast.SExit p | Ast.SReturn (p, _) ->
        ids := p.Ast.line :: !ids
    | Ast.SIf (_, _, t, e) ->
        List.iter collect_stmt t;
        List.iter collect_stmt e
    | Ast.SBlock b -> List.iter collect_stmt b
    | Ast.SSwitch (_, _, cs) ->
        List.iter (fun c -> Option.iter (List.iter collect_stmt) c.Ast.sw_body) cs
    | _ -> ()
  in
  List.iter
    (function
      | Ast.DParser (pd, _) ->
          List.iter (fun st -> List.iter collect_stmt st.Ast.st_stmts) pd.p_states
      | Ast.DControl (cd, _) ->
          List.iter
            (function Ast.LAction a -> List.iter collect_stmt a.act_body | _ -> ())
            cd.c_locals;
          List.iter collect_stmt cd.c_body
      | _ -> ())
    prog;
  let sorted = List.sort_uniq compare !ids in
  Alcotest.(check int) "ids distinct" (List.length !ids) (List.length sorted);
  Alcotest.(check int) "ids match count" n (List.length !ids)

let () =
  Alcotest.run "p4-frontend"
    [
      ( "parse",
        [
          Alcotest.test_case "fig1a parses" `Quick (parses_ok "fig1a" fig1a);
          Alcotest.test_case "fig1b parses" `Quick (parses_ok "fig1b" fig1b);
          Alcotest.test_case "fig1a shape" `Quick test_fig1a_shape;
          Alcotest.test_case "fig1b shape" `Quick test_fig1b_shape;
          Alcotest.test_case "expressions" `Quick test_expr_parsing;
          Alcotest.test_case "type args" `Quick test_typeargs;
          Alcotest.test_case "select" `Quick test_select_parsing;
          Alcotest.test_case "entries" `Quick test_entries_parsing;
        ] );
      ("pretty", [ Alcotest.test_case "round trip" `Quick test_roundtrip ]);
      ("typing", [ Alcotest.test_case "widths" `Quick test_typing_widths ]);
      ( "passes",
        [
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "stack elim" `Quick test_stack_elim;
          Alcotest.test_case "numbering" `Quick test_numbering;
        ] );
    ]
