(* Back-end emitter tests: STF / PTF / protobuf-text formats. *)

module Bits = Bitv.Bits
module Testspec = Testgen.Testspec

let sample_test =
  Testspec.make
    ~input:(Testspec.packet ~port:(Bits.of_int ~width:9 3) (Bits.of_hex ~width:112 "00000000000000000000000000BEEF" |> fun b -> Bits.slice b ~hi:111 ~lo:0))
    ~outputs:
      [
        {
          Testspec.port = Bits.of_int ~width:9 7;
          data = Bits.of_int ~width:16 0xBEEF;
          dontcare = Bits.zero 16;
        };
      ]
    ~entries:
      [
        {
          Testspec.e_table = "forward_table";
          e_keys = [ ("etype", Testspec.MExact (Bits.of_int ~width:16 0xBEEF)) ];
          e_action = "set_out";
          e_args = [ ("port", Bits.of_int ~width:9 7) ];
          e_priority = None;
        };
      ]
    ~registers:[] ~covered:[ 1; 2; 3 ] ~comment:"sample"

let drop_test =
  Testspec.make
    ~input:(Testspec.packet ~port:(Bits.of_int ~width:9 1) (Bits.of_int ~width:16 0xAAAA))
    ~outputs:[] ~entries:[] ~registers:[] ~covered:[] ~comment:"drop"

let masked_test =
  Testspec.make
    ~input:(Testspec.packet ~port:(Bits.of_int ~width:9 1) (Bits.of_int ~width:16 0x1234))
    ~outputs:
      [
        {
          Testspec.port = Bits.of_int ~width:9 2;
          data = Bits.of_int ~width:16 0xFF00;
          dontcare = Bits.of_int ~width:16 0x00FF;  (* low byte undefined *)
        };
      ]
    ~entries:[] ~registers:[] ~covered:[] ~comment:"masked"

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_stf () =
  let out = Backends.Stf.emit [ sample_test; drop_test ] in
  Alcotest.(check bool) "add line" true (contains out "add forward_table etype:0xBEEF set_out(port:0x007)");
  Alcotest.(check bool) "packet line" true (contains out "packet 3 ");
  Alcotest.(check bool) "expect line" true (contains out "expect 7 BEEF");
  Alcotest.(check bool) "drop comment" true (contains out "# expect no packet (drop)")

let test_stf_mask () =
  let out = Backends.Stf.emit [ masked_test ] in
  (* don't-care nibbles become '*' *)
  Alcotest.(check bool) "masked nibbles" true (contains out "expect 2 FF**")

let test_stf_range_unsupported () =
  let t =
    Testspec.make
      ~input:(Testspec.packet ~port:(Bits.zero 9) (Bits.zero 16))
      ~outputs:[]
      ~entries:
        [
          {
            Testspec.e_table = "t";
            e_keys = [ ("k", Testspec.MRange (Bits.zero 8, Bits.ones 8)) ];
            e_action = "a";
            e_args = [];
            e_priority = None;
          };
        ]
      ~registers:[] ~covered:[] ~comment:"range"
  in
  (* STF cannot express range entries (§6): the test is skipped, not emitted *)
  let out = Backends.Stf.emit [ t ] in
  Alcotest.(check bool) "skipped" true (contains out "skipped");
  Alcotest.(check bool) "no add" false (contains out "add t ")

let test_ptf () =
  let out = Backends.Ptf.emit [ sample_test; masked_test ] in
  Alcotest.(check bool) "class" true (contains out "class Test0(P4TestgenTest):");
  Alcotest.(check bool) "table_add" true (contains out "self.table_add(\"forward_table\"");
  Alcotest.(check bool) "send" true (contains out "send_packet(self, 3, pkt)");
  Alcotest.(check bool) "verify" true (contains out "verify_packet(self, exp0, 7)");
  Alcotest.(check bool) "masked verify" true (contains out "verify_masked_packet");
  let out_drop = Backends.Ptf.emit [ drop_test ] in
  Alcotest.(check bool) "drop verify" true (contains out_drop "verify_no_other_packets")

let test_proto () =
  let out = Backends.Proto.emit [ sample_test; drop_test ] in
  Alcotest.(check bool) "table entry" true (contains out "table: \"forward_table\"");
  Alcotest.(check bool) "exact match" true (contains out "exact { value:");
  Alcotest.(check bool) "action" true (contains out "name: \"set_out\"");
  Alcotest.(check bool) "input packet" true (contains out "input_packet {");
  Alcotest.(check bool) "drop" true (contains out "expect_drop: true")

let test_registry () =
  Alcotest.(check int) "three back ends" 3 (List.length Backends.Registry.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Backends.Registry.find name <> None))
    [ "stf"; "ptf"; "protobuf" ]

(* round-trip style property: every generated corpus test serializes
   without raising in every back end *)
let test_all_backends_total () =
  List.iter
    (fun (name, src) ->
      let arch =
        match name with
        | "ebpf_filter" -> "ebpf_model"
        | "tna_basic" | "tna_kitchen" -> "tna"
        | _ -> "v1model"
      in
      let tgt = Option.get (Targets.Registry.find arch) in
      let run = Testgen.Oracle.generate tgt src in
      let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
      List.iter
        (fun (b : Backends.Registry.t) ->
          let out = b.emit tests in
          Alcotest.(check bool) (name ^ "/" ^ b.name ^ " non-empty") true
            (String.length out > 0))
        Backends.Registry.all)
    (Progzoo.Corpus.v1model_validatable
    @ [ ("ebpf_filter", Progzoo.Corpus.ebpf_filter); ("tna_basic", Progzoo.Corpus.tna_basic) ])

let () =
  Alcotest.run "backends"
    [
      ( "stf",
        [
          Alcotest.test_case "format" `Quick test_stf;
          Alcotest.test_case "don't-care mask" `Quick test_stf_mask;
          Alcotest.test_case "range unsupported" `Quick test_stf_range_unsupported;
        ] );
      ("ptf", [ Alcotest.test_case "format" `Quick test_ptf ]);
      ("protobuf", [ Alcotest.test_case "format" `Quick test_proto ]);
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry;
          Alcotest.test_case "total on corpus" `Quick test_all_backends_total;
        ] );
    ]
