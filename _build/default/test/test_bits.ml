(* Unit and property tests for the Bits bitvector substrate. *)

module Bits = Bitv.Bits

let check_bits = Alcotest.testable Bits.pp Bits.equal

let bits_of w n = Bits.of_int ~width:w n

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_basic () =
  Alcotest.(check int) "width zero" 5 (Bits.width (Bits.zero 5));
  Alcotest.(check bool) "is_zero" true (Bits.is_zero (Bits.zero 9));
  Alcotest.(check bool) "is_ones" true (Bits.is_ones (Bits.ones 9));
  Alcotest.(check int) "to_int" 42 (Bits.to_int (bits_of 16 42));
  Alcotest.(check check_bits) "of_int truncates" (bits_of 4 5) (bits_of 4 21);
  Alcotest.(check check_bits) "of_int negative" (Bits.ones 8) (bits_of 8 (-1))

let test_hex () =
  Alcotest.(check string) "to_hex" "BEEF" (Bits.to_hex (bits_of 16 0xBEEF));
  Alcotest.(check check_bits) "of_hex" (bits_of 16 0xBEEF)
    (Bits.of_hex ~width:16 "beef");
  Alcotest.(check check_bits) "of_hex underscore" (bits_of 16 0xBEEF)
    (Bits.of_hex ~width:16 "be_ef");
  Alcotest.(check string) "hex pads odd width" "1F" (Bits.to_hex (bits_of 5 0x1F));
  Alcotest.(check check_bits) "of_hex zext" (bits_of 20 0xBEEF)
    (Bits.of_hex ~width:20 "BEEF")

let test_bin () =
  Alcotest.(check string) "to_bin" "1010" (Bits.to_bin (bits_of 4 10));
  Alcotest.(check check_bits) "of_bin" (bits_of 4 10) (Bits.of_bin "1010");
  Alcotest.(check int) "of_bin width" 7 (Bits.width (Bits.of_bin "0001010"))

let test_concat_slice () =
  let a = bits_of 8 0xAB and b = bits_of 8 0xCD in
  let c = Bits.concat a b in
  Alcotest.(check int) "concat width" 16 (Bits.width c);
  Alcotest.(check string) "concat value" "ABCD" (Bits.to_hex c);
  Alcotest.(check check_bits) "slice hi" a (Bits.slice c ~hi:15 ~lo:8);
  Alcotest.(check check_bits) "slice lo" b (Bits.slice c ~hi:7 ~lo:0);
  Alcotest.(check check_bits) "slice mid" (bits_of 8 0xBC) (Bits.slice c ~hi:11 ~lo:4)

let test_arith () =
  Alcotest.(check check_bits) "add" (bits_of 8 5) (Bits.add (bits_of 8 250) (bits_of 8 11));
  Alcotest.(check check_bits) "sub wraps" (bits_of 8 0xFF) (Bits.sub (bits_of 8 0) (bits_of 8 1));
  Alcotest.(check check_bits) "mul" (bits_of 8 (21 * 9 mod 256)) (Bits.mul (bits_of 8 21) (bits_of 8 9));
  Alcotest.(check check_bits) "neg" (bits_of 8 (256 - 42)) (Bits.neg (bits_of 8 42));
  Alcotest.(check check_bits) "udiv" (bits_of 8 4) (Bits.udiv (bits_of 8 42) (bits_of 8 10));
  Alcotest.(check check_bits) "urem" (bits_of 8 2) (Bits.urem (bits_of 8 42) (bits_of 8 10));
  Alcotest.(check check_bits) "udiv by zero" (Bits.ones 8) (Bits.udiv (bits_of 8 42) (Bits.zero 8));
  Alcotest.(check check_bits) "urem by zero" (bits_of 8 42) (Bits.urem (bits_of 8 42) (Bits.zero 8))

let test_cmp () =
  Alcotest.(check bool) "ult" true (Bits.ult (bits_of 8 3) (bits_of 8 200));
  Alcotest.(check bool) "ult false" false (Bits.ult (bits_of 8 200) (bits_of 8 3));
  Alcotest.(check bool) "slt negative" true (Bits.slt (bits_of 8 200) (bits_of 8 3));
  Alcotest.(check bool) "sle equal" true (Bits.sle (bits_of 8 7) (bits_of 8 7))

let test_shift () =
  Alcotest.(check check_bits) "shl" (bits_of 8 0xF0) (Bits.shift_left (bits_of 8 0x0F) 4);
  Alcotest.(check check_bits) "lshr" (bits_of 8 0x0F) (Bits.shift_right (bits_of 8 0xF0) 4);
  Alcotest.(check check_bits) "ashr sign" (bits_of 8 0xFF) (Bits.shift_right_arith (bits_of 8 0x80) 7);
  Alcotest.(check check_bits) "shl overflow" (Bits.zero 8) (Bits.shift_left (bits_of 8 0xFF) 9)

let test_ext () =
  Alcotest.(check check_bits) "zext" (bits_of 16 0xAB) (Bits.zext (bits_of 8 0xAB) 16);
  Alcotest.(check check_bits) "sext pos" (bits_of 16 0x2B) (Bits.sext (bits_of 8 0x2B) 16);
  Alcotest.(check check_bits) "sext neg" (bits_of 16 0xFFAB) (Bits.sext (bits_of 8 0xAB) 16);
  Alcotest.(check check_bits) "zext truncates" (bits_of 4 0xB) (Bits.zext (bits_of 8 0xAB) 4)

let test_zero_width () =
  let z = Bits.zero 0 in
  Alcotest.(check int) "width" 0 (Bits.width z);
  Alcotest.(check check_bits) "concat left identity" (bits_of 8 7) (Bits.concat z (bits_of 8 7));
  Alcotest.(check check_bits) "concat right identity" (bits_of 8 7) (Bits.concat (bits_of 8 7) z);
  Alcotest.(check string) "hex empty" "" (Bits.to_hex z)

let test_wide () =
  (* 1500-byte packet-scale values *)
  let w = 1500 * 8 in
  let a = Bits.ones w in
  let b = Bits.add a (Bits.of_int ~width:w 1) in
  Alcotest.(check bool) "wide wraps to zero" true (Bits.is_zero b);
  let c = Bits.concat (bits_of 16 0xBEEF) (Bits.zero (w - 16)) in
  Alcotest.(check check_bits) "wide slice top" (bits_of 16 0xBEEF)
    (Bits.slice c ~hi:(w - 1) ~lo:(w - 16))

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_width = QCheck.Gen.int_range 1 80

let gen_bits =
  QCheck.Gen.(
    gen_width >>= fun w ->
    list_repeat w bool >|= fun bs -> Bits.of_bool_list bs)

let gen_pair_same_width =
  QCheck.Gen.(
    gen_width >>= fun w ->
    pair (list_repeat w bool) (list_repeat w bool) >|= fun (a, b) ->
    (Bits.of_bool_list a, Bits.of_bool_list b))

let arb_bits = QCheck.make ~print:Bits.to_string gen_bits

let arb_pair =
  QCheck.make
    ~print:(fun (a, b) -> Bits.to_string a ^ ", " ^ Bits.to_string b)
    gen_pair_same_width

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb f)

let props =
  [
    prop "hex roundtrip" arb_bits (fun v ->
        Bits.equal v (Bits.of_hex ~width:(Bits.width v) (Bits.to_hex v)));
    prop "bin roundtrip" arb_bits (fun v -> Bits.equal v (Bits.of_bin (Bits.to_bin v)));
    prop "bool-list roundtrip" arb_bits (fun v ->
        Bits.equal v (Bits.of_bool_list (Bits.to_bool_list v)));
    prop "add commutes" arb_pair (fun (a, b) -> Bits.equal (Bits.add a b) (Bits.add b a));
    prop "add/sub inverse" arb_pair (fun (a, b) ->
        Bits.equal a (Bits.sub (Bits.add a b) b));
    prop "neg involutive" arb_bits (fun v -> Bits.equal v (Bits.neg (Bits.neg v)));
    prop "lognot involutive" arb_bits (fun v -> Bits.equal v (Bits.lognot (Bits.lognot v)));
    prop "de morgan" arb_pair (fun (a, b) ->
        Bits.equal
          (Bits.lognot (Bits.logand a b))
          (Bits.logor (Bits.lognot a) (Bits.lognot b)));
    prop "xor self is zero" arb_bits (fun v -> Bits.is_zero (Bits.logxor v v));
    prop "concat then slice" arb_pair (fun (a, b) ->
        let c = Bits.concat a b in
        Bits.equal a (Bits.slice c ~hi:(Bits.width c - 1) ~lo:(Bits.width b))
        && Bits.equal b (Bits.slice c ~hi:(Bits.width b - 1) ~lo:0));
    prop "ult total vs compare" arb_pair (fun (a, b) ->
        Bits.ult a b = (Bits.compare a b < 0));
    prop "divmod identity" arb_pair (fun (a, b) ->
        QCheck.assume (not (Bits.is_zero b));
        Bits.equal a (Bits.add (Bits.mul (Bits.udiv a b) b) (Bits.urem a b)));
    prop "mul matches int mul (small)" arb_pair (fun (a, b) ->
        QCheck.assume (Bits.width a <= 20);
        let w = Bits.width a in
        Bits.to_int (Bits.mul a b) = (Bits.to_int a * Bits.to_int b) land ((1 lsl w) - 1));
    prop "add matches int add (small)" arb_pair (fun (a, b) ->
        QCheck.assume (Bits.width a <= 20);
        let w = Bits.width a in
        Bits.to_int (Bits.add a b) = (Bits.to_int a + Bits.to_int b) land ((1 lsl w) - 1));
    prop "shift left then right" arb_bits (fun v ->
        let w = Bits.width v in
        QCheck.assume (w >= 2);
        let k = w / 2 in
        let masked = Bits.shift_right (Bits.shift_left v k) k in
        Bits.equal masked (Bits.zext (Bits.slice v ~hi:(w - k - 1) ~lo:0) w));
    prop "sext preserves signed order" arb_pair (fun (a, b) ->
        Bits.slt a b = Bits.slt (Bits.sext a (Bits.width a + 7)) (Bits.sext b (Bits.width b + 7)));
    prop "zext preserves unsigned order" arb_pair (fun (a, b) ->
        Bits.ult a b = Bits.ult (Bits.zext a (Bits.width a + 7)) (Bits.zext b (Bits.width b + 7)));
  ]

let () =
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "bin" `Quick test_bin;
          Alcotest.test_case "concat-slice" `Quick test_concat_slice;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "cmp" `Quick test_cmp;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "ext" `Quick test_ext;
          Alcotest.test_case "zero-width" `Quick test_zero_width;
          Alcotest.test_case "wide" `Quick test_wide;
        ] );
      ("props", props);
    ]
