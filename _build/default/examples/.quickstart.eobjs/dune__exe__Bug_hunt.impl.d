examples/bug_hunt.ml: Bitv List Printf Progzoo Sim Targets Testgen
