examples/checksum_oracle.mli:
