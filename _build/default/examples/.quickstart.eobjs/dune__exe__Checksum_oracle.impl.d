examples/checksum_oracle.ml: Bitv List Printf Progzoo Sim Targets Testgen
