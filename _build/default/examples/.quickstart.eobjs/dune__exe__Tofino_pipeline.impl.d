examples/tofino_pipeline.ml: Bitv List Printf Progzoo Sim Targets Testgen
