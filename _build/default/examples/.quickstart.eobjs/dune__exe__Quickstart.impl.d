examples/quickstart.ml: Backends Format List Printf Progzoo Sim Targets Testgen
