examples/ebpf_filter_demo.ml: Backends Format List Printf Progzoo Sim Targets Testgen
