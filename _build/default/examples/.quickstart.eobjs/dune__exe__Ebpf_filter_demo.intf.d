examples/ebpf_filter_demo.mli:
