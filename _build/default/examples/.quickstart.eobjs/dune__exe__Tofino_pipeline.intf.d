examples/tofino_pipeline.mli:
