examples/quickstart.mli:
