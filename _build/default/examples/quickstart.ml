(* Quickstart: generate tests for the paper's running example (Fig. 1a)
   and print them in each supported back-end format.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "=== p4testgen quickstart: Fig. 1a (forward on EtherType) ===\n";
  (* 1. pick a target extension and generate tests *)
  let run = Testgen.Oracle.generate Targets.V1model.target Progzoo.Corpus.fig1a in
  let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
  Printf.printf "The oracle generated %d tests:\n\n" (List.length tests);
  List.iter (fun t -> print_endline (Testgen.Testspec.to_string t)) tests;

  (* 2. statement coverage comes with the run (§7) *)
  let cov = Testgen.Oracle.coverage_report run in
  Format.printf "@.%a@.@." Testgen.Oracle.pp_coverage cov;

  (* 3. concretize the abstract tests for a test framework *)
  print_endline "--- STF back end ---";
  print_endline (Backends.Stf.emit tests);

  (* 4. validate against the built-in BMv2-style software model *)
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.fig1a in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Printf.printf "validation on the software model: %d/%d tests pass\n"
    summary.Sim.Harness.passed summary.Sim.Harness.total
