(* The end-host extension (§6.1.3): ebpf_model has only a parser and a
   filter control — no deparser — and a failing extract drops the
   packet in the kernel.  The implicit deparser re-emits valid
   headers, so header rewrites by the filter are observable.

   Run with: dune exec examples/ebpf_filter_demo.exe *)

let () =
  print_endline "=== ebpf_model: TCP filter ===\n";
  let run = Testgen.Oracle.generate Targets.Ebpf.target Progzoo.Corpus.ebpf_filter in
  let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
  List.iter (fun t -> print_endline (Testgen.Testspec.to_string t)) tests;
  let passes = List.filter (fun t -> not (Testgen.Testspec.is_drop t)) tests in
  let drops = List.filter Testgen.Testspec.is_drop tests in
  Printf.printf "\n%d accepting tests, %d dropping tests\n" (List.length passes)
    (List.length drops);
  let cov = Testgen.Oracle.coverage_report run in
  Format.printf "%a@.@." Testgen.Oracle.pp_coverage cov;
  print_endline "--- STF back end (the eBPF extension's framework, Tbl. 1) ---";
  print_endline (Backends.Stf.emit tests);
  let sim = Sim.Harness.prepare ~arch:"ebpf_model" Progzoo.Corpus.ebpf_filter in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Printf.printf "kernel-model validation: %d/%d pass\n" summary.Sim.Harness.passed
    summary.Sim.Harness.total
