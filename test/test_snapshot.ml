(* Snapshot / warm-handoff layer tests: term import into a cloned
   context round-trips structurally, a whole execution state survives
   [Runtime.map_terms] across contexts, and a warm-cloned SAT core /
   solver gives the same verdicts as a cold one on the same problem. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Sat = Smt.Sat
module Solver = Smt.Solver
module Oracle = Testgen.Oracle
module Runtime = Testgen.Runtime

let v1model = Targets.V1model.target

(* ------------------------------------------------------------------ *)
(* Expr.clone_ctx / Expr.importer *)

let test_expr_import_roundtrip () =
  let ctx = Expr.create_ctx () in
  let a = Expr.var ctx "a" 8 in
  let b = Expr.var ctx "b" 16 in
  let tn = Expr.fresh_taint ctx 4 in
  let terms =
    [
      Expr.add a (Expr.slice b ~hi:7 ~lo:0);
      Expr.ite (Expr.eq a (Expr.of_int ctx ~width:8 3)) (Expr.mul a a) (Expr.lognot a);
      Expr.concat
        (Expr.shl b (Expr.of_int ctx ~width:16 2))
        (Expr.urem a (Expr.of_int ctx ~width:8 7));
      Expr.logor (Expr.zext tn 16) (Expr.sub (Expr.udiv b b) (Expr.neg b));
      Expr.conj ctx
        [ Expr.ult a (Expr.ones ctx 8); Expr.slt b (Expr.of_int ctx ~width:16 99) ];
      Expr.ashr (Expr.lshr b (Expr.of_int ctx ~width:16 1)) (Expr.of_int ctx ~width:16 2);
      Expr.logxor (Expr.logand a a) (Expr.const ctx (Bits.of_int ~width:8 0x5a));
    ]
  in
  let ctx' = Expr.clone_ctx ctx in
  let imp = Expr.importer ctx' in
  let terms' = List.map imp terms in
  List.iter2
    (fun e e' ->
      Alcotest.(check string) "printed form" (Expr.to_string e) (Expr.to_string e');
      Alcotest.(check int) "width" (Expr.width e) (Expr.width e');
      Alcotest.(check bool) "taint flag" (Expr.tainted e) (Expr.tainted e');
      Alcotest.(check int) "lives in clone" (Expr.ctx_id ctx') (Expr.ctx_id (Expr.ctx_of e')))
    terms terms';
  (* the importer is memoised: re-importing returns the same node *)
  List.iter2
    (fun e e' -> Alcotest.(check bool) "import idempotent" true (imp e == e'))
    terms terms';
  (* imported nodes join the clone's hash-consing: building the same
     structure natively from imported children finds the imported node *)
  let a' = imp a and b' = imp b in
  let rebuilt = Expr.add a' (Expr.slice b' ~hi:7 ~lo:0) in
  Alcotest.(check bool) "native rebuild shares" true (rebuilt == List.hd terms');
  (* fresh names minted in the clone stay clear of imported ones *)
  let f = Expr.fresh_var ctx' "a" 8 in
  Alcotest.(check bool) "fresh var distinct" true
    (Expr.to_string f <> Expr.to_string a')

let test_expr_import_eval_agrees () =
  (* concrete evaluation agrees between original and imported terms *)
  let ctx = Expr.create_ctx () in
  let a = Expr.var ctx "a" 8 in
  let b = Expr.var ctx "b" 8 in
  let e =
    Expr.ite
      (Expr.ult a b)
      (Expr.add (Expr.mul a b) (Expr.of_int ctx ~width:8 1))
      (Expr.logxor a (Expr.lognot b))
  in
  let ctx' = Expr.clone_ctx ctx in
  let e' = Expr.importer ctx' e in
  List.iter
    (fun (va, vb) ->
      let m v =
        if v.Expr.vname = "a" then Bits.of_int ~width:8 va else Bits.of_int ~width:8 vb
      in
      Alcotest.(check string)
        (Printf.sprintf "eval %d,%d" va vb)
        (Bits.to_string (Expr.eval m e))
        (Bits.to_string (Expr.eval m e')))
    [ (0, 0); (3, 200); (255, 1); (17, 17) ]

(* ------------------------------------------------------------------ *)
(* Runtime.map_terms: whole-state snapshot across contexts *)

let state_prints st =
  let acc = ref [] in
  Runtime.iter_terms (fun e -> acc := Expr.to_string e :: !acc) st;
  List.rev !acc

let test_state_snapshot_roundtrip () =
  let p = Oracle.prepare v1model Progzoo.Corpus.lpm_router in
  let ctx = p.Oracle.ctx in
  let ectx = ctx.Runtime.ectx in
  let st0 = Oracle.initial_state p in
  (* enrich the initial state so every term-bearing field is exercised *)
  let a = Expr.var ectx "snap_a" 8 in
  let b = Expr.var ectx "snap_b" 16 in
  let key = Expr.add a (Expr.slice b ~hi:7 ~lo:0) in
  let st =
    {
      st0 with
      Runtime.env = Runtime.Env.add "snap.x" key st0.Runtime.env;
      path_cond = Expr.eq a (Expr.of_int ectx ~width:8 3) :: st0.Runtime.path_cond;
      chunks = b :: st0.Runtime.chunks;
      registers = ("snap_reg", [| key; Expr.lognot a |]) :: st0.Runtime.registers;
      entries =
        {
          Runtime.se_table = "t";
          se_keys =
            [
              ("k0", Runtime.SkExact key);
              ("k1", Runtime.SkTernary (b, Expr.ones ectx 16));
              ("k2", Runtime.SkLpm (b, 12));
              ("k3", Runtime.SkRange (a, Expr.ones ectx 8));
              ("k4", Runtime.SkOptional (Some a));
            ];
          se_action = "act";
          se_args = [ ("p", Expr.mul a a) ];
          se_priority = Some 7;
        }
        :: st0.Runtime.entries;
      concolic =
        {
          Runtime.cc_var = a;
          cc_name = "hash";
          cc_args = [ key; b ];
          cc_impl = (fun _ -> Bits.zero 8);
        }
        :: st0.Runtime.concolic;
      outputs =
        { Runtime.o_port = a; o_data = Expr.concat b key; o_note = "snap" }
        :: st0.Runtime.outputs;
    }
  in
  let ectx' = Expr.clone_ctx ectx in
  let imp = Expr.importer ectx' in
  let st' = Runtime.map_terms imp st in
  (* every term moved and nothing changed structurally *)
  Runtime.iter_terms
    (fun e ->
      Alcotest.(check int) "term in clone" (Expr.ctx_id ectx') (Expr.ctx_id (Expr.ctx_of e)))
    st';
  Alcotest.(check (list string)) "terms identical in order" (state_prints st)
    (state_prints st');
  (* size estimate is context-independent *)
  Alcotest.(check int) "state_term_bytes stable" (Runtime.state_term_bytes st)
    (Runtime.state_term_bytes st');
  (* importing an already-imported state is the identity *)
  let st'' = Runtime.map_terms imp st' in
  Alcotest.(check (list string)) "second import is identity" (state_prints st')
    (state_prints st'')

(* ------------------------------------------------------------------ *)
(* Sat.clone: warm clone vs cold solver on fuzzed clause sets *)

let random_clause st nvars =
  let len = 1 + Random.State.int st 3 in
  List.init len (fun _ ->
      let v = Random.State.int st nvars in
      if Random.State.bool st then Sat.pos v else Sat.neg v)

let random_clauses st nvars n = List.init n (fun _ -> random_clause st nvars)

let test_sat_clone_verdicts () =
  let rst = Random.State.make [| 0xc10e |] in
  let fuzz_options = { Sat.default_options with Sat.o_reduce_init = 2 } in
  for _ = 1 to 150 do
    let nvars = 5 + Random.State.int rst 11 in
    let base = random_clauses rst nvars (2 + Random.State.int rst (3 * nvars)) in
    let extra = random_clauses rst nvars (1 + Random.State.int rst nvars) in
    let mk () =
      let s = Sat.create ~options:fuzz_options () in
      for _ = 1 to nvars do
        ignore (Sat.new_var s)
      done;
      s
    in
    (* parent: solve the base (learning clauses), then clone at level 0 *)
    let parent = mk () in
    List.iter (Sat.add_clause parent) base;
    ignore (Sat.solve parent);
    Sat.backtrack parent;
    let warm = Sat.clone parent in
    (* cold reference: fresh solver over base @ extra *)
    let cold = mk () in
    List.iter (Sat.add_clause cold) (base @ extra);
    List.iter (Sat.add_clause warm) extra;
    let expect = Sat.solve cold in
    Alcotest.(check bool) "warm clone verdict" expect (Sat.solve warm);
    Sat.backtrack warm;
    (* cloning did not corrupt the parent: it answers independently *)
    List.iter (Sat.add_clause parent) extra;
    Alcotest.(check bool) "parent after clone" expect (Sat.solve parent);
    Sat.backtrack parent
  done

(* ------------------------------------------------------------------ *)
(* Solver.clone: warm handoff at the term level *)

let test_solver_clone_verdicts () =
  let rst = Random.State.make [| 0x50afe |] in
  for _ = 1 to 40 do
    let ectx = Expr.create_ctx () in
    let a = Expr.var ectx "a" 8 in
    let b = Expr.var ectx "b" 8 in
    let c = Expr.var ectx "c" 8 in
    let rand_atom st =
      let v = [| a; b; c |].(Random.State.int st 3) in
      let k = Expr.of_int ectx ~width:8 (Random.State.int st 256) in
      match Random.State.int st 4 with
      | 0 -> Expr.eq v k
      | 1 -> Expr.ult v k
      | 2 -> Expr.eq (Expr.add v k) [| a; b; c |].(Random.State.int st 3)
      | _ -> Expr.bnot (Expr.eq v k)
    in
    let base = List.init (1 + Random.State.int rst 3) (fun _ -> rand_atom rst) in
    let extra = List.init (1 + Random.State.int rst 3) (fun _ -> rand_atom rst) in
    let parent = Solver.create ectx in
    List.iter (Solver.assert_ parent) base;
    ignore (Solver.check parent);
    (* warm clone into a cloned term context, importing the extra conds *)
    let ectx' = Expr.clone_ctx ectx in
    let imp = Expr.importer ectx' in
    let warm = Solver.clone ~ectx:ectx' parent in
    List.iter (fun e -> Solver.assert_ warm (imp e)) extra;
    (* cold reference over the original context *)
    let cold = Solver.create ectx in
    List.iter (Solver.assert_ cold) (base @ extra);
    let verdict = function Solver.Sat -> "sat" | Solver.Unsat -> "unsat" in
    Alcotest.(check string) "solver warm clone verdict"
      (verdict (Solver.check cold))
      (verdict (Solver.check warm))
  done

let () =
  Alcotest.run "snapshot"
    [
      ( "expr",
        [
          Alcotest.test_case "import round-trip" `Quick test_expr_import_roundtrip;
          Alcotest.test_case "import eval agrees" `Quick test_expr_import_eval_agrees;
        ] );
      ( "state",
        [
          Alcotest.test_case "state snapshot round-trip" `Quick
            test_state_snapshot_roundtrip;
        ] );
      ( "solver",
        [
          Alcotest.test_case "sat warm clone verdicts" `Quick test_sat_clone_verdicts;
          Alcotest.test_case "solver warm clone verdicts" `Quick
            test_solver_clone_verdicts;
        ] );
    ]
