(* Serve-subsystem tests: LRU cache semantics, fingerprint stability,
   structured preparation errors, streaming emission order, and the
   daemon end to end over a Unix socket — cold/warm cache behaviour,
   eviction, fingerprint-only probes, and concurrent clients whose
   responses must be bit-identical to single-shot [Oracle.generate]. *)

module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime
module Testspec = Testgen.Testspec

let v1model = Option.get (Targets.Registry.find "v1model")

(* tiny string helpers so the test does not pull in Str *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let replace_all hay needle by =
  let nn = String.length needle in
  let b = Buffer.create (String.length hay) in
  let rec go i =
    if i >= String.length hay then ()
    else if i + nn <= String.length hay && String.sub hay i nn = needle then begin
      Buffer.add_string b by;
      go (i + nn)
    end
    else begin
      Buffer.add_char b hay.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_eviction_order () =
  let l = Serve.Lru.create ~cap:2 in
  Alcotest.(check (option (pair string int))) "no eviction below cap" None
    (Serve.Lru.put l "a" 1);
  Alcotest.(check (option (pair string int))) "no eviction at cap" None
    (Serve.Lru.put l "b" 2);
  (* a is now least recently used; inserting c evicts it *)
  Alcotest.(check (option (pair string int))) "lru evicted" (Some ("a", 1))
    (Serve.Lru.put l "c" 3);
  Alcotest.(check (list string)) "mru first" [ "c"; "b" ] (Serve.Lru.keys l)

let test_lru_find_bumps_recency () =
  let l = Serve.Lru.create ~cap:2 in
  ignore (Serve.Lru.put l "a" 1);
  ignore (Serve.Lru.put l "b" 2);
  (* touching a makes b the eviction victim *)
  Alcotest.(check (option int)) "hit" (Some 1) (Serve.Lru.find l "a");
  Alcotest.(check (option (pair string int))) "victim is b" (Some ("b", 2))
    (Serve.Lru.put l "c" 3);
  Alcotest.(check (option int)) "a survived" (Some 1) (Serve.Lru.find l "a");
  (* mem must NOT count as a use *)
  let l2 = Serve.Lru.create ~cap:2 in
  ignore (Serve.Lru.put l2 "a" 1);
  ignore (Serve.Lru.put l2 "b" 2);
  Alcotest.(check bool) "mem sees a" true (Serve.Lru.mem l2 "a");
  Alcotest.(check (option (pair string int))) "mem did not bump a"
    (Some ("a", 1)) (Serve.Lru.put l2 "c" 3)

let test_lru_overwrite_and_remove () =
  let l = Serve.Lru.create ~cap:2 in
  ignore (Serve.Lru.put l "a" 1);
  ignore (Serve.Lru.put l "a" 10);
  Alcotest.(check int) "overwrite keeps one entry" 1 (Serve.Lru.length l);
  Alcotest.(check (option int)) "overwritten value" (Some 10) (Serve.Lru.find l "a");
  Serve.Lru.remove l "a";
  Alcotest.(check (option int)) "removed" None (Serve.Lru.find l "a");
  Alcotest.check_raises "cap 0 rejected"
    (Invalid_argument "Lru.create: cap must be >= 1") (fun () ->
      ignore (Serve.Lru.create ~cap:0))

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let fp arch src =
  match Oracle.fingerprint ~arch src with
  | Ok k -> k
  | Error e -> Alcotest.failf "fingerprint failed: %s" (Oracle.prepare_error_message e)

let test_fingerprint_whitespace_stable () =
  let base = Progzoo.Corpus.fig1a in
  (* whitespace and comments are lexer noise: the token stream — and
     so the cache key — must not move *)
  let noisy =
    "// a leading comment\n  \t\n"
    ^ String.concat "\n  " (String.split_on_char '\n' base)
    ^ "\n/* trailing\n   block comment */\n"
  in
  Alcotest.(check string) "reformatting keeps the key" (fp "v1model" base)
    (fp "v1model" noisy)

let test_fingerprint_sensitivity () =
  let base = Progzoo.Corpus.fig1a in
  let k = fp "v1model" base in
  (* any token change moves the key *)
  let edited = replace_all base "etype" "ethertype" in
  Alcotest.(check bool) "renaming an identifier moves the key" true
    (k <> fp "v1model" edited);
  (* the architecture is part of the key: the same source prepared for
     another target is a different cache entry *)
  Alcotest.(check bool) "arch is part of the key" true
    (k <> fp "tna" base);
  (* and a key is a stable function of (source, arch) *)
  Alcotest.(check string) "deterministic" k (fp "v1model" base)

let test_fingerprint_lex_error () =
  match Oracle.fingerprint ~arch:"v1model" "header { \x01" with
  | Ok _ -> Alcotest.fail "expected a lex error"
  | Error (Oracle.Parse_error _) -> ()
  | Error e ->
      Alcotest.failf "expected Parse_error, got %s" (Oracle.prepare_error_message e)

(* ------------------------------------------------------------------ *)
(* Structured preparation errors *)

let test_prepare_result_errors () =
  (match Oracle.prepare_result v1model "parser P(" with
  | Error (Oracle.Parse_error { line; _ }) ->
      Alcotest.(check bool) "position recorded" true (line >= 1)
  | Error e -> Alcotest.failf "wrong error: %s" (Oracle.prepare_error_message e)
  | Ok _ -> Alcotest.fail "parse must fail");
  (* lexical garbage surfaces as a positioned parse error too *)
  (match Oracle.prepare_result v1model "header h_t {\n  \x01" with
  | Error (Oracle.Parse_error { line; _ }) ->
      Alcotest.(check int) "lex error line" 2 line
  | Error e -> Alcotest.failf "wrong error: %s" (Oracle.prepare_error_message e)
  | Ok _ -> Alcotest.fail "lexing must fail");
  (* typing and runtime rejections map onto the remaining kinds *)
  Alcotest.(check string) "typecheck kind" "typecheck"
    (Oracle.prepare_error_kind (Oracle.Type_error "unknown field nope"));
  Alcotest.(check string) "exec kind" "exec"
    (Oracle.prepare_error_kind (Oracle.Arch_error "no main package"));
  Alcotest.(check string) "typed message" "type error: unknown field nope"
    (Oracle.prepare_error_message (Oracle.Type_error "unknown field nope"));
  (* the happy path still works and matches plain prepare *)
  match Oracle.prepare_result v1model Progzoo.Corpus.fig1a with
  | Ok p -> Alcotest.(check bool) "prepared" true (p.Oracle.prep_time >= 0.0)
  | Error e -> Alcotest.failf "unexpected: %s" (Oracle.prepare_error_message e)

let test_prepare_still_raises () =
  Alcotest.(check bool) "prepare raises on bad source" true
    (try
       ignore (Oracle.prepare v1model "parser P(");
       false
     with P4.Parser.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Streaming emission *)

let streaming_matches_final ~path_jobs src =
  let streamed = ref [] in
  let config =
    {
      Explore.default_config with
      Explore.on_test = Some (fun t -> streamed := t :: !streamed);
      path_jobs;
    }
  in
  let run = Oracle.generate ~config v1model src in
  let final = List.map Testspec.to_string run.Oracle.result.Explore.tests in
  let seen = List.rev_map Testspec.to_string !streamed in
  Alcotest.(check (list string))
    (Printf.sprintf "streamed = final (path_jobs %d)" path_jobs)
    final seen

let test_on_test_streaming () =
  streaming_matches_final ~path_jobs:0 Progzoo.Corpus.fig1a;
  streaming_matches_final ~path_jobs:0 (Progzoo.Generators.up4 ());
  (* the frontier driver streams from the deterministic merge prefix:
     same order, no duplicates, no holes *)
  streaming_matches_final ~path_jobs:2 (Progzoo.Generators.up4 ());
  streaming_matches_final ~path_jobs:3
    (Progzoo.Generators.middleblock ~acl_stages:2 ())

(* ------------------------------------------------------------------ *)
(* The daemon, end to end *)

let with_server ?(cache_slots = 4) ?(workers = 2) f =
  let path = Filename.temp_file "p4tg-test" ".sock" in
  let ep = Serve.Wire.Unix_sock path in
  let server =
    Serve.Server.start
      {
        Serve.Server.endpoint = ep;
        cache_slots;
        workers;
        queue_cap = 16;
        default_deadline_ms = None;
      }
  in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop server)
    (fun () ->
      Alcotest.(check bool) "daemon up" true (Serve.Client.wait_ready ep);
      f ep)

let rpc ep rq =
  match Serve.Client.request ep rq with
  | Ok evs -> evs
  | Error msg -> Alcotest.failf "request failed: %s" msg

let gen_rq ?key ?source ?(seed = 1) ?(max_tests = None) () =
  {
    Serve.Wire.default_request with
    Serve.Wire.rq_arch = "v1model";
    rq_seed = seed;
    rq_max_tests = max_tests;
    rq_key = key;
    rq_source = source;
  }

let summary_exn evs =
  match Serve.Client.find_summary evs with
  | Some kvs -> kvs
  | None -> Alcotest.fail "no summary frame"

let sget evs k =
  match Serve.Client.summary_get (summary_exn evs) k with
  | Some v -> v
  | None -> Alcotest.failf "summary lacks %s" k

let tests_of evs =
  List.filter_map
    (function Serve.Wire.Test (_, body) -> Some body | _ -> None)
    evs

let obs_json_of evs =
  match
    List.find_map (function Serve.Wire.Obs j -> Some j | _ -> None) evs
  with
  | Some j -> j
  | None -> Alcotest.fail "no obs frame"

let test_server_cold_then_warm () =
  with_server (fun ep ->
      let src = Progzoo.Corpus.fig1a in
      let cold = rpc ep (gen_rq ~source:src ()) in
      Alcotest.(check string) "cold misses" "false" (sget cold "cache_hit");
      Alcotest.(check bool) "cold paid preparation" true
        (float_of_string (sget cold "prep_seconds") > 0.0);
      let warm = rpc ep (gen_rq ~source:src ()) in
      Alcotest.(check string) "warm hits" "true" (sget warm "cache_hit");
      Alcotest.(check string) "warm skipped preparation" "0.000000"
        (sget warm "prep_seconds");
      Alcotest.(check string) "same key" (sget cold "fingerprint")
        (sget warm "fingerprint");
      (* identical test streams *)
      Alcotest.(check (list string)) "cold = warm tests" (tests_of cold)
        (tests_of warm);
      (* the response obs carries per-request deltas of the server's
         cache counters: the warm request is one hit and zero misses
         (the miss belonged to the cold request's response) *)
      let j = obs_json_of warm in
      let has frag = Alcotest.(check bool) frag true (contains j frag) in
      has "\"serve.cache_hits\":1";
      has "\"serve.cache_misses\":0")

let test_server_hit_after_evict () =
  with_server ~cache_slots:1 (fun ep ->
      let a = Progzoo.Corpus.fig1a and b = Progzoo.Corpus.fig1b in
      let r1 = rpc ep (gen_rq ~source:a ()) in
      Alcotest.(check string) "a cold" "false" (sget r1 "cache_hit");
      (* b evicts a from the single slot *)
      let r2 = rpc ep (gen_rq ~source:b ()) in
      Alcotest.(check string) "b cold" "false" (sget r2 "cache_hit");
      let r3 = rpc ep (gen_rq ~source:a ()) in
      Alcotest.(check string) "a re-prepared after eviction" "false"
        (sget r3 "cache_hit");
      Alcotest.(check (list string)) "re-prepared tests identical"
        (tests_of r1) (tests_of r3);
      (* per-request delta: re-preparing a evicted b, one eviction
         attributable to this request (b's earlier eviction of a is
         reported on r2, not here) *)
      let j = obs_json_of r3 in
      Alcotest.(check bool) "evictions counted" true
        (contains j "\"serve.cache_evictions\":1"))

let test_server_fingerprint_probe () =
  with_server (fun ep ->
      let src = Progzoo.Corpus.fig1a in
      let key = fp "v1model" src in
      (* probing an empty cache by key alone cannot prepare *)
      let miss = rpc ep (gen_rq ~key ()) in
      (match Serve.Client.find_error miss with
      | Some ("unknown-fingerprint", _) -> ()
      | Some (k, m) -> Alcotest.failf "wrong error %s: %s" k m
      | None -> Alcotest.fail "expected unknown-fingerprint");
      (* prime, then the same key-only request is served warm *)
      let cold = rpc ep (gen_rq ~source:src ()) in
      Alcotest.(check string) "primed" "false" (sget cold "cache_hit");
      let by_key = rpc ep (gen_rq ~key ()) in
      Alcotest.(check string) "served by key" "true" (sget by_key "cache_hit");
      Alcotest.(check (list string)) "key-only = source tests" (tests_of cold)
        (tests_of by_key);
      (* remote fingerprint op agrees with the local computation *)
      let fpr =
        rpc ep
          {
            Serve.Wire.default_request with
            Serve.Wire.rq_op = Serve.Wire.Fingerprint;
            rq_arch = "v1model";
            rq_source = Some src;
          }
      in
      match
        List.find_map
          (function Serve.Wire.Okay k -> Some k | _ -> None)
          fpr
      with
      | Some k -> Alcotest.(check string) "server fingerprint = local" key k
      | None -> Alcotest.fail "no ok frame")

let test_server_prepare_error () =
  with_server (fun ep ->
      let evs = rpc ep (gen_rq ~source:"parser P(" ()) in
      (match Serve.Client.find_error evs with
      | Some ("parse", _) -> ()
      | Some (k, m) -> Alcotest.failf "wrong kind %s: %s" k m
      | None -> Alcotest.fail "expected a parse error frame");
      (* one bad program fails one request, not the daemon *)
      let ok = rpc ep (gen_rq ~source:Progzoo.Corpus.fig1a ()) in
      Alcotest.(check string) "daemon survived" "false" (sget ok "cache_hit"))

(* every concurrent client's streamed response must be bit-identical
   to a single-shot generate of the same program with the same seed:
   the cache shares midend artifacts, never exploration state *)
let test_server_concurrent_bit_identical () =
  let progs =
    [|
      ("fig1a", Progzoo.Corpus.fig1a);
      ("fig1b", Progzoo.Corpus.fig1b);
      ("up4", Progzoo.Generators.up4 ());
    |]
  in
  let expected =
    Array.map
      (fun (_, src) ->
        let run = Oracle.generate v1model src in
        let tests = run.Oracle.result.Explore.tests in
        let reg = Obs.Registry.create () in
        let be = Option.get (Backends.Registry.find "stf") in
        ( List.map Testspec.to_string tests,
          Backends.Registry.emit_observed ~obs:reg be tests ))
      progs
  in
  with_server ~workers:3 (fun ep ->
      let clients = 6 in
      let results =
        List.init clients (fun i ->
            Domain.spawn (fun () ->
                let _, src = progs.(i mod Array.length progs) in
                let rq =
                  {
                    (gen_rq ~source:src ()) with
                    Serve.Wire.rq_backend = Some "stf";
                  }
                in
                (i, Serve.Client.request ep rq)))
        |> List.map Domain.join
      in
      List.iter
        (fun (i, res) ->
          let name, _ = progs.(i mod Array.length progs) in
          match res with
          | Error msg -> Alcotest.failf "client %d (%s): %s" i name msg
          | Ok evs ->
              let want_tests, want_file = expected.(i mod Array.length progs) in
              Alcotest.(check (list string))
                (Printf.sprintf "client %d (%s) tests bit-identical" i name)
                want_tests (tests_of evs);
              let file =
                List.find_map
                  (function Serve.Wire.File (_, f) -> Some f | _ -> None)
                  evs
              in
              Alcotest.(check (option string))
                (Printf.sprintf "client %d (%s) back-end file identical" i name)
                (Some want_file) file)
        results)

let test_wire_roundtrip () =
  let rq =
    {
      Serve.Wire.rq_op = Serve.Wire.Generate;
      rq_arch = "tna";
      rq_backend = Some "ptf";
      rq_strategy = "cov";
      rq_seed = 42;
      rq_max_tests = Some 7;
      rq_max_paths = None;
      rq_seq_packets = 2;
      rq_path_jobs = 3;
      rq_deadline_ms = Some 1500;
      rq_key = None;
      rq_source = Some "control C() { apply {} }\n// body with\n\nblank lines\n";
    }
  in
  match Serve.Wire.(decode_request (encode_request rq)) with
  | Error m -> Alcotest.failf "roundtrip failed: %s" m
  | Ok rq' ->
      Alcotest.(check bool) "request roundtrips" true (rq = rq');
      let evs =
        [
          Serve.Wire.Test (3, "test {\n  body\n}");
          Serve.Wire.File ("stf", "packet 0 aa\n");
          Serve.Wire.Summary [ ("tests", "3"); ("cache_hit", "true") ];
          Serve.Wire.Obs "{\"a\": 1}";
          Serve.Wire.Error ("busy", "queue full");
          Serve.Wire.Okay "pong";
          Serve.Wire.End;
        ]
      in
      List.iter
        (fun ev ->
          match Serve.Wire.(decode_event (encode_event ev)) with
          | Ok ev' when ev = ev' -> ()
          | Ok _ -> Alcotest.fail "event changed in roundtrip"
          | Error m -> Alcotest.failf "event roundtrip failed: %s" m)
        evs

let () =
  Alcotest.run "serve"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "find bumps recency" `Quick test_lru_find_bumps_recency;
          Alcotest.test_case "overwrite + remove" `Quick test_lru_overwrite_and_remove;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "whitespace stable" `Quick test_fingerprint_whitespace_stable;
          Alcotest.test_case "sensitivity" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "lex error" `Quick test_fingerprint_lex_error;
        ] );
      ( "prepare_result",
        [
          Alcotest.test_case "structured errors" `Quick test_prepare_result_errors;
          Alcotest.test_case "prepare still raises" `Quick test_prepare_still_raises;
        ] );
      ( "streaming",
        [ Alcotest.test_case "on_test = final tests" `Quick test_on_test_streaming ] );
      ( "wire",
        [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip ] );
      ( "daemon",
        [
          Alcotest.test_case "cold then warm" `Quick test_server_cold_then_warm;
          Alcotest.test_case "hit after evict" `Quick test_server_hit_after_evict;
          Alcotest.test_case "fingerprint probe" `Quick test_server_fingerprint_probe;
          Alcotest.test_case "prepare error survives" `Quick test_server_prepare_error;
          Alcotest.test_case "concurrent bit-identical" `Quick
            test_server_concurrent_bit_identical;
        ] );
    ]
