(* Taint semantics tests (§5.3): sources, propagation, spread
   mitigation, and the oracle-level consequences (default-action
   fallback, wildcard ternary entries, discarded flaky tests,
   don't-care masks). *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Testspec = Testgen.Testspec

let v1model = Targets.V1model.target

(* term context for the expression-level tests *)
let ctx = Expr.create_ctx ()

let generate ?(opts = Testgen.Runtime.default_options) src = Oracle.generate ~opts v1model src

let wrap_v1 ingress_body ~meta_fields =
  Printf.sprintf
    {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { %s }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
%s
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}
    meta_fields ingress_body

(* ------------------------------------------------------------------ *)
(* expression-level taint algebra *)

let test_taint_sources () =
  let t = Expr.fresh_taint ctx 8 in
  Alcotest.(check bool) "distinct" false (Expr.fresh_taint ctx 8 == Expr.fresh_taint ctx 8);
  Alcotest.(check bool) "tainted flag" true (Expr.tainted t)

let test_mitigation_mul_zero () =
  (* §5.3 heuristic 1: multiplying a tainted value with 0 yields 0 *)
  let t = Expr.fresh_taint ctx 8 in
  Alcotest.(check bool) "t*0 untainted" false (Expr.tainted (Expr.mul t (Expr.zero ctx 8)));
  Alcotest.(check bool) "t&0 untainted" false (Expr.tainted (Expr.logand t (Expr.zero ctx 8)));
  (* identities that must NOT kill taint *)
  Alcotest.(check bool) "t|0 tainted" true (Expr.tainted (Expr.logor t (Expr.zero ctx 8)));
  Alcotest.(check bool) "t+0 tainted" true (Expr.tainted (Expr.add t (Expr.zero ctx 8)))

let test_mask_precision () =
  let t = Expr.fresh_taint ctx 4 and x = Expr.var ctx "taint_prec_x" 4 in
  (* concat keeps per-bit placement *)
  let c = Expr.concat x t in
  Alcotest.(check string) "mask placement" "0F" (Bits.to_hex (Expr.taint_mask c));
  (* arithmetic carries spread upward from the lowest tainted bit *)
  let sum = Expr.add c (Expr.var ctx "taint_prec_y" 8) in
  Alcotest.(check string) "carry spread" "FF" (Bits.to_hex (Expr.taint_mask sum));
  let sum2 = Expr.add (Expr.concat t x) (Expr.var ctx "taint_prec_z" 8) in
  Alcotest.(check string) "high taint spreads only up" "F0"
    (Bits.to_hex (Expr.taint_mask sum2))

let test_ite_collapse () =
  (* same value in both branches kills a tainted condition's influence *)
  let t = Expr.fresh_taint ctx 1 and x = Expr.var ctx "taint_ite_x" 8 in
  Alcotest.(check bool) "ite collapse" true (Expr.ite t x x == x)

(* ------------------------------------------------------------------ *)
(* oracle-level behavior *)

let test_tainted_key_default_only () =
  (* an exact key fed by an uninitialized (tainted) read: P4Testgen
     must not synthesize an entry (Fig. 1c, line 7) *)
  let src =
    wrap_v1 ~meta_fields:"bit<16> scratch;"
      {|
  action hit_act(bit<9> p) { sm.egress_spec = p; }
  action miss_act() { }
  table t {
    key = { hdr.eth.etype : exact @name("etype"); }
    actions = { hit_act; miss_act; }
    default_action = miss_act();
  }
  apply { t.apply(); }
|}
  in
  let run = generate src in
  let tests = run.Oracle.result.Explore.tests in
  (* the short-packet path reads an invalid header: its tests must not
     install entries *)
  let short = List.filter (fun (t : Testspec.t) -> Bits.width (Testspec.input t).data < 112) tests in
  Alcotest.(check bool) "short-packet tests exist" true (short <> []);
  List.iter
    (fun (t : Testspec.t) ->
      Alcotest.(check int) "no entry for tainted key" 0 (List.length t.entries))
    short

let test_tainted_ternary_wildcard () =
  (* §5.3 heuristic 2: a tainted *ternary* key still admits a wildcard
     entry, so the hit branch remains testable *)
  let src =
    wrap_v1 ~meta_fields:"bit<16> scratch;"
      {|
  action hit_act(bit<9> p) { sm.egress_spec = p; }
  action miss_act() { }
  table t {
    key = { hdr.eth.etype : ternary @name("etype"); }
    actions = { hit_act; miss_act; }
    default_action = miss_act();
  }
  apply { t.apply(); }
|}
  in
  let run = generate src in
  let tests = run.Oracle.result.Explore.tests in
  let short_hits =
    List.filter
      (fun (t : Testspec.t) -> Bits.width (Testspec.input t).data < 112 && t.entries <> [])
      tests
  in
  Alcotest.(check bool) "wildcard entry on tainted ternary key" true (short_hits <> []);
  List.iter
    (fun (t : Testspec.t) ->
      List.iter
        (fun (e : Testspec.entry) ->
          List.iter
            (fun (_, m) ->
              match m with
              | Testspec.MTernary (_, mask) ->
                  Alcotest.(check bool) "mask all zero (wildcard)" true (Bits.is_zero mask)
              | _ -> Alcotest.fail "expected ternary")
            e.e_keys)
        t.entries)
    short_hits

let test_tainted_port_discards () =
  (* random() output routed to the port: the packet's destination is
     unpredictable, so the test must be discarded (§5.3) *)
  let src =
    wrap_v1 ~meta_fields:"bit<16> scratch;"
      {|
  apply {
    random(sm.egress_spec, 9w0, 9w100);
  }
|}
  in
  let run = generate src in
  let stats = run.Oracle.result.Explore.stats in
  Alcotest.(check bool) "flaky tests discarded" true (stats.Explore.discarded_taint > 0);
  (* the only remaining tests are short-packet paths (also routed by
     the tainted port, so in this program everything is discarded) *)
  List.iter
    (fun (t : Testspec.t) -> Alcotest.(check bool) "no forwarded test" true (Testspec.is_drop t))
    run.Oracle.result.Explore.tests

let test_tainted_payload_masks () =
  (* a nondeterministic value written into an emitted header must show
     up as a don't-care mask, not as a concrete expectation *)
  let src =
    wrap_v1 ~meta_fields:"bit<16> scratch;"
      {|
  apply {
    random(meta.scratch, 16w0, 16w65535);
    hdr.eth.etype = meta.scratch;
    sm.egress_spec = 1;
  }
|}
  in
  let run = generate src in
  let fwd =
    List.filter
      (fun (t : Testspec.t) ->
        (not (Testspec.is_drop t)) && Bits.width (List.hd (Testspec.outputs t)).data >= 16)
      run.Oracle.result.Explore.tests
  in
  Alcotest.(check bool) "forwarded tests exist" true (fwd <> []);
  List.iter
    (fun (t : Testspec.t) ->
      let o = List.hd (Testspec.outputs t) in
      (* the low 16 bits (etype) must be don't-care *)
      let low = Bits.slice o.dontcare ~hi:15 ~lo:0 in
      Alcotest.(check bool) "etype masked" true (Bits.is_ones low))
    fwd

let () =
  Alcotest.run "taint"
    [
      ( "expr",
        [
          Alcotest.test_case "sources" `Quick test_taint_sources;
          Alcotest.test_case "mul-zero mitigation" `Quick test_mitigation_mul_zero;
          Alcotest.test_case "mask precision" `Quick test_mask_precision;
          Alcotest.test_case "ite collapse" `Quick test_ite_collapse;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exact key -> default only" `Quick test_tainted_key_default_only;
          Alcotest.test_case "ternary key -> wildcard" `Quick test_tainted_ternary_wildcard;
          Alcotest.test_case "tainted port -> discard" `Quick test_tainted_port_discards;
          Alcotest.test_case "tainted payload -> mask" `Quick test_tainted_payload_masks;
        ] );
    ]
