(* Unit tests for the self-validation machinery itself: the random
   program generator's feature coverage, the hierarchical-delta
   reducer (predicate preservation, determinism, measured shrink on
   hand-built oversized failing programs), and the end-to-end
   seeded-fault campaign (a known simulator fault must be detected and
   auto-reduced to a small repro that still exposes it). *)

module Campaign = Selftest.Campaign
module Reduce = Selftest.Reduce
module Randprog = Progzoo.Randprog

(* ------------------------------------------------------------------ *)
(* Generator feature coverage: over a modest seed range, every
   architecture together must exercise the whole feature universe —
   tables (all key kinds), parsers with select over header stacks,
   checksum externs, and all three architectures. *)

let test_feature_coverage () =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun arch ->
      for seed = 1 to 80 do
        let gen = Randprog.generate_for ~arch ~seed in
        List.iter (fun f -> Hashtbl.replace seen f ()) gen.Randprog.features
      done)
    Randprog.all_archs;
  let covered = Hashtbl.fold (fun f () acc -> f :: acc) seen [] in
  Alcotest.(check (list string))
    "all generator features exercised"
    (List.sort compare Randprog.feature_universe)
    (List.sort compare covered)

let test_generated_programs_parse () =
  List.iter
    (fun arch ->
      for seed = 1 to 20 do
        let gen = Randprog.generate_for ~arch ~seed in
        match P4.Parser.parse_program gen.Randprog.src with
        | _ -> ()
        | exception P4.Parser.Error (msg, _) ->
            Alcotest.failf "%s seed %d does not parse: %s\n%s"
              (Randprog.arch_name arch) seed msg gen.Randprog.src
      done)
    Randprog.all_archs

(* ------------------------------------------------------------------ *)
(* Reducer: hand-built oversized programs that fail differentially
   under a seeded simulator fault.  The reducer must preserve the
   failure kind, be deterministic, and actually shrink. *)

(* v1model: three headers, a select parser, and plenty of junk the
   reducer should strip; fails under [Drop_second_emit] whenever more
   than one header is emitted *)
let oversized_v1model =
  {|
header eth_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4ish_t { bit<8> ttl; bit<8> proto; bit<16> csum; bit<32> saddr; bit<32> daddr; }
header extra_t { bit<8> a; bit<16> b; bit<24> c; }
header pad_t { bit<16> x; bit<8> y; }
struct headers_t { eth_t eth; ipv4ish_t ipv4; extra_t extra; pad_t pad; }
struct meta_t { bit<16> m0; bit<8> m1; bit<32> m2; bit<4> m3; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800: parse_ipv4;
      0x1234: parse_extra;
      default: accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition select(hdr.ipv4.proto) {
      0x11: parse_pad;
      default: accept;
    }
  }
  state parse_extra {
    pkt.extract(hdr.extra);
    transition accept;
  }
  state parse_pad {
    pkt.extract(hdr.pad);
    transition accept;
  }
}

control V(inout headers_t hdr, inout meta_t meta) {
  apply { }
}

control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    meta.m0 = 3;
    meta.m1 = 7;
    meta.m2 = 19;
    meta.m3 = 1;
    if (hdr.ipv4.isValid()) {
      hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
      hdr.ipv4.daddr = hdr.ipv4.saddr;
      hdr.ipv4.csum = meta.m0 + 5;
      if (hdr.pad.isValid()) {
        hdr.pad.x = hdr.ipv4.csum;
        hdr.pad.y = 9;
      }
    }
    if (hdr.extra.isValid()) {
      hdr.extra.b = meta.m0;
      hdr.extra.c = 0x00AA55;
      hdr.extra.a = hdr.extra.a + 1;
    }
    hdr.eth.dst = hdr.eth.src;
    hdr.eth.src[15:0] = meta.m0;
    meta.m2 = meta.m2 + 1;
    sm.egress_spec = 2;
  }
}

control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply { }
}

control C(inout headers_t hdr, inout meta_t meta) {
  apply { }
}

control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
    pkt.emit(hdr.extra);
    pkt.emit(hdr.pad);
  }
}

V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(* ebpf: two extracted headers plus junk; the model emits every valid
   header, so [Drop_second_emit] truncates the output *)
let oversized_ebpf =
  {|
header eth_t { bit<48> dst; bit<48> src; bit<16> etype; }
header extra_t { bit<8> a; bit<16> b; bit<24> c; }
header tail_t { bit<8> t0; bit<8> t1; }
struct headers_t { eth_t eth; extra_t extra; tail_t tail; }

parser prs(packet_in pkt, out headers_t hdr) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x1234: parse_extra;
      0x5678: parse_tail;
      default: parse_extra;
    }
  }
  state parse_extra {
    pkt.extract(hdr.extra);
    transition select(hdr.extra.a) {
      0xFF: parse_tail;
      default: accept;
    }
  }
  state parse_tail {
    pkt.extract(hdr.tail);
    transition accept;
  }
}

control pipe(inout headers_t hdr, out bool pass) {
  apply {
    pass = true;
    if (hdr.extra.isValid()) {
      hdr.extra.b = hdr.extra.b + 1;
      hdr.extra.a = 5;
      hdr.extra.c = hdr.extra.c - 3;
    }
    if (hdr.tail.isValid()) {
      hdr.tail.t0 = hdr.tail.t1;
      hdr.tail.t1 = 0x2A;
    }
    hdr.eth.dst = hdr.eth.src;
    hdr.eth.dst[8:0] = 17;
    hdr.eth.src[15:0] = hdr.eth.etype;
  }
}

ebpfFilter(prs(), pipe()) main;
|}

let fault = Sim.Mutation.Drop_second_emit

(* "still fails the same way" — the campaign's own reduction predicate *)
let keep ~arch ~kind src =
  match Campaign.run_pipeline ~fault ~arch ~seed:3 ~max_tests:10 src with
  | Campaign.Diff (k, _) -> k = kind
  | Campaign.All_pass _ -> false

let reduce_case name ~arch ~max_lines src () =
  let kind =
    match Campaign.run_pipeline ~fault ~arch ~seed:3 ~max_tests:10 src with
    | Campaign.Diff (k, _) -> k
    | Campaign.All_pass _ ->
        Alcotest.failf "%s: oversized program does not fail under the seeded fault" name
  in
  Alcotest.(check string) "fails as wrong_output" "wrong_output" kind;
  let keep = keep ~arch ~kind in
  let o1 = Reduce.reduce ~keep src in
  (* predicate preservation *)
  Alcotest.(check bool) "reduced program still fails the same way" true
    (keep o1.Reduce.reduced);
  (* determinism *)
  let o2 = Reduce.reduce ~keep src in
  Alcotest.(check string) "reduction is deterministic" o1.Reduce.reduced o2.Reduce.reduced;
  (* measured shrink: the junk must go, down to near the architecture's
     irreducible skeleton *)
  let before = Reduce.line_count src and after = Reduce.line_count o1.Reduce.reduced in
  Alcotest.(check bool)
    (Printf.sprintf "removes at least 15 lines (%d -> %d)" before after)
    true
    (before - after >= 15);
  Alcotest.(check bool)
    (Printf.sprintf "repro is near the skeleton floor (%d <= %d lines)" after max_lines)
    true (after <= max_lines)

(* a reduction whose predicate rejects everything must return the
   original program unchanged *)
let test_reduce_noop () =
  let src = oversized_ebpf in
  let o = Reduce.reduce ~keep:(fun _ -> false) src in
  Alcotest.(check string) "nothing accepted -> original back" src o.Reduce.reduced;
  Alcotest.(check int) "no steps taken" 0 o.Reduce.steps

(* ------------------------------------------------------------------ *)
(* End-to-end: a campaign over a faulted simulator must detect the
   fault and auto-reduce the first failure to a small repro that still
   exposes it. *)

let test_seeded_fault_campaign () =
  let cfg =
    {
      Campaign.default_config with
      Campaign.cases = 6;
      seed = 7;
      archs = [ Randprog.Ebpf ];
      max_tests = 10;
      fault;
      reduce = true;
      reduce_limit = 1;
    }
  in
  let s = Campaign.run cfg in
  Alcotest.(check bool) "fault detected" true (s.Campaign.s_failures <> []);
  let f = List.hd s.Campaign.s_failures in
  match f.Campaign.f_reduced with
  | None -> Alcotest.fail "first failure was not reduced"
  | Some r ->
      let lines = Reduce.line_count r.Reduce.reduced in
      Alcotest.(check bool)
        (Printf.sprintf "repro is at most 40 lines (%d)" lines)
        true (lines <= 40);
      Alcotest.(check bool) "repro still exposes the fault" true
        (keep ~arch:f.Campaign.f_arch ~kind:f.Campaign.f_kind r.Reduce.reduced)

(* ------------------------------------------------------------------ *)
(* Sequence campaign: 2–3-packet cases validate on the model, and the
   summary folds bit-identically for jobs=1 and jobs=2 *)

let test_sequence_campaign_deterministic () =
  let cfg jobs =
    {
      Campaign.default_config with
      Campaign.cases = 8;
      jobs;
      seed = 11;
      archs = [ Randprog.V1model ];
      max_tests = 8;
      reduce = false;
      sequences = true;
    }
  in
  let s1 = Campaign.run (cfg 1) in
  let s2 = Campaign.run (cfg 2) in
  Alcotest.(check (list string)) "no failures"
    []
    (List.map (fun f -> f.Campaign.f_detail) s1.Campaign.s_failures);
  Alcotest.(check string) "summary identical across jobs"
    (Campaign.summary_line s1) (Campaign.summary_line s2);
  Alcotest.(check bool) "sequence cases counted" true
    (Obs.Snapshot.get_int s1.Campaign.s_obs "selftest.sequence_cases" = 8)

let () =
  Alcotest.run "selftest"
    [
      ( "generator",
        [
          Alcotest.test_case "feature coverage" `Quick test_feature_coverage;
          Alcotest.test_case "programs parse" `Quick test_generated_programs_parse;
        ] );
      ( "reducer",
        [
          (* the V1Switch skeleton alone is ~45 non-blank lines *)
          Alcotest.test_case "v1model oversized repro" `Quick
            (reduce_case "v1model" ~arch:"v1model" ~max_lines:46 oversized_v1model);
          Alcotest.test_case "ebpf oversized repro" `Quick
            (reduce_case "ebpf" ~arch:"ebpf_model" ~max_lines:30 oversized_ebpf);
          Alcotest.test_case "rejecting predicate is a no-op" `Quick test_reduce_noop;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "seeded fault detected and reduced" `Quick
            test_seeded_fault_campaign;
          Alcotest.test_case "sequence cases deterministic across jobs" `Quick
            test_sequence_campaign_deterministic;
        ] );
    ]
