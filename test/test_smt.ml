(* Tests for the QF_BV solver stack: expression layer, bit-blaster,
   CDCL SAT core.  The key property test is differential: a random
   term is evaluated under a random environment, and the solver must
   (a) find the constraint [term = value] satisfiable and (b) return a
   model under which concrete evaluation reproduces a consistent
   value. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Solver = Smt.Solver
module Sat = Smt.Sat

let check_bits = Alcotest.testable Bits.pp Bits.equal

(* one term context for the whole test binary; interleaving of
   independent contexts is exercised in test_oracle.ml *)
let ctx = Expr.create_ctx ()

let fresh =
  let n = ref 0 in
  fun w ->
    incr n;
    Expr.var ctx (Printf.sprintf "tv%d_%d" !n w) w

(* ------------------------------------------------------------------ *)
(* Plain SAT-level tests *)

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a; Sat.pos b ];
  Sat.add_clause s [ Sat.neg a ];
  Alcotest.(check bool) "sat" true (Sat.solve s);
  Alcotest.(check bool) "a false" false (Sat.value s a);
  Alcotest.(check bool) "b true" true (Sat.value s b)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ Sat.pos a ];
  Sat.add_clause s [ Sat.neg a ];
  Alcotest.(check bool) "unsat" false (Sat.solve s)

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.neg a; Sat.pos b ];
  Alcotest.(check bool) "sat under a" true (Sat.solve ~assumptions:[ Sat.pos a ] s);
  Alcotest.(check bool) "b implied" true (Sat.value s b);
  Sat.backtrack s;
  Sat.add_clause s [ Sat.neg b ];
  Alcotest.(check bool) "unsat under a" false (Sat.solve ~assumptions:[ Sat.pos a ] s);
  Alcotest.(check bool) "still sat without" true (Sat.solve s)

let test_sat_pigeonhole () =
  (* 4 pigeons, 3 holes: classic small UNSAT instance exercising
     learning and backjumping. *)
  let s = Sat.create () in
  let np = 4 and nh = 3 in
  let v = Array.init np (fun _ -> Array.init nh (fun _ -> Sat.new_var s)) in
  for p = 0 to np - 1 do
    Sat.add_clause s (List.init nh (fun h -> Sat.pos v.(p).(h)))
  done;
  for h = 0 to nh - 1 do
    for p1 = 0 to np - 1 do
      for p2 = p1 + 1 to np - 1 do
        Sat.add_clause s [ Sat.neg v.(p1).(h); Sat.neg v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" false (Sat.solve s)

let test_sat_graph_coloring () =
  (* K4 is 3-colorable iff false; K3 is. *)
  let color_clauses s nverts ncolors edges =
    let v = Array.init nverts (fun _ -> Array.init ncolors (fun _ -> Sat.new_var s)) in
    for i = 0 to nverts - 1 do
      Sat.add_clause s (List.init ncolors (fun c -> Sat.pos v.(i).(c)))
    done;
    List.iter
      (fun (i, j) ->
        for c = 0 to ncolors - 1 do
          Sat.add_clause s [ Sat.neg v.(i).(c); Sat.neg v.(j).(c) ]
        done)
      edges
  in
  let k n = List.concat_map (fun i -> List.init n (fun j -> (i, j))) (List.init n Fun.id)
            |> List.filter (fun (i, j) -> i < j) in
  let s1 = Sat.create () in
  color_clauses s1 3 3 (k 3);
  Alcotest.(check bool) "K3 3-colorable" true (Sat.solve s1);
  let s2 = Sat.create () in
  color_clauses s2 4 3 (k 4);
  Alcotest.(check bool) "K4 not 3-colorable" false (Sat.solve s2)

(* ------------------------------------------------------------------ *)
(* Expression layer *)

let test_expr_fold () =
  let open Expr in
  let a = of_int ctx ~width:8 10 and b = of_int ctx ~width:8 3 in
  Alcotest.(check check_bits) "fold add" (Bits.of_int ~width:8 13)
    (Option.get (is_const (add a b)));
  Alcotest.(check bool) "x & 0 = 0" true
    (is_const (logand (fresh 8) (zero ctx 8)) = Some (Bits.zero 8));
  let x = fresh 8 in
  Alcotest.(check bool) "x | 0 = x" true (logor x (zero ctx 8) == x);
  Alcotest.(check bool) "x ^ x = 0" true (is_const (logxor x x) = Some (Bits.zero 8));
  Alcotest.(check bool) "eq self" true (is_true (eq x x));
  Alcotest.(check bool) "ite folds" true (ite (tru ctx) x (zero ctx 8) == x)

let test_expr_taint_rules () =
  let open Expr in
  let t = fresh_taint ctx 8 in
  Alcotest.(check bool) "taint is tainted" true (tainted t);
  Alcotest.(check bool) "taint * 0 = 0 kills taint" false
    (tainted (mul t (zero ctx 8)));
  Alcotest.(check bool) "taint & 0 kills taint" false (tainted (logand t (zero ctx 8)));
  Alcotest.(check bool) "taint ^ taint stays tainted" true (tainted (logxor t t));
  Alcotest.(check bool) "eq t t stays tainted" true (tainted (eq t t));
  let x = fresh 8 in
  Alcotest.(check bool) "concat taints" true (tainted (concat t x));
  (* per-bit mask through concat and slice *)
  let c = concat t x in
  Alcotest.(check check_bits) "mask hi tainted"
    (Bits.concat (Bits.ones 8) (Bits.zero 8))
    (taint_mask c);
  Alcotest.(check check_bits) "slice lo untainted" (Bits.zero 8)
    (taint_mask (slice c ~hi:7 ~lo:0));
  Alcotest.(check check_bits) "slice hi tainted" (Bits.ones 8)
    (taint_mask (slice c ~hi:15 ~lo:8));
  (* arithmetic spreads upward only *)
  let sum = add (concat x t) (zero ctx 16) in
  ignore sum;
  let low_taint = concat x t in
  Alcotest.(check check_bits) "add taints upward" (Bits.ones 16)
    (taint_mask (add low_taint (Expr.var ctx "tm_one" 16)))

let test_expr_slice_concat () =
  let open Expr in
  let x = fresh 8 and y = fresh 8 in
  let c = concat x y in
  Alcotest.(check bool) "slice of concat hi" true (slice c ~hi:15 ~lo:8 == x);
  Alcotest.(check bool) "slice of concat lo" true (slice c ~hi:7 ~lo:0 == y);
  Alcotest.(check bool) "slice full" true (slice x ~hi:7 ~lo:0 == x);
  (* adjacent slices re-fuse *)
  let hi = slice x ~hi:7 ~lo:4 and lo = slice x ~hi:3 ~lo:0 in
  Alcotest.(check bool) "slices fuse" true (concat hi lo == x)

let test_expr_eval () =
  let open Expr in
  let x = fresh 8 in
  let env v = if v == var_of x then Bits.of_int ~width:8 7 else Bits.zero v.vwidth in
  let e = add (mul x (of_int ctx ~width:8 3)) (of_int ctx ~width:8 1) in
  Alcotest.(check check_bits) "eval" (Bits.of_int ~width:8 22) (eval env e)

(* ------------------------------------------------------------------ *)
(* Solver end-to-end *)

let test_solver_simple () =
  let s = Solver.create ctx in
  let x = fresh 8 in
  Solver.assert_ s (Expr.eq (Expr.add x (Expr.of_int ctx ~width:8 1)) (Expr.of_int ctx ~width:8 0));
  Alcotest.(check bool) "sat" true (Solver.check s = Solver.Sat);
  Alcotest.(check check_bits) "x = 255" (Bits.of_int ~width:8 255)
    (Solver.model_var s (Expr.var_of x))

let test_solver_unsat () =
  let s = Solver.create ctx in
  let x = fresh 8 in
  Solver.assert_ s (Expr.ult x (Expr.of_int ctx ~width:8 5));
  Solver.assert_ s (Expr.ugt x (Expr.of_int ctx ~width:8 10));
  Alcotest.(check bool) "unsat" true (Solver.check s = Solver.Unsat)

let test_solver_push_pop () =
  let s = Solver.create ctx in
  let x = fresh 8 in
  Solver.assert_ s (Expr.ult x (Expr.of_int ctx ~width:8 100));
  Solver.push s;
  Solver.assert_ s (Expr.ugt x (Expr.of_int ctx ~width:8 200));
  Alcotest.(check bool) "inner unsat" true (Solver.check s = Solver.Unsat);
  Solver.pop s;
  Alcotest.(check bool) "outer sat" true (Solver.check s = Solver.Sat);
  Solver.push s;
  Solver.assert_ s (Expr.eq x (Expr.of_int ctx ~width:8 42));
  Alcotest.(check bool) "refined sat" true (Solver.check s = Solver.Sat);
  Alcotest.(check check_bits) "model respects scope" (Bits.of_int ~width:8 42)
    (Solver.model_var s (Expr.var_of x));
  Solver.pop s

let test_solver_mul_inverse () =
  (* find x with x * 3 = 33 (mod 256): x = 11 + k*256/gcd... unique since 3 is odd *)
  let s = Solver.create ctx in
  let x = fresh 8 in
  Solver.assert_ s (Expr.eq (Expr.mul x (Expr.of_int ctx ~width:8 3)) (Expr.of_int ctx ~width:8 33));
  Alcotest.(check bool) "sat" true (Solver.check s = Solver.Sat);
  Alcotest.(check check_bits) "x = 11" (Bits.of_int ~width:8 11)
    (Solver.model_var s (Expr.var_of x))

let test_solver_div () =
  let s = Solver.create ctx in
  let x = fresh 8 in
  Solver.assert_ s (Expr.eq (Expr.udiv x (Expr.of_int ctx ~width:8 10)) (Expr.of_int ctx ~width:8 5));
  Solver.assert_ s (Expr.eq (Expr.urem x (Expr.of_int ctx ~width:8 10)) (Expr.of_int ctx ~width:8 7));
  Alcotest.(check bool) "sat" true (Solver.check s = Solver.Sat);
  Alcotest.(check check_bits) "x = 57" (Bits.of_int ~width:8 57)
    (Solver.model_var s (Expr.var_of x))

let test_solver_shift () =
  let s = Solver.create ctx in
  let x = fresh 8 and k = fresh 8 in
  Solver.assert_ s (Expr.eq (Expr.shl x k) (Expr.of_int ctx ~width:8 0xA0));
  Solver.assert_ s (Expr.eq k (Expr.of_int ctx ~width:8 4));
  Alcotest.(check bool) "sat" true (Solver.check s = Solver.Sat);
  let xv = Solver.model_var s (Expr.var_of x) in
  Alcotest.(check check_bits) "x << 4 = 0xA0" (Bits.of_int ~width:8 0xA0)
    (Bits.shift_left xv 4)

let test_solver_assuming () =
  let s = Solver.create ctx in
  let x = fresh 8 in
  Solver.assert_ s (Expr.ult x (Expr.of_int ctx ~width:8 50));
  let lt10 = Expr.ult x (Expr.of_int ctx ~width:8 10) in
  Alcotest.(check bool) "assume sat" true (Solver.check_assuming s [ lt10 ] = Solver.Sat);
  Alcotest.(check bool) "assume contradiction" true
    (Solver.check_assuming s [ lt10; Expr.uge x (Expr.of_int ctx ~width:8 20) ] = Solver.Unsat);
  (* assumptions are not retained *)
  Alcotest.(check bool) "still sat" true (Solver.check s = Solver.Sat)

let test_solver_concat_model () =
  let s = Solver.create ctx in
  let hi = fresh 8 and lo = fresh 8 in
  Solver.assert_ s (Expr.eq (Expr.concat hi lo) (Expr.of_int ctx ~width:16 0xBEEF));
  Alcotest.(check bool) "sat" true (Solver.check s = Solver.Sat);
  Alcotest.(check check_bits) "hi" (Bits.of_int ~width:8 0xBE) (Solver.model_var s (Expr.var_of hi));
  Alcotest.(check check_bits) "lo" (Bits.of_int ~width:8 0xEF) (Solver.model_var s (Expr.var_of lo))

(* ------------------------------------------------------------------ *)
(* Differential property: random terms vs concrete evaluation *)

let gen_term =
  let open QCheck.Gen in
  let width = 8 in
  (* operators preserving width 8 *)
  fix (fun self depth ->
      let leaf =
        oneof
          [
            (int_range 0 255 >|= fun n -> Expr.of_int ctx ~width n);
            oneofl
              [ Expr.var ctx "gx" width; Expr.var ctx "gy" width; Expr.var ctx "gz" width ];
          ]
      in
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            (map2 Expr.add sub sub);
            (map2 Expr.sub sub sub);
            (map2 Expr.logand sub sub);
            (map2 Expr.logor sub sub);
            (map2 Expr.logxor sub sub);
            (map Expr.lognot sub);
            (map2 Expr.mul sub sub);
            (map2 Expr.udiv sub sub);
            (map2 Expr.urem sub sub);
            (map2 Expr.shl sub sub);
            (map2 Expr.lshr sub sub);
            (map2 Expr.ashr sub sub);
            (map3 (fun c a b -> Expr.ite (Expr.ult c a) a b) sub sub sub);
            (map2 (fun a b -> Expr.concat (Expr.slice a ~hi:3 ~lo:0) (Expr.slice b ~hi:7 ~lo:4))
               sub sub);
          ])
    3

let arb_term = QCheck.make ~print:Expr.to_string gen_term

let env_of (xv, yv, zv) v =
  match v.Expr.vname with
  | "gx" -> xv
  | "gy" -> yv
  | "gz" -> zv
  | _ -> Bits.zero v.Expr.vwidth

let arb_term_env =
  QCheck.make
    ~print:(fun (e, (x, y, z)) ->
      Printf.sprintf "%s under x=%s y=%s z=%s" (Expr.to_string e) (Bits.to_string x)
        (Bits.to_string y) (Bits.to_string z))
    QCheck.Gen.(
      pair gen_term
        (triple
           (int_range 0 255 >|= fun n -> Bits.of_int ~width:8 n)
           (int_range 0 255 >|= fun n -> Bits.of_int ~width:8 n)
           (int_range 0 255 >|= fun n -> Bits.of_int ~width:8 n)))

let diff_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"solver agrees with eval" arb_term_env
         (fun (e, env3) ->
           let expect = Expr.eval (env_of env3) e in
           let s = Solver.create ctx in
           Solver.assert_ s (Expr.eq e (Expr.const ctx expect));
           (* the concrete env is a witness, so this must be SAT *)
           if Solver.check s <> Solver.Sat then false
           else
             (* and the returned model must itself evaluate the term to
                the same constant *)
             let model v = Solver.model_var s v in
             Bits.equal (Expr.eval model e) expect));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"eq with witness env is sat" arb_term_env
         (fun (e, env3) ->
           let expect = Expr.eval (env_of env3) e in
           let s = Solver.create ctx in
           let x = Expr.var ctx "gx" 8 and y = Expr.var ctx "gy" 8 and z = Expr.var ctx "gz" 8 in
           let xv, yv, zv = env3 in
           Solver.assert_ s (Expr.eq x (Expr.const ctx xv));
           Solver.assert_ s (Expr.eq y (Expr.const ctx yv));
           Solver.assert_ s (Expr.eq z (Expr.const ctx zv));
           Solver.assert_ s (Expr.eq e (Expr.const ctx expect));
           Solver.check s = Solver.Sat));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:60 ~name:"term != itself is unsat" arb_term
         (fun e ->
           let s = Solver.create ctx in
           Solver.assert_ s (Expr.neq e e);
           (* [neq e e] folds to false unless tainted; either way unsat *)
           Solver.check s = Solver.Unsat));
  ]

(* ------------------------------------------------------------------ *)
(* Word-level simplification (Expr.simplify / known_bits) *)

let test_simplify_concat_eq () =
  (* equality of aligned concats splits per part; the constant parts
     disagree, so the whole equality folds to false *)
  let x = fresh 8 in
  let a = Expr.concat x (Expr.of_int ctx ~width:8 0xAA) in
  let b = Expr.concat x (Expr.of_int ctx ~width:8 0xBB) in
  Alcotest.(check bool) "folds to false" true (Expr.is_false (Expr.simplify (Expr.eq a b)));
  (* agreeing constant parts leave only the variable equality, which
     folds to true *)
  let c = Expr.concat x (Expr.of_int ctx ~width:8 0xAA) in
  Alcotest.(check bool) "folds to true" true (Expr.is_true (Expr.simplify (Expr.eq a c)))

let test_simplify_known_range () =
  (* zext x8 to 16 caps the value at 255 < 256: the comparison is
     decided by known-bits ranges, not by the solver *)
  let x = fresh 8 in
  let e = Expr.ult (Expr.zext x 16) (Expr.of_int ctx ~width:16 256) in
  Alcotest.(check bool) "ult decided" true (Expr.is_true (Expr.simplify e));
  let m, v = Expr.known_bits (Expr.zext x 16) in
  Alcotest.(check check_bits) "high byte known zero"
    (Bits.of_int ~width:16 0xff00) (Bits.logand m (Bits.lognot v));
  (* a known-disagreeing bit refutes an equality: x ++ 1 is odd *)
  let odd = Expr.concat x (Expr.ones ctx 1) in
  let even = Expr.zero ctx 9 in
  Alcotest.(check bool) "parity refutes eq" true
    (Expr.is_false (Expr.simplify (Expr.eq odd even)))

let test_simplify_ite_nesting () =
  let c = Expr.eq (fresh 8) (Expr.zero ctx 8) in
  let a = fresh 8 and b = fresh 8 and d = fresh 8 in
  (* the inner ite repeats the (hash-consed) outer condition: its dead
     arm disappears *)
  let e = Expr.ite c (Expr.ite c a b) d in
  let expected = Expr.ite c a d in
  Alcotest.(check bool) "nested ite pruned" true (Expr.simplify e == expected);
  (* negated conditions flip arms instead of blasting the Not *)
  let e' = Expr.ite (Expr.bnot c) d a in
  Alcotest.(check bool) "not-cond flipped" true (Expr.simplify e' == expected)

let test_simplify_counts_hits () =
  let before = Expr.rewrite_hits ctx in
  let x = fresh 8 in
  let e =
    Expr.eq
      (Expr.concat x (Expr.of_int ctx ~width:8 1))
      (Expr.concat x (Expr.of_int ctx ~width:8 2))
  in
  ignore (Expr.simplify e);
  Alcotest.(check bool) "hits counted" true (Expr.rewrite_hits ctx > before);
  (* memoised: a second pass over the same term is free *)
  let mid = Expr.rewrite_hits ctx in
  ignore (Expr.simplify e);
  Alcotest.(check int) "memoised" mid (Expr.rewrite_hits ctx)

let simplify_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"simplify preserves evaluation" arb_term_env
         (fun (e, env3) ->
           let s = Expr.simplify e in
           Bits.equal (Expr.eval (env_of env3) e) (Expr.eval (env_of env3) s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"simplify is idempotent" arb_term
         (fun e ->
           let s = Expr.simplify e in
           Expr.simplify s == s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"known bits are sound" arb_term_env
         (fun (e, env3) ->
           let m, v = Expr.known_bits e in
           let actual = Expr.eval (env_of env3) e in
           (* every claimed-known bit matches concrete evaluation *)
           Bits.equal (Bits.logand m actual) (Bits.logand m v)));
  ]

let () =
  Alcotest.run "smt"
    [
      ( "sat",
        [
          Alcotest.test_case "basic" `Quick test_sat_basic;
          Alcotest.test_case "unsat" `Quick test_sat_unsat;
          Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          Alcotest.test_case "coloring" `Quick test_sat_graph_coloring;
        ] );
      ( "expr",
        [
          Alcotest.test_case "folding" `Quick test_expr_fold;
          Alcotest.test_case "taint rules" `Quick test_expr_taint_rules;
          Alcotest.test_case "slice-concat" `Quick test_expr_slice_concat;
          Alcotest.test_case "eval" `Quick test_expr_eval;
        ] );
      ( "solver",
        [
          Alcotest.test_case "simple" `Quick test_solver_simple;
          Alcotest.test_case "unsat" `Quick test_solver_unsat;
          Alcotest.test_case "push-pop" `Quick test_solver_push_pop;
          Alcotest.test_case "mul inverse" `Quick test_solver_mul_inverse;
          Alcotest.test_case "div" `Quick test_solver_div;
          Alcotest.test_case "shift" `Quick test_solver_shift;
          Alcotest.test_case "assuming" `Quick test_solver_assuming;
          Alcotest.test_case "concat model" `Quick test_solver_concat_model;
        ] );
      ( "simplify",
        Alcotest.
          [
            test_case "concat equality" `Quick test_simplify_concat_eq;
            test_case "known ranges" `Quick test_simplify_known_range;
            test_case "ite nesting" `Quick test_simplify_ite_nesting;
            test_case "rewrite hits" `Quick test_simplify_counts_hits;
          ]
        @ simplify_props );
      ("differential", diff_props);
    ]
