(* Exploration-strategy and precondition tests: DFS exhaustion,
   random ordering, coverage-greedy emission, test caps, fixed packet
   size, P4-constraints pruning, recirculation bounds. *)

module Bits = Bitv.Bits
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime
module Testspec = Testgen.Testspec

let v1model = Targets.V1model.target

let generate ?(opts = Runtime.default_options) ?(config = Explore.default_config) src =
  Oracle.generate ~opts ~config v1model src

let test_dfs_exhaustive () =
  let run = generate Progzoo.Corpus.lpm_router in
  let r = run.Oracle.result in
  (* every feasible path became a test or was deliberately discarded *)
  Alcotest.(check int) "paths = tests + discards"
    r.Explore.stats.Explore.paths
    (r.Explore.stats.Explore.tests + r.Explore.stats.Explore.discarded_taint
   + r.Explore.stats.Explore.discarded_concolic);
  Alcotest.(check bool) "pruning happened" true (r.Explore.stats.Explore.infeasible >= 0)

let test_max_tests_cap () =
  let config = { Explore.default_config with Explore.max_tests = Some 3 } in
  let run = generate ~config Progzoo.Corpus.lpm_router in
  Alcotest.(check int) "capped" 3 (List.length run.Oracle.result.Explore.tests)

let test_rnd_same_coverage () =
  (* random branch ordering explores the same path space *)
  let run_dfs = generate Progzoo.Corpus.lpm_router in
  let config = { Explore.default_config with Explore.strategy = Explore.Rnd } in
  let run_rnd = generate ~config Progzoo.Corpus.lpm_router in
  Alcotest.(check int) "same test count"
    (List.length run_dfs.Oracle.result.Explore.tests)
    (List.length run_rnd.Oracle.result.Explore.tests);
  Alcotest.(check bool) "same coverage" true
    (Testgen.Runtime.IntSet.equal run_dfs.Oracle.result.Explore.covered
       run_rnd.Oracle.result.Explore.covered)

let test_cov_greedy_fewer_tests () =
  (* the coverage-greedy strategy emits only coverage-increasing tests:
     never more than DFS, same final coverage *)
  let run_dfs = generate Progzoo.Corpus.lpm_router in
  let config = { Explore.default_config with Explore.strategy = Explore.Cov } in
  let run_cov = generate ~config Progzoo.Corpus.lpm_router in
  Alcotest.(check bool) "fewer or equal tests" true
    (List.length run_cov.Oracle.result.Explore.tests
    <= List.length run_dfs.Oracle.result.Explore.tests);
  Alcotest.(check bool) "same coverage" true
    (Testgen.Runtime.IntSet.equal run_dfs.Oracle.result.Explore.covered
       run_cov.Oracle.result.Explore.covered)

let test_stop_at_full_coverage () =
  let config = { Explore.default_config with Explore.stop_at_full_coverage = true } in
  let run = generate ~config Progzoo.Corpus.lpm_router in
  let r = run.Oracle.result in
  Alcotest.(check bool) "full coverage reached" true (Explore.coverage_pct r >= 100.0)

let test_fixed_packet_size () =
  (* with a fixed input size there are no parser-reject paths and every
     input is exactly that size (Tbl. 4b) *)
  let opts = { Runtime.default_options with Runtime.fixed_packet_bytes = Some 64 } in
  let run = generate ~opts Progzoo.Corpus.lpm_router in
  let tests = run.Oracle.result.Explore.tests in
  Alcotest.(check bool) "tests exist" true (tests <> []);
  List.iter
    (fun (t : Testspec.t) ->
      Alcotest.(check bool) "no short packets" true (Bits.width (Testspec.input t).data > 0))
    tests

let test_constraints_prune () =
  let src = Progzoo.Generators.middleblock ~acl_stages:1 () in
  let with_c =
    generate ~opts:{ Runtime.default_options with Runtime.apply_constraints = true } src
  in
  let without_c =
    generate ~opts:{ Runtime.default_options with Runtime.apply_constraints = false } src
  in
  let n_with = with_c.Oracle.result.Explore.stats.Explore.paths in
  let n_without = without_c.Oracle.result.Explore.stats.Explore.paths in
  Alcotest.(check bool)
    (Printf.sprintf "constraints prune paths (%d < %d)" n_with n_without)
    true (n_with < n_without);
  (* and the restriction is visible in the emitted entries: every acl
     entry's proto key is 6 or 17 *)
  List.iter
    (fun (t : Testspec.t) ->
      List.iter
        (fun (e : Testspec.entry) ->
          if e.e_table = "acl_0" then
            List.iter
              (fun (k, m) ->
                if k = "proto" then
                  match m with
                  | Testspec.MTernary (v, _) ->
                      let v = Bits.to_int v in
                      Alcotest.(check bool) "proto constrained" true (v = 6 || v = 17)
                  | _ -> ())
              e.e_keys)
        t.entries)
    with_c.Oracle.result.Explore.tests

let test_recirculation_bounded () =
  (* the recirculate program loops; the bound keeps exploration finite
     and recirculated paths yield tests *)
  let run = generate Progzoo.Corpus.recirculate_program in
  let r = run.Oracle.result in
  Alcotest.(check bool) "terminates with tests" true (r.Explore.tests <> []);
  let recirc_tests =
    List.filter
      (fun (t : Testspec.t) ->
        let rec contains s sub i =
          i + String.length sub <= String.length s
          && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
        in
        contains t.comment "recirculate" 0)
      r.Explore.tests
  in
  Alcotest.(check bool) "recirculated path tested" true (recirc_tests <> [])

let test_unroll_bound_controls_depth () =
  (* deeper unrolling exposes more MPLS stack paths *)
  let shallow =
    generate ~opts:{ Runtime.default_options with Runtime.unroll_bound = 1 }
      Progzoo.Corpus.mpls_stack
  in
  let deep =
    generate ~opts:{ Runtime.default_options with Runtime.unroll_bound = 4 }
      Progzoo.Corpus.mpls_stack
  in
  Alcotest.(check bool) "more paths with deeper unrolling" true
    (deep.Oracle.result.Explore.stats.Explore.paths
    > shallow.Oracle.result.Explore.stats.Explore.paths)

let test_seed_changes_values_not_paths () =
  let r1 = generate ~opts:{ Runtime.default_options with Runtime.seed = 1 } Progzoo.Corpus.fig1a in
  let r2 = generate ~opts:{ Runtime.default_options with Runtime.seed = 99 } Progzoo.Corpus.fig1a in
  Alcotest.(check int) "same number of tests"
    (List.length r1.Oracle.result.Explore.tests)
    (List.length r2.Oracle.result.Explore.tests);
  (* randomized free inputs (ports) differ across seeds somewhere *)
  let ports run =
    List.map
      (fun (t : Testspec.t) -> Bits.to_hex (Testspec.input t).port)
      run.Oracle.result.Explore.tests
  in
  Alcotest.(check bool) "different random choices" true (ports r1 <> ports r2)

let test_rebuild_threshold () =
  (* force a solver rebuild on nearly every path by making the term
     threshold tiny; results must not change, and no solver time may be
     lost across the swaps *)
  let config =
    { Explore.default_config with Explore.rebuild_size_threshold = 1 }
  in
  let forced = generate ~config Progzoo.Corpus.lpm_router in
  let normal = generate Progzoo.Corpus.lpm_router in
  let snap run = Obs.Registry.snapshot (Oracle.registry run) in
  Alcotest.(check bool) "rebuilds happened" true
    (Obs.Snapshot.get_int (snap forced) "solver.rebuilds" > 0);
  Alcotest.(check int) "default config never rebuilds here" 0
    (Obs.Snapshot.get_int (snap normal) "solver.rebuilds");
  (* a fresh solver may complete don't-care bits differently, but the
     path space and coverage are solver-state independent *)
  let paths run =
    List.map (fun (t : Testspec.t) -> t.comment) run.Oracle.result.Explore.tests
  in
  Alcotest.(check (list string)) "identical paths" (paths normal) (paths forced);
  Alcotest.(check bool) "identical coverage" true
    (Testgen.Runtime.IntSet.equal normal.Oracle.result.Explore.covered
       forced.Oracle.result.Explore.covered);
  (* the lost-time regression: solve_time aggregates over every solver
     of the run, so emission's solver share can never exceed it *)
  let r = forced.Oracle.result in
  Alcotest.(check bool) "solver time survives rebuilds" true
    (r.Explore.solve_time >= r.Explore.stats.Explore.t_emit_solve
    && r.Explore.stats.Explore.t_emit_solve >= 0.0
    && r.Explore.solve_time > 0.0)

(* ------------------------------------------------------------------ *)
(* Parallel (frontier-split) exploration *)

let strategies =
  [ ("dfs", Explore.Dfs); ("rnd", Explore.Rnd); ("cov", Explore.Cov) ]

(* counter totals of a run's delta snapshot, minus the one counter
   that is scheduling dependent by definition (which worker stole) *)
let sched_free_counters run =
  List.filter
    (fun (n, _) -> n <> "explore.steals")
    (Obs.Snapshot.counters run.Oracle.result.Explore.obs)

let test_path_jobs_deterministic () =
  (* the tentpole guarantee: for every strategy, path_jobs=1 and
     path_jobs=4 produce bit-identical test sets, identical coverage,
     and equal merged counter totals on the branchiest examples *)
  List.iter
    (fun (pname, src) ->
      List.iter
        (fun (sname, strategy) ->
          let cfg pj =
            {
              Explore.default_config with
              Explore.strategy;
              path_jobs = pj;
              split_tasks = 12;
            }
          in
          let r1 = generate ~config:(cfg 1) src in
          let r4 = generate ~config:(cfg 4) src in
          let tests r =
            List.map Testspec.to_string r.Oracle.result.Explore.tests
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s: identical test sets" pname sname)
            (tests r1) (tests r4);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: identical coverage" pname sname)
            true
            (Runtime.IntSet.equal r1.Oracle.result.Explore.covered
               r4.Oracle.result.Explore.covered);
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s/%s: equal merged counters" pname sname)
            (sched_free_counters r1) (sched_free_counters r4))
        strategies)
    [
      ("lpm_router", Progzoo.Corpus.lpm_router);
      ("mpls_stack", Progzoo.Corpus.mpls_stack);
    ]

let test_frontier_matches_sequential () =
  (* the frontier driver explores the same path space as the classic
     sequential DFS: equal path counts and coverage (test bit-patterns
     may differ — the sequential solver carries phase-saving history
     across subtrees that fresh per-task solvers do not) *)
  let seq = generate Progzoo.Corpus.lpm_router in
  let config =
    { Explore.default_config with Explore.path_jobs = 2; split_tasks = 6 }
  in
  let par = generate ~config Progzoo.Corpus.lpm_router in
  Alcotest.(check int) "same path count"
    seq.Oracle.result.Explore.stats.Explore.paths
    par.Oracle.result.Explore.stats.Explore.paths;
  Alcotest.(check int) "same test count"
    (List.length seq.Oracle.result.Explore.tests)
    (List.length par.Oracle.result.Explore.tests);
  Alcotest.(check bool) "same coverage" true
    (Runtime.IntSet.equal seq.Oracle.result.Explore.covered
       par.Oracle.result.Explore.covered);
  (* and the frontier actually split — with every task started from a
     state snapshot, not a prefix replay *)
  let d = par.Oracle.result.Explore.obs in
  Alcotest.(check bool) "subtrees packaged" true
    (Obs.Snapshot.get_int d "explore.subtrees" > 1);
  Alcotest.(check bool) "snapshots restored" true
    (Obs.Snapshot.get_int d "explore.snapshot_restores" > 1);
  Alcotest.(check int) "no prefix replays" 0
    (Obs.Snapshot.get_int d "explore.replay_steps")

let test_replay_fallback_equivalent () =
  (* forcing every task over the snapshot size threshold exercises the
     replay fallback: still deterministic across worker counts, same
     path space and coverage as the snapshot path *)
  let cfg pj =
    {
      Explore.default_config with
      Explore.path_jobs = pj;
      split_tasks = 6;
      snapshot_max_bytes = 0;
    }
  in
  let r1 = generate ~config:(cfg 1) Progzoo.Corpus.lpm_router in
  let r4 = generate ~config:(cfg 4) Progzoo.Corpus.lpm_router in
  Alcotest.(check (list string)) "replay fallback bit-deterministic"
    (List.map Testspec.to_string r1.Oracle.result.Explore.tests)
    (List.map Testspec.to_string r4.Oracle.result.Explore.tests);
  Alcotest.(check (list (pair string int)))
    "replay fallback counters identical" (sched_free_counters r1)
    (sched_free_counters r4);
  (* same path space as the snapshot-restore configuration *)
  let snap =
    generate
      ~config:{ Explore.default_config with Explore.path_jobs = 2; split_tasks = 6 }
      Progzoo.Corpus.lpm_router
  in
  Alcotest.(check int) "same path count as snapshot mode"
    snap.Oracle.result.Explore.stats.Explore.paths
    r4.Oracle.result.Explore.stats.Explore.paths;
  Alcotest.(check bool) "same coverage as snapshot mode" true
    (Runtime.IntSet.equal snap.Oracle.result.Explore.covered
       r4.Oracle.result.Explore.covered);
  (* and the fallback really was taken *)
  let d = r4.Oracle.result.Explore.obs in
  Alcotest.(check int) "no snapshot restores" 0
    (Obs.Snapshot.get_int d "explore.snapshot_restores");
  Alcotest.(check bool) "replay fallbacks taken" true
    (Obs.Snapshot.get_int d "explore.replay_fallbacks" > 1);
  Alcotest.(check bool) "replay steps recorded" true
    (Obs.Snapshot.get_int d "explore.replay_steps" > 0)

let test_path_jobs_caps () =
  (* budget caps are exact under the deterministic merge, and capped
     runs stay bit-deterministic across worker counts even though the
     boundary task's exploration extent is scheduling dependent (its
     counters are excluded from the merge; workers self-cap at the
     exact remaining budget when the merge prefix has caught up) *)
  let capped pj =
    let config =
      {
        Explore.default_config with
        Explore.max_tests = Some 3;
        path_jobs = pj;
        split_tasks = 6;
      }
    in
    let run = generate ~config Progzoo.Corpus.lpm_router in
    Alcotest.(check int)
      (Printf.sprintf "capped at 3 (path_jobs=%d)" pj)
      3
      (List.length run.Oracle.result.Explore.tests);
    Alcotest.(check int)
      (Printf.sprintf "stats.tests matches (path_jobs=%d)" pj)
      3 run.Oracle.result.Explore.stats.Explore.tests;
    run
  in
  let r1 = capped 1 and r4 = capped 4 in
  Alcotest.(check (list string))
    "capped tests identical across path_jobs"
    (List.map Testspec.to_string r1.Oracle.result.Explore.tests)
    (List.map Testspec.to_string r4.Oracle.result.Explore.tests);
  Alcotest.(check (list (pair string int)))
    "capped counters identical across path_jobs" (sched_free_counters r1)
    (sched_free_counters r4)

let test_replay_reaches_frontier_state () =
  (* the replay-correctness unit test: for every subtree the splitter
     would hand to a worker, replaying its prefix into a *fresh*
     prepared instance reaches a state with the same fingerprint as
     the frontier node the splitter saw *)
  let src = Progzoo.Corpus.lpm_router in
  let config = { Explore.default_config with Explore.split_tasks = 6 } in
  let p = Oracle.prepare v1model src in
  let fr = Explore.frontier ~config p.Oracle.ctx (Oracle.initial_state p) in
  Alcotest.(check bool) "splitter found subtrees" true (List.length fr > 1);
  let deep = List.filter (fun (_, fp) -> fp <> None) fr in
  Alcotest.(check bool) "some subtrees are below forks" true (deep <> []);
  List.iteri
    (fun k (prefix, fp) ->
      (* a fresh instance per replay: replay consumes ctx-local state
         (fresh-name counters), exactly as a worker domain would *)
      if k < 6 then
        let reg = Obs.Registry.create () in
        let ctx, st0 = Oracle.fresh_instance p reg in
        let st = Explore.replay_prefix ctx st0 prefix in
        Alcotest.(check string)
          (Printf.sprintf "prefix [%s] replays to the frontier state"
             (String.concat "." (List.map string_of_int prefix)))
          (Option.get fp) (Explore.fingerprint st))
    deep

(* ------------------------------------------------------------------ *)
(* Multi-packet test sequences (stateful externs across packets, §5) *)

let test_sequence_register_dependent () =
  let opts = { Runtime.default_options with Runtime.seq_packets = 2 } in
  let run = generate ~opts Progzoo.Corpus.register_program in
  let tests = run.Oracle.result.Explore.tests in
  let seqs = List.filter Testspec.is_sequence tests in
  Alcotest.(check bool) "sequences generated" true (seqs <> []);
  List.iter
    (fun t ->
      Alcotest.(check int) "two injections" 2 (List.length (Testspec.injects t)))
    seqs;
  (* the register-dependent path: cell 3 holds 0 on the first packet
     (-> port 7) and the written 1 on the second (-> port 8) — visible
     only because register state survived the packet boundary *)
  let out_ports t =
    List.map
      (fun (_, outs) ->
        match outs with
        | [ (o : Testspec.packet) ] -> Bits.to_int o.port
        | _ -> -1)
      (Testspec.injects t)
  in
  Alcotest.(check bool) "7-then-8 path found" true
    (List.exists (fun t -> out_ports t = [ 7; 8 ]) seqs);
  let d = run.Oracle.result.Explore.obs in
  Alcotest.(check bool) "sequence_paths counted" true
    (Obs.Snapshot.get_int d "explore.sequence_paths" > 0);
  Alcotest.(check int) "sequence_tests counted" (List.length seqs)
    (Obs.Snapshot.get_int d "explore.sequence_tests")

let test_sequence_path_jobs_deterministic () =
  (* the frontier split must not see the packet boundary: path_jobs=1
     and path_jobs=4 emit bit-identical sequences *)
  let opts = { Runtime.default_options with Runtime.seq_packets = 2 } in
  let cfg pj =
    { Explore.default_config with Explore.path_jobs = pj; split_tasks = 8 }
  in
  let r1 = generate ~opts ~config:(cfg 1) Progzoo.Corpus.register_program in
  let r4 = generate ~opts ~config:(cfg 4) Progzoo.Corpus.register_program in
  let tests r = List.map Testspec.to_string r.Oracle.result.Explore.tests in
  Alcotest.(check bool) "some sequence present" true
    (List.exists Testspec.is_sequence r1.Oracle.result.Explore.tests);
  Alcotest.(check (list string)) "identical across path_jobs" (tests r1) (tests r4)

let test_single_packet_default_unchanged () =
  (* seq_packets defaults to 1: the same program yields only classic
     single-injection tests *)
  let run = generate Progzoo.Corpus.register_program in
  List.iter
    (fun t ->
      Alcotest.(check bool) "not a sequence" false (Testspec.is_sequence t))
    run.Oracle.result.Explore.tests

let () =
  Alcotest.run "explore"
    [
      ( "strategies",
        [
          Alcotest.test_case "dfs exhaustive" `Quick test_dfs_exhaustive;
          Alcotest.test_case "max-tests cap" `Quick test_max_tests_cap;
          Alcotest.test_case "rnd same coverage" `Quick test_rnd_same_coverage;
          Alcotest.test_case "cov-greedy fewer tests" `Quick test_cov_greedy_fewer_tests;
          Alcotest.test_case "stop at full coverage" `Quick test_stop_at_full_coverage;
        ] );
      ( "preconditions",
        [
          Alcotest.test_case "fixed packet size" `Quick test_fixed_packet_size;
          Alcotest.test_case "p4-constraints prune" `Quick test_constraints_prune;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "recirculation" `Quick test_recirculation_bounded;
          Alcotest.test_case "unroll depth" `Quick test_unroll_bound_controls_depth;
          Alcotest.test_case "seed variation" `Quick test_seed_changes_values_not_paths;
          Alcotest.test_case "solver rebuild threshold" `Quick test_rebuild_threshold;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "path-jobs determinism (all strategies)" `Quick
            test_path_jobs_deterministic;
          Alcotest.test_case "frontier matches sequential" `Quick
            test_frontier_matches_sequential;
          Alcotest.test_case "replay fallback equivalent" `Quick
            test_replay_fallback_equivalent;
          Alcotest.test_case "budget caps exact" `Quick test_path_jobs_caps;
          Alcotest.test_case "prefix replay reaches frontier state" `Quick
            test_replay_reaches_frontier_state;
        ] );
      ( "sequences",
        [
          Alcotest.test_case "register-dependent 2-packet path" `Quick
            test_sequence_register_dependent;
          Alcotest.test_case "path-jobs determinism" `Quick
            test_sequence_path_jobs_deterministic;
          Alcotest.test_case "single-packet default unchanged" `Quick
            test_single_packet_default_unchanged;
        ] );
    ]
