(* Tests for the coverage-guided corpus and the AST mutation engine
   behind `p4testgen selftest --corpus` (ROADMAP item 3).

   Corpus mechanics: admission on novelty, oldest-first eviction, the
   minimum-size floor under aging, and a byte-exact save/load/save
   round-trip of the versioned on-disk format.  Mutation engine: a
   QCheck property that every mutant of every generated program either
   prepares cleanly or fails with a *structured* [prepare_error] —
   never an exception — across all three architectures, and that
   mutation is deterministic in (seed, source, donor).  Campaign
   integration: a killed-and-resumed corpus campaign (via the
   [interrupt_after] test hook) must produce a summary and corpus file
   bit-identical to an uninterrupted run at the same seed. *)

module Campaign = Selftest.Campaign
module Corpus = Selftest.Corpus
module Mutate = Selftest.Mutate
module Randprog = Progzoo.Randprog
module Oracle = Testgen.Oracle
module ISet = Corpus.ISet

(* ------------------------------------------------------------------ *)
(* Helpers *)

(* unique empty directory without depending on Unix: let temp_file
   pick an unused name, then turn it into a directory *)
let fresh_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

let keys_of_list l = ISet.of_list l

(* ------------------------------------------------------------------ *)
(* Admission, eviction order, and the min-size floor *)

let test_admission_and_eviction () =
  let c = Corpus.create ~max_size:4 ~min_size:2 ~max_mutations:24 () in
  (* six admissions, each with a fresh coverage key: the ring holds
     the last four, oldest first *)
  for i = 1 to 6 do
    let admitted =
      Corpus.observe c
        ~src:(Printf.sprintf "prog%d" i)
        ~arch:"v1model" ~tags:[ "t" ]
        ~keys:(keys_of_list [ i ])
    in
    Alcotest.(check bool) (Printf.sprintf "case %d admitted" i) true admitted
  done;
  Alcotest.(check int) "ring bounded" 4 (Corpus.size c);
  Alcotest.(check int) "evictions counted" 2 c.Corpus.evictions;
  Alcotest.(check (list string))
    "oldest evicted first"
    [ "prog3"; "prog4"; "prog5"; "prog6" ]
    (List.map (fun e -> e.Corpus.src) (Corpus.entries c));
  (* no novelty, no new combo: rejected and not counted as an admit *)
  let dup =
    Corpus.observe c ~src:"dup" ~arch:"v1model" ~tags:[ "t" ] ~keys:(keys_of_list [ 3 ])
  in
  Alcotest.(check bool) "stale case rejected" false dup;
  Alcotest.(check int) "admit count unchanged" 6 c.Corpus.admits;
  (* a previously unseen feature-tag combination admits even with
     zero coverage novelty *)
  let combo =
    Corpus.observe c ~src:"combo" ~arch:"tna" ~tags:[ "t" ] ~keys:(keys_of_list [ 3 ])
  in
  Alcotest.(check bool) "new tag combo admits" true combo

let test_min_size_floor () =
  let c = Corpus.create ~max_size:8 ~min_size:2 ~max_mutations:1 () in
  for i = 1 to 3 do
    ignore
      (Corpus.observe c
         ~src:(Printf.sprintf "prog%d" i)
         ~arch:"v1model" ~tags:[ "t" ]
         ~keys:(keys_of_list [ i ]))
  done;
  (* age every entry far past max_mutations: retirement must stop at
     the floor *)
  List.iter
    (fun (e : Corpus.entry) ->
      for _ = 1 to 5 do
        Corpus.note_mutation c ~id:e.Corpus.id
      done)
    (Corpus.entries c);
  Alcotest.(check int) "aged down to the floor" 2 (Corpus.size c);
  Alcotest.(check int) "mutations all counted" 15 c.Corpus.mutations_total

(* ------------------------------------------------------------------ *)
(* Persistence: save -> load -> save must be byte-identical, and the
   loaded corpus must carry every counter and the coverage-key set *)

let test_persistence_round_trip () =
  let c = Corpus.create ~max_size:4 ~min_size:2 ~max_mutations:24 () in
  for i = 1 to 5 do
    ignore
      (Corpus.observe c
         ~src:(Printf.sprintf "control c%d() { apply { } }\n" i)
         ~arch:(if i mod 2 = 0 then "tna" else "v1model")
         ~tags:[ "tables"; Printf.sprintf "f%d" i ]
         ~keys:(keys_of_list [ i; i + 100 ]))
  done;
  (match Corpus.entries c with
  | e :: _ -> Corpus.note_mutation c ~id:e.Corpus.id
  | [] -> Alcotest.fail "corpus unexpectedly empty");
  Corpus.note_splice c;
  let d1 = fresh_dir "p4tg-corpus-rt1" and d2 = fresh_dir "p4tg-corpus-rt2" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf d1;
      rm_rf d2)
    (fun () ->
      Corpus.save c d1;
      let c' =
        match Corpus.load d1 with
        | Some c' -> c'
        | None -> Alcotest.fail "saved corpus does not load"
      in
      Alcotest.(check int) "size survives" (Corpus.size c) (Corpus.size c');
      Alcotest.(check int) "admits survive" c.Corpus.admits c'.Corpus.admits;
      Alcotest.(check int) "evictions survive" c.Corpus.evictions c'.Corpus.evictions;
      Alcotest.(check int) "novelty survives" c.Corpus.coverage_novelty
        c'.Corpus.coverage_novelty;
      Alcotest.(check int) "mutations survive" c.Corpus.mutations_total
        c'.Corpus.mutations_total;
      Alcotest.(check int) "splices survive" c.Corpus.splice_sources
        c'.Corpus.splice_sources;
      Alcotest.(check int) "cases survive" c.Corpus.cases_seen c'.Corpus.cases_seen;
      Alcotest.(check bool) "seen keys survive" true
        (ISet.equal c.Corpus.seen c'.Corpus.seen);
      List.iter2
        (fun (a : Corpus.entry) (b : Corpus.entry) ->
          Alcotest.(check string) "entry source survives" a.Corpus.src b.Corpus.src;
          Alcotest.(check (list string)) "entry tags survive" a.Corpus.tags b.Corpus.tags;
          Alcotest.(check int) "entry age survives" a.Corpus.mutations b.Corpus.mutations)
        (Corpus.entries c) (Corpus.entries c');
      Corpus.save c' d2;
      Alcotest.(check string) "canonical serialization: save/load/save bytes"
        (read_file (Filename.concat d1 "corpus.p4tg"))
        (read_file (Filename.concat d2 "corpus.p4tg")))

let test_corrupt_file_ignored () =
  let d = fresh_dir "p4tg-corpus-bad" in
  Fun.protect
    ~finally:(fun () -> rm_rf d)
    (fun () ->
      Out_channel.with_open_bin (Filename.concat d "corpus.p4tg") (fun oc ->
          Out_channel.output_string oc "p4tg-corpus-v999\nnot a corpus\n");
      Alcotest.(check bool) "wrong-version file rejected, not crashed" true
        (Corpus.load d = None))

(* ------------------------------------------------------------------ *)
(* Mutation engine: totality and determinism.

   The campaign discards mutants whose [prepare_result] is [Error _];
   an *exception* escaping [prepare_result] (or the mutator itself)
   would be a real bug.  Hunt for one over random (arch, generator
   seed, mutation seed, donor) draws. *)

let target_of arch = Option.get (Targets.Registry.find arch)

let arb_mutation_case =
  QCheck.make
    ~print:(fun (a, gs, ms, ds) ->
      Printf.sprintf "arch=%s gen_seed=%d mut_seed=%d donor_seed=%d"
        (Randprog.arch_name (List.nth Randprog.all_archs a))
        gs ms ds)
    QCheck.Gen.(
      quad (int_range 0 2) (int_range 1 200) (int_range 1 1_000_000) (int_range 0 200))

let prop_mutants_prepare_or_structured_error (a, gen_seed, mut_seed, donor_seed) =
  let arch = List.nth Randprog.all_archs a in
  let gen = Randprog.generate_for ~arch ~seed:gen_seed in
  let donor =
    if donor_seed = 0 then None
    else Some (Randprog.generate_for ~arch ~seed:donor_seed).Randprog.src
  in
  match Mutate.mutate ~seed:mut_seed ?donor gen.Randprog.src with
  | None -> true (* no drawn mutator applied: fine *)
  | Some m -> (
      match Oracle.prepare_result (target_of (Randprog.arch_name arch)) m.Mutate.m_src with
      | Ok _ -> true
      | Error e ->
          (* structured failure: must render without raising *)
          ignore (Oracle.prepare_error_message e);
          true
      | exception e ->
          QCheck.Test.fail_reportf
            "prepare_result raised %s on mutant (ops: %s)\n%s"
            (Printexc.to_string e)
            (String.concat "," m.Mutate.m_ops)
            m.Mutate.m_src)

let prop_mutation_deterministic (a, gen_seed, mut_seed, donor_seed) =
  let arch = List.nth Randprog.all_archs a in
  let src = (Randprog.generate_for ~arch ~seed:gen_seed).Randprog.src in
  let donor =
    if donor_seed = 0 then None
    else Some (Randprog.generate_for ~arch ~seed:donor_seed).Randprog.src
  in
  let run () =
    match Mutate.mutate ~seed:mut_seed ?donor src with
    | None -> None
    | Some m -> Some (m.Mutate.m_src, m.Mutate.m_ops)
  in
  run () = run ()

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:60 ~name:"mutants prepare or fail structurally"
        arb_mutation_case prop_mutants_prepare_or_structured_error;
      QCheck.Test.make ~count:40 ~name:"mutation deterministic in (seed, src, donor)"
        arb_mutation_case prop_mutation_deterministic;
    ]

(* ------------------------------------------------------------------ *)
(* Campaign integration: interrupt at a batch boundary, resume from
   the checkpoint, and compare against an uninterrupted run — the
   scheduling-independent summary and the persisted corpus must both
   be identical.  Exercises the same code path as a SIGKILL mid-run
   (the [interrupt_after] hook stops after checkpointing, before the
   reduction post-pass). *)

let test_resume_bit_identity () =
  let mk dir =
    {
      Campaign.default_config with
      Campaign.cases = 8;
      seed = 13;
      archs = [ Randprog.V1model; Randprog.Ebpf ];
      max_tests = 6;
      reduce = false;
      corpus_dir = Some dir;
      corpus_batch = 4;
    }
  in
  let d_ref = fresh_dir "p4tg-campaign-ref" and d_int = fresh_dir "p4tg-campaign-int" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf d_ref;
      rm_rf d_int)
    (fun () ->
      let reference = Campaign.run (mk d_ref) in
      Alcotest.(check bool) "reference not interrupted" false
        reference.Campaign.s_interrupted;
      let killed =
        Campaign.run { (mk d_int) with Campaign.interrupt_after = Some 4 }
      in
      Alcotest.(check bool) "interrupt hook fired" true killed.Campaign.s_interrupted;
      Alcotest.(check bool) "checkpoint persisted" true
        (Sys.file_exists (Filename.concat d_int "campaign.ck"));
      let resumed = Campaign.run (mk d_int) in
      Alcotest.(check bool) "resume completes" false resumed.Campaign.s_interrupted;
      Alcotest.(check bool) "checkpoint cleared on completion" false
        (Sys.file_exists (Filename.concat d_int "campaign.ck"));
      Alcotest.(check string) "summary identical to uninterrupted"
        (Campaign.summary_line reference)
        (Campaign.summary_line resumed);
      Alcotest.(check string) "corpus file bytes identical"
        (read_file (Filename.concat d_ref "corpus.p4tg"))
        (read_file (Filename.concat d_int "corpus.p4tg")))

let () =
  Alcotest.run "corpus"
    [
      ( "ring",
        [
          Alcotest.test_case "admission and eviction order" `Quick
            test_admission_and_eviction;
          Alcotest.test_case "min-size floor under aging" `Quick test_min_size_floor;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load/save round-trip" `Quick
            test_persistence_round_trip;
          Alcotest.test_case "corrupt file ignored" `Quick test_corrupt_file_ignored;
        ] );
      ("mutation", qcheck_cases);
      ( "campaign",
        [
          Alcotest.test_case "killed+resumed bit-identity" `Quick
            test_resume_bit_identity;
        ] );
    ]
