(* Differential fuzzing on the self-validation campaign engine (§7/§8).

   Each campaign case draws a random well-typed program, generates its
   whole suite with the oracle, and replays every test on the
   independent concrete simulator; on a cadence the campaign also
   checks cross-cutting invariants (seed determinism, parallel
   exploration determinism, alternative strategies validating).  The
   Quick tests run small fixed-seed campaigns per architecture plus a
   worker-count determinism check; the Slow test runs a larger mixed
   campaign. *)

module Campaign = Selftest.Campaign
module Randprog = Progzoo.Randprog

let failure_report (s : Campaign.summary) =
  String.concat "; "
    (List.map
       (fun (f : Campaign.failure) ->
         Printf.sprintf "case %d (%s, seed %d): %s: %s" f.Campaign.f_case
           f.Campaign.f_arch f.Campaign.f_seed f.Campaign.f_kind
           (match String.index_opt f.Campaign.f_detail '\n' with
           | Some i -> String.sub f.Campaign.f_detail 0 i
           | None -> f.Campaign.f_detail))
       s.Campaign.s_failures)

let run_campaign cfg =
  let s = Campaign.run cfg in
  Alcotest.(check string) "no campaign failures" "" (failure_report s);
  s

(* per-architecture smoke campaigns: a handful of fixed-seed cases
   through the full differential pipeline *)
let smoke arch () =
  let cfg =
    {
      Campaign.default_config with
      Campaign.cases = 8;
      seed = 42;
      archs = [ arch ];
      max_tests = 10;
      reduce = false;
    }
  in
  let s = run_campaign cfg in
  Alcotest.(check int) "all cases ran" 8 s.Campaign.s_ran;
  Alcotest.(check bool) "oracle generated tests" true (s.Campaign.s_tests > 0)

(* the campaign summary must not depend on the worker count *)
let test_jobs_determinism () =
  let cfg =
    {
      Campaign.default_config with
      Campaign.cases = 9;
      seed = 5;
      max_tests = 8;
      reduce = false;
    }
  in
  let s1 = run_campaign { cfg with Campaign.jobs = 1 } in
  let s2 = run_campaign { cfg with Campaign.jobs = 4 } in
  Alcotest.(check string) "summaries identical across jobs"
    (Campaign.summary_line s1) (Campaign.summary_line s2);
  let tests_per_case s =
    List.map (fun (r : Campaign.case_result) -> r.Campaign.r_tests) s.Campaign.s_results
  in
  Alcotest.(check (list int)) "per-case test counts identical" (tests_per_case s1)
    (tests_per_case s2)

(* the larger mixed-architecture campaign *)
let test_slow_campaign () =
  let cfg =
    { Campaign.default_config with Campaign.cases = 45; seed = 11; jobs = 2 }
  in
  let s = run_campaign cfg in
  Alcotest.(check int) "all cases ran" 45 s.Campaign.s_ran;
  Alcotest.(check bool) "exercises most generator features" true
    (List.length s.Campaign.s_features >= 12)

let () =
  Alcotest.run "fuzz"
    [
      ( "campaign",
        [
          Alcotest.test_case "v1model smoke" `Quick (smoke Randprog.V1model);
          Alcotest.test_case "ebpf_model smoke" `Quick (smoke Randprog.Ebpf);
          Alcotest.test_case "tna smoke" `Quick (smoke Randprog.Tna);
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "mixed 45-case campaign" `Slow test_slow_campaign;
        ] );
    ]
