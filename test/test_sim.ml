(* Direct unit tests of the concrete software models: hand-crafted
   packets and control-plane entries with exact expected outputs —
   confidence in the simulator that does not depend on the oracle. *)

module Bits = Bitv.Bits
module Testspec = Testgen.Testspec

let eth ~dst ~src ~etype =
  Bits.concat
    (Bits.of_int ~width:48 dst)
    (Bits.concat (Bits.of_int ~width:48 src) (Bits.of_int ~width:16 etype))

let exact name v w = (name, Testspec.MExact (Bits.of_int ~width:w v))

let entry table keys action args =
  {
    Testspec.e_table = table;
    e_keys = keys;
    e_action = action;
    e_args = args;
    e_priority = None;
  }

(* ------------------------------------------------------------------ *)
(* fig1a on the BMv2 model *)

let fig1a_sim () = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.fig1a

let test_fig1a_miss_default () =
  let sim = fig1a_sim () in
  (* no entries: the program overwrites etype with 0xBEEF, noop leaves
     the default port 0 *)
  let input = eth ~dst:0x1111 ~src:0x2222 ~etype:0xAAAA in
  match Sim.Harness.run_packet sim ~entries:[] ~port:5 input with
  | Some [ (port, data) ] ->
      Alcotest.(check int) "default port 0" 0 port;
      Alcotest.(check int) "etype rewritten" 0xBEEF
        (Bits.to_int (Bits.slice data ~hi:15 ~lo:0))
  | _ -> Alcotest.fail "expected one output packet"

let test_fig1a_hit_forwards () =
  let sim = fig1a_sim () in
  let entries =
    [ entry "forward_table" [ exact "etype" 0xBEEF 16 ] "set_out"
        [ ("port", Bits.of_int ~width:9 7) ] ]
  in
  match Sim.Harness.run_packet sim ~entries ~port:5 (eth ~dst:1 ~src:2 ~etype:0) with
  | Some [ (port, _) ] -> Alcotest.(check int) "hit port" 7 port
  | _ -> Alcotest.fail "expected one output packet"

let test_fig1a_entry_for_other_key_misses () =
  let sim = fig1a_sim () in
  (* the program always forces etype to 0xBEEF before the lookup, so an
     entry for any other key can never hit *)
  let entries =
    [ entry "forward_table" [ exact "etype" 0x1234 16 ] "set_out"
        [ ("port", Bits.of_int ~width:9 7) ] ]
  in
  match Sim.Harness.run_packet sim ~entries ~port:5 (eth ~dst:1 ~src:2 ~etype:0x1234) with
  | Some [ (port, _) ] -> Alcotest.(check int) "miss keeps default port" 0 port
  | _ -> Alcotest.fail "expected one output packet"

let test_fig1a_drop_port () =
  let sim = fig1a_sim () in
  let entries =
    [ entry "forward_table" [ exact "etype" 0xBEEF 16 ] "set_out"
        [ ("port", Bits.of_int ~width:9 511) ] ]
  in
  (* port 511 is BMv2's drop port (Tbl. 6) *)
  Alcotest.(check bool) "dropped" true
    (Sim.Harness.run_packet sim ~entries ~port:5 (eth ~dst:1 ~src:2 ~etype:0) = None)

let test_short_packet_not_dropped_bmv2 () =
  let sim = fig1a_sim () in
  (* a parser error does not drop on BMv2: headers invalid, not emitted *)
  match Sim.Harness.run_packet sim ~entries:[] ~port:5 (Bits.of_int ~width:8 0xAB) with
  | Some [ (port, data) ] ->
      Alcotest.(check int) "still forwarded" 0 port;
      (* the invalid header is not emitted; the unparsed byte passes
         through as payload *)
      Alcotest.(check int) "only the unparsed payload" 8 (Bits.width data);
      Alcotest.(check int) "payload unchanged" 0xAB (Bits.to_int data)
  | _ -> Alcotest.fail "expected one output packet"

(* ------------------------------------------------------------------ *)
(* ternary ACL priorities on the model *)

let test_acl_priority_order () =
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.ternary_acl in
  (* 0x0806 matches both the @priority(1) deny and the allow mask entry;
     the priority entry must win: drop *)
  Alcotest.(check bool) "0x0806 denied" true
    (Sim.Harness.run_packet sim ~entries:[] ~port:1 (eth ~dst:0 ~src:0 ~etype:0x0806) = None);
  (* 0x0800 matches the exact allow *)
  (match Sim.Harness.run_packet sim ~entries:[] ~port:1 (eth ~dst:0 ~src:0 ~etype:0x0800) with
  | Some [ (port, _) ] -> Alcotest.(check int) "0x0800 allowed" 1 port
  | _ -> Alcotest.fail "expected forward");
  (* 0x0801 matches only the low-priority mask entry (0x0800 &&& 0x0F00) *)
  Alcotest.(check bool) "0x0801 denied by mask entry" true
    (Sim.Harness.run_packet sim ~entries:[] ~port:1 (eth ~dst:0 ~src:0 ~etype:0x0801) = None);
  (* 0x0900 matches nothing: default allow *)
  match Sim.Harness.run_packet sim ~entries:[] ~port:1 (eth ~dst:0 ~src:0 ~etype:0x0900) with
  | Some [ (port, _) ] -> Alcotest.(check int) "0x0900 falls to default allow" 1 port
  | _ -> Alcotest.fail "expected forward"

(* ------------------------------------------------------------------ *)
(* Tofino model quirks *)

let test_tofino_min_frame () =
  let sim = Sim.Harness.prepare ~arch:"tna" Progzoo.Corpus.tna_basic in
  (* any frame below 64 bytes is dropped before processing *)
  Alcotest.(check bool) "63B dropped" true
    (Sim.Harness.run_packet sim ~entries:[] ~port:1 (Bits.zero (63 * 8)) = None)

let test_tofino_forward_and_rewrite () =
  let sim = Sim.Harness.prepare ~arch:"tna" Progzoo.Corpus.tna_basic in
  let input = Bits.concat (eth ~dst:0xABCD ~src:0 ~etype:0) (Bits.zero (50 * 8)) in
  let entries =
    [ entry "l2" [ exact "dst" 0xABCD 48 ] "fwd" [ ("port", Bits.of_int ~width:9 9) ] ]
  in
  match Sim.Harness.run_packet sim ~entries ~port:3 input with
  | Some [ (port, data) ] ->
      Alcotest.(check int) "forwarded to entry port" 9 port;
      (* the egress control rewrote the source MAC *)
      let w = Bits.width data in
      Alcotest.(check string) "egress rewrite" "C0FFEE000001"
        (Bits.to_hex (Bits.slice data ~hi:(w - 49) ~lo:(w - 96)))
  | _ -> Alcotest.fail "expected one output packet"

let test_tofino_default_drop () =
  let sim = Sim.Harness.prepare ~arch:"tna" Progzoo.Corpus.tna_basic in
  let input = Bits.concat (eth ~dst:0xABCD ~src:0 ~etype:0) (Bits.zero (50 * 8)) in
  (* no l2 entry: default action sets drop_ctl *)
  Alcotest.(check bool) "dropped" true
    (Sim.Harness.run_packet sim ~entries:[] ~port:3 input = None)

(* ------------------------------------------------------------------ *)
(* eBPF model *)

let ipv4ish ~proto =
  (* version..frag(64) ttl(8) proto(8) csum(16) saddr(32) daddr(32) *)
  Bits.concat
    (Bits.of_int ~width:64 0)
    (Bits.concat
       (Bits.of_int ~width:8 64)
       (Bits.concat (Bits.of_int ~width:8 proto) (Bits.zero 80)))

let test_ebpf_filter () =
  let sim = Sim.Harness.prepare ~arch:"ebpf_model" Progzoo.Corpus.ebpf_filter in
  let tcp = Bits.concat (eth ~dst:0 ~src:0 ~etype:0x0800) (ipv4ish ~proto:6) in
  let udp = Bits.concat (eth ~dst:0 ~src:0 ~etype:0x0800) (ipv4ish ~proto:17) in
  (match Sim.Harness.run_packet sim ~entries:[] ~port:0 tcp with
  | Some [ (_, data) ] ->
      Alcotest.(check bool) "TCP passes unchanged" true (Bits.equal data tcp)
  | _ -> Alcotest.fail "expected pass");
  Alcotest.(check bool) "UDP filtered" true
    (Sim.Harness.run_packet sim ~entries:[] ~port:0 udp = None);
  (* failing extract drops in the kernel (Tbl. 6) *)
  Alcotest.(check bool) "short packet dropped" true
    (Sim.Harness.run_packet sim ~entries:[] ~port:0 (Bits.zero 8) = None)

(* ------------------------------------------------------------------ *)
(* registers persist within a packet, reset across packets *)

let test_register_semantics () =
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.register_program in
  let input = eth ~dst:0 ~src:0 ~etype:0 in
  (* first (and only) packet: register cell 3 starts at 0 -> port 7 *)
  match Sim.Harness.run_packet sim ~entries:[] ~port:1 input with
  | Some [ (port, _) ] -> Alcotest.(check int) "fresh register" 7 port
  | _ -> Alcotest.fail "expected forward"

(* ------------------------------------------------------------------ *)
(* multi-packet sequences: one persistent interpreter state *)

let seq_suite () =
  (* an oracle-generated 2-packet suite for the register state machine *)
  let opts =
    { Testgen.Runtime.default_options with Testgen.Runtime.seq_packets = 2 }
  in
  let target = Option.get (Targets.Registry.find "v1model") in
  let run = Testgen.Oracle.generate ~opts target Progzoo.Corpus.register_program in
  run.Testgen.Oracle.result.Testgen.Explore.tests

let test_sequence_suite_passes () =
  let tests = seq_suite () in
  Alcotest.(check bool) "suite has a sequence" true
    (List.exists Testspec.is_sequence tests);
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.register_program in
  let summary, results = Sim.Harness.run_suite sim tests in
  List.iter
    (fun ((_ : Testspec.t), v) ->
      match v with
      | Sim.Harness.Pass -> ()
      | Sim.Harness.Wrong_output m | Sim.Harness.Crash m -> Alcotest.fail m)
    results;
  Alcotest.(check int) "all pass" summary.Sim.Harness.total summary.Sim.Harness.passed

let test_sequence_determinism () =
  (* two fresh harnesses replay the same sequence suite to identical
     verdicts: no state leaks between tests of a suite *)
  let tests = seq_suite () in
  let verdicts () =
    let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.register_program in
    let _, results = Sim.Harness.run_suite sim tests in
    List.map
      (fun (_, v) ->
        match v with
        | Sim.Harness.Pass -> "pass"
        | Sim.Harness.Wrong_output m -> "wrong:" ^ m
        | Sim.Harness.Crash m -> "crash:" ^ m)
      results
  in
  Alcotest.(check (list string)) "identical verdicts" (verdicts ()) (verdicts ())

let test_sequence_fault_killed () =
  (* the SEQ-1 fault resets registers between the packets of a
     sequence; the 2-packet suite must observe it (packet 2 expects
     port 8, the reset model forwards to 7 again) while a single-packet
     suite cannot *)
  let tests = seq_suite () in
  let faulted =
    Sim.Harness.prepare ~fault:Sim.Mutation.Register_reset_between_packets
      ~arch:"v1model" Progzoo.Corpus.register_program
  in
  let summary, _ = Sim.Harness.run_suite faulted tests in
  Alcotest.(check bool) "sequence suite kills SEQ-1" true
    (summary.Sim.Harness.wrong > 0);
  let singles =
    let target = Option.get (Targets.Registry.find "v1model") in
    let run = Testgen.Oracle.generate target Progzoo.Corpus.register_program in
    run.Testgen.Oracle.result.Testgen.Explore.tests
  in
  let s1, _ = Sim.Harness.run_suite faulted singles in
  Alcotest.(check int) "single-packet suite is blind to SEQ-1" 0
    (s1.Sim.Harness.wrong + s1.Sim.Harness.crashed)

let () =
  Alcotest.run "sim"
    [
      ( "bmv2",
        [
          Alcotest.test_case "miss default" `Quick test_fig1a_miss_default;
          Alcotest.test_case "hit forwards" `Quick test_fig1a_hit_forwards;
          Alcotest.test_case "stale entry misses" `Quick test_fig1a_entry_for_other_key_misses;
          Alcotest.test_case "drop port 511" `Quick test_fig1a_drop_port;
          Alcotest.test_case "parser error continues" `Quick test_short_packet_not_dropped_bmv2;
          Alcotest.test_case "acl priorities" `Quick test_acl_priority_order;
          Alcotest.test_case "registers" `Quick test_register_semantics;
        ] );
      ( "tofino",
        [
          Alcotest.test_case "64B minimum" `Quick test_tofino_min_frame;
          Alcotest.test_case "forward + rewrite" `Quick test_tofino_forward_and_rewrite;
          Alcotest.test_case "default drop" `Quick test_tofino_default_drop;
        ] );
      ("ebpf", [ Alcotest.test_case "filter" `Quick test_ebpf_filter ]);
      ( "sequences",
        [
          Alcotest.test_case "oracle suite passes" `Quick test_sequence_suite_passes;
          Alcotest.test_case "deterministic replay" `Quick test_sequence_determinism;
          Alcotest.test_case "SEQ-1 fault killed" `Quick test_sequence_fault_killed;
        ] );
    ]
