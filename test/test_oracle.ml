(* End-to-end oracle tests on the paper's running examples (§3).

   Fig. 1a: forwarding on EtherType — expect four kinds of tests:
   miss/default, hit set_out, hit noop, and a short-packet path where
   the tainted key forces the default action.

   Fig. 1b: checksum validation — expect an invalid-header path, a
   checksum-ok path (concolic), and a checksum-mismatch drop path. *)

module Bits = Bitv.Bits
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Testspec = Testgen.Testspec

let fig1a =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
  action noop() { }
  action set_out(bit<9> port) {
    meta.output_port = port;
    sm.egress_spec = port;
  }
  table forward_table {
    key = { h.eth.etype : exact @name("etype"); }
    actions = { noop; set_out; }
    default_action = noop();
  }
  apply {
    h.eth.etype = 0xBEEF;
    forward_table.apply();
  }
}
control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
|}

let fig1b =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> checksum_err; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) {
  apply {
    meta.checksum_err = verify_checksum(hdr.eth.isValid(),
                                        {hdr.eth.dst, hdr.eth.src},
                                        hdr.eth.etype, HashAlgorithm.csum16);
  }
}
control MyIngress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) {
  apply {
    if (meta.checksum_err == 1) {
      mark_to_drop(sm);
    }
  }
}
control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
|}

let generate ?opts src =
  let run = Oracle.generate ?opts Targets.V1model.target src in
  run

let test_fig1a () =
  let run = generate fig1a in
  let tests = run.Oracle.result.Explore.tests in
  Printf.printf "fig1a: %d tests\n" (List.length tests);
  List.iter (fun t -> print_endline (Testspec.to_string t)) tests;
  Alcotest.(check bool) "at least 4 tests" true (List.length tests >= 4);
  (* coverage should be complete *)
  let cov = Oracle.coverage_report run in
  Alcotest.(check (list int)) "full coverage" [] cov.uncovered;
  (* some test must carry a synthesized entry matching 0xBEEF *)
  let has_beef_entry =
    List.exists
      (fun (t : Testspec.t) ->
        List.exists
          (fun (e : Testspec.entry) ->
            e.e_table = "forward_table"
            && List.exists
                 (fun (k, m) ->
                   k = "etype"
                   && match m with Testspec.MExact v -> Bits.to_int v = 0xBEEF | _ -> false)
                 e.e_keys)
          t.entries)
      tests
  in
  Alcotest.(check bool) "entry key folds to 0xBEEF" true has_beef_entry;
  (* a short-packet test exists: input smaller than the ethernet header *)
  let has_short =
    List.exists (fun (t : Testspec.t) -> Bits.width (Testspec.input t).data < 112) tests
  in
  Alcotest.(check bool) "short-packet test" true has_short;
  (* every full-header test input must be exactly the ethernet header *)
  let full = List.filter (fun (t : Testspec.t) -> Bits.width (Testspec.input t).data = 112) tests in
  Alcotest.(check bool) "some full-size tests" true (full <> [])

let test_fig1b () =
  let run = generate fig1b in
  let tests = run.Oracle.result.Explore.tests in
  Printf.printf "fig1b: %d tests\n" (List.length tests);
  List.iter (fun t -> print_endline (Testspec.to_string t)) tests;
  Alcotest.(check bool) "at least 3 tests" true (List.length tests >= 3);
  (* drop test: checksum mismatch *)
  let drops = List.filter Testspec.is_drop tests in
  Alcotest.(check bool) "has drop test" true (drops <> []);
  (* checksum-ok test: the etype field equals the checksum of dst++src *)
  let ok =
    List.exists
      (fun (t : Testspec.t) ->
        (not (Testspec.is_drop t))
        && Bits.width (Testspec.input t).data = 112
        &&
        let data = Bits.slice (Testspec.input t).data ~hi:111 ~lo:16 in
        let etype = Bits.slice (Testspec.input t).data ~hi:15 ~lo:0 in
        Bits.equal etype (Targets.Checksums.csum16 data))
      tests
  in
  Alcotest.(check bool) "concolic checksum binds" true ok

(* ------------------------------------------------------------------ *)
(* eBPF filter (§6.1.3) *)

let ebpf_filter =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }

parser prs(packet_in pkt, out headers_t hdr) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control pipe(inout headers_t hdr, out bool pass) {
  apply {
    if (hdr.eth.etype == 0x0800) {
      pass = true;
    } else {
      pass = false;
    }
  }
}
ebpfFilter(prs(), pipe()) main;
|}

let test_ebpf () =
  let run = Testgen.Oracle.generate Targets.Ebpf.target ebpf_filter in
  let tests = run.Oracle.result.Explore.tests in
  Printf.printf "ebpf: %d tests\n" (List.length tests);
  List.iter (fun t -> print_endline (Testspec.to_string t)) tests;
  (* pass, drop-by-filter, drop-by-short-packet *)
  Alcotest.(check bool) "3 tests" true (List.length tests >= 3);
  let passes = List.filter (fun t -> not (Testspec.is_drop t)) tests in
  let drops = List.filter Testspec.is_drop tests in
  Alcotest.(check bool) "has pass" true (passes <> []);
  Alcotest.(check bool) "has drops" true (List.length drops >= 2);
  (* the passing test must carry EtherType 0x0800 and echo the packet *)
  List.iter
    (fun (t : Testspec.t) ->
      Alcotest.(check int) "pass etype" 0x0800
        (Bits.to_int (Bits.slice (Testspec.input t).data ~hi:15 ~lo:0));
      let out = List.hd (Testspec.outputs t) in
      Alcotest.(check bool) "filter echoes packet" true (Bits.equal out.data (Testspec.input t).data))
    passes;
  let cov = Oracle.coverage_report run in
  Alcotest.(check (list int)) "ebpf full coverage" [] cov.uncovered

(* ------------------------------------------------------------------ *)
(* TNA two-pipe program (§6.1.2) *)

let tna_program =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }
struct meta_t { bit<8> scratch; }

parser IgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out ingress_intrinsic_metadata_t ig_intr_md) {
  state start {
    pkt.extract(ig_intr_md);
    transition parse_eth;
  }
  state parse_eth {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control Ig(inout headers_t hdr, inout meta_t md,
           in ingress_intrinsic_metadata_t ig_intr_md,
           in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
           inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
           inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
  action fwd(bit<9> port) { ig_tm_md.ucast_egress_port = port; }
  action drop() { ig_dprsr_md.drop_ctl = 1; }
  table l2 {
    key = { hdr.eth.dst : exact @name("dst"); }
    actions = { fwd; drop; }
    default_action = drop();
  }
  apply {
    l2.apply();
  }
}
control IgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}
parser EgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out egress_intrinsic_metadata_t eg_intr_md) {
  state start {
    pkt.extract(eg_intr_md);
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control Eg(inout headers_t hdr, inout meta_t md,
           in egress_intrinsic_metadata_t eg_intr_md,
           in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
           inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
           inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
  apply {
    hdr.eth.src = 0xC0FFEE000001;
  }
}
control EgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}
Switch(Pipeline(IgParser(), Ig(), IgDeparser(), EgParser(), Eg(), EgDeparser())) main;
|}

let test_tna () =
  let run = Testgen.Oracle.generate Targets.Tna.target tna_program in
  let tests = run.Oracle.result.Explore.tests in
  Printf.printf "tna: %d tests\n" (List.length tests);
  List.iter (fun t -> print_endline (Testspec.to_string t)) tests;
  Alcotest.(check bool) "tests generated" true (List.length tests >= 2);
  let fwd = List.filter (fun t -> not (Testspec.is_drop t)) tests in
  Alcotest.(check bool) "has forwarded test" true (fwd <> []);
  List.iter
    (fun (t : Testspec.t) ->
      (* 64-byte minimum frame (Tbl. 6) *)
      Alcotest.(check bool) "64B minimum" true (Bits.width (Testspec.input t).data >= 64 * 8);
      let out = List.hd (Testspec.outputs t) in
      (* the egress rewrote the source MAC *)
      let src = Bits.slice out.data ~hi:(Bits.width out.data - 49) ~lo:(Bits.width out.data - 96) in
      Alcotest.(check string) "egress rewrite" "C0FFEE000001" (Bits.to_hex src))
    fwd;
  (* the drop-by-default-action test exists *)
  Alcotest.(check bool) "has drop test" true (List.exists Testspec.is_drop tests)

(* ------------------------------------------------------------------ *)
(* Re-entrancy: every [prepare] owns its term context, so prepared
   runs can interleave and even execute on different domains. *)

let tests_of (run : Oracle.run) =
  List.map Testspec.to_string run.Oracle.result.Explore.tests

let test_interleaved_prepare () =
  (* reference: sequential, non-interleaved runs *)
  let ref_a = tests_of (generate fig1a) in
  let ref_b = tests_of (generate fig1b) in
  (* interleaved: prepare both runs up front, then explore B before A.
     A's terms and solver state must stay valid while B explores. *)
  let pa = Oracle.prepare Targets.V1model.target fig1a in
  let pb = Oracle.prepare Targets.V1model.target fig1b in
  let sta = Oracle.initial_state pa in
  let stb = Oracle.initial_state pb in
  let rb = Explore.run pb.Oracle.ctx stb in
  let ra = Explore.run pa.Oracle.ctx sta in
  let got_a = List.map Testspec.to_string ra.Explore.tests in
  let got_b = List.map Testspec.to_string rb.Explore.tests in
  Alcotest.(check (list string)) "run A unaffected by interleaving" ref_a got_a;
  Alcotest.(check (list string)) "run B unaffected by interleaving" ref_b got_b

let test_concurrent_domains () =
  (* two generate runs on different domains at once; each must match
     its sequential reference (seed-deterministic) *)
  let ref_a = tests_of (generate fig1a) in
  let ref_b = tests_of (Oracle.generate Targets.Ebpf.target ebpf_filter) in
  let da = Domain.spawn (fun () -> tests_of (generate fig1a)) in
  let db =
    Domain.spawn (fun () -> tests_of (Oracle.generate Targets.Ebpf.target ebpf_filter))
  in
  Alcotest.(check (list string)) "domain A deterministic" ref_a (Domain.join da);
  Alcotest.(check (list string)) "domain B deterministic" ref_b (Domain.join db)

let batch_jobs () =
  [
    Oracle.job ~label:"fig1a" Targets.V1model.target fig1a;
    Oracle.job ~label:"fig1b" Targets.V1model.target fig1b;
    Oracle.job ~label:"ebpf" Targets.Ebpf.target ebpf_filter;
    Oracle.job ~label:"tna" Targets.Tna.target tna_program;
  ]

let batch_tests (b : Oracle.batch) =
  List.map
    (fun (label, o) ->
      match o with
      | Oracle.Finished r -> (label, tests_of r)
      | Oracle.Failed msg -> Alcotest.fail (label ^ " failed: " ^ msg))
    b.Oracle.outcomes

let test_adaptive_split_bit_identical () =
  (* the PR-level acceptance check: under adaptive frontier splitting,
     the whole suite of paper examples generates bit-identical test
     sets for path_jobs = 1 and path_jobs = 4 *)
  let cfg pj =
    { Explore.default_config with Explore.path_jobs = pj; split_tasks = 16 }
  in
  List.iter
    (fun (label, target, src) ->
      let r1 = Oracle.generate ~config:(cfg 1) target src in
      let r4 = Oracle.generate ~config:(cfg 4) target src in
      Alcotest.(check (list string))
        (label ^ ": pj1 = pj4 bit-identical")
        (tests_of r1) (tests_of r4))
    [
      ("fig1a", Targets.V1model.target, fig1a);
      ("fig1b", Targets.V1model.target, fig1b);
      ("ebpf", Targets.Ebpf.target, ebpf_filter);
      ("tna", Targets.Tna.target, tna_program);
    ]

let test_batch_determinism () =
  let b1 = Oracle.generate_batch ~jobs:1 (batch_jobs ()) in
  let b4 = Oracle.generate_batch ~jobs:4 (batch_jobs ()) in
  let t1 = batch_tests b1 and t4 = batch_tests b4 in
  List.iter2
    (fun (l1, ts1) (l4, ts4) ->
      Alcotest.(check string) "label order" l1 l4;
      Alcotest.(check (list string)) (l1 ^ " identical across jobs") ts1 ts4)
    t1 t4;
  (* merged stats cover every job regardless of scheduling *)
  Alcotest.(check int) "merged paths equal"
    b1.Oracle.merged_stats.Explore.paths b4.Oracle.merged_stats.Explore.paths;
  Alcotest.(check int) "merged tests equal"
    b1.Oracle.merged_stats.Explore.tests b4.Oracle.merged_stats.Explore.tests

let () =
  Alcotest.run "oracle"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "fig1a" `Quick test_fig1a;
          Alcotest.test_case "fig1b" `Quick test_fig1b;
        ] );
      ("ebpf", [ Alcotest.test_case "filter" `Quick test_ebpf ]);
      ("tna", [ Alcotest.test_case "two-pipe" `Quick test_tna ]);
      ( "reentrancy",
        [
          Alcotest.test_case "interleaved prepares" `Quick test_interleaved_prepare;
          Alcotest.test_case "concurrent domains" `Quick test_concurrent_domains;
          Alcotest.test_case "adaptive split bit-identical" `Quick
            test_adaptive_split_bit_identical;
          Alcotest.test_case "batch jobs=1 = jobs=4" `Quick test_batch_determinism;
        ] );
    ]
