// arch: tna
// found-by: selftest campaign, seed 7 case 101 (hand-minimized)
// The oracle used to decide "egress port never written -> drop" with a
// syntactic constant check, while the concrete model compares the
// port's *value* against the 0x1FF sentinel.  A program that forwards
// a symbolic, header-derived port the solver can drive to 0x1FF made
// the two disagree (oracle expected a forward, model dropped).  The
// if-guard below forces the symbolic port to 0x1FF on a feasible path,
// so any regression to the syntactic check fails validation
// deterministically instead of depending on a random draw.

header eth_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { eth_t eth; }
struct meta_t { }

parser IgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out ingress_intrinsic_metadata_t ig_intr_md) {
  state start {
    pkt.extract(ig_intr_md);
    pkt.extract(hdr.eth);
    transition accept;
  }
}

control Ig(inout headers_t hdr, inout meta_t md,
           in ingress_intrinsic_metadata_t ig_intr_md,
           in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
           inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
           inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
  apply {
    if (hdr.eth.etype == 0x01FF) {
      ig_tm_md.ucast_egress_port = hdr.eth.etype[8:0];
    } else {
      ig_tm_md.ucast_egress_port = 5;
    }
  }
}

control IgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}

parser EgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out egress_intrinsic_metadata_t eg_intr_md) {
  state start {
    pkt.extract(eg_intr_md);
    pkt.extract(hdr.eth);
    transition accept;
  }
}

control Eg(inout headers_t hdr, inout meta_t md,
           in egress_intrinsic_metadata_t eg_intr_md,
           in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
           inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
           inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
  apply { }
}

control EgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}

Switch(Pipeline(IgParser(), Ig(), IgDeparser(), EgParser(), Eg(), EgDeparser())) main;
