// arch: v1model
// seed: 7000022
// case: 0  kind: wrong_output
// fault: drop_second_emit
// detail: length mismatch: expected 208 bits, got 112
// detail: test {
// detail:   input:  port 136 len 208b data 3C76321AD7DD01621D2009F5080054DA7C3901EBA3BCAC599584
header eth_t {
  bit<16> etype;
}

header ipv4ish_t {
  bit<32> saddr;
}

struct headers_t {
  eth_t eth;
  ipv4ish_t ipv4;
}

struct meta_t {
  
}

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  
  state start {
    pkt.extract(hdr.eth);
transition parse_ipv4;
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
transition accept;
  }
}

control V(inout headers_t hdr, inout meta_t meta) {
  
  apply {
    
  }
}

control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  
  apply {
    
  }
}

control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  
  apply {
    
  }
}

control C(inout headers_t hdr, inout meta_t meta) {
  
  apply {
    
  }
}

control D(packet_out pkt, in headers_t hdr) {
  
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
  }
}

V1Switch(P(), V(), I(), E(), C(), D()) main;
