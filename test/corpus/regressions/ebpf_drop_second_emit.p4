// arch: ebpf_model
// seed: 7007941
// case: 1  kind: wrong_output
// fault: drop_second_emit
// detail: length mismatch: expected 160 bits, got 112
// detail: test {
// detail:   input:  port 7 len 160b data FC473694CBD69D8BD723C8091234FEED37AC9AE1
header eth_t {
  bit<16> etype;
}

header extra_t {
  bit<24> c;
}

struct headers_t {
  eth_t eth;
  extra_t extra;
}

parser prs(packet_in pkt, out headers_t hdr) {
  
  state start {
    pkt.extract(hdr.eth);
transition parse_extra;
  }
  state parse_extra {
    pkt.extract(hdr.extra);
transition accept;
  }
}

control pipe(inout headers_t hdr, out bool pass) {
  
  apply {
    {
      pass = true;
    }
  }
}

ebpfFilter(prs(), pipe()) main;
