(* Back-end emitter tests: STF / PTF / protobuf-text formats. *)

module Bits = Bitv.Bits
module Testspec = Testgen.Testspec

let sample_test =
  Testspec.make
    ~input:(Testspec.packet ~port:(Bits.of_int ~width:9 3) (Bits.of_hex ~width:112 "00000000000000000000000000BEEF" |> fun b -> Bits.slice b ~hi:111 ~lo:0))
    ~outputs:
      [
        {
          Testspec.port = Bits.of_int ~width:9 7;
          data = Bits.of_int ~width:16 0xBEEF;
          dontcare = Bits.zero 16;
        };
      ]
    ~entries:
      [
        {
          Testspec.e_table = "forward_table";
          e_keys = [ ("etype", Testspec.MExact (Bits.of_int ~width:16 0xBEEF)) ];
          e_action = "set_out";
          e_args = [ ("port", Bits.of_int ~width:9 7) ];
          e_priority = None;
        };
      ]
    ~registers:[] ~covered:[ 1; 2; 3 ] ~comment:"sample"

let drop_test =
  Testspec.make
    ~input:(Testspec.packet ~port:(Bits.of_int ~width:9 1) (Bits.of_int ~width:16 0xAAAA))
    ~outputs:[] ~entries:[] ~registers:[] ~covered:[] ~comment:"drop"

let masked_test =
  Testspec.make
    ~input:(Testspec.packet ~port:(Bits.of_int ~width:9 1) (Bits.of_int ~width:16 0x1234))
    ~outputs:
      [
        {
          Testspec.port = Bits.of_int ~width:9 2;
          data = Bits.of_int ~width:16 0xFF00;
          dontcare = Bits.of_int ~width:16 0x00FF;  (* low byte undefined *)
        };
      ]
    ~entries:[] ~registers:[] ~covered:[] ~comment:"masked"

let seq_test =
  (* packet 1 -> port 7, a control-plane register write, packet 2 ->
     port 8: the canonical stateful sequence shape *)
  let pkt v = Testspec.packet ~port:(Bits.of_int ~width:9 1) (Bits.of_int ~width:16 v) in
  let out p v =
    { Testspec.port = Bits.of_int ~width:9 p; data = Bits.of_int ~width:16 v; dontcare = Bits.zero 16 }
  in
  Testspec.make_seq
    ~steps:
      [
        Testspec.SInject { input = pkt 0xAAAA; outputs = [ out 7 0xAAAA ] };
        Testspec.SRegister
          { Testspec.r_name = "I.flows"; r_index = 3; r_value = Bits.of_int ~width:32 5 };
        Testspec.SInject { input = pkt 0xBBBB; outputs = [ out 8 0xBBBB ] };
      ]
    ~entries:[] ~registers:[] ~covered:[] ~comment:"two-packet sequence"

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_stf () =
  let out = Backends.Stf.emit [ sample_test; drop_test ] in
  Alcotest.(check bool) "add line" true (contains out "add forward_table etype:0xBEEF set_out(port:0x007)");
  Alcotest.(check bool) "packet line" true (contains out "packet 3 ");
  Alcotest.(check bool) "expect line" true (contains out "expect 7 BEEF");
  Alcotest.(check bool) "drop comment" true (contains out "# expect no packet (drop)")

let test_stf_mask () =
  let out = Backends.Stf.emit [ masked_test ] in
  (* don't-care nibbles become '*' *)
  Alcotest.(check bool) "masked nibbles" true (contains out "expect 2 FF**")

let test_stf_range_unsupported () =
  let t =
    Testspec.make
      ~input:(Testspec.packet ~port:(Bits.zero 9) (Bits.zero 16))
      ~outputs:[]
      ~entries:
        [
          {
            Testspec.e_table = "t";
            e_keys = [ ("k", Testspec.MRange (Bits.zero 8, Bits.ones 8)) ];
            e_action = "a";
            e_args = [];
            e_priority = None;
          };
        ]
      ~registers:[] ~covered:[] ~comment:"range"
  in
  (* STF cannot express range entries (§6): the test is skipped, not emitted *)
  let out = Backends.Stf.emit [ t ] in
  Alcotest.(check bool) "skipped" true (contains out "skipped");
  Alcotest.(check bool) "no add" false (contains out "add t ")

let test_ptf () =
  let out = Backends.Ptf.emit [ sample_test; masked_test ] in
  Alcotest.(check bool) "class" true (contains out "class Test0(P4TestgenTest):");
  Alcotest.(check bool) "table_add" true (contains out "self.table_add(\"forward_table\"");
  Alcotest.(check bool) "send" true (contains out "send_packet(self, 3, pkt)");
  Alcotest.(check bool) "verify" true (contains out "verify_packet(self, exp0, 7)");
  Alcotest.(check bool) "masked verify" true (contains out "verify_masked_packet");
  let out_drop = Backends.Ptf.emit [ drop_test ] in
  Alcotest.(check bool) "drop verify" true (contains out_drop "verify_no_other_packets")

let test_stf_sequence_rejected () =
  (* STF replays exactly one packet: sequences are skipped, not
     mangled into a single-packet script *)
  let out = Backends.Stf.emit [ seq_test ] in
  Alcotest.(check bool) "skipped" true (contains out "skipped");
  Alcotest.(check bool) "no packet line" false (contains out "packet 1 ")

let test_ptf_sequence () =
  let out = Backends.Ptf.emit [ seq_test ] in
  (* both injections, in order, with the register write between them *)
  Alcotest.(check bool) "first send" true (contains out "send_packet(self, 1, pkt)");
  Alcotest.(check bool) "first verify" true (contains out "verify_packet(self, exp0, 7)");
  Alcotest.(check bool) "mid-sequence register write" true
    (contains out "self.register_write(\"I.flows\", 3, 0x");
  Alcotest.(check bool) "second send" true (contains out "send_packet(self, 1, pkt2)");
  Alcotest.(check bool) "second verify" true (contains out "verify_packet(self, exp20, 8)");
  (* single-packet emission is unchanged: no numbered variables *)
  let single = Backends.Ptf.emit [ sample_test ] in
  Alcotest.(check bool) "no pkt2 in single tests" false (contains single "pkt2")

let test_proto_sequence () =
  let out = Backends.Proto.emit [ seq_test ] in
  let count sub =
    let n = String.length sub and len = String.length out in
    let rec go i acc =
      if i + n > len then acc
      else if String.sub out i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two input packets" 2 (count "input_packet {");
  Alcotest.(check int) "two expected packets" 2 (count "expected_packet {");
  Alcotest.(check bool) "register write step" true (contains out "register_write {");
  Alcotest.(check bool) "register name" true (contains out "register: \"I.flows\"")

let test_proto () =
  let out = Backends.Proto.emit [ sample_test; drop_test ] in
  Alcotest.(check bool) "table entry" true (contains out "table: \"forward_table\"");
  Alcotest.(check bool) "exact match" true (contains out "exact { value:");
  Alcotest.(check bool) "action" true (contains out "name: \"set_out\"");
  Alcotest.(check bool) "input packet" true (contains out "input_packet {");
  Alcotest.(check bool) "drop" true (contains out "expect_drop: true")

let test_registry () =
  Alcotest.(check int) "three back ends" 3 (List.length Backends.Registry.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Backends.Registry.find name <> None))
    [ "stf"; "ptf"; "protobuf" ]

(* round-trip style property: every generated corpus test serializes
   without raising in every back end *)
let test_all_backends_total () =
  List.iter
    (fun (name, src) ->
      let arch =
        match name with
        | "ebpf_filter" -> "ebpf_model"
        | "tna_basic" | "tna_kitchen" -> "tna"
        | _ -> "v1model"
      in
      let tgt = Option.get (Targets.Registry.find arch) in
      let run = Testgen.Oracle.generate tgt src in
      let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
      List.iter
        (fun (b : Backends.Registry.t) ->
          let out = b.emit tests in
          Alcotest.(check bool) (name ^ "/" ^ b.name ^ " non-empty") true
            (String.length out > 0))
        Backends.Registry.all)
    (Progzoo.Corpus.v1model_validatable
    @ [ ("ebpf_filter", Progzoo.Corpus.ebpf_filter); ("tna_basic", Progzoo.Corpus.tna_basic) ])

let () =
  Alcotest.run "backends"
    [
      ( "stf",
        [
          Alcotest.test_case "format" `Quick test_stf;
          Alcotest.test_case "don't-care mask" `Quick test_stf_mask;
          Alcotest.test_case "range unsupported" `Quick test_stf_range_unsupported;
          Alcotest.test_case "sequence rejected" `Quick test_stf_sequence_rejected;
        ] );
      ( "ptf",
        [
          Alcotest.test_case "format" `Quick test_ptf;
          Alcotest.test_case "sequence" `Quick test_ptf_sequence;
        ] );
      ( "protobuf",
        [
          Alcotest.test_case "format" `Quick test_proto;
          Alcotest.test_case "sequence" `Quick test_proto_sequence;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry;
          Alcotest.test_case "total on corpus" `Quick test_all_backends_total;
        ] );
    ]
