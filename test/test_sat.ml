(* Differential fuzzing of the CDCL SAT core.

   A tiny reference DPLL (unit propagation + chronological backtracking
   over the same literal encoding) decides each random CNF instance
   independently; the CDCL solver — running with database reduction,
   clause minimisation, and phase saving enabled, and with a reduction
   limit small enough that [reduce_db] actually fires on these tiny
   instances — must agree on satisfiability, and every Sat answer must
   come with a model that satisfies all original clauses.  Random
   instances are drawn near the 3-SAT phase transition so both answers
   and real conflict/learning activity occur. *)

module Sat = Smt.Sat

(* ------------------------------------------------------------------ *)
(* Reference solver: plain recursive DPLL over clauses as literal
   lists.  Exponential, but instances stay <= 14 variables. *)

module Dpll = struct
  (* assignment: 0 unassigned / 1 true / 2 false, indexed by variable *)
  let lit_status assign l =
    let v = assign.(l lsr 1) in
    if v = 0 then 0 else if l land 1 = 0 then v else 3 - v

  (* None = conflict; Some remaining = simplified clause set *)
  let simplify assign clauses =
    let rec clause_status acc = function
      | [] -> if acc = [] then `Conflict else `Clause acc
      | l :: rest -> (
          match lit_status assign l with
          | 1 -> `Satisfied
          | 2 -> clause_status acc rest
          | _ -> clause_status (l :: acc) rest)
    in
    let rec go acc = function
      | [] -> Some acc
      | c :: rest -> (
          match clause_status [] c with
          | `Conflict -> None
          | `Satisfied -> go acc rest
          | `Clause c' -> go (c' :: acc) rest)
    in
    go [] clauses

  let rec search assign clauses =
    match simplify assign clauses with
    | None -> false
    | Some [] -> true
    | Some cs -> (
        (* unit propagation first *)
        match List.find_opt (fun c -> List.length c = 1) cs with
        | Some [ l ] ->
            assign.(l lsr 1) <- (if l land 1 = 0 then 1 else 2);
            let r = search assign cs in
            assign.(l lsr 1) <- 0;
            r
        | _ ->
            let l = List.hd (List.hd cs) in
            let v = l lsr 1 in
            assign.(v) <- 1;
            let r = search assign cs in
            assign.(v) <- 0;
            r
            ||
            (assign.(v) <- 2;
             let r = search assign cs in
             assign.(v) <- 0;
             r))

  let solve ~nvars clauses =
    if List.exists (fun c -> c = []) clauses then false
    else search (Array.make nvars 0) clauses
end

(* ------------------------------------------------------------------ *)
(* Random instances *)

let random_clause st nvars =
  (* mostly ternary (near the 3-SAT transition), with enough binary
     clauses to keep the dedicated binary watch layer busy and an
     occasional wide or unit clause *)
  let width =
    match Random.State.int st 20 with
    | 0 -> 1
    | 1 | 2 | 3 | 4 -> 2
    | 19 -> 4
    | _ -> 3
  in
  (* distinct variables within a clause, random polarity each *)
  let vars = Array.init nvars Fun.id in
  for i = nvars - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = vars.(i) in
    vars.(i) <- vars.(j);
    vars.(j) <- t
  done;
  List.init (min width nvars) (fun i ->
      if Random.State.bool st then Sat.pos vars.(i) else Sat.neg vars.(i))

let random_instance st =
  let nvars = 5 + Random.State.int st 11 in
  (* clause/variable ratio spread across the sat/unsat transition;
     enough clauses that sat instances still conflict and learn *)
  let ratio = 1.5 +. Random.State.float st 4.5 in
  let nclauses = max 3 (int_of_float (float_of_int nvars *. ratio)) in
  (nvars, List.init nclauses (fun _ -> random_clause st nvars))

(* options that exercise every new mechanism on tiny instances *)
let fuzz_options = { Sat.default_options with Sat.o_reduce_init = 2 }

let model_satisfies s clauses =
  List.for_all (fun c -> List.exists (fun l -> Sat.lit_value s l) c) clauses

let cdcl_solve ~options ~nvars clauses =
  let s = Sat.create ~options () in
  for _ = 1 to nvars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) clauses;
  (s, Sat.solve s)

(* ------------------------------------------------------------------ *)

let test_fuzz_vs_dpll () =
  let st = Random.State.make [| 0x5a7b3 |] in
  let sat_n = ref 0 and unsat_n = ref 0 and reductions = ref 0 in
  for i = 1 to 500 do
    let nvars, clauses = random_instance st in
    let expected = Dpll.solve ~nvars clauses in
    let s, got = cdcl_solve ~options:fuzz_options ~nvars clauses in
    if got <> expected then
      Alcotest.failf "instance %d (%d vars, %d clauses): cdcl=%b dpll=%b" i nvars
        (List.length clauses) got expected;
    if got then begin
      incr sat_n;
      if not (model_satisfies s clauses) then
        Alcotest.failf "instance %d: model violates a clause" i;
      (* an incremental re-solve must agree and still carry a model *)
      Sat.backtrack s;
      if not (Sat.solve s) then Alcotest.failf "instance %d: re-solve flipped to unsat" i;
      if not (model_satisfies s clauses) then
        Alcotest.failf "instance %d: re-solve model violates a clause" i
    end
    else incr unsat_n;
    reductions := !reductions + (Sat.counters s).Sat.c_db_reductions
  done;
  (* the corpus must actually exercise both answers and the reducer *)
  Alcotest.(check bool) "found sat instances" true (!sat_n > 100);
  Alcotest.(check bool) "found unsat instances" true (!unsat_n > 100);
  Alcotest.(check bool) "db reductions fired" true (!reductions > 0)

(* same corpus, every optimisation disabled — localizes a fuzz failure
   to the new mechanisms if only one of the two tests breaks *)
let test_fuzz_plain () =
  let st = Random.State.make [| 0x5a7b3 |] in
  let plain =
    {
      Sat.o_phase_saving = false;
      o_target_phase = false;
      o_reduce_db = false;
      o_minimise = false;
      o_reduce_init = max_int;
    }
  in
  for i = 1 to 200 do
    let nvars, clauses = random_instance st in
    let expected = Dpll.solve ~nvars clauses in
    let s, got = cdcl_solve ~options:plain ~nvars clauses in
    if got <> expected then
      Alcotest.failf "instance %d: plain cdcl=%b dpll=%b" i got expected;
    if got && not (model_satisfies s clauses) then
      Alcotest.failf "instance %d: plain model violates a clause" i
  done

(* Regression: models read after [reduce_db] has deleted learnt
   clauses must still satisfy every original clause.  Satisfiable
   random instances rarely conflict enough on their own for the
   reducer to fire before the first model, so models are enumerated on
   a persistent solver (blocking each one over a fixed variable
   window) — the accumulating learnt database then crosses the tiny
   reduction limit while later models must remain sound. *)
let test_model_survives_reduction () =
  let st = Random.State.make [| 0xbeef1 |] in
  let exercised = ref 0 and attempts = ref 0 in
  while !exercised < 20 && !attempts < 600 do
    incr attempts;
    let nvars = 14 + Random.State.int st 8 in
    let nclauses = int_of_float (float_of_int nvars *. 3.5) in
    let clauses = List.init nclauses (fun _ -> random_clause st nvars) in
    let s, got = cdcl_solve ~options:fuzz_options ~nvars clauses in
    if got then begin
      (* enumerate models, blocking each over the first 8 variables *)
      let window = min 8 nvars in
      let models = ref 0 and more = ref true in
      while !more && !models < 300 do
        incr models;
        if not (model_satisfies s clauses) then
          Alcotest.failf
            "attempt %d, model %d: violates a clause (after %d reductions)" !attempts
            !models (Sat.counters s).Sat.c_db_reductions;
        let blocking =
          List.init window (fun v -> if Sat.value s v then Sat.neg v else Sat.pos v)
        in
        Sat.backtrack s;
        Sat.add_clause s blocking;
        more := Sat.solve s
      done;
      if (Sat.counters s).Sat.c_db_reductions > 0 then incr exercised
    end
  done;
  if !exercised < 20 then
    Alcotest.failf "reduce_db rarely exercised: %d/%d attempts" !exercised !attempts

(* Deterministic pigeonhole instance (n+1 pigeons, n holes): unsat,
   conflict-heavy, and with o_reduce_init = 2 it guarantees reductions
   and minimisation activity on a fixed input. *)
let test_pigeonhole () =
  let pigeons = 6 and holes = 5 in
  let s = Sat.create ~options:fuzz_options () in
  let var = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (List.init holes (fun h -> Sat.pos var.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for q = p + 1 to pigeons - 1 do
        Sat.add_clause s [ Sat.neg var.(p).(h); Sat.neg var.(q).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php unsat" false (Sat.solve s);
  let c = Sat.counters s in
  Alcotest.(check bool) "conflicts occurred" true (c.Sat.c_conflicts > 0);
  Alcotest.(check bool) "reductions occurred" true (c.Sat.c_db_reductions > 0)

let () =
  Alcotest.run "sat"
    [
      ( "fuzz",
        [
          Alcotest.test_case "cdcl-vs-dpll-500" `Quick test_fuzz_vs_dpll;
          Alcotest.test_case "cdcl-plain-vs-dpll" `Quick test_fuzz_plain;
        ] );
      ( "reduce_db",
        [
          Alcotest.test_case "model-survives-reduction" `Quick
            test_model_survives_reduction;
          Alcotest.test_case "pigeonhole-reduces" `Quick test_pigeonhole;
        ] );
    ]
