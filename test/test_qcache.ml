(* Query-cache tests: support sets, independence slicing, the cache
   layers (SAT subsumption, model reuse, UNSAT supersets, syntactic
   witnesses), cross-run stores, and the end-to-end guarantee that
   caching never changes the emitted test suite.

   The two property tests mirror the soundness obligations of the
   slicer:
   - [Expr.support] must agree with a naive free-symbol walk (the
     union-find is only as good as the supports it links);
   - partitioning a path condition into independence components must
     preserve satisfiability: the conjunction is SAT iff every
     component's conjunction is SAT. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Solver = Smt.Solver
module Qcache = Smt.Qcache
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime
module Testspec = Testgen.Testspec
module Randprog = Progzoo.Randprog

let v1model = Targets.V1model.target
let ctx = Expr.create_ctx ()

(* ------------------------------------------------------------------ *)
(* Property: support agrees with a naive recursive walk *)

let naive_support (e : Expr.t) : int array =
  let acc = Hashtbl.create 16 in
  let rec go (e : Expr.t) =
    match e.Expr.node with
    | Expr.Const _ -> ()
    | Expr.Var v -> Hashtbl.replace acc (Expr.sym_of_var v) ()
    | Expr.Taint id -> Hashtbl.replace acc (Expr.sym_of_taint id) ()
    | Expr.Not a -> go a
    | Expr.And (a, b)
    | Expr.Or (a, b)
    | Expr.Xor (a, b)
    | Expr.Add (a, b)
    | Expr.Sub (a, b)
    | Expr.Mul (a, b)
    | Expr.Udiv (a, b)
    | Expr.Urem (a, b)
    | Expr.Concat (a, b)
    | Expr.Eq (a, b)
    | Expr.Ult (a, b)
    | Expr.Slt (a, b)
    | Expr.Shl (a, b)
    | Expr.Lshr (a, b)
    | Expr.Ashr (a, b) ->
        go a;
        go b
    | Expr.Slice (a, _, _) -> go a
    | Expr.Ite (c, t, f) ->
        go c;
        go t;
        go f
  in
  go e;
  let syms = Array.of_seq (Hashtbl.to_seq_keys acc) in
  Array.sort compare syms;
  syms

(* random width-8 terms over three vars and a couple of taints (the
   smart constructors may fold taints away, which is fine — the naive
   walk sees the same folded term) *)
let gen_term =
  let open QCheck.Gen in
  let width = 8 in
  fix
    (fun self depth ->
      let leaf =
        oneof
          [
            (int_range 0 255 >|= fun n -> Expr.of_int ctx ~width n);
            oneofl
              [
                Expr.var ctx "qx" width; Expr.var ctx "qy" width; Expr.var ctx "qz" width;
              ];
            (int_range 0 1 >|= fun _ -> Expr.fresh_taint ctx width);
          ]
      in
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            map2 Expr.add sub sub;
            map2 Expr.logand sub sub;
            map2 Expr.logxor sub sub;
            map Expr.lognot sub;
            map2 Expr.mul sub sub;
            map3 (fun c a b -> Expr.ite (Expr.ult c a) a b) sub sub sub;
            map2
              (fun a b -> Expr.concat (Expr.slice a ~hi:3 ~lo:0) (Expr.slice b ~hi:7 ~lo:4))
              sub sub;
          ])
    3

let arb_term = QCheck.make ~print:Expr.to_string gen_term

let support_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"support agrees with naive walk" arb_term
       (fun e -> Expr.support e = naive_support e))

let support_memo_stable =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"support is memo-stable" arb_term (fun e ->
         Expr.support e == Expr.support e))

(* ------------------------------------------------------------------ *)
(* Property: slicing a path condition then conjoining the slices is
   equisatisfiable with the original conjunction *)

let sat_of conds =
  let s = Solver.create ctx in
  List.iter (Solver.assert_ s) conds;
  Solver.check s = Solver.Sat

(* width-1 conditions over a pool of vars; a var pool per component
   candidate keeps genuinely independent groups frequent *)
let gen_conds =
  let open QCheck.Gen in
  let cond pool =
    let v = oneofl pool in
    oneof
      [
        map2 (fun a n -> Expr.eq a (Expr.of_int ctx ~width:8 n)) v (int_range 0 255);
        map2 (fun a n -> Expr.ult a (Expr.of_int ctx ~width:8 n)) v (int_range 1 255);
        map2 (fun a b -> Expr.eq (Expr.add a b) (Expr.of_int ctx ~width:8 7)) v v;
        map2 (fun a n -> Expr.lognot (Expr.eq a (Expr.of_int ctx ~width:8 n))) v
          (int_range 0 255);
      ]
  in
  let pool tag =
    List.init 3 (fun i -> Expr.var ctx (Printf.sprintf "qc_%s%d" tag i) 8)
  in
  let* a = list_size (int_range 0 4) (cond (pool "a")) in
  let* b = list_size (int_range 0 4) (cond (pool "b")) in
  let* c = list_size (int_range 0 4) (cond (pool "c")) in
  return (a @ b @ c)

let slicing_equisat_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"slice-then-conjoin equisatisfiable"
       (QCheck.make
          ~print:(fun cs -> String.concat " /\\ " (List.map Expr.to_string cs))
          gen_conds)
       (fun conds ->
         let comps = Qcache.components conds in
         List.length (List.concat comps) = List.length conds
         && sat_of conds = List.for_all sat_of comps))

(* the same property over *real* path conditions: every frontier
   prefix of an exploration carries the recorded branch conditions of
   a feasible path, and fuzzed programs vary their shape *)
let test_randprog_path_slices () =
  List.iter
    (fun seed ->
      let gen = Randprog.generate_for ~arch:Randprog.V1model ~seed in
      let p = Oracle.prepare v1model gen.Randprog.src in
      let config = { Explore.default_config with Explore.split_tasks = 4 } in
      let fr = Explore.frontier ~config p.Oracle.ctx (Oracle.initial_state p) in
      List.iteri
        (fun k (prefix, _) ->
          if k < 4 then begin
            let reg = Obs.Registry.create () in
            let tctx, st0 = Oracle.fresh_instance p reg in
            let st = Explore.replay_prefix tctx st0 prefix in
            let conds = st.Runtime.path_cond in
            let ectx = tctx.Runtime.ectx in
            let sat cs =
              let s = Solver.create ectx in
              List.iter (Solver.assert_ s) cs;
              Solver.check s = Solver.Sat
            in
            let comps = Qcache.components conds in
            Alcotest.(check int)
              (Printf.sprintf "seed %d prefix %d: partition covers" seed k)
              (List.length conds)
              (List.length (List.concat comps));
            Alcotest.(check bool)
              (Printf.sprintf "seed %d prefix %d: equisatisfiable" seed k)
              (sat conds)
              (List.for_all sat comps);
            (* an infeasible variant: negating one condition must keep
               the property (the broken component answers Unsat) *)
            match conds with
            | c0 :: rest when Expr.width c0 = 1 ->
                let neg = Expr.lognot c0 :: c0 :: rest in
                Alcotest.(check bool)
                  (Printf.sprintf "seed %d prefix %d: unsat variant" seed k)
                  (sat neg)
                  (List.for_all sat (Qcache.components neg))
            | _ -> ()
          end)
        fr)
    [ 1; 7; 23 ]

(* ------------------------------------------------------------------ *)
(* Cache-layer unit tests *)

let counters reg =
  let s = Obs.Registry.snapshot reg in
  ( Obs.Snapshot.get_int s "qcache.subsumed",
    Obs.Snapshot.get_int s "qcache.model_hits",
    Obs.Snapshot.get_int s "qcache.unsat_hits",
    Obs.Snapshot.get_int s "qcache.solver_checks_avoided" )

let test_unsat_replay () =
  (* an UNSAT slice recorded once answers the same question for free,
     both in this cache and — via the store — in a later one *)
  let ectx = Expr.create_ctx () in
  let x = Expr.var ectx "ux" 8 and y = Expr.var ectx "uy" 8 in
  let n k = Expr.of_int ectx ~width:8 k in
  let store = Qcache.create_store () in
  let reg = Obs.Registry.create () in
  let q = Qcache.create ~obs:reg ~store () in
  Qcache.assert_base q (Expr.eq x (n 3));
  Qcache.push q (Expr.ult y (n 10));
  (* x = 3 ∧ x = 5 is unsat, and no derived/constant witness exists *)
  let c = Expr.eq x (n 5) in
  Alcotest.(check bool) "first ask misses" true (Qcache.check q c = Qcache.Unknown);
  Qcache.note_unsat q;
  Alcotest.(check bool) "repeat ask hits" true (Qcache.check q c = Qcache.Unsat_hit);
  let _, _, uh, _ = counters reg in
  Alcotest.(check int) "unsat_hits counted" 1 uh;
  (* a superset slice (same pair plus more of the component) also hits *)
  Qcache.push q (Expr.ult x (n 100));
  Alcotest.(check bool) "superset slice hits" true (Qcache.check q c = Qcache.Unsat_hit);
  Qcache.publish q;
  Alcotest.(check bool) "store holds published entries" true
    (Qcache.store_entries store > 0);
  (* a second run over the same program state: seeded, answers without
     any solver interaction *)
  let q2 = Qcache.create ~obs:(Obs.Registry.create ()) ~store () in
  Qcache.assert_base q2 (Expr.eq x (n 3));
  Alcotest.(check bool) "fresh cache seeded from store" true
    (Qcache.check q2 c = Qcache.Unsat_hit)

let test_model_and_subsumption () =
  let ectx = Expr.create_ctx () in
  let x = Expr.var ectx "mx" 8 and y = Expr.var ectx "my" 8 in
  let n k = Expr.of_int ectx ~width:8 k in
  let reg = Obs.Registry.create () in
  let q = Qcache.create ~obs:reg () in
  (* a real probe check: x = 77 is sat; harvest the solver model *)
  let s = Solver.create ectx in
  Qcache.assert_base q (Expr.eq x (n 77));
  Solver.assert_ s (Expr.eq x (n 77));
  Alcotest.(check bool) "probe sat" true (Solver.check s = Solver.Sat);
  Qcache.note_model q (Solver.capture_model s);
  (* the captured model (x=77, y free=0) satisfies x > 50 *)
  Alcotest.(check bool) "model answers a new question" true
    (Qcache.check q (Expr.ugt x (n 50)) = Qcache.Sat_hit);
  let _, mh, _, _ = counters reg in
  Alcotest.(check bool) "model_hits counted" true (mh >= 1);
  (* the model-hit recorded the slice as a SAT set: the identical
     question now short-circuits at the subsumption layer *)
  Alcotest.(check bool) "repeat hits subsumption" true
    (Qcache.check q (Expr.ugt x (n 50)) = Qcache.Sat_hit);
  let sub, _, _, _ = counters reg in
  Alcotest.(check bool) "subsumed counted" true (sub >= 1);
  (* a condition over an unrelated variable: the slice is {c} alone,
     and the syntactic witness finder answers without a model *)
  Alcotest.(check bool) "independent key match" true
    (Qcache.check q (Expr.eq y (n 123)) = Qcache.Sat_hit)

let test_clone_carries_facts () =
  let ectx = Expr.create_ctx () in
  let x = Expr.var ectx "cx" 8 in
  let n k = Expr.of_int ectx ~width:8 k in
  let q = Qcache.create () in
  Qcache.assert_base q (Expr.eq x (n 3));
  let c = Expr.eq x (n 5) in
  Alcotest.(check bool) "miss" true (Qcache.check q c = Qcache.Unknown);
  Qcache.note_unsat q;
  let q2 = Qcache.clone q in
  Qcache.assert_base q2 (Expr.eq x (n 3));
  Alcotest.(check bool) "clone knows the unsat slice" true
    (Qcache.check q2 c = Qcache.Unsat_hit)

let test_components_unit () =
  let ectx = Expr.create_ctx () in
  let a = Expr.var ectx "ka" 8 and b = Expr.var ectx "kb" 8 and c = Expr.var ectx "kc" 8 in
  let n k = Expr.of_int ectx ~width:8 k in
  let c1 = Expr.eq a (n 1) in
  let c2 = Expr.eq b (n 2) in
  let c3 = Expr.ult c (n 9) in
  let bridge = Expr.eq (Expr.add a b) (n 3) in
  (match Qcache.components [ c1; c2; c3 ] with
  | [ [ x1 ]; [ x2 ]; [ x3 ] ] ->
      Alcotest.(check bool) "three singletons, order kept" true
        (x1 == c1 && x2 == c2 && x3 == c3)
  | l -> Alcotest.failf "expected three singletons, got %d groups" (List.length l));
  match Qcache.components [ c1; c2; c3; bridge ] with
  | [ g1; [ x3 ] ] ->
      Alcotest.(check int) "bridge merges a and b groups" 3 (List.length g1);
      Alcotest.(check bool) "c stays alone" true (x3 == c3)
  | l -> Alcotest.failf "expected two groups, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* End-to-end: caching never changes the emitted suite *)

let suite_of config src =
  let run = Oracle.generate ~config v1model src in
  ( List.map Testspec.to_string run.Oracle.result.Explore.tests,
    Obs.Snapshot.get_int
      (Obs.Registry.snapshot (Oracle.registry run))
      "solver.checks" )

let test_bit_identity () =
  List.iter
    (fun src ->
      let on, c_on = suite_of Explore.default_config src in
      let off, c_off =
        suite_of { Explore.default_config with Explore.query_cache = false } src
      in
      Alcotest.(check (list string)) "suite identical cache on/off" off on;
      Alcotest.(check bool) "cache did not add checks" true (c_on <= c_off))
    [ Progzoo.Corpus.lpm_router; Progzoo.Corpus.fig1a ]

let test_parallel_bit_identity () =
  let cfg pj =
    { Explore.default_config with Explore.path_jobs = pj; split_tasks = 6 }
  in
  let t1, _ = suite_of (cfg 1) Progzoo.Corpus.lpm_router in
  let t4, _ = suite_of (cfg 4) Progzoo.Corpus.lpm_router in
  Alcotest.(check (list string)) "cache on: pj1 = pj4" t1 t4

let () =
  Alcotest.run "qcache"
    [
      ( "support",
        [
          support_prop;
          support_memo_stable;
        ] );
      ( "slicing",
        [
          slicing_equisat_prop;
          Alcotest.test_case "components unit" `Quick test_components_unit;
          Alcotest.test_case "randprog path conditions" `Quick
            test_randprog_path_slices;
        ] );
      ( "layers",
        [
          Alcotest.test_case "unsat replay + store" `Quick test_unsat_replay;
          Alcotest.test_case "model + subsumption" `Quick test_model_and_subsumption;
          Alcotest.test_case "clone carries facts" `Quick test_clone_carries_facts;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "bit-identical on/off" `Quick test_bit_identity;
          Alcotest.test_case "bit-identical across path-jobs" `Quick
            test_parallel_bit_identity;
        ] );
    ]
