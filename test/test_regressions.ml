(* Regression corpus and mutation coverage.

   Every program under [corpus/regressions/] was once a campaign
   failure (auto-reduced, or hand-minimized from one): each must keep
   validating — the oracle's full suite passes on the pristine
   concrete model — so the bug it exposed stays fixed.  The mutation
   test asserts the generated suites kill every fault in the
   {!Sim.Mutation} catalogue. *)

module Campaign = Selftest.Campaign
module Mutscore = Selftest.Mutscore

(* cwd is the test directory under [dune runtest], the repo root under
   [dune exec] *)
let corpus_dir =
  let local = Filename.concat "corpus" "regressions" in
  if Sys.file_exists local then local else Filename.concat "test" local

let regression_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".p4")
  |> List.sort compare

(* repro headers carry their architecture as a comment: [// arch: tna] *)
let arch_of_file path =
  let ic = open_in path in
  let arch = ref None in
  (try
     while !arch = None do
       let line = input_line ic in
       let prefix = "// arch: " in
       if String.length line > String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
       then
         arch :=
           Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
     done
   with End_of_file -> ());
  close_in ic;
  match !arch with
  | Some a -> String.trim a
  | None -> Alcotest.failf "%s: missing '// arch:' header" path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let revalidate file () =
  let path = Filename.concat corpus_dir file in
  let arch = arch_of_file path in
  let src = read_file path in
  match
    Campaign.run_pipeline ~fault:Sim.Mutation.No_fault ~arch ~seed:3 ~max_tests:12 src
  with
  | Campaign.All_pass n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: oracle generated tests" file)
        true (n > 0)
  | Campaign.Diff (kind, detail) ->
      Alcotest.failf "%s (%s): regressed: %s: %s" file arch kind detail

let test_corpus_nonempty () =
  Alcotest.(check bool) "committed regression corpus exists" true
    (List.length (regression_files ()) >= 2)

(* every catalogued simulator fault must be killed by the suites the
   oracle generates for the trigger programs *)
let test_mutation_coverage () =
  let results = Mutscore.score () in
  let missed =
    Mutscore.undetected results
    |> List.map (fun ((m : Sim.Mutation.t), _) -> m.Sim.Mutation.m_label)
  in
  Alcotest.(check (list string)) "all faults killed" [] missed;
  Alcotest.(check int) "whole catalogue scored" (List.length Sim.Mutation.corpus)
    (List.length results)

let () =
  Alcotest.run "regressions"
    [
      ( "corpus",
        Alcotest.test_case "corpus is non-empty" `Quick test_corpus_nonempty
        :: List.map
             (fun f -> Alcotest.test_case f `Quick (revalidate f))
             (regression_files ()) );
      ( "mutation",
        [ Alcotest.test_case "catalogue coverage" `Slow test_mutation_coverage ] );
    ]
