(* Telemetry subsystem tests: metric-cell semantics, span recording,
   snapshot algebra (merge associativity, diff deltas), the Chrome
   trace exporter, and the batch driver's scheduling-independent
   counter merge. *)

module Oracle = Testgen.Oracle
module Explore = Testgen.Explore

let test_counter_and_gauge () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "c" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Obs.Counter.value c);
  (* interning: the same name resolves to the same cell *)
  Obs.Counter.incr (Obs.Registry.counter reg "c");
  Alcotest.(check int) "interned by name" 6 (Obs.Counter.value c);
  let g = Obs.Registry.gauge reg "g" in
  Obs.Gauge.set g 7;
  Obs.Gauge.set_max g 3;
  Alcotest.(check int) "set_max below keeps" 7 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 11;
  Alcotest.(check int) "set_max above raises" 11 (Obs.Gauge.value g)

let test_timer () =
  let reg = Obs.Registry.create () in
  let t = Obs.Registry.timer reg "t" in
  Obs.Timer.add t 0.25;
  let x = Obs.Timer.time t (fun () -> 42) in
  Alcotest.(check int) "thunk result" 42 x;
  Alcotest.(check bool) "duration accumulated" true (Obs.Timer.value t >= 0.25);
  Alcotest.check_raises "negative addition rejected"
    (Invalid_argument "Obs.Timer.add: negative duration") (fun () ->
      Obs.Timer.add t (-1.0));
  (* timing a raising thunk still records and re-raises *)
  let before = Obs.Timer.value t in
  (try Obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "recorded on exception" true (Obs.Timer.value t >= before)

let test_kind_mismatch () =
  let reg = Obs.Registry.create () in
  ignore (Obs.Registry.counter reg "m");
  Alcotest.(check bool) "re-registering as timer raises" true
    (try
       ignore (Obs.Registry.timer reg "m");
       false
     with Invalid_argument _ -> true)

let test_spans () =
  let reg = Obs.Registry.create () in
  Obs.Span.with_ reg "outer" (fun () ->
      Obs.Span.with_ reg ~args:[ ("k", "v") ] "inner" (fun () -> ()));
  (match Obs.Registry.spans reg with
  | [ ("outer", d_out, 0); ("inner", d_in, 1) ]
  | [ ("inner", d_in, 1); ("outer", d_out, 0) ] ->
      Alcotest.(check bool) "nested duration fits" true
        (d_in >= 0.0 && d_out >= d_in)
  | spans ->
      Alcotest.failf "unexpected spans: %s"
        (String.concat ";" (List.map (fun (n, _, d) -> Printf.sprintf "%s@%d" n d) spans)));
  (* a raising body still closes the span *)
  (try Obs.Span.with_ reg "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 3
    (List.length (Obs.Registry.spans reg))

let snap metrics =
  let reg = Obs.Registry.create () in
  List.iter
    (fun (name, v) ->
      match v with
      | `C n -> Obs.Counter.add (Obs.Registry.counter reg name) n
      | `G n -> Obs.Gauge.set (Obs.Registry.gauge reg name) n
      | `T s -> Obs.Timer.add (Obs.Registry.timer reg name) s)
    metrics;
  Obs.Registry.snapshot reg

let test_merge () =
  let a = snap [ ("c", `C 2); ("g", `G 5); ("t", `T 1.0) ] in
  let b = snap [ ("c", `C 3); ("g", `G 4); ("x", `C 7) ] in
  let m = Obs.Snapshot.merge a b in
  Alcotest.(check int) "counters sum" 5 (Obs.Snapshot.get_int m "c");
  Alcotest.(check int) "gauges max" 5 (Obs.Snapshot.get_int m "g");
  Alcotest.(check int) "one-sided kept" 7 (Obs.Snapshot.get_int m "x");
  Alcotest.(check (float 1e-9)) "timers sum" 1.0 (Obs.Snapshot.get_float m "t");
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Obs.Snapshot.merge (snap [ ("m", `C 1) ]) (snap [ ("m", `T 1.0) ]));
       false
     with Invalid_argument _ -> true)

let test_merge_associative_commutative () =
  let a = snap [ ("c", `C 1); ("g", `G 9) ]
  and b = snap [ ("c", `C 2); ("t", `T 0.5) ]
  and c = snap [ ("g", `G 3); ("t", `T 0.25); ("c", `C 4) ] in
  let l = Obs.Snapshot.to_list in
  let ( + ) = Obs.Snapshot.merge in
  Alcotest.(check bool) "associative" true (l ((a + b) + c) = l (a + (b + c)));
  Alcotest.(check bool) "commutative" true (l (a + b) = l (b + a));
  Alcotest.(check bool) "empty is neutral" true
    (l (a + Obs.Snapshot.empty) = l a)

let test_diff () =
  let before = snap [ ("c", `C 2); ("g", `G 5); ("t", `T 1.0) ] in
  let after = snap [ ("c", `C 9); ("g", `G 4); ("t", `T 2.5); ("new", `C 3) ] in
  let d = Obs.Snapshot.diff after before in
  Alcotest.(check int) "counter delta" 7 (Obs.Snapshot.get_int d "c");
  Alcotest.(check int) "gauge keeps after" 4 (Obs.Snapshot.get_int d "g");
  Alcotest.(check (float 1e-9)) "timer delta" 1.5 (Obs.Snapshot.get_float d "t");
  Alcotest.(check int) "absent-before counts from zero" 3
    (Obs.Snapshot.get_int d "new")

let test_counters_and_json () =
  let s = snap [ ("b", `C 2); ("a", `T 0.5); ("c", `G 1) ] in
  Alcotest.(check (list (pair string int))) "only counters, sorted"
    [ ("b", 2) ] (Obs.Snapshot.counters s);
  let j = Obs.Snapshot.to_json s in
  Alcotest.(check bool) "json has names" true
    (String.length j > 0 && j.[0] = '{'
    && List.for_all
         (fun sub ->
           let rec has i =
             i + String.length sub <= String.length j
             && (String.sub j i (String.length sub) = sub || has (i + 1))
           in
           has 0)
         [ "\"a\""; "\"b\""; "\"c\"" ])

let contains s sub =
  let rec go i =
    i + String.length sub <= String.length s
    && (String.sub s i (String.length sub) = sub || go (i + 1))
  in
  go 0

let test_chrome_trace () =
  let reg = Obs.Registry.create () in
  Obs.Span.with_ reg "prepare" (fun () -> Obs.Span.with_ reg "parse" (fun () -> ()));
  Obs.Counter.add (Obs.Registry.counter reg "sat.decisions") 12;
  let file = Filename.temp_file "obs_trace" ".json" in
  Out_channel.with_open_text file (fun oc ->
      Obs.Trace.write_chrome oc [ ("prog.p4", reg) ]);
  let body = In_channel.with_open_text file In_channel.input_all in
  Sys.remove file;
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " present") true (contains body sub))
    [
      "\"traceEvents\"";
      "\"prepare\"";
      "\"parse\"";
      "\"sat.decisions\"";
      "\"ph\":\"X\"";
      "\"ph\":\"C\"";
      "\"prog.p4\"";
    ]

(* ------------------------------------------------------------------ *)
(* end to end: a run's registry carries every layer's metrics, and the
   batch merge is scheduling independent *)

let test_run_registry_populated () =
  let run = Oracle.generate Targets.V1model.target Progzoo.Corpus.fig1a in
  let s = Obs.Registry.snapshot (Oracle.registry run) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " > 0") true (Obs.Snapshot.get_int s name > 0))
    [ "explore.paths"; "explore.tests"; "solver.checks"; "sat.decisions"; "sat.propagations" ];
  Alcotest.(check bool) "solver time recorded" true
    (Obs.Snapshot.get_float s "solver.time" > 0.0);
  let span_names = List.map (fun (n, _, _) -> n) (Obs.Registry.spans (Oracle.registry run)) in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("span " ^ n) true (List.mem n span_names))
    [ "prepare"; "parse"; "passes"; "explore"; "path" ]

let batch_counters jobs =
  let job src label =
    Oracle.job ~label Targets.V1model.target src
  in
  let js =
    [
      job Progzoo.Corpus.fig1a "fig1a";
      job Progzoo.Corpus.fig1b "fig1b";
      job Progzoo.Corpus.lpm_router "lpm";
      job Progzoo.Corpus.mpls_stack "mpls";
    ]
  in
  let b = Oracle.generate_batch ~jobs js in
  List.iter
    (fun (label, o) ->
      match o with
      | Oracle.Finished _ -> ()
      | Oracle.Failed m -> Alcotest.failf "%s failed: %s" label m)
    b.Oracle.outcomes;
  Obs.Snapshot.counters b.Oracle.merged_obs

let test_batch_merge_scheduling_independent () =
  let c1 = batch_counters 1 and c4 = batch_counters 4 in
  Alcotest.(check (list (pair string int))) "jobs=1 = jobs=4 counter totals" c1 c4;
  Alcotest.(check bool) "counters non-trivial" true
    (List.exists (fun (n, v) -> n = "sat.decisions" && v > 0) c1)

let () =
  Alcotest.run "obs"
    [
      ( "cells",
        [
          Alcotest.test_case "counter + gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "spans" `Quick test_spans;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "merge algebra" `Quick test_merge_associative_commutative;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "counters + json" `Quick test_counters_and_json;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace" `Quick test_chrome_trace ] );
      ( "integration",
        [
          Alcotest.test_case "run registry populated" `Quick test_run_registry_populated;
          Alcotest.test_case "batch merge independent of jobs" `Quick
            test_batch_merge_scheduling_independent;
        ] );
    ]
