(* Concolic-execution tests (§5.4): checksum and hash externs must be
   bound to their real implementations in the emitted tests, and paths
   whose concolic constraints cannot be satisfied must be discarded
   rather than emitted flaky. *)

module Bits = Bitv.Bits
module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Testspec = Testgen.Testspec

let generate src = Oracle.generate Targets.V1model.target src

let wrap ~verify_body ~ingress_body =
  Printf.sprintf
    {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<16> h; bit<1> err; }
parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { %s } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply { %s }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}
    verify_body ingress_body

let test_hash_binding () =
  (* the hash result steers a branch; emitted tests must carry packets
     whose *recomputed* hash actually takes that branch *)
  let src =
    wrap ~verify_body:""
      ~ingress_body:
        {|
    hash(meta.h, HashAlgorithm.crc16, 16w0, {hdr.eth.dst, hdr.eth.src}, 16w256);
    if (meta.h[0:0] == 1) {
      sm.egress_spec = 2;
    } else {
      sm.egress_spec = 3;
    }
|}
  in
  let run = generate src in
  let tests = run.Oracle.result.Explore.tests in
  let checked = ref 0 in
  List.iter
    (fun (t : Testspec.t) ->
      if Bits.width (Testspec.input t).data = 112 then begin
        let data = Bits.slice (Testspec.input t).data ~hi:111 ~lo:16 in
        let h =
          Bits.to_int (Bits.urem (Bits.zext (Targets.Checksums.crc16 data) 16)
                         (Bits.of_int ~width:16 256))
        in
        let expected_port = if h land 1 = 1 then 2 else 3 in
        match (Testspec.outputs t) with
        | [ o ] ->
            incr checked;
            Alcotest.(check int) "port consistent with recomputed hash" expected_port
              (Bits.to_int o.port)
        | _ -> Alcotest.fail "expected one output"
      end)
    tests;
  (* both branches must be exercised *)
  Alcotest.(check bool) "both hash branches covered" true (!checked >= 2);
  let ports =
    List.filter_map
      (fun (t : Testspec.t) ->
        match (Testspec.outputs t) with [ o ] -> Some (Bits.to_int o.port) | _ -> None)
      tests
  in
  Alcotest.(check bool) "port 2 reached" true (List.mem 2 ports);
  Alcotest.(check bool) "port 3 reached" true (List.mem 3 ports)

let test_verify_checksum_constant_reference_infeasible () =
  (* §5.4, "handling unsatisfiable concolic assignments": when the
     reference value is a constant that no input data hashes to along
     the path, the checksum-ok branch must be discarded, not emitted *)
  let src =
    wrap
      ~verify_body:
        {|
    meta.err = verify_checksum(hdr.eth.isValid(), {hdr.eth.dst, hdr.eth.src},
                               16w0xFFFF, HashAlgorithm.csum16);
|}
      ~ingress_body:
        {|
    if (meta.err == 1) {
      mark_to_drop(sm);
    } else {
      sm.egress_spec = 2;
    }
|}
  in
  (* csum16(x) = 0xFFFF holds exactly when the folded sum is 0, e.g.
     the all-zero input: the ok branch IS feasible here, and the
     emitted test must carry data whose checksum really is 0xFFFF *)
  let run = generate src in
  let oks =
    List.filter
      (fun (t : Testspec.t) ->
        (not (Testspec.is_drop t)) && Bits.width (Testspec.input t).data = 112)
      run.Oracle.result.Explore.tests
  in
  List.iter
    (fun (t : Testspec.t) ->
      let data = Bits.slice (Testspec.input t).data ~hi:111 ~lo:16 in
      Alcotest.(check string) "data checksums to 0xFFFF" "FFFF"
        (Bits.to_hex (Targets.Checksums.csum16 data)))
    oks

let test_update_checksum_in_output () =
  (* the deparsed packet must carry the checksum of the *final* header
     contents (TTL already decremented) *)
  let run = generate Progzoo.Corpus.ipv4_checksum in
  let fwd =
    List.filter
      (fun (t : Testspec.t) -> not (Testspec.is_drop t))
      run.Oracle.result.Explore.tests
  in
  Alcotest.(check bool) "forwarding tests exist" true (fwd <> []);
  List.iter
    (fun (t : Testspec.t) ->
      let o = List.hd (Testspec.outputs t) in
      let w = Bits.width o.data in
      if w >= 112 + 160 then begin
        (* ipv4 header is the 160 bits after ethernet *)
        let ip = Bits.slice o.data ~hi:(w - 113) ~lo:(w - 272) in
        let before = Bits.slice ip ~hi:159 ~lo:80 in
        let after = Bits.slice ip ~hi:63 ~lo:0 in
        let carried = Bits.slice ip ~hi:79 ~lo:64 in
        let recomputed = Targets.Checksums.csum16 (Bits.concat before after) in
        Alcotest.(check string) "output checksum correct" (Bits.to_hex recomputed)
          (Bits.to_hex carried)
      end)
    fwd

let test_dependent_concolic_calls () =
  (* a hash of a hash: calls must be bound oldest-first *)
  let src =
    wrap ~verify_body:""
      ~ingress_body:
        {|
    hash(meta.h, HashAlgorithm.crc16, 16w0, {hdr.eth.dst}, 16w0);
    hash(hdr.eth.etype, HashAlgorithm.crc16, 16w0, {meta.h}, 16w0);
    sm.egress_spec = 4;
|}
  in
  let run = generate src in
  let fwd =
    List.filter
      (fun (t : Testspec.t) ->
        (not (Testspec.is_drop t)) && Bits.width (Testspec.input t).data = 112)
      run.Oracle.result.Explore.tests
  in
  Alcotest.(check bool) "tests exist" true (fwd <> []);
  List.iter
    (fun (t : Testspec.t) ->
      let o = List.hd (Testspec.outputs t) in
      let dst = Bits.slice (Testspec.input t).data ~hi:111 ~lo:64 in
      let h1 = Bits.zext (Targets.Checksums.crc16 dst) 16 in
      let h2 = Bits.zext (Targets.Checksums.crc16 h1) 16 in
      Alcotest.(check string) "chained hashes" (Bits.to_hex h2)
        (Bits.to_hex (Bits.slice o.data ~hi:15 ~lo:0)))
    fwd

let () =
  Alcotest.run "concolic"
    [
      ( "externs",
        [
          Alcotest.test_case "hash branch binding" `Quick test_hash_binding;
          Alcotest.test_case "constant reference" `Quick
            test_verify_checksum_constant_reference_infeasible;
          Alcotest.test_case "update_checksum output" `Quick test_update_checksum_in_output;
          Alcotest.test_case "dependent calls" `Quick test_dependent_concolic_calls;
        ] );
    ]
