#!/bin/sh
# Serve smoke test: start the daemon, send a cold then a warm request
# for the same program, and check the warm one is a pure cache hit
# (serve.cache_hits bumped, zero prepare time).  Exercises the full
# socket path the way CI exercises generate: end to end, no mocks.
set -eu

# run the built binary directly: `dune exec` holds the build lock for
# the lifetime of the daemon, which would deadlock every client below
if [ -z "${P4TESTGEN:-}" ]; then
  dune build bin/p4testgen.exe
  P4TESTGEN="./_build/default/bin/p4testgen.exe"
fi
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
PROG="$WORK/fig1a.p4"
trap 'status=$?; kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"; exit $status' EXIT INT TERM

cat > "$PROG" <<'EOF'
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
  action noop() { }
  action set_out(bit<9> port) {
    meta.output_port = port;
    sm.egress_spec = port;
  }
  table forward_table {
    key = { h.eth.etype : exact @name("etype"); }
    actions = { noop; set_out; }
    default_action = noop();
  }
  apply {
    h.eth.etype = 0xBEEF;
    forward_table.apply();
  }
}
control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
EOF

echo "== starting daemon on $SOCK"
$P4TESTGEN serve --listen "unix:$SOCK" --workers 1 &
SERVE_PID=$!

# wait for the socket to answer a ping
ready=0
for _ in $(seq 1 100); do
  if $P4TESTGEN client --connect "unix:$SOCK" --ping >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.05
done
[ "$ready" = 1 ] || { echo "FAIL: daemon never became ready"; exit 1; }

echo "== cold request"
$P4TESTGEN client --connect "unix:$SOCK" --metrics --print-tests "$PROG" \
  | tee "$WORK/cold.out"
grep -q '^cache_hit false$' "$WORK/cold.out" \
  || { echo "FAIL: cold request must be a cache miss"; exit 1; }
if grep -q '^prep_seconds 0\.000000$' "$WORK/cold.out"; then
  echo "FAIL: cold request must spend prepare time"
  exit 1
fi

echo "== warm request"
$P4TESTGEN client --connect "unix:$SOCK" --metrics --print-tests "$PROG" \
  | tee "$WORK/warm.out"
grep -q '^cache_hit true$' "$WORK/warm.out" \
  || { echo "FAIL: warm request must be a cache hit"; exit 1; }
grep -q '^prep_seconds 0\.000000$' "$WORK/warm.out" \
  || { echo "FAIL: warm request must skip preparation"; exit 1; }
grep -q '"serve.cache_hits":1' "$WORK/warm.out" \
  || { echo "FAIL: warm obs snapshot must show serve.cache_hits = 1"; exit 1; }

# cold and warm must generate the same tests
awk '/^-- test/{on=1} /^tests /{on=0} on' "$WORK/cold.out" > "$WORK/cold.tests"
awk '/^-- test/{on=1} /^tests /{on=0} on' "$WORK/warm.out" > "$WORK/warm.tests"
cmp -s "$WORK/cold.tests" "$WORK/warm.tests" \
  || { echo "FAIL: warm tests differ from cold tests"; exit 1; }

echo "== shutdown"
$P4TESTGEN client --connect "unix:$SOCK" --shutdown
wait "$SERVE_PID"
[ ! -S "$SOCK" ] || { echo "FAIL: socket not unlinked on shutdown"; exit 1; }

echo "serve smoke: OK"
