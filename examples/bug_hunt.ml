(* The bug-finding workflow of §7 in miniature: generate tests once,
   then execute them against toolchains seeded with known fault classes
   (our laboratory stand-in for the 25 production bugs of Tbl. 2/3).

   Run with: dune exec examples/bug_hunt.exe *)

let () =
  print_endline "=== hunting toolchain bugs with generated tests ===\n";
  let program = Progzoo.Corpus.switch_action_run in
  let run = Testgen.Oracle.generate Targets.V1model.target program in
  let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
  Printf.printf "oracle generated %d tests for the switch/action_run program\n\n"
    (List.length tests);

  let hunt (m : Sim.Mutation.t) =
    match Sim.Harness.prepare ~fault:m.m_fault ~arch:"v1model" program with
    | exception Sim.Interp.Sim_crash msg ->
        Printf.printf "%-8s FOUND (toolchain crashed at load: %s)\n" m.m_label msg
    | sim ->
        let summary, results = Sim.Harness.run_suite sim tests in
        if summary.Sim.Harness.crashed > 0 then
          Printf.printf "%-8s FOUND as exception (%d/%d tests crash the model)\n" m.m_label
            summary.Sim.Harness.crashed summary.Sim.Harness.total
        else if summary.Sim.Harness.wrong > 0 then begin
          Printf.printf "%-8s FOUND as wrong code (%d/%d tests mismatch)\n" m.m_label
            summary.Sim.Harness.wrong summary.Sim.Harness.total;
          List.iter
            (fun ((t : Testgen.Testspec.t), v) ->
              match v with
              | Sim.Harness.Wrong_output msg ->
                  Printf.printf "         e.g. %s\n         on input %s\n" msg
                    (Bitv.Bits.to_hex (Testgen.Testspec.input t).data)
              | _ -> ())
            (match List.filter (fun (_, v) -> v <> Sim.Harness.Pass) results with
            | x :: _ -> [ x ]
            | [] -> [])
        end
        else Printf.printf "%-8s not exposed by this program's tests\n" m.m_label
  in
  print_endline "baseline (no fault): the suite must pass cleanly";
  let sim = Sim.Harness.prepare ~arch:"v1model" program in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Printf.printf "  %d/%d pass\n\n" summary.Sim.Harness.passed summary.Sim.Harness.total;

  print_endline "seeded faults:";
  List.iter hunt
    (List.filter
       (fun (m : Sim.Mutation.t) ->
         List.mem m.m_label [ "P4C-7"; "P4C-4"; "P4C-8"; "TOF-16" ])
       Sim.Mutation.corpus);
  print_endline "\nrun `dune exec bench/main.exe -- table2` for the full 25-fault campaign"
