(* Concolic execution in action (§5.4): checksums cannot be encoded in
   first-order logic, so the oracle binds them with a concrete
   implementation after solving the rest of the path.

   Two programs: the paper's Fig. 1b (a checksum carried in the
   EtherType) and a realistic IPv4 program whose header checksum is
   recomputed by the deparser.

   Run with: dune exec examples/checksum_oracle.exe *)

module Bits = Bitv.Bits

let show_run name src =
  Printf.printf "=== %s ===\n" name;
  let run = Testgen.Oracle.generate Targets.V1model.target src in
  let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
  List.iter (fun t -> print_endline (Testgen.Testspec.to_string t)) tests;
  tests

let () =
  let tests = show_run "Fig. 1b: EtherType checksum" Progzoo.Corpus.fig1b in
  (* demonstrate that the concolic engine produced a *real* checksum:
     recompute it from the generated packet *)
  List.iter
    (fun (t : Testgen.Testspec.t) ->
      if (not (Testgen.Testspec.is_drop t)) && Bits.width (Testgen.Testspec.input t).data = 112 then begin
        let body = Bits.slice (Testgen.Testspec.input t).data ~hi:111 ~lo:16 in
        let carried = Bits.slice (Testgen.Testspec.input t).data ~hi:15 ~lo:0 in
        let expected = Targets.Checksums.csum16 body in
        Printf.printf
          "forwarded packet carries checksum %s; recomputed csum16 = %s (%s)\n"
          (Bits.to_hex carried) (Bits.to_hex expected)
          (if Bits.equal carried expected then "consistent — concolic binding held"
           else "INCONSISTENT");
      end)
    tests;
  print_newline ();

  let tests = show_run "IPv4 TTL decrement + header checksum update" Progzoo.Corpus.ipv4_checksum in
  (* the deparser recomputed the checksum over the decremented TTL *)
  let sim = Sim.Harness.prepare ~arch:"v1model" Progzoo.Corpus.ipv4_checksum in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Printf.printf "\nsoftware-model validation: %d/%d pass\n" summary.Sim.Harness.passed
    summary.Sim.Harness.total
