(* Whole-program semantics on a hardware-style target (§6.1.2): the
   tna extension models the two-pipe Tofino architecture, including
   prepended intrinsic metadata, the 64-byte frame minimum, and the
   "unwritten egress port means drop" rule.

   Run with: dune exec examples/tofino_pipeline.exe *)

module Bits = Bitv.Bits

let () =
  print_endline "=== tna: two-pipe L2 switch ===\n";
  let run = Testgen.Oracle.generate Targets.Tna.target Progzoo.Corpus.tna_basic in
  let tests = run.Testgen.Oracle.result.Testgen.Explore.tests in
  List.iter (fun t -> print_endline (Testgen.Testspec.to_string t)) tests;
  List.iter
    (fun (t : Testgen.Testspec.t) ->
      if not (Testgen.Testspec.is_drop t) then
        Printf.printf
          "forwarded frame is %d bytes (>= the 64-byte Tofino minimum)\n"
          (Bits.width (Testgen.Testspec.input t).data / 8))
    tests;
  let sim = Sim.Harness.prepare ~arch:"tna" Progzoo.Corpus.tna_basic in
  let summary, _ = Sim.Harness.run_suite sim tests in
  Printf.printf "\nTofino-model validation: %d/%d pass\n\n" summary.Sim.Harness.passed
    summary.Sim.Harness.total;

  print_endline "=== t2na accepts the same pipeline (plus ghost metadata types) ===";
  let run2 = Testgen.Oracle.generate Targets.T2na.target Progzoo.Corpus.tna_basic in
  Printf.printf "t2na generated %d tests\n\n"
    (List.length run2.Testgen.Oracle.result.Testgen.Explore.tests);

  print_endline "=== switch.p4-style program: path explosion (Tbl. 4a) ===";
  let src = Progzoo.Generators.switch_tna ~stages:3 () in
  let config =
    { Testgen.Explore.default_config with max_tests = Some 50 }
  in
  let run3 = Testgen.Oracle.generate ~config Targets.Tna.target src in
  let r = run3.Testgen.Oracle.result in
  Printf.printf "3-stage switch pipeline: stopped at %d tests, %.1f%% coverage\n"
    (List.length r.Testgen.Explore.tests)
    (Testgen.Explore.coverage_pct r)
