(** Incremental QF_BV solver over {!Expr} terms.

    Assertions are grouped into a stack of scopes.  {!push} opens a
    scope guarded by a fresh activation literal; {!pop} retires the
    scope and permanently disables its assertions.  Learned clauses
    and blasted subcircuits survive pops, which is what makes DFS path
    exploration incremental (the paper configures Z3 the same way,
    §6). *)

type t

type result = Sat | Unsat

val create :
  ?obs:Obs.Registry.t -> ?sat_options:Sat.options -> ?simplify:bool -> Expr.ctx -> t
(** A fresh solver bound to one {!Expr.ctx}; terms from other contexts
    are rejected.  Independent solvers over independent contexts may
    run on different domains concurrently.

    [obs] is the metrics registry the solver reports into (a private
    one is allocated when omitted): the [solver.checks] counter and
    [solver.time] timer, the [solver.scope_depth_hw] high-water gauge,
    the [sat.*] search counters (decisions, propagations, conflicts,
    restarts, learnt clauses/literals, db_reductions, kept_glue,
    minimised_literals), the [blast.cache_*] term-cache counters and
    the [rewrite.hits] word-level-rewrite counter.  Several solvers may
    share a registry — e.g. across explorer rebuilds — and their
    contributions accumulate.

    [sat_options] tunes the CDCL core (see {!Sat.options}); [simplify]
    (default [true]) runs {!Expr.simplify} on every asserted or assumed
    term before bit-blasting. *)

val clone : ?obs:Obs.Registry.t -> ectx:Expr.ctx -> t -> t
(** [clone ~ectx s] is a warm copy of [s] bound to [ectx], which must
    be an {!Expr.clone_ctx} clone of [s]'s context: the cloned CDCL
    core keeps the parent's clause database, learnt clauses, saved
    phases, and activities, and the cloned blaster's caches stay valid
    for terms carried into [ectx] with {!Expr.importer}.  The clone
    reports into [obs] (a private registry when omitted) starting from
    zeroed counters.  Raises [Invalid_argument] if [s] has open
    scopes. *)

val ctx : t -> Expr.ctx
(** The term context this solver was created for. *)

val obs : t -> Obs.Registry.t
(** The metrics registry this solver reports into. *)

val flush_stats : t -> unit
(** Pushes any SAT/blaster counter activity since the last flush into
    the registry.  Called automatically after every check; call it
    before reading the registry if terms were asserted (blasted) after
    the last check, or before retiring the solver. *)

val push : t -> unit
val pop : t -> unit
(** Raises [Invalid_argument] when the scope stack is empty. *)

val scope_depth : t -> int

val assert_ : t -> Expr.t -> unit
(** Asserts a width-1 term in the current scope. *)

val check : t -> result

val check_assuming : t -> Expr.t list -> result
(** Checks the current assertions plus temporary width-1 assumptions
    that are not retained. *)

val suggest : t -> Expr.t -> Bitv.Bits.t -> unit
(** [suggest s var_term value] asks the SAT core to try [value] first
    for the bits of a variable term — a "soft" preference that costs no
    clauses, used to randomize free test inputs. *)

val model_var : t -> Expr.var -> Bitv.Bits.t
(** Value of a variable in the model of the last [Sat] answer.
    Variables that never appeared in an assertion are zero. *)

val model_taint : t -> int -> int -> Bitv.Bits.t
(** [model_taint s id width]: model value of a taint node. *)

val model_eval : t -> Expr.t -> Bitv.Bits.t
(** Evaluates any term under the last model. *)

val size : t -> int
(** Number of SAT variables allocated so far (grows monotonically as
    terms are blasted; used to decide when a fresh solver is cheaper
    than an ever-growing one). *)

val holds : t -> Expr.t -> bool
(** [holds s e]: the width-1 term [e] evaluates to true under the last
    [Sat] model (extended with zeros for variables the model does not
    mention).  When it does, the model also witnesses satisfiability of
    the current assertions plus [e], so no solver call is needed. *)

(** {1 Captured models}

    A captured model freezes the last satisfying assignment as a
    fixed total function over terms: assigned bits keep their value,
    unassigned or later-blasted bits read as zero (a sound extension
    for unconstrained bits).  Evaluation performs only read-only blast
    lookups, so captured models may be consulted from worker domains
    while the originating solver is frozen.  The query cache uses them
    as portable satisfiability witnesses. *)

type model

val capture_model : t -> model option
(** The last [Sat] assignment, or [None] if no check has succeeded. *)

val model_holds : model -> Expr.t -> bool
(** [model_holds m e]: the width-1 term [e] evaluates to true under
    the frozen assignment.  Time-stable: repeated calls always agree. *)

val model_bytes : model -> int
(** Approximate heap footprint, for cache accounting. *)

val num_checks : t -> int
val solve_time : t -> float
(** Cumulative wall-clock seconds spent inside {!check} /
    {!check_assuming} (the paper's Fig. 7 instruments this). *)
