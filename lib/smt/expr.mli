(** Hash-consed bitvector terms.

    All terms are bitvectors; booleans are width-1 vectors ([tru] and
    [fls]).  Smart constructors perform constant folding and algebraic
    simplification, including the taint-elimination rewrites of the
    paper (§5.3), e.g. [mul taint zero = zero].

    Terms are hash-consed in an explicit {!ctx}: within one context,
    structurally equal terms are physically equal and share a [tag].
    [Taint] nodes are the exception — every call to {!fresh_taint}
    yields a distinct unknown.  Contexts are independent: creating one
    never invalidates another, so multiple symbolic-execution runs can
    coexist or run on different domains (one context must only be used
    by one domain at a time; the context itself is not thread-safe).
    Leaf constructors take the context explicitly; compound
    constructors inherit it from their operands and raise
    [Invalid_argument] when operands come from different contexts. *)

type ctx
(** A hash-consing arena plus variable registry, taint-id supply, and
    simplifier memo tables.  Cheap to create; dropped wholesale by the
    GC when the last term referencing it dies. *)

type var = private { vname : string; vwidth : int; vid : int }

type t = private { node : node; tag : int; width : int; tainted : bool; ctx : ctx }

and node =
  | Const of Bitv.Bits.t
  | Var of var
  | Taint of int  (** a fresh nondeterministic unknown (§5.3) *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Concat of t * t  (** [Concat (hi, lo)] — P4's [hi ++ lo] *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)], inclusive *)
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ite of t * t * t  (** condition has width 1 *)
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t

val create_ctx : unit -> ctx
(** A fresh, empty term context.  Safe to call from any domain. *)

val ctx_of : t -> ctx
(** The context a term was interned in. *)

val ctx_id : ctx -> int
(** A process-unique id (diagnostics only). *)

val same_ctx : t -> t -> bool

val width : t -> int
val tainted : t -> bool

(** {1 Variables} *)

val var : ctx -> string -> int -> t
(** [var ctx name w] returns the (unique) variable [name] of width [w].
    Raises [Invalid_argument] if [name] exists with another width. *)

val var_of : t -> var
(** The variable underlying a [Var] term.  Raises otherwise. *)

val fresh_var : ctx -> string -> int -> t
(** [fresh_var ctx prefix w] mints a variable with a unique suffixed
    name. *)

val fresh_taint : ctx -> int -> t

(** {1 Warm handoff} *)

val clone_ctx : ctx -> ctx
(** [clone_ctx parent] is an empty context that inherits [parent]'s
    variable registry and all allocation counters ([next_tag],
    [next_vid], [fresh_counter], [next_taint]).  Terms are carried
    over on demand with {!importer}.  The parent must not intern new
    terms while clones are importing from it. *)

val importer : ctx -> t -> t
(** [importer ctx] is a memoizing deep re-intern into [ctx] that
    preserves each source term's [tag], width, taint flag, and
    variable identities, so caches keyed by tag or vid built against
    the parent remain valid for the imported copies.  All imports
    into a clone must happen before the clone interns native terms.
    Terms already belonging to [ctx] are returned unchanged. *)

(** {1 Constructors} *)

val const : ctx -> Bitv.Bits.t -> t
val of_int : ctx -> width:int -> int -> t
val zero : ctx -> int -> t
val ones : ctx -> int -> t
val tru : ctx -> t
val fls : ctx -> t
val of_bool : ctx -> bool -> t

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val concat : t -> t -> t
val slice : t -> hi:int -> lo:int -> t
val zext : t -> int -> t
val sext : t -> int -> t
val eq : t -> t -> t
val neq : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t
val ite : t -> t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

(** Width-1 boolean helpers. *)

val band : t -> t -> t
val bor : t -> t -> t
val bnot : t -> t
val conj : ctx -> t list -> t
val disj : ctx -> t list -> t
val implies : t -> t -> t

(** {1 Observation} *)

val is_const : t -> Bitv.Bits.t option
val is_true : t -> bool
val is_false : t -> bool

val taint_mask : t -> Bitv.Bits.t
(** Conservative per-bit taint: bit [i] set iff output bit [i] may
    depend on a nondeterministic source.  Arithmetic spreads taint
    upward from the lowest tainted operand bit (carry direction);
    comparisons and taint-conditioned [Ite]s taint every result bit. *)

val vars : t -> var list
(** All variables occurring in the term, each once, in [vid] order. *)

val support : t -> int array
(** Free-symbol support as a sorted array of symbol ids — variables
    at [2*vid], taint atoms at [2*id+1] — memoised per hash-consed
    tag.  Two terms interact (for independence slicing) iff their
    supports intersect. *)

val sym_of_var : var -> int
val sym_of_taint : int -> int
val sym_is_taint : int -> bool
val sym_id : int -> int
(** Conversions for the symbol-id namespace used by {!support}. *)

val digest : t -> string
(** Context-independent structural digest (16 raw bytes), memoised
    per tag.  Variables are identified by name and width, so equal
    digests mean structurally identical terms even across contexts —
    the key property behind the cross-request UNSAT-slice cache. *)

val eval : ?taint:(int -> int -> Bitv.Bits.t) -> (var -> Bitv.Bits.t) -> t -> Bitv.Bits.t
(** Concrete evaluation.  [taint id width] supplies values for taint
    nodes (defaults to zero). *)

val subst : (var -> t option) -> t -> t
(** Capture-free substitution of variables. *)

val size : t -> int
(** Number of distinct subterms (DAG size). *)

(** {1 Word-level simplification} *)

val simplify : t -> t
(** Word-level rewrite/normalisation, memoised in the term's context.
    Rebuilds the term bottom-up through the smart constructors
    (constant folding through concat/extract chains, [x = x] and
    nested-[Ite] elimination) and applies a known-bits analysis:
    fully-determined subterms collapse to constants and comparisons
    whose operands have disjoint unsigned ranges collapse to booleans.
    The result is equivalent for every assignment of variables and
    taints.  Applied by the solver at assert time so discharged terms
    never reach the CNF layer. *)

val known_bits : t -> Bitv.Bits.t * Bitv.Bits.t
(** [(mask, value)]: bit [i] of the term equals bit [i] of [value]
    whenever bit [i] of [mask] is set, under every assignment. *)

val rewrite_hits : ctx -> int
(** Terms changed by {!simplify} in this context so far (monotone;
    surfaced as the [rewrite.hits] metric). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
