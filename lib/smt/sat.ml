(* CDCL SAT solver in the MiniSat tradition.

   Value encoding per variable: 0 = unassigned, 1 = true, 2 = false.
   A literal l is "lit of var (l lsr 1)", negated iff (l land 1) = 1. *)

type clause = { lits : int array; learnt : bool; mutable deleted : bool }

(* Growable array *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
  let pop v = v.len <- v.len - 1; v.data.(v.len)
end

type t = {
  mutable nvars : int;
  mutable ok : bool;
  mutable clause_count : int;
  (* per-literal watch lists *)
  mutable watches : clause Vec.t array;
  (* per-variable state *)
  mutable assign : int array; (* 0/1/2 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable heap_pos : int array; (* -1 when absent *)
  (* VSIDS heap of variables ordered by activity *)
  heap : int Vec.t;
  mutable var_inc : float;
  (* trail *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* vars occurring in at least one clause; only these are decided —
     unconstrained variables may take any value, so leaving them
     unassigned is sound and keeps solves proportional to the active
     instance rather than to every variable ever allocated *)
  mutable constrained : bool array;
  (* learned clauses, for periodic database reduction *)
  learnts : clause Vec.t;
  mutable reduce_limit : int;
  (* stats *)
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_clauses : int;
  mutable learnt_literals : int;
  (* scratch *)
  mutable seen : bool array;
}

type counters = {
  c_decisions : int;
  c_propagations : int;
  c_conflicts : int;
  c_restarts : int;
  c_learnt_clauses : int;
  c_learnt_literals : int;
}

let dummy_clause = { lits = [||]; learnt = false; deleted = false }

let create () =
  {
    nvars = 0;
    ok = true;
    clause_count = 0;
    watches = Array.init 2 (fun _ -> Vec.create dummy_clause);
    assign = Array.make 1 0;
    level = Array.make 1 0;
    reason = Array.make 1 None;
    activity = Array.make 1 0.0;
    polarity = Array.make 1 false;
    heap_pos = Array.make 1 (-1);
    heap = Vec.create 0;
    var_inc = 1.0;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    constrained = Array.make 1 false;
    learnts = Vec.create dummy_clause;
    reduce_limit = 4000;
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_clauses = 0;
    learnt_literals = 0;
    seen = Array.make 1 false;
  }

let pos v = 2 * v
let neg v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let sign l = l land 1 = 1

let nvars s = s.nvars
let nclauses s = s.clause_count
let stats s = (s.decisions, s.propagations, s.conflicts)

let counters s =
  {
    c_decisions = s.decisions;
    c_propagations = s.propagations;
    c_conflicts = s.conflicts;
    c_restarts = s.restarts;
    c_learnt_clauses = s.learnt_clauses;
    c_learnt_literals = s.learnt_literals;
  }

(* value of literal: 0 undef, 1 true, 2 false *)
let lit_val s l =
  let a = s.assign.(var_of l) in
  if a = 0 then 0 else if sign l then 3 - a else a

let grow_array a n dummy =
  let len = Array.length a in
  if n <= len then a
  else begin
    let d = Array.make (max n (2 * len)) dummy in
    Array.blit a 0 d 0 len;
    d
  end

(* -------------------- VSIDS heap (max-heap on activity) ------------ *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = Vec.get s.heap i and b = Vec.get s.heap j in
  Vec.set s.heap i b;
  Vec.set s.heap j a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s (Vec.get s.heap i) (Vec.get s.heap p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let n = Vec.len s.heap in
  let best = ref i in
  if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap_pos.(v) <- Vec.len s.heap;
    Vec.push s.heap v;
    heap_up s (Vec.len s.heap - 1)
  end

let heap_remove_max s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.len s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* -------------------- variable management -------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign (v + 1) 0;
  s.level <- grow_array s.level (v + 1) 0;
  s.reason <- grow_array s.reason (v + 1) None;
  s.activity <- grow_array s.activity (v + 1) 0.0;
  s.polarity <- grow_array s.polarity (v + 1) false;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.seen <- grow_array s.seen (v + 1) false;
  s.constrained <- grow_array s.constrained (v + 1) false;
  let nlits = 2 * (v + 1) in
  if Array.length s.watches < nlits then begin
    let w = Array.init (max nlits (2 * Array.length s.watches)) (fun i ->
        if i < Array.length s.watches then s.watches.(i) else Vec.create dummy_clause)
    in
    s.watches <- w
  end;
  s.assign.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- None;
  s.activity.(v) <- 0.0;
  s.polarity.(v) <- false;
  s.heap_pos.(v) <- -1;
  s.seen.(v) <- false;
  s.constrained.(v) <- false;
  (* not inserted into the decision heap until it appears in a clause *)
  v

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* -------------------- trail ---------------------------------------- *)

let decision_level s = Vec.len s.trail_lim

let enqueue s l reason =
  let v = var_of l in
  s.assign.(v) <- (if sign l then 2 else 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let mark_constrained s v =
  if not s.constrained.(v) then begin
    s.constrained.(v) <- true;
    heap_insert s v
  end

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.len s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of l in
      s.assign.(v) <- 0;
      s.polarity.(v) <- not (sign l);
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.len s.trail
  end

(* -------------------- clauses -------------------------------------- *)

let watch s l c = Vec.push s.watches.(l) c

let attach s c =
  (* watch the negations of the first two literals *)
  watch s (negate c.lits.(0)) c;
  watch s (negate c.lits.(1)) c

exception Conflict of clause

let propagate s =
  try
    while s.qhead < Vec.len s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let ws = s.watches.(p) in
      let n = Vec.len ws in
      let j = ref 0 in
      (* i scans, j writes back retained watches *)
      let i = ref 0 in
      while !i < n do
        let c = Vec.get ws !i in
        incr i;
        if c.deleted then ()  (* lazily drop deleted clauses *)
        else begin
        (* make sure the false literal is lits.(1) *)
        let falsel = negate p in
        if c.lits.(0) = falsel then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- falsel
        end;
        if lit_val s c.lits.(0) = 1 then begin
          (* clause satisfied; keep watch *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length c.lits in
          let k = ref 2 in
          let found = ref false in
          while (not !found) && !k < len do
            if lit_val s c.lits.(!k) <> 2 then begin
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- falsel;
              watch s (negate c.lits.(1)) c;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* unit or conflicting *)
            Vec.set ws !j c;
            incr j;
            if lit_val s c.lits.(0) = 2 then begin
              (* conflict: copy remaining watches and raise *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done;
              Vec.shrink ws !j;
              s.qhead <- Vec.len s.trail;
              raise (Conflict c)
            end
            else enqueue s c.lits.(0) (Some c)
          end
        end
        end
      done;
      Vec.shrink ws !j
    done;
    None
  with Conflict c -> Some c

let add_clause s lits =
  if s.ok then begin
    (* simplify: remove duplicates and false lits (level 0), drop if tautology or satisfied *)
    assert (decision_level s = 0);
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (negate l) lits) lits
      || List.exists (fun l -> lit_val s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_val s l <> 2) lits in
      List.iter (fun l -> mark_constrained s (var_of l)) lits;
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
          enqueue s l None;
          if propagate s <> None then s.ok <- false
      | _ ->
          let c = { lits = Array.of_list lits; learnt = false; deleted = false } in
          s.clause_count <- s.clause_count + 1;
          attach s c
    end
  end

(* -------------------- conflict analysis ---------------------------- *)

let analyze s confl =
  (* first-UIP learning *)
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.len s.trail - 1) in
  let confl = ref (Some confl) in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> assert false
    | Some c ->
        let start = if !p = -1 then 0 else 1 in
        for k = start to Array.length c.lits - 1 do
          let q = c.lits.(k) in
          let v = var_of q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr path_count
            else learnt := q :: !learnt
          end
        done);
    (* pick next literal to expand from the trail *)
    let rec next_seen i = if s.seen.(var_of (Vec.get s.trail i)) then i else next_seen (i - 1) in
    index := next_seen !index;
    let l = Vec.get s.trail !index in
    decr index;
    p := l;
    let v = var_of l in
    confl := s.reason.(v);
    s.seen.(v) <- false;
    decr path_count;
    if !path_count <= 0 then continue := false
  done;
  let learnt = negate !p :: !learnt in
  (* clear seen *)
  List.iter (fun l -> s.seen.(var_of l) <- false) learnt;
  (* compute backtrack level = max level among learnt tail *)
  match learnt with
  | [] -> assert false
  | [ _ ] -> (learnt, 0)
  | first :: rest ->
      let max_lit =
        List.fold_left
          (fun best l -> if s.level.(var_of l) > s.level.(var_of best) then l else best)
          (List.hd rest) rest
      in
      (* move max to second position *)
      let rest = max_lit :: List.filter (fun l -> l <> max_lit) rest in
      (first :: rest, s.level.(var_of max_lit))

let record_learnt s lits =
  (match lits with
  | [] -> ()
  | ls ->
      s.learnt_clauses <- s.learnt_clauses + 1;
      s.learnt_literals <- s.learnt_literals + List.length ls);
  match lits with
  | [] -> s.ok <- false
  | [ l ] ->
      (* Unit learnt clause.  Give it a self-reason so that conflict
         analysis never expands a reasonless literal mid-level (the
         1-literal reason contributes nothing and terminates cleanly). *)
      enqueue s l (Some { lits = [| l |]; learnt = true; deleted = false })
  | _ ->
      let c = { lits = Array.of_list lits; learnt = true; deleted = false } in
      s.clause_count <- s.clause_count + 1;
      Vec.push s.learnts c;
      attach s c;
      enqueue s c.lits.(0) (Some c)

(* -------------------- search --------------------------------------- *)

(* a clause is locked while it is the reason of an assignment *)
let locked s c =
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  s.assign.(v) <> 0 && (match s.reason.(v) with Some r -> r == c | None -> false)

(* periodically drop the older half of long learned clauses; binary
   and locked clauses are kept (MiniSat's reduceDB) *)
let reduce_db s =
  let n = Vec.len s.learnts in
  if n > s.reduce_limit then begin
    let kept = ref [] in
    let deleted = ref 0 in
    for i = 0 to n - 1 do
      let c = Vec.get s.learnts i in
      if c.deleted then ()
      else if i < n / 2 && Array.length c.lits > 2 && not (locked s c) then begin
        c.deleted <- true;
        incr deleted;
        s.clause_count <- s.clause_count - 1
      end
      else kept := c :: !kept
    done;
    Vec.shrink s.learnts 0;
    List.iter (Vec.push s.learnts) (List.rev !kept);
    s.reduce_limit <- s.reduce_limit + (s.reduce_limit / 2)
  end

let rec luby i =
  (* Luby sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find k = if pow2 k - 1 >= i then k else find (k + 1) in
  let k = find 1 in
  if pow2 k - 1 = i then pow2 (k - 1) else luby (i - pow2 (k - 1) + 1)

let pick_branch s =
  let rec go () =
    if Vec.len s.heap = 0 then None
    else
      let v = heap_remove_max s in
      if s.assign.(v) = 0 then Some v else go ()
  in
  go ()

exception Unsat
exception Sat_found

let solve ?(assumptions = []) s =
  if not s.ok then false
  else begin
    cancel_until s 0;
    let assumptions = Array.of_list assumptions in
    let conflicts_budget = ref 100 in
    let restart_count = ref 0 in
    try
      let rec search () =
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            if decision_level s <= Array.length assumptions then begin
              (* conflict within/below assumption levels: UNSAT under assumptions.
                 Conservative: any conflict at a level not above the assumption
                 prefix means assumptions are inconsistent with the clauses. *)
              if decision_level s = 0 then s.ok <- false;
              raise Unsat
            end;
            reduce_db s;
            let learnt, back_lvl = analyze s confl in
            let back_lvl = max back_lvl (min (Array.length assumptions) (decision_level s - 1)) in
            cancel_until s back_lvl;
            record_learnt s learnt;
            var_decay s;
            decr conflicts_budget;
            if !conflicts_budget <= 0 then begin
              incr restart_count;
              s.restarts <- s.restarts + 1;
              conflicts_budget := 100 * luby (!restart_count + 1);
              cancel_until s (min (Array.length assumptions) (decision_level s))
            end;
            search ()
        | None ->
            if decision_level s < Array.length assumptions then begin
              (* establish next assumption *)
              let a = assumptions.(decision_level s) in
              match lit_val s a with
              | 1 ->
                  (* already true: still open a level to keep indexing aligned *)
                  Vec.push s.trail_lim (Vec.len s.trail);
                  search ()
              | 2 -> raise Unsat
              | _ ->
                  Vec.push s.trail_lim (Vec.len s.trail);
                  enqueue s a None;
                  search ()
            end
            else begin
              match pick_branch s with
              | None -> raise Sat_found
              | Some v ->
                  s.decisions <- s.decisions + 1;
                  Vec.push s.trail_lim (Vec.len s.trail);
                  let l = if s.polarity.(v) then pos v else neg v in
                  enqueue s l None;
                  search ()
            end
      in
      search ()
    with
    | Sat_found -> true
    | Unsat ->
        cancel_until s 0;
        false
  end

let set_polarity s v b = if v < s.nvars then s.polarity.(v) <- b

let backtrack s = cancel_until s 0

let snapshot s = Array.sub s.assign 0 s.nvars

let value s v = s.assign.(v) = 1

let lit_value s l = lit_val s l = 1
