(* CDCL SAT solver in the MiniSat tradition.

   Value encoding per variable: 0 = unassigned, 1 = true, 2 = false.
   A literal l is "lit of var (l lsr 1)", negated iff (l land 1) = 1.

   Hot-path design notes:
   - Watch lists carry a blocking literal per watcher; a satisfied
     blocker skips the watcher without touching the clause at all.
   - Binary clauses live in a dedicated watch layer that stores the
     implied literal inline, so propagating them reads one int.
   - Learnt clauses are scored by LBD ("glue": distinct decision
     levels at learning time); the database is periodically halved,
     keeping glue <= 2, binary, and locked clauses.
   - 1UIP clauses are shrunk by recursive self-subsumption before
     being recorded.
   - Phase saving keeps the last assigned polarity per variable, and
     the full assignment of the last satisfying model is replayed as
     the preferred phase of later solves (target phases). *)

type clause = {
  lits : int array;
  learnt : bool;
  mutable deleted : bool;
  mutable lbd : int; (* glue at learning time; 0 for problem clauses *)
}

type options = {
  o_phase_saving : bool;  (** save assigned polarities on backtrack *)
  o_target_phase : bool;  (** replay the last model as preferred phases *)
  o_reduce_db : bool;  (** periodically halve the learnt database *)
  o_minimise : bool;  (** recursive self-subsumption on 1UIP clauses *)
  o_reduce_init : int;  (** learnt clauses tolerated before the first reduction *)
}

let default_options =
  {
    o_phase_saving = true;
    o_target_phase = true;
    o_reduce_db = true;
    o_minimise = true;
    o_reduce_init = 4000;
  }

(* Growable array *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  (* indices are always < len by construction *)
  let get v i = Array.unsafe_get v.data i
  let set v i x = Array.unsafe_set v.data i x
  let len v = v.len
  let shrink v n = v.len <- n
  let pop v = v.len <- v.len - 1; Array.unsafe_get v.data v.len
end

let dummy_clause = { lits = [||]; learnt = false; deleted = false; lbd = 0 }

(* Watch list: parallel arrays of clause and companion literal, scanned
   and compacted in place.  For long clauses the companion is a
   blocking literal (any other literal of the clause); for the binary
   layer it is the implied literal. *)
module Wl = struct
  type t = { mutable cls : clause array; mutable lit : int array; mutable len : int }

  let create () = { cls = [||]; lit = [||]; len = 0 }

  let push w c l =
    if w.len = Array.length w.cls then begin
      let n = if w.len = 0 then 4 else 2 * w.len in
      let cls = Array.make n dummy_clause and lit = Array.make n 0 in
      Array.blit w.cls 0 cls 0 w.len;
      Array.blit w.lit 0 lit 0 w.len;
      w.cls <- cls;
      w.lit <- lit
    end;
    w.cls.(w.len) <- c;
    w.lit.(w.len) <- l;
    w.len <- w.len + 1
end

type t = {
  mutable nvars : int;
  mutable ok : bool;
  mutable clause_count : int;
  opts : options;
  (* per-literal watch lists: long clauses and a binary layer *)
  mutable watches : Wl.t array;
  mutable bin_watches : Wl.t array;
  (* per-variable state *)
  mutable assign : int array; (* 0/1/2 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable target : int array; (* phase of the last model: 0 none / 1 / 2 *)
  mutable heap_pos : int array; (* -1 when absent *)
  (* VSIDS heap of variables ordered by activity *)
  heap : int Vec.t;
  mutable var_inc : float;
  (* trail *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* vars occurring in at least one clause; only these are decided —
     unconstrained variables may take any value, so leaving them
     unassigned is sound and keeps solves proportional to the active
     instance rather than to every variable ever allocated *)
  mutable constrained : bool array;
  (* learned clauses, for periodic database reduction *)
  learnts : clause Vec.t;
  mutable reduce_limit : int;
  (* LBD computation scratch: per-level stamps *)
  mutable lbd_stamp : int array;
  mutable lbd_stamp_n : int;
  (* stats *)
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_clauses : int;
  mutable learnt_literals : int;
  mutable db_reductions : int;
  mutable kept_glue : int;
  mutable minimised_literals : int;
  (* scratch *)
  mutable seen : bool array;
}

type counters = {
  c_decisions : int;
  c_propagations : int;
  c_conflicts : int;
  c_restarts : int;
  c_learnt_clauses : int;
  c_learnt_literals : int;
  c_db_reductions : int;
  c_kept_glue : int;
  c_minimised_literals : int;
}

let create ?(options = default_options) () =
  {
    nvars = 0;
    ok = true;
    clause_count = 0;
    opts = options;
    watches = Array.init 2 (fun _ -> Wl.create ());
    bin_watches = Array.init 2 (fun _ -> Wl.create ());
    assign = Array.make 1 0;
    level = Array.make 1 0;
    reason = Array.make 1 None;
    activity = Array.make 1 0.0;
    polarity = Array.make 1 false;
    target = Array.make 1 0;
    heap_pos = Array.make 1 (-1);
    heap = Vec.create 0;
    var_inc = 1.0;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    constrained = Array.make 1 false;
    learnts = Vec.create dummy_clause;
    reduce_limit = options.o_reduce_init;
    lbd_stamp = Array.make 1 0;
    lbd_stamp_n = 0;
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_clauses = 0;
    learnt_literals = 0;
    db_reductions = 0;
    kept_glue = 0;
    minimised_literals = 0;
    seen = Array.make 1 false;
  }

let pos v = 2 * v
let neg v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let sign l = l land 1 = 1

let nvars s = s.nvars
let nclauses s = s.clause_count
let stats s = (s.decisions, s.propagations, s.conflicts)

let counters s =
  {
    c_decisions = s.decisions;
    c_propagations = s.propagations;
    c_conflicts = s.conflicts;
    c_restarts = s.restarts;
    c_learnt_clauses = s.learnt_clauses;
    c_learnt_literals = s.learnt_literals;
    c_db_reductions = s.db_reductions;
    c_kept_glue = s.kept_glue;
    c_minimised_literals = s.minimised_literals;
  }

(* value of literal: 0 undef, 1 true, 2 false *)
let lit_val s l =
  let a = Array.unsafe_get s.assign (l lsr 1) in
  if a = 0 then 0 else if l land 1 = 1 then 3 - a else a

let grow_array a n dummy =
  let len = Array.length a in
  if n <= len then a
  else begin
    let d = Array.make (max n (2 * len)) dummy in
    Array.blit a 0 d 0 len;
    d
  end

(* -------------------- VSIDS heap (max-heap on activity) ------------ *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = Vec.get s.heap i and b = Vec.get s.heap j in
  Vec.set s.heap i b;
  Vec.set s.heap j a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s (Vec.get s.heap i) (Vec.get s.heap p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let n = Vec.len s.heap in
  let best = ref i in
  if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap_pos.(v) <- Vec.len s.heap;
    Vec.push s.heap v;
    heap_up s (Vec.len s.heap - 1)
  end

let heap_remove_max s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.len s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* -------------------- variable management -------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign (v + 1) 0;
  s.level <- grow_array s.level (v + 1) 0;
  s.reason <- grow_array s.reason (v + 1) None;
  s.activity <- grow_array s.activity (v + 1) 0.0;
  s.polarity <- grow_array s.polarity (v + 1) false;
  s.target <- grow_array s.target (v + 1) 0;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.seen <- grow_array s.seen (v + 1) false;
  s.constrained <- grow_array s.constrained (v + 1) false;
  (* decision levels are bounded by the number of variables *)
  s.lbd_stamp <- grow_array s.lbd_stamp (v + 2) 0;
  let nlits = 2 * (v + 1) in
  if Array.length s.watches < nlits then begin
    let grow w =
      Array.init (max nlits (2 * Array.length w)) (fun i ->
          if i < Array.length w then w.(i) else Wl.create ())
    in
    s.watches <- grow s.watches;
    s.bin_watches <- grow s.bin_watches
  end;
  s.assign.(v) <- 0;
  s.level.(v) <- 0;
  s.reason.(v) <- None;
  s.activity.(v) <- 0.0;
  s.polarity.(v) <- false;
  s.target.(v) <- 0;
  s.heap_pos.(v) <- -1;
  s.seen.(v) <- false;
  s.constrained.(v) <- false;
  (* not inserted into the decision heap until it appears in a clause *)
  v

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* -------------------- trail ---------------------------------------- *)

let decision_level s = Vec.len s.trail_lim

let enqueue s l reason =
  let v = var_of l in
  s.assign.(v) <- (if sign l then 2 else 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let mark_constrained s v =
  if not s.constrained.(v) then begin
    s.constrained.(v) <- true;
    heap_insert s v
  end

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    let save = s.opts.o_phase_saving in
    for i = Vec.len s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = var_of l in
      s.assign.(v) <- 0;
      if save then s.polarity.(v) <- not (sign l);
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.len s.trail
  end

(* -------------------- clauses -------------------------------------- *)

let watch s l c blocker = Wl.push s.watches.(l) c blocker

let attach s c =
  (* watch the negations of the first two literals; binary clauses go
     to the dedicated layer that stores the implied literal inline *)
  if Array.length c.lits = 2 then begin
    Wl.push s.bin_watches.(negate c.lits.(0)) c c.lits.(1);
    Wl.push s.bin_watches.(negate c.lits.(1)) c c.lits.(0)
  end
  else begin
    watch s (negate c.lits.(0)) c c.lits.(1);
    watch s (negate c.lits.(1)) c c.lits.(0)
  end

exception Conflict of clause

let propagate s =
  try
    while s.qhead < Vec.len s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      (* binary layer: one value read per clause, no clause access on
         the common satisfied/undecided path *)
      let bw = Array.unsafe_get s.bin_watches p in
      let bn = bw.Wl.len in
      for i = 0 to bn - 1 do
        let o = Array.unsafe_get bw.Wl.lit i in
        let v = lit_val s o in
        if v = 2 then begin
          let c = Array.unsafe_get bw.Wl.cls i in
          s.qhead <- Vec.len s.trail;
          raise (Conflict c)
        end
        else if v = 0 then begin
          let c = Array.unsafe_get bw.Wl.cls i in
          (* conflict analysis expects the propagated literal first *)
          if c.lits.(0) <> o then begin
            c.lits.(0) <- o;
            c.lits.(1) <- negate p
          end;
          enqueue s o (Some c)
        end
      done;
      (* long clauses *)
      let ws = Array.unsafe_get s.watches p in
      let n = ws.Wl.len in
      let j = ref 0 in
      (* i scans, j writes back retained watches *)
      let i = ref 0 in
      while !i < n do
        let blocker = Array.unsafe_get ws.Wl.lit !i in
        if lit_val s blocker = 1 then begin
          (* blocking literal satisfied: clause untouched *)
          Array.unsafe_set ws.Wl.cls !j (Array.unsafe_get ws.Wl.cls !i);
          Array.unsafe_set ws.Wl.lit !j blocker;
          incr i;
          incr j
        end
        else begin
          let c = Array.unsafe_get ws.Wl.cls !i in
          incr i;
          if c.deleted then ()  (* lazily drop deleted clauses *)
          else begin
            (* make sure the false literal is lits.(1) *)
            let falsel = negate p in
            if c.lits.(0) = falsel then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- falsel
            end;
            let first = c.lits.(0) in
            if first <> blocker && lit_val s first = 1 then begin
              (* clause satisfied; keep watch, remember the witness *)
              Array.unsafe_set ws.Wl.cls !j c;
              Array.unsafe_set ws.Wl.lit !j first;
              incr j
            end
            else begin
              (* look for a new literal to watch *)
              let len = Array.length c.lits in
              let k = ref 2 in
              let found = ref false in
              while (not !found) && !k < len do
                if lit_val s c.lits.(!k) <> 2 then begin
                  c.lits.(1) <- c.lits.(!k);
                  c.lits.(!k) <- falsel;
                  watch s (negate c.lits.(1)) c first;
                  found := true
                end;
                incr k
              done;
              if not !found then begin
                (* unit or conflicting *)
                Array.unsafe_set ws.Wl.cls !j c;
                Array.unsafe_set ws.Wl.lit !j first;
                incr j;
                if lit_val s first = 2 then begin
                  (* conflict: copy remaining watches and raise *)
                  while !i < n do
                    Array.unsafe_set ws.Wl.cls !j (Array.unsafe_get ws.Wl.cls !i);
                    Array.unsafe_set ws.Wl.lit !j (Array.unsafe_get ws.Wl.lit !i);
                    incr i;
                    incr j
                  done;
                  ws.Wl.len <- !j;
                  s.qhead <- Vec.len s.trail;
                  raise (Conflict c)
                end
                else enqueue s first (Some c)
              end
            end
          end
        end
      done;
      ws.Wl.len <- !j
    done;
    None
  with Conflict c -> Some c

let add_clause s lits =
  if s.ok then begin
    (* simplify: remove duplicates and false lits (level 0), drop if tautology or satisfied *)
    assert (decision_level s = 0);
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (negate l) lits) lits
      || List.exists (fun l -> lit_val s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_val s l <> 2) lits in
      List.iter (fun l -> mark_constrained s (var_of l)) lits;
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
          enqueue s l None;
          if propagate s <> None then s.ok <- false
      | _ ->
          let c = { lits = Array.of_list lits; learnt = false; deleted = false; lbd = 0 } in
          s.clause_count <- s.clause_count + 1;
          attach s c
    end
  end

(* -------------------- conflict analysis ---------------------------- *)

(* LBD ("glue") of a clause: distinct decision levels among its
   literals, counted with per-level stamps *)
let compute_lbd s lits =
  (* levels can exceed nvars when redundant assumption levels pile up *)
  let max_lvl = decision_level s in
  if max_lvl >= Array.length s.lbd_stamp then
    s.lbd_stamp <- grow_array s.lbd_stamp (max_lvl + 1) 0;
  s.lbd_stamp_n <- s.lbd_stamp_n + 1;
  let st = s.lbd_stamp_n in
  List.fold_left
    (fun acc l ->
      let lvl = s.level.(var_of l) in
      if lvl > 0 && s.lbd_stamp.(lvl) <> st then begin
        s.lbd_stamp.(lvl) <- st;
        acc + 1
      end
      else acc)
    0 lits

let abstract_level s v = 1 lsl (s.level.(v) land 31)

(* [lit_redundant s abstract_levels to_clear l] — the learnt literal
   [l] is implied by the rest of the clause: walking its implication
   graph upward only ever terminates in already-seen literals.
   Newly marked vars are recorded in [to_clear] (kept marked as a
   memo for the remaining literals) and unmarked locally on failure. *)
let lit_redundant s abstract_levels to_clear l =
  let marked_here = ref [] in
  let rec go stack =
    match stack with
    | [] -> true
    | q :: rest -> (
        match s.reason.(var_of q) with
        | None -> false
        | Some c ->
            let ok = ref true in
            let stack = ref rest in
            let len = Array.length c.lits in
            let k = ref 1 in
            while !ok && !k < len do
              let l' = c.lits.(!k) in
              let v = var_of l' in
              if (not s.seen.(v)) && s.level.(v) > 0 then begin
                if s.reason.(v) <> None && abstract_level s v land abstract_levels <> 0
                then begin
                  s.seen.(v) <- true;
                  marked_here := v :: !marked_here;
                  to_clear := v :: !to_clear;
                  stack := l' :: !stack
                end
                else ok := false
              end;
              incr k
            done;
            if !ok then go !stack
            else begin
              List.iter (fun v -> s.seen.(v) <- false) !marked_here;
              false
            end)
  in
  go [ l ]

(* shrink the learnt tail by recursive self-subsumption (the literals
   all carry seen marks at this point) *)
let minimise s tail =
  let abstract_levels =
    List.fold_left (fun acc l -> acc lor abstract_level s (var_of l)) 0 tail
  in
  let to_clear = ref [] in
  let tail' =
    List.filter
      (fun l ->
        match s.reason.(var_of l) with
        | None -> true
        | Some _ -> not (lit_redundant s abstract_levels to_clear l))
      tail
  in
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (tail', List.length tail - List.length tail')

let analyze s confl =
  (* first-UIP learning *)
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.len s.trail - 1) in
  let confl = ref (Some confl) in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> assert false
    | Some c ->
        let start = if !p = -1 then 0 else 1 in
        for k = start to Array.length c.lits - 1 do
          let q = c.lits.(k) in
          let v = var_of q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr path_count
            else learnt := q :: !learnt
          end
        done);
    (* pick next literal to expand from the trail *)
    let rec next_seen i = if s.seen.(var_of (Vec.get s.trail i)) then i else next_seen (i - 1) in
    index := next_seen !index;
    let l = Vec.get s.trail !index in
    decr index;
    p := l;
    let v = var_of l in
    confl := s.reason.(v);
    s.seen.(v) <- false;
    decr path_count;
    if !path_count <= 0 then continue := false
  done;
  let tail0 = !learnt in
  let tail =
    if s.opts.o_minimise && tail0 <> [] then begin
      let tail, removed = minimise s tail0 in
      s.minimised_literals <- s.minimised_literals + removed;
      tail
    end
    else tail0
  in
  let learnt = negate !p :: tail in
  (* glue is measured before backjumping invalidates the levels *)
  let lbd = compute_lbd s learnt in
  (* clear seen (removed literals stay marked in tail0) *)
  List.iter (fun l -> s.seen.(var_of l) <- false) tail0;
  s.seen.(var_of !p) <- false;
  (* compute backtrack level = max level among learnt tail *)
  match learnt with
  | [] -> assert false
  | [ _ ] -> (learnt, 0, lbd)
  | first :: rest ->
      let max_lit =
        List.fold_left
          (fun best l -> if s.level.(var_of l) > s.level.(var_of best) then l else best)
          (List.hd rest) rest
      in
      (* move max to second position *)
      let rest = max_lit :: List.filter (fun l -> l <> max_lit) rest in
      (first :: rest, s.level.(var_of max_lit), lbd)

let record_learnt s lits lbd =
  (match lits with
  | [] -> ()
  | ls ->
      s.learnt_clauses <- s.learnt_clauses + 1;
      s.learnt_literals <- s.learnt_literals + List.length ls);
  match lits with
  | [] -> s.ok <- false
  | [ l ] ->
      (* Unit learnt clause.  Give it a self-reason so that conflict
         analysis never expands a reasonless literal mid-level (the
         1-literal reason contributes nothing and terminates cleanly). *)
      enqueue s l (Some { lits = [| l |]; learnt = true; deleted = false; lbd = 0 })
  | _ ->
      let c = { lits = Array.of_list lits; learnt = true; deleted = false; lbd } in
      s.clause_count <- s.clause_count + 1;
      Vec.push s.learnts c;
      attach s c;
      enqueue s c.lits.(0) (Some c)

(* -------------------- search --------------------------------------- *)

(* a clause is locked while it is the reason of an assignment *)
let locked s c =
  Array.length c.lits > 0
  &&
  let v = var_of c.lits.(0) in
  s.assign.(v) <> 0 && (match s.reason.(v) with Some r -> r == c | None -> false)

(* periodically halve the learnt database, dropping high-glue clauses
   first; glue (LBD <= 2), binary, and locked clauses always survive *)
let reduce_db s =
  if s.opts.o_reduce_db then begin
    let n = Vec.len s.learnts in
    if n > s.reduce_limit then begin
      s.db_reductions <- s.db_reductions + 1;
      let kept = ref [] in
      let removable = ref [] in
      for i = 0 to n - 1 do
        let c = Vec.get s.learnts i in
        if c.deleted then ()
        else if Array.length c.lits <= 2 || c.lbd <= 2 || locked s c then begin
          if c.lbd <= 2 then s.kept_glue <- s.kept_glue + 1;
          kept := c :: !kept
        end
        else removable := c :: !removable
      done;
      (* [removable] is newest-first; a stable sort keeps recent
         clauses ahead of old ones within each glue class *)
      let sorted = List.stable_sort (fun a b -> compare a.lbd b.lbd) !removable in
      let keep_n = List.length sorted / 2 in
      List.iteri
        (fun i c ->
          if i < keep_n then kept := c :: !kept
          else begin
            c.deleted <- true;
            s.clause_count <- s.clause_count - 1
          end)
        sorted;
      Vec.shrink s.learnts 0;
      List.iter (Vec.push s.learnts) (List.rev !kept);
      s.reduce_limit <- s.reduce_limit + (s.reduce_limit / 2)
    end
  end

let rec luby i =
  (* Luby sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find k = if pow2 k - 1 >= i then k else find (k + 1) in
  let k = find 1 in
  if pow2 k - 1 = i then pow2 (k - 1) else luby (i - pow2 (k - 1) + 1)

let pick_branch s =
  let rec go () =
    if Vec.len s.heap = 0 then None
    else
      let v = heap_remove_max s in
      if s.assign.(v) = 0 then Some v else go ()
  in
  go ()

exception Unsat
exception Sat_found

let solve ?(assumptions = []) s =
  if not s.ok then false
  else begin
    cancel_until s 0;
    let assumptions = Array.of_list assumptions in
    let conflicts_budget = ref 100 in
    let restart_count = ref 0 in
    try
      let rec search () =
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            if decision_level s <= Array.length assumptions then begin
              (* conflict within/below assumption levels: UNSAT under assumptions.
                 Conservative: any conflict at a level not above the assumption
                 prefix means assumptions are inconsistent with the clauses. *)
              if decision_level s = 0 then s.ok <- false;
              raise Unsat
            end;
            reduce_db s;
            let learnt, back_lvl, lbd = analyze s confl in
            let back_lvl = max back_lvl (min (Array.length assumptions) (decision_level s - 1)) in
            cancel_until s back_lvl;
            record_learnt s learnt lbd;
            var_decay s;
            decr conflicts_budget;
            if !conflicts_budget <= 0 then begin
              incr restart_count;
              s.restarts <- s.restarts + 1;
              conflicts_budget := 100 * luby (!restart_count + 1);
              cancel_until s (min (Array.length assumptions) (decision_level s))
            end;
            search ()
        | None ->
            if decision_level s < Array.length assumptions then begin
              (* establish next assumption *)
              let a = assumptions.(decision_level s) in
              match lit_val s a with
              | 1 ->
                  (* already true: still open a level to keep indexing aligned *)
                  Vec.push s.trail_lim (Vec.len s.trail);
                  search ()
              | 2 -> raise Unsat
              | _ ->
                  Vec.push s.trail_lim (Vec.len s.trail);
                  enqueue s a None;
                  search ()
            end
            else begin
              match pick_branch s with
              | None -> raise Sat_found
              | Some v ->
                  s.decisions <- s.decisions + 1;
                  Vec.push s.trail_lim (Vec.len s.trail);
                  let ph =
                    let t = s.target.(v) in
                    if s.opts.o_target_phase && t <> 0 then t = 1 else s.polarity.(v)
                  in
                  enqueue s (if ph then pos v else neg v) None;
                  search ()
            end
      in
      search ()
    with
    | Sat_found ->
        if s.opts.o_target_phase then
          (* remember the model as the preferred phases of later solves *)
          for v = 0 to s.nvars - 1 do
            s.target.(v) <- s.assign.(v)
          done;
        true
    | Unsat ->
        cancel_until s 0;
        false
  end

let set_polarity s v b =
  if v < s.nvars then begin
    s.polarity.(v) <- b;
    (* a fresh suggestion outranks the stale model phase *)
    if s.opts.o_target_phase then s.target.(v) <- (if b then 1 else 2)
  end

let backtrack s = cancel_until s 0

let snapshot s = Array.sub s.assign 0 s.nvars

(* ------------------------------------------------------------------ *)
(* Warm clone.  Copies the whole solver — clause database, learnt
   clauses, saved/target phases, VSIDS activities and heap, and the
   level-0 trail — so a forked exploration starts with everything the
   parent learnt instead of an empty solver.

   Clause records are mutable ([deleted], [lbd]) and aliased: the two
   watchers of a clause, its learnts-vector slot, and (transiently)
   blocking-literal slots all reference the same record, and
   [propagate] swaps [lits] in place.  The copy therefore goes
   through an identity-keyed memo table so every alias in the clone
   points at the clone's own copy of the record.

   Only a solver at decision level 0 can be cloned: reasons are
   dropped ([analyze]/[lit_redundant] never consult reasons of
   level-0 variables), which would be unsound for a trail that still
   has propagations above level 0. *)

module Clause_tbl = Hashtbl.Make (struct
  type t = clause

  let equal = ( == )
  let hash c = Hashtbl.hash c.lits
end)

let clone s =
  if decision_level s > 0 then
    invalid_arg "Sat.clone: solver not at decision level 0";
  let memo = Clause_tbl.create 4096 in
  let copy_clause c =
    if c == dummy_clause then dummy_clause
    else
      match Clause_tbl.find_opt memo c with
      | Some c' -> c'
      | None ->
          let c' = { c with lits = Array.copy c.lits } in
          Clause_tbl.add memo c c';
          c'
  in
  let copy_wl (w : Wl.t) : Wl.t =
    {
      cls = Array.map copy_clause (Array.sub w.cls 0 w.len);
      lit = Array.sub w.lit 0 w.len;
      len = w.len;
    }
  in
  let copy_int_vec (v : int Vec.t) : int Vec.t =
    { data = Array.copy v.data; len = v.len; dummy = v.dummy }
  in
  let copy_learnts (v : clause Vec.t) : clause Vec.t =
    {
      data =
        Array.init (Array.length v.data) (fun i ->
            if i < v.len then copy_clause (Vec.get v i) else v.dummy);
      len = v.len;
      dummy = v.dummy;
    }
  in
  {
    nvars = s.nvars;
    ok = s.ok;
    clause_count = s.clause_count;
    opts = s.opts;
    watches = Array.map copy_wl s.watches;
    bin_watches = Array.map copy_wl s.bin_watches;
    assign = Array.copy s.assign;
    level = Array.copy s.level;
    (* level-0 restore: reasons are never consulted below level 1 *)
    reason = Array.make (Array.length s.reason) None;
    activity = Array.copy s.activity;
    polarity = Array.copy s.polarity;
    target = Array.copy s.target;
    heap_pos = Array.copy s.heap_pos;
    heap = copy_int_vec s.heap;
    var_inc = s.var_inc;
    trail = copy_int_vec s.trail;
    trail_lim = copy_int_vec s.trail_lim;
    qhead = s.qhead;
    constrained = Array.copy s.constrained;
    learnts = copy_learnts s.learnts;
    reduce_limit = s.reduce_limit;
    lbd_stamp = Array.make (Array.length s.lbd_stamp) 0;
    lbd_stamp_n = 0;
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_clauses = 0;
    learnt_literals = 0;
    db_reductions = 0;
    kept_glue = 0;
    minimised_literals = 0;
    seen = Array.make (Array.length s.seen) false;
  }

let value s v = s.assign.(v) = 1

let lit_value s l = lit_val s l = 1
