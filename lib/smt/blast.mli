(** Word-level to bit-level translation (Tseitin encoding).

    A blaster owns caches mapping each hash-consed {!Expr.t} to an
    array of SAT literals (one per bit, LSB first).  Gates are
    structurally shared, so blasting the same subterm twice is free.

    A blaster is bound to one {!Expr.ctx}; terms from any other
    context are rejected (their tags would collide with cached
    entries). *)

type t

val create : Expr.ctx -> Sat.t -> t

val clone : t -> ectx:Expr.ctx -> sat:Sat.t -> t
(** Warm copy bound to [ectx]/[sat], which must be a {!Expr.clone_ctx}
    clone and a {!Sat.clone} of this blaster's own pair: the caches are
    keyed by term tags, variable/taint ids, and SAT literals, all of
    which those clones preserve, so every pre-fork circuit stays
    shared.  Cache-traffic counters restart at zero. *)

val lit_true : t -> int
val lit_false : t -> int

val bits : t -> Expr.t -> int array
(** Literals of each bit of the term, allocating definitional clauses
    in the underlying SAT solver as needed. *)

val lit : t -> Expr.t -> int
(** The single literal of a width-1 term. *)

val var_bits : t -> Expr.var -> int array option
(** The literals backing a variable if it has been blasted. *)

val taint_bits : t -> int -> int array option
(** The literals backing taint node [id] if it has been blasted. *)

val cache_stats : t -> int * int
(** (hits, misses) of the blasted-term cache since creation — a hit is
    a {!bits} call answered without translating the term again. *)
