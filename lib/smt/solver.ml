module Bits = Bitv.Bits

type result = Sat | Unsat

(* metric cells resolved once at creation; [run] updates them and
   flushes SAT/blaster counter deltas after every solve *)
type metrics = {
  m_obs : Obs.Registry.t;
  m_checks : Obs.Counter.t;
  m_time : Obs.Timer.t;
  m_depth_hw : Obs.Gauge.t;
  m_decisions : Obs.Counter.t;
  m_propagations : Obs.Counter.t;
  m_conflicts : Obs.Counter.t;
  m_restarts : Obs.Counter.t;
  m_learnt_clauses : Obs.Counter.t;
  m_learnt_literals : Obs.Counter.t;
  m_db_reductions : Obs.Counter.t;
  m_kept_glue : Obs.Counter.t;
  m_minimised_literals : Obs.Counter.t;
  m_cache_hits : Obs.Counter.t;
  m_cache_misses : Obs.Counter.t;
  m_rewrite_hits : Obs.Counter.t;
  (* last-flushed readings, so deltas accumulate correctly even when
     several solvers (e.g. across rebuilds) share one registry *)
  mutable m_last_sat : Sat.counters;
  mutable m_last_hits : int;
  mutable m_last_misses : int;
  mutable m_last_rewrites : int;
}

type t = {
  ectx : Expr.ctx;
  sat : Sat.t;
  blast : Blast.t;
  simplify : bool; (* word-level rewrite before blasting *)
  metrics : metrics;
  mutable scopes : int list; (* activation literals, innermost first *)
  (* snapshot of the SAT assignment after the last Sat answer; models
     are read from here so they survive backtracking, and branch
     conditions already true under it skip the solver entirely *)
  mutable model_snap : int array;
  (* per-variable suggested values for free inputs; consulted when the
     SAT core left the bit unassigned (unconstrained vars are no longer
     decided at all) *)
  suggestions : (int, Bitv.Bits.t) Hashtbl.t;
  mutable checks : int;
  mutable time : float;
}

let make_metrics obs ectx sat =
  let c = Obs.Registry.counter obs and t = Obs.Registry.timer obs in
  {
    m_obs = obs;
    m_checks = c "solver.checks";
    m_time = t "solver.time";
    m_depth_hw = Obs.Registry.gauge obs "solver.scope_depth_hw";
    m_decisions = c "sat.decisions";
    m_propagations = c "sat.propagations";
    m_conflicts = c "sat.conflicts";
    m_restarts = c "sat.restarts";
    m_learnt_clauses = c "sat.learnt_clauses";
    m_learnt_literals = c "sat.learnt_literals";
    m_db_reductions = c "sat.db_reductions";
    m_kept_glue = c "sat.kept_glue";
    m_minimised_literals = c "sat.minimised_literals";
    m_cache_hits = c "blast.cache_hits";
    m_cache_misses = c "blast.cache_misses";
    m_rewrite_hits = c "rewrite.hits";
    m_last_sat = Sat.counters sat;
    m_last_hits = 0;
    m_last_misses = 0;
    (* the term context may predate this solver (rebuilds): report only
       rewrites performed from now on *)
    m_last_rewrites = Expr.rewrite_hits ectx;
  }

let create ?obs ?(sat_options = Sat.default_options) ?(simplify = true) ectx =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let sat = Sat.create ~options:sat_options () in
  let blast = Blast.create ectx sat in
  {
    ectx;
    sat;
    blast;
    simplify;
    metrics = make_metrics obs ectx sat;
    scopes = [];
    model_snap = [||];
    suggestions = Hashtbl.create 256;
    checks = 0;
    time = 0.0;
  }

let obs s = s.metrics.m_obs

(* Warm handoff: clone the full solver stack onto a cloned term
   context.  The parent must have no open scopes — popped scopes
   leave only permanently-disabled guard units behind, which carry
   over harmlessly.  The clone starts with fresh metrics (zeroed
   counters all around, so deltas flush correctly into [obs]). *)
let clone ?obs ~ectx s =
  if s.scopes <> [] then invalid_arg "Solver.clone: open scopes";
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  Sat.backtrack s.sat;
  let sat = Sat.clone s.sat in
  let blast = Blast.clone s.blast ~ectx ~sat in
  {
    ectx;
    sat;
    blast;
    simplify = s.simplify;
    metrics = make_metrics obs ectx sat;
    scopes = [];
    model_snap = Array.copy s.model_snap;
    suggestions = Hashtbl.copy s.suggestions;
    checks = 0;
    time = 0.0;
  }

let flush_stats s =
  let m = s.metrics in
  let c = Sat.counters s.sat and last = m.m_last_sat in
  Obs.Counter.add m.m_decisions (c.Sat.c_decisions - last.Sat.c_decisions);
  Obs.Counter.add m.m_propagations (c.Sat.c_propagations - last.Sat.c_propagations);
  Obs.Counter.add m.m_conflicts (c.Sat.c_conflicts - last.Sat.c_conflicts);
  Obs.Counter.add m.m_restarts (c.Sat.c_restarts - last.Sat.c_restarts);
  Obs.Counter.add m.m_learnt_clauses (c.Sat.c_learnt_clauses - last.Sat.c_learnt_clauses);
  Obs.Counter.add m.m_learnt_literals (c.Sat.c_learnt_literals - last.Sat.c_learnt_literals);
  Obs.Counter.add m.m_db_reductions (c.Sat.c_db_reductions - last.Sat.c_db_reductions);
  Obs.Counter.add m.m_kept_glue (c.Sat.c_kept_glue - last.Sat.c_kept_glue);
  Obs.Counter.add m.m_minimised_literals
    (c.Sat.c_minimised_literals - last.Sat.c_minimised_literals);
  m.m_last_sat <- c;
  let hits, misses = Blast.cache_stats s.blast in
  Obs.Counter.add m.m_cache_hits (hits - m.m_last_hits);
  Obs.Counter.add m.m_cache_misses (misses - m.m_last_misses);
  m.m_last_hits <- hits;
  m.m_last_misses <- misses;
  let rw = Expr.rewrite_hits s.ectx in
  Obs.Counter.add m.m_rewrite_hits (rw - m.m_last_rewrites);
  m.m_last_rewrites <- rw

let scope_depth s = List.length s.scopes

let push s =
  Sat.backtrack s.sat;
  let g = Sat.pos (Sat.new_var s.sat) in
  s.scopes <- g :: s.scopes;
  Obs.Gauge.set_max s.metrics.m_depth_hw (List.length s.scopes)

let pop s =
  match s.scopes with
  | [] -> invalid_arg "Solver.pop: no scope to pop"
  | g :: rest ->
      Sat.backtrack s.sat;
      (* permanently disable the scope's assertions *)
      Sat.add_clause s.sat [ Sat.negate g ];
      s.scopes <- rest

let ctx s = s.ectx

(* word-level rewrite at assert time: what the pass discharges never
   reaches the CNF layer *)
let prepare_term s e = if s.simplify then Expr.simplify e else e

let assert_ s e =
  if Expr.width e <> 1 then invalid_arg "Solver.assert_: width-1 term expected";
  if Expr.ctx_of e != s.ectx then
    invalid_arg "Solver.assert_: term from a different Expr context";
  Sat.backtrack s.sat;
  let l = Blast.lit s.blast (prepare_term s e) in
  match s.scopes with
  | [] -> Sat.add_clause s.sat [ l ]
  | g :: _ -> Sat.add_clause s.sat [ Sat.negate g; l ]

let run s assumptions =
  s.checks <- s.checks + 1;
  Obs.Counter.incr s.metrics.m_checks;
  let t0 = Obs.Clock.now () in
  let r = Sat.solve ~assumptions s.sat in
  let dt = Obs.Clock.now () -. t0 in
  s.time <- s.time +. dt;
  Obs.Timer.add s.metrics.m_time dt;
  flush_stats s;
  if r then begin
    s.model_snap <- Sat.snapshot s.sat;
    Sat
  end
  else Unsat

let check s = run s s.scopes

let check_assuming s es =
  Sat.backtrack s.sat;
  let ls =
    List.map
      (fun e ->
        if Expr.width e <> 1 then
          invalid_arg "Solver.check_assuming: width-1 term expected";
        Blast.lit s.blast (prepare_term s e))
      es
  in
  run s (s.scopes @ ls)

let suggest s e (b : Bits.t) =
  (* record the preferred value, materialize the variable's bits
     (fresh SAT vars, no clauses), and set branching polarity for the
     bits the solver does decide *)
  (match e.Expr.node with
  | Expr.Var v -> Hashtbl.replace s.suggestions v.Expr.vid b
  | _ -> ());
  let ls = Blast.bits s.blast e in
  Array.iteri
    (fun i l ->
      if l land 1 = 0 (* positive literal: polarity = bit value *) then
        Sat.set_polarity s.sat (l lsr 1) (Bits.get b i)
      else Sat.set_polarity s.sat (l lsr 1) (not (Bits.get b i)))
    ls

(* literal value under the snapshot: 1 true, 2 false, 0 unassigned *)
let snap_raw s l =
  let v = l lsr 1 in
  let a = if v < Array.length s.model_snap then s.model_snap.(v) else 0 in
  if a = 0 then 0 else if l land 1 = 0 then a else 3 - a

let snap_lit s l = snap_raw s l = 1

let bits_of_lits s ls =
  let w = Array.length ls in
  let v = ref (Bits.zero w) in
  for i = 0 to w - 1 do
    if snap_lit s ls.(i) then
      v := Bits.logor !v (Bits.shift_left (Bits.of_int ~width:w 1) i)
  done;
  !v

(* like [bits_of_lits] but bits the model leaves unassigned (the SAT
   core only decides constrained variables) fall back to a suggested
   value — any value is a sound extension for an unconstrained bit *)
let bits_of_lits_with_default s ls (default : Bits.t option) =
  let w = Array.length ls in
  let v = ref (Bits.zero w) in
  for i = 0 to w - 1 do
    let bit =
      match snap_raw s ls.(i) with
      | 1 -> true
      | 2 -> false
      | _ -> ( match default with Some d -> Bits.get d i | None -> false)
    in
    if bit then v := Bits.logor !v (Bits.shift_left (Bits.of_int ~width:w 1) i)
  done;
  !v

let model_var s (v : Expr.var) =
  let default = Hashtbl.find_opt s.suggestions v.Expr.vid in
  match Blast.var_bits s.blast v with
  | Some ls -> bits_of_lits_with_default s ls default
  | None -> ( match default with Some d -> Bits.zext d v.Expr.vwidth | None -> Bits.zero v.Expr.vwidth)

let model_taint s id width =
  match Blast.taint_bits s.blast id with
  | Some ls -> bits_of_lits s ls
  | None -> Bits.zero width

let model_eval s e =
  Expr.eval ~taint:(fun id w -> model_taint s id w) (fun v -> model_var s v) e

let size s = Sat.nvars s.sat

(* [holds s e] — the width-1 term [e] is true under the last model
   (extended with zeros for new variables).  Used by the explorer to
   skip solver calls for branches the current model already takes. *)
let holds s e =
  Array.length s.model_snap > 0 && Bits.is_ones (model_eval s e)

(* ------------------------------------------------------------------ *)
(* Captured models.

   A [model] freezes the last satisfying assignment: a copy of the
   snapshot array plus the blast that maps terms to SAT literals at
   capture time.  Bits the snapshot leaves unassigned — and any
   variable blasted only after the capture (its literals index past
   the frozen snapshot) — read as zero, which is a sound extension:
   an unconstrained bit can take any value, and the zero default makes
   the assignment a fixed total function for all time.  Evaluation
   only performs read-only blast lookups ([var_bits]/[taint_bits]),
   never blasting, so captured models are safe to consult from worker
   domains while the originating solver's structures are frozen. *)

type model = { m_snap : int array; m_blast : Blast.t }

let capture_model s =
  if Array.length s.model_snap = 0 then None
  else Some { m_snap = Array.copy s.model_snap; m_blast = s.blast }

let model_snap_lit m l =
  let v = l lsr 1 in
  let a = if v < Array.length m.m_snap then m.m_snap.(v) else 0 in
  (if l land 1 = 0 then a else match a with 0 -> 0 | x -> 3 - x) = 1

let model_lits m ls =
  let w = Array.length ls in
  let v = ref (Bits.zero w) in
  for i = 0 to w - 1 do
    if model_snap_lit m ls.(i) then
      v := Bits.logor !v (Bits.shift_left (Bits.of_int ~width:w 1) i)
  done;
  !v

(* The width guards matter for models consulted across term contexts
   (a cold-replay task evaluating a splitter-captured model): a name
   or id can denote a different-width symbol there, and the assignment
   must stay total — mismatches read as zero like unblasted symbols. *)
let frozen_eval m e =
  Expr.eval
    ~taint:(fun id w ->
      match Blast.taint_bits m.m_blast id with
      | Some ls when Array.length ls = w -> model_lits m ls
      | Some _ | None -> Bits.zero w)
    (fun v ->
      match Blast.var_bits m.m_blast v with
      | Some ls when Array.length ls = v.Expr.vwidth -> model_lits m ls
      | Some _ | None -> Bits.zero v.Expr.vwidth)
    e

let model_holds m e = Bits.is_ones (frozen_eval m e)

(* snapshot words plus a fixed overhead for the record/blast pointer;
   used only for the qcache.bytes gauge, precision is not needed *)
let model_bytes m = (Array.length m.m_snap * 8) + 64

let num_checks s = s.checks
let solve_time s = s.time
