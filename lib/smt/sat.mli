(** A CDCL SAT solver (two-watched-literal propagation, VSIDS decision
    heuristic, first-UIP clause learning, phase saving, Luby restarts,
    solving under assumptions).

    Literals are integers: variable [v]'s positive literal is [2 * v],
    its negation [2 * v + 1].  Variables must be allocated with
    {!new_var} before use. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocates a variable and returns its index. *)

val nvars : t -> int
val nclauses : t -> int

val pos : int -> int
(** [pos v] is variable [v]'s positive literal. *)

val neg : int -> int
(** [neg v] is variable [v]'s negative literal. *)

val negate : int -> int
(** Negates a literal. *)

val add_clause : t -> int list -> unit
(** Adds a clause.  Adding the empty clause (or a clause falsified at
    level 0) makes the instance permanently unsatisfiable. *)

val solve : ?assumptions:int list -> t -> bool
(** [solve s ~assumptions] is [true] iff the clauses are satisfiable
    together with the assumption literals.  The solver state persists:
    learned clauses are kept across calls (incremental solving). *)

val set_polarity : t -> int -> bool -> unit
(** [set_polarity s v b] makes the solver try [v = b] first when
    branching (phase suggestion; overwritten by phase saving after the
    next conflict involving [v]). *)

val backtrack : t -> unit
(** Undoes all decisions, returning to level 0.  Must be called before
    {!add_clause} if a {!solve} has run since the last clause was
    added.  Invalidate any model read so far. *)

val snapshot : t -> int array
(** Copy of the current assignment array (0 unassigned / 1 true /
    2 false per variable), valid until mutated by the caller. *)

val value : t -> int -> bool
(** [value s v]: variable [v]'s value in the model of the last
    successful {!solve}. *)

val lit_value : t -> int -> bool

val stats : t -> int * int * int
(** (decisions, propagations, conflicts) since creation. *)

type counters = {
  c_decisions : int;
  c_propagations : int;
  c_conflicts : int;
  c_restarts : int;  (** Luby restarts performed *)
  c_learnt_clauses : int;  (** clauses learned (unit learnts included) *)
  c_learnt_literals : int;  (** total literals across learned clauses *)
}

val counters : t -> counters
(** All search counters since creation (monotone; the {!Solver} flushes
    deltas of these into its metrics registry). *)
