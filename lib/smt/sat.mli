(** A CDCL SAT solver (two-watched-literal propagation with blocking
    literals and a dedicated binary-clause watch layer, VSIDS decision
    heuristic, first-UIP clause learning with recursive self-subsumption
    minimisation, LBD-scored learnt-clause database reduction, phase
    saving with target-phase reuse, Luby restarts, solving under
    assumptions).

    Literals are integers: variable [v]'s positive literal is [2 * v],
    its negation [2 * v + 1].  Variables must be allocated with
    {!new_var} before use. *)

type t

type options = {
  o_phase_saving : bool;
      (** save the assigned polarity of each variable on backtrack and
          reuse it as the branching phase (default [true]) *)
  o_target_phase : bool;
      (** after a satisfiable solve, replay the model's polarities as
          the preferred phases of later solves (default [true]) *)
  o_reduce_db : bool;
      (** periodically halve the learnt-clause database, dropping
          high-glue clauses first (default [true]) *)
  o_minimise : bool;
      (** shrink 1UIP clauses by recursive self-subsumption before
          recording them (default [true]) *)
  o_reduce_init : int;
      (** learnt clauses tolerated before the first database
          reduction; the limit then grows geometrically
          (default [4000]) *)
}

val default_options : options

val create : ?options:options -> unit -> t

val new_var : t -> int
(** Allocates a variable and returns its index. *)

val nvars : t -> int
val nclauses : t -> int

val pos : int -> int
(** [pos v] is variable [v]'s positive literal. *)

val neg : int -> int
(** [neg v] is variable [v]'s negative literal. *)

val negate : int -> int
(** Negates a literal. *)

val add_clause : t -> int list -> unit
(** Adds a clause.  Adding the empty clause (or a clause falsified at
    level 0) makes the instance permanently unsatisfiable. *)

val solve : ?assumptions:int list -> t -> bool
(** [solve s ~assumptions] is [true] iff the clauses are satisfiable
    together with the assumption literals.  The solver state persists:
    learned clauses are kept across calls (incremental solving). *)

val set_polarity : t -> int -> bool -> unit
(** [set_polarity s v b] makes the solver try [v = b] first when
    branching.  Overrides both the saved phase and the target phase
    from the last model, so fresh suggestions always win. *)

val backtrack : t -> unit
(** Undoes all decisions, returning to level 0.  Must be called before
    {!add_clause} if a {!solve} has run since the last clause was
    added.  Invalidate any model read so far. *)

val snapshot : t -> int array
(** Copy of the current assignment array (0 unassigned / 1 true /
    2 false per variable), valid until mutated by the caller. *)

val clone : t -> t
(** Deep copy of the whole solver — clause database, learnt clauses,
    saved/target phases, activities, and the level-0 trail — so a
    forked exploration inherits everything the parent learnt.  Search
    counters start at zero in the clone.  Raises [Invalid_argument]
    unless the solver is at decision level 0 (call {!backtrack}
    first). *)

val value : t -> int -> bool
(** [value s v]: variable [v]'s value in the model of the last
    successful {!solve}. *)

val lit_value : t -> int -> bool

val stats : t -> int * int * int
(** (decisions, propagations, conflicts) since creation. *)

type counters = {
  c_decisions : int;
  c_propagations : int;
  c_conflicts : int;
  c_restarts : int;  (** Luby restarts performed *)
  c_learnt_clauses : int;  (** clauses learned (unit learnts included) *)
  c_learnt_literals : int;  (** total literals across learned clauses *)
  c_db_reductions : int;  (** learnt-database reduction passes *)
  c_kept_glue : int;  (** clauses kept across reductions for glue <= 2 *)
  c_minimised_literals : int;
      (** literals removed from 1UIP clauses by self-subsumption *)
}

val counters : t -> counters
(** All search counters since creation (monotone; the {!Solver} flushes
    deltas of these into its metrics registry). *)
