module Bits = Bitv.Bits

type t = {
  ectx : Expr.ctx; (* the only term context this blaster accepts *)
  sat : Sat.t;
  tt : int; (* literal that is always true *)
  expr_cache : (int, int array) Hashtbl.t; (* Expr tag -> bit literals *)
  var_cache : (int, int array) Hashtbl.t; (* var id -> bit literals *)
  taint_cache : (int, int array) Hashtbl.t; (* taint id -> bit literals *)
  gate_cache : (int, int) Hashtbl.t; (* packed gate key -> output literal *)
  (* term-level cache traffic, read by the solver's metrics flush *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ectx sat =
  let v = Sat.new_var sat in
  Sat.add_clause sat [ Sat.pos v ];
  {
    ectx;
    sat;
    tt = Sat.pos v;
    expr_cache = Hashtbl.create 1024;
    var_cache = Hashtbl.create 256;
    taint_cache = Hashtbl.create 64;
    gate_cache = Hashtbl.create 4096;
    cache_hits = 0;
    cache_misses = 0;
  }

let lit_true b = b.tt
let lit_false b = Sat.negate b.tt

(* Warm clone onto an already-cloned context/solver pair.  The caches
   are keyed by term tag, variable id, taint id, and SAT literals —
   all preserved by [Expr.importer] and [Sat.clone] respectively — so
   copying them verbatim keeps every pre-fork circuit shared. *)
let clone b ~ectx ~sat =
  {
    ectx;
    sat;
    tt = b.tt;
    expr_cache = Hashtbl.copy b.expr_cache;
    var_cache = Hashtbl.copy b.var_cache;
    taint_cache = Hashtbl.copy b.taint_cache;
    gate_cache = Hashtbl.copy b.gate_cache;
    cache_hits = 0;
    cache_misses = 0;
  }

(* ------------------------------------------------------------------ *)
(* Gates.  Each returns a literal defined by Tseitin clauses; results
   are cached structurally so shared subcircuits are built once. *)

let is_tt b l = l = b.tt
let is_ff b l = l = Sat.negate b.tt

(* Gate keys are packed into a single immediate int: the gate kind in
   the low 2 bits (and=0, xor=1, mux=2) and the operand literals in
   fixed-width fields above it — 30 bits each for the binary gates,
   20 bits each for mux.  Literals that overflow a field (hundreds of
   millions of SAT variables) fall back to building the gate uncached:
   correctness is unaffected, only sharing is lost. *)

let pack2 kind x y =
  if x < 0x4000_0000 && y < 0x4000_0000 then kind lor (x lsl 2) lor (y lsl 32) else -1

let pack_mux c t f =
  if c < 0x10_0000 && t < 0x10_0000 && f < 0x10_0000 then
    2 lor (c lsl 2) lor (t lsl 22) lor (f lsl 42)
  else -1

let gate b key build =
  if key < 0 then build ()
  else
    match Hashtbl.find_opt b.gate_cache key with
    | Some l -> l
    | None ->
        let l = build () in
        Hashtbl.add b.gate_cache key l;
        l

let and2 b a c =
  if is_ff b a || is_ff b c then lit_false b
  else if is_tt b a then c
  else if is_tt b c then a
  else if a = c then a
  else if a = Sat.negate c then lit_false b
  else
    let x, y = if a < c then (a, c) else (c, a) in
    gate b (pack2 0 x y) (fun () ->
        let g = Sat.pos (Sat.new_var b.sat) in
        Sat.add_clause b.sat [ Sat.negate g; x ];
        Sat.add_clause b.sat [ Sat.negate g; y ];
        Sat.add_clause b.sat [ g; Sat.negate x; Sat.negate y ];
        g)

let or2 b a c = Sat.negate (and2 b (Sat.negate a) (Sat.negate c))

let xor2 b a c =
  if is_ff b a then c
  else if is_ff b c then a
  else if is_tt b a then Sat.negate c
  else if is_tt b c then Sat.negate a
  else if a = c then lit_false b
  else if a = Sat.negate c then lit_true b
  else
    (* normalize: strip negations into a parity bit *)
    let parity = (a land 1) lxor (c land 1) in
    let a' = a land lnot 1 and c' = c land lnot 1 in
    let x, y = if a' < c' then (a', c') else (c', a') in
    let g =
      gate b (pack2 1 x y) (fun () ->
          let g = Sat.pos (Sat.new_var b.sat) in
          Sat.add_clause b.sat [ Sat.negate g; x; y ];
          Sat.add_clause b.sat [ Sat.negate g; Sat.negate x; Sat.negate y ];
          Sat.add_clause b.sat [ g; Sat.negate x; y ];
          Sat.add_clause b.sat [ g; x; Sat.negate y ];
          g)
    in
    if parity = 1 then Sat.negate g else g

let mux b c t f =
  (* c ? t : f *)
  if is_tt b c then t
  else if is_ff b c then f
  else if t = f then t
  else if is_tt b t && is_ff b f then c
  else if is_ff b t && is_tt b f then Sat.negate c
  else
    gate b (pack_mux c t f) (fun () ->
        let g = Sat.pos (Sat.new_var b.sat) in
        Sat.add_clause b.sat [ Sat.negate c; Sat.negate t; g ];
        Sat.add_clause b.sat [ Sat.negate c; t; Sat.negate g ];
        Sat.add_clause b.sat [ c; Sat.negate f; g ];
        Sat.add_clause b.sat [ c; f; Sat.negate g ];
        g)

let full_adder b a c cin =
  let s = xor2 b (xor2 b a c) cin in
  let cout = or2 b (and2 b a c) (and2 b cin (xor2 b a c)) in
  (s, cout)

(* ripple-carry addition; returns (sum bits, carry out) *)
let adder b xs ys cin =
  let w = Array.length xs in
  let out = Array.make w (lit_false b) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder b xs.(i) ys.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let reduce_and b ls =
  (* balanced tree keeps gate depth logarithmic *)
  let rec go ls =
    match ls with
    | [] -> lit_true b
    | [ l ] -> l
    | _ ->
        let rec pair = function
          | x :: y :: rest -> and2 b x y :: pair rest
          | rest -> rest
        in
        go (pair ls)
  in
  go ls

let reduce_or b ls = Sat.negate (reduce_and b (List.map Sat.negate ls))

let eq_bits b xs ys =
  let ls = ref [] in
  for i = 0 to Array.length xs - 1 do
    ls := Sat.negate (xor2 b xs.(i) ys.(i)) :: !ls
  done;
  reduce_and b !ls

let ult_bits blaster xs ys =
  (* a < b iff no carry out of a + ~b + 1 *)
  let nys = Array.map Sat.negate ys in
  let _, carry = adder blaster xs nys (lit_true blaster) in
  Sat.negate carry

let slt_bits blaster xs ys =
  let w = Array.length xs in
  if w = 0 then lit_false blaster
  else
    let sx = xs.(w - 1) and sy = ys.(w - 1) in
    (* slt = ult XOR sign(a) XOR sign(b) *)
    xor2 blaster (ult_bits blaster xs ys) (xor2 blaster sx sy)

(* barrel shifter; [fill] supplies vacated bit positions *)
let shifter blaster dir xs amount fill =
  let w = Array.length xs in
  let nstages =
    let rec go k = if 1 lsl k >= w then k else go (k + 1) in
    if w <= 1 then 0 else go 1
  in
  let cur = ref (Array.copy xs) in
  for st = 0 to min (nstages - 1) (Array.length amount - 1) do
    let k = 1 lsl st in
    let bit = amount.(st) in
    let prev = !cur in
    let next =
      Array.init w (fun i ->
          let src =
            match dir with
            | `Left -> if i - k >= 0 then prev.(i - k) else fill
            | `Right -> if i + k < w then prev.(i + k) else fill
          in
          mux blaster bit src prev.(i))
    in
    cur := next
  done;
  (* any amount bit beyond the stages shifts everything out *)
  let high = ref [] in
  for i = nstages to Array.length amount - 1 do
    high := amount.(i) :: !high
  done;
  let oversize = reduce_or blaster !high in
  Array.map (fun l -> mux blaster oversize fill l) !cur

let mul_bits blaster xs ys =
  let w = Array.length xs in
  let acc = ref (Array.make w (lit_false blaster)) in
  for i = 0 to w - 1 do
    (* partial product: (ys_i ? xs : 0) << i *)
    let pp =
      Array.init w (fun j ->
          if j < i then lit_false blaster else and2 blaster ys.(i) xs.(j - i))
    in
    let sum, _ = adder blaster !acc pp (lit_false blaster) in
    acc := sum
  done;
  !acc

let divider blaster xs ys =
  (* restoring division, MSB first; returns (quotient, remainder);
     SMT-LIB semantics for zero divisor handled by caller *)
  let w = Array.length xs in
  let q = Array.make w (lit_false blaster) in
  let r = ref (Array.make w (lit_false blaster)) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i *)
    let shifted = Array.init w (fun j -> if j = 0 then xs.(i) else !r.(j - 1)) in
    let ge = Sat.negate (ult_bits blaster shifted ys) in
    let nys = Array.map Sat.negate ys in
    let diff, _ = adder blaster shifted nys (lit_true blaster) in
    q.(i) <- ge;
    r := Array.init w (fun j -> mux blaster ge diff.(j) shifted.(j))
  done;
  (q, !r)

(* ------------------------------------------------------------------ *)
(* Word-level translation *)

let rec bits b (e : Expr.t) =
  if Expr.ctx_of e != b.ectx then
    invalid_arg "Blast.bits: term from a different Expr context";
  match Hashtbl.find_opt b.expr_cache e.Expr.tag with
  | Some ls ->
      b.cache_hits <- b.cache_hits + 1;
      ls
  | None ->
      b.cache_misses <- b.cache_misses + 1;
      let ls = translate b e in
      assert (Array.length ls = e.Expr.width);
      Hashtbl.add b.expr_cache e.Expr.tag ls;
      ls

and fresh_bits b w = Array.init w (fun _ -> Sat.pos (Sat.new_var b.sat))

and translate b (e : Expr.t) =
  let open Expr in
  match e.node with
  | Const c ->
      Array.init (Bits.width c) (fun i ->
          if Bits.get c i then lit_true b else lit_false b)
  | Var v -> (
      match Hashtbl.find_opt b.var_cache v.vid with
      | Some ls -> ls
      | None ->
          let ls = fresh_bits b v.vwidth in
          Hashtbl.add b.var_cache v.vid ls;
          ls)
  | Taint id -> (
      match Hashtbl.find_opt b.taint_cache id with
      | Some ls -> ls
      | None ->
          let ls = fresh_bits b e.width in
          Hashtbl.add b.taint_cache id ls;
          ls)
  | Not a -> Array.map Sat.negate (bits b a)
  | And (x, y) -> Array.map2 (and2 b) (bits b x) (bits b y)
  | Or (x, y) -> Array.map2 (or2 b) (bits b x) (bits b y)
  | Xor (x, y) -> Array.map2 (xor2 b) (bits b x) (bits b y)
  | Add (x, y) -> fst (adder b (bits b x) (bits b y) (lit_false b))
  | Sub (x, y) ->
      fst (adder b (bits b x) (Array.map Sat.negate (bits b y)) (lit_true b))
  | Mul (x, y) -> mul_bits b (bits b x) (bits b y)
  | Udiv (x, y) ->
      let xs = bits b x and ys = bits b y in
      let q, _ = divider b xs ys in
      (* division by zero yields all ones *)
      let yzero = Sat.negate (reduce_or b (Array.to_list ys)) in
      Array.map (fun l -> mux b yzero (lit_true b) l) q
  | Urem (x, y) ->
      let xs = bits b x and ys = bits b y in
      let _, r = divider b xs ys in
      let yzero = Sat.negate (reduce_or b (Array.to_list ys)) in
      Array.init (Array.length xs) (fun i -> mux b yzero xs.(i) r.(i))
  | Concat (hi, lo) -> Array.append (bits b lo) (bits b hi)
  | Slice (x, hi, lo) -> Array.sub (bits b x) lo (hi - lo + 1)
  | Eq (x, y) -> [| eq_bits b (bits b x) (bits b y) |]
  | Ult (x, y) -> [| ult_bits b (bits b x) (bits b y) |]
  | Slt (x, y) -> [| slt_bits b (bits b x) (bits b y) |]
  | Ite (c, t, f) ->
      let cl = (bits b c).(0) in
      Array.map2 (mux b cl) (bits b t) (bits b f)
  | Shl (x, y) -> shifter b `Left (bits b x) (bits b y) (lit_false b)
  | Lshr (x, y) -> shifter b `Right (bits b x) (bits b y) (lit_false b)
  | Ashr (x, y) ->
      let xs = bits b x in
      let w = Array.length xs in
      let fill = if w = 0 then lit_false b else xs.(w - 1) in
      shifter b `Right xs (bits b y) fill

let lit b e =
  let ls = bits b e in
  if Array.length ls <> 1 then invalid_arg "Blast.lit: width-1 term expected";
  ls.(0)

let var_bits b (v : Expr.var) = Hashtbl.find_opt b.var_cache v.Expr.vid
let taint_bits b id = Hashtbl.find_opt b.taint_cache id
let cache_stats b = (b.cache_hits, b.cache_misses)
