module Bits = Bitv.Bits

type var = { vname : string; vwidth : int; vid : int }

(* Every term carries the context it was interned in; structural
   equality coincides with physical equality only within one context.
   The arena is keyed by the node hash (buckets scanned with shallow
   equality) because the recursive type group cannot reference a
   functor-generated hashtable of itself. *)
type t = { node : node; tag : int; width : int; tainted : bool; ctx : ctx }

and node =
  | Const of Bits.t
  | Var of var
  | Taint of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Concat of t * t
  | Slice of t * int * int
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ite of t * t * t
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t

and ctx = {
  ctx_id : int;
  arena : (int, t list) Hashtbl.t;  (** node hash -> interned terms *)
  mutable next_tag : int;
  registry : (string, var) Hashtbl.t;
  mutable next_vid : int;
  mutable fresh_counter : int;
  mutable next_taint : int;
  taint_memo : (int, Bits.t) Hashtbl.t;  (** term tag -> taint mask *)
  simp_memo : (int, t) Hashtbl.t;  (** term tag -> simplified form *)
  known_memo : (int, Bits.t * Bits.t) Hashtbl.t;  (** term tag -> known bits *)
  support_memo : (int, int array) Hashtbl.t;  (** term tag -> symbol support *)
  digest_memo : (int, string) Hashtbl.t;  (** term tag -> structural digest *)
  mutable rewrite_hits : int;  (** terms changed by {!simplify} *)
}

let ctx_counter = Atomic.make 0

let create_ctx () =
  {
    ctx_id = Atomic.fetch_and_add ctx_counter 1;
    arena = Hashtbl.create 4096;
    next_tag = 0;
    registry = Hashtbl.create 256;
    next_vid = 0;
    fresh_counter = 0;
    next_taint = 0;
    taint_memo = Hashtbl.create 1024;
    simp_memo = Hashtbl.create 4096;
    known_memo = Hashtbl.create 4096;
    support_memo = Hashtbl.create 4096;
    digest_memo = Hashtbl.create 1024;
    rewrite_hits = 0;
  }

let ctx_of e = e.ctx
let ctx_id c = c.ctx_id
let same_ctx a b = a.ctx == b.ctx

let width e = e.width
let tainted e = e.tainted

(* ------------------------------------------------------------------ *)
(* Hash-consing.  Children of a node are already hash-consed, so
   shallow equality compares children by physical identity. *)

module Node_key = struct
  let child_tag e = e.tag

  let equal a b =
    match (a, b) with
    | Const x, Const y -> Bits.equal x y
    | Var x, Var y -> x.vid = y.vid
    | Taint x, Taint y -> x = y
    | Not x, Not y -> x == y
    | And (a1, a2), And (b1, b2)
    | Or (a1, a2), Or (b1, b2)
    | Xor (a1, a2), Xor (b1, b2)
    | Add (a1, a2), Add (b1, b2)
    | Sub (a1, a2), Sub (b1, b2)
    | Mul (a1, a2), Mul (b1, b2)
    | Udiv (a1, a2), Udiv (b1, b2)
    | Urem (a1, a2), Urem (b1, b2)
    | Concat (a1, a2), Concat (b1, b2)
    | Eq (a1, a2), Eq (b1, b2)
    | Ult (a1, a2), Ult (b1, b2)
    | Slt (a1, a2), Slt (b1, b2)
    | Shl (a1, a2), Shl (b1, b2)
    | Lshr (a1, a2), Lshr (b1, b2)
    | Ashr (a1, a2), Ashr (b1, b2) -> a1 == b1 && a2 == b2
    | Slice (a, h1, l1), Slice (b, h2, l2) -> a == b && h1 = h2 && l1 = l2
    | Ite (a1, a2, a3), Ite (b1, b2, b3) -> a1 == b1 && a2 == b2 && a3 == b3
    | ( ( Const _ | Var _ | Taint _ | Not _ | And _ | Or _ | Xor _ | Add _
        | Sub _ | Mul _ | Udiv _ | Urem _ | Concat _ | Slice _ | Eq _ | Ult _
        | Slt _ | Ite _ | Shl _ | Lshr _ | Ashr _ ),
        _ ) -> false

  let hash n =
    let h2 k a b = (k * 1000003) + (child_tag a * 31) + child_tag b in
    match n with
    | Const b -> Hashtbl.hash (0, Bits.to_hex b, Bits.width b)
    | Var v -> Hashtbl.hash (1, v.vid)
    | Taint i -> Hashtbl.hash (2, i)
    | Not a -> Hashtbl.hash (3, a.tag)
    | And (a, b) -> h2 4 a b
    | Or (a, b) -> h2 5 a b
    | Xor (a, b) -> h2 6 a b
    | Add (a, b) -> h2 7 a b
    | Sub (a, b) -> h2 8 a b
    | Mul (a, b) -> h2 9 a b
    | Udiv (a, b) -> h2 10 a b
    | Urem (a, b) -> h2 11 a b
    | Concat (a, b) -> h2 12 a b
    | Slice (a, h, l) -> Hashtbl.hash (13, a.tag, h, l)
    | Eq (a, b) -> h2 14 a b
    | Ult (a, b) -> h2 15 a b
    | Slt (a, b) -> h2 16 a b
    | Ite (a, b, c) -> Hashtbl.hash (17, a.tag, b.tag, c.tag)
    | Shl (a, b) -> h2 18 a b
    | Lshr (a, b) -> h2 19 a b
    | Ashr (a, b) -> h2 20 a b
end

let node_tainted = function
  | Const _ | Var _ -> false
  | Taint _ -> true
  | Not a -> a.tainted
  | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
  | Udiv (a, b) | Urem (a, b) | Concat (a, b) | Eq (a, b) | Ult (a, b)
  | Slt (a, b) | Shl (a, b) | Lshr (a, b) | Ashr (a, b) -> a.tainted || b.tainted
  | Slice (a, _, _) -> a.tainted
  | Ite (a, b, c) -> a.tainted || b.tainted || c.tainted

let mk ctx node width =
  let h = Node_key.hash node in
  let bucket = Option.value (Hashtbl.find_opt ctx.arena h) ~default:[] in
  match List.find_opt (fun e -> Node_key.equal e.node node) bucket with
  | Some e -> e
  | None ->
      let e = { node; tag = ctx.next_tag; width; tainted = node_tainted node; ctx } in
      ctx.next_tag <- ctx.next_tag + 1;
      Hashtbl.replace ctx.arena h (e :: bucket);
      e

let check_ctx name a b =
  if a.ctx != b.ctx then
    invalid_arg
      (Printf.sprintf "Expr.%s: terms from different contexts (#%d vs #%d)" name
         a.ctx.ctx_id b.ctx.ctx_id)

(* ------------------------------------------------------------------ *)
(* Variables *)

let var ctx name w =
  match Hashtbl.find_opt ctx.registry name with
  | Some v ->
      if v.vwidth <> w then
        invalid_arg
          (Printf.sprintf "Expr.var: %s already has width %d (asked %d)" name
             v.vwidth w);
      mk ctx (Var v) w
  | None ->
      let v = { vname = name; vwidth = w; vid = ctx.next_vid } in
      ctx.next_vid <- ctx.next_vid + 1;
      Hashtbl.add ctx.registry name v;
      mk ctx (Var v) w

let var_of e =
  match e.node with
  | Var v -> v
  | _ -> invalid_arg "Expr.var_of: not a variable"

let fresh_var ctx prefix w =
  ctx.fresh_counter <- ctx.fresh_counter + 1;
  var ctx (Printf.sprintf "%s!%d" prefix ctx.fresh_counter) w

let fresh_taint ctx w =
  ctx.next_taint <- ctx.next_taint + 1;
  mk ctx (Taint ctx.next_taint) w

(* ------------------------------------------------------------------ *)
(* Clone-from-parent: the warm-handoff path for forked explorations.

   A clone is an empty arena that inherits the parent's variable
   registry (shared [var] records — they are immutable and carry no
   context) and all allocation counters.  Terms are carried over on
   demand by {!importer}, which re-interns a parent term's DAG into
   the clone *preserving tags*: an imported term has the same [tag],
   [width], [tainted] flag, and (for [Var] nodes) the same [vid] as
   the original.  Caches keyed by tag or vid that were built against
   the parent — in particular a cloned solver's blast caches — remain
   valid for imported terms.

   Two disciplines make this sound:
   - the parent must be frozen (no interning) while clones import
     from it, because [importer] reads the parent's term graph;
   - all imports into a clone must happen before the clone interns
     native terms, so a native term can never occupy a tag below
     [next_tag]'s starting point (native terms allocate fresh tags at
     or above the parent's final [next_tag], imports stay below it). *)

let clone_ctx parent =
  {
    ctx_id = Atomic.fetch_and_add ctx_counter 1;
    arena = Hashtbl.create 4096;
    next_tag = parent.next_tag;
    registry = Hashtbl.copy parent.registry;
    next_vid = parent.next_vid;
    fresh_counter = parent.fresh_counter;
    next_taint = parent.next_taint;
    taint_memo = Hashtbl.create 1024;
    simp_memo = Hashtbl.create 4096;
    known_memo = Hashtbl.create 4096;
    support_memo = Hashtbl.create 4096;
    digest_memo = Hashtbl.create 1024;
    rewrite_hits = 0;
  }

(* intern preserving an existing identity (tag/width/taint) instead of
   allocating; used only by [importer], where uniqueness of the source
   arena guarantees the bucket cannot already hold a different term
   with the same structure under another tag *)
let intern_import ctx node ~tag ~width ~tainted =
  let h = Node_key.hash node in
  let bucket = Option.value (Hashtbl.find_opt ctx.arena h) ~default:[] in
  match List.find_opt (fun e -> Node_key.equal e.node node) bucket with
  | Some e -> e
  | None ->
      let e = { node; tag; width; tainted; ctx } in
      Hashtbl.replace ctx.arena h (e :: bucket);
      e

let importer ctx =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 1024 in
  let rec go e =
    if e.ctx == ctx then e
    else
      match Hashtbl.find_opt memo e.tag with
      | Some e' -> e'
      | None ->
          let node' =
            match e.node with
            | (Const _ | Var _ | Taint _) as n -> n
            | Not a -> Not (go a)
            | And (a, b) -> And (go a, go b)
            | Or (a, b) -> Or (go a, go b)
            | Xor (a, b) -> Xor (go a, go b)
            | Add (a, b) -> Add (go a, go b)
            | Sub (a, b) -> Sub (go a, go b)
            | Mul (a, b) -> Mul (go a, go b)
            | Udiv (a, b) -> Udiv (go a, go b)
            | Urem (a, b) -> Urem (go a, go b)
            | Concat (a, b) -> Concat (go a, go b)
            | Slice (a, h, l) -> Slice (go a, h, l)
            | Eq (a, b) -> Eq (go a, go b)
            | Ult (a, b) -> Ult (go a, go b)
            | Slt (a, b) -> Slt (go a, go b)
            | Ite (a, b, c) -> Ite (go a, go b, go c)
            | Shl (a, b) -> Shl (go a, go b)
            | Lshr (a, b) -> Lshr (go a, go b)
            | Ashr (a, b) -> Ashr (go a, go b)
          in
          let e' =
            intern_import ctx node' ~tag:e.tag ~width:e.width ~tainted:e.tainted
          in
          Hashtbl.add memo e.tag e';
          e'
  in
  go

(* ------------------------------------------------------------------ *)
(* Smart constructors.  Leaves take the context explicitly; compound
   constructors inherit it from their operands. *)

let const ctx b = mk ctx (Const b) (Bits.width b)
let of_int ctx ~width n = const ctx (Bits.of_int ~width n)
let zero ctx w = const ctx (Bits.zero w)
let ones ctx w = const ctx (Bits.ones w)
let tru ctx = const ctx (Bits.ones 1)
let fls ctx = const ctx (Bits.zero 1)
let of_bool ctx b = if b then tru ctx else fls ctx

let is_const e = match e.node with Const b -> Some b | _ -> None
let is_true e = match e.node with Const b -> Bits.is_ones b && Bits.width b = 1 | _ -> false
let is_false e = match e.node with Const b -> Bits.is_zero b && Bits.width b = 1 | _ -> false

let check_width name a b =
  check_ctx name a b;
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Expr.%s: width mismatch (%d vs %d)" name a.width b.width)

let lognot a =
  match a.node with
  | Const b -> const a.ctx (Bits.lognot b)
  | Not x -> x
  | _ -> mk a.ctx (Not a) a.width

let rec logand a b =
  check_width "logand" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.logand x y)
  | Const _, _ -> logand b a
  | _, Const y when Bits.is_zero y -> b
  | _, Const y when Bits.is_ones y -> a
  | _ when a == b && not a.tainted -> a
  | _ -> mk a.ctx (And (a, b)) a.width

let rec logor a b =
  check_width "logor" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.logor x y)
  | Const _, _ -> logor b a
  | _, Const y when Bits.is_zero y -> a
  | _, Const y when Bits.is_ones y -> b
  | _ when a == b && not a.tainted -> a
  | _ -> mk a.ctx (Or (a, b)) a.width

let rec logxor a b =
  check_width "logxor" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.logxor x y)
  | Const _, _ -> logxor b a
  | _, Const y when Bits.is_zero y -> a
  | _, Const y when Bits.is_ones y -> lognot a
  | _ when a == b && not a.tainted -> zero a.ctx a.width
  | _ -> mk a.ctx (Xor (a, b)) a.width

let rec add a b =
  check_width "add" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.add x y)
  | Const _, _ -> add b a
  | _, Const y when Bits.is_zero y -> a
  | _ -> mk a.ctx (Add (a, b)) a.width

let sub a b =
  check_width "sub" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.sub x y)
  | _, Const y when Bits.is_zero y -> a
  | _ when a == b && not a.tainted -> zero a.ctx a.width
  | _ -> mk a.ctx (Sub (a, b)) a.width

let neg a = sub (zero a.ctx a.width) a

let rec mul a b =
  check_width "mul" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.mul x y)
  | Const _, _ -> mul b a
  (* Taint-elimination: anything times zero is zero (§5.3). *)
  | _, Const y when Bits.is_zero y -> b
  | _, Const y when Bits.equal y (Bits.of_int ~width:(Bits.width y) 1) -> a
  | _ -> mk a.ctx (Mul (a, b)) a.width

let udiv a b =
  check_width "udiv" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.udiv x y)
  | _ -> mk a.ctx (Udiv (a, b)) a.width

let urem a b =
  check_width "urem" a b;
  match (a.node, b.node) with
  | Const x, Const y -> const a.ctx (Bits.urem x y)
  | _ -> mk a.ctx (Urem (a, b)) a.width

let rec concat hi lo =
  check_ctx "concat" hi lo;
  if hi.width = 0 then lo
  else if lo.width = 0 then hi
  else
    match (hi.node, lo.node) with
    | Const x, Const y -> const hi.ctx (Bits.concat x y)
    (* Merge adjacent slices of the same base term. *)
    | Slice (a, h1, l1), Slice (b, h2, l2) when a == b && l1 = h2 + 1 ->
        slice a ~hi:h1 ~lo:l2
    | _ -> mk hi.ctx (Concat (hi, lo)) (hi.width + lo.width)

and slice e ~hi ~lo =
  if lo < 0 || hi < lo || hi >= e.width then
    invalid_arg
      (Printf.sprintf "Expr.slice: [%d:%d] out of range for width %d" hi lo
         e.width);
  if lo = 0 && hi = e.width - 1 then e
  else
    match e.node with
    | Const b -> const e.ctx (Bits.slice b ~hi ~lo)
    | Slice (x, _, l) -> slice x ~hi:(l + hi) ~lo:(l + lo)
    | Concat (h, l) ->
        if hi < l.width then slice l ~hi ~lo
        else if lo >= l.width then slice h ~hi:(hi - l.width) ~lo:(lo - l.width)
        else
          concat (slice h ~hi:(hi - l.width) ~lo:0) (slice l ~hi:(l.width - 1) ~lo)
    | Ite (c, t, f) when not c.tainted ->
        (* Push slices into ite so packet reconstruction stays sliceable. *)
        mk e.ctx (Ite (c, slice t ~hi ~lo, slice f ~hi ~lo)) (hi - lo + 1)
    | _ -> mk e.ctx (Slice (e, hi, lo)) (hi - lo + 1)

and ite c t f =
  if c.width <> 1 then invalid_arg "Expr.ite: condition width must be 1";
  check_ctx "ite" c t;
  check_width "ite" t f;
  match c.node with
  | Const b -> if Bits.is_ones b then t else f
  | _ when t == f -> t
  | _ when is_true t && is_false f -> c
  | _ when is_false t && is_true f -> lognot c
  | _ -> mk c.ctx (Ite (c, t, f)) t.width

let zext e w =
  if w < e.width then slice e ~hi:(w - 1) ~lo:0
  else if w = e.width then e
  else concat (zero e.ctx (w - e.width)) e

let sext e w =
  if w < e.width then slice e ~hi:(w - 1) ~lo:0
  else if w = e.width then e
  else if e.width = 0 then zero e.ctx w
  else
    let sign = slice e ~hi:(e.width - 1) ~lo:(e.width - 1) in
    concat (ite sign (ones e.ctx (w - e.width)) (zero e.ctx (w - e.width))) e

let rec eq a b =
  check_width "eq" a b;
  match (a.node, b.node) with
  | Const x, Const y -> of_bool a.ctx (Bits.equal x y)
  | _ when a == b && not a.tainted -> tru a.ctx
  | Const _, _ -> eq b a
  (* eq over concats decomposes into per-part equalities. *)
  | Concat (h, l), Const _ ->
      let bh = slice b ~hi:(a.width - 1) ~lo:l.width in
      let bl = slice b ~hi:(l.width - 1) ~lo:0 in
      band (eq h bh) (eq l bl)
  | _ -> mk a.ctx (Eq (a, b)) 1

and band a b =
  if a.width <> 1 || b.width <> 1 then invalid_arg "Expr.band: width 1 expected";
  logand a b

let bor a b =
  if a.width <> 1 || b.width <> 1 then invalid_arg "Expr.bor: width 1 expected";
  logor a b

let bnot a =
  if a.width <> 1 then invalid_arg "Expr.bnot: width 1 expected";
  lognot a

let neq a b = bnot (eq a b)

let ult a b =
  check_width "ult" a b;
  match (a.node, b.node) with
  | Const x, Const y -> of_bool a.ctx (Bits.ult x y)
  | _, Const y when Bits.is_zero y -> fls a.ctx
  | _ when a == b && not a.tainted -> fls a.ctx
  | _ -> mk a.ctx (Ult (a, b)) 1

let slt a b =
  check_width "slt" a b;
  match (a.node, b.node) with
  | Const x, Const y -> of_bool a.ctx (Bits.slt x y)
  | _ when a == b && not a.tainted -> fls a.ctx
  | _ -> mk a.ctx (Slt (a, b)) 1

let ule a b = bnot (ult b a)
let ugt a b = ult b a
let uge a b = ule b a
let sle a b = bnot (slt b a)
let sgt a b = slt b a
let sge a b = sle b a

let mk_shift ctor fold a b =
  check_width "shift" a b;
  match (a.node, b.node) with
  | Const x, Const y -> (
      match Bits.to_int_checked y with
      | Some k when k <= Bits.width x -> const a.ctx (fold x k)
      | _ -> const a.ctx (fold x (Bits.width x)))
  | _, Const y when Bits.is_zero y -> a
  | _ -> mk a.ctx (ctor a b) a.width

let shl a b = mk_shift (fun a b -> Shl (a, b)) Bits.shift_left a b
let lshr a b = mk_shift (fun a b -> Lshr (a, b)) Bits.shift_right a b
let ashr a b = mk_shift (fun a b -> Ashr (a, b)) Bits.shift_right_arith a b

let conj ctx es = List.fold_left band (tru ctx) es
let disj ctx es = List.fold_left bor (fls ctx) es
let implies a b = bor (bnot a) b

(* ------------------------------------------------------------------ *)
(* Taint mask *)

let rec taint_mask e =
  if not e.tainted then Bits.zero e.width
  else
    match Hashtbl.find_opt e.ctx.taint_memo e.tag with
    | Some m -> m
    | None ->
        let m = compute_taint e in
        Hashtbl.add e.ctx.taint_memo e.tag m;
        m

and compute_taint e =
  let all = Bits.ones e.width in
  match e.node with
  | Const _ | Var _ -> Bits.zero e.width
  | Taint _ -> all
  | Not a -> taint_mask a
  | And (a, b) | Or (a, b) | Xor (a, b) -> Bits.logor (taint_mask a) (taint_mask b)
  | Add (a, b) | Sub (a, b) ->
      (* Carries propagate upward only: everything at or above the
         lowest tainted bit is tainted. *)
      let m = Bits.logor (taint_mask a) (taint_mask b) in
      upward_closure m
  | Mul (a, b) | Udiv (a, b) | Urem (a, b) ->
      if Bits.is_zero (Bits.logor (taint_mask a) (taint_mask b)) then
        Bits.zero e.width
      else all
  | Concat (h, l) -> Bits.concat (taint_mask h) (taint_mask l)
  | Slice (a, hi, lo) -> Bits.slice (taint_mask a) ~hi ~lo
  | Eq (a, b) | Ult (a, b) | Slt (a, b) ->
      if a.tainted || b.tainted then all else Bits.zero 1
  | Ite (c, t, f) ->
      if c.tainted then all else Bits.logor (taint_mask t) (taint_mask f)
  | Shl (a, b) | Lshr (a, b) | Ashr (a, b) ->
      if b.tainted then all
      else (
        match b.node with
        | Const k -> (
            match Bits.to_int_checked k with
            | Some k when k <= e.width -> (
                match e.node with
                | Shl _ -> Bits.shift_left (taint_mask a) k
                | Lshr _ -> Bits.shift_right (taint_mask a) k
                | _ -> if Bits.is_zero (taint_mask a) then Bits.zero e.width else all)
            | _ -> Bits.zero e.width)
        | _ -> if a.tainted then all else Bits.zero e.width)

and upward_closure m =
  let w = Bits.width m in
  let rec lowest i = if i >= w then None else if Bits.get m i then Some i else lowest (i + 1) in
  match lowest 0 with
  | None -> m
  | Some i -> Bits.concat (Bits.ones (w - i)) (Bits.zero i)

(* ------------------------------------------------------------------ *)
(* Traversals *)

let vars e =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go e =
    if not (Hashtbl.mem seen e.tag) then begin
      Hashtbl.add seen e.tag ();
      match e.node with
      | Var v -> acc := v :: !acc
      | Const _ | Taint _ -> ()
      | Not a | Slice (a, _, _) -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
      | Mul (a, b) | Udiv (a, b) | Urem (a, b) | Concat (a, b) | Eq (a, b)
      | Ult (a, b) | Slt (a, b) | Shl (a, b) | Lshr (a, b) | Ashr (a, b) ->
          go a; go b
      | Ite (a, b, c) -> go a; go b; go c
    end
  in
  go e;
  List.sort (fun a b -> compare a.vid b.vid) !acc

(* Symbol support for the independence slicer (Qcache): variables map
   to even ids (2*vid), taint atoms to odd ids (2*id+1), so a single
   int namespace covers both kinds of free symbol without collision.
   Supports are sorted deduplicated arrays, merged bottom-up and
   memoised per hash-consed tag in the term's context; tags are
   preserved by [clone_ctx]/[importer], and clones get fresh memo
   tables, so the memo never leaks across contexts. *)

let sym_of_var v = 2 * v.vid
let sym_of_taint id = (2 * id) + 1
let sym_is_taint s = s land 1 = 1
let sym_id s = s asr 1

let merge_syms (a : int array) (b : int array) : int array =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else begin
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then (out.(!k) <- x; incr i)
      else if y < x then (out.(!k) <- y; incr j)
      else (out.(!k) <- x; incr i; incr j);
      incr k
    done;
    while !i < la do out.(!k) <- a.(!i); incr i; incr k done;
    while !j < lb do out.(!k) <- b.(!j); incr j; incr k done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

let support e =
  let rec go e =
    match Hashtbl.find_opt e.ctx.support_memo e.tag with
    | Some s -> s
    | None ->
        let s =
          match e.node with
          | Const _ -> [||]
          | Var v -> [| sym_of_var v |]
          | Taint id -> [| sym_of_taint id |]
          | Not a | Slice (a, _, _) -> go a
          | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
          | Mul (a, b) | Udiv (a, b) | Urem (a, b) | Concat (a, b) | Eq (a, b)
          | Ult (a, b) | Slt (a, b) | Shl (a, b) | Lshr (a, b) | Ashr (a, b) ->
              merge_syms (go a) (go b)
          | Ite (a, b, c) -> merge_syms (go a) (merge_syms (go b) (go c))
        in
        Hashtbl.add e.ctx.support_memo e.tag s;
        s
  in
  go e

(* Structural digest: a context-independent fingerprint of the term
   DAG, memoised per tag.  Variables hash by name and width (names are
   stable across [clone_ctx] and across separate compilations of the
   same program), so equal digests identify structurally identical
   constraints even when they live in different contexts — the
   property the cross-request UNSAT cache relies on. *)
let digest e =
  let rec go e =
    match Hashtbl.find_opt e.ctx.digest_memo e.tag with
    | Some d -> d
    | None ->
        let buf = Buffer.create 64 in
        let kind k = Buffer.add_char buf (Char.chr (k + 33)) in
        let num n = Buffer.add_string buf (string_of_int n); Buffer.add_char buf ';' in
        (match e.node with
        | Const b -> kind 0; num (Bits.width b); Buffer.add_string buf (Bits.to_hex b)
        | Var v -> kind 1; num v.vwidth; Buffer.add_string buf v.vname
        | Taint id -> kind 2; num e.width; num id
        | Not a -> kind 3; Buffer.add_string buf (go a)
        | And (a, b) -> kind 4; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Or (a, b) -> kind 5; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Xor (a, b) -> kind 6; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Add (a, b) -> kind 7; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Sub (a, b) -> kind 8; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Mul (a, b) -> kind 9; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Udiv (a, b) -> kind 10; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Urem (a, b) -> kind 11; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Concat (a, b) -> kind 12; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Slice (a, hi, lo) -> kind 13; num hi; num lo; Buffer.add_string buf (go a)
        | Eq (a, b) -> kind 14; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Ult (a, b) -> kind 15; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Slt (a, b) -> kind 16; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Ite (a, b, c) ->
            kind 17; Buffer.add_string buf (go a); Buffer.add_string buf (go b);
            Buffer.add_string buf (go c)
        | Shl (a, b) -> kind 18; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Lshr (a, b) -> kind 19; Buffer.add_string buf (go a); Buffer.add_string buf (go b)
        | Ashr (a, b) -> kind 20; Buffer.add_string buf (go a); Buffer.add_string buf (go b));
        let d = Digest.string (Buffer.contents buf) in
        Hashtbl.add e.ctx.digest_memo e.tag d;
        d
  in
  go e

let size e =
  let seen = Hashtbl.create 64 in
  let rec go e =
    if not (Hashtbl.mem seen e.tag) then begin
      Hashtbl.add seen e.tag ();
      match e.node with
      | Var _ | Const _ | Taint _ -> ()
      | Not a | Slice (a, _, _) -> go a
      | And (a, b) | Or (a, b) | Xor (a, b) | Add (a, b) | Sub (a, b)
      | Mul (a, b) | Udiv (a, b) | Urem (a, b) | Concat (a, b) | Eq (a, b)
      | Ult (a, b) | Slt (a, b) | Shl (a, b) | Lshr (a, b) | Ashr (a, b) ->
          go a; go b
      | Ite (a, b, c) -> go a; go b; go c
    end
  in
  go e;
  Hashtbl.length seen

let eval ?(taint = fun _ w -> Bits.zero w) env e =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.tag with
    | Some v -> v
    | None ->
        let v = compute e in
        Hashtbl.add memo e.tag v;
        v
  and compute e =
    let shift_amount b =
      let v = go b in
      match Bits.to_int_checked v with
      | Some k -> min k (Bits.width v + 1)
      | None -> e.width
    in
    match e.node with
    | Const b -> b
    | Var v -> (
        let b = env v in
        if Bits.width b <> v.vwidth then
          invalid_arg (Printf.sprintf "Expr.eval: env width mismatch for %s" v.vname);
        b)
    | Taint id -> taint id e.width
    | Not a -> Bits.lognot (go a)
    | And (a, b) -> Bits.logand (go a) (go b)
    | Or (a, b) -> Bits.logor (go a) (go b)
    | Xor (a, b) -> Bits.logxor (go a) (go b)
    | Add (a, b) -> Bits.add (go a) (go b)
    | Sub (a, b) -> Bits.sub (go a) (go b)
    | Mul (a, b) -> Bits.mul (go a) (go b)
    | Udiv (a, b) -> Bits.udiv (go a) (go b)
    | Urem (a, b) -> Bits.urem (go a) (go b)
    | Concat (h, l) -> Bits.concat (go h) (go l)
    | Slice (a, hi, lo) -> Bits.slice (go a) ~hi ~lo
    | Eq (a, b) -> if Bits.equal (go a) (go b) then Bits.ones 1 else Bits.zero 1
    | Ult (a, b) -> if Bits.ult (go a) (go b) then Bits.ones 1 else Bits.zero 1
    | Slt (a, b) -> if Bits.slt (go a) (go b) then Bits.ones 1 else Bits.zero 1
    | Ite (c, t, f) -> if Bits.is_ones (go c) then go t else go f
    | Shl (a, b) -> Bits.shift_left (go a) (shift_amount b)
    | Lshr (a, b) -> Bits.shift_right (go a) (shift_amount b)
    | Ashr (a, b) -> Bits.shift_right_arith (go a) (shift_amount b)
  in
  go e

let subst f e =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.tag with
    | Some v -> v
    | None ->
        let v = compute e in
        Hashtbl.add memo e.tag v;
        v
  and compute e =
    match e.node with
    | Const _ | Taint _ -> e
    | Var v -> ( match f v with Some r -> r | None -> e)
    | Not a -> lognot (go a)
    | And (a, b) -> logand (go a) (go b)
    | Or (a, b) -> logor (go a) (go b)
    | Xor (a, b) -> logxor (go a) (go b)
    | Add (a, b) -> add (go a) (go b)
    | Sub (a, b) -> sub (go a) (go b)
    | Mul (a, b) -> mul (go a) (go b)
    | Udiv (a, b) -> udiv (go a) (go b)
    | Urem (a, b) -> urem (go a) (go b)
    | Concat (h, l) -> concat (go h) (go l)
    | Slice (a, hi, lo) -> slice (go a) ~hi ~lo
    | Eq (a, b) -> eq (go a) (go b)
    | Ult (a, b) -> ult (go a) (go b)
    | Slt (a, b) -> slt (go a) (go b)
    | Ite (c, t, f') -> ite (go c) (go t) (go f')
    | Shl (a, b) -> shl (go a) (go b)
    | Lshr (a, b) -> lshr (go a) (go b)
    | Ashr (a, b) -> ashr (go a) (go b)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Word-level simplification.

   Applied at assert time, before bit-blasting: terms the rewrite
   discharges never reach the CNF layer.  Two cooperating analyses:

   - [known_bits e] computes per-bit constantness (mask, value): bit i
     of [e] equals bit i of [value] whenever bit i of [mask] is set,
     for every assignment of variables and taints.
   - [simplify e] rebuilds the term bottom-up through the smart
     constructors (re-running constant folding and the structural
     rules on simplified children) and applies known-bits rules the
     constructors cannot see: fully-determined terms collapse to
     constants, comparisons between terms with disjoint value ranges
     collapse to booleans, and nested [Ite]s sharing a hash-consed
     condition drop their dead arm.

   Both are memoised in the context, so the incremental explorer pays
   for each distinct subterm once. *)

let all_known m = Bits.is_ones m

(* contiguous known LSBs of (mask), as a count *)
let known_lsbs m =
  let w = Bits.width m in
  let rec go i = if i < w && Bits.get m i then go (i + 1) else i in
  go 0

let rec known_bits e =
  match e.node with
  | Const b -> (Bits.ones e.width, b)
  | Var _ | Taint _ -> (Bits.zero e.width, Bits.zero e.width)
  | _ -> (
      match Hashtbl.find_opt e.ctx.known_memo e.tag with
      | Some k -> k
      | None ->
          let k = compute_known e in
          Hashtbl.add e.ctx.known_memo e.tag k;
          k)

and compute_known e =
  let nothing = (Bits.zero e.width, Bits.zero e.width) in
  match e.node with
  | Const b -> (Bits.ones e.width, b)
  | Var _ | Taint _ -> nothing
  | Not a ->
      let m, v = known_bits a in
      (m, Bits.logand m (Bits.lognot v))
  | And (a, b) ->
      let ma, va = known_bits a and mb, vb = known_bits b in
      (* known 0 where either side is known 0; known 1 where both are *)
      let zeros =
        Bits.logor
          (Bits.logand ma (Bits.lognot va))
          (Bits.logand mb (Bits.lognot vb))
      in
      let ones = Bits.logand (Bits.logand ma va) (Bits.logand mb vb) in
      (Bits.logor zeros ones, ones)
  | Or (a, b) ->
      let ma, va = known_bits a and mb, vb = known_bits b in
      let ones = Bits.logor (Bits.logand ma va) (Bits.logand mb vb) in
      let zeros =
        Bits.logand
          (Bits.logand ma (Bits.lognot va))
          (Bits.logand mb (Bits.lognot vb))
      in
      (Bits.logor zeros ones, ones)
  | Xor (a, b) ->
      let ma, va = known_bits a and mb, vb = known_bits b in
      let m = Bits.logand ma mb in
      (m, Bits.logand m (Bits.logxor va vb))
  | Add (a, b) | Sub (a, b) ->
      (* carries flow upward: the result is known below the lowest
         unknown bit of either operand *)
      let ma, va = known_bits a and mb, vb = known_bits b in
      let k = min (known_lsbs ma) (known_lsbs mb) in
      if k = 0 then nothing
      else
        let sum =
          match e.node with
          | Add _ -> Bits.add va vb
          | _ -> Bits.sub va vb
        in
        let m = Bits.concat (Bits.zero (e.width - k)) (Bits.ones k) in
        (m, Bits.logand m sum)
  | Mul _ | Udiv _ | Urem _ -> nothing
  | Concat (h, l) ->
      let mh, vh = known_bits h and ml, vl = known_bits l in
      (Bits.concat mh ml, Bits.concat vh vl)
  | Slice (a, hi, lo) ->
      let m, v = known_bits a in
      (Bits.slice m ~hi ~lo, Bits.slice v ~hi ~lo)
  | Eq (a, b) ->
      (* disagreement on a commonly-known bit decides the comparison *)
      let ma, va = known_bits a and mb, vb = known_bits b in
      let m = Bits.logand ma mb in
      if not (Bits.is_zero (Bits.logand m (Bits.logxor va vb))) then
        (Bits.ones 1, Bits.zero 1)
      else nothing
  | Ult (a, b) -> (
      match ult_by_range (known_bits a) (known_bits b) with
      | Some r -> (Bits.ones 1, if r then Bits.ones 1 else Bits.zero 1)
      | None -> nothing)
  | Slt _ -> nothing
  | Ite (_, t, f) ->
      let mt, vt = known_bits t and mf, vf = known_bits f in
      (* known where both arms are known and agree *)
      let m =
        Bits.logand (Bits.logand mt mf) (Bits.lognot (Bits.logxor vt vf))
      in
      (m, Bits.logand m vt)
  | Shl (a, b) | Lshr (a, b) | Ashr (a, b) -> (
      match b.node with
      | Const k -> (
          match Bits.to_int_checked k with
          | Some k when k <= e.width ->
              let m, v = known_bits a in
              let w = e.width in
              (* vacated positions are filled with a known constant,
                 so they join the known mask *)
              let low_ones = Bits.zext (Bits.ones (min k w)) w in
              let high_ones = Bits.shift_left low_ones (w - min k w) in
              (match e.node with
              | Shl _ ->
                  (Bits.logor (Bits.shift_left m k) low_ones, Bits.shift_left v k)
              | Lshr _ ->
                  (Bits.logor (Bits.shift_right m k) high_ones, Bits.shift_right v k)
              | _ ->
                  (* arithmetic shift: the fill copies the sign bit,
                     known only when the sign bit is known *)
                  if w > 0 && Bits.get m (w - 1) then
                    ( Bits.logor (Bits.shift_right m k) high_ones,
                      Bits.shift_right_arith (Bits.logand m v) k )
                  else
                    ( Bits.shift_right m k,
                      Bits.logand (Bits.shift_right m k) (Bits.shift_right v k) ))
          | _ -> nothing)
      | _ -> nothing)

(* unsigned range [lo, hi] of a term from its known bits: unknown bits
   range freely *)
and ult_by_range (ma, va) (mb, vb) =
  let lo m v = Bits.logand m v in
  let hi m v = Bits.logor (Bits.lognot m) (Bits.logand m v) in
  if Bits.ult (hi ma va) (lo mb vb) then Some true
  else if not (Bits.ult (lo ma va) (hi mb vb)) then Some false
  else None

let simplify e0 =
  let ctx = e0.ctx in
  let hit old knew = if knew != old then ctx.rewrite_hits <- ctx.rewrite_hits + 1 in
  let rec go e =
    match e.node with
    | Const _ | Var _ | Taint _ -> e
    | _ -> (
        match Hashtbl.find_opt ctx.simp_memo e.tag with
        | Some r -> r
        | None ->
            let r = post (rebuild e) in
            hit e r;
            Hashtbl.add ctx.simp_memo e.tag r;
            (* a simplified term is its own normal form *)
            if r != e && not (Hashtbl.mem ctx.simp_memo r.tag) then
              Hashtbl.add ctx.simp_memo r.tag r;
            r)
  (* bottom-up: the smart constructors re-run constant folding and the
     structural rules over the simplified children *)
  and rebuild e =
    match e.node with
    | Const _ | Var _ | Taint _ -> e
    | Not a -> lognot (go a)
    | And (a, b) -> logand (go a) (go b)
    | Or (a, b) -> logor (go a) (go b)
    | Xor (a, b) -> logxor (go a) (go b)
    | Add (a, b) -> add (go a) (go b)
    | Sub (a, b) -> sub (go a) (go b)
    | Mul (a, b) -> mul (go a) (go b)
    | Udiv (a, b) -> udiv (go a) (go b)
    | Urem (a, b) -> urem (go a) (go b)
    | Concat (h, l) -> concat (go h) (go l)
    | Slice (a, hi, lo) -> slice (go a) ~hi ~lo
    | Eq (a, b) -> eq_simp (go a) (go b)
    | Ult (a, b) -> ult (go a) (go b)
    | Slt (a, b) -> slt (go a) (go b)
    | Ite (c, t, f) -> ite_simp (go c) (go t) (go f)
    | Shl (a, b) -> shl (go a) (go b)
    | Lshr (a, b) -> lshr (go a) (go b)
    | Ashr (a, b) -> ashr (go a) (go b)
  (* equality over aligned concats splits into narrower equalities,
     exposing per-field constant folding *)
  and eq_simp a b =
    match (a.node, b.node) with
    | Concat (h1, l1), Concat (h2, l2) when l1.width = l2.width ->
        band (eq_simp h1 h2) (eq_simp l1 l2)
    | _ -> eq a b
  (* nested selections on the same hash-consed condition take the
     outer branch's arm; conditions are compared physically *)
  and ite_simp c t f =
    let t = match t.node with Ite (c', t', _) when c' == c -> t' | _ -> t in
    let f = match f.node with Ite (c', _, f') when c' == c -> f' | _ -> f in
    match c.node with
    | Not c' -> ite c' f t
    | _ -> ite c t f
  (* known-bits post-pass on the rebuilt node *)
  and post e =
    match e.node with
    | Const _ | Var _ | Taint _ -> e
    | _ ->
        let m, v = known_bits e in
        if all_known m then const ctx v else e
  in
  go e0

let rewrite_hits ctx = ctx.rewrite_hits

let rec pp ppf e =
  let open Format in
  match e.node with
  | Const b -> Bits.pp ppf b
  | Var v -> fprintf ppf "%s" v.vname
  | Taint id -> fprintf ppf "taint#%d/%d" id e.width
  | Not a -> fprintf ppf "(~ %a)" pp a
  | And (a, b) -> fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> fprintf ppf "(%a | %a)" pp a pp b
  | Xor (a, b) -> fprintf ppf "(%a ^ %a)" pp a pp b
  | Add (a, b) -> fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> fprintf ppf "(%a * %a)" pp a pp b
  | Udiv (a, b) -> fprintf ppf "(%a / %a)" pp a pp b
  | Urem (a, b) -> fprintf ppf "(%a %% %a)" pp a pp b
  | Concat (a, b) -> fprintf ppf "(%a ++ %a)" pp a pp b
  | Slice (a, hi, lo) -> fprintf ppf "%a[%d:%d]" pp a hi lo
  | Eq (a, b) -> fprintf ppf "(%a == %a)" pp a pp b
  | Ult (a, b) -> fprintf ppf "(%a <u %a)" pp a pp b
  | Slt (a, b) -> fprintf ppf "(%a <s %a)" pp a pp b
  | Ite (c, t, f) -> fprintf ppf "(%a ? %a : %a)" pp c pp t pp f
  | Shl (a, b) -> fprintf ppf "(%a << %a)" pp a pp b
  | Lshr (a, b) -> fprintf ppf "(%a >> %a)" pp a pp b
  | Ashr (a, b) -> fprintf ppf "(%a >>a %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e
