(* Query cache: constraint-independence slicing + model reuse +
   UNSAT-slice memoisation (KLEE's counterexample-cache design,
   adapted to the explorer's DFS discipline).

   The explorer maintains the invariant that the *current path* (base
   conditions plus the DFS spine) is satisfiable: it only descends
   into branches whose feasibility was just established, and task
   bases were proven satisfiable by the splitter.  Under that
   invariant, the feasibility of path ∪ {c} only depends on the
   *slice* of c — the connected component of c in the constraint
   graph of path ∪ {c}, where two conditions are adjacent iff their
   free-symbol supports intersect:

   - if a total assignment satisfies every condition of the slice,
     path ∪ {c} is satisfiable (the rest of the path is satisfiable
     by the invariant, and its support is disjoint from the slice's,
     so the two partial models combine);
   - if path ∪ {c} is unsatisfiable, the slice alone is already
     unsatisfiable (same argument, contraposed).

   Three caches exploit this:

   1. a ring of captured models (from probe checks and emitted
      tests).  Any frozen total assignment satisfying the whole slice
      witnesses feasibility — provenance is irrelevant, so models
      survive solver rebuilds and task handoffs;
   2. a SAT-set cache: every successful probe check proves the digest
      set of path ∪ {c} simultaneously satisfiable; a later slice
      that is a *subset* of a cached SAT set is satisfiable with no
      evaluation at all;
   3. an UNSAT-set cache keyed by the slice's canonical digest set; a
      later slice that is a *superset* of a cached UNSAT set is
      unsatisfiable.

   Digest sets are context-independent (Expr.digest hashes structure
   and variable names), so SAT/UNSAT sets — unlike models — can be
   shared across runs of the same program via a {!store}.

   Verdicts are objective: a verdict agrees with what a solver call
   would return, so caching changes which branches *pay* for their
   answer, never the answer — the explored tree, and therefore the
   emitted test suite, is identical with the cache on or off. *)

module Bits = Bitv.Bits

(* ------------------------------------------------------------------ *)
(* Undoable union-find over symbol ids.

   No path compression — finds stay O(log n) under union-by-size and
   every union is undone by exactly one trail entry, which is what
   lets the structure mirror the DFS spine's push/pop. *)

type uf = {
  parent : (int, int) Hashtbl.t;  (* sym -> direct parent; absent = root *)
  rank : (int, int) Hashtbl.t;  (* root -> component size; absent = 1 *)
  mutable trail : int list;  (* child roots, newest first *)
  mutable tlen : int;
}

let uf_create () =
  { parent = Hashtbl.create 256; rank = Hashtbl.create 256; trail = []; tlen = 0 }

let rec uf_find u s =
  match Hashtbl.find_opt u.parent s with
  | None -> s
  | Some p -> uf_find u p

let uf_size u s = Option.value (Hashtbl.find_opt u.rank s) ~default:1

let uf_union u a b =
  let ra = uf_find u a and rb = uf_find u b in
  if ra <> rb then begin
    let sa = uf_size u ra and sb = uf_size u rb in
    let child, root = if sa <= sb then (ra, rb) else (rb, ra) in
    Hashtbl.replace u.parent child root;
    Hashtbl.replace u.rank root (sa + sb);
    u.trail <- child :: u.trail;
    u.tlen <- u.tlen + 1
  end

(* undo unions until the trail is [n] long again *)
let uf_rewind u n =
  while u.tlen > n do
    match u.trail with
    | [] -> assert false
    | child :: rest ->
        let root = Hashtbl.find u.parent child in
        Hashtbl.remove u.parent child;
        Hashtbl.replace u.rank root (uf_size u root - uf_size u child);
        u.trail <- rest;
        u.tlen <- u.tlen - 1
  done

(* ------------------------------------------------------------------ *)
(* Digest sets: sorted arrays of structural digests with a 63-bit
   membership signature for fast subset prefiltering. *)

let sig_of_digest (d : string) = 1 lsl (Char.code d.[0] land 62)

let sig_of_members (ms : string array) =
  Array.fold_left (fun acc d -> acc lor sig_of_digest d) 0 ms

(* both sorted ascending: is every element of [a] in [b]? *)
let subset_sorted (a : string array) (b : string array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else
      let c = compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1) else if c > 0 then go i (j + 1) else false
  in
  la <= lb && go 0 0

type dset = { members : string array; dsig : int }

let dset_of_list ds =
  let members = Array.of_list (List.sort_uniq compare ds) in
  { members; dsig = sig_of_members members }

let dset_key s = Digest.string (String.concat "" (Array.to_list s.members))
let dset_bytes s = (Array.length s.members * 24) + 48

(* bounded ring of digest sets, deduplicated by canonical key;
   [dring_insert] returns the byte-accounting delta *)
type dring = {
  slots : dset option array;
  index : (string, int) Hashtbl.t;  (* key -> slot *)
  mutable next : int;
}

let dring_create slots =
  { slots = Array.make (max 1 slots) None; index = Hashtbl.create 64; next = 0 }

let dring_insert r s =
  let key = dset_key s in
  if Hashtbl.mem r.index key then 0
  else begin
    let i = r.next in
    let freed =
      match r.slots.(i) with
      | Some old ->
          Hashtbl.remove r.index (dset_key old);
          dset_bytes old
      | None -> 0
    in
    r.slots.(i) <- Some s;
    Hashtbl.replace r.index key i;
    r.next <- (i + 1) mod Array.length r.slots;
    dset_bytes s - freed
  end

(* ------------------------------------------------------------------ *)
(* Cross-run store: SAT/UNSAT digest sets are pure facts about the
   program's constraints, so a serve daemon shares them between
   requests for the same fingerprint.  Models are not shared — they
   reference one run's blast tables. *)

type store = {
  st_mu : Mutex.t;
  st_cap : int;
  st_sat : (string, dset) Hashtbl.t;
  st_unsat : (string, dset) Hashtbl.t;
}

let create_store ?(slots = 512) () =
  {
    st_mu = Mutex.create ();
    st_cap = max 1 slots;
    st_sat = Hashtbl.create 64;
    st_unsat = Hashtbl.create 64;
  }

let store_entries st =
  Mutex.protect st.st_mu (fun () ->
      Hashtbl.length st.st_sat + Hashtbl.length st.st_unsat)

(* ------------------------------------------------------------------ *)

type cmodel = {
  cm : Solver.model;
  cm_memo : (int, bool) Hashtbl.t;  (* term tag -> verdict under cm *)
}

let cmodel_holds m (e : Expr.t) =
  match Hashtbl.find_opt m.cm_memo e.Expr.tag with
  | Some b -> b
  | None ->
      let b = Solver.model_holds m.cm e in
      Hashtbl.add m.cm_memo e.Expr.tag b;
      b

type cond = { q_expr : Expr.t; q_syms : int array; q_digest : string }

type cells = {
  c_slices : Obs.Counter.t;
  c_model_hits : Obs.Counter.t;
  c_unsat_hits : Obs.Counter.t;
  c_subsumed : Obs.Counter.t;
  c_avoided : Obs.Counter.t;
  g_bytes : Obs.Gauge.t;
}

let make_cells reg =
  {
    c_slices = Obs.Registry.counter reg "qcache.slices";
    c_model_hits = Obs.Registry.counter reg "qcache.model_hits";
    c_unsat_hits = Obs.Registry.counter reg "qcache.unsat_hits";
    c_subsumed = Obs.Registry.counter reg "qcache.subsumed";
    c_avoided = Obs.Registry.counter reg "qcache.solver_checks_avoided";
    g_bytes = Obs.Registry.gauge reg "qcache.bytes";
  }

let model_ring_len = 8

type t = {
  cells : cells;
  uf : uf;
  mutable base : cond list;  (* permanent conditions, newest first *)
  mutable spine : (cond * int) list;  (* active conds + trail mark, newest first *)
  models : cmodel option array;  (* ring of assignment witnesses *)
  mutable mnext : int;
  sat_sets : dring;
  unsat_sets : dring;
  mutable bytes : int;
  store : store option;
  (* stashed by [check] for the follow-up note_* call *)
  mutable last_slice : dset option;
  mutable last_cdigest : string option;
}

let add_bytes t n =
  t.bytes <- t.bytes + n;
  Obs.Gauge.set t.cells.g_bytes t.bytes

let seed_from_store t =
  match t.store with
  | None -> ()
  | Some st ->
      Mutex.protect st.st_mu (fun () ->
          Hashtbl.iter (fun _ s -> add_bytes t (dring_insert t.sat_sets s)) st.st_sat;
          Hashtbl.iter
            (fun _ s -> add_bytes t (dring_insert t.unsat_sets s))
            st.st_unsat)

let create ?obs ?(slots = 512) ?store () =
  let reg = match obs with Some r -> r | None -> Obs.Registry.create () in
  let slots = max 1 slots in
  let t =
    {
      cells = make_cells reg;
      uf = uf_create ();
      base = [];
      spine = [];
      models = Array.make model_ring_len None;
      mnext = 0;
      sat_sets = dring_create slots;
      unsat_sets = dring_create slots;
      bytes = 0;
      store;
      last_slice = None;
      last_cdigest = None;
    }
  in
  seed_from_store t;
  t

(* A task clone shares nothing mutable with its parent: digest sets
   are re-inserted (the member arrays themselves are immutable and
   shared), models share the frozen snapshot but get a private memo
   (the memo table is the only mutable part, and tasks run on worker
   domains).  Active conditions do not carry over — the task asserts
   its own base. *)
let clone ?obs parent =
  let reg = match obs with Some r -> r | None -> Obs.Registry.create () in
  let slots = Array.length parent.sat_sets.slots in
  let t =
    {
      cells = make_cells reg;
      uf = uf_create ();
      base = [];
      spine = [];
      models = Array.make model_ring_len None;
      mnext = 0;
      sat_sets = dring_create slots;
      unsat_sets = dring_create slots;
      bytes = 0;
      store = parent.store;
      last_slice = None;
      last_cdigest = None;
    }
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some m ->
          t.models.(i) <- Some { cm = m.cm; cm_memo = Hashtbl.create 256 };
          add_bytes t (Solver.model_bytes m.cm)
      | None -> ())
    parent.models;
  t.mnext <- parent.mnext;
  Array.iter
    (function Some s -> add_bytes t (dring_insert t.sat_sets s) | None -> ())
    parent.sat_sets.slots;
  Array.iter
    (function Some s -> add_bytes t (dring_insert t.unsat_sets s) | None -> ())
    parent.unsat_sets.slots;
  t

let cond_of e = { q_expr = e; q_syms = Expr.support e; q_digest = Expr.digest e }

let link_uf u (syms : int array) =
  if Array.length syms > 1 then
    for i = 1 to Array.length syms - 1 do
      uf_union u syms.(0) syms.(i)
    done

let assert_base t e =
  let c = cond_of e in
  link_uf t.uf c.q_syms;
  t.base <- c :: t.base

let push t e =
  let mark = t.uf.tlen in
  let c = cond_of e in
  link_uf t.uf c.q_syms;
  t.spine <- (c, mark) :: t.spine

let pop t =
  match t.spine with
  | [] -> invalid_arg "Qcache.pop: empty spine"
  | (_, mark) :: rest ->
      uf_rewind t.uf mark;
      t.spine <- rest

(* the slice of a new condition: every active condition whose
   component root (in the union-find over the path alone) is the root
   of one of the condition's symbols *)
let slice_of t (csyms : int array) : cond list =
  let roots = Hashtbl.create 8 in
  Array.iter (fun s -> Hashtbl.replace roots (uf_find t.uf s) ()) csyms;
  let in_slice (c : cond) =
    Array.length c.q_syms > 0 && Hashtbl.mem roots (uf_find t.uf c.q_syms.(0))
  in
  List.filter in_slice (List.map fst t.spine) @ List.filter in_slice t.base

type verdict = Sat_hit | Unsat_hit | Unknown

(* ------------------------------------------------------------------ *)
(* Syntactic witness finder.  Most first-visit misses are small SAT
   slices whose conditions are (possibly negated) key matches —
   [Eq (key-expr, const)].  Derive a candidate assignment from those
   equations and verify it by evaluating every slice condition; a
   candidate that evaluates them all to one is a genuine witness, so
   the verdict is exactly what a solver call would return.  Soundness
   never rests on the derivation heuristics — only on the final
   evaluation (taints are part of the assignment, fixed to zero). *)

let derive_bindings (conds : Expr.t list) : (int, Bits.t) Hashtbl.t =
  let b = Hashtbl.create 16 in
  let bind (v : Expr.var) bits =
    if not (Hashtbl.mem b v.Expr.vid) then Hashtbl.add b v.Expr.vid bits
  in
  (* equate a key expression with a constant, decomposing concats *)
  let rec bind_eq (e : Expr.t) (k : Bits.t) =
    match e.Expr.node with
    | Expr.Var v -> bind v k
    | Expr.Concat (h, l) ->
        let lw = l.Expr.width in
        bind_eq h (Bits.slice k ~hi:(e.Expr.width - 1) ~lo:lw);
        bind_eq l (Bits.slice k ~hi:(lw - 1) ~lo:0)
    | _ -> ()
  in
  let rec walk pos (e : Expr.t) =
    match e.Expr.node with
    | Expr.Not a when e.Expr.width = 1 -> walk (not pos) a
    | Expr.And (a, b) when pos && e.Expr.width = 1 ->
        walk pos a;
        walk pos b
    | Expr.Or (a, b) when (not pos) && e.Expr.width = 1 ->
        (* ¬(a ∨ b) forces ¬a and ¬b *)
        walk pos a;
        walk pos b
    | Expr.Eq (a, c) -> (
        match (a.Expr.node, c.Expr.node) with
        | _, Expr.Const k when pos -> bind_eq a k
        | Expr.Const k, _ when pos -> bind_eq c k
        | Expr.Var v, Expr.Const k | Expr.Const k, Expr.Var v ->
            (* negated match: any value but [k]; its complement always
               differs (width >= 1) *)
            bind v (Bits.lognot k)
        | _ -> ())
    | _ -> ()
  in
  List.iter (walk true) conds;
  b

let witness_sat (conds : Expr.t list) =
  let holds_all env =
    List.for_all (fun c -> Bits.is_ones (Expr.eval env c)) conds
  in
  let b = derive_bindings conds in
  let derived (v : Expr.var) =
    match Hashtbl.find_opt b v.Expr.vid with
    | Some k -> k
    | None -> Bits.zero v.Expr.vwidth
  in
  holds_all derived
  || holds_all (fun v -> Bits.zero v.Expr.vwidth)
  || holds_all (fun v -> Bits.ones v.Expr.vwidth)

let record_model t (m : Solver.model) =
  (match t.models.(t.mnext) with
  | Some old -> add_bytes t (-Solver.model_bytes old.cm)
  | None -> ());
  t.models.(t.mnext) <- Some { cm = m; cm_memo = Hashtbl.create 256 };
  add_bytes t (Solver.model_bytes m);
  t.mnext <- (t.mnext + 1) mod model_ring_len

let note_model t (m : Solver.model option) =
  match m with Some m -> record_model t m | None -> ()

let check t (e : Expr.t) : verdict =
  t.last_slice <- None;
  t.last_cdigest <- None;
  let csyms = Expr.support e in
  if Array.length csyms = 0 then begin
    (* closed condition: feasibility is its concrete value *)
    Obs.Counter.incr t.cells.c_avoided;
    if Bits.is_ones (Expr.eval (fun v -> Bits.zero v.Expr.vwidth) e) then Sat_hit
    else Unsat_hit
  end
  else begin
    Obs.Counter.incr t.cells.c_slices;
    let slice = slice_of t csyms in
    let cdigest = Expr.digest e in
    let sdset = dset_of_list (cdigest :: List.map (fun c -> c.q_digest) slice) in
    t.last_slice <- Some sdset;
    t.last_cdigest <- Some cdigest;
    (* 1. slice ⊆ a set already proven simultaneously satisfiable *)
    let sat_subsumed =
      Array.exists
        (function
          | Some s ->
              sdset.dsig land lnot s.dsig = 0 && subset_sorted sdset.members s.members
          | None -> false)
        t.sat_sets.slots
    in
    if sat_subsumed then begin
      Obs.Counter.incr t.cells.c_subsumed;
      Obs.Counter.incr t.cells.c_avoided;
      Sat_hit
    end
    else begin
      (* 2. some cached assignment satisfies the whole slice *)
      let model_hit =
        Array.exists
          (function
            | Some m ->
                cmodel_holds m e
                && List.for_all (fun c -> cmodel_holds m c.q_expr) slice
            | None -> false)
          t.models
      in
      if model_hit then begin
        Obs.Counter.incr t.cells.c_model_hits;
        Obs.Counter.incr t.cells.c_avoided;
        (* the slice is now known satisfiable as a set — remember it
           so structurally identical future slices shortcut at step 1 *)
        add_bytes t (dring_insert t.sat_sets sdset);
        Sat_hit
      end
      else begin
        (* 3. slice ⊇ a set already proven unsatisfiable *)
        let unsat_hit =
          Array.exists
            (function
              | Some s ->
                  s.dsig land lnot sdset.dsig = 0
                  && subset_sorted s.members sdset.members
              | None -> false)
            t.unsat_sets.slots
        in
        if unsat_hit then begin
          Obs.Counter.incr t.cells.c_unsat_hits;
          Obs.Counter.incr t.cells.c_avoided;
          Unsat_hit
        end
        else if witness_sat (e :: List.map (fun c -> c.q_expr) slice) then begin
          (* a derived assignment verified against the whole slice is
             as good a witness as a cached solver model *)
          Obs.Counter.incr t.cells.c_model_hits;
          Obs.Counter.incr t.cells.c_avoided;
          add_bytes t (dring_insert t.sat_sets sdset);
          Sat_hit
        end
        else Unknown
      end
    end
  end

(* After a real probe check of path ∪ {c}: Sat proves the whole
   active digest set simultaneously satisfiable and yields a witness
   assignment; Unsat proves the stashed slice unsatisfiable. *)
let qdebug = Sys.getenv_opt "QCACHE_DEBUG" <> None

let note_sat t (m : Solver.model option) =
  if qdebug then
    Printf.eprintf "QC MISS sat  spine=%d slice=%d cd=%s\n%!"
      (List.length t.spine)
      (match t.last_slice with Some s -> Array.length s.members | None -> -1)
      (match t.last_cdigest with Some d -> String.sub (Digest.to_hex d) 0 8 | None -> "-");
  (match t.last_cdigest with
  | Some cd ->
      let path =
        cd
        :: (List.map (fun (c, _) -> c.q_digest) t.spine
           @ List.map (fun c -> c.q_digest) t.base)
      in
      add_bytes t (dring_insert t.sat_sets (dset_of_list path))
  | None -> ());
  note_model t m

let note_unsat t =
  if qdebug then
    Printf.eprintf "QC MISS unsat spine=%d slice=%d cd=%s\n%!"
      (List.length t.spine)
      (match t.last_slice with Some s -> Array.length s.members | None -> -1)
      (match t.last_cdigest with Some d -> String.sub (Digest.to_hex d) 0 8 | None -> "-");
  match t.last_slice with
  | Some s -> add_bytes t (dring_insert t.unsat_sets s)
  | None -> ()

(* fold this run's digest sets back into the shared store (bounded:
   the store never exceeds its capacity; arbitrary-but-deterministic
   eviction is fine because the store only affects speed) *)
let publish t =
  match t.store with
  | None -> ()
  | Some st ->
      Mutex.protect st.st_mu (fun () ->
          let put tbl s =
            let key = dset_key s in
            if (not (Hashtbl.mem tbl key)) && Hashtbl.length tbl < st.st_cap then
              Hashtbl.add tbl key s
          in
          Array.iter
            (function Some s -> put st.st_sat s | None -> ())
            t.sat_sets.slots;
          Array.iter
            (function Some s -> put st.st_unsat s | None -> ())
            t.unsat_sets.slots)

(* ------------------------------------------------------------------ *)
(* Standalone partition into independence components, for tests and
   offline analysis: conditions land in the same component iff their
   supports are transitively connected; closed conditions (empty
   support) are singletons.  Component order follows first
   appearance; conditions keep their relative order within one. *)
let components (conds : Expr.t list) : Expr.t list list =
  let u = uf_create () in
  let cs = List.map cond_of conds in
  List.iter (fun c -> link_uf u c.q_syms) cs;
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  let singletons = ref [] in
  List.iter
    (fun c ->
      if Array.length c.q_syms = 0 then singletons := [ c.q_expr ] :: !singletons
      else begin
        let r = uf_find u c.q_syms.(0) in
        (match Hashtbl.find_opt groups r with
        | Some l -> Hashtbl.replace groups r (c.q_expr :: l)
        | None ->
            Hashtbl.add groups r [ c.q_expr ];
            order := r :: !order)
      end)
    cs;
  List.rev_map (fun r -> List.rev (Hashtbl.find groups r)) !order
  @ List.rev !singletons
