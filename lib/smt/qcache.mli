(** Query cache for branch-feasibility checks: constraint-independence
    slicing plus model reuse plus UNSAT-slice memoisation (KLEE's
    counterexample-cache design).

    The cache mirrors the explorer's DFS spine: {!assert_base} /
    {!push} / {!pop} keep an undoable union-find over the free-symbol
    supports of the active path conditions.  {!check} answers a
    branch-feasibility question from three layers — a SAT-set
    subsumption shortcut, a ring of captured models, and an UNSAT-set
    cache with superset shortcuts — or returns [Unknown], in which
    case the caller runs a real solver check and reports the outcome
    with {!note_sat} / {!note_unsat}.

    Soundness relies on the explorer's invariant that the active path
    is satisfiable whenever {!check} is called.  Verdicts then agree
    exactly with what a solver call would return, so caching never
    changes which paths are explored — only how much the answers
    cost. *)

type t

type verdict = Sat_hit | Unsat_hit | Unknown

type store
(** Cross-run shared state: SAT/UNSAT digest sets are
    context-independent facts about a program's constraints, so a
    serve daemon shares them between requests for the same
    fingerprint.  Thread-safe; bounded by its [slots]. *)

val create_store : ?slots:int -> unit -> store

val store_entries : store -> int
(** Number of digest sets currently held (tests/diagnostics). *)

val create : ?obs:Obs.Registry.t -> ?slots:int -> ?store:store -> unit -> t
(** A fresh cache reporting into [obs] ([qcache.slices],
    [qcache.model_hits], [qcache.unsat_hits], [qcache.subsumed],
    [qcache.solver_checks_avoided] counters and the [qcache.bytes]
    gauge).  [slots] (default 512) bounds each digest-set ring.  When
    [store] is given, the cache seeds from it at creation; call
    {!publish} to fold new entries back. *)

val clone : ?obs:Obs.Registry.t -> t -> t
(** A task-handoff copy: digest sets and captured models carry over,
    the active-condition state does not (the task asserts its own
    base).  The clone shares no mutable structure with the parent, so
    parent and clones may be used from different domains (models'
    frozen snapshots are shared read-only). *)

val assert_base : t -> Expr.t -> unit
(** Register a permanent path condition (the task base). *)

val push : t -> Expr.t -> unit
(** Register a DFS spine condition; mirror of the solver's push. *)

val pop : t -> unit
(** Undo the most recent {!push}. *)

val check : t -> Expr.t -> verdict
(** [check t c]: would asserting [c] on top of the active path keep it
    satisfiable?  [Sat_hit]/[Unsat_hit] are definitive (they agree
    with what the solver would say); on [Unknown] the caller must run
    a real check and then call {!note_sat} or {!note_unsat} before the
    next {!check}/{!push}/{!pop} on [t]. *)

val note_sat : t -> Solver.model option -> unit
(** The real check of path ∪ {c} returned Sat: records the active
    digest set as satisfiable and captures the witness model. *)

val note_unsat : t -> unit
(** The real check returned Unsat: records the slice stashed by the
    preceding {!check} as an UNSAT set. *)

val note_model : t -> Solver.model option -> unit
(** Harvest an extra witness assignment (e.g. the emission model of a
    finished path) into the model ring. *)

val publish : t -> unit
(** Fold this cache's digest sets into its [store], if any. *)

val components : Expr.t list -> Expr.t list list
(** Partition conditions into independence components: two conditions
    share a component iff their free-symbol supports are transitively
    connected.  Order follows first appearance.  The conjunction of a
    condition list is satisfiable iff each component's conjunction
    is — the property the slicer exploits. *)
