(* The ebpf_model architecture extension (§6.1.3).

   The simplest of the shipped targets: a parser and a filter control,
   no deparser.  Quirks from Tbl. 6:
   - no emit-based deparser: the implicit deparser walks the header
     structure and re-emits every valid header, followed by the
     unparsed payload;
   - a failing extract or advance drops the packet;
   - the accept output of the filter decides the packet's fate. *)

module Expr = Smt.Expr
open P4
open Testgen
open Testgen.Runtime

let name = "ebpf_model"
let port_width = 4
let min_packet_bytes = None

let prelude = {|
struct ebpf_dummy_t { bit<1> unused; }
|}

let hdr_p = "$pipe.hdr"
let accept_p = "$pipe.accept"

type blocks = { bl_parse : Ast.parser_decl; bl_filter : Ast.control_decl }

let blocks ctx : blocks =
  match Target_intf.find_instantiation ctx.prog with
  | Some ("ebpfFilter", args, _) -> (
      match List.map Target_intf.constructor_name args with
      | [ p; f ] ->
          let parser =
            match Hashtbl.find_opt ctx.parsers p with
            | Some d -> d
            | None -> fail "ebpf: unknown parser %s" p
          in
          let filter =
            match Hashtbl.find_opt ctx.controls f with
            | Some d -> d
            | None -> fail "ebpf: unknown control %s" f
          in
          { bl_parse = parser; bl_filter = filter }
      | _ -> fail "ebpf: ebpfFilter expects 2 package arguments")
  | Some (t, _, _) -> fail "ebpf: expected an ebpfFilter instantiation, found %s" t
  | None -> fail "ebpf: no package instantiation"

(* a failing extract or advance drops the packet in the kernel *)
let on_reject : reject_hook =
 fun _ _ err st ->
  [
    {
      br_cond = None;
      br_state = { (note ("reject -> drop: " ^ err) st) with dropped = true; work = [] };
      br_label = "reject-drop:" ^ err;
    };
  ]

let extern : extern_hook =
 fun ctx fname args fr st ->
  match (fname, args) with
  | ("ebpf_ipv4_checksum" | "verify_ipv4_checksum"), [ data ] ->
      let st, vdata = Eval.eval ctx fr st data in
      let st, r =
        concolic_call ctx ~name:"ebpf_csum16"
          ~impl:(fun vals -> Checksums.csum16 (List.hd vals))
          ~width:16 [ vdata ] st
      in
      RVal (st, r)
  | _, _ -> (
      match String.index_opt fname '.' with
      | Some i -> (
          let meth = String.sub fname (i + 1) (String.length fname - i - 1) in
          match meth with
          (* CounterArray methods *)
          | "increment" | "add" -> RUnit st
          | _ -> fail "ebpf: unsupported extern %s" fname)
      | None -> fail "ebpf: unsupported extern %s" fname)

(* implicit deparser: emit every valid header of the header structure
   in declaration order (§6.1.3) *)
let implicit_deparse ctx (htyp : Ast.typ) st : branch list =
  let fr = { fr_scopes = [ "$pipe" ]; fr_ctrl = None; fr_parser = None } in
  match Step.emit_one ctx fr hdr_p htyp st with
  | branches -> branches

let finalize ctx st : branch list =
  let st = flush_emit st in
  let accept = read_leaf st accept_p in
  let deliver = add_output ~note:"pass" ~port:(Expr.zero ctx.ectx port_width) ~data:st.live st in
  let dropped = { st with dropped = true } in
  if Expr.is_true accept then continue_ deliver
  else if Expr.is_false accept then continue_ dropped
  else
    Step.fork_cond ctx
      { fr_scopes = []; fr_ctrl = None; fr_parser = None }
      accept
      ~then_:("ebpf:pass", deliver)
      ~else_:("ebpf:drop", dropped)

let init ctx st =
  ctx.uninit_is_zero <- false;
  let b = blocks ctx in
  let htyp =
    match b.bl_parse.p_params with
    | [ _; h ] -> h.par_typ
    | _ -> fail "ebpf: parser must have 2 parameters"
  in
  let st = declare ctx ~init:(init_taint ctx) htyp hdr_p st in
  let st = declare ctx ~init:(init_zero ctx) Ast.TBool accept_p st in
  push_work
    [
      WOp
        ( "ebpf:parse",
          fun ctx st ->
            continue_ (Step.enter_parser ctx b.bl_parse [ Step.Packet; Step.Data hdr_p ] st) );
      WOp
        ( "ebpf:filter",
          fun ctx st ->
            continue_
              (Step.enter_control ctx b.bl_filter [ Step.Data hdr_p; Step.Data accept_p ] st) );
      WOp ("ebpf:deparse", fun ctx st -> implicit_deparse ctx htyp st);
      WOp ("ebpf:final", fun ctx st -> finalize ctx st);
    ]
    st

let target : (module Target_intf.S) =
  (module struct
    let name = name
    let prelude = prelude
    let port_width = port_width
    let min_packet_bytes = min_packet_bytes
    let init = init
    let extern = extern
    let on_reject = on_reject
  end)
