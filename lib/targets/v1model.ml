(* The v1model architecture extension (BMv2's simple_switch), §6.1.1.

   Pipeline template (Fig. 3): Parser -> VerifyChecksum -> Ingress ->
   traffic manager -> Egress -> ComputeChecksum -> Deparser, with
   recirculation, resubmission, and cloning looping packets back
   through the pipeline (Fig. 5).

   BMv2 quirks implemented from Tbl. 6:
   - uninitialized variables read as 0,
   - the default output port is 0; egress_spec 511 means drop,
   - parser errors do not drop the packet: the offending header stays
     invalid and execution continues with the ingress control,
   - clone behaves differently in ingress and egress,
   - the "priority" annotation reorders constant table entries. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
open P4
open Testgen
open Testgen.Runtime

let name = "v1model"
let port_width = 9
let drop_port = 511
let min_packet_bytes = None

let prelude =
  {|
struct standard_metadata_t {
  bit<9>  ingress_port;
  bit<9>  egress_spec;
  bit<9>  egress_port;
  bit<32> instance_type;
  bit<32> packet_length;
  bit<32> enq_timestamp;
  bit<19> enq_qdepth;
  bit<32> deq_timedelta;
  bit<19> deq_qdepth;
  bit<48> ingress_global_timestamp;
  bit<48> egress_global_timestamp;
  bit<16> mcast_grp;
  bit<16> egress_rid;
  bit<1>  checksum_error;
  error   parser_error;
  bit<3>  priority;
}

enum HashAlgorithm {
  crc32,
  crc32_custom,
  crc16,
  crc16_custom,
  random,
  identity,
  csum16,
  xor16
}

enum CounterType {
  packets,
  bytes,
  packets_and_bytes
}

enum MeterType {
  packets,
  bytes
}

enum CloneType {
  I2E,
  E2E
}
|}

(* pipeline-state paths *)
let hdr_p = "$pipe.hdr"
let meta_p = "$pipe.meta"
let sm_p = "$pipe.sm"
let clone_p = "$pipe.$clone"
let recirc_p = "$pipe.$recirc"
let resubmit_p = "$pipe.$resubmit"
let truncate_p = "$pipe.$truncate"

type blocks = {
  bl_parser : Ast.parser_decl;
  bl_verify : Ast.control_decl;
  bl_ingress : Ast.control_decl;
  bl_egress : Ast.control_decl;
  bl_compute : Ast.control_decl;
  bl_deparser : Ast.control_decl;
}

let blocks ctx : blocks =
  match Target_intf.find_instantiation ctx.prog with
  | Some ("V1Switch", args, _) -> (
      match List.map Target_intf.constructor_name args with
      | [ p; vc; ig; eg; cc; dp ] ->
          let parser n =
            match Hashtbl.find_opt ctx.parsers n with
            | Some d -> d
            | None -> fail "v1model: unknown parser %s" n
          in
          let control n =
            match Hashtbl.find_opt ctx.controls n with
            | Some d -> d
            | None -> fail "v1model: unknown control %s" n
          in
          {
            bl_parser = parser p;
            bl_verify = control vc;
            bl_ingress = control ig;
            bl_egress = control eg;
            bl_compute = control cc;
            bl_deparser = control dp;
          }
      | _ -> fail "v1model: V1Switch expects 6 package arguments")
  | Some (t, _, _) -> fail "v1model: expected a V1Switch instantiation, found %s" t
  | None -> fail "v1model: no package instantiation"

let sm_leaf st field = read_leaf st (sm_p ^ "." ^ field)
let set_sm field v st = write_leaf (sm_p ^ "." ^ field) v st

(* the standard-metadata parameter of the enclosing parser, if any *)
let parser_sm_path (fr : frame) =
  match fr.fr_parser with
  | Some pd ->
      List.find_map
        (fun (p : Ast.param) ->
          match p.par_typ with
          | Ast.TName "standard_metadata_t" ->
              Some (List.hd (List.rev fr.fr_scopes) ^ "." ^ p.par_name)
          | _ -> None)
        pd.p_params
  | None -> None

(* ------------------------------------------------------------------ *)
(* Parser reject semantics: record the error, leave the header invalid,
   and continue with the ingress control (Tbl. 6). *)

let on_reject : reject_hook =
 fun ctx fr err st ->
  let code = Expr.of_int ctx.ectx ~width:Typing.error_width (Typing.error_code ctx.tctx err) in
  let st =
    match parser_sm_path fr with
    | Some smp when Env.mem (smp ^ ".parser_error") st.env ->
        write_leaf (smp ^ ".parser_error") code st
    | _ -> st
  in
  [ { br_cond = None; br_state = pop_to_reject err st; br_label = "reject:" ^ err } ]

(* ------------------------------------------------------------------ *)
(* Externs *)

let algo_name (e : Ast.expr) =
  match e with
  | Ast.EMember (Ast.EVar "HashAlgorithm", a) -> a
  | Ast.EVar a -> a
  | _ -> "crc32"

(* extern instances resolve through {!Runtime.find_register_path} and
   friends: fresh per-invocation scopes first, then the declaring
   block's stable key, so state persists across recirculation and
   sequence packet boundaries *)

let extern : extern_hook =
 fun ctx fname args fr st ->
  let eval ?hint e =
    let st', v = Eval.eval ?hint ctx fr st e in
    ignore st';
    v
  in
  let eval_st ?hint st e = Eval.eval ?hint ctx fr st e in
  match (fname, args) with
  | "mark_to_drop", [ smarg ] ->
      let lv = Eval.lvalue_of ctx fr st smarg in
      RUnit (write_leaf (lv.lv_path ^ ".egress_spec") (Expr.of_int ctx.ectx ~width:9 drop_port) st)
  | "mark_to_drop", [] ->
      RUnit (set_sm "egress_spec" (Expr.of_int ctx.ectx ~width:9 drop_port) st)
  | ("verify_checksum" | "verify_checksum_with_payload"), [ cond; data; given; algo ] ->
      let st, vcond = eval_st st cond in
      let st, vdata = eval_st st data in
      let st, vgiven = eval_st st given in
      let w = Expr.width vgiven in
      let impl = Checksums.by_algorithm ~width:w (algo_name algo) in
      let st, r =
        concolic_call ctx ~name:("verify_" ^ algo_name algo)
          ~impl:(fun vals -> impl (List.hd vals))
          ~width:w [ vdata ] st
      in
      let err = Expr.band vcond (Expr.neq r vgiven) in
      let st =
        if Env.mem (sm_p ^ ".checksum_error") st.env then
          set_sm "checksum_error" err st
        else st
      in
      RVal (st, err)
  | ("update_checksum" | "update_checksum_with_payload"), [ cond; data; dst; algo ] ->
      let st, vcond = eval_st st cond in
      let st, vdata = eval_st st data in
      let dlv = Eval.lvalue_of ctx fr st dst in
      let w = Typing.width_of ctx.tctx dlv.lv_typ in
      let impl = Checksums.by_algorithm ~width:w (algo_name algo) in
      let st, r =
        concolic_call ctx ~name:("update_" ^ algo_name algo)
          ~impl:(fun vals -> impl (List.hd vals))
          ~width:w [ vdata ] st
      in
      let st, old = eval_st st dst in
      RUnit (Eval.write_lvalue ctx fr st dst (Expr.ite vcond r old))
  | "hash", [ dst; algo; base; data; maxv ] ->
      let st, vdata = eval_st st data in
      let dlv = Eval.lvalue_of ctx fr st dst in
      let w = Typing.width_of ctx.tctx dlv.lv_typ in
      let impl = Checksums.by_algorithm ~width:w (algo_name algo) in
      let st, r =
        concolic_call ctx ~name:("hash_" ^ algo_name algo)
          ~impl:(fun vals -> impl (List.hd vals))
          ~width:w [ vdata ] st
      in
      let st, vbase = eval_st ~hint:w st base in
      let st, vmax = eval_st ~hint:w st maxv in
      let vbase = Expr.zext vbase w and vmax = Expr.zext vmax w in
      (* result = base + (hash mod max); max = 0 means full range *)
      let modded =
        Expr.ite (Expr.eq vmax (Expr.zero ctx.ectx w)) r (Expr.add vbase (Expr.urem r vmax))
      in
      RUnit (Eval.write_lvalue ctx fr st dst modded)
  | "random", [ dst; _lo; _hi ] ->
      (* pseudo-random generator: nondeterministic output (§2.3) *)
      let dlv = Eval.lvalue_of ctx fr st dst in
      let w = Typing.width_of ctx.tctx dlv.lv_typ in
      RUnit (Eval.write_lvalue ctx fr st dst (Expr.fresh_taint ctx.ectx w))
  | ("clone" | "clone3" | "clone_preserving_field_list"), (_ :: session :: _) ->
      let v = eval ~hint:32 session in
      RUnit (write_leaf clone_p (Expr.zext v 32) st)
  | ("recirculate" | "recirculate_preserving_field_list"), _ ->
      RUnit (write_leaf recirc_p (Expr.tru ctx.ectx) st)
  | ("resubmit" | "resubmit_preserving_field_list"), _ ->
      RUnit (write_leaf resubmit_p (Expr.tru ctx.ectx) st)
  | "truncate", [ len ] ->
      let v = eval ~hint:32 len in
      RUnit (write_leaf truncate_p (Expr.zext v 32) st)
  | ("assert" | "assume"), [ cond ] ->
      (* constrain the path; tests that violate assertions would
         terminate BMv2 abnormally (Tbl. 6) *)
      let st, v = eval_st st cond in
      RBranch [ { br_cond = Some v; br_state = st; br_label = fname } ]
  | ("log_msg" | "digest"), _ -> RUnit st
  | _, _ -> (
      (* extern-object method calls: obj.method *)
      match String.index_opt fname '.' with
      | Some i -> (
          let obj = String.sub fname 0 i in
          let meth = String.sub fname (i + 1) (String.length fname - i - 1) in
          match (meth, args) with
          | "read", [ dst; idx ] -> (
              match find_register_path st fr obj with
              | Some key -> (
                  let st, vidx = eval_st ~hint:32 st idx in
                  let dlv = Eval.lvalue_of ctx fr st dst in
                  let w = Typing.width_of ctx.tctx dlv.lv_typ in
                  match Expr.is_const vidx with
                  | Some b -> (
                      match read_register st key (Bits.to_int b) with
                      | Some v -> RUnit (Eval.write_lvalue ctx fr st dst (Expr.zext v w))
                      | None -> RUnit (Eval.write_lvalue ctx fr st dst (Expr.zero ctx.ectx w)))
                  | None ->
                      (* symbolic index: prototype with taint (§5.3) *)
                      RUnit (Eval.write_lvalue ctx fr st dst (Expr.fresh_taint ctx.ectx w)))
              | None -> fail "v1model: unknown register %s" obj)
          | "write", [ idx; v ] -> (
              match find_register_path st fr obj with
              | Some key -> (
                  let st, vidx = eval_st ~hint:32 st idx in
                  let st, vv = eval_st st v in
                  match Expr.is_const vidx with
                  | Some b -> RUnit (write_register st key (Bits.to_int b) vv)
                  | None -> RUnit (taint_register st key))
              | None -> fail "v1model: unknown register %s" obj)
          | "count", args -> (
              (* bump the counter cell (taint the array under a
                 symbolic index); counter values never reach the
                 packet, so outputs are unaffected *)
              match find_counter_path st fr obj with
              | Some key -> (
                  match args with
                  | idx :: _ ->
                      let st, vidx = eval_st ~hint:32 st idx in
                      RUnit
                        (bump_counter st key
                           (Option.map Bits.to_int (Expr.is_const vidx)))
                  | [] -> RUnit (bump_counter st key (Some 0)))
              | None -> RUnit st)
          | "execute_meter", [ idx; dst ] ->
              (* an unconfigured meter always returns GREEN (0); the
                 RED verdict needs meter configuration the test
                 frameworks lack (§7, up4.p4 coverage).  The cell still
                 records a tainted color (§5.3). *)
              let st, vidx = eval_st ~hint:32 st idx in
              let st =
                match find_meter_path st fr obj with
                | Some key ->
                    execute_meter_state st key
                      (Option.map Bits.to_int (Expr.is_const vidx))
                | None -> st
              in
              let dlv = Eval.lvalue_of ctx fr st dst in
              let w = Typing.width_of ctx.tctx dlv.lv_typ in
              RUnit (Eval.write_lvalue ctx fr st dst (Expr.zero ctx.ectx w))
          | _ -> fail "v1model: unsupported extern %s" fname)
      | None -> fail "v1model: unsupported extern %s" fname)

(* ------------------------------------------------------------------ *)
(* Pipeline template *)

let reset_intrinsic ~instance_type st =
  let ectx = state_ectx st in
  let st = set_sm "egress_spec" (Expr.zero ectx 9) st in
  let st = set_sm "egress_port" (Expr.zero ectx 9) st in
  let st = set_sm "instance_type" (Expr.of_int ectx ~width:32 instance_type) st in
  let st = write_leaf clone_p (Expr.zero ectx 32) st in
  let st = write_leaf recirc_p (Expr.fls ectx) st in
  let st = write_leaf resubmit_p (Expr.fls ectx) st in
  write_leaf truncate_p (Expr.zero ectx 32) st

let rec pipeline_ops ctx (b : blocks) : work list =
  ignore ctx;
  [
    WOp
      ( "v1:parser",
        fun ctx st ->
          continue_
            (Step.enter_parser ctx b.bl_parser
               [ Step.Packet; Step.Data hdr_p; Step.Data meta_p; Step.Data sm_p ]
               st) );
    WOp
      ( "v1:verify",
        fun ctx st ->
          continue_ (Step.enter_control ctx b.bl_verify [ Step.Data hdr_p; Step.Data meta_p ] st)
      );
    WOp
      ( "v1:ingress",
        fun ctx st ->
          continue_
            (Step.enter_control ctx b.bl_ingress
               [ Step.Data hdr_p; Step.Data meta_p; Step.Data sm_p ]
               st) );
    WOp ("v1:traffic_manager", fun ctx st -> traffic_manager ctx b st);
  ]

and egress_ops (b : blocks) : work list =
  [
    WOp
      ( "v1:egress",
        fun ctx st ->
          continue_
            (Step.enter_control ctx b.bl_egress
               [ Step.Data hdr_p; Step.Data meta_p; Step.Data sm_p ]
               st) );
    WOp
      ( "v1:compute",
        fun ctx st ->
          continue_ (Step.enter_control ctx b.bl_compute [ Step.Data hdr_p; Step.Data meta_p ] st)
      );
    WOp
      ( "v1:deparser",
        fun ctx st ->
          continue_ (Step.enter_control ctx b.bl_deparser [ Step.Packet; Step.Data hdr_p ] st) );
    WOp ("v1:final", fun ctx st -> finalize b ctx st);
  ]

(* Traffic manager (Fig. 5): resubmit, drop, or continue to egress. *)
and traffic_manager ctx (b : blocks) st : branch list =
  ignore ctx;
  let resub = read_leaf st resubmit_p in
  if Expr.is_true resub && st.recircs < ctx.opts.max_recirc then begin
    (* resubmit: the original input packet re-enters the ingress parser *)
    let st = note "resubmit" st in
    let st = { st with live = input_expr st; recircs = st.recircs + 1 } in
    let st = reset_intrinsic ~instance_type:6 st in
    continue_ (push_work (pipeline_ops ctx b) st)
  end
  else if Expr.is_true resub then []
  else begin
    let es = sm_leaf st "egress_spec" in
    let drop_cond = Expr.eq es (Expr.of_int ctx.ectx ~width:9 drop_port) in
    let dropped = { (note "TM: drop" st) with dropped = true; work = [] } in
    let forward =
      let st = set_sm "egress_port" es (note "TM: forward" st) in
      push_work (egress_ops b) st
    in
    (* multicast: a non-zero mcast_grp replicates the packet to the
       group's ports, which are control-plane state; we synthesize a
       two-port group and emit both copies after a single egress pass
       (a simplification: real BMv2 runs egress per replica) *)
    let mg = sm_leaf st "mcast_grp" in
    let mcast_branch () =
      let gid = fresh_var ctx "$mcast_gid" 16 in
      let p1 = fresh_var ctx "$mcast_p1" 9 and p2 = fresh_var ctx "$mcast_p2" 9 in
      let entry =
        {
          se_table = "$mcast";
          se_keys = [ ("group", SkExact gid) ];
          se_action = "__mcast_group__";
          se_args = [ ("port1", p1); ("port2", p2) ];
          se_priority = None;
        }
      in
      let st = { (note "TM: multicast" st) with entries = entry :: st.entries } in
      let st = set_sm "egress_port" p1 st in
      let st = write_leaf "$pipe.$mcast_p2" p2 st in
      {
        br_cond = Some (Expr.band (Expr.neq mg (Expr.zero ctx.ectx 16)) (Expr.eq mg gid));
        br_state = push_work (egress_ops b) st;
        br_label = "tm:multicast";
      }
    in
    if Expr.is_false (Expr.neq mg (Expr.zero ctx.ectx 16)) then
      (* mcast_grp is never written: unicast only *)
      Step.fork_cond ctx
        { fr_scopes = []; fr_ctrl = None; fr_parser = None }
        drop_cond
        ~then_:("tm:drop", dropped)
        ~else_:("tm:forward", forward)
    else begin
      let unicast =
        List.map
          (fun br ->
            { br with
              br_cond =
                Some
                  (Expr.band
                     (Expr.eq mg (Expr.zero ctx.ectx 16))
                     (Option.value br.br_cond ~default:(Expr.tru ctx.ectx))) })
          (Step.fork_cond ctx
             { fr_scopes = []; fr_ctrl = None; fr_parser = None }
             drop_cond
             ~then_:("tm:drop", dropped)
             ~else_:("tm:forward", forward))
      in
      mcast_branch () :: unicast
    end
  end

(* After the deparser: truncation, recirculation, cloning, output. *)
and finalize (b : blocks) ctx st : branch list =
  let st = flush_emit st in
  (* mtu truncation *)
  let st =
    match Expr.is_const (read_leaf st truncate_p) with
    | Some l when not (Bits.is_zero l) ->
        let bytes = Bits.to_int l in
        let w = Expr.width st.live in
        if w > bytes * 8 then
          { st with live = Expr.slice st.live ~hi:(w - 1) ~lo:(w - (bytes * 8)) }
        else st
    | _ -> st
  in
  let recirc = read_leaf st recirc_p in
  if Expr.is_true recirc then begin
    if st.recircs >= ctx.opts.max_recirc then []
    else begin
      (* the deparsed packet re-enters the ingress parser *)
      let st = note "recirculate" st in
      let st = { st with recircs = st.recircs + 1 } in
      let st = reset_intrinsic ~instance_type:4 st in
      continue_ (push_work (pipeline_ops ctx b) st)
    end
  end
  else begin
    let port = sm_leaf st "egress_port" in
    let es = sm_leaf st "egress_spec" in
    let drop_cond = Expr.eq es (Expr.of_int ctx.ectx ~width:9 drop_port) in
    let deliver st =
      let st = add_output ~note:"normal" ~port ~data:st.live st in
      let st =
        match Env.find_opt "$pipe.$mcast_p2" st.env with
        | Some p2 -> add_output ~note:"mcast-copy" ~port:p2 ~data:st.live st
        | None -> st
      in
      (* simplified I2E/E2E clone: a copy of the deparsed packet is
         mirrored to the session's port *)
      let clone = read_leaf st clone_p in
      match Expr.is_const clone with
      | Some b when Bits.is_zero b -> st
      | _ ->
          add_output ~note:"clone"
            ~port:(Expr.slice clone ~hi:8 ~lo:0)
            ~data:st.live st
    in
    if Expr.is_true drop_cond then continue_ { st with dropped = true }
    else if Expr.is_false drop_cond then continue_ (deliver st)
    else
      Step.fork_cond ctx
        { fr_scopes = []; fr_ctrl = None; fr_parser = None }
        drop_cond
        ~then_:("egress-drop", { st with dropped = true })
        ~else_:("deliver", deliver st)
  end

let init ctx st =
  ctx.uninit_is_zero <- true;
  let b = blocks ctx in
  (* pipeline state: types come from the user parser's parameters *)
  let htyp, mtyp =
    match b.bl_parser.p_params with
    | [ _; h; m; _ ] -> (h.par_typ, m.par_typ)
    | _ -> fail "v1model: parser must have 4 parameters"
  in
  let st = declare ctx ~init:(init_taint ctx) htyp hdr_p st in
  let st = declare ctx ~init:(init_zero ctx) mtyp meta_p st in
  let st = declare ctx ~init:(init_zero ctx) (Ast.TName "standard_metadata_t") sm_p st in
  let st = declare ctx ~init:(init_zero ctx) (Ast.TBit 32) clone_p st in
  let st = declare ctx ~init:(init_zero ctx) (Ast.TBit 1) recirc_p st in
  let st = declare ctx ~init:(init_zero ctx) (Ast.TBit 1) resubmit_p st in
  let st = declare ctx ~init:(init_zero ctx) (Ast.TBit 32) truncate_p st in
  (* per-packet scratch that [declare] does not cover: a multicast
     second port from an earlier packet of a sequence must not leak
     into this packet's delivery *)
  let st = { st with env = Env.remove "$pipe.$mcast_p2" st.env } in
  let st = set_sm "ingress_port" st.in_port st in
  (* the packet length is unknown until the path is complete: taint *)
  let st = set_sm "packet_length" (Expr.fresh_taint ctx.ectx 32) st in
  push_work (pipeline_ops ctx b) st

let target : (module Target_intf.S) =
  (module struct
    let name = name
    let prelude = prelude
    let port_width = port_width
    let min_packet_bytes = min_packet_bytes
    let init = init
    let extern = extern
    let on_reject = on_reject
  end)
