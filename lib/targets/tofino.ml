(* Shared implementation of the tna / t2na architecture extensions
   (§6.1.2).

   Pipeline template: IngressParser -> Ingress -> IngressDeparser ->
   traffic manager -> EgressParser -> Egress -> EgressDeparser.

   Tofino quirks implemented from Tbl. 6 / §6.1.2:
   - the device prepends intrinsic metadata to the wire packet; the
     parser extracts it (its content is tainted except the ingress
     port);
   - packets shorter than 64 bytes are dropped, so generated frames
     are padded with payload to the 64-byte minimum;
   - a too-short packet is dropped in the *ingress* parser but not in
     the egress parser;
   - if the egress port variable is never written the packet is
     dropped;
   - bypass_egress skips egress processing entirely;
   - without the auto_init_metadata annotation, uninitialized
     variables are undefined (tainted);
   - t2na doubles the extern count and adds the ghost thread (we
     accept and ignore a ghost block). *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
open P4
open Testgen
open Testgen.Runtime

type family = Tna | T2na

let family_name = function Tna -> "tna" | T2na -> "t2na"

let port_width = 9
let invalid_port = 0x1FF

let prelude_common =
  {|
struct ingress_intrinsic_metadata_t {
  bit<1>  resubmit_flag;
  bit<1>  _pad1;
  bit<2>  packet_version;
  bit<3>  _pad2;
  bit<9>  ingress_port;
  bit<48> ingress_mac_tstamp;
}

struct ingress_intrinsic_metadata_from_parser_t {
  bit<48> global_tstamp;
  bit<32> global_ver;
  bit<16> parser_err;
}

struct ingress_intrinsic_metadata_for_deparser_t {
  bit<3> drop_ctl;
  bit<3> digest_type;
  bit<3> resubmit_type;
  bit<3> mirror_type;
}

struct ingress_intrinsic_metadata_for_tm_t {
  bit<9>  ucast_egress_port;
  bit<1>  bypass_egress;
  bit<1>  deflect_on_drop;
  bit<3>  ingress_cos;
  bit<5>  qid;
  bit<3>  icos_for_copy_to_cpu;
  bit<1>  copy_to_cpu;
  bit<2>  packet_color;
  bit<3>  disable_ucast_cutthru;
  bit<16> mcast_grp_a;
  bit<16> mcast_grp_b;
  bit<13> level1_mcast_hash;
  bit<13> level2_mcast_hash;
  bit<16> level1_exclusion_id;
  bit<9>  level2_exclusion_id;
  bit<16> rid;
}

struct egress_intrinsic_metadata_t {
  bit<7>  _pad0;
  bit<9>  egress_port;
  bit<19> enq_qdepth;
  bit<2>  enq_congest_stat;
  bit<18> enq_tstamp;
  bit<19> deq_qdepth;
  bit<2>  deq_congest_stat;
  bit<8>  app_pool_congest_stat;
  bit<18> deq_timedelta;
  bit<16> egress_rid;
  bit<1>  egress_rid_first;
  bit<7>  egress_qid;
  bit<3>  egress_cos;
  bit<1>  deflection_flag;
  bit<16> pkt_length;
}

struct egress_intrinsic_metadata_from_parser_t {
  bit<48> global_tstamp;
  bit<32> global_ver;
  bit<16> parser_err;
}

struct egress_intrinsic_metadata_for_deparser_t {
  bit<3> drop_ctl;
  bit<3> mirror_type;
  bit<1> coalesce_flush;
  bit<7> coalesce_length;
}

struct egress_intrinsic_metadata_for_output_port_t {
  bit<1> capture_tstamp_on_tx;
  bit<1> update_delay_on_tx;
}

enum HashAlgorithm_t {
  IDENTITY,
  RANDOM,
  XOR8,
  XOR16,
  XOR32,
  CRC8,
  CRC16,
  CRC32,
  CRC64,
  CUSTOM
}

enum MeterColor_t {
  GREEN,
  YELLOW,
  RED
}
|}

let prelude_t2na_extra =
  {|
struct ghost_intrinsic_metadata_t {
  bit<1>  ping_pong;
  bit<18> qlength;
  bit<11> qid;
  bit<2>  pipe_id;
}
|}

(* pipeline-state paths *)
let ig_hdr = "$pipe.ig_hdr"
let ig_md = "$pipe.ig_md"
let ig_intr = "$pipe.ig_intr_md"
let ig_prsr = "$pipe.ig_prsr_md"
let ig_dprsr = "$pipe.ig_dprsr_md"
let ig_tm = "$pipe.ig_tm_md"
let eg_hdr = "$pipe.eg_hdr"
let eg_md = "$pipe.eg_md"
let eg_intr = "$pipe.eg_intr_md"
let eg_prsr = "$pipe.eg_prsr_md"
let eg_dprsr = "$pipe.eg_dprsr_md"
let eg_oport = "$pipe.eg_oport_md"

type blocks = {
  bl_iprs : Ast.parser_decl;
  bl_ig : Ast.control_decl;
  bl_idep : Ast.control_decl;
  bl_eprs : Ast.parser_decl;
  bl_eg : Ast.control_decl;
  bl_edep : Ast.control_decl;
}

let blocks ctx : blocks =
  let resolve_names names =
    let parser n =
      match Hashtbl.find_opt ctx.parsers n with
      | Some d -> d
      | None -> fail "tofino: unknown parser %s" n
    in
    let control n =
      match Hashtbl.find_opt ctx.controls n with
      | Some d -> d
      | None -> fail "tofino: unknown control %s" n
    in
    match names with
    | [ ip; ig; id; ep; eg; ed ]
    (* t2na: a trailing ghost block runs concurrently with packet
       processing and does not affect single-packet tests; accepted and
       ignored (Tbl. 6) *)
    | [ ip; ig; id; ep; eg; ed; _ ] ->
        {
          bl_iprs = parser ip;
          bl_ig = control ig;
          bl_idep = control id;
          bl_eprs = parser ep;
          bl_eg = control eg;
          bl_edep = control ed;
        }
    | _ -> fail "tofino: Pipeline expects 6 block arguments (7 with a ghost)"
  in
  match Target_intf.find_instantiation ctx.prog with
  | Some ("Switch", [ Ast.ECall (EVar "Pipeline", args) ], _) ->
      resolve_names (List.map Target_intf.constructor_name args)
  | Some ("Pipeline", args, _) -> resolve_names (List.map Target_intf.constructor_name args)
  | Some (t, _, _) -> fail "tofino: expected Switch(Pipeline(...)), found %s" t
  | None -> fail "tofino: no package instantiation"

(* ------------------------------------------------------------------ *)
(* Parser reject semantics: drop in the ingress parser, continue with
   an unspecified header in the egress parser (Tbl. 6). *)

let on_reject : reject_hook =
 fun ctx _fr err st ->
  if st.phase = "ingress" then begin
    (* pad drop-path frames to the 64-byte minimum when the input may
       still grow, so the device actually reaches the parser *)
    let st = if st.sealed then st else pad_to_bytes ctx 64 st in
    [
      {
        br_cond = None;
        br_state =
          { (note ("ingress parser drop: " ^ err) st) with dropped = true; work = [] };
        br_label = "ig-reject:" ^ err;
      };
    ]
  end
  else
    [ { br_cond = None; br_state = pop_to_reject err st; br_label = "eg-reject:" ^ err } ]

(* ------------------------------------------------------------------ *)
(* Externs *)

(* extern instances resolve through {!Runtime.find_register_path} and
   friends, so state keyed by the declaring block's stable name
   persists across sequence packet boundaries *)

let extern : extern_hook =
 fun ctx fname args fr st ->
  let eval_st ?hint st e = Eval.eval ?hint ctx fr st e in
  match (fname, args) with
  | "invalidate", [ _ ] -> RUnit st
  | ("assert" | "assume"), [ cond ] ->
      let st, v = Eval.eval ctx fr st cond in
      RBranch [ { br_cond = Some v; br_state = st; br_label = fname } ]
  | ("sizeInBytes" | "sizeInBits"), [ arg ] ->
      let st, v = eval_st st arg in
      let factor = if fname = "sizeInBytes" then 8 else 1 in
      RVal (st, Expr.of_int ctx.ectx ~width:32 (Expr.width v / factor))
  | _, _ -> (
      match String.index_opt fname '.' with
      | Some i -> (
          let obj = String.sub fname 0 i in
          let meth = String.sub fname (i + 1) (String.length fname - i - 1) in
          match (meth, args) with
          (* Register<T, I> *)
          | "read", [ idx ] -> (
              match find_register_path st fr obj with
              | Some key -> (
                  let st, vidx = eval_st ~hint:32 st idx in
                  match Expr.is_const vidx with
                  | Some b -> (
                      match read_register st key (Bits.to_int b) with
                      | Some v -> RVal (st, v)
                      | None -> RVal (st, Expr.fresh_taint ctx.ectx 32))
                  | None -> RVal (st, Expr.fresh_taint ctx.ectx 32))
              | None -> fail "tofino: unknown register %s" obj)
          | "write", [ idx; v ] -> (
              match find_register_path st fr obj with
              | Some key -> (
                  let st, vidx = eval_st ~hint:32 st idx in
                  let st, vv = eval_st st v in
                  match Expr.is_const vidx with
                  | Some b -> RUnit (write_register st key (Bits.to_int b) vv)
                  | None ->
                      (* symbolic index: any cell may change (§5.3) *)
                      ignore vv;
                      RUnit (taint_register st key))
              | None -> fail "tofino: unknown register %s" obj)
          (* Hash<W>.get(data) — concolic *)
          | "get", [ data ] ->
              let st, vdata = eval_st st data in
              let st, r =
                concolic_call ctx ~name:(obj ^ ".get")
                  ~impl:(fun vals -> Checksums.crc32 (List.hd vals))
                  ~width:32 [ vdata ] st
              in
              RVal (st, r)
          (* Checksum.add / subtract collect data; update/verify produce it *)
          | ("add" | "subtract" | "subtract_all_and_deposit"), _ -> RUnit st
          | ("update" | "get_checksum"), data -> (
              match data with
              | [ d ] ->
                  let st, vdata = eval_st st d in
                  let st, r =
                    concolic_call ctx ~name:(obj ^ ".update")
                      ~impl:(fun vals -> Bits.zext (Checksums.csum16 (List.hd vals)) 16)
                      ~width:16 [ vdata ] st
                  in
                  RVal (st, r)
              | _ -> RVal (st, Expr.fresh_taint ctx.ectx 16))
          | "verify", _ -> RVal (st, Expr.fresh_taint ctx.ectx 1)
          (* counters / meters / lpf / wred: rapid prototyping via
             taint (§5.3) *)
          | "count", args -> (
              match find_counter_path st fr obj with
              | Some key -> (
                  match args with
                  | idx :: _ ->
                      let st, vidx = eval_st ~hint:32 st idx in
                      RUnit
                        (bump_counter st key
                           (Option.map Bits.to_int (Expr.is_const vidx)))
                  | [] -> RUnit (bump_counter st key (Some 0)))
              | None -> RUnit st)
          | ("execute" | "execute_log"), args ->
              (* unconfigured meters return GREEN (0); the cell still
                 records a tainted color (§5.3) *)
              let st =
                match find_meter_path st fr obj with
                | Some key -> (
                    match args with
                    | idx :: _ ->
                        let st, vidx = eval_st ~hint:32 st idx in
                        execute_meter_state st key
                          (Option.map Bits.to_int (Expr.is_const vidx))
                    | [] -> execute_meter_state st key (Some 0))
                | None -> st
              in
              RVal (st, Expr.zero ctx.ectx 8)
          | ("dequeue" | "enqueue"), _ -> RVal (st, Expr.fresh_taint ctx.ectx 8)
          (* RegisterAction-style apply *)
          | "apply", _ -> RVal (st, Expr.fresh_taint ctx.ectx 32)
          | "emit", _ -> RUnit st  (* Mirror/Resubmit/Digest .emit *)
          | _ -> fail "tofino: unsupported extern %s" fname)
      | None -> fail "tofino: unsupported extern %s" fname)

(* ------------------------------------------------------------------ *)
(* Pipeline template *)

let leaf st p = read_leaf st p
let setl p v st = write_leaf p v st

(* the intrinsic metadata Tofino prepends to the wire packet: all
   tainted except the ingress port *)
let prepend_ingress_metadata st =
  let ectx = state_ectx st in
  let md =
    Expr.concat
      (Expr.fresh_taint ectx 7) (* resubmit_flag .. _pad2 *)
      (Expr.concat (Expr.zext st.in_port 9) (Expr.fresh_taint ectx 48))
  in
  prepend_live md st

let prepend_egress_metadata port st =
  let ectx = Expr.ctx_of port in
  (* egress intrinsic metadata, parsed by the egress parser; width must
     match egress_intrinsic_metadata_t *)
  let fields =
    [
      Expr.fresh_taint ectx 7 (* _pad0 *);
      port;
      Expr.fresh_taint ectx (19 + 2 + 18 + 19 + 2 + 8 + 18 + 16 + 1 + 7 + 3 + 1 + 16);
    ]
  in
  let md = List.fold_left Expr.concat (Expr.zero ectx 0) fields in
  prepend_live md st

let rec pipeline_ops (b : blocks) : work list =
  [
    WOp
      ( "tofino:ig_parser",
        fun ctx st ->
          let st = { st with phase = "ingress" } in
          let st = prepend_ingress_metadata st in
          continue_
            (Step.enter_parser ctx b.bl_iprs
               [ Step.Packet; Step.Data ig_hdr; Step.Data ig_md; Step.Data ig_intr ]
               st) );
    WOp
      ( "tofino:ingress",
        fun ctx st ->
          continue_
            (Step.enter_control ctx b.bl_ig
               [
                 Step.Data ig_hdr;
                 Step.Data ig_md;
                 Step.Data ig_intr;
                 Step.Data ig_prsr;
                 Step.Data ig_dprsr;
                 Step.Data ig_tm;
               ]
               st) );
    WOp
      ( "tofino:ig_deparser",
        fun ctx st ->
          continue_
            (Step.enter_control ctx b.bl_idep
               [ Step.Packet; Step.Data ig_hdr; Step.Data ig_md; Step.Data ig_dprsr ]
               st) );
    WOp ("tofino:tm", fun ctx st -> traffic_manager b ctx st);
  ]

and egress_ops (b : blocks) : work list =
  [
    WOp
      ( "tofino:eg_parser",
        fun ctx st ->
          let st = { st with phase = "egress" } in
          continue_
            (Step.enter_parser ctx b.bl_eprs
               [ Step.Packet; Step.Data eg_hdr; Step.Data eg_md; Step.Data eg_intr ]
               st) );
    WOp
      ( "tofino:egress",
        fun ctx st ->
          continue_
            (Step.enter_control ctx b.bl_eg
               [
                 Step.Data eg_hdr;
                 Step.Data eg_md;
                 Step.Data eg_intr;
                 Step.Data eg_prsr;
                 Step.Data eg_dprsr;
                 Step.Data eg_oport;
               ]
               st) );
    WOp
      ( "tofino:eg_deparser",
        fun ctx st ->
          continue_
            (Step.enter_control ctx b.bl_edep
               [ Step.Packet; Step.Data eg_hdr; Step.Data eg_md; Step.Data eg_dprsr ]
               st) );
    WOp ("tofino:final", fun ctx st -> finalize ctx st);
  ]

and dummy_fr = { fr_scopes = []; fr_ctrl = None; fr_parser = None }

(* Pad the generated frame to the 64-byte minimum.  A sealed input (a
   short-packet branch) cannot grow: such a frame is dropped by the
   device before processing. *)
and deliver ctx ~note:n ~port st : branch list =
  if st.sealed && input_width st < 64 * 8 then
    continue_ { (note "frame below 64B minimum: dropped" st) with dropped = true }
  else begin
    let st = pad_to_bytes ctx 64 st in
    continue_ (add_output ~note:n ~port ~data:st.live st)
  end

(* Traffic manager: drop_ctl, unwritten egress port, bypass_egress. *)
and traffic_manager (b : blocks) ctx st : branch list =
  let st = flush_emit st in
  let drop = Expr.neq (leaf st (ig_dprsr ^ ".drop_ctl")) (Expr.zero ctx.ectx 3) in
  let dropped reason st =
    let st = if st.sealed then st else pad_to_bytes ctx 64 st in
    { (note ("TM: " ^ reason) st) with dropped = true; work = [] }
  in
  let bypass_op =
    WOp
      ( "tofino:tm-bypass?",
        fun ctx st ->
          let port = leaf st (ig_tm ^ ".ucast_egress_port") in
          let bypass = Expr.eq (leaf st (ig_tm ^ ".bypass_egress")) (Expr.ones ctx.ectx 1) in
          let to_egress =
            let st = setl (eg_intr ^ ".egress_port") port st in
            let st = prepend_egress_metadata port st in
            push_work (egress_ops b) st
          in
          match
            Step.fork_cond ctx dummy_fr bypass
              ~then_:("tm:bypass", { st with work = [] })
              ~else_:("tm:egress", to_egress)
          with
          | branches ->
              List.concat_map
                (fun br ->
                  if br.br_label = "tm:bypass" then
                    List.map
                      (fun b2 ->
                        { b2 with br_cond = (match (br.br_cond, b2.br_cond) with
                            | Some a, Some b -> Some (Expr.band a b)
                            | Some a, None -> Some a
                            | None, c -> c) })
                      (deliver ctx ~note:"bypass-egress" ~port br.br_state)
                  else [ br ])
                branches )
  in
  let port_op =
    WOp
      ( "tofino:tm-port?",
        fun ctx st ->
          (* "egress port never written -> drop" (Tbl. 6), checked
             semantically: the port is initialized to the invalid-port
             sentinel, and the TM also drops when the program itself
             forwards to the sentinel value — the concrete model
             compares the value, so a syntactic written-ness check
             would disagree whenever a symbolic port can take 0x1FF.
             Constant ports short-circuit in fork_cond, so only a
             genuinely symbolic port forks here *)
          let port = leaf st (ig_tm ^ ".ucast_egress_port") in
          let invalid = Expr.eq port (Expr.of_int ctx.ectx ~width:9 invalid_port) in
          Step.fork_cond ctx dummy_fr invalid
            ~then_:("tm:invalid-port", dropped "egress port never set" st)
            ~else_:("tm:fwd-port", push_work [ bypass_op ] st) )
  in
  Step.fork_cond ctx dummy_fr drop
    ~then_:("tm:drop", dropped "drop_ctl" st)
    ~else_:("tm:fwd", push_work [ port_op ] st)

and finalize ctx st : branch list =
  let st = flush_emit st in
  let drop = Expr.neq (leaf st (eg_dprsr ^ ".drop_ctl")) (Expr.zero ctx.ectx 3) in
  let port = leaf st (eg_intr ^ ".egress_port") in
  match
    Step.fork_cond ctx dummy_fr drop
      ~then_:
        ( "eg:drop",
          { (if st.sealed then st else pad_to_bytes ctx 64 st) with dropped = true } )
      ~else_:("eg:deliver", st)
  with
  | branches ->
      List.concat_map
        (fun br ->
          if br.br_label = "eg:deliver" then
            List.map
              (fun b2 ->
                { b2 with br_cond = (match (br.br_cond, b2.br_cond) with
                    | Some a, Some b -> Some (Expr.band a b)
                    | Some a, None -> Some a
                    | None, c -> c) })
              (deliver ctx ~note:"egress" ~port br.br_state)
          else [ br ])
        branches

let make_init family ctx st =
  ctx.uninit_is_zero <- false;
  ignore family;
  let b = blocks ctx in
  let ihtyp, imtyp =
    match b.bl_iprs.p_params with
    | _ :: h :: m :: _ -> (h.Ast.par_typ, m.Ast.par_typ)
    | _ -> fail "tofino: ingress parser must have >= 3 parameters"
  in
  let ehtyp, emtyp =
    match b.bl_eprs.p_params with
    | _ :: h :: m :: _ -> (h.Ast.par_typ, m.Ast.par_typ)
    | _ -> fail "tofino: egress parser must have >= 3 parameters"
  in
  let auto_init =
    List.exists
      (function
        | Ast.DControl (_, annos) | Ast.DParser (_, annos) ->
            Ast.has_anno "auto_init_metadata" annos
        | _ -> false)
      ctx.prog
  in
  let md_init = if auto_init then init_zero ctx else init_taint ctx in
  let st = declare ctx ~init:(init_taint ctx) ihtyp ig_hdr st in
  let st = declare ctx ~init:md_init imtyp ig_md st in
  let st = declare ctx ~init:md_init (Ast.TName "ingress_intrinsic_metadata_t") ig_intr st in
  let st =
    declare ctx ~init:md_init (Ast.TName "ingress_intrinsic_metadata_from_parser_t") ig_prsr st
  in
  let st =
    declare ctx ~init:(init_zero ctx) (Ast.TName "ingress_intrinsic_metadata_for_deparser_t") ig_dprsr
      st
  in
  let st = declare ctx ~init:(init_zero ctx) (Ast.TName "ingress_intrinsic_metadata_for_tm_t") ig_tm st in
  (* the egress port starts "unwritten" (Tbl. 6) *)
  let st = setl (ig_tm ^ ".ucast_egress_port") (Expr.of_int ctx.ectx ~width:9 invalid_port) st in
  let st = declare ctx ~init:(init_taint ctx) ehtyp eg_hdr st in
  let st = declare ctx ~init:md_init emtyp eg_md st in
  let st = declare ctx ~init:md_init (Ast.TName "egress_intrinsic_metadata_t") eg_intr st in
  let st =
    declare ctx ~init:md_init (Ast.TName "egress_intrinsic_metadata_from_parser_t") eg_prsr st
  in
  let st =
    declare ctx ~init:(init_zero ctx) (Ast.TName "egress_intrinsic_metadata_for_deparser_t") eg_dprsr st
  in
  let st =
    declare ctx ~init:(init_zero ctx) (Ast.TName "egress_intrinsic_metadata_for_output_port_t") eg_oport
      st
  in
  push_work (pipeline_ops b) st

let make family : (module Target_intf.S) =
  (module struct
    let name = family_name family
    let prelude =
      match family with
      | Tna -> prelude_common
      | T2na -> prelude_common ^ prelude_t2na_extra
    let port_width = port_width
    let min_packet_bytes = Some 64
    let init = make_init family
    let extern = extern
    let on_reject = on_reject
  end)
