(* Mid-end passes.  P4Testgen runs the input through P4C's
   simplifying transformations before symbolic execution (§4, phase 1);
   these are our equivalents:

   - [fold]: constant propagation and folding, which also performs
     dead-branch elimination ([if (false) ...] disappears), so that
     statement coverage is computed "after dead-code elimination" (§7);
   - [elim_stack_indices]: replaces run-time header-stack indices with
     conditionals over constant indices;
   - [number_statements]: gives every executable statement a unique id
     (stored in its [pos.line]) used by coverage tracking. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Constant folding *)

type fold_env = (string * int) list

let rec eval_const (env : fold_env) (e : expr) : int option =
  match e with
  | EInt { iv; _ } -> Some iv
  | EBool b -> Some (if b then 1 else 0)
  | EVar n -> List.assoc_opt n env
  | EUnop (Neg, a) -> Option.map (fun v -> -v) (eval_const env a)
  | EUnop (BitNot, a) -> Option.map lnot (eval_const env a)
  | EUnop (LNot, a) -> Option.map (fun v -> if v = 0 then 1 else 0) (eval_const env a)
  | EBinop (op, a, b) -> (
      match (eval_const env a, eval_const env b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div -> if y = 0 then None else Some (x / y)
          | Mod -> if y = 0 then None else Some (x mod y)
          | Shl -> Some (x lsl y)
          | Shr -> Some (x lsr y)
          | BAnd -> Some (x land y)
          | BOr -> Some (x lor y)
          | BXor -> Some (x lxor y)
          | LAnd -> Some (if x <> 0 && y <> 0 then 1 else 0)
          | LOr -> Some (if x <> 0 || y <> 0 then 1 else 0)
          | Eq -> Some (if x = y then 1 else 0)
          | Neq -> Some (if x <> y then 1 else 0)
          | Lt -> Some (if x < y then 1 else 0)
          | Le -> Some (if x <= y then 1 else 0)
          | Gt -> Some (if x > y then 1 else 0)
          | Ge -> Some (if x >= y then 1 else 0)
          | AddSat | SubSat | Concat -> None)
      | _ -> None)
  | ETernary (c, t, f) -> (
      match eval_const env c with
      | Some 0 -> eval_const env f
      | Some _ -> eval_const env t
      | None -> None)
  | ECast (_, a) -> eval_const env a
  | _ -> None

let rec fold_expr env (e : expr) : expr =
  match e with
  | EVar n -> (
      match List.assoc_opt n env with
      | Some v -> EInt { value = None; iv = v; width = None; signed = false }
      | None -> e)
  | EBinop (op, a, b) -> (
      let a = fold_expr env a and b = fold_expr env b in
      let folded = eval_const env (EBinop (op, a, b)) in
      match folded with
      | Some v when v >= 0 ->
          let width =
            match (a, b) with
            | EInt { width = Some w; _ }, _ | _, EInt { width = Some w; _ } -> Some w
            | _ -> None
          in
          let width = match op with Eq | Neq | Lt | Le | Gt | Ge | LAnd | LOr -> None | _ -> width in
          EInt { value = Option.map (fun w -> Bitv.Bits.of_int ~width:w v) width; iv = v; width; signed = false }
      | _ -> EBinop (op, a, b))
  | EUnop (op, a) -> (
      let a = fold_expr env a in
      match eval_const env (EUnop (op, a)) with
      | Some v when v >= 0 -> EInt { value = None; iv = v; width = None; signed = false }
      | _ -> EUnop (op, a))
  | ETernary (c, t, f) -> (
      let c = fold_expr env c in
      match eval_const env c with
      | Some 0 -> fold_expr env f
      | Some _ -> fold_expr env t
      | None -> ETernary (c, fold_expr env t, fold_expr env f))
  | EMember (a, f) -> EMember (fold_expr env a, f)
  | EIndex (a, i) -> EIndex (fold_expr env a, fold_expr env i)
  | ESlice (a, hi, lo) -> (
      let a = fold_expr env a in
      match a with
      (* x[h1:l1][h2:l2] reads bits [l1+h2 : l1+l2] of x *)
      | ESlice (b, _, blo) -> ESlice (b, blo + hi, blo + lo)
      | EInt { iv; _ } when iv >= 0 && hi < 62 ->
          let w = hi - lo + 1 in
          let v = (iv asr lo) land ((1 lsl w) - 1) in
          EInt { value = Some (Bitv.Bits.of_int ~width:w v); iv = v; width = Some w; signed = false }
      | EVar _ | EMember _ | EIndex _ -> ESlice (a, hi, lo)
      | _ ->
          (* slice of a compound expression: lower to shift plus
             truncating cast, which evaluates without an l-value *)
          let w = hi - lo + 1 in
          let sh =
            if lo = 0 then a
            else EBinop (Shr, a, EInt { value = None; iv = lo; width = None; signed = false })
          in
          ECast (TBit w, sh))
  | ECast (t, a) -> ECast (t, fold_expr env a)
  | ECall (f, args) -> ECall (fold_expr env f, List.map (fold_expr env) args)
  | EList es -> EList (List.map (fold_expr env) es)
  | EMask (a, b) -> EMask (fold_expr env a, fold_expr env b)
  | ERange (a, b) -> ERange (fold_expr env a, fold_expr env b)
  | EBool _ | EInt _ | EString _ | ETypeArg _ | EDontCare | EDefault -> e

let rec fold_stmt env (s : stmt) : fold_env * stmt =
  match s with
  | SConstDecl (p, t, n, e) -> (
      let e = fold_expr env e in
      match eval_const env e with
      | Some v -> ((n, v) :: env, SConstDecl (p, t, n, e))
      | None -> (env, SConstDecl (p, t, n, e)))
  | SAssign (p, l, r) -> (env, SAssign (p, fold_expr env l, fold_expr env r))
  | SCall (p, f, args) -> (env, SCall (p, fold_expr env f, List.map (fold_expr env) args))
  | SIf (p, c, t, e) -> (
      let c = fold_expr env c in
      match eval_const env c with
      | Some 0 -> (env, SBlock (fold_block env e))
      | Some _ -> (env, SBlock (fold_block env t))
      | None -> (env, SIf (p, c, fold_block env t, fold_block env e)))
  | SSwitch (p, e, cases) ->
      ( env,
        SSwitch
          ( p,
            fold_expr env e,
            List.map
              (fun c -> { c with sw_body = Option.map (fold_block env) c.sw_body })
              cases ) )
  | SVarDecl (p, t, n, init) -> (env, SVarDecl (p, t, n, Option.map (fold_expr env) init))
  | SReturn (p, e) -> (env, SReturn (p, Option.map (fold_expr env) e))
  | SBlock b -> (env, SBlock (fold_block env b))
  | SExit _ | SEmpty -> (env, s)

and fold_block env (b : block) : block =
  let _, stmts =
    List.fold_left
      (fun (env, acc) s ->
        let env, s = fold_stmt env s in
        let keep = match s with SBlock [] | SEmpty -> false | _ -> true in
        (env, if keep then s :: acc else acc))
      (env, []) b
  in
  List.rev stmts

let fold_action env (a : action_decl) = { a with act_body = fold_block env a.act_body }

let fold_table env (t : table) =
  {
    t with
    tbl_keys = List.map (fun k -> { k with tk_expr = fold_expr env k.tk_expr }) t.tbl_keys;
    tbl_entries =
      List.map
        (fun e ->
          { e with te_keys = List.map (fold_expr env) e.te_keys;
                   te_args = List.map (fold_expr env) e.te_args })
        t.tbl_entries;
    tbl_default =
      Option.map (fun (a, args) -> (a, List.map (fold_expr env) args)) t.tbl_default;
  }

let fold_locals env locals =
  List.fold_left
    (fun (env, acc) l ->
      match l with
      | LConst (t, n, e) -> (
          let e = fold_expr env e in
          match eval_const env e with
          | Some v -> ((n, v) :: env, LConst (t, n, e) :: acc)
          | None -> (env, LConst (t, n, e) :: acc))
      | LVar (t, n, init) -> (env, LVar (t, n, Option.map (fold_expr env) init) :: acc)
      | LAction a -> (env, LAction (fold_action env a) :: acc)
      | LTable t -> (env, LTable (fold_table env t) :: acc)
      | LInstantiation (t, args, n) ->
          (env, LInstantiation (t, List.map (fold_expr env) args, n) :: acc))
    (env, []) locals
  |> fun (env, acc) -> (env, List.rev acc)

let fold_state env (s : parser_state) =
  {
    s with
    st_stmts = fold_block env s.st_stmts;
    st_trans =
      (match s.st_trans with
      | TrDirect n -> TrDirect n
      | TrSelect (keys, cases) ->
          TrSelect
            ( List.map (fold_expr env) keys,
              List.map
                (fun c -> { c with sel_keys = List.map (fold_expr env) c.sel_keys })
                cases ));
  }

let fold (prog : program) : program =
  (* collect global consts first *)
  let genv =
    List.filter_map
      (function
        | DConst (_, n, e) -> Option.map (fun v -> (n, v)) (eval_const [] e)
        | DSerEnum (_, _, _) -> None
        | _ -> None)
      prog
  in
  (* serializable enum members fold as name constants too *)
  let genv =
    List.fold_left
      (fun env d ->
        match d with
        | DSerEnum (_, _, ms) ->
            List.fold_left
              (fun env (m, e) ->
                match eval_const env e with Some v -> (m, v) :: env | None -> env)
              env ms
        | _ -> env)
      genv prog
  in
  List.map
    (fun d ->
      match d with
      | DParser (pd, annos) ->
          let env, locals = fold_locals genv pd.p_locals in
          DParser
            ({ pd with p_locals = locals; p_states = List.map (fold_state env) pd.p_states },
             annos)
      | DControl (cd, annos) ->
          let env, locals = fold_locals genv cd.c_locals in
          DControl ({ cd with c_locals = locals; c_body = fold_block env cd.c_body }, annos)
      | DAction a -> DAction (fold_action genv a)
      | d -> d)
    prog

(* ------------------------------------------------------------------ *)
(* Run-time header-stack index elimination *)

let rec find_dynamic_index (e : expr) : (expr * expr) option =
  (* returns (stack base, index expr) for the first non-constant index *)
  match e with
  | EIndex (b, i) -> (
      match i with
      | EInt _ -> find_dynamic_index b
      | _ -> (
          match find_dynamic_index i with
          | Some r -> Some r
          | None -> Some (b, i)))
  | EMember (b, _) | ESlice (b, _, _) | ECast (_, b) | EUnop (_, b) -> find_dynamic_index b
  | EBinop (_, a, b) | EMask (a, b) | ERange (a, b) -> (
      match find_dynamic_index a with Some r -> Some r | None -> find_dynamic_index b)
  | ETernary (a, b, c) -> (
      match find_dynamic_index a with
      | Some r -> Some r
      | None -> (
          match find_dynamic_index b with Some r -> Some r | None -> find_dynamic_index c))
  | ECall (f, args) ->
      List.fold_left
        (fun acc a -> match acc with Some _ -> acc | None -> find_dynamic_index a)
        (find_dynamic_index f) args
  | EList es ->
      List.fold_left
        (fun acc a -> match acc with Some _ -> acc | None -> find_dynamic_index a)
        None es
  | EBool _ | EInt _ | EString _ | EVar _ | ETypeArg _ | EDontCare | EDefault -> None

let rec subst_index ~base ~index ~const (e : expr) : expr =
  let go = subst_index ~base ~index ~const in
  match e with
  | EIndex (b, i) when b = base && i = index -> EIndex (go b, int_lit const)
  | EIndex (b, i) -> EIndex (go b, go i)
  | EMember (b, f) -> EMember (go b, f)
  | ESlice (b, hi, lo) -> ESlice (go b, hi, lo)
  | ECast (t, b) -> ECast (t, go b)
  | EUnop (op, b) -> EUnop (op, go b)
  | EBinop (op, a, b) -> EBinop (op, go a, go b)
  | EMask (a, b) -> EMask (go a, go b)
  | ERange (a, b) -> ERange (go a, go b)
  | ETernary (a, b, c) -> ETernary (go a, go b, go c)
  | ECall (f, args) -> ECall (go f, List.map go args)
  | EList es -> EList (List.map go es)
  | EBool _ | EInt _ | EString _ | EVar _ | ETypeArg _ | EDontCare | EDefault -> e

let stack_size_of ctx scope base =
  match Typing.typ_of_lvalue ctx scope base with
  | Some _ -> (
      (* base itself is the stack l-value; look it up directly *)
      match Typing.typ_of_lvalue ctx scope base with
      | Some (TStack (_, n)) -> Some n
      | _ -> None)
  | None -> None

let rec elim_stmt ctx scope (s : stmt) : stmt =
  let dynamic =
    match s with
    | SAssign (_, l, r) -> (
        match find_dynamic_index l with Some r' -> Some r' | None -> find_dynamic_index r)
    | SCall (_, f, args) ->
        List.fold_left
          (fun acc a -> match acc with Some _ -> acc | None -> find_dynamic_index a)
          (find_dynamic_index f) args
    | _ -> None
  in
  match dynamic with
  | Some (base, index) -> (
      match stack_size_of ctx scope base with
      | Some n ->
          let pos = stmt_pos s in
          let rec chain k =
            if k >= n then SEmpty
            else
              let s' = subst_stmt ~base ~index ~const:k s in
              let s' = elim_stmt ctx scope s' in
              SIf
                ( pos,
                  EBinop (Eq, index, int_lit k),
                  [ s' ],
                  [ chain (k + 1) ] )
          in
          chain 0
      | None -> s)
  | None -> (
      match s with
      | SIf (p, c, t, e) ->
          SIf (p, c, List.map (elim_stmt ctx scope) t, List.map (elim_stmt ctx scope) e)
      | SBlock b -> SBlock (List.map (elim_stmt ctx scope) b)
      | SSwitch (p, e, cases) ->
          SSwitch
            ( p,
              e,
              List.map
                (fun c ->
                  { c with sw_body = Option.map (List.map (elim_stmt ctx scope)) c.sw_body })
                cases )
      | s -> s)

and subst_stmt ~base ~index ~const (s : stmt) : stmt =
  match s with
  | SAssign (p, l, r) ->
      SAssign (p, subst_index ~base ~index ~const l, subst_index ~base ~index ~const r)
  | SCall (p, f, args) ->
      SCall
        (p, subst_index ~base ~index ~const f, List.map (subst_index ~base ~index ~const) args)
  | s -> s

let scope_of_params params =
  List.map (fun p -> (p.par_name, p.par_typ)) params

let scope_of_locals locals =
  List.filter_map (function LVar (t, n, _) -> Some (n, t) | _ -> None) locals

let elim_stack_indices ctx (prog : program) : program =
  List.map
    (fun d ->
      match d with
      | DParser (pd, annos) ->
          let scope = scope_of_params pd.p_params @ scope_of_locals pd.p_locals in
          DParser
            ( {
                pd with
                p_states =
                  List.map
                    (fun st -> { st with st_stmts = List.map (elim_stmt ctx scope) st.st_stmts })
                    pd.p_states;
              },
              annos )
      | DControl (cd, annos) ->
          let scope = scope_of_params cd.c_params @ scope_of_locals cd.c_locals in
          let elim_local = function
            | LAction a -> LAction { a with act_body = List.map (elim_stmt ctx scope) a.act_body }
            | l -> l
          in
          DControl
            ( {
                cd with
                c_locals = List.map elim_local cd.c_locals;
                c_body = List.map (elim_stmt ctx scope) cd.c_body;
              },
              annos )
      | d -> d)
    prog

(* ------------------------------------------------------------------ *)
(* Statement numbering for coverage *)

let number_statements (prog : program) : program * int =
  let counter = ref 0 in
  let next () =
    incr counter;
    { line = !counter; col = 0 }
  in
  let rec num_stmt s =
    match s with
    | SAssign (_, l, r) -> SAssign (next (), l, r)
    | SCall (_, f, args) -> SCall (next (), f, args)
    | SExit _ -> SExit (next ())
    | SReturn (_, e) -> SReturn (next (), e)
    | SIf (_, c, t, e) ->
        (* branches are numbered, the if itself is not a coverable leaf *)
        SIf (no_pos, c, List.map num_stmt t, List.map num_stmt e)
    | SSwitch (_, e, cases) ->
        SSwitch
          ( no_pos,
            e,
            List.map (fun c -> { c with sw_body = Option.map (List.map num_stmt) c.sw_body }) cases
          )
    | SBlock b -> SBlock (List.map num_stmt b)
    | SVarDecl (_, t, n, i) -> SVarDecl (no_pos, t, n, i)
    | SConstDecl (_, t, n, e) -> SConstDecl (no_pos, t, n, e)
    | SEmpty -> SEmpty
  in
  let num_action a = { a with act_body = List.map num_stmt a.act_body } in
  let num_local = function
    | LAction a -> LAction (num_action a)
    | l -> l
  in
  let prog =
    List.map
      (fun d ->
        match d with
        | DParser (pd, annos) ->
            DParser
              ( {
                  pd with
                  p_locals = List.map num_local pd.p_locals;
                  p_states =
                    List.map
                      (fun st -> { st with st_stmts = List.map num_stmt st.st_stmts })
                      pd.p_states;
                },
                annos )
        | DControl (cd, annos) ->
            DControl
              ( {
                  cd with
                  c_locals = List.map num_local cd.c_locals;
                  c_body = List.map num_stmt cd.c_body;
                },
                annos )
        | DAction a -> DAction (num_action a)
        | d -> d)
      prog
  in
  (prog, !counter)

(* ------------------------------------------------------------------ *)
(* Statement shapes

   A canonical, identifier-oblivious description of every numbered
   statement, keyed by the id [number_statements] assigned.  Two
   statements in *different* programs share a shape exactly when they
   are the same construct in the same structural position — constants,
   declaration names, and table/action/state identifiers are erased
   (member field names are kept: they come from a small shared header
   vocabulary and distinguish genuinely different behaviors).  The
   self-validation corpus keys its cross-program coverage sets on
   these shapes: a freshly renamed splice therefore contributes no
   novelty by name alone, only by reaching constructs or construct
   combinations no earlier case reached. *)

let rec expr_shape (e : expr) : string =
  match e with
  | EBool _ -> "b"
  | EInt { width = Some w; _ } -> Printf.sprintf "k%d" w
  | EInt _ -> "k"
  | EString _ -> "s"
  | EVar _ -> "_"
  | EMember (e, f) -> expr_shape e ^ "." ^ f
  | EIndex (e, i) -> expr_shape e ^ "[" ^ expr_shape i ^ "]"
  | ESlice (e, hi, lo) -> Printf.sprintf "%s[%d:%d]" (expr_shape e) hi lo
  | EUnop (op, a) ->
      let o = match op with Neg -> "-" | BitNot -> "~" | LNot -> "!" in
      o ^ expr_shape a
  | EBinop (op, a, b) ->
      let o =
        match op with
        | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
        | AddSat -> "|+|" | SubSat -> "|-|" | Shl -> "<<" | Shr -> ">>"
        | BAnd -> "&" | BOr -> "|" | BXor -> "^" | LAnd -> "&&" | LOr -> "||"
        | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">"
        | Ge -> ">=" | Concat -> "++"
      in
      "(" ^ expr_shape a ^ o ^ expr_shape b ^ ")"
  | ETernary (c, t, f) ->
      "(" ^ expr_shape c ^ "?" ^ expr_shape t ^ ":" ^ expr_shape f ^ ")"
  | ECast (t, a) -> Format.asprintf "(%a)%s" Pretty.pp_typ t (expr_shape a)
  | ECall (f, args) ->
      expr_shape f ^ "(" ^ String.concat "," (List.map expr_shape args) ^ ")"
  | ETypeArg t -> Format.asprintf "<%a>" Pretty.pp_typ t
  | EList es -> "{" ^ String.concat "," (List.map expr_shape es) ^ "}"
  | EDontCare -> "_dc"
  | EDefault -> "_def"
  | EMask (a, m) -> expr_shape a ^ "&&&" ^ expr_shape m
  | ERange (a, b) -> expr_shape a ^ ".." ^ expr_shape b

(** [statement_shapes prog] maps every coverable statement id of a
    numbered program (see {!number_statements}) to its canonical
    shape. *)
let statement_shapes (prog : program) : (int * string) list =
  let out = ref [] in
  let emit (p : pos) shape =
    if p.line > 0 then out := (p.line, shape) :: !out
  in
  let rec walk ctx s =
    match s with
    | SAssign (p, l, r) ->
        emit p (ctx ^ ":assign " ^ expr_shape l ^ ":=" ^ expr_shape r)
    | SCall (p, f, args) ->
        emit p
          (ctx ^ ":call " ^ expr_shape f ^ "("
          ^ String.concat "," (List.map expr_shape args)
          ^ ")")
    | SExit p -> emit p (ctx ^ ":exit")
    | SReturn (p, e) ->
        emit p
          (ctx ^ ":return"
          ^ match e with Some e -> " " ^ expr_shape e | None -> "")
    | SIf (_, c, t, e) ->
        let cond = expr_shape c in
        List.iter (walk (ctx ^ "/if(" ^ cond ^ ").t")) t;
        List.iter (walk (ctx ^ "/if(" ^ cond ^ ").e")) e
    | SSwitch (_, _, cases) ->
        List.iteri
          (fun i c ->
            match c.sw_body with
            | Some b -> List.iter (walk (Printf.sprintf "%s/switch.%d" ctx i)) b
            | None -> ())
          cases
    | SBlock b -> List.iter (walk ctx) b
    | SVarDecl _ | SConstDecl _ | SEmpty -> ()
  in
  let walk_action ctx a = List.iter (walk (ctx ^ "/action")) a.act_body in
  let walk_local ctx = function
    | LAction a -> walk_action ctx a
    | LVar _ | LConst _ | LTable _ | LInstantiation _ -> ()
  in
  List.iter
    (fun d ->
      match d with
      | DParser (pd, _) ->
          List.iter (walk_local "parser") pd.p_locals;
          List.iter
            (fun st -> List.iter (walk "parser/state") st.st_stmts)
            pd.p_states
      | DControl (cd, _) ->
          List.iter (walk_local "control") cd.c_locals;
          List.iter (walk "control") cd.c_body
      | DAction a -> walk_action "top" a
      | _ -> ())
    prog;
  List.rev !out

(** The standard pipeline applied before symbolic execution. *)
let prepare (prog : program) : program * Typing.ctx * int =
  let prog = fold prog in
  let ctx = Typing.build prog in
  let prog = elim_stack_indices ctx prog in
  let prog, nstmts = number_statements prog in
  (prog, ctx, nstmts)
