(** Fault injection for the bug-finding study (Tbl. 2 / Tbl. 3).

    The paper counts bugs P4Testgen exposed in production toolchains:
    "exception" bugs (the software model, test framework, or
    control-plane software crashes) and "wrong code" bugs (the test
    inputs produce unexpected output).  The repository reproduces the
    experiment's shape by seeding {!Interp} with faults of both classes
    and measuring how many the generated test suites expose
    ([bench/main.exe table2]). *)

type kind = Exception | Wrong_code

(** The injectable fault behaviors; see the corpus for the bug each one
    models. *)
type fault =
  | No_fault
  | Crash_stack_oob
  | Crash_expr_key
  | Crash_missing_name
  | Crash_varbit_extract
  | Crash_union_emit
  | Crash_dup_member
  | Crash_zero_len
  | Crash_assert
  | Wrong_stack_op
  | Swallow_apply
  | Ignore_entry_priority
  | Wrong_checksum_fold
  | Invalid_read_garbage
  | Drop_second_emit
  | Wrong_shift_direction
  | Wrong_ternary_mask
  | Skip_default_action
  | Truncate_action_arg
  | Register_reset_between_packets
      (** register state re-initialised between the packets of a test
          sequence ({!Harness.run_test} consults it at each injection) *)

type t = {
  m_label : string;  (** e.g. "P4C-7" or "TOF-11" *)
  m_target : string;  (** "BMv2" or "Tofino" *)
  m_kind : kind;
  m_desc : string;
  m_fault : fault;
}

val kind_name : kind -> string

val fault_name : fault -> string
(** Stable snake_case spelling, e.g. ["invalid_read_garbage"]. *)

val corpus : t list
(** 10 BMv2-side faults — the Tbl. 3 nine (with their exact
    descriptions) plus the sequence-persistence fault SEQ-1 — and 16
    Tofino-side faults, matching the counts of Tbl. 2. *)

val by_target : string -> t list

val by_label : string -> t option
(** Look up a corpus entry by its label ("P4C-7", "TOF-12"). *)

val fault_of_string : string -> fault option
(** Resolve a CLI spelling: a corpus label or a {!fault_name}. *)
