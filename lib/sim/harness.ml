(* Concrete pipelines per target plus the test-execution harness: load
   a generated test's control-plane configuration, inject its input
   packet, run the software model, and compare the observed output
   with the expectation (honoring don't-care masks).

   This is the validation loop of §7 ("Does P4Testgen produce correct
   tests?"): every generated test is executed on the corresponding
   software model. *)

module Bits = Bitv.Bits
open P4
open Interp

type verdict =
  | Pass
  | Wrong_output of string  (** observed behavior differs from the expectation *)
  | Crash of string  (** the toolchain/model raised (an "exception" bug) *)

let verdict_name = function
  | Pass -> "PASS"
  | Wrong_output _ -> "WRONG"
  | Crash _ -> "CRASH"

(* ------------------------------------------------------------------ *)
(* Program preparation: same front end as the oracle *)

type prepared_sim = { cfg : cfg; arch : string }

let prepare ?(fault = Mutation.No_fault) ?(seed = 42) ~arch (source : string) : prepared_sim =
  let prelude_src =
    match Targets.Registry.find arch with
    | Some t ->
        let module T = (val t) in
        T.prelude
    | None -> failwith ("unknown arch " ^ arch)
  in
  let prog = P4.Parser.parse_program prelude_src @ P4.Parser.parse_program source in
  let prog = P4.Passes.fold prog in
  let tctx = P4.Typing.build prog in
  let prog = P4.Passes.elim_stack_indices tctx prog in
  { cfg = make_cfg ~fault ~seed ~arch prog tctx; arch }

(* ------------------------------------------------------------------ *)
(* v1model concrete pipeline *)

let error_code cfg e = Bits.of_int ~width:Typing.error_width (Typing.error_code cfg.tctx e)

let find_inst (cfg : cfg) =
  Testgen.Target_intf.find_instantiation cfg.prog

let run_v1model (cfg : cfg) st ~(port : int) (input : Bits.t) : (int * Bits.t) list option =
  if Bits.width input = 0 && cfg.fault = Mutation.Crash_zero_len then
    crash "BMv2 produced garbage on a 0-length packet";
  let p, vc, ig, eg, cc, dp =
    match find_inst cfg with
    | Some ("V1Switch", args, _) -> (
        match List.map Testgen.Target_intf.constructor_name args with
        | [ a; b; c; d; e; f ] ->
            ( Hashtbl.find cfg.parsers a,
              Hashtbl.find cfg.controls b,
              Hashtbl.find cfg.controls c,
              Hashtbl.find cfg.controls d,
              Hashtbl.find cfg.controls e,
              Hashtbl.find cfg.controls f )
        | _ -> failwith "bad V1Switch")
    | _ -> failwith "no V1Switch instantiation"
  in
  let htyp, mtyp =
    match p.Ast.p_params with
    | [ _; h; m; _ ] -> (h.Ast.par_typ, m.Ast.par_typ)
    | _ -> failwith "bad v1model parser"
  in
  declare cfg st ~init:Bits.zero htyp "$pipe.hdr";
  declare cfg st ~init:Bits.zero mtyp "$pipe.meta";
  declare cfg st ~init:Bits.zero (Ast.TName "standard_metadata_t") "$pipe.sm";
  write_leaf st "$pipe.sm.ingress_port" (Bits.of_int ~width:9 port);
  write_leaf st "$pipe.sm.packet_length" (Bits.of_int ~width:32 (Bits.width input / 8));
  let parser_b = [ BPacket; BData "$pipe.hdr"; BData "$pipe.meta"; BData "$pipe.sm" ] in
  let ctrl_b = [ BData "$pipe.hdr"; BData "$pipe.meta"; BData "$pipe.sm" ] in
  let max_rounds = 3 in
  (* pipeline rounds: recirculation and resubmission re-enter the
     ingress parser (Fig. 5) *)
  let rec round pkt n ~instance_type =
    st.pkt <- pkt;
    st.emitted <- Bits.zero 0;
    st.recirc <- false;
    st.resubmit <- false;
    st.clone_sess <- None;
    st.truncate_bytes <- None;
    write_leaf st "$pipe.sm.egress_spec" (Bits.zero 9);
    write_leaf st "$pipe.sm.egress_port" (Bits.zero 9);
    write_leaf st "$pipe.sm.instance_type" (Bits.of_int ~width:32 instance_type);
    (match run_parser cfg st p parser_b with
    | Ok () -> ()
    | Error e ->
        (* BMv2: the packet is not dropped; the header stays invalid *)
        write_leaf st "$pipe.sm.parser_error" (error_code cfg e));
    run_control cfg st vc [ BData "$pipe.hdr"; BData "$pipe.meta" ];
    run_control cfg st ig ctrl_b;
    if st.resubmit && n < max_rounds then round input (n + 1) ~instance_type:6
    else begin
      let spec = Bits.to_int (read_leaf st "$pipe.sm.egress_spec") in
      let mg = read_leaf st "$pipe.sm.mcast_grp" in
      let mcast_ports =
        if Bits.is_zero mg then None
        else
          List.find_map
            (fun (e : Testgen.Testspec.entry) ->
              if e.e_table = "$mcast" && e.e_action = "__mcast_group__"
                 && List.exists
                      (fun (_, m) ->
                        match m with
                        | Testgen.Testspec.MExact v -> Bits.equal (Bits.zext v 16) mg
                        | _ -> false)
                      e.e_keys
              then
                match (List.assoc_opt "port1" e.e_args, List.assoc_opt "port2" e.e_args) with
                | Some p1, Some p2 ->
                    Some (Bits.to_int (Bits.zext p1 9), Bits.to_int (Bits.zext p2 9))
                | _ -> None
              else None)
            st.entries
      in
      (* a replicated packet bypasses the unicast drop decision *)
      if spec = 511 && mcast_ports = None then None
      else begin
        (match mcast_ports with
        | Some (p1, _) -> write_leaf st "$pipe.sm.egress_port" (Bits.of_int ~width:9 p1)
        | None -> write_leaf st "$pipe.sm.egress_port" (Bits.of_int ~width:9 spec));
        run_control cfg st eg ctrl_b;
        run_control cfg st cc [ BData "$pipe.hdr"; BData "$pipe.meta" ];
        run_control cfg st dp [ BPacket; BData "$pipe.hdr" ];
        let deparsed = Bits.concat st.emitted st.pkt in
        let deparsed =
          match st.truncate_bytes with
          | Some bytes when Bits.width deparsed > bytes * 8 ->
              Bits.slice deparsed ~hi:(Bits.width deparsed - 1)
                ~lo:(Bits.width deparsed - (bytes * 8))
          | _ -> deparsed
        in
        if st.recirc && n < max_rounds then round deparsed (n + 1) ~instance_type:4
        else begin
          let spec2 = Bits.to_int (read_leaf st "$pipe.sm.egress_spec") in
          if spec2 = 511 && mcast_ports = None then None
          else begin
            let out_port = Bits.to_int (read_leaf st "$pipe.sm.egress_port") in
            let clones =
              match st.clone_sess with
              | Some sess when not (Bits.is_zero sess) ->
                  [ (Bits.to_int (Bits.slice sess ~hi:8 ~lo:0), deparsed) ]
              | _ -> []
            in
            (* second multicast copy *)
            let mcast_copy =
              match mcast_ports with
              | Some (_, p2) -> [ (p2, deparsed) ]
              | None -> []
            in
            Some (((out_port, deparsed) :: mcast_copy) @ clones)
          end
        end
      end
    end
  in
  round input 0 ~instance_type:0

(* ------------------------------------------------------------------ *)
(* eBPF concrete pipeline *)

let run_ebpf (cfg : cfg) st ~port (input : Bits.t) : (int * Bits.t) list option =
  ignore port;
  let p, f =
    match find_inst cfg with
    | Some ("ebpfFilter", args, _) -> (
        match List.map Testgen.Target_intf.constructor_name args with
        | [ a; b ] -> (Hashtbl.find cfg.parsers a, Hashtbl.find cfg.controls b)
        | _ -> failwith "bad ebpfFilter")
    | _ -> failwith "no ebpfFilter instantiation"
  in
  let htyp =
    match p.Ast.p_params with
    | [ _; h ] -> h.Ast.par_typ
    | _ -> failwith "bad ebpf parser"
  in
  declare cfg st ~init:(uninit cfg st) htyp "$pipe.hdr";
  declare cfg st ~init:Bits.zero Ast.TBool "$pipe.accept";
  st.pkt <- input;
  match run_parser cfg st p [ BPacket; BData "$pipe.hdr" ] with
  | Error _ -> None (* a failing extract drops the packet in the kernel *)
  | Ok () ->
      run_control cfg st f [ BData "$pipe.hdr"; BData "$pipe.accept" ];
      if Bits.is_zero (read_leaf st "$pipe.accept") then None
      else begin
        (* implicit deparser: re-emit valid headers, then the payload *)
        let fr = { scopes = [ "$pipe" ]; ctrl = None; parser = None } in
        do_emit cfg fr st "$pipe.hdr" htyp;
        Some [ (0, Bits.concat st.emitted st.pkt) ]
      end

(* ------------------------------------------------------------------ *)
(* Tofino concrete pipeline *)

let run_tofino (cfg : cfg) st ~port (input : Bits.t) : (int * Bits.t) list option =
  if Bits.width input = 0 && cfg.fault = Mutation.Crash_zero_len then
    crash "model crash on zero-length packet";
  if Bits.width input < 64 * 8 then None (* sub-64B frames are dropped *)
  else begin
    let names =
      match find_inst cfg with
      | Some ("Switch", [ Ast.ECall (EVar "Pipeline", args) ], _) ->
          List.map Testgen.Target_intf.constructor_name args
      | Some ("Pipeline", args, _) -> List.map Testgen.Target_intf.constructor_name args
      | _ -> failwith "no Pipeline instantiation"
    in
    let ip, ig, id, ep, eg, ed =
      match names with
      | [ a; b; c; d; e; f ] ->
          ( Hashtbl.find cfg.parsers a,
            Hashtbl.find cfg.controls b,
            Hashtbl.find cfg.controls c,
            Hashtbl.find cfg.parsers d,
            Hashtbl.find cfg.controls e,
            Hashtbl.find cfg.controls f )
      | _ -> failwith "bad Pipeline"
    in
    let ihtyp, imtyp =
      match ip.Ast.p_params with
      | _ :: h :: m :: _ -> (h.Ast.par_typ, m.Ast.par_typ)
      | _ -> failwith "bad ingress parser"
    in
    let ehtyp, emtyp =
      match ep.Ast.p_params with
      | _ :: h :: m :: _ -> (h.Ast.par_typ, m.Ast.par_typ)
      | _ -> failwith "bad egress parser"
    in
    let u = uninit cfg st in
    declare cfg st ~init:u ihtyp "$pipe.ig_hdr";
    declare cfg st ~init:u imtyp "$pipe.ig_md";
    declare cfg st ~init:u (Ast.TName "ingress_intrinsic_metadata_t") "$pipe.ig_intr_md";
    declare cfg st ~init:u (Ast.TName "ingress_intrinsic_metadata_from_parser_t") "$pipe.ig_prsr_md";
    declare cfg st ~init:Bits.zero (Ast.TName "ingress_intrinsic_metadata_for_deparser_t")
      "$pipe.ig_dprsr_md";
    declare cfg st ~init:Bits.zero (Ast.TName "ingress_intrinsic_metadata_for_tm_t")
      "$pipe.ig_tm_md";
    write_leaf st "$pipe.ig_tm_md.ucast_egress_port" (Bits.of_int ~width:9 0x1FF);
    declare cfg st ~init:u ehtyp "$pipe.eg_hdr";
    declare cfg st ~init:u emtyp "$pipe.eg_md";
    declare cfg st ~init:u (Ast.TName "egress_intrinsic_metadata_t") "$pipe.eg_intr_md";
    declare cfg st ~init:u (Ast.TName "egress_intrinsic_metadata_from_parser_t") "$pipe.eg_prsr_md";
    declare cfg st ~init:Bits.zero (Ast.TName "egress_intrinsic_metadata_for_deparser_t")
      "$pipe.eg_dprsr_md";
    declare cfg st ~init:Bits.zero (Ast.TName "egress_intrinsic_metadata_for_output_port_t")
      "$pipe.eg_oport_md";
    (* the device prepends intrinsic metadata to the wire packet *)
    let md =
      Bits.concat (Bits.random cfg.rng 7)
        (Bits.concat (Bits.of_int ~width:9 port) (Bits.random cfg.rng 48))
    in
    st.pkt <- Bits.concat md input;
    let ig_bindings =
      [ BPacket; BData "$pipe.ig_hdr"; BData "$pipe.ig_md"; BData "$pipe.ig_intr_md" ]
    in
    match run_parser cfg st ip ig_bindings with
    | Error _ -> None (* ingress parser drops short packets *)
    | Ok () -> (
        run_control cfg st ig
          [
            BData "$pipe.ig_hdr";
            BData "$pipe.ig_md";
            BData "$pipe.ig_intr_md";
            BData "$pipe.ig_prsr_md";
            BData "$pipe.ig_dprsr_md";
            BData "$pipe.ig_tm_md";
          ];
        run_control cfg st id
          [ BPacket; BData "$pipe.ig_hdr"; BData "$pipe.ig_md"; BData "$pipe.ig_dprsr_md" ];
        let deparsed = Bits.concat st.emitted st.pkt in
        st.emitted <- Bits.zero 0;
        if not (Bits.is_zero (read_leaf st "$pipe.ig_dprsr_md.drop_ctl")) then None
        else begin
          let out_port = Bits.to_int (read_leaf st "$pipe.ig_tm_md.ucast_egress_port") in
          if out_port = 0x1FF then None
          else if Bits.is_ones (read_leaf st "$pipe.ig_tm_md.bypass_egress") then
            Some [ (out_port, deparsed) ]
          else begin
            (* egress pipe: prepend egress intrinsic metadata *)
            let emd =
              Bits.concat (Bits.random cfg.rng 7)
                (Bits.concat (Bits.of_int ~width:9 out_port) (Bits.random cfg.rng 130))
            in
            st.pkt <- Bits.concat emd deparsed;
            write_leaf st "$pipe.eg_intr_md.egress_port" (Bits.of_int ~width:9 out_port);
            let eg_bindings =
              [ BPacket; BData "$pipe.eg_hdr"; BData "$pipe.eg_md"; BData "$pipe.eg_intr_md" ]
            in
            (match run_parser cfg st ep eg_bindings with
            | Error _ -> () (* egress parser rejects do not drop (Tbl. 6) *)
            | Ok () -> ());
            run_control cfg st eg
              [
                BData "$pipe.eg_hdr";
                BData "$pipe.eg_md";
                BData "$pipe.eg_intr_md";
                BData "$pipe.eg_prsr_md";
                BData "$pipe.eg_dprsr_md";
                BData "$pipe.eg_oport_md";
              ];
            run_control cfg st ed
              [ BPacket; BData "$pipe.eg_hdr"; BData "$pipe.eg_md"; BData "$pipe.eg_dprsr_md" ];
            if not (Bits.is_zero (read_leaf st "$pipe.eg_dprsr_md.drop_ctl")) then None
            else Some [ (out_port, Bits.concat st.emitted st.pkt) ]
          end
        end)
  end

(* ------------------------------------------------------------------ *)
(* Test execution *)

(* one packet injection against an already-initialised interpreter
   state; sequences call this repeatedly on the same [st], so extern
   state (registers) persists between the injections *)
let run_one (p : prepared_sim) st ~(port : int) (input : Bits.t) :
    (int * Bits.t) list option =
  match p.arch with
  | "v1model" -> run_v1model p.cfg st ~port input
  | "ebpf_model" -> run_ebpf p.cfg st ~port input
  | "tna" | "t2na" -> run_tofino p.cfg st ~port input
  | a -> failwith ("unknown arch " ^ a)

let run_packet (p : prepared_sim) ~(entries : Testgen.Testspec.entry list) ~(port : int)
    (input : Bits.t) : (int * Bits.t) list option =
  let st = fresh_st p.cfg in
  st.entries <- entries;
  run_one p st ~port input

(* a control-plane register write: update the cell if the declaring
   block has already run, otherwise pre-seed an array the declaration
   will keep (and grow to the declared size, preserving contents) *)
let apply_reg_write st (r : Testgen.Testspec.register_init) =
  match Hashtbl.find_opt st.registers r.r_name with
  | Some arr ->
      if r.r_index >= 0 && r.r_index < Array.length arr then
        arr.(r.r_index) <- Bits.zext r.r_value (Bits.width arr.(0))
  | None ->
      if r.r_index >= 0 then begin
        let arr = Array.make (r.r_index + 1) (Bits.zero (Bits.width r.r_value)) in
        arr.(r.r_index) <- r.r_value;
        Hashtbl.replace st.registers r.r_name arr
      end

let compare_packet (exp : Testgen.Testspec.packet) ((port, data) : int * Bits.t) :
    string option =
  if Bits.to_int exp.port <> port then
    Some (Printf.sprintf "port mismatch: expected %d, got %d" (Bits.to_int exp.port) port)
  else if Bits.width exp.data <> Bits.width data then
    Some
      (Printf.sprintf "length mismatch: expected %d bits, got %d" (Bits.width exp.data)
         (Bits.width data))
  else begin
    let care = Bits.lognot exp.dontcare in
    if Bits.equal (Bits.logand exp.data care) (Bits.logand data care) then None
    else
      Some
        (Printf.sprintf "payload mismatch: expected %s, got %s (mask %s)"
           (Bits.to_hex exp.data) (Bits.to_hex data) (Bits.to_hex care))
  end

let compare_outputs (exp : Testgen.Testspec.packet list)
    (observed : (int * Bits.t) list option) : verdict =
  match (exp, observed) with
  | [], None -> Pass
  | [], Some outs ->
      Wrong_output
        (Printf.sprintf "expected drop, got %d packet(s)" (List.length outs))
  | exp, None ->
      Wrong_output (Printf.sprintf "expected %d packet(s), got drop" (List.length exp))
  | exp, Some outs ->
      if List.length exp <> List.length outs then
        Wrong_output
          (Printf.sprintf "expected %d packet(s), got %d" (List.length exp)
             (List.length outs))
      else begin
        match
          List.find_map (fun (e, o) -> compare_packet e o) (List.combine exp outs)
        with
        | Some msg -> Wrong_output msg
        | None -> Pass
      end

(* Execute a whole test — possibly a multi-packet sequence — against
   ONE interpreter state: registers written by an earlier injection
   are visible to the later ones (the state-continuity invariant the
   oracle's sequence mode assumes).  Control-plane steps between
   injections take effect before the next packet. *)
let run_test (p : prepared_sim) (t : Testgen.Testspec.t) : verdict =
  let st = fresh_st p.cfg in
  st.entries <- t.entries;
  List.iter (apply_reg_write st) t.registers;
  let npkts = ref 0 in
  let inject (input : Testgen.Testspec.packet) outputs =
    incr npkts;
    (* fault injection: a buggy switch re-initialises register state
       between the packets of a sequence *)
    if !npkts > 1 && p.cfg.fault = Mutation.Register_reset_between_packets then
      Hashtbl.reset st.registers;
    match run_one p st ~port:(Bits.to_int input.port) input.data with
    | exception Sim_crash msg -> Crash msg
    | exception Reject e -> Crash ("unhandled parser reject: " ^ e)
    | exception Failure msg -> Crash msg
    | observed -> (
        match compare_outputs outputs observed with
        | Pass -> Pass
        | v ->
            if !npkts = 1 && not (Testgen.Testspec.is_sequence t) then v
            else
              (match v with
              | Wrong_output msg ->
                  Wrong_output (Printf.sprintf "packet #%d: %s" !npkts msg)
              | v -> v))
  in
  let rec steps = function
    | [] -> Pass
    | s :: rest -> (
        match s with
        | Testgen.Testspec.SEntry e ->
            st.entries <- st.entries @ [ e ];
            steps rest
        | Testgen.Testspec.SRegister r ->
            apply_reg_write st r;
            steps rest
        | Testgen.Testspec.SInject { input; outputs } -> (
            match inject input outputs with Pass -> steps rest | v -> v))
  in
  steps t.steps

type summary = { passed : int; wrong : int; crashed : int; total : int }

let run_suite (p : prepared_sim) (tests : Testgen.Testspec.t list) :
    summary * (Testgen.Testspec.t * verdict) list =
  let results = List.map (fun t -> (t, run_test p t)) tests in
  let count f = List.length (List.filter (fun (_, v) -> f v) results) in
  ( {
      passed = count (fun v -> v = Pass);
      wrong = count (function Wrong_output _ -> true | _ -> false);
      crashed = count (function Crash _ -> true | _ -> false);
      total = List.length results;
    },
    results )
