(* Concrete software-model interpreter: our stand-in for BMv2, the
   Tofino model, and the eBPF kernel target.

   This is an *independent* evaluator over the same AST: direct
   recursive evaluation on concrete {!Bitv.Bits} values, loadable
   control-plane configuration, and the same per-target quirks
   (Tbl. 6).  The oracle's generated tests are validated by running
   them here and comparing observed with expected output
   ({!Harness}).  Faults from {!Mutation} can be injected to model
   toolchain bugs. *)

module Bits = Bitv.Bits
module SMap = Map.Make (String)
open P4

(* Sim_crash: a toolchain "exception" bug fired.
   Reject: parser reject with an error constant. *)
exception Sim_crash of string
exception Reject of string
exception Exit_block
exception Return_action

let crash fmt = Format.kasprintf (fun s -> raise (Sim_crash s)) fmt
let simfail fmt = Format.kasprintf (fun s -> failwith ("sim: " ^ s)) fmt

type cfg = {
  prog : Ast.program;
  tctx : Typing.ctx;
  arch : string;  (** "v1model" | "tna" | "t2na" | "ebpf_model" *)
  fault : Mutation.fault;
  parsers : (string, Ast.parser_decl) Hashtbl.t;
  controls : (string, Ast.control_decl) Hashtbl.t;
  rng : Random.State.t;  (** source for undefined values *)
}

type st = {
  mutable env : Bits.t SMap.t;
  mutable vartypes : Ast.typ SMap.t;
  mutable pkt : Bits.t;  (** remaining input, front = MSB *)
  mutable emitted : Bits.t;
  mutable outs : (int * Bits.t) list;
  mutable dropped : bool;
  mutable entries : Testgen.Testspec.entry list;
  registers : (string, Bits.t array) Hashtbl.t;
  mutable visits : int SMap.t;
  mutable fresh : int;
  (* v1model traffic-manager requests set by externs *)
  mutable recirc : bool;
  mutable resubmit : bool;
  mutable clone_sess : Bits.t option;
  mutable truncate_bytes : int option;
}

type frame = {
  scopes : string list;
  ctrl : Ast.control_decl option;
  parser : Ast.parser_decl option;
}

let make_cfg ?(fault = Mutation.No_fault) ?(seed = 42) ~arch (prog : Ast.program)
    (tctx : Typing.ctx) : cfg =
  let parsers = Hashtbl.create 8 and controls = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.DParser (pd, _) -> Hashtbl.replace parsers pd.p_name pd
      | Ast.DControl (cd, _) -> Hashtbl.replace controls cd.c_name cd
      | _ -> ())
    prog;
  (* Crash_dup_member fires at load time when two structs share a
     member name *)
  (if fault = Mutation.Crash_dup_member then begin
     let seen = Hashtbl.create 64 in
     List.iter
       (function
         | Ast.DStruct (_, fs, _) ->
             List.iter
               (fun f ->
                 if Hashtbl.mem seen f.Ast.f_name then
                   crash "duplicate structure member %s" f.Ast.f_name
                 else Hashtbl.add seen f.Ast.f_name ())
               fs
         | _ -> ())
       prog
   end);
  { prog; tctx; arch; fault; parsers; controls; rng = Random.State.make [| seed |] }

let fresh_st cfg : st =
  ignore cfg;
  {
    env = SMap.empty;
    vartypes = SMap.empty;
    pkt = Bits.zero 0;
    emitted = Bits.zero 0;
    outs = [];
    dropped = false;
    entries = [];
    registers = Hashtbl.create 8;
    visits = SMap.empty;
    fresh = 0;
    recirc = false;
    resubmit = false;
    clone_sess = None;
    truncate_bytes = None;
  }

(* an undefined value: zero on BMv2, random elsewhere (Tbl. 6) *)
let undefined cfg _st w =
  if cfg.arch = "v1model" then
    match cfg.fault with
    | Mutation.Invalid_read_garbage -> Bits.ones w
    | _ -> Bits.zero w
  else if cfg.fault = Mutation.Invalid_read_garbage then Bits.ones w
  else Bits.random cfg.rng w

let uninit cfg _st w = if cfg.arch = "v1model" then Bits.zero w else Bits.random cfg.rng w

(* ------------------------------------------------------------------ *)
(* Storage *)

let read_leaf st path =
  match SMap.find_opt path st.env with
  | Some v -> v
  | None -> simfail "read of undeclared %s" path

let write_leaf st path v = st.env <- SMap.add path v st.env

let rec declare cfg st ?(valid = false) ~init (t : Ast.typ) path =
  let t = Typing.resolve cfg.tctx t in
  st.vartypes <- SMap.add path t st.vartypes;
  match t with
  | TBit w | TInt w -> write_leaf st path (init w)
  | TVarbit w ->
      write_leaf st path (init w);
      write_leaf st (path ^ ".$vblen") (Bits.zero 32)
  | TBool -> write_leaf st path (init 1)
  | TError -> write_leaf st path (init Typing.error_width)
  | TVoid | TSpec _ -> ()
  | TStack (h, n) ->
      write_leaf st (path ^ ".$next") (Bits.zero 32);
      for i = 0 to n - 1 do
        let p = Printf.sprintf "%s[%d]" path i in
        write_leaf st (p ^ ".$valid") (if valid then Bits.ones 1 else Bits.zero 1);
        declare_fields cfg st ~init h p
      done
  | TName n -> (
      match Typing.header_fields cfg.tctx n with
      | Some _ ->
          write_leaf st (path ^ ".$valid") (if valid then Bits.ones 1 else Bits.zero 1);
          declare_fields cfg st ~init n path
      | None -> (
          match Typing.struct_fields cfg.tctx n with
          | Some fs ->
              List.iter (fun f -> declare cfg st ~init f.Ast.f_typ (path ^ "." ^ f.Ast.f_name)) fs
          | None -> (
              match Typing.union_fields cfg.tctx n with
              | Some fs ->
                  List.iter
                    (fun f ->
                      declare cfg st ~valid:false ~init f.Ast.f_typ (path ^ "." ^ f.Ast.f_name))
                    fs
              | None -> (
                  match Hashtbl.find_opt cfg.tctx.Typing.enums n with
                  | Some _ -> write_leaf st path (init Typing.enum_width)
                  | None -> simfail "unknown type %s" n))))

and declare_fields cfg st ~init hname path =
  match Typing.header_fields cfg.tctx hname with
  | Some fs ->
      List.iter (fun f -> declare cfg st ~init f.Ast.f_typ (path ^ "." ^ f.Ast.f_name)) fs
  | None -> simfail "unknown header %s" hname

let rec read_tree cfg st (t : Ast.typ) path : Bits.t =
  let t = Typing.resolve cfg.tctx t in
  match t with
  | TBit _ | TInt _ | TVarbit _ | TBool | TError -> read_leaf st path
  | TStack (h, n) ->
      List.fold_left Bits.concat (Bits.zero 0)
        (List.init n (fun i -> read_tree cfg st (TName h) (Printf.sprintf "%s[%d]" path i)))
  | TName tn -> (
      let fields =
        match Typing.header_fields cfg.tctx tn with
        | Some fs -> Some fs
        | None -> (
            match Typing.struct_fields cfg.tctx tn with
            | Some fs -> Some fs
            | None -> Typing.union_fields cfg.tctx tn)
      in
      match fields with
      | Some fs ->
          List.fold_left
            (fun acc f -> Bits.concat acc (read_tree cfg st f.Ast.f_typ (path ^ "." ^ f.Ast.f_name)))
            (Bits.zero 0) fs
      | None -> read_leaf st path)
  | TVoid | TSpec _ -> Bits.zero 0

let rec write_tree cfg st (t : Ast.typ) path (bits : Bits.t) =
  let t = Typing.resolve cfg.tctx t in
  match t with
  | TBit _ | TInt _ | TVarbit _ | TBool | TError -> write_leaf st path bits
  | TName tn -> (
      let fields =
        match Typing.header_fields cfg.tctx tn with
        | Some fs -> Some fs
        | None -> Typing.struct_fields cfg.tctx tn
      in
      match fields with
      | Some fs ->
          let total = Bits.width bits in
          let off = ref 0 in
          List.iter
            (fun f ->
              let w = Typing.width_of cfg.tctx f.Ast.f_typ in
              let fb = Bits.slice bits ~hi:(total - !off - 1) ~lo:(total - !off - w) in
              write_tree cfg st f.Ast.f_typ (path ^ "." ^ f.Ast.f_name) fb;
              off := !off + w)
            fs
      | None -> write_leaf st path bits)
  | TStack (h, n) ->
      let hw = Typing.width_of cfg.tctx (Ast.TName h) in
      let total = Bits.width bits in
      for i = 0 to n - 1 do
        write_tree cfg st (TName h)
          (Printf.sprintf "%s[%d]" path i)
          (Bits.slice bits ~hi:(total - (i * hw) - 1) ~lo:(total - ((i + 1) * hw)))
      done
  | TVoid | TSpec _ -> ()

(* ------------------------------------------------------------------ *)
(* Name resolution and l-values *)

let resolve_var st (fr : frame) name =
  List.find_map
    (fun scope ->
      let key = scope ^ "." ^ name in
      Option.map (fun t -> (key, t)) (SMap.find_opt key st.vartypes))
    fr.scopes

type lv = { lv_path : string; lv_typ : Ast.typ; lv_slice : (int * int) option }

let rec lvalue cfg (fr : frame) st (e : Ast.expr) : lv =
  match e with
  | EVar n -> (
      match resolve_var st fr n with
      | Some (path, t) -> { lv_path = path; lv_typ = Typing.resolve cfg.tctx t; lv_slice = None }
      | None -> simfail "unbound variable %s" n)
  | EMember (b, f) -> (
      let base = lvalue cfg fr st b in
      match base.lv_typ with
      | TName tn -> (
          let fields =
            match Typing.header_fields cfg.tctx tn with
            | Some fs -> fs
            | None -> (
                match Typing.struct_fields cfg.tctx tn with
                | Some fs -> fs
                | None -> (
                    match Typing.union_fields cfg.tctx tn with
                    | Some fs -> fs
                    | None -> simfail "member of non-composite %s" tn))
          in
          match List.find_opt (fun fd -> fd.Ast.f_name = f) fields with
          | Some fd ->
              {
                lv_path = base.lv_path ^ "." ^ f;
                lv_typ = Typing.resolve cfg.tctx fd.f_typ;
                lv_slice = None;
              }
          | None -> simfail "unknown field %s" f)
      | TStack (h, n) ->
          let next = Bits.to_int (read_leaf st (base.lv_path ^ ".$next")) in
          let idx = if f = "next" then next else next - 1 in
          if idx < 0 || idx >= n then begin
            if cfg.fault = Mutation.Crash_stack_oob then crash "header stack out of bounds";
            raise (Reject "StackOutOfBounds")
          end;
          {
            lv_path = Printf.sprintf "%s[%d]" base.lv_path idx;
            lv_typ = TName h;
            lv_slice = None;
          }
      | _ -> simfail "member %s of scalar" f)
  | EIndex (b, i) -> (
      let base = lvalue cfg fr st b in
      match (base.lv_typ, i) with
      | TStack (h, n), Ast.EInt { iv; _ } ->
          if iv < 0 || iv >= n then begin
            if cfg.fault = Mutation.Crash_stack_oob then crash "header stack out of bounds";
            raise (Reject "StackOutOfBounds")
          end;
          {
            lv_path = Printf.sprintf "%s[%d]" base.lv_path iv;
            lv_typ = TName h;
            lv_slice = None;
          }
      | _ -> simfail "bad index")
  | ESlice (b, hi, lo) -> (
      let base = lvalue cfg fr st b in
      match base.lv_slice with
      | None -> { base with lv_typ = TBit (hi - lo + 1); lv_slice = Some (hi, lo) }
      | Some (_, blo) ->
          (* x[h1:l1][h2:l2] reads bits [l1+h2 : l1+l2] of x *)
          { base with lv_typ = TBit (hi - lo + 1); lv_slice = Some (blo + hi, blo + lo) })
  | e -> simfail "not an l-value: %s" (Pretty.expr_to_string e)

let rec enclosing_validity cfg fr st (e : Ast.expr) : bool option =
  match e with
  | EMember (b, _) | EIndex (b, _) | ESlice (b, _, _) -> (
      match try Some (lvalue cfg fr st b) with Failure _ -> None with
      | Some blv when Typing.is_header cfg.tctx blv.lv_typ -> (
          match SMap.find_opt (blv.lv_path ^ ".$valid") st.env with
          | Some v -> Some (Bits.is_ones v)
          | None -> enclosing_validity cfg fr st b)
      | _ -> enclosing_validity cfg fr st b)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions *)

let bits_of_bool b = if b then Bits.ones 1 else Bits.zero 1

let rec eval ?(hint = 0) cfg (fr : frame) st (e : Ast.expr) : Bits.t =
  match e with
  | EBool b -> bits_of_bool b
  | EInt { value = Some b; _ } -> b
  | EInt { iv; width = Some w; _ } -> Bits.of_int ~width:w iv
  | EInt { iv; width = None; _ } -> Bits.of_int ~width:(if hint > 0 then hint else 32) iv
  | EString _ -> simfail "string in expression"
  | EMember (EVar "error", ename) ->
      Bits.of_int ~width:Typing.error_width (Typing.error_code cfg.tctx ename)
  | EMember (EVar base, m) when Hashtbl.mem cfg.tctx.Typing.enums base ->
      Bits.of_int ~width:Typing.enum_width (Typing.enum_code cfg.tctx base m)
  | EMember (EVar base, m) when Hashtbl.mem cfg.tctx.Typing.ser_enums base -> (
      let t, ms = Hashtbl.find cfg.tctx.Typing.ser_enums base in
      match List.assoc_opt m ms with
      | Some (EInt { iv; _ }) -> Bits.of_int ~width:(Typing.width_of cfg.tctx t) iv
      | _ -> simfail "bad ser-enum member")
  | EVar _ | EMember _ | EIndex _ | ESlice _ -> (
      let lv = lvalue cfg fr st e in
      let raw = read_tree cfg st lv.lv_typ lv.lv_path in
      let v =
        match enclosing_validity cfg fr st e with
        | Some false -> undefined cfg st (Bits.width raw)
        | _ -> raw
      in
      match lv.lv_slice with Some (hi, lo) -> Bits.slice v ~hi ~lo | None -> v)
  | EUnop (LNot, a) -> bits_of_bool (Bits.is_zero (eval cfg fr st a))
  | EUnop (BitNot, a) -> Bits.lognot (eval ~hint cfg fr st a)
  | EUnop (Neg, a) -> Bits.neg (eval ~hint cfg fr st a)
  | EBinop (op, a, b) -> eval_binop ~hint cfg fr st op a b
  | ETernary (c, t, f) ->
      if Bits.is_zero (eval cfg fr st c) then eval ~hint cfg fr st f
      else eval ~hint cfg fr st t
  | ECast (t, a) -> (
      let w = Typing.width_of cfg.tctx t in
      let v = eval ~hint:w cfg fr st a in
      match Typing.resolve cfg.tctx t with
      | TInt _ -> Bits.sext v w
      | TBool -> bits_of_bool (not (Bits.is_zero v))
      | _ -> Bits.zext v w)
  | ECall (EMember (b, "isValid"), []) ->
      let lv = lvalue cfg fr st b in
      read_leaf st (lv.lv_path ^ ".$valid")
  | ECall (f, args) -> eval_call cfg fr st f args
  | EList es ->
      List.fold_left (fun acc e -> Bits.concat acc (eval cfg fr st e)) (Bits.zero 0) es
  | ETypeArg _ | EDontCare | EDefault | EMask _ | ERange _ ->
      simfail "pattern in value position"

and eval_binop ~hint cfg fr st op a b =
  let open Ast in
  match op with
  | LAnd -> bits_of_bool ((not (Bits.is_zero (eval cfg fr st a))) && not (Bits.is_zero (eval cfg fr st b)))
  | LOr -> bits_of_bool ((not (Bits.is_zero (eval cfg fr st a))) || not (Bits.is_zero (eval cfg fr st b)))
  | Concat -> Bits.concat (eval cfg fr st a) (eval cfg fr st b)
  | Shl | Shr -> (
      let va = eval ~hint cfg fr st a in
      let k = Bits.to_int (eval ~hint:32 cfg fr st b) in
      let op = if cfg.fault = Mutation.Wrong_shift_direction then
          (match op with Shl -> Shr | _ -> Shl)
        else op
      in
      match op with
      | Shl -> Bits.shift_left va k
      | _ -> Bits.shift_right va k)
  | _ ->
      let va, vb =
        match (a, b) with
        | EInt { width = None; _ }, _ ->
            let vb = eval ~hint cfg fr st b in
            (eval ~hint:(Bits.width vb) cfg fr st a, vb)
        | _ ->
            let va = eval ~hint cfg fr st a in
            (va, eval ~hint:(Bits.width va) cfg fr st b)
      in
      let va, vb =
        let wa = Bits.width va and wb = Bits.width vb in
        if wa = wb then (va, vb)
        else if wa = 0 then (Bits.zext va wb, vb)
        else if wb = 0 then (va, Bits.zext vb wa)
        else (va, Bits.zext vb wa)
      in
      (match op with
      | Add -> Bits.add va vb
      | Sub -> Bits.sub va vb
      | Mul -> Bits.mul va vb
      | Div -> Bits.udiv va vb
      | Mod -> Bits.urem va vb
      | AddSat ->
          let s = Bits.add va vb in
          if Bits.ult s va then Bits.ones (Bits.width va) else s
      | SubSat -> if Bits.ult va vb then Bits.zero (Bits.width va) else Bits.sub va vb
      | BAnd -> Bits.logand va vb
      | BOr -> Bits.logor va vb
      | BXor -> Bits.logxor va vb
      | Eq -> bits_of_bool (Bits.equal va vb)
      | Neq -> bits_of_bool (not (Bits.equal va vb))
      | Lt -> bits_of_bool (Bits.ult va vb)
      | Le -> bits_of_bool (Bits.ule va vb)
      | Gt -> bits_of_bool (Bits.ult vb va)
      | Ge -> bits_of_bool (Bits.ule vb va)
      | Shl | Shr | LAnd | LOr | Concat -> assert false)

and eval_call cfg fr st (f : Ast.expr) args : Bits.t =
  match (f, args) with
  | EMember (_, "lookahead"), [ Ast.ETypeArg t ] ->
      let w = Typing.width_of cfg.tctx t in
      if Bits.width st.pkt < w then raise (Reject "PacketTooShort");
      Bits.slice st.pkt ~hi:(Bits.width st.pkt - 1) ~lo:(Bits.width st.pkt - w)
  | EVar "verify_checksum", [ cond; data; given; _algo ] ->
      let c = eval cfg fr st cond in
      if Bits.is_zero c then Bits.zero 1
      else begin
        let vdata = eval cfg fr st data in
        let vgiven = eval cfg fr st given in
        let computed = checksum cfg vdata (Bits.width vgiven) in
        bits_of_bool (not (Bits.equal computed vgiven))
      end
  | EMember (EVar _, "update"), [ data ] | EMember (EVar _, "get_checksum"), [ data ] ->
      (* Tofino Checksum extern *)
      checksum cfg (eval cfg fr st data) 16
  | EMember (EVar _, "get"), [ data ] ->
      (* Tofino Hash extern *)
      Bits.zext (Targets.Checksums.crc32 (eval cfg fr st data)) 32
  | EVar "verify_checksum", _ -> simfail "bad verify_checksum arity"
  | EVar fn, _ -> simfail "unsupported call %s" fn
  | EMember (_, m), _ -> simfail "unsupported method %s" m
  | _ -> simfail "bad call"

and checksum cfg data width =
  match cfg.fault with
  | Mutation.Wrong_checksum_fold ->
      (* fold the carry once instead of to fixpoint *)
      let bytes = ref 0 in
      ignore bytes;
      let v = Targets.Checksums.csum16 data in
      (* perturb deterministically: drop the top bit fold *)
      Bits.zext (Bits.logxor v (Bits.of_int ~width:16 0x8000)) width
  | _ -> Bits.zext (Targets.Checksums.csum16 data) width

(* ------------------------------------------------------------------ *)
(* Control plane: table lookup *)

let key_name (k : Ast.table_key) =
  match Ast.find_anno "name" k.tk_annos with
  | Some a -> ( match Ast.anno_string a with Some s -> s | None -> Ast.lvalue_path k.tk_expr)
  | None -> ( try Ast.lvalue_path k.tk_expr with Invalid_argument _ -> "key")

let match_one cfg (kind : string) (keyv : Bits.t) (m : Testgen.Testspec.key_match) : bool =
  let module T = Testgen.Testspec in
  match (kind, m) with
  | "exact", T.MExact v -> Bits.equal keyv (Bits.zext v (Bits.width keyv))
  | "ternary", T.MTernary (v, msk) ->
      let msk = Bits.zext msk (Bits.width keyv) and v = Bits.zext v (Bits.width keyv) in
      if cfg.fault = Mutation.Wrong_ternary_mask then Bits.equal keyv v
      else Bits.equal (Bits.logand keyv msk) (Bits.logand v msk)
  | "lpm", T.MLpm (v, len) ->
      let w = Bits.width keyv in
      if len = 0 then true
      else
        Bits.equal
          (Bits.slice keyv ~hi:(w - 1) ~lo:(w - len))
          (Bits.slice (Bits.zext v w) ~hi:(w - 1) ~lo:(w - len))
  | "range", T.MRange (a, b) ->
      let a = Bits.zext a (Bits.width keyv) and b = Bits.zext b (Bits.width keyv) in
      Bits.ule a keyv && Bits.ule keyv b
  | "optional", T.MOptional (Some v) -> Bits.equal keyv (Bits.zext v (Bits.width keyv))
  | "optional", T.MOptional None -> true
  | _, T.MExact v -> Bits.equal keyv (Bits.zext v (Bits.width keyv))
  | _ -> simfail "match kind mismatch"

(* pattern matching for constant entries and select cases *)
let rec match_pattern cfg fr st (keyv : Bits.t) (pat : Ast.expr) : bool =
  let w = Bits.width keyv in
  match pat with
  | EDontCare | EDefault -> true
  | EMask (v, m) ->
      let vv = Bits.zext (eval ~hint:w cfg fr st v) w in
      let vm = Bits.zext (eval ~hint:w cfg fr st m) w in
      if cfg.fault = Mutation.Wrong_ternary_mask then Bits.equal keyv vv
      else Bits.equal (Bits.logand keyv vm) (Bits.logand vv vm)
  | ERange (a, b) ->
      let va = Bits.zext (eval ~hint:w cfg fr st a) w in
      let vb = Bits.zext (eval ~hint:w cfg fr st b) w in
      Bits.ule va keyv && Bits.ule keyv vb
  | EList [ p ] -> match_pattern cfg fr st keyv p
  | _ -> Bits.equal keyv (Bits.zext (eval ~hint:w cfg fr st pat) w)

let ordered_entries cfg (tbl : Ast.table) =
  if cfg.fault = Mutation.Ignore_entry_priority then List.rev tbl.Ast.tbl_entries
  else begin
    let indexed = List.mapi (fun i e -> (i, e)) tbl.Ast.tbl_entries in
    List.stable_sort
      (fun (i, a) (j, b) ->
        match (a.Ast.te_priority, b.Ast.te_priority) with
        | Some x, Some y -> if x <> y then compare x y else compare i j
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> compare i j)
      indexed
    |> List.map snd
  end

(* ------------------------------------------------------------------ *)
(* Statements *)

let find_action cfg (fr : frame) name : Ast.action_decl option =
  if name = "NoAction" then
    Some { act_name = "NoAction"; act_params = []; act_body = []; act_annos = [] }
  else begin
    let local =
      match fr.ctrl with
      | Some cd ->
          List.find_map
            (function Ast.LAction a when a.Ast.act_name = name -> Some a | _ -> None)
            cd.Ast.c_locals
      | None -> None
    in
    match local with
    | Some a -> Some a
    | None -> Hashtbl.find_opt cfg.tctx.Typing.actions name
  end

let find_table (fr : frame) name : Ast.table option =
  match fr.ctrl with
  | Some cd ->
      List.find_map
        (function Ast.LTable t when t.Ast.tbl_name = name -> Some t | _ -> None)
        cd.Ast.c_locals
  | None -> None

let fresh_prefix st name =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "#%d_%s" st.fresh name

let rec exec_block cfg fr st (b : Ast.block) = List.iter (exec_stmt cfg fr st) b

and exec_stmt cfg (fr : frame) st (s : Ast.stmt) : unit =
  match s with
  | SEmpty -> ()
  | SBlock b -> exec_block cfg fr st b
  | SAssign (_, lhs, rhs) -> (
      let lv = lvalue cfg fr st lhs in
      if Typing.is_header cfg.tctx lv.lv_typ || Typing.is_struct cfg.tctx lv.lv_typ then begin
        (* composite copy including validity *)
        let rlv = lvalue cfg fr st rhs in
        copy_composite cfg st rlv.lv_path lv.lv_path lv.lv_typ
      end
      else begin
        let w =
          match lv.lv_slice with
          | Some (hi, lo) -> hi - lo + 1
          | None -> Typing.width_of cfg.tctx lv.lv_typ
        in
        let v = Bits.zext (eval ~hint:w cfg fr st rhs) w in
        match lv.lv_slice with
        | None -> write_tree cfg st lv.lv_typ lv.lv_path v
        | Some (hi, lo) ->
            let full = read_leaf st lv.lv_path in
            let fw = Bits.width full in
            let top = if hi + 1 <= fw - 1 then Bits.slice full ~hi:(fw - 1) ~lo:(hi + 1) else Bits.zero 0 in
            let bot = if lo > 0 then Bits.slice full ~hi:(lo - 1) ~lo:0 else Bits.zero 0 in
            write_leaf st lv.lv_path (Bits.concat (Bits.concat top v) bot)
      end)
  | SCall (_, f, args) -> exec_call_stmt cfg fr st f args
  | SIf (_, cond, t, e) -> (
      match table_cond fr cond with
      | Some (tbl, sense) ->
          let hit, _ = apply_table cfg fr st tbl in
          let branch = match sense with `Hit -> hit | `Miss -> not hit in
          exec_block cfg fr st (if branch then t else e)
      | None ->
          if not (Bits.is_zero (eval cfg fr st cond)) then exec_block cfg fr st t
          else exec_block cfg fr st e)
  | SSwitch (_, e, cases) -> (
      match e with
      | EMember (ECall (EMember (EVar t, "apply"), []), "action_run") -> (
          match find_table fr t with
          | Some tbl ->
              let _, action = apply_table cfg fr st tbl in
              let body =
                match List.find_opt (fun c -> List.mem action c.Ast.sw_labels) cases with
                | Some c -> c.Ast.sw_body
                | None -> (
                    match
                      List.find_opt (fun c -> List.mem "default" c.Ast.sw_labels) cases
                    with
                    | Some c -> c.Ast.sw_body
                    | None -> None)
              in
              (match body with
              | Some b when cfg.fault = Mutation.Swallow_apply ->
                  (* the faulty compiler drops the selected case body *)
                  ignore b
              | Some b -> exec_block cfg fr st b
              | None -> ())
          | None -> simfail "switch on unknown table %s" t)
      | _ -> simfail "unsupported switch")
  | SVarDecl (_, t, n, init) -> (
      let scope = List.hd fr.scopes in
      declare cfg st ~init:(uninit cfg st) t (scope ^ "." ^ n);
      match init with
      | Some e ->
          let w = Typing.width_of cfg.tctx t in
          write_tree cfg st t (scope ^ "." ^ n) (Bits.zext (eval ~hint:w cfg fr st e) w)
      | None -> ())
  | SConstDecl (_, t, n, e) ->
      let scope = List.hd fr.scopes in
      declare cfg st ~init:Bits.zero t (scope ^ "." ^ n);
      let w = Typing.width_of cfg.tctx t in
      write_tree cfg st t (scope ^ "." ^ n) (Bits.zext (eval ~hint:w cfg fr st e) w)
  | SReturn _ -> raise Return_action
  | SExit _ -> raise Exit_block

and copy_composite cfg st src dst (t : Ast.typ) =
  (* copies values and validity bits *)
  let rec go t src dst =
    let t = Typing.resolve cfg.tctx t in
    match t with
    | Ast.TName tn -> (
        match Typing.header_fields cfg.tctx tn with
        | Some fs ->
            write_leaf st (dst ^ ".$valid") (read_leaf st (src ^ ".$valid"));
            List.iter
              (fun f -> go f.Ast.f_typ (src ^ "." ^ f.Ast.f_name) (dst ^ "." ^ f.Ast.f_name))
              fs
        | None -> (
            match
              (match Typing.struct_fields cfg.tctx tn with
              | Some fs -> Some fs
              | None -> Typing.union_fields cfg.tctx tn)
            with
            | Some fs ->
                List.iter
                  (fun f -> go f.Ast.f_typ (src ^ "." ^ f.Ast.f_name) (dst ^ "." ^ f.Ast.f_name))
                  fs
            | None -> write_leaf st dst (read_leaf st src)))
    | Ast.TStack (h, n) ->
        write_leaf st (dst ^ ".$next") (read_leaf st (src ^ ".$next"));
        for i = 0 to n - 1 do
          go (Ast.TName h) (Printf.sprintf "%s[%d]" src i) (Printf.sprintf "%s[%d]" dst i)
        done
    | Ast.TVarbit _ ->
        write_leaf st dst (read_leaf st src);
        write_leaf st (dst ^ ".$vblen") (read_leaf st (src ^ ".$vblen"))
    | _ -> write_leaf st dst (read_leaf st src)
  in
  go t src dst

and table_cond fr (e : Ast.expr) =
  match e with
  | EMember (ECall (EMember (EVar t, "apply"), []), "hit") ->
      Option.map (fun tb -> (tb, `Hit)) (find_table fr t)
  | EMember (ECall (EMember (EVar t, "apply"), []), "miss") ->
      Option.map (fun tb -> (tb, `Miss)) (find_table fr t)
  | EUnop (LNot, inner) ->
      Option.map
        (fun (tb, s) -> (tb, match s with `Hit -> `Miss | `Miss -> `Hit))
        (table_cond fr inner)
  | _ -> None

and invoke_action cfg fr st (decl : Ast.action_decl) (args : Bits.t list) =
  let prefix = fresh_prefix st decl.Ast.act_name in
  List.iter2
    (fun (p : Ast.param) v ->
      let w = Typing.width_of cfg.tctx p.par_typ in
      declare cfg st ~init:Bits.zero p.par_typ (prefix ^ "." ^ p.par_name);
      write_tree cfg st p.par_typ (prefix ^ "." ^ p.par_name) (Bits.zext v w))
    decl.act_params args;
  let fr' = { fr with scopes = prefix :: fr.scopes } in
  try exec_block cfg fr' st decl.act_body with Return_action -> ()

(* returns (hit, action name that ran) *)
and apply_table cfg (fr : frame) st (tbl : Ast.table) : bool * string =
  let keys =
    List.map
      (fun (k : Ast.table_key) -> (key_name k, k.Ast.tk_kind, eval cfg fr st k.Ast.tk_expr))
      tbl.Ast.tbl_keys
  in
  (* toolchain faults triggered by control-plane interaction *)
  if cfg.fault = Mutation.Crash_expr_key then
    List.iter
      (fun (n, _, _) -> if String.contains n '.' || String.contains n '[' then
          crash "STF back end: key with expression in its name: %s" n)
      keys;
  let run_action name (argv : Bits.t list) =
    match find_action cfg fr name with
    | Some decl ->
        (if cfg.fault = Mutation.Crash_missing_name && name <> "NoAction"
            && not (Ast.has_anno "name" decl.Ast.act_annos) then
           crash "test back end: action %s has no name annotation" name);
        let argv =
          if cfg.fault = Mutation.Truncate_action_arg then
            List.map (fun v -> Bits.zext (Bits.zext v (min 8 (Bits.width v))) (Bits.width v)) argv
          else argv
        in
        invoke_action cfg fr st decl argv
    | None -> simfail "unknown action %s" name
  in
  let run_default () =
    match tbl.Ast.tbl_default with
    | Some (name, args) ->
        if cfg.fault = Mutation.Skip_default_action then (false, name)
        else begin
          let argv = List.map (eval cfg fr st) args in
          run_action name argv;
          (false, name)
        end
    | None -> (false, "NoAction")
  in
  if tbl.Ast.tbl_entries <> [] then begin
    (* constant entries, first match in priority order *)
    let rec try_entries = function
      | [] -> run_default ()
      | (e : Ast.table_entry) :: rest ->
          let matches =
            List.for_all2
              (fun (_, _, keyv) pat -> match_pattern cfg fr st keyv pat)
              keys e.te_keys
          in
          if matches then begin
            let argv = List.map (eval cfg fr st) e.te_args in
            run_action e.te_action argv;
            (true, e.te_action)
          end
          else try_entries rest
    in
    try_entries (ordered_entries cfg tbl)
  end
  else begin
    (* runtime entries from the loaded control-plane configuration *)
    let candidates =
      List.filter (fun (e : Testgen.Testspec.entry) -> e.e_table = tbl.Ast.tbl_name) st.entries
    in
    let matches (e : Testgen.Testspec.entry) =
      List.length e.e_keys = List.length keys
      && List.for_all2
           (fun (_, kind, keyv) (_, m) -> match_one cfg kind keyv m)
           keys e.e_keys
    in
    match List.find_opt matches candidates with
    | Some e ->
        run_action e.e_action (List.map snd e.e_args);
        (true, e.e_action)
    | None -> run_default ()
  end

and exec_call_stmt cfg (fr : frame) st (f : Ast.expr) (args : Ast.expr list) : unit =
  match (f, args) with
  | EMember (pkt, "extract"), [ harg ] when is_packet_ref st fr pkt -> do_extract cfg fr st harg
  | EMember (pkt, "extract"), [ harg; lenarg ] when is_packet_ref st fr pkt ->
      if cfg.fault = Mutation.Crash_varbit_extract then
        crash "compiler mistranslated varbit extract";
      do_extract_varbit cfg fr st harg lenarg
  | EMember (pkt, "advance"), [ arg ] when is_packet_ref st fr pkt ->
      if cfg.fault = Mutation.Crash_varbit_extract then
        crash "compiler mistranslated advance with expression argument";
      let w = Bits.to_int (eval ~hint:32 cfg fr st arg) in
      if Bits.width st.pkt < w then raise (Reject "PacketTooShort");
      st.pkt <- (if w = Bits.width st.pkt then Bits.zero 0
                 else Bits.slice st.pkt ~hi:(Bits.width st.pkt - w - 1) ~lo:0)
  | EMember (pkt, "emit"), [ harg ] when is_packet_ref st fr pkt ->
      let lv = lvalue cfg fr st harg in
      do_emit cfg fr st lv.lv_path lv.lv_typ
  | EMember (h, "setValid"), [] ->
      let lv = lvalue cfg fr st h in
      write_leaf st (lv.lv_path ^ ".$valid") (Bits.ones 1)
  | EMember (h, "setInvalid"), [] ->
      let lv = lvalue cfg fr st h in
      write_leaf st (lv.lv_path ^ ".$valid") (Bits.zero 1)
  | EMember (h, "push_front"), [ Ast.EInt { iv; _ } ] -> stack_shift cfg fr st h iv
  | EMember (h, "pop_front"), [ Ast.EInt { iv; _ } ] -> stack_shift cfg fr st h (-iv)
  | EVar "verify", [ cond; err ] ->
      if Bits.is_zero (eval cfg fr st cond) then begin
        let e = match err with Ast.EMember (_, n) -> n | _ -> "ParserInvalidArgument" in
        raise (Reject e)
      end
  | EMember (EVar t, "apply"), [] when find_table fr t <> None ->
      ignore (apply_table cfg fr st (Option.get (find_table fr t)))
  | EVar name, _ when find_action cfg fr name <> None ->
      let decl = Option.get (find_action cfg fr name) in
      let argv =
        List.map2
          (fun (p : Ast.param) a ->
            eval ~hint:(Typing.width_of cfg.tctx p.par_typ) cfg fr st a)
          decl.act_params args
      in
      invoke_action cfg fr st decl argv
  | _ -> exec_extern cfg fr st f args

and is_packet_ref st fr (e : Ast.expr) =
  match e with Ast.EVar n -> resolve_var st fr n = None | _ -> false

and do_extract cfg fr st (harg : Ast.expr) =
  let lv = lvalue cfg fr st harg in
  let w = Typing.width_of cfg.tctx lv.lv_typ in
  if Bits.width st.pkt < w then raise (Reject "PacketTooShort");
  let bits = Bits.slice st.pkt ~hi:(Bits.width st.pkt - 1) ~lo:(Bits.width st.pkt - w) in
  st.pkt <-
    (if w = Bits.width st.pkt then Bits.zero 0
     else Bits.slice st.pkt ~hi:(Bits.width st.pkt - w - 1) ~lo:0);
  write_tree cfg st lv.lv_typ lv.lv_path bits;
  if Typing.is_header cfg.tctx lv.lv_typ then
    write_leaf st (lv.lv_path ^ ".$valid") (Bits.ones 1);
  match harg with
  | Ast.EMember (b, "next") ->
      let base = lvalue cfg fr st b in
      let next = read_leaf st (base.lv_path ^ ".$next") in
      write_leaf st (base.lv_path ^ ".$next") (Bits.add next (Bits.of_int ~width:32 1))
  | _ -> ()

and header_emit_bits cfg st hname path : Bits.t =
  let fields = Option.get (Typing.header_fields cfg.tctx hname) in
  List.fold_left
    (fun acc (f : Ast.field) ->
      let fpath = path ^ "." ^ f.f_name in
      match Typing.resolve cfg.tctx f.f_typ with
      | Ast.TVarbit maxw ->
          let len = Bits.to_int (read_leaf st (fpath ^ ".$vblen")) in
          if len = 0 then acc
          else Bits.concat acc (Bits.slice (read_leaf st fpath) ~hi:(maxw - 1) ~lo:(maxw - len))
      | t -> Bits.concat acc (read_tree cfg st t fpath))
    (Bits.zero 0) fields

and do_extract_varbit cfg fr st (harg : Ast.expr) (lenarg : Ast.expr) =
  let lv = lvalue cfg fr st harg in
  let hname =
    match lv.lv_typ with
    | Ast.TName n when Typing.header_fields cfg.tctx n <> None -> n
    | _ -> simfail "varbit extract into non-header"
  in
  let fields = Option.get (Typing.header_fields cfg.tctx hname) in
  let len = Bits.to_int (eval ~hint:32 cfg fr st lenarg) in
  let maxw =
    match
      List.find_map
        (fun f ->
          match Typing.resolve cfg.tctx f.Ast.f_typ with
          | Ast.TVarbit w -> Some w
          | _ -> None)
        fields
    with
    | Some w -> w
    | None -> simfail "no varbit field"
  in
  if len > maxw then raise (Reject "HeaderTooShort");
  let total = Typing.width_of cfg.tctx (Ast.TName hname) - maxw + len in
  if Bits.width st.pkt < total then raise (Reject "PacketTooShort");
  let bits = Bits.slice st.pkt ~hi:(Bits.width st.pkt - 1) ~lo:(Bits.width st.pkt - total) in
  st.pkt <-
    (if total = Bits.width st.pkt then Bits.zero 0
     else Bits.slice st.pkt ~hi:(Bits.width st.pkt - total - 1) ~lo:0);
  let off = ref 0 in
  List.iter
    (fun (f : Ast.field) ->
      let fpath = lv.lv_path ^ "." ^ f.f_name in
      match Typing.resolve cfg.tctx f.Ast.f_typ with
      | Ast.TVarbit mw ->
          let fb =
            if len = 0 then Bits.zero mw
            else
              Bits.concat
                (Bits.slice bits ~hi:(total - !off - 1) ~lo:(total - !off - len))
                (Bits.zero (mw - len))
          in
          write_leaf st fpath fb;
          write_leaf st (fpath ^ ".$vblen") (Bits.of_int ~width:32 len);
          off := !off + len
      | t ->
          let w = Typing.width_of cfg.tctx t in
          write_tree cfg st t fpath (Bits.slice bits ~hi:(total - !off - 1) ~lo:(total - !off - w));
          off := !off + w)
    fields;
  write_leaf st (lv.lv_path ^ ".$valid") (Bits.ones 1)

and do_emit cfg fr st path (t : Ast.typ) =
  match Typing.resolve cfg.tctx t with
  | Ast.TName n when Typing.header_fields cfg.tctx n <> None ->
      if Bits.is_ones (read_leaf st (path ^ ".$valid")) then begin
        st.fresh <- st.fresh + 1;
        (* Drop_second_emit: the deparser swallows the second emitted
           header of a packet *)
        let skip =
          cfg.fault = Mutation.Drop_second_emit
          && Bits.width st.emitted > 0
        in
        if not skip then
          st.emitted <- Bits.concat st.emitted (header_emit_bits cfg st n path)
      end
  | Ast.TName n -> (
      let fields =
        match Typing.struct_fields cfg.tctx n with
        | Some fs -> Some fs
        | None ->
            if cfg.fault = Mutation.Crash_union_emit && Typing.union_fields cfg.tctx n <> None
            then crash "emit of un-flattened header union"
            else Typing.union_fields cfg.tctx n
      in
      match fields with
      | Some fs ->
          List.iter (fun f -> do_emit cfg fr st (path ^ "." ^ f.Ast.f_name) f.Ast.f_typ) fs
      | None -> simfail "emit of unknown type %s" n)
  | Ast.TStack (h, n) ->
      for i = 0 to n - 1 do
        do_emit cfg fr st (Printf.sprintf "%s[%d]" path i) (Ast.TName h)
      done
  | _ -> simfail "emit of non-header"

and stack_shift cfg fr st (h : Ast.expr) (k : int) =
  let lv = lvalue cfg fr st h in
  match lv.lv_typ with
  | Ast.TStack (hn, n) ->
      let k = if cfg.fault = Mutation.Wrong_stack_op then -k else k in
      let values =
        List.init n (fun i -> read_tree cfg st (Ast.TName hn) (Printf.sprintf "%s[%d]" lv.lv_path i))
      in
      let valids =
        List.init n (fun i -> read_leaf st (Printf.sprintf "%s[%d].$valid" lv.lv_path i))
      in
      for i = 0 to n - 1 do
        let src = i - k in
        let p = Printf.sprintf "%s[%d]" lv.lv_path i in
        if src >= 0 && src < n then begin
          write_tree cfg st (Ast.TName hn) p (List.nth values src);
          write_leaf st (p ^ ".$valid") (List.nth valids src)
        end
        else write_leaf st (p ^ ".$valid") (Bits.zero 1)
      done;
      let nextp = lv.lv_path ^ ".$next" in
      let cur = Bits.to_int (read_leaf st nextp) in
      write_leaf st nextp (Bits.of_int ~width:32 (max 0 (min n (cur + k))))
  | _ -> simfail "push/pop on non-stack"

and exec_extern cfg (fr : frame) st (f : Ast.expr) (args : Ast.expr list) : unit =
  let name =
    match f with
    | Ast.EVar n -> n
    | Ast.EMember (Ast.EVar obj, m) -> obj ^ "." ^ m
    | _ -> simfail "bad call target"
  in
  match (name, args) with
  | "mark_to_drop", [ smarg ] ->
      let lv = lvalue cfg fr st smarg in
      write_leaf st (lv.lv_path ^ ".egress_spec") (Bits.of_int ~width:9 511)
  | ("log_msg" | "digest" | "invalidate"), _ -> ()
  | ("recirculate" | "recirculate_preserving_field_list"), _ -> st.recirc <- true
  | ("resubmit" | "resubmit_preserving_field_list"), _ -> st.resubmit <- true
  | ("clone" | "clone3" | "clone_preserving_field_list"), (_ :: session :: _) ->
      st.clone_sess <- Some (eval ~hint:32 cfg fr st session)
  | "truncate", [ len ] ->
      st.truncate_bytes <- Some (Bits.to_int (eval ~hint:32 cfg fr st len))
  | ("assert" | "assume"), [ cond ] ->
      if cfg.fault = Mutation.Crash_assert then crash "assert primitive terminated the model";
      if Bits.is_zero (eval cfg fr st cond) then crash "assertion failed in model"
  | "verify_checksum", [ cond; data; given; _ ] ->
      (* statement form: set standard checksum error metadata *)
      if not (Bits.is_zero (eval cfg fr st cond)) then begin
        let vdata = eval cfg fr st data in
        let vgiven = eval cfg fr st given in
        let computed = checksum cfg vdata (Bits.width vgiven) in
        if SMap.mem "$pipe.sm.checksum_error" st.env then
          write_leaf st "$pipe.sm.checksum_error"
            (bits_of_bool (not (Bits.equal computed vgiven)))
      end
  | ("update_checksum" | "update_checksum_with_payload"), [ cond; data; dst; _ ] ->
      if not (Bits.is_zero (eval cfg fr st cond)) then begin
        let vdata = eval cfg fr st data in
        let dlv = lvalue cfg fr st dst in
        let w = Typing.width_of cfg.tctx dlv.lv_typ in
        write_tree cfg st dlv.lv_typ dlv.lv_path (checksum cfg vdata w)
      end
  | "hash", [ dst; _algo; base; data; maxv ] ->
      let vdata = eval cfg fr st data in
      let dlv = lvalue cfg fr st dst in
      let w = Typing.width_of cfg.tctx dlv.lv_typ in
      let h = Bits.zext (Targets.Checksums.crc32 vdata) w in
      let vbase = Bits.zext (eval ~hint:w cfg fr st base) w in
      let vmax = Bits.zext (eval ~hint:w cfg fr st maxv) w in
      let r = if Bits.is_zero vmax then h else Bits.add vbase (Bits.urem h vmax) in
      write_tree cfg st dlv.lv_typ dlv.lv_path r
  | "random", [ dst; _; _ ] ->
      let dlv = lvalue cfg fr st dst in
      let w = Typing.width_of cfg.tctx dlv.lv_typ in
      write_tree cfg st dlv.lv_typ dlv.lv_path (Bits.random cfg.rng w)
  | _, _ -> (
      match String.index_opt name '.' with
      | Some i -> (
          let obj = String.sub name 0 i in
          let meth = String.sub name (i + 1) (String.length name - i - 1) in
          (* fresh per-invocation scopes first, then the declaring
             block's stable key — mirroring the symbolic side's
             {!Testgen.Runtime.find_extern_path}, so register state
             keyed by the block name survives across the packets of a
             test sequence *)
          let reg_key =
            let scopes =
              fr.scopes
              @ (match fr.ctrl with Some cd -> [ cd.Ast.c_name ] | None -> [])
              @ (match fr.parser with Some pd -> [ pd.Ast.p_name ] | None -> [])
            in
            List.find_map
              (fun scope ->
                let k = scope ^ "." ^ obj in
                if Hashtbl.mem st.registers k then Some k else None)
              scopes
          in
          match (meth, args, reg_key) with
          | "read", [ dst; idx ], Some key ->
              let arr = Hashtbl.find st.registers key in
              let i = Bits.to_int (eval ~hint:32 cfg fr st idx) in
              let dlv = lvalue cfg fr st dst in
              let w = Typing.width_of cfg.tctx dlv.lv_typ in
              let v = if i < Array.length arr then arr.(i) else Bits.zero w in
              write_tree cfg st dlv.lv_typ dlv.lv_path (Bits.zext v w)
          | "read", [ idx ], Some key ->
              (* tofino-style value-returning reads are handled in eval;
                 statement position ignores the value *)
              ignore (key, idx)
          | "write", [ idx; v ], Some key ->
              let arr = Hashtbl.find st.registers key in
              let i = Bits.to_int (eval ~hint:32 cfg fr st idx) in
              let vv = eval cfg fr st v in
              if i < Array.length arr then arr.(i) <- Bits.zext vv (Bits.width arr.(0))
          | ("count" | "execute_meter" | "emit" | "add" | "subtract"), _, _ -> ()
          | _ -> simfail "unsupported extern %s" name)
      | None -> simfail "unsupported extern %s" name)

(* ------------------------------------------------------------------ *)
(* Parsers *)

let max_visits = 16

let rec run_parser_state cfg (fr : frame) st (pd : Ast.parser_decl) name : unit =
  let visits = Option.value (SMap.find_opt name st.visits) ~default:0 in
  if visits >= max_visits then raise (Reject "ParserTimeout");
  st.visits <- SMap.add name (visits + 1) st.visits;
  match List.find_opt (fun s -> s.Ast.st_name = name) pd.Ast.p_states with
  | None -> simfail "unknown parser state %s" name
  | Some decl -> (
      exec_block cfg fr st decl.st_stmts;
      match decl.st_trans with
      | TrDirect "accept" -> ()
      | TrDirect "reject" -> raise (Reject "NoError")
      | TrDirect next -> run_parser_state cfg fr st pd next
      | TrSelect (keys, cases) -> (
          let keyvals = List.map (eval cfg fr st) keys in
          let vs_member vsname kv =
            (* value-set membership from the loaded configuration *)
            List.exists
              (fun (e : Testgen.Testspec.entry) ->
                e.e_table = vsname && e.e_action = "__vs_member__"
                && List.exists
                     (fun (_, m) ->
                       match m with
                       | Testgen.Testspec.MExact v -> Bits.equal (Bits.zext v (Bits.width kv)) kv
                       | _ -> false)
                     e.e_keys)
              st.entries
          in
          let matching (c : Ast.select_case) =
            match c.sel_keys with
            | [ Ast.EVar n ]
              when (match resolve_var st fr n with
                   | Some (_, Ast.TSpec ("value_set", _)) -> true
                   | _ -> false) ->
                vs_member n (List.hd keyvals)
            | _ ->
                List.for_all2 (fun kv pat -> match_pattern cfg fr st kv pat) keyvals c.sel_keys
          in
          match List.find_opt matching cases with
          | Some c -> (
              match c.sel_next with
              | "accept" -> ()
              | "reject" -> raise (Reject "NoError")
              | next -> run_parser_state cfg fr st pd next)
          | None -> raise (Reject "NoMatch")))

(* ------------------------------------------------------------------ *)
(* Block invocation with parameter binding *)

type binding = BData of string | BPacket

let bind_in cfg st prefix (params : Ast.param list) (bindings : binding list) =
  List.iter2
    (fun (p : Ast.param) b ->
      match b with
      | BPacket -> ()
      | BData src -> (
          declare cfg st ~init:(uninit cfg st) p.par_typ (prefix ^ "." ^ p.par_name);
          match p.par_dir with
          | Ast.DirIn | Ast.DirInOut | Ast.DirNone ->
              copy_composite cfg st src (prefix ^ "." ^ p.par_name) p.par_typ
          | Ast.DirOut -> ()))
    params bindings

let bind_out cfg st prefix (params : Ast.param list) (bindings : binding list) =
  List.iter2
    (fun (p : Ast.param) b ->
      match (b, p.par_dir) with
      | BData dst, (Ast.DirOut | Ast.DirInOut) ->
          copy_composite cfg st (prefix ^ "." ^ p.par_name) dst p.par_typ
      | _ -> ())
    params bindings

(* [stable] keys extern instances (registers) by the declaring block's
   name instead of the fresh per-invocation [prefix]: re-entering the
   block — recirculation, or a later packet of a test sequence — finds
   the existing cells instead of a fresh zeroed array *)
let declare_block_locals cfg st prefix ?(stable = prefix) (locals : Ast.local_decl list) fr =
  List.iter
    (fun l ->
      match l with
      | Ast.LVar (t, n, init) -> (
          declare cfg st ~init:(uninit cfg st) t (prefix ^ "." ^ n);
          match init with
          | Some e ->
              let w = Typing.width_of cfg.tctx t in
              write_tree cfg st t (prefix ^ "." ^ n) (Bits.zext (eval ~hint:w cfg fr st e) w)
          | None -> ())
      | Ast.LConst (t, n, e) ->
          declare cfg st ~init:Bits.zero t (prefix ^ "." ^ n);
          let w = Typing.width_of cfg.tctx t in
          write_tree cfg st t (prefix ^ "." ^ n) (Bits.zext (eval ~hint:w cfg fr st e) w)
      | Ast.LInstantiation (TSpec (("register" | "Register"), (elem :: _)), iargs, n) -> (
          let width = Typing.width_of cfg.tctx elem in
          let size = match iargs with Ast.EInt { iv; _ } :: _ -> min iv 1024 | _ -> 16 in
          let size = max size 1 in
          let key = stable ^ "." ^ n in
          match Hashtbl.find_opt st.registers key with
          | None -> Hashtbl.replace st.registers key (Array.make size (Bits.zero width))
          | Some old when Array.length old < size || Bits.width old.(0) <> width ->
              (* a control-plane pre-seed ({!Harness.apply_reg_write}):
                 adopt the declared geometry, preserving written cells *)
              let arr = Array.make size (Bits.zero width) in
              Array.iteri (fun i v -> if i < size then arr.(i) <- Bits.zext v width) old;
              Hashtbl.replace st.registers key arr
          | Some _ -> ())
      | Ast.LInstantiation ((TSpec ("value_set", [ _ ]) as t), _, n) ->
          st.vartypes <- SMap.add (prefix ^ "." ^ n) t st.vartypes
      | Ast.LInstantiation _ | Ast.LAction _ | Ast.LTable _ -> ())
    locals

let run_control cfg st (cd : Ast.control_decl) (bindings : binding list) =
  let prefix = fresh_prefix st cd.Ast.c_name in
  bind_in cfg st prefix cd.c_params bindings;
  let fr = { scopes = [ prefix ]; ctrl = Some cd; parser = None } in
  declare_block_locals cfg st prefix ~stable:cd.c_name cd.c_locals fr;
  (try exec_block cfg fr st cd.c_body with Exit_block -> ());
  bind_out cfg st prefix cd.c_params bindings

let run_parser cfg st (pd : Ast.parser_decl) (bindings : binding list) : (unit, string) result =
  let prefix = fresh_prefix st pd.Ast.p_name in
  bind_in cfg st prefix pd.p_params bindings;
  let fr = { scopes = [ prefix ]; ctrl = None; parser = Some pd } in
  declare_block_locals cfg st prefix ~stable:pd.p_name pd.p_locals fr;
  st.visits <- SMap.empty;
  let r = try Ok (run_parser_state cfg fr st pd "start") with Reject e -> Error e in
  bind_out cfg st prefix pd.p_params bindings;
  r
