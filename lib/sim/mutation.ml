(* Fault injection for the bug-finding study (Tbl. 2 / Tbl. 3).

   The paper counts bugs P4Testgen exposed in production toolchains:
   "exception" bugs (the software model, test framework, or
   control-plane software crashes) and "wrong code" bugs (the test
   inputs produce unexpected output).  We reproduce the *experiment
   shape* by seeding the simulator — our stand-in for the toolchain —
   with faults of both classes and measuring how many the generated
   test suites expose. *)

type kind = Exception | Wrong_code

type fault =
  | No_fault
  | Crash_stack_oob  (** BMV2-1: out-of-bounds header-stack index crashes *)
  | Crash_expr_key  (** P4C-1: keys with expressions in their name crash the STF back end *)
  | Crash_missing_name  (** P4C-4: actions without a name annotation crash *)
  | Crash_varbit_extract  (** P4C-2: varbit extract with expression argument *)
  | Crash_union_emit  (** P4C-6: header-union emit not flattened *)
  | Crash_dup_member  (** P4C-8: structure members with the same name *)
  | Crash_zero_len  (** BMv2 garbage on 0-length packets (issue 977) *)
  | Crash_assert  (** assert/assume terminate the model abnormally *)
  | Wrong_stack_op  (** P4C-3/5: wrong operation dereferencing a header stack *)
  | Swallow_apply  (** P4C-7: a switch case's table.apply() is dropped *)
  | Ignore_entry_priority  (** constant entries evaluated in the wrong order *)
  | Wrong_checksum_fold  (** checksum carries folded once instead of to fixpoint *)
  | Invalid_read_garbage  (** invalid header reads yield 0xFF instead of 0 *)
  | Drop_second_emit  (** deparser swallows the second emit *)
  | Wrong_shift_direction  (** << compiled as >> *)
  | Wrong_ternary_mask  (** ternary match ignores the mask *)
  | Skip_default_action  (** table miss executes nothing *)
  | Truncate_action_arg  (** action data truncated to 8 bits *)
  | Register_reset_between_packets
      (** register state re-initialised between the packets of a test
          sequence: cross-packet extern persistence is broken *)

type t = {
  m_label : string;
  m_target : string;  (** "BMv2" or "Tofino" *)
  m_kind : kind;
  m_desc : string;
  m_fault : fault;
}

let kind_name = function Exception -> "Exception" | Wrong_code -> "Wrong Code"

let fault_name = function
  | No_fault -> "no_fault"
  | Crash_stack_oob -> "crash_stack_oob"
  | Crash_expr_key -> "crash_expr_key"
  | Crash_missing_name -> "crash_missing_name"
  | Crash_varbit_extract -> "crash_varbit_extract"
  | Crash_union_emit -> "crash_union_emit"
  | Crash_dup_member -> "crash_dup_member"
  | Crash_zero_len -> "crash_zero_len"
  | Crash_assert -> "crash_assert"
  | Wrong_stack_op -> "wrong_stack_op"
  | Swallow_apply -> "swallow_apply"
  | Ignore_entry_priority -> "ignore_entry_priority"
  | Wrong_checksum_fold -> "wrong_checksum_fold"
  | Invalid_read_garbage -> "invalid_read_garbage"
  | Drop_second_emit -> "drop_second_emit"
  | Wrong_shift_direction -> "wrong_shift_direction"
  | Wrong_ternary_mask -> "wrong_ternary_mask"
  | Skip_default_action -> "skip_default_action"
  | Truncate_action_arg -> "truncate_action_arg"
  | Register_reset_between_packets -> "register_reset_between_packets"

(* The seeded fault corpus: 10 BMv2-side and 16 Tofino-side faults —
   the 9 + 16 of Tbl. 2 (the BMv2 nine carry the descriptions of
   Tbl. 3) plus SEQ-1, a stateful-persistence fault only multi-packet
   sequences (§5's extension story) can expose. *)
let corpus : t list =
  let bmv2 label kind desc fault =
    { m_label = label; m_target = "BMv2"; m_kind = kind; m_desc = desc; m_fault = fault }
  in
  let tofino label kind desc fault =
    { m_label = label; m_target = "Tofino"; m_kind = kind; m_desc = desc; m_fault = fault }
  in
  [
    (* --- BMv2 / P4C (Tbl. 3) --- *)
    bmv2 "P4C-1" Exception
      "The STF test back end is unable to process keys with expressions in their name."
      Crash_expr_key;
    bmv2 "P4C-2" Exception
      "The compiler did not correctly transform a varbit extract call with an expression as second argument."
      Crash_varbit_extract;
    bmv2 "P4C-3" Exception
      "The output by the compiler was using an incorrect operation to dereference a header stack."
      Wrong_stack_op;
    bmv2 "BMV2-1" Exception
      "BMv2 crashes when accessing a header stack with an index that is out of bounds."
      Crash_stack_oob;
    bmv2 "P4C-4" Exception
      "Actions, which are missing their name annotation, cause the STF test back end to crash."
      Crash_missing_name;
    bmv2 "P4C-5" Exception
      "A second instance where the compiler was using the wrong operation to manipulate header stacks."
      Wrong_shift_direction;
    bmv2 "P4C-6" Exception
      "The compiler should have flattened a header union input for emit calls."
      Crash_union_emit;
    bmv2 "P4C-7" Wrong_code
      "The compiler swallowed the table.apply() of a switch case, which led to incorrect output."
      Swallow_apply;
    bmv2 "P4C-8" Exception "BMv2 can not process structure members with the same name."
      Crash_dup_member;
    bmv2 "SEQ-1" Wrong_code
      "The switch re-initialises register state between the packets of a test sequence."
      Register_reset_between_packets;
    (* --- Tofino (confidential in the paper; synthetic corpus with the
       same 9 exception / 7 wrong-code split) --- *)
    tofino "TOF-1" Exception "Model crash on zero-length packet input." Crash_zero_len;
    tofino "TOF-2" Exception "Driver crash inserting an entry with an expression key."
      Crash_expr_key;
    tofino "TOF-3" Exception "Assembler rejects varbit extraction in the egress parser."
      Crash_varbit_extract;
    tofino "TOF-4" Exception "Model assertion failure on header-stack overflow."
      Crash_stack_oob;
    tofino "TOF-5" Exception "Control-plane crash on unnamed action parameters."
      Crash_missing_name;
    tofino "TOF-6" Exception "Deparser crash emitting an uninitialized header union."
      Crash_union_emit;
    tofino "TOF-7" Exception "Compiler crash on duplicate metadata field names."
      Crash_dup_member;
    tofino "TOF-8" Exception "Model terminates abnormally on assert in egress." Crash_assert;
    tofino "TOF-9" Exception "PHV allocator crash on wide shift operands."
      Crash_varbit_extract;
    tofino "TOF-10" Wrong_code "Constant entries matched ignoring their priority order."
      Ignore_entry_priority;
    tofino "TOF-11" Wrong_code "Checksum unit folds the carry only once." Wrong_checksum_fold;
    tofino "TOF-12" Wrong_code "Reads of invalid headers return stale PHV contents."
      Invalid_read_garbage;
    tofino "TOF-13" Wrong_code "The deparser swallows the second emitted header."
      Drop_second_emit;
    tofino "TOF-14" Wrong_code "Ternary matches computed without applying the mask."
      Wrong_ternary_mask;
    tofino "TOF-15" Wrong_code "A table miss skips the default action." Skip_default_action;
    tofino "TOF-16" Wrong_code "Action data wider than 8 bits is truncated." Truncate_action_arg;
  ]

let by_target tgt = List.filter (fun m -> m.m_target = tgt) corpus
let by_label l = List.find_opt (fun m -> m.m_label = l) corpus

(* resolve a CLI spelling: a corpus label ("P4C-7", "TOF-12") or a
   fault name ("swallow_apply") *)
let fault_of_string s : fault option =
  match by_label s with
  | Some m -> Some m.m_fault
  | None ->
      List.find_map
        (fun m -> if fault_name m.m_fault = s then Some m.m_fault else None)
        corpus
