(* Hierarchical delta debugging on the P4 AST.

   When the differential campaign finds a failing program, this module
   shrinks it to a minimal repro while preserving the failure: parse
   the source, enumerate one-edit variants (coarse edits first —
   whole declarations, parser states — down to single statements and
   constants), and greedily adopt any variant the caller's [keep]
   predicate still accepts.  Passes run to a fixpoint, so a ~300-line
   fuzz blob typically lands as a ~20-line program.

   The reducer knows nothing about *why* the program fails: [keep]
   re-runs the oracle/model pipeline and answers "does this source
   still fail the same way?".  Variants that no longer parse or
   type-check simply make [keep] return false and are skipped, which
   keeps the edit rules simple and type-oblivious. *)

open P4.Ast

type predicate = string -> bool
(** [keep src] must hold exactly when [src] still exhibits the
    original failure.  It must be deterministic: reduction explores
    candidates in a fixed order, so a deterministic predicate makes
    the reduced program a pure function of the input. *)

let pp (prog : program) : string = P4.Pretty.program_to_string prog

(* one-edit variants of a list: element [i] deleted or replaced *)
let list_edits (f : 'a -> 'a option list) (xs : 'a list) : 'a list list =
  let rec go pre = function
    | [] -> []
    | x :: rest ->
        let here =
          List.map
            (fun v ->
              List.rev_append pre (match v with None -> rest | Some x' -> x' :: rest))
            (f x)
        in
        here @ go (x :: pre) rest
  in
  go [] xs

(* ------------------------------------------------------------------ *)
(* Statement-level edits: delete a statement, flatten an [if] to one
   of its branches, recursively inside nested blocks *)

let rec stmt_edits (s : stmt) : stmt option list =
  let structural =
    match s with
    | SIf (p, c, t, e) ->
        [ Some (SBlock t); Some (SBlock e) ]
        @ List.map (fun t' -> Some (SIf (p, c, t', e))) (block_edits t)
        @ List.map (fun e' -> Some (SIf (p, c, t, e'))) (block_edits e)
    | SBlock b -> List.map (fun b' -> Some (SBlock b')) (block_edits b)
    | SSwitch (p, e, cases) ->
        list_edits
          (fun (case : switch_case) ->
            None
            ::
            (match case.sw_body with
            | None -> []
            | Some b -> List.map (fun b' -> Some { case with sw_body = Some b' }) (block_edits b)))
          cases
        |> List.map (fun cs -> Some (SSwitch (p, e, cs)))
    | _ -> []
  in
  None :: structural

and block_edits (b : block) : block list = list_edits stmt_edits b

(* ------------------------------------------------------------------ *)
(* Expression shrinking: constants toward zero, operators replaced by
   an operand *)

let rec expr_edits (e : expr) : expr list =
  match e with
  | EInt ({ iv; width; _ } as r) when iv <> 0 ->
      let mk v =
        EInt
          {
            r with
            iv = v;
            value = Option.map (fun w -> Bitv.Bits.of_int ~width:w v) width;
          }
      in
      mk 0 :: (if iv > 1 then [ mk (iv / 2) ] else [])
  | EUnop (op, a) -> (a :: List.map (fun a' -> EUnop (op, a')) (expr_edits a))
  | EBinop (op, a, b) ->
      [ a; b ]
      @ List.map (fun a' -> EBinop (op, a', b)) (expr_edits a)
      @ List.map (fun b' -> EBinop (op, a, b')) (expr_edits b)
  | ETernary (c, t, e) ->
      [ t; e ]
      @ List.map (fun c' -> ETernary (c', t, e)) (expr_edits c)
      @ List.map (fun t' -> ETernary (c, t', e)) (expr_edits t)
      @ List.map (fun e' -> ETernary (c, t, e')) (expr_edits e)
  | ECast (ty, a) -> List.map (fun a' -> ECast (ty, a')) (expr_edits a)
  | ESlice (a, hi, lo) -> List.map (fun a' -> ESlice (a', hi, lo)) (expr_edits a)
  | _ -> []

let rec stmt_expr_edits (s : stmt) : stmt list =
  match s with
  | SAssign (p, l, r) -> List.map (fun r' -> SAssign (p, l, r')) (expr_edits r)
  | SIf (p, c, t, e) ->
      List.map (fun c' -> SIf (p, c', t, e)) (expr_edits c)
      @ List.map (fun t' -> SIf (p, c, t', e)) (block_expr_edits t)
      @ List.map (fun e' -> SIf (p, c, t, e')) (block_expr_edits e)
  | SCall (p, f, args) ->
      list_edits (fun a -> List.map Option.some (expr_edits a)) args
      |> List.map (fun args' -> SCall (p, f, args'))
  | SVarDecl (p, ty, n, Some e) ->
      List.map (fun e' -> SVarDecl (p, ty, n, Some e')) (expr_edits e)
  | SBlock b -> List.map (fun b' -> SBlock b') (block_expr_edits b)
  | _ -> []

and block_expr_edits (b : block) : block list = list_edits (fun s -> List.map Option.some (stmt_expr_edits s)) b

(* ------------------------------------------------------------------ *)
(* Program-level passes, coarse to fine.  Each pass maps a program to
   its one-edit variants in a deterministic order. *)

let on_decl (f : decl -> decl option list) (prog : program) : program list =
  list_edits f prog

(* 1. drop a whole top-level declaration *)
let drop_decls prog = on_decl (fun _ -> [ None ]) prog

(* 1b. drop a header/struct field (uses elsewhere fail typing and are
   rejected by the predicate) *)
let drop_fields prog =
  on_decl
    (function
      | DHeader (n, fields, a) ->
          list_edits (fun _ -> [ None ]) fields
          |> List.map (fun fs -> Some (DHeader (n, fs, a)))
      | DStruct (n, fields, a) ->
          list_edits (fun _ -> [ None ]) fields
          |> List.map (fun fs -> Some (DStruct (n, fs, a)))
      | _ -> [])
    prog

(* 2. drop a parser state (transitions into it retarget to accept) *)
let drop_states prog =
  on_decl
    (function
      | DParser (pd, annos) ->
          List.filter_map
            (fun (dead : parser_state) ->
              if dead.st_name = "start" then None
              else begin
                let fix n = if n = dead.st_name then "accept" else n in
                let states =
                  List.filter_map
                    (fun (st : parser_state) ->
                      if st.st_name = dead.st_name then None
                      else
                        Some
                          {
                            st with
                            st_trans =
                              (match st.st_trans with
                              | TrDirect n -> TrDirect (fix n)
                              | TrSelect (ks, cs) ->
                                  TrSelect
                                    ( ks,
                                      List.map
                                        (fun c -> { c with sel_next = fix c.sel_next })
                                        cs ));
                          })
                    pd.p_states
                in
                Some (Some (DParser ({ pd with p_states = states }, annos)))
              end)
            pd.p_states
      | _ -> [])
    prog

(* 3. collapse a select transition to a direct one *)
let direct_transitions prog =
  on_decl
    (function
      | DParser (pd, annos) ->
          list_edits
            (fun (st : parser_state) ->
              match st.st_trans with
              | TrDirect _ -> []
              | TrSelect (_, cases) ->
                  let targets =
                    List.sort_uniq compare
                      ("accept" :: List.map (fun c -> c.sel_next) cases)
                  in
                  List.map (fun t -> Some { st with st_trans = TrDirect t }) targets)
            pd.p_states
          |> List.map (fun states -> Some (DParser ({ pd with p_states = states }, annos)))
      | _ -> [])
    prog

(* 4. drop a local declaration (table, action, variable, instance) *)
let drop_locals prog =
  on_decl
    (function
      | DControl (cd, annos) ->
          list_edits (fun _ -> [ None ]) cd.c_locals
          |> List.map (fun ls -> Some (DControl ({ cd with c_locals = ls }, annos)))
      | DParser (pd, annos) ->
          list_edits (fun _ -> [ None ]) pd.p_locals
          |> List.map (fun ls -> Some (DParser ({ pd with p_locals = ls }, annos)))
      | _ -> [])
    prog

(* 5. inline a table: replace [t.apply();] with the default action's
   body (parameters substituted by the default's arguments) and drop
   the table declaration *)
let inline_tables prog =
  let rec subst env e =
    match e with
    | EVar n -> ( match List.assoc_opt n env with Some v -> v | None -> e)
    | EMember (a, f) -> EMember (subst env a, f)
    | EIndex (a, i) -> EIndex (subst env a, subst env i)
    | ESlice (a, hi, lo) -> ESlice (subst env a, hi, lo)
    | EUnop (op, a) -> EUnop (op, subst env a)
    | EBinop (op, a, b) -> EBinop (op, subst env a, subst env b)
    | ETernary (c, t, e) -> ETernary (subst env c, subst env t, subst env e)
    | ECast (ty, a) -> ECast (ty, subst env a)
    | ECall (f, args) -> ECall (subst env f, List.map (subst env) args)
    | EList es -> EList (List.map (subst env) es)
    | EMask (a, b) -> EMask (subst env a, subst env b)
    | ERange (a, b) -> ERange (subst env a, subst env b)
    | _ -> e
  in
  let rec subst_stmt env s =
    match s with
    | SAssign (p, l, r) -> SAssign (p, subst env l, subst env r)
    | SCall (p, f, args) -> SCall (p, subst env f, List.map (subst env) args)
    | SIf (p, c, t, e) ->
        SIf (p, subst env c, List.map (subst_stmt env) t, List.map (subst_stmt env) e)
    | SBlock b -> SBlock (List.map (subst_stmt env) b)
    | SVarDecl (p, ty, n, i) -> SVarDecl (p, ty, n, Option.map (subst env) i)
    | _ -> s
  in
  let rec replace_apply tbl body s =
    match s with
    | SCall (_, EMember (EVar t, "apply"), []) when t = tbl -> SBlock body
    | SIf (p, c, th, el) ->
        SIf (p, c, List.map (replace_apply tbl body) th, List.map (replace_apply tbl body) el)
    | SBlock b -> SBlock (List.map (replace_apply tbl body) b)
    | _ -> s
  in
  on_decl
    (function
      | DControl (cd, annos) ->
          List.filter_map
            (function
              | LTable t -> (
                  let default =
                    match t.tbl_default with Some d -> Some d | None -> None
                  in
                  match default with
                  | None -> None
                  | Some (act_name, args) -> (
                      let action =
                        List.find_map
                          (function
                            | LAction a when a.act_name = act_name -> Some a
                            | _ -> None)
                          cd.c_locals
                      in
                      match action with
                      | Some a when List.length a.act_params = List.length args ->
                          let env =
                            List.map2 (fun p v -> (p.par_name, v)) a.act_params args
                          in
                          let body = List.map (subst_stmt env) a.act_body in
                          let locals =
                            List.filter (function LTable t' -> t'.tbl_name <> t.tbl_name | _ -> true)
                              cd.c_locals
                          in
                          let c_body = List.map (replace_apply t.tbl_name body) cd.c_body in
                          Some
                            (Some (DControl ({ cd with c_locals = locals; c_body }, annos)))
                      | _ -> None))
              | _ -> None)
            cd.c_locals
      | _ -> [])
    prog

(* 6. delete / flatten statements everywhere statements live *)
let stmt_pass prog =
  let local_edits = function
    | LAction a ->
        List.map (fun b -> Some (LAction { a with act_body = b })) (block_edits a.act_body)
    | _ -> []
  in
  on_decl
    (function
      | DControl (cd, annos) ->
          List.map (fun b -> Some (DControl ({ cd with c_body = b }, annos))) (block_edits cd.c_body)
          @ (list_edits local_edits cd.c_locals
            |> List.map (fun ls -> Some (DControl ({ cd with c_locals = ls }, annos))))
      | DParser (pd, annos) ->
          list_edits
            (fun (st : parser_state) ->
              List.map (fun ss -> Some { st with st_stmts = ss }) (block_edits st.st_stmts))
            pd.p_states
          |> List.map (fun states -> Some (DParser ({ pd with p_states = states }, annos)))
      | DAction a ->
          List.map (fun b -> Some (DAction { a with act_body = b })) (block_edits a.act_body)
      | _ -> [])
    prog

(* 7. shrink constants and prune operators inside expressions *)
let expr_pass prog =
  let local_edits = function
    | LAction a ->
        List.map
          (fun b -> Some (LAction { a with act_body = b }))
          (block_expr_edits a.act_body)
    | _ -> []
  in
  on_decl
    (function
      | DControl (cd, annos) ->
          List.map
            (fun b -> Some (DControl ({ cd with c_body = b }, annos)))
            (block_expr_edits cd.c_body)
          @ (list_edits local_edits cd.c_locals
            |> List.map (fun ls -> Some (DControl ({ cd with c_locals = ls }, annos))))
      | DAction a ->
          List.map
            (fun b -> Some (DAction { a with act_body = b }))
            (block_expr_edits a.act_body)
      | _ -> [])
    prog

let passes : (string * (program -> program list)) list =
  [
    ("drop-decl", drop_decls);
    ("drop-field", drop_fields);
    ("drop-state", drop_states);
    ("direct-transition", direct_transitions);
    ("drop-local", drop_locals);
    ("inline-table", inline_tables);
    ("edit-stmt", stmt_pass);
    ("shrink-expr", expr_pass);
  ]

type outcome = {
  reduced : string;  (** pretty-printed minimal program (still fails) *)
  steps : int;  (** accepted edits *)
  rounds : int;  (** fixpoint iterations *)
}

(** [reduce ~keep src] shrinks [src] while [keep] holds.  If [src]
    does not parse, or its pretty-printed round trip no longer fails,
    the original text is returned untouched ([steps = 0]).

    [deadline] (absolute, on the {!Obs.Clock}) bounds the shrink: each
    [keep] probe is a full differential run, so an unbounded reduction
    of a late campaign failure could blow the campaign's [--max-seconds]
    box many times over.  Past the deadline no further candidates are
    probed and the best program found so far is returned — still a
    valid repro, just less minimal. *)
let reduce ?deadline ?(max_rounds = 12) ~(keep : predicate) (src : string) : outcome =
  let expired () =
    match deadline with Some d -> Obs.Clock.now () > d | None -> false
  in
  match P4.Parser.parse_program src with
  | exception _ -> { reduced = src; steps = 0; rounds = 0 }
  | prog ->
      if expired () || not (keep (pp prog)) then
        { reduced = src; steps = 0; rounds = 0 }
      else begin
        let steps = ref 0 in
        let rec try_candidates = function
          | [] -> None
          | c :: rest ->
              if expired () then None
              else if keep (pp c) then Some c
              else try_candidates rest
        in
        let rec run_pass pass prog =
          match try_candidates (pass prog) with
          | Some c ->
              incr steps;
              run_pass pass c
          | None -> prog
        in
        let rec fix prog round =
          if round >= max_rounds || expired () then (prog, round)
          else begin
            let before = !steps in
            let prog =
              List.fold_left (fun prog (_name, pass) -> run_pass pass prog) prog passes
            in
            if !steps = before then (prog, round) else fix prog (round + 1)
          end
        in
        let prog, rounds = fix prog 0 in
        { reduced = pp prog; steps = !steps; rounds }
      end

let line_count (src : string) : int =
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
