(* Bounded corpus of "interesting" programs for the coverage-guided
   self-validation campaign (ROADMAP item 3).

   A program earns a corpus slot when its differential run reached
   oracle code nobody else reached — new statement-shape or path-shape
   coverage keys (from [Explore.coverage_keys], canonicalized so keys
   compare across independently generated programs) — or when it
   exhibits a feature-tag combination ([Progzoo.Randprog] tags) not
   seen before.  Admission appends to a ring: when the ring is full
   the oldest member is evicted, and members age out after being used
   as a mutation base [max_mutations] times, except that the corpus
   never shrinks below [min_size] (a floor of proven-interesting seeds
   keeps the mutator fed even when novelty dries up).

   The whole corpus — ring, ages, tags, the accumulated coverage-key
   set, and the cumulative campaign counters — persists to disk in a
   versioned text format so campaigns resume and accumulate across
   runs.  Serialization is canonical (sets written sorted, sources
   length-prefixed), so state → save → load → save is byte-identical;
   the resume bit-identity test leans on this.  Any format change must
   bump [version] (an old-version file is ignored, not migrated: the
   corpus is a cache, correctness never depends on its contents). *)

module ISet = Set.Make (Int)
module SSet = Set.Make (String)

let version = 1

let magic = Printf.sprintf "p4tg-corpus-v%d" version

type entry = {
  id : int;  (** unique within a corpus lifetime, monotonically assigned *)
  src : string;
  arch : string;
  tags : string list;  (** sorted feature tags *)
  novelty : int;  (** coverage keys this entry contributed at admission *)
  mutations : int;  (** times used as a mutation base (the age) *)
}

type t = {
  max_size : int;
  min_size : int;
  max_mutations : int;
  mutable ring : entry list;  (** oldest first *)
  mutable next_id : int;
  mutable seen : ISet.t;  (** all coverage keys ever observed *)
  mutable combos : SSet.t;  (** arch-qualified feature-tag combinations *)
  (* cumulative counters, persisted so a resumed campaign reports
     totals over its whole life, not since the last restart *)
  mutable admits : int;
  mutable evictions : int;
  mutable coverage_novelty : int;  (** total new keys contributed by admits *)
  mutable mutations_total : int;
  mutable splice_sources : int;  (** donor draws for splice mutations *)
  mutable cases_seen : int;
}

let create ?(max_size = 64) ?(min_size = 8) ?(max_mutations = 24) () =
  if min_size > max_size then invalid_arg "Corpus.create: min_size > max_size";
  {
    max_size;
    min_size;
    max_mutations;
    ring = [];
    next_id = 0;
    seen = ISet.empty;
    combos = SSet.empty;
    admits = 0;
    evictions = 0;
    coverage_novelty = 0;
    mutations_total = 0;
    splice_sources = 0;
    cases_seen = 0;
  }

let size t = List.length t.ring

let combo_key ~arch tags = arch ^ ":" ^ String.concat "," (List.sort_uniq compare tags)

(** [observe t ~src ~arch ~tags ~keys] records one evaluated case.
    Admits [src] into the ring iff it contributed coverage novelty or
    a new feature-tag combination; returns [true] on admission. *)
let observe t ~src ~arch ~tags ~keys =
  t.cases_seen <- t.cases_seen + 1;
  let fresh = ISet.diff keys t.seen in
  let novelty = ISet.cardinal fresh in
  let combo = combo_key ~arch tags in
  let new_combo = not (SSet.mem combo t.combos) in
  t.seen <- ISet.union t.seen keys;
  t.combos <- SSet.add combo t.combos;
  if novelty = 0 && not new_combo then false
  else begin
    let e =
      {
        id = t.next_id;
        src;
        arch;
        tags = List.sort_uniq compare tags;
        novelty;
        mutations = 0;
      }
    in
    t.next_id <- t.next_id + 1;
    t.ring <- t.ring @ [ e ];
    t.admits <- t.admits + 1;
    t.coverage_novelty <- t.coverage_novelty + novelty;
    if List.length t.ring > t.max_size then begin
      t.ring <- List.tl t.ring;
      t.evictions <- t.evictions + 1
    end;
    true
  end

(** Uniform draw of a mutation base (and optionally a distinct donor
    for splicing).  Deterministic in [rng]. *)
let sample t (rng : Random.State.t) : entry option =
  match t.ring with
  | [] -> None
  | ring -> Some (List.nth ring (Random.State.int rng (List.length ring)))

let sample_donor t (rng : Random.State.t) ~(base : entry) : entry option =
  match List.filter (fun e -> e.id <> base.id) t.ring with
  | [] -> None
  | others -> Some (List.nth others (Random.State.int rng (List.length others)))

(** Called by the campaign when a splice mutator actually drew from a
    donor entry. *)
let note_splice t = t.splice_sources <- t.splice_sources + 1

(** The ring, oldest first, for callers that need filtered sampling
    (e.g. arch-compatible bases). *)
let entries t = t.ring

(** Bump the age of entry [id]; retire it once it has seeded
    [max_mutations] mutants — unless that would drop the corpus below
    the minimum-size floor. *)
let note_mutation t ~id =
  t.mutations_total <- t.mutations_total + 1;
  t.ring <-
    List.map (fun e -> if e.id = id then { e with mutations = e.mutations + 1 } else e) t.ring;
  let aged e = e.id = id && e.mutations > t.max_mutations in
  if List.exists aged t.ring && size t > t.min_size then begin
    t.ring <- List.filter (fun e -> not (aged e)) t.ring;
    t.evictions <- t.evictions + 1
  end

(* ------------------------------------------------------------------ *)
(* Persistence.  One file, [dir]/corpus.p4tg:

     p4tg-corpus-v1
     limits max_size=M min_size=m max_mutations=A next_id=N
     counters admits=.. evictions=.. novelty=.. mutations=.. splices=.. cases=..
     seen K
     <K sorted ints, space-separated, on one line (or an empty line)>
     combos C
     <C lines, sorted>
     entries E
     entry id=.. arch=.. novelty=.. mutations=.. tags=a,b,c bytes=B
     <B raw source bytes>
     ... *)

let file_name = "corpus.p4tg"

let path dir = Filename.concat dir file_name

let save t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "limits max_size=%d min_size=%d max_mutations=%d next_id=%d\n"
       t.max_size t.min_size t.max_mutations t.next_id);
  Buffer.add_string buf
    (Printf.sprintf
       "counters admits=%d evictions=%d novelty=%d mutations=%d splices=%d cases=%d\n"
       t.admits t.evictions t.coverage_novelty t.mutations_total t.splice_sources
       t.cases_seen);
  let seen = ISet.elements t.seen in
  Buffer.add_string buf (Printf.sprintf "seen %d\n" (List.length seen));
  Buffer.add_string buf (String.concat " " (List.map string_of_int seen));
  Buffer.add_char buf '\n';
  let combos = SSet.elements t.combos in
  Buffer.add_string buf (Printf.sprintf "combos %d\n" (List.length combos));
  List.iter (fun c -> Buffer.add_string buf (c ^ "\n")) combos;
  Buffer.add_string buf (Printf.sprintf "entries %d\n" (List.length t.ring));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "entry id=%d arch=%s novelty=%d mutations=%d tags=%s bytes=%d\n"
           e.id e.arch e.novelty e.mutations (String.concat "," e.tags)
           (String.length e.src));
      Buffer.add_string buf e.src;
      Buffer.add_char buf '\n')
    t.ring;
  (* write-then-rename so a killed campaign never leaves a torn file *)
  let tmp = path dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc buf;
  close_out oc;
  Sys.rename tmp (path dir)

exception Bad_format of string

let load dir : t option =
  let file = path dir in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let line () = input_line ic in
          let fail msg = raise (Bad_format msg) in
          let kv prefix s =
            (* "prefix a=1 b=2" -> assoc list *)
            match String.split_on_char ' ' s with
            | p :: rest when p = prefix ->
                List.map
                  (fun tok ->
                    match String.index_opt tok '=' with
                    | Some i ->
                        ( String.sub tok 0 i,
                          String.sub tok (i + 1) (String.length tok - i - 1) )
                    | None -> fail ("bad token " ^ tok))
                  rest
            | _ -> fail ("expected " ^ prefix)
          in
          let geti assoc k = int_of_string (List.assoc k assoc) in
          if line () <> magic then fail "version";
          let limits = kv "limits" (line ()) in
          let t =
            create ~max_size:(geti limits "max_size") ~min_size:(geti limits "min_size")
              ~max_mutations:(geti limits "max_mutations") ()
          in
          t.next_id <- geti limits "next_id";
          let c = kv "counters" (line ()) in
          t.admits <- geti c "admits";
          t.evictions <- geti c "evictions";
          t.coverage_novelty <- geti c "novelty";
          t.mutations_total <- geti c "mutations";
          t.splice_sources <- geti c "splices";
          t.cases_seen <- geti c "cases";
          (match String.split_on_char ' ' (line ()) with
          | [ "seen"; n ] ->
              let n = int_of_string n in
              let toks =
                match line () with
                | "" -> []
                | l -> String.split_on_char ' ' l
              in
              if List.length toks <> n then fail "seen count";
              t.seen <- ISet.of_list (List.map int_of_string toks)
          | _ -> fail "seen");
          (match String.split_on_char ' ' (line ()) with
          | [ "combos"; n ] ->
              let n = int_of_string n in
              for _ = 1 to n do
                t.combos <- SSet.add (line ()) t.combos
              done
          | _ -> fail "combos");
          (match String.split_on_char ' ' (line ()) with
          | [ "entries"; n ] ->
              let n = int_of_string n in
              let entries = ref [] in
              for _ = 1 to n do
                let e = kv "entry" (line ()) in
                let bytes = geti e "bytes" in
                let src = really_input_string ic bytes in
                (match input_char ic with
                | '\n' -> ()
                | _ -> fail "entry terminator"
                | exception End_of_file -> fail "entry terminator");
                let tags =
                  match List.assoc "tags" e with
                  | "" -> []
                  | s -> String.split_on_char ',' s
                in
                entries :=
                  {
                    id = geti e "id";
                    src;
                    arch = List.assoc "arch" e;
                    novelty = geti e "novelty";
                    mutations = geti e "mutations";
                    tags;
                  }
                  :: !entries
              done;
              t.ring <- List.rev !entries
          | _ -> fail "entries");
          Some t
        with
        | Bad_format _ | End_of_file | Not_found | Failure _ -> None)
