(* Mutation scoring of generated test suites against the
   {!Sim.Mutation} fault catalogue (the Tbl. 2 / Tbl. 3 bug-finding
   study, run as a self-test).

   For every catalogued fault we generate a suite for its trigger
   program and inject the fault into the simulator; the fault is
   "killed" when a test crashes the faulted model or fails its oracle
   expectation.  Faults that the expectations cannot see — e.g.
   Invalid_read_garbage, whose effect hides behind the oracle's taint
   don't-care masks — get a second chance on the fully deterministic
   v1model: the same tests run on the pristine and the faulted model,
   and any bit-exact output difference also counts as a kill (the
   classic mutation-testing criterion: the suite distinguishes the
   mutant from the original). *)

module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime
module Bits = Bitv.Bits

type detection = Detected of Sim.Mutation.kind | Undetected

let trigger_program (m : Sim.Mutation.t) : string * string =
  match m.m_label with
  | "P4C-1" -> ("v1model", Progzoo.Corpus.expr_key)
  | "P4C-2" -> ("v1model", Progzoo.Corpus.advance_prog)
  | "P4C-3" | "BMV2-1" -> ("v1model", Progzoo.Corpus.mpls_stack)
  | "P4C-4" -> ("v1model", Progzoo.Corpus.fig1a)
  | "P4C-5" -> ("v1model", Progzoo.Corpus.shift_prog)
  | "P4C-6" -> ("v1model", Progzoo.Corpus.union_prog)
  | "P4C-7" -> ("v1model", Progzoo.Corpus.switch_action_run)
  | "P4C-8" -> ("v1model", Progzoo.Corpus.dup_member)
  | "SEQ-1" -> ("v1model", Progzoo.Corpus.register_program)
  | "TOF-1" -> ("tna", Progzoo.Corpus.tna_basic)
  | "TOF-5" -> ("tna", Progzoo.Corpus.tna_basic)
  | "TOF-12" -> ("v1model", Progzoo.Corpus.stale_read_prog)
  | _ -> ("tna", Progzoo.Corpus.tna_kitchen)

(* suites are pure functions of (arch, source, sequence length) here,
   so share them across faults that use the same trigger *)
let cache : (string * string * int, Testgen.Testspec.t list) Hashtbl.t = Hashtbl.create 8
let target_of arch = Option.get (Targets.Registry.find arch)

let tests_for ?(seq_packets = 1) arch src =
  match Hashtbl.find_opt cache (arch, src, seq_packets) with
  | Some t -> t
  | None ->
      let opts = { Runtime.default_options with unroll_bound = 4; seed = 3; seq_packets } in
      let run = Oracle.generate ~opts (target_of arch) src in
      let tests = run.Oracle.result.Explore.tests in
      Hashtbl.replace cache (arch, src, seq_packets) tests;
      tests

(* bit-exact output comparison between two models on one test; only
   meaningful on a deterministic architecture (v1model: undefined
   reads are zero, no RNG in the pipeline) *)
let outputs_differ (pristine : Sim.Harness.prepared_sim) (faulted : Sim.Harness.prepared_sim)
    (t : Testgen.Testspec.t) : bool =
  let input : Testgen.Testspec.packet = Testgen.Testspec.input t in
  let run sim =
    match
      Sim.Harness.run_packet sim ~entries:t.Testgen.Testspec.entries
        ~port:(Bits.to_int input.port) input.data
    with
    | exception _ -> None
    | outs -> Some outs
  in
  match (run pristine, run faulted) with
  | Some a, Some b ->
      let render = function
        | None -> "drop"
        | Some outs ->
            String.concat ";"
              (List.map (fun (p, bits) -> Printf.sprintf "%d:%s" p (Bits.to_hex bits)) outs)
      in
      render a <> render b
  | None, None -> false
  | _ -> true  (* one side crashed where the other did not *)

let run_mutation (m : Sim.Mutation.t) : detection =
  let arch, src = trigger_program m in
  (* SEQ-1 breaks *cross-packet* persistence: only a multi-packet
     sequence suite can observe it *)
  let seq_packets = if m.Sim.Mutation.m_label = "SEQ-1" then 2 else 1 in
  let tests = tests_for ~seq_packets arch src in
  match Sim.Harness.prepare ~fault:m.Sim.Mutation.m_fault ~arch src with
  | exception Sim.Interp.Sim_crash _ -> Detected Sim.Mutation.Exception
  | sim -> (
      let summary, _ = Sim.Harness.run_suite sim tests in
      if summary.Sim.Harness.crashed > 0 then Detected Sim.Mutation.Exception
      else if summary.Sim.Harness.wrong > 0 then Detected Sim.Mutation.Wrong_code
      else if arch = "v1model" then begin
        (* differential second chance on the deterministic model; the
           single-packet replay cannot represent sequences, skip them *)
        let pristine = Sim.Harness.prepare ~arch src in
        let singles = List.filter (fun t -> not (Testgen.Testspec.is_sequence t)) tests in
        if List.exists (outputs_differ pristine sim) singles then
          Detected Sim.Mutation.Wrong_code
        else Undetected
      end
      else Undetected)

let score ?(faults = Sim.Mutation.corpus) () : (Sim.Mutation.t * detection) list =
  List.map (fun m -> (m, run_mutation m)) faults

let undetected results = List.filter (fun (_, d) -> d = Undetected) results
