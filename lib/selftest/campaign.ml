(* The self-validation campaign engine (§7/§8).

   Each case runs a differential pipeline: a well-typed program goes
   through the oracle, its whole test suite executes on the
   independent concrete simulator ({!Sim.Harness}), and any
   disagreement — a failing expectation, a model crash, an oracle
   exception — is a campaign failure.  On a cadence, cases
   additionally check cross-cutting invariants that pass/fail alone
   would miss:

   - seed determinism: regenerating with the same seed yields the
     bit-identical suite;
   - parallel determinism: the frontier driver ([path_jobs >= 1])
     yields the same suite as sequential DFS;
   - strategy agreement: the Rnd and Cov exploration orders also
     produce suites that pass on the model.

   Case programs come from one of two sources.  In *pure-random* mode
   (the PR 5 behavior) every case draws a fresh program from
   {!Progzoo.Randprog}.  In *corpus* mode ([corpus_dir] set) the
   campaign keeps a coverage-guided {!Corpus}: cases whose runs reach
   new oracle coverage keys (canonical statement/path shapes, see
   {!Explore.coverage_keys}) or new feature-tag combinations are
   admitted, and once the corpus is warm most cases are derived by
   {!Mutate}-ing corpus members instead of generating from scratch.
   The corpus persists under [corpus_dir], so campaigns resume and
   accumulate across runs.

   Determinism is load-bearing in both modes.  Pure-random cases run
   in parallel over the process-wide {!Explore.Pool} domain budget,
   with results stored by case index and folded in order, so the
   summary is bit-identical for any [jobs] value.  Corpus mode runs
   *batch-synchronously*: case derivation (which reads and ages the
   corpus) is sequential over a fixed-size batch, evaluation of the
   batch fans out over the pool, and admission folds back in case
   order — the batch size is a config constant independent of [jobs],
   so the corpus evolves identically for any [jobs] value, and the
   corpus + a campaign checkpoint are flushed after every batch so a
   killed campaign resumes at the last batch boundary bit-identically.

   Failures are reduced *after* the parallel phase, sequentially and
   in case order, by {!Reduce} — reduction cost therefore never skews
   the summary, and repros land deterministically. *)

module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime
module Testspec = Testgen.Testspec
module Randprog = Progzoo.Randprog

type config = {
  cases : int;
  jobs : int;  (** worker domains (1 = sequential) *)
  seed : int;  (** master seed; every case seed derives from it *)
  max_seconds : float option;
      (** wall-clock box: cases not started in time are skipped (the
          summary then reports [skipped > 0] and is only comparable
          across [jobs] values when the box never triggers), and the
          reduction post-pass stops shrinking when the box expires *)
  archs : Randprog.arch list;  (** round-robin per case *)
  max_tests : int;  (** oracle budget per case *)
  fault : Sim.Mutation.fault;  (** seeded simulator fault (campaign
          self-test: [No_fault] for real validation runs) *)
  reduce : bool;  (** shrink failing programs to minimal repros *)
  reduce_limit : int;  (** reduce at most this many failures *)
  out_dir : string option;  (** write repro .p4 files here *)
  sequences : bool;
      (** explore multi-packet test sequences: each case injects 2–3
          packets (derived deterministically from its seed) against one
          persistent model state *)
  corpus_dir : string option;
      (** enable coverage-guided corpus mode, persisting the corpus
          (and the resume checkpoint) under this directory *)
  mutation_ratio : float;
      (** probability that a case is derived by mutating a corpus
          member once the corpus is warm (has reached its minimum
          size); the rest stay from-scratch random *)
  corpus_batch : int;
      (** corpus-mode synchronization interval, in cases.  Must not
          depend on [jobs] (it is what makes jobs-1 ≡ jobs-N hold in
          corpus mode); it is also the checkpoint granularity *)
  interrupt_after : int option;
      (** test hook simulating a killed campaign: stop (checkpointed,
          without the reduction post-pass) at the first batch boundary
          >= this many cases *)
}

let default_config =
  {
    cases = 50;
    jobs = 1;
    seed = 1;
    max_seconds = None;
    archs = Randprog.all_archs;
    max_tests = 12;
    fault = Sim.Mutation.No_fault;
    reduce = true;
    reduce_limit = 3;
    out_dir = None;
    sequences = false;
    corpus_dir = None;
    mutation_ratio = 0.75;
    corpus_batch = 10;
    interrupt_after = None;
  }

type failure = {
  f_case : int;
  f_arch : string;
  f_seed : int;
  f_kind : string;  (** [wrong_output] / [crash] / [oracle_error] / [invariant] *)
  f_detail : string;
  f_source : string;  (** the generated program *)
  f_reduced : Reduce.outcome option;  (** set by the reduction post-pass *)
  f_file : string option;  (** repro path when [out_dir] is set *)
}

type case_result = {
  r_case : int;
  r_arch : string;
  r_seed : int;
  r_tests : int;  (** tests the oracle generated *)
  r_features : string list;
  r_failure : failure option;
  r_skipped : bool;  (** the time box expired before this case started *)
}

type summary = {
  s_config : config;
  s_results : case_result list;  (** in case order *)
  s_failures : failure list;  (** post-reduction, in case order *)
  s_ran : int;
  s_skipped : int;
  s_tests : int;
  s_features : string list;  (** union of generator features exercised *)
  s_wall : float;
  s_obs : Obs.Snapshot.t;  (** merged per-worker registries *)
  s_workers : (string * Obs.Registry.t) list;  (** for trace export *)
  s_cov_keys : int;
      (** distinct oracle coverage keys: this run's in pure-random
          mode, cumulative over the corpus lifetime in corpus mode *)
  s_cov_cases : int;  (** the denominator matching [s_cov_keys] *)
  s_mutated : int;  (** cases derived by mutation in this run *)
  s_corpus : Corpus.t option;  (** final corpus state in corpus mode *)
  s_interrupted : bool;  (** stopped early by [interrupt_after] *)
}

(** Oracle-code coverage per 1000 cases — the campaign's comparable
    coverage metric (distinct canonical coverage keys, normalized by
    evaluated cases). *)
let cov_per_1000 (s : summary) : float =
  if s.s_cov_cases = 0 then 0.0
  else float_of_int s.s_cov_keys *. 1000.0 /. float_of_int s.s_cov_cases

(* deterministic per-case derivation from the master seed *)
let case_seed master i = (((master * 1_000_003) + (i * 7919)) land 0x3FFFFFFF) + 1
let case_arch cfg i = List.nth cfg.archs (i mod List.length cfg.archs)

(* ------------------------------------------------------------------ *)
(* Coverage keys: canonical statement shapes, salted per arch, hashed
   with FNV-1a (NOT [Hashtbl.hash]: these keys persist in the corpus
   file, so they must be stable across runs and OCaml versions). *)

let shape_key ~arch (s : string) : int =
  let h = ref 0x14650FB0739D0383 in
  String.iter
    (fun c -> h := ((!h lxor Char.code c) * 0x100000001B3) land max_int)
    (arch ^ "|" ^ s);
  !h

(* ------------------------------------------------------------------ *)
(* One differential run: oracle suite vs. concrete model *)

type pipeline_outcome =
  | All_pass of int  (** number of tests, all passing *)
  | Diff of string * string  (** kind, detail *)

let target_of arch = Option.get (Targets.Registry.find arch)

(* Campaign oracle runs use the coverage-optimal test-selection
   strategy (the paper's CoveredStmts heuristic): the per-case test
   budget is spent only on tests that reach uncovered statements, so
   [result.covered] — the campaign's coverage metric — reflects what
   the budget can reach rather than DFS enumeration order. *)
(* [max_paths] bounds exploration of a single case: once the per-case
   test budget stops being reached (novelty dried up), Cov-mode DFS
   would otherwise walk a heavily-mutated program's whole path tree —
   thousands of paths for a few dozen statements — for nothing. *)
let campaign_explore =
  {
    Explore.default_config with
    Explore.strategy = Explore.Cov;
    Explore.max_paths = Some 384;
  }

let run_pipeline_cov ?(explore = campaign_explore) ?(seq_packets = 1) ~fault
    ~arch ~seed ~max_tests src : pipeline_outcome * Runtime.IntSet.t =
  let opts = { Runtime.default_options with seed; seq_packets } in
  let config = { explore with Explore.max_tests = Some max_tests } in
  match Oracle.generate ~opts ~config (target_of arch) src with
  | exception e -> (Diff ("oracle_error", Printexc.to_string e), Runtime.IntSet.empty)
  | run -> (
      let result = run.Oracle.result in
      let keys =
        let tbl = Hashtbl.create 256 in
        List.iter
          (fun (sid, shp) -> Hashtbl.replace tbl sid (shape_key ~arch shp))
          (P4.Passes.statement_shapes run.Oracle.prepared.Oracle.prog);
        (* sids without a canonical shape (declarations) collapse to a
           shared key so they can't leak program-local numbering into
           the cross-program key space *)
        Explore.coverage_keys
          ~shape:(fun sid -> Option.value (Hashtbl.find_opt tbl sid) ~default:0)
          result
      in
      let tests = result.Explore.tests in
      match Sim.Harness.prepare ~fault ~seed ~arch src with
      | exception e -> (Diff ("crash", "sim prepare: " ^ Printexc.to_string e), keys)
      | sim -> (
          let _, results = Sim.Harness.run_suite sim tests in
          let first_bad =
            List.find_opt (fun (_, v) -> v <> Sim.Harness.Pass) results
          in
          match first_bad with
          | None -> (All_pass (List.length tests), keys)
          | Some (t, Sim.Harness.Wrong_output msg) ->
              (Diff ("wrong_output", msg ^ "\n" ^ Testspec.to_string t), keys)
          | Some (t, Sim.Harness.Crash msg) ->
              (Diff ("crash", msg ^ "\n" ^ Testspec.to_string t), keys)
          | Some (_, Sim.Harness.Pass) -> assert false))

let run_pipeline ?explore ?seq_packets ~fault ~arch ~seed ~max_tests src :
    pipeline_outcome =
  fst (run_pipeline_cov ?explore ?seq_packets ~fault ~arch ~seed ~max_tests src)

let suite_fingerprint tests = String.concat "\n--\n" (List.map Testspec.to_string tests)

(* the cadenced cross-cutting invariants; [None] = all hold *)
let check_invariants ~arch ~seed ~max_tests ~seq_packets ~(i : int) src :
    (string * string) option =
  let opts = { Runtime.default_options with seed; seq_packets } in
  let gen config = (Oracle.generate ~opts ~config (target_of arch) src).Oracle.result.Explore.tests in
  let base_cfg = { Explore.default_config with Explore.max_tests = Some max_tests } in
  let checks = ref [] in
  if i mod 5 = 0 then
    checks :=
      ( "seed determinism",
        fun () ->
          let a = gen base_cfg and b = gen base_cfg in
          if suite_fingerprint a <> suite_fingerprint b then
            Some "same seed produced two different suites"
          else None )
      :: !checks;
  if i mod 7 = 0 then
    checks :=
      ( "path_jobs determinism",
        fun () ->
          (* the frontier driver's contract: bit-identical suites for
             any path_jobs >= 1 (pj=1 is the reference; pj=0, the
             classic sequential DFS, may order tests differently) *)
          let ref_ = gen { base_cfg with Explore.path_jobs = 1 } in
          let par = gen { base_cfg with Explore.path_jobs = 2 } in
          if suite_fingerprint ref_ <> suite_fingerprint par then
            Some "path_jobs=2 suite differs from the path_jobs=1 reference"
          else None )
      :: !checks;
  if i mod 3 = 0 then begin
    let strategy_check name strat =
      ( Printf.sprintf "%s strategy validates" name,
        fun () ->
          match
            run_pipeline
              (* keep the campaign's path cap: without it a heavily
                 mutated program's full path tree is walked once its
                 novelty dries up *)
              ~explore:{ campaign_explore with Explore.strategy = strat }
              ~seq_packets ~fault:Sim.Mutation.No_fault ~arch ~seed ~max_tests src
          with
          | All_pass _ -> None
          | Diff (kind, detail) -> Some (kind ^ ": " ^ detail) )
    in
    checks := strategy_check "Rnd" Explore.Rnd :: !checks;
    if i mod 6 = 0 then checks := strategy_check "Cov" Explore.Cov :: !checks
  end;
  List.fold_left
    (fun acc (name, check) ->
      match acc with
      | Some _ -> acc
      | None -> ( match check () with Some d -> Some (name, d) | None -> None))
    None (List.rev !checks)

(* ------------------------------------------------------------------ *)
(* Case evaluation (shared by both drivers) *)

let eval_case cfg (reg : Obs.Registry.t) ~(i : int) ~(seed : int)
    ~(arch_name : string) ~(src : string) ~(features : string list) :
    case_result * Runtime.IntSet.t =
  let fail kind detail =
    {
      f_case = i;
      f_arch = arch_name;
      f_seed = seed;
      f_kind = kind;
      f_detail = detail;
      f_source = src;
      f_reduced = None;
      f_file = None;
    }
  in
  let mk failure tests =
    {
      r_case = i;
      r_arch = arch_name;
      r_seed = seed;
      r_tests = tests;
      r_features = features;
      r_failure = failure;
      r_skipped = false;
    }
  in
  Obs.Counter.incr (Obs.Registry.counter reg "selftest.cases");
  (* sequence mode: 2–3 packets per test, derived from the case seed so
     the choice is identical for any [jobs] value *)
  let seq_packets = if cfg.sequences then 2 + (seed mod 2) else 1 in
  if cfg.sequences then
    Obs.Counter.incr (Obs.Registry.counter reg "selftest.sequence_cases");
  let t = Obs.Registry.timer reg "selftest.case_time" in
  Obs.Timer.time t (fun () ->
      match
        run_pipeline_cov ~seq_packets ~fault:cfg.fault ~arch:arch_name ~seed
          ~max_tests:cfg.max_tests src
      with
      | Diff (kind, detail), keys ->
          Obs.Counter.incr (Obs.Registry.counter reg "selftest.failures");
          (mk (Some (fail kind detail)) 0, keys)
      | All_pass n, keys -> (
          Obs.Counter.add (Obs.Registry.counter reg "selftest.tests") n;
          (* invariants only make sense on a program that validates; a
             seeded fault intentionally breaks differential runs, so
             skip them then *)
          if cfg.fault <> Sim.Mutation.No_fault then (mk None n, keys)
          else
            match
              check_invariants ~arch:arch_name ~seed ~max_tests:cfg.max_tests
                ~seq_packets ~i src
            with
            | Some (name, detail) ->
                Obs.Counter.incr (Obs.Registry.counter reg "selftest.failures");
                Obs.Counter.incr (Obs.Registry.counter reg "selftest.invariant_failures");
                (mk (Some (fail "invariant" (name ^ ": " ^ detail))) n, keys)
            | None -> (mk None n, keys)))

let skipped_result cfg i =
  {
    r_case = i;
    r_arch = Randprog.arch_name (case_arch cfg i);
    r_seed = case_seed cfg.seed i;
    r_tests = 0;
    r_features = [];
    r_failure = None;
    r_skipped = true;
  }

(* ------------------------------------------------------------------ *)
(* Reduction post-pass *)

let reduce_failure ?deadline cfg (reg : Obs.Registry.t) (f : failure) : failure =
  (* "still fails the same way": same kind, under the same seed/fault
     (and the same sequence length, re-derived from the case seed) *)
  let seq_packets = if cfg.sequences then 2 + (f.f_seed mod 2) else 1 in
  let keep src =
    match
      run_pipeline ~seq_packets ~fault:cfg.fault ~arch:f.f_arch ~seed:f.f_seed
        ~max_tests:cfg.max_tests src
    with
    | Diff (kind, _) -> kind = f.f_kind
    | All_pass _ -> false
  in
  if f.f_kind = "invariant" then f  (* invariant breaks rarely survive shrinking *)
  else begin
    (* candidate programs legitimately break (dangling action names,
       dead states): the oracle's per-path warnings are noise here *)
    let saved = Logs.level () in
    Logs.set_level (Some Logs.Error);
    let outcome =
      Fun.protect
        ~finally:(fun () -> Logs.set_level saved)
        (fun () -> Reduce.reduce ?deadline ~keep f.f_source)
    in
    Obs.Counter.add (Obs.Registry.counter reg "selftest.reduce_steps") outcome.Reduce.steps;
    Obs.Counter.incr (Obs.Registry.counter reg "selftest.reduced");
    { f with f_reduced = Some outcome }
  end

let write_repro cfg (f : failure) : failure =
  match cfg.out_dir with
  | None -> f
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let file = Filename.concat dir (Printf.sprintf "case%04d_%s.p4" f.f_case f.f_arch) in
      let oc = open_out file in
      let body =
        match f.f_reduced with Some r -> r.Reduce.reduced | None -> f.f_source
      in
      Printf.fprintf oc "// arch: %s\n// seed: %d\n// case: %d  kind: %s\n" f.f_arch
        f.f_seed f.f_case f.f_kind;
      (match cfg.fault with
      | Sim.Mutation.No_fault -> ()
      | fault -> Printf.fprintf oc "// fault: %s\n" (Sim.Mutation.fault_name fault));
      List.iter
        (fun l -> Printf.fprintf oc "// detail: %s\n" l)
        (String.split_on_char '\n' f.f_detail |> List.filteri (fun i _ -> i < 3));
      output_string oc body;
      if body = "" || body.[String.length body - 1] <> '\n' then output_char oc '\n';
      close_out oc;
      { f with f_file = Some file }

(* sequential, case-ordered reduction + repro pass; the campaign
   deadline (already consumed by generation) also bounds shrinking,
   so a late failure cannot blow the overall time box *)
let post_process ?deadline cfg (main_reg : Obs.Registry.t)
    (results : case_result list) : case_result list =
  let reduced = ref 0 in
  List.map
    (fun r ->
      match r.r_failure with
      | Some f ->
          let f =
            if cfg.reduce && !reduced < cfg.reduce_limit then begin
              incr reduced;
              reduce_failure ?deadline cfg main_reg f
            end
            else f
          in
          let f = write_repro cfg f in
          { r with r_failure = Some f }
      | None -> r)
    results

(* ------------------------------------------------------------------ *)
(* Summary assembly *)

let merge_workers worker_regs =
  Array.fold_left
    (fun acc reg -> Obs.Snapshot.merge acc (Obs.Registry.snapshot reg))
    Obs.Snapshot.empty worker_regs

let assemble cfg ~t0 ~worker_regs ~results ~cov_keys ~cov_cases ~mutated ~corpus
    ~interrupted : summary =
  let failures = List.filter_map (fun r -> r.r_failure) results in
  let features =
    List.sort_uniq compare (List.concat_map (fun r -> r.r_features) results)
  in
  {
    s_config = cfg;
    s_results = results;
    s_failures = failures;
    s_ran = List.length (List.filter (fun r -> not r.r_skipped) results);
    s_skipped = List.length (List.filter (fun r -> r.r_skipped) results);
    s_tests = List.fold_left (fun a r -> a + r.r_tests) 0 results;
    s_features = features;
    s_wall = Obs.Clock.now () -. t0;
    s_obs = merge_workers worker_regs;
    s_workers =
      Array.to_list
        (Array.mapi (fun i r -> (Printf.sprintf "selftest-w%d" i, r)) worker_regs);
    s_cov_keys = cov_keys;
    s_cov_cases = cov_cases;
    s_mutated = mutated;
    s_corpus = corpus;
    s_interrupted = interrupted;
  }

(* ------------------------------------------------------------------ *)
(* The pure-random parallel driver (PR 5 shape, plus coverage keys) *)

let run_random (cfg : config) : summary =
  let t0 = Obs.Clock.now () in
  let deadline = Option.map (fun s -> t0 +. s) cfg.max_seconds in
  let n = cfg.cases in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let worker_regs =
    Array.init (max 1 cfg.jobs) (fun _ -> Obs.Registry.create ~record_spans:true ())
  in
  let worker wid () =
    let reg = worker_regs.(wid) in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let skipped =
          match deadline with Some d -> Obs.Clock.now () > d | None -> false
        in
        (out.(i) <-
          (if skipped then Some (skipped_result cfg i, Runtime.IntSet.empty)
           else begin
             let seed = case_seed cfg.seed i in
             let arch = case_arch cfg i in
             let gen = Randprog.generate_for ~arch ~seed in
             let span = Obs.Span.enter reg ~args:[ ("case", string_of_int i) ] "case" in
             let r =
               eval_case cfg reg ~i ~seed ~arch_name:(Randprog.arch_name arch)
                 ~src:gen.Randprog.src ~features:gen.Randprog.features
             in
             Obs.Span.exit reg span;
             Some r
           end));
        loop ()
      end
    in
    loop ()
  in
  let extra = Explore.Pool.acquire (cfg.jobs - 1) in
  if extra = 0 then worker 0 ()
  else begin
    let domains = List.init extra (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    Explore.Pool.release extra
  end;
  let pairs = Array.to_list out |> List.filter_map Fun.id in
  (* in-order fold: the key set is a union, so it is order-independent
     anyway, but folding by case index keeps the discipline visible *)
  let cov =
    List.fold_left
      (fun acc (r, keys) ->
        if r.r_failure = None && not r.r_skipped then Runtime.IntSet.union acc keys
        else acc)
      Runtime.IntSet.empty pairs
  in
  let results = post_process ?deadline cfg worker_regs.(0) (List.map fst pairs) in
  let ran = List.length (List.filter (fun r -> not r.r_skipped) results) in
  assemble cfg ~t0 ~worker_regs ~results ~cov_keys:(Runtime.IntSet.cardinal cov)
    ~cov_cases:ran ~mutated:0 ~corpus:None ~interrupted:false

(* ------------------------------------------------------------------ *)
(* Corpus mode: case derivation *)

type derivation =
  | Skip of case_result
  | Eval of {
      d_seed : int;
      d_arch : string;
      d_src : string;
      d_features : string list;
      d_mutant : bool;
    }

(* Derivation is the only phase that reads (and ages) the corpus, so
   it runs sequentially at batch boundaries; everything it consumes —
   the corpus state and a per-case rng — is deterministic in (master
   seed, case index, corpus state), which the batch discipline keeps
   identical for any [jobs]. *)
let derive_case cfg (corpus : Corpus.t) ~deadline (i : int) : derivation =
  let seed = case_seed cfg.seed i in
  let expired =
    match deadline with Some d -> Obs.Clock.now () > d | None -> false
  in
  if expired then Skip (skipped_result cfg i)
  else begin
    let rng = Random.State.make [| seed; 0xC0FFEE |] in
    let arch_names = List.map Randprog.arch_name cfg.archs in
    let bases =
      List.filter (fun e -> List.mem e.Corpus.arch arch_names) (Corpus.entries corpus)
    in
    let fresh () =
      let arch = case_arch cfg i in
      let gen = Randprog.generate_for ~arch ~seed in
      Eval
        {
          d_seed = seed;
          d_arch = Randprog.arch_name arch;
          d_src = gen.Randprog.src;
          d_features = gen.Randprog.features;
          d_mutant = false;
        }
    in
    let warm = List.length bases >= corpus.Corpus.min_size in
    if not (warm && Random.State.float rng 1.0 < cfg.mutation_ratio) then fresh ()
    else begin
      (* a mutant must parse, type, and fit both the oracle and the
         simulator *before* it spends a case budget; anything else is
         discarded and a few more attempts are made (structured
         prepare failures are the expected mutator fallout — an
         exception from [prepare_result] would be a real bug, and the
         QCheck property in the test suite hunts for those) *)
      let validate arch src =
        match Oracle.prepare_result (target_of arch) src with
        | Ok _ -> (
            match Sim.Harness.prepare ~fault:cfg.fault ~seed ~arch src with
            | _ -> true
            | exception _ -> false)
        | Error _ -> false
        | exception _ -> false
      in
      let rec attempt k =
        if k >= 3 then fresh ()
        else begin
          let base = List.nth bases (Random.State.int rng (List.length bases)) in
          let donor =
            match
              List.filter
                (fun e -> e.Corpus.id <> base.Corpus.id && e.Corpus.arch = base.Corpus.arch)
                bases
            with
            | [] -> None
            | ds -> Some (List.nth ds (Random.State.int rng (List.length ds))).Corpus.src
          in
          match Mutate.mutate ~seed:((seed * 31) + k) ?donor base.Corpus.src with
          | None -> attempt (k + 1)
          | Some m when not (validate base.Corpus.arch m.Mutate.m_src) -> attempt (k + 1)
          | Some m ->
              Corpus.note_mutation corpus ~id:base.Corpus.id;
              if List.exists (String.starts_with ~prefix:"splice_") m.Mutate.m_ops then
                Corpus.note_splice corpus;
              let features =
                match P4.Parser.parse_program m.Mutate.m_src with
                | p -> Randprog.tags_of_program p
                | exception _ -> []
              in
              Eval
                {
                  d_seed = seed;
                  d_arch = base.Corpus.arch;
                  d_src = m.Mutate.m_src;
                  d_features = features;
                  d_mutant = true;
                }
        end
      in
      attempt 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Corpus mode: resume checkpoint.

   [corpus_dir]/campaign.ck records the completed prefix of a
   campaign, flushed after every batch alongside the corpus itself.
   A checkpoint only resumes a campaign with the *same* semantic
   config (digest below; [jobs]/[out_dir]/reduction knobs are
   excluded — they don't affect case results); a completed or
   mismatching checkpoint is ignored, so re-running a finished
   campaign starts a fresh one that accumulates onto the corpus. *)

let ck_magic = "p4tg-campaign-v1"

let ck_path dir = Filename.concat dir "campaign.ck"

let config_digest cfg =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            string_of_int cfg.cases;
            string_of_int cfg.seed;
            String.concat "," (List.map Randprog.arch_name cfg.archs);
            string_of_int cfg.max_tests;
            Sim.Mutation.fault_name cfg.fault;
            string_of_bool cfg.sequences;
            Printf.sprintf "%.4f" cfg.mutation_ratio;
            string_of_int cfg.corpus_batch;
          ]))

let save_checkpoint dir cfg ~done_ (results : case_result list) =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf (ck_magic ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "config %s cases %d done %d\n" (config_digest cfg) cfg.cases done_);
  List.iter
    (fun r ->
      (match r.r_failure with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "case i=%d arch=%s seed=%d tests=%d skipped=%d features=%s fail=0\n"
               r.r_case r.r_arch r.r_seed r.r_tests
               (if r.r_skipped then 1 else 0)
               (String.concat "," r.r_features))
      | Some f ->
          Buffer.add_string buf
            (Printf.sprintf
               "case i=%d arch=%s seed=%d tests=%d skipped=%d features=%s fail=1 kind=%s detail_bytes=%d src_bytes=%d\n"
               r.r_case r.r_arch r.r_seed r.r_tests
               (if r.r_skipped then 1 else 0)
               (String.concat "," r.r_features)
               f.f_kind (String.length f.f_detail) (String.length f.f_source));
          Buffer.add_string buf f.f_detail;
          Buffer.add_char buf '\n';
          Buffer.add_string buf f.f_source;
          Buffer.add_char buf '\n'))
    results;
  let tmp = ck_path dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc buf;
  close_out oc;
  Sys.rename tmp (ck_path dir)

let load_checkpoint dir cfg : (case_result list * int) option =
  let file = ck_path dir in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          if input_line ic <> ck_magic then None
          else
            match String.split_on_char ' ' (input_line ic) with
            | [ "config"; digest; "cases"; cases; "done"; done_ ] ->
                let cases = int_of_string cases and done_ = int_of_string done_ in
                if digest <> config_digest cfg || cases <> cfg.cases || done_ >= cases
                then None
                else begin
                  let results = ref [] in
                  for _ = 1 to done_ do
                    let kvs =
                      match String.split_on_char ' ' (input_line ic) with
                      | "case" :: rest ->
                          List.map
                            (fun tok ->
                              match String.index_opt tok '=' with
                              | Some j ->
                                  ( String.sub tok 0 j,
                                    String.sub tok (j + 1) (String.length tok - j - 1) )
                              | None -> raise Exit)
                            rest
                      | _ -> raise Exit
                    in
                    let geti k = int_of_string (List.assoc k kvs) in
                    let gets k = List.assoc k kvs in
                    let blob n =
                      let s = really_input_string ic n in
                      (match input_char ic with '\n' -> () | _ -> raise Exit);
                      s
                    in
                    let failure =
                      if geti "fail" = 0 then None
                      else
                        let detail = blob (geti "detail_bytes") in
                        let source = blob (geti "src_bytes") in
                        Some
                          {
                            f_case = geti "i";
                            f_arch = gets "arch";
                            f_seed = geti "seed";
                            f_kind = gets "kind";
                            f_detail = detail;
                            f_source = source;
                            f_reduced = None;
                            f_file = None;
                          }
                    in
                    (* blobs read above before the record is built *)
                    results :=
                      {
                        r_case = geti "i";
                        r_arch = gets "arch";
                        r_seed = geti "seed";
                        r_tests = geti "tests";
                        r_features =
                          (match gets "features" with
                          | "" -> []
                          | s -> String.split_on_char ',' s);
                        r_failure = failure;
                        r_skipped = geti "skipped" = 1;
                      }
                      :: !results
                  done;
                  Some (List.rev !results, done_)
                end
            | _ -> None
        with
        | End_of_file | Exit | Not_found | Failure _ -> None)

(* ------------------------------------------------------------------ *)
(* The corpus-mode driver: batch-synchronous evolve/evaluate loop *)

let run_corpus (cfg : config) (dir : string) : summary =
  let t0 = Obs.Clock.now () in
  let deadline = Option.map (fun s -> t0 +. s) cfg.max_seconds in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let corpus =
    match Corpus.load dir with Some c -> c | None -> Corpus.create ()
  in
  (* obs mirrors report this run's activity as deltas over the loaded
     (cumulative) corpus counters *)
  let admits0 = corpus.Corpus.admits
  and evict0 = corpus.Corpus.evictions
  and novelty0 = corpus.Corpus.coverage_novelty
  and mut0 = corpus.Corpus.mutations_total
  and splice0 = corpus.Corpus.splice_sources in
  let n = cfg.cases in
  let out = Array.make n None in
  let restored, start =
    match load_checkpoint dir cfg with Some (rs, k) -> (rs, k) | None -> ([], 0)
  in
  List.iter (fun r -> if r.r_case < n then out.(r.r_case) <- Some r) restored;
  let worker_regs =
    Array.init (max 1 cfg.jobs) (fun _ -> Obs.Registry.create ~record_spans:true ())
  in
  let main_reg = worker_regs.(0) in
  let extra = Explore.Pool.acquire (cfg.jobs - 1) in
  let batch = max 1 cfg.corpus_batch in
  let mutated = ref 0 in
  let interrupted = ref false in
  let b = ref start in
  while !b < n && not !interrupted do
    (* batch boundaries sit at fixed multiples of [corpus_batch], so a
       resumed campaign re-enters exactly where the checkpoint left *)
    let b0 = !b in
    let b1 = min n (b0 + batch - (b0 mod batch)) in
    let m = b1 - b0 in
    (* phase A — sequential derivation (reads + ages the corpus) *)
    let derivs = Array.init m (fun k -> derive_case cfg corpus ~deadline (b0 + k)) in
    (* phase B — parallel evaluation (pure w.r.t. the corpus) *)
    let keys = Array.make m Runtime.IntSet.empty in
    let nextb = Atomic.make 0 in
    let worker wid () =
      let reg = worker_regs.(wid) in
      let rec loop () =
        let k = Atomic.fetch_and_add nextb 1 in
        if k < m then begin
          (match derivs.(k) with
          | Skip r -> out.(b0 + k) <- Some r
          | Eval d ->
              let i = b0 + k in
              let span =
                Obs.Span.enter reg ~args:[ ("case", string_of_int i) ] "case"
              in
              let r, ks =
                eval_case cfg reg ~i ~seed:d.d_seed ~arch_name:d.d_arch
                  ~src:d.d_src ~features:d.d_features
              in
              Obs.Span.exit reg span;
              keys.(k) <- ks;
              out.(i) <- Some r);
          loop ()
        end
      in
      loop ()
    in
    if extra = 0 then worker 0 ()
    else begin
      let domains = List.init extra (fun j -> Domain.spawn (worker (j + 1))) in
      worker 0 ();
      List.iter Domain.join domains
    end;
    (* phase C — sequential in-order fold: admission + counters *)
    for k = 0 to m - 1 do
      match (derivs.(k), out.(b0 + k)) with
      | Eval d, Some r ->
          if d.d_mutant then incr mutated;
          if
            r.r_failure = None && not r.r_skipped
            && cfg.fault = Sim.Mutation.No_fault
          then begin
            let ks = Corpus.ISet.of_list (Runtime.IntSet.elements keys.(k)) in
            ignore
              (Corpus.observe corpus ~src:d.d_src ~arch:d.d_arch ~tags:d.d_features
                 ~keys:ks)
          end
      | _ -> ()
    done;
    (* checkpoint: corpus first, then the campaign prefix *)
    Corpus.save corpus dir;
    let prefix =
      List.init b1 (fun i -> out.(i)) |> List.filter_map Fun.id
    in
    save_checkpoint dir cfg ~done_:b1 prefix;
    (match cfg.interrupt_after with
    | Some k when b1 >= k -> interrupted := true
    | _ -> ());
    b := b1
  done;
  if extra > 0 then Explore.Pool.release extra;
  Obs.Counter.add (Obs.Registry.counter main_reg "corpus.admits")
    (corpus.Corpus.admits - admits0);
  Obs.Counter.add (Obs.Registry.counter main_reg "corpus.evictions")
    (corpus.Corpus.evictions - evict0);
  Obs.Counter.add (Obs.Registry.counter main_reg "corpus.coverage_novelty")
    (corpus.Corpus.coverage_novelty - novelty0);
  Obs.Counter.add (Obs.Registry.counter main_reg "corpus.mutations")
    (corpus.Corpus.mutations_total - mut0);
  Obs.Counter.add (Obs.Registry.counter main_reg "corpus.splice_sources")
    (corpus.Corpus.splice_sources - splice0);
  let results = Array.to_list out |> List.filter_map Fun.id in
  let results =
    if !interrupted then results
    else begin
      (* campaign complete: the checkpoint is consumed (a re-run with
         the same config starts fresh and accumulates on the corpus) *)
      if Sys.file_exists (ck_path dir) then Sys.remove (ck_path dir);
      post_process ?deadline cfg main_reg results
    end
  in
  assemble cfg ~t0 ~worker_regs ~results
    ~cov_keys:(Corpus.ISet.cardinal corpus.Corpus.seen)
    ~cov_cases:corpus.Corpus.cases_seen ~mutated:!mutated ~corpus:(Some corpus)
    ~interrupted:!interrupted

(* ------------------------------------------------------------------ *)
(* Entry point *)

let run (cfg : config) : summary =
  match cfg.corpus_dir with
  | Some dir -> run_corpus cfg dir
  | None -> run_random cfg

(* ------------------------------------------------------------------ *)
(* Reporting *)

(** The canonical scheduling-independent summary: everything except
    wall-clock.  [jobs=1] and [jobs=N] must render identically, and a
    killed+resumed corpus campaign must render identically to an
    uninterrupted one. *)
let summary_line (s : summary) : string =
  let base =
    Printf.sprintf
      "cases=%d ran=%d skipped=%d failures=%d tests=%d features=%d/%d cov1000=%.1f"
      s.s_config.cases s.s_ran s.s_skipped (List.length s.s_failures) s.s_tests
      (List.length s.s_features)
      (List.length Randprog.feature_universe)
      (cov_per_1000 s)
  in
  match s.s_corpus with
  | None -> base
  | Some c ->
      base
      ^ Printf.sprintf " corpus=%d admits=%d evict=%d mut=%d splice=%d"
          (Corpus.size c) c.Corpus.admits c.Corpus.evictions
          c.Corpus.mutations_total c.Corpus.splice_sources

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "selftest: %s (%.2fs)@." (summary_line s) s.s_wall;
  if s.s_interrupted then
    Format.fprintf ppf "  interrupted (checkpoint kept; re-run to resume)@.";
  List.iter
    (fun f ->
      Format.fprintf ppf "  FAIL case %d (%s, seed %d): %s@." f.f_case f.f_arch f.f_seed
        f.f_kind;
      (match String.split_on_char '\n' f.f_detail with
      | first :: _ -> Format.fprintf ppf "    %s@." first
      | [] -> ());
      (match f.f_reduced with
      | Some r ->
          Format.fprintf ppf "    reduced: %d lines (%d edits, %d rounds)@."
            (Reduce.line_count r.Reduce.reduced)
            r.Reduce.steps r.Reduce.rounds
      | None -> ());
      match f.f_file with
      | Some file -> Format.fprintf ppf "    repro: %s@." file
      | None -> ())
    s.s_failures
