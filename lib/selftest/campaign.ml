(* The self-validation campaign engine (§7/§8).

   Each case draws a random well-typed program from
   {!Progzoo.Randprog}, generates its whole test suite with the
   oracle, and executes every test on the independent concrete
   simulator ({!Sim.Harness}).  Any disagreement — a failing
   expectation, a model crash, an oracle exception — is a campaign
   failure.  On a cadence, cases additionally check cross-cutting
   invariants that pass/fail alone would miss:

   - seed determinism: regenerating with the same seed yields the
     bit-identical suite;
   - parallel determinism: the frontier driver ([path_jobs >= 1])
     yields the same suite as sequential DFS;
   - strategy agreement: the Rnd and Cov exploration orders also
     produce suites that pass on the model.

   Cases run in parallel over the process-wide {!Explore.Pool} domain
   budget, with results stored by case index and folded in order, so
   the campaign summary is bit-identical for any [jobs] value.
   Failures are reduced *after* the parallel phase, sequentially and
   in case order, by {!Reduce} — reduction cost therefore never skews
   the summary, and repros land deterministically. *)

module Oracle = Testgen.Oracle
module Explore = Testgen.Explore
module Runtime = Testgen.Runtime
module Testspec = Testgen.Testspec
module Randprog = Progzoo.Randprog

type config = {
  cases : int;
  jobs : int;  (** worker domains (1 = sequential) *)
  seed : int;  (** master seed; every case seed derives from it *)
  max_seconds : float option;
      (** wall-clock box: cases not started in time are skipped (the
          summary then reports [skipped > 0] and is only comparable
          across [jobs] values when the box never triggers) *)
  archs : Randprog.arch list;  (** round-robin per case *)
  max_tests : int;  (** oracle budget per case *)
  fault : Sim.Mutation.fault;  (** seeded simulator fault (campaign
          self-test: [No_fault] for real validation runs) *)
  reduce : bool;  (** shrink failing programs to minimal repros *)
  reduce_limit : int;  (** reduce at most this many failures *)
  out_dir : string option;  (** write repro .p4 files here *)
  sequences : bool;
      (** explore multi-packet test sequences: each case injects 2–3
          packets (derived deterministically from its seed) against one
          persistent model state *)
}

let default_config =
  {
    cases = 50;
    jobs = 1;
    seed = 1;
    max_seconds = None;
    archs = Randprog.all_archs;
    max_tests = 12;
    fault = Sim.Mutation.No_fault;
    reduce = true;
    reduce_limit = 3;
    out_dir = None;
    sequences = false;
  }

type failure = {
  f_case : int;
  f_arch : string;
  f_seed : int;
  f_kind : string;  (** [wrong_output] / [crash] / [oracle_error] / [invariant] *)
  f_detail : string;
  f_source : string;  (** the generated program *)
  f_reduced : Reduce.outcome option;  (** set by the reduction post-pass *)
  f_file : string option;  (** repro path when [out_dir] is set *)
}

type case_result = {
  r_case : int;
  r_arch : string;
  r_seed : int;
  r_tests : int;  (** tests the oracle generated *)
  r_features : string list;
  r_failure : failure option;
  r_skipped : bool;  (** the time box expired before this case started *)
}

type summary = {
  s_config : config;
  s_results : case_result list;  (** in case order *)
  s_failures : failure list;  (** post-reduction, in case order *)
  s_ran : int;
  s_skipped : int;
  s_tests : int;
  s_features : string list;  (** union of generator features exercised *)
  s_wall : float;
  s_obs : Obs.Snapshot.t;  (** merged per-worker registries *)
  s_workers : (string * Obs.Registry.t) list;  (** for trace export *)
}

(* deterministic per-case derivation from the master seed *)
let case_seed master i = (((master * 1_000_003) + (i * 7919)) land 0x3FFFFFFF) + 1
let case_arch cfg i = List.nth cfg.archs (i mod List.length cfg.archs)

(* ------------------------------------------------------------------ *)
(* One differential run: oracle suite vs. concrete model *)

type pipeline_outcome =
  | All_pass of int  (** number of tests, all passing *)
  | Diff of string * string  (** kind, detail *)

let target_of arch = Option.get (Targets.Registry.find arch)

let run_pipeline ?(explore = Explore.default_config) ?(seq_packets = 1) ~fault ~arch
    ~seed ~max_tests src : pipeline_outcome =
  let opts = { Runtime.default_options with seed; seq_packets } in
  let config = { explore with Explore.max_tests = Some max_tests } in
  match Oracle.generate ~opts ~config (target_of arch) src with
  | exception e -> Diff ("oracle_error", Printexc.to_string e)
  | run -> (
      let tests = run.Oracle.result.Explore.tests in
      match Sim.Harness.prepare ~fault ~seed ~arch src with
      | exception e -> Diff ("crash", "sim prepare: " ^ Printexc.to_string e)
      | sim -> (
          let _, results = Sim.Harness.run_suite sim tests in
          let first_bad =
            List.find_opt (fun (_, v) -> v <> Sim.Harness.Pass) results
          in
          match first_bad with
          | None -> All_pass (List.length tests)
          | Some (t, Sim.Harness.Wrong_output msg) ->
              Diff ("wrong_output", msg ^ "\n" ^ Testspec.to_string t)
          | Some (t, Sim.Harness.Crash msg) ->
              Diff ("crash", msg ^ "\n" ^ Testspec.to_string t)
          | Some (_, Sim.Harness.Pass) -> assert false))

let suite_fingerprint tests = String.concat "\n--\n" (List.map Testspec.to_string tests)

(* the cadenced cross-cutting invariants; [None] = all hold *)
let check_invariants ~arch ~seed ~max_tests ~seq_packets ~(i : int) src :
    (string * string) option =
  let opts = { Runtime.default_options with seed; seq_packets } in
  let gen config = (Oracle.generate ~opts ~config (target_of arch) src).Oracle.result.Explore.tests in
  let base_cfg = { Explore.default_config with Explore.max_tests = Some max_tests } in
  let checks = ref [] in
  if i mod 5 = 0 then
    checks :=
      ( "seed determinism",
        fun () ->
          let a = gen base_cfg and b = gen base_cfg in
          if suite_fingerprint a <> suite_fingerprint b then
            Some "same seed produced two different suites"
          else None )
      :: !checks;
  if i mod 7 = 0 then
    checks :=
      ( "path_jobs determinism",
        fun () ->
          (* the frontier driver's contract: bit-identical suites for
             any path_jobs >= 1 (pj=1 is the reference; pj=0, the
             classic sequential DFS, may order tests differently) *)
          let ref_ = gen { base_cfg with Explore.path_jobs = 1 } in
          let par = gen { base_cfg with Explore.path_jobs = 2 } in
          if suite_fingerprint ref_ <> suite_fingerprint par then
            Some "path_jobs=2 suite differs from the path_jobs=1 reference"
          else None )
      :: !checks;
  if i mod 3 = 0 then begin
    let strategy_check name strat =
      ( Printf.sprintf "%s strategy validates" name,
        fun () ->
          match
            run_pipeline
              ~explore:{ Explore.default_config with Explore.strategy = strat }
              ~seq_packets ~fault:Sim.Mutation.No_fault ~arch ~seed ~max_tests src
          with
          | All_pass _ -> None
          | Diff (kind, detail) -> Some (kind ^ ": " ^ detail) )
    in
    checks := strategy_check "Rnd" Explore.Rnd :: !checks;
    if i mod 6 = 0 then checks := strategy_check "Cov" Explore.Cov :: !checks
  end;
  List.fold_left
    (fun acc (name, check) ->
      match acc with
      | Some _ -> acc
      | None -> ( match check () with Some d -> Some (name, d) | None -> None))
    None (List.rev !checks)

(* ------------------------------------------------------------------ *)
(* Case execution *)

let run_case cfg (reg : Obs.Registry.t) (i : int) : case_result =
  let seed = case_seed cfg.seed i in
  let arch = case_arch cfg i in
  let arch_name = Randprog.arch_name arch in
  let gen = Randprog.generate_for ~arch ~seed in
  let fail kind detail =
    {
      f_case = i;
      f_arch = arch_name;
      f_seed = seed;
      f_kind = kind;
      f_detail = detail;
      f_source = gen.Randprog.src;
      f_reduced = None;
      f_file = None;
    }
  in
  let mk failure tests =
    {
      r_case = i;
      r_arch = arch_name;
      r_seed = seed;
      r_tests = tests;
      r_features = gen.Randprog.features;
      r_failure = failure;
      r_skipped = false;
    }
  in
  Obs.Counter.incr (Obs.Registry.counter reg "selftest.cases");
  (* sequence mode: 2–3 packets per test, derived from the case seed so
     the choice is identical for any [jobs] value *)
  let seq_packets = if cfg.sequences then 2 + (seed mod 2) else 1 in
  if cfg.sequences then
    Obs.Counter.incr (Obs.Registry.counter reg "selftest.sequence_cases");
  let t = Obs.Registry.timer reg "selftest.case_time" in
  Obs.Timer.time t (fun () ->
      match
        run_pipeline ~seq_packets ~fault:cfg.fault ~arch:arch_name ~seed
          ~max_tests:cfg.max_tests gen.Randprog.src
      with
      | Diff (kind, detail) ->
          Obs.Counter.incr (Obs.Registry.counter reg "selftest.failures");
          mk (Some (fail kind detail)) 0
      | All_pass n -> (
          Obs.Counter.add (Obs.Registry.counter reg "selftest.tests") n;
          (* invariants only make sense on a program that validates; a
             seeded fault intentionally breaks differential runs, so
             skip them then *)
          if cfg.fault <> Sim.Mutation.No_fault then mk None n
          else
            match
              check_invariants ~arch:arch_name ~seed ~max_tests:cfg.max_tests
                ~seq_packets ~i gen.Randprog.src
            with
            | Some (name, detail) ->
                Obs.Counter.incr (Obs.Registry.counter reg "selftest.failures");
                Obs.Counter.incr (Obs.Registry.counter reg "selftest.invariant_failures");
                mk (Some (fail "invariant" (name ^ ": " ^ detail))) n
            | None -> mk None n))

(* ------------------------------------------------------------------ *)
(* Reduction post-pass *)

let reduce_failure cfg (reg : Obs.Registry.t) (f : failure) : failure =
  (* "still fails the same way": same kind, under the same seed/fault
     (and the same sequence length, re-derived from the case seed) *)
  let seq_packets = if cfg.sequences then 2 + (f.f_seed mod 2) else 1 in
  let keep src =
    match
      run_pipeline ~seq_packets ~fault:cfg.fault ~arch:f.f_arch ~seed:f.f_seed
        ~max_tests:cfg.max_tests src
    with
    | Diff (kind, _) -> kind = f.f_kind
    | All_pass _ -> false
  in
  if f.f_kind = "invariant" then f  (* invariant breaks rarely survive shrinking *)
  else begin
    (* candidate programs legitimately break (dangling action names,
       dead states): the oracle's per-path warnings are noise here *)
    let saved = Logs.level () in
    Logs.set_level (Some Logs.Error);
    let outcome =
      Fun.protect
        ~finally:(fun () -> Logs.set_level saved)
        (fun () -> Reduce.reduce ~keep f.f_source)
    in
    Obs.Counter.add (Obs.Registry.counter reg "selftest.reduce_steps") outcome.Reduce.steps;
    Obs.Counter.incr (Obs.Registry.counter reg "selftest.reduced");
    { f with f_reduced = Some outcome }
  end

let write_repro cfg (f : failure) : failure =
  match cfg.out_dir with
  | None -> f
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let file = Filename.concat dir (Printf.sprintf "case%04d_%s.p4" f.f_case f.f_arch) in
      let oc = open_out file in
      let body =
        match f.f_reduced with Some r -> r.Reduce.reduced | None -> f.f_source
      in
      Printf.fprintf oc "// arch: %s\n// seed: %d\n// case: %d  kind: %s\n" f.f_arch
        f.f_seed f.f_case f.f_kind;
      (match cfg.fault with
      | Sim.Mutation.No_fault -> ()
      | fault -> Printf.fprintf oc "// fault: %s\n" (Sim.Mutation.fault_name fault));
      List.iter
        (fun l -> Printf.fprintf oc "// detail: %s\n" l)
        (String.split_on_char '\n' f.f_detail |> List.filteri (fun i _ -> i < 3));
      output_string oc body;
      if body = "" || body.[String.length body - 1] <> '\n' then output_char oc '\n';
      close_out oc;
      { f with f_file = Some file }

(* ------------------------------------------------------------------ *)
(* The parallel driver *)

let run (cfg : config) : summary =
  let t0 = Obs.Clock.now () in
  let deadline = Option.map (fun s -> t0 +. s) cfg.max_seconds in
  let n = cfg.cases in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let worker_regs =
    Array.init (max 1 cfg.jobs) (fun _ -> Obs.Registry.create ~record_spans:true ())
  in
  let worker wid () =
    let reg = worker_regs.(wid) in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let skipped =
          match deadline with Some d -> Obs.Clock.now () > d | None -> false
        in
        (out.(i) <-
          (if skipped then
             Some
               {
                 r_case = i;
                 r_arch = Randprog.arch_name (case_arch cfg i);
                 r_seed = case_seed cfg.seed i;
                 r_tests = 0;
                 r_features = [];
                 r_failure = None;
                 r_skipped = true;
               }
           else
             let span = Obs.Span.enter reg ~args:[ ("case", string_of_int i) ] "case" in
             let r = run_case cfg reg i in
             Obs.Span.exit reg span;
             Some r));
        loop ()
      end
    in
    loop ()
  in
  let extra = Explore.Pool.acquire (cfg.jobs - 1) in
  if extra = 0 then worker 0 ()
  else begin
    let domains = List.init extra (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    Explore.Pool.release extra
  end;
  let results = Array.to_list out |> List.filter_map Fun.id in
  (* sequential, case-ordered reduction post-pass *)
  let main_reg = worker_regs.(0) in
  let reduced = ref 0 in
  let results =
    List.map
      (fun r ->
        match r.r_failure with
        | Some f ->
            let f =
              if cfg.reduce && !reduced < cfg.reduce_limit then begin
                incr reduced;
                reduce_failure cfg main_reg f
              end
              else f
            in
            let f = write_repro cfg f in
            { r with r_failure = Some f }
        | None -> r)
      results
  in
  let failures = List.filter_map (fun r -> r.r_failure) results in
  let features =
    List.sort_uniq compare (List.concat_map (fun r -> r.r_features) results)
  in
  let merged_obs =
    Array.fold_left
      (fun acc reg -> Obs.Snapshot.merge acc (Obs.Registry.snapshot reg))
      Obs.Snapshot.empty worker_regs
  in
  {
    s_config = cfg;
    s_results = results;
    s_failures = failures;
    s_ran = List.length (List.filter (fun r -> not r.r_skipped) results);
    s_skipped = List.length (List.filter (fun r -> r.r_skipped) results);
    s_tests = List.fold_left (fun a r -> a + r.r_tests) 0 results;
    s_features = features;
    s_wall = Obs.Clock.now () -. t0;
    s_obs = merged_obs;
    s_workers =
      Array.to_list (Array.mapi (fun i r -> (Printf.sprintf "selftest-w%d" i, r)) worker_regs);
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

(** The canonical scheduling-independent summary: everything except
    wall-clock.  [jobs=1] and [jobs=N] must render identically. *)
let summary_line (s : summary) : string =
  Printf.sprintf "cases=%d ran=%d skipped=%d failures=%d tests=%d features=%d/%d"
    s.s_config.cases s.s_ran s.s_skipped (List.length s.s_failures) s.s_tests
    (List.length s.s_features)
    (List.length Randprog.feature_universe)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "selftest: %s (%.2fs)@." (summary_line s) s.s_wall;
  List.iter
    (fun f ->
      Format.fprintf ppf "  FAIL case %d (%s, seed %d): %s@." f.f_case f.f_arch f.f_seed
        f.f_kind;
      (match String.split_on_char '\n' f.f_detail with
      | first :: _ -> Format.fprintf ppf "    %s@." first
      | [] -> ());
      (match f.f_reduced with
      | Some r ->
          Format.fprintf ppf "    reduced: %d lines (%d edits, %d rounds)@."
            (Reduce.line_count r.Reduce.reduced)
            r.Reduce.steps r.Reduce.rounds
      | None -> ());
      match f.f_file with
      | Some file -> Format.fprintf ppf "    repro: %s@." file
      | None -> ())
    s.s_failures
