(* Type-preserving AST mutators for the coverage-guided corpus.

   The campaign's mutate-don't-regenerate loop (ROADMAP item 3,
   Fuzzilli-style; Gauntlet applies the same idea to P4 compilers):
   instead of drawing every case from scratch, corpus members are
   perturbed — constants and entry priorities jittered, match kinds
   flipped, pipelines and header stacks grown or shrunk, and whole
   tables or parser states spliced *between* corpus members — so deep
   oracle paths reached once keep being exercised in nearby variants.

   Mutators are *type-preserving by intent, validated by the caller*:
   every mutant is pretty-printed back to source and must survive
   [Oracle.prepare_result] before it is used, so a mutator may produce
   an ill-typed program (a spliced table whose actions touch metadata
   the recipient lacks) and simply be discarded.  What a mutator must
   never do is (a) raise, or (b) leave the *defined-behavior*
   discipline of {!Progzoo.Randprog}: reads the generator leaves
   undefined are tainted by the oracle and randomized by the
   simulator, so differential runs stay sound either way.

   Everything is deterministic under the caller's [Random.State]: the
   same seed, recipient and donor produce the same mutant. *)

open P4.Ast

type rng = Random.State.t

let pick (st : rng) (xs : 'a list) =
  List.nth xs (Random.State.int st (List.length xs))

let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

(* ------------------------------------------------------------------ *)
(* A generic traversal over every *mutable-constant* expression site.

   [EIndex] indices and call arguments are deliberately left alone:
   header-stack indices and extern arguments (register cell numbers)
   are structural — perturbing them buys nothing but out-of-bounds
   rejections. *)

let rec map_expr (f : expr -> expr) (e : expr) : expr =
  let e =
    match e with
    | EMember (a, n) -> EMember (map_expr f a, n)
    | EIndex (a, i) -> EIndex (map_expr f a, i)
    | ESlice (a, hi, lo) -> ESlice (map_expr f a, hi, lo)
    | EUnop (op, a) -> EUnop (op, map_expr f a)
    | EBinop (op, a, b) -> EBinop (op, map_expr f a, map_expr f b)
    | ETernary (c, t, e') -> ETernary (map_expr f c, map_expr f t, map_expr f e')
    | ECast (t, a) -> ECast (t, map_expr f a)
    | EList es -> EList (List.map (map_expr f) es)
    | EMask (a, m) -> EMask (map_expr f a, map_expr f m)
    | ERange (a, b) -> ERange (map_expr f a, map_expr f b)
    | ECall _ | EBool _ | EInt _ | EString _ | EVar _ | ETypeArg _
    | EDontCare | EDefault ->
        e
  in
  f e

let rec map_stmt f (s : stmt) : stmt =
  match s with
  | SAssign (p, l, r) -> SAssign (p, l, map_expr f r)
  | SIf (p, c, t, e) ->
      SIf (p, map_expr f c, List.map (map_stmt f) t, List.map (map_stmt f) e)
  | SSwitch (p, e, cases) ->
      SSwitch
        ( p,
          e,
          List.map
            (fun c -> { c with sw_body = Option.map (List.map (map_stmt f)) c.sw_body })
            cases )
  | SBlock b -> SBlock (List.map (map_stmt f) b)
  | SVarDecl (p, t, n, i) -> SVarDecl (p, t, n, Option.map (map_expr f) i)
  | SCall _ | SConstDecl _ | SReturn _ | SExit _ | SEmpty -> s

let map_local f = function
  | LAction a -> LAction { a with act_body = List.map (map_stmt f) a.act_body }
  | LTable t ->
      LTable
        {
          t with
          tbl_entries =
            List.map
              (fun e ->
                {
                  e with
                  te_keys = List.map (map_expr f) e.te_keys;
                  te_args = List.map (map_expr f) e.te_args;
                })
              t.tbl_entries;
        }
  | l -> l

let map_state f (st : parser_state) =
  {
    st with
    st_trans =
      (match st.st_trans with
      | TrDirect _ as t -> t
      | TrSelect (ks, cases) ->
          TrSelect
            ( ks,
              List.map
                (fun c -> { c with sel_keys = List.map (map_expr f) c.sel_keys })
                cases ));
  }

let map_const_sites (f : expr -> expr) (prog : program) : program =
  List.map
    (fun d ->
      match d with
      | DControl (cd, annos) ->
          DControl
            ( {
                cd with
                c_locals = List.map (map_local f) cd.c_locals;
                c_body = List.map (map_stmt f) cd.c_body;
              },
              annos )
      | DParser (pd, annos) ->
          DParser
            ( {
                pd with
                p_locals = List.map (map_local f) pd.p_locals;
                p_states = List.map (map_state f) pd.p_states;
              },
              annos )
      | DAction a -> DAction { a with act_body = List.map (map_stmt f) a.act_body }
      | d -> d)
    prog

(* ------------------------------------------------------------------ *)
(* 1. perturb a constant (value jitter inside the declared width) *)

let perturb_const (st : rng) ~donor:_ (prog : program) : program option =
  let count = ref 0 in
  ignore
    (map_const_sites
       (fun e -> (match e with EInt _ -> incr count | _ -> ()); e)
       prog);
  if !count = 0 then None
  else begin
    let target = Random.State.int st !count in
    let jitter ~iv ~width ~signed =
      let mask v =
        match width with
        | Some w when w < 62 -> v land ((1 lsl w) - 1)
        | _ -> max 0 v
      in
      let flip_bit =
        let range = match width with Some w -> max 1 (min w 24) | None -> 16 in
        1 lsl Random.State.int st range
      in
      let candidates =
        [
          0;
          mask (iv + 1);
          mask (iv - 1);
          mask (iv lxor flip_bit);
          (match width with Some w when w < 62 -> (1 lsl w) - 1 | _ -> mask (iv * 2));
        ]
      in
      let iv = pick st candidates in
      EInt
        {
          iv;
          width;
          signed;
          value = Option.map (fun w -> Bitv.Bits.of_int ~width:w iv) width;
        }
    in
    let i = ref (-1) in
    Some
      (map_const_sites
         (fun e ->
           match e with
           | EInt { iv; width; signed; _ } ->
               incr i;
               if !i = target then jitter ~iv ~width ~signed else e
           | e -> e)
         prog)
  end

(* ------------------------------------------------------------------ *)
(* 2. flip a match kind (tables without const entries only: entry
   patterns are written against the declared kind) *)

let flip_match_kind (st : rng) ~donor:_ (prog : program) : program option =
  let sites = ref [] in
  List.iteri
    (fun di d ->
      match d with
      | DControl (cd, _) ->
          List.iteri
            (fun li l ->
              match l with
              | LTable t when t.tbl_entries = [] ->
                  List.iteri (fun ki _ -> sites := (di, li, ki) :: !sites) t.tbl_keys
              | _ -> ())
            cd.c_locals
      | _ -> ())
    prog;
  match List.rev !sites with
  | [] -> None
  | sites ->
      let di, li, ki = pick st sites in
      Some
        (List.mapi
           (fun i d ->
             if i <> di then d
             else
               match d with
               | DControl (cd, annos) ->
                   let locals =
                     List.mapi
                       (fun j l ->
                         if j <> li then l
                         else
                           match l with
                           | LTable t ->
                               let keys =
                                 List.mapi
                                   (fun k (tk : table_key) ->
                                     if k <> ki then tk
                                     else
                                       let others =
                                         List.filter
                                           (fun m -> m <> tk.tk_kind)
                                           [ "exact"; "ternary"; "lpm" ]
                                       in
                                       { tk with tk_kind = pick st others })
                                   t.tbl_keys
                               in
                               LTable { t with tbl_keys = keys }
                           | l -> l)
                       cd.c_locals
                   in
                   DControl ({ cd with c_locals = locals }, annos)
               | d -> d)
           prog)

(* ------------------------------------------------------------------ *)
(* 3. perturb a const-entry priority *)

let perturb_priority (st : rng) ~donor:_ (prog : program) : program option =
  let sites = ref [] in
  List.iteri
    (fun di d ->
      match d with
      | DControl (cd, _) ->
          List.iteri
            (fun li l ->
              match l with
              | LTable t ->
                  List.iteri (fun ei _ -> sites := (di, li, ei) :: !sites) t.tbl_entries
              | _ -> ())
            cd.c_locals
      | _ -> ())
    prog;
  match List.rev !sites with
  | [] -> None
  | sites ->
      let di, li, ei = pick st sites in
      let prio = Some (1 + Random.State.int st 9) in
      Some
        (List.mapi
           (fun i d ->
             if i <> di then d
             else
               match d with
               | DControl (cd, annos) ->
                   let locals =
                     List.mapi
                       (fun j l ->
                         if j <> li then l
                         else
                           match l with
                           | LTable t ->
                               LTable
                                 {
                                   t with
                                   tbl_entries =
                                     List.mapi
                                       (fun k e ->
                                         if k <> ei then e
                                         else { e with te_priority = prio })
                                       t.tbl_entries;
                                 }
                           | l -> l)
                       cd.c_locals
                   in
                   DControl ({ cd with c_locals = locals }, annos)
               | d -> d)
           prog)

(* ------------------------------------------------------------------ *)
(* 4/5. grow / shrink a pipeline: duplicate or drop one top-level
   statement of the busiest controls.  Dropping an initialization is
   fine differentially (see the module comment) — but never empty a
   body entirely. *)

let body_sites prog =
  let sites = ref [] in
  List.iteri
    (fun di d ->
      match d with
      | DControl (cd, _) when cd.c_body <> [] -> sites := (di, cd) :: !sites
      | _ -> ())
    prog;
  List.rev !sites

let with_body prog di body =
  List.mapi
    (fun i d ->
      if i <> di then d
      else
        match d with
        | DControl (cd, annos) -> DControl ({ cd with c_body = body }, annos)
        | d -> d)
    prog

let dup_stmt (st : rng) ~donor:_ (prog : program) : program option =
  match body_sites prog with
  | [] -> None
  | sites ->
      let di, cd = pick st sites in
      let i = Random.State.int st (List.length cd.c_body) in
      let s = List.nth cd.c_body i in
      let body =
        List.concat (List.mapi (fun j x -> if j = i then [ x; s ] else [ x ]) cd.c_body)
      in
      Some (with_body prog di body)

(* only executable statements are droppable: removing a declaration
   orphans later uses, which fails differently in each engine *)
let droppable = function
  | SVarDecl _ | SConstDecl _ -> false
  | SAssign _ | SCall _ | SIf _ | SSwitch _ | SReturn _ | SExit _ | SBlock _ | SEmpty
    ->
      true

let drop_stmt (st : rng) ~donor:_ (prog : program) : program option =
  let sites =
    List.filter
      (fun (_, cd) ->
        List.length cd.c_body >= 2 && List.exists droppable cd.c_body)
      (body_sites prog)
  in
  match sites with
  | [] -> None
  | sites ->
      let di, cd = pick st sites in
      let idxs =
        List.concat
          (List.mapi (fun j s -> if droppable s then [ j ] else []) cd.c_body)
      in
      let i = pick st idxs in
      Some (with_body prog di (List.filteri (fun j _ -> j <> i) cd.c_body))

(* ------------------------------------------------------------------ *)
(* 5b. deepen a table-key expression: [e] becomes [e op e] (width-safe
   by construction).  This walks the mutant *out of the generator's
   bounded expression grammar* — the resulting canonical shapes are
   ones from-scratch generation can never produce, and they compound
   as corpus members are re-mutated across generations. *)

let complicate_key (st : rng) ~donor:_ (prog : program) : program option =
  let sites = ref [] in
  List.iteri
    (fun di d ->
      match d with
      | DControl (cd, _) ->
          List.iteri
            (fun li l ->
              match l with
              | LTable t ->
                  List.iteri
                    (fun ki (k : table_key) ->
                      (* lpm over a computed expression is not a
                         meaningful prefix match; keep those intact *)
                      if k.tk_kind <> "lpm" then sites := (di, li, ki) :: !sites)
                    t.tbl_keys
              | _ -> ())
            cd.c_locals
      | _ -> ())
    prog;
  match List.rev !sites with
  | [] -> None
  | sites ->
      let di, li, ki = pick st sites in
      let op = pick st [ BAnd; BOr; BXor ] in
      Some
        (List.mapi
           (fun i d ->
             if i <> di then d
             else
               match d with
               | DControl (cd, annos) ->
                   let locals =
                     List.mapi
                       (fun j l ->
                         if j <> li then l
                         else
                           match l with
                           | LTable t ->
                               LTable
                                 {
                                   t with
                                   tbl_keys =
                                     List.mapi
                                       (fun k (tk : table_key) ->
                                         if k <> ki then tk
                                         else
                                           { tk with tk_expr = EBinop (op, tk.tk_expr, tk.tk_expr) })
                                       t.tbl_keys;
                                 }
                           | l -> l)
                       cd.c_locals
                   in
                   DControl ({ cd with c_locals = locals }, annos)
               | d -> d)
           prog)

(* ------------------------------------------------------------------ *)
(* 5c. re-guard a copy of an earlier assignment under the negation of
   an existing condition.  Every operand involved was already
   evaluated before the insertion point, so defined-ness is preserved
   exactly; the branch context is new (fresh if-arm shapes). *)

let guard_dup (st : rng) ~donor:_ (prog : program) : program option =
  let sites = ref [] in
  List.iteri
    (fun di d ->
      match d with
      | DControl (cd, _) ->
          (* (position of an SIf, positions of SAssigns before it) *)
          List.iteri
            (fun k s ->
              match s with
              | SIf (_, _, _, _) ->
                  let assigns =
                    List.concat
                      (List.mapi
                         (fun j s' ->
                           match s' with SAssign _ when j < k -> [ j ] | _ -> [])
                         cd.c_body)
                  in
                  if assigns <> [] then sites := (di, k, assigns) :: !sites
              | _ -> ())
            cd.c_body
      | _ -> ())
    prog;
  match List.rev !sites with
  | [] -> None
  | sites ->
      let di, k, assigns = pick st sites in
      let j = pick st assigns in
      Some
        (List.mapi
           (fun i d ->
             if i <> di then d
             else
               match d with
               | DControl (cd, annos) ->
                   let cond =
                     match List.nth cd.c_body k with
                     | SIf (_, c, _, _) -> c
                     | _ -> assert false
                   in
                   let dup = List.nth cd.c_body j in
                   let guard = SIf (no_pos, EUnop (LNot, cond), [ dup ], []) in
                   let body =
                     List.concat
                       (List.mapi
                          (fun x s -> if x = k then [ s; guard ] else [ s ])
                          cd.c_body)
                   in
                   DControl ({ cd with c_body = body }, annos)
               | d -> d)
           prog)

(* ------------------------------------------------------------------ *)
(* Field compatibility for splices.

   Generated programs share one header-type vocabulary (the type
   declarations are a constant preamble), but each program's
   [headers_t] picks a *subset* of the fields.  A spliced fragment
   that touches [hdr.X] therefore types — and runs — in the recipient
   iff [X] is a field of the recipient's [headers_t]; anything else
   produces an engine-dependent failure (the oracle fails the path,
   the simulator crashes the test), which is a mutator bug, not a
   finding.  Metadata and intrinsic structs are per-arch constants, so
   [hdr] roots are the only membership that needs checking. *)

let struct_field_names prog name =
  List.concat_map
    (function
      | DStruct (n, fs, _) when n = name -> List.map (fun f -> f.f_name) fs
      | _ -> [])
    prog

let rec hdr_roots acc (e : expr) : string list =
  match e with
  | EMember (EVar "hdr", f) -> f :: acc
  | EMember (a, _) | EUnop (_, a) | ECast (_, a) | ESlice (a, _, _) -> hdr_roots acc a
  | EIndex (a, i) -> hdr_roots (hdr_roots acc i) a
  | EBinop (_, a, b) | EMask (a, b) | ERange (a, b) -> hdr_roots (hdr_roots acc a) b
  | ETernary (a, b, c) -> hdr_roots (hdr_roots (hdr_roots acc a) b) c
  | ECall (f, args) -> List.fold_left hdr_roots (hdr_roots acc f) args
  | EList es -> List.fold_left hdr_roots acc es
  | EBool _ | EInt _ | EString _ | EVar _ | ETypeArg _ | EDontCare | EDefault -> acc

let rec stmt_hdr_roots acc (s : stmt) : string list =
  match s with
  | SAssign (_, l, r) -> hdr_roots (hdr_roots acc l) r
  | SCall (_, f, args) -> List.fold_left hdr_roots (hdr_roots acc f) args
  | SIf (_, c, t, e) ->
      let acc = hdr_roots acc c in
      List.fold_left stmt_hdr_roots (List.fold_left stmt_hdr_roots acc t) e
  | SSwitch (_, e, cases) ->
      List.fold_left
        (fun acc c -> Option.fold ~none:acc ~some:(List.fold_left stmt_hdr_roots acc) c.sw_body)
        (hdr_roots acc e) cases
  | SBlock b -> List.fold_left stmt_hdr_roots acc b
  | SVarDecl (_, _, _, i) -> Option.fold ~none:acc ~some:(hdr_roots acc) i
  | SConstDecl (_, _, _, e) -> hdr_roots acc e
  | SReturn (_, e) -> Option.fold ~none:acc ~some:(hdr_roots acc) e
  | SExit _ | SEmpty -> acc

let compatible ~recipient roots =
  let fields = struct_field_names recipient "headers_t" in
  List.for_all (fun r -> List.mem r fields) roots

(* ------------------------------------------------------------------ *)
(* 6. grow a header stack (one more slot for the parser's extraction
   loop and the overflow path).  Growth only: shrinking below the
   number of static extracts turns the overflow path into an
   engine-dependent failure rather than a semantic variant. *)

let resize_stack (st : rng) ~donor:_ (prog : program) : program option =
  let sites = ref [] in
  List.iteri
    (fun di d ->
      match d with
      | DStruct (_, fields, _) ->
          List.iteri
            (fun fi f ->
              match f.f_typ with
              | TStack (_, n) when n < 6 -> sites := (di, fi) :: !sites
              | _ -> ())
            fields
      | _ -> ())
    prog;
  match List.rev !sites with
  | [] -> None
  | sites ->
      let di, fi = pick st sites in
      Some
        (List.mapi
           (fun i d ->
             if i <> di then d
             else
               match d with
               | DStruct (n, fields, annos) ->
                   let fields =
                     List.mapi
                       (fun j f ->
                         if j <> fi then f
                         else
                           match f.f_typ with
                           | TStack (h, n) when n < 6 ->
                               { f with f_typ = TStack (h, n + 1 + Random.State.int st 2) }
                           | _ -> f)
                       fields
                   in
                   DStruct (n, fields, annos)
               | d -> d)
           prog)

(* ------------------------------------------------------------------ *)
(* 7. splice a table (with its actions) from a donor corpus member *)

(* the recipient control most likely to type an imported fragment: the
   one with the most locals (the ingress pipeline), body length as the
   tie-break *)
let busiest_control prog =
  let best = ref None in
  List.iteri
    (fun di d ->
      match d with
      | DControl (cd, _) when cd.c_body <> [] ->
          let score = (List.length cd.c_locals, List.length cd.c_body) in
          (match !best with
          | Some (_, _, s) when s >= score -> ()
          | _ -> best := Some (di, cd, score))
      | _ -> ())
    prog;
  Option.map (fun (di, cd, _) -> (di, cd)) !best

let rename_anno sfx (a : anno) =
  if a.an_name <> "name" then a
  else
    {
      a with
      an_args =
        List.map
          (function
            | AnnoString s -> AnnoString (s ^ sfx)
            | AnnoExpr (EString s) -> AnnoExpr (EString (s ^ sfx))
            | x -> x)
          a.an_args;
    }

let splice_table (st : rng) ~donor (prog : program) : program option =
  match donor with
  | None -> None
  | Some donor -> (
      (* donor tables whose referenced actions are all local to the
         same control (the generator's shape) *)
      let candidates =
        List.concat_map
          (function
            | DControl (cd, _) ->
                List.filter_map
                  (function
                    | LTable t ->
                        let deps =
                          List.filter_map
                            (fun (n, _) ->
                              List.find_map
                                (function
                                  | LAction a when a.act_name = n -> Some a
                                  | _ -> None)
                                cd.c_locals)
                            t.tbl_actions
                        in
                        if List.length deps <> List.length t.tbl_actions then None
                        else
                          let roots =
                            List.fold_left
                              (fun acc (k : table_key) -> hdr_roots acc k.tk_expr)
                              (List.concat_map
                                 (fun a -> List.fold_left stmt_hdr_roots [] a.act_body)
                                 deps)
                              t.tbl_keys
                          in
                          if compatible ~recipient:prog roots then Some (t, deps)
                          else None
                    | _ -> None)
                  cd.c_locals
            | _ -> [])
          donor
      in
      match (candidates, busiest_control prog) with
      | [], _ | _, None -> None
      | candidates, Some (di, cd) ->
          let t, deps = pick st candidates in
          let sfx = Printf.sprintf "_sp%d" (1 + Random.State.int st 997) in
          let actions =
            List.map
              (fun a ->
                LAction
                  { a with act_name = a.act_name ^ sfx; act_annos = List.map (rename_anno sfx) a.act_annos })
              deps
          in
          let table =
            LTable
              {
                t with
                tbl_name = t.tbl_name ^ sfx;
                tbl_keys =
                  List.map
                    (fun k -> { k with tk_annos = List.map (rename_anno sfx) k.tk_annos })
                    t.tbl_keys;
                tbl_actions = List.map (fun (n, an) -> (n ^ sfx, an)) t.tbl_actions;
                tbl_default = Option.map (fun (n, args) -> (n ^ sfx, args)) t.tbl_default;
                tbl_entries =
                  List.map (fun e -> { e with te_action = e.te_action ^ sfx }) t.tbl_entries;
                tbl_annos = List.map (rename_anno sfx) t.tbl_annos;
              }
          in
          let cd' =
            {
              cd with
              c_locals = cd.c_locals @ actions @ [ table ];
              c_body =
                cd.c_body
                @ [ SCall (no_pos, EMember (EVar (t.tbl_name ^ sfx), "apply"), []) ];
            }
          in
          Some
            (List.mapi
               (fun i d ->
                 if i <> di then d
                 else match d with DControl (_, annos) -> DControl (cd', annos) | d -> d)
               prog))

(* ------------------------------------------------------------------ *)
(* 8. splice a parser state from a donor, reached through a fresh
   select arm (inserted first, so it shadows overlapping arms — a
   semantic change, which is the point) *)

let splice_state (st : rng) ~donor (prog : program) : program option =
  match donor with
  | None -> None
  | Some donor -> (
      let donor_states =
        List.concat_map
          (function
            | DParser (pd, _) ->
                List.filter
                  (fun s ->
                    s.st_name <> "start"
                    &&
                    let roots =
                      List.fold_left stmt_hdr_roots
                        (match s.st_trans with
                        | TrDirect _ -> []
                        | TrSelect (ks, cases) ->
                            List.fold_left hdr_roots
                              (List.concat_map
                                 (fun c -> List.fold_left hdr_roots [] c.sel_keys)
                                 cases)
                              ks)
                        s.st_stmts
                    in
                    compatible ~recipient:prog roots)
                  pd.p_states
            | _ -> [])
          donor
      in
      let recipients =
        List.filter_map
          (fun d ->
            match d with
            | DParser (pd, _)
              when List.exists
                     (fun s ->
                       match s.st_trans with TrSelect _ -> true | _ -> false)
                     pd.p_states ->
                Some pd.p_name
            | _ -> None)
          prog
      in
      match (donor_states, recipients) with
      | [], _ | _, [] -> None
      | donor_states, recipients ->
          let ds = pick st donor_states in
          let pname = pick st recipients in
          let sfx = Printf.sprintf "_sp%d" (1 + Random.State.int st 997) in
          let name = ds.st_name ^ sfx in
          let arm_value = Random.State.int st 256 in
          Some
            (List.map
               (fun d ->
                 match d with
                 | DParser (pd, annos) when pd.p_name = pname ->
                     let known =
                       "accept" :: "reject" :: name
                       :: List.map (fun s -> s.st_name) pd.p_states
                     in
                     let fix n = if List.mem n known then n else "accept" in
                     let ds' =
                       {
                         ds with
                         st_name = name;
                         st_trans =
                           (match ds.st_trans with
                           | TrDirect n -> TrDirect (fix n)
                           | TrSelect (ks, cases) ->
                               TrSelect
                                 ( ks,
                                   List.map
                                     (fun c -> { c with sel_next = fix c.sel_next })
                                     cases ));
                       }
                     in
                     (* retarget one select: a fresh first arm into the
                        spliced state *)
                     let sel_states =
                       List.filter
                         (fun s ->
                           match s.st_trans with TrSelect _ -> true | _ -> false)
                         pd.p_states
                     in
                     let target = (pick st sel_states).st_name in
                     let states =
                       List.map
                         (fun s ->
                           if s.st_name <> target then s
                           else
                             match s.st_trans with
                             | TrSelect (ks, cases) ->
                                 let arm =
                                   {
                                     sel_keys = List.map (fun _ -> int_lit arm_value) ks;
                                     sel_next = name;
                                   }
                                 in
                                 { s with st_trans = TrSelect (ks, arm :: cases) }
                             | _ -> s)
                         pd.p_states
                     in
                     DParser ({ pd with p_states = states @ [ ds' ] }, annos)
                 | d -> d)
               prog))

(* ------------------------------------------------------------------ *)
(* 5d. deepen an if-condition: [c] becomes [!c], [c && c] or [c || c].
   Evaluation-safe (same operands, same point) and always well-typed.
   Every statement under the if lives in a branch *context* that
   embeds the condition's canonical shape, so this renames the shape
   of the whole subtree — coverage keys the bounded generator grammar
   can never mint, and re-mutating a corpus member compounds the
   depth, so the vocabulary never dries up. *)

let deepen_cond (st : rng) ~donor:_ (prog : program) : program option =
  let deepened = ref 0 in
  let deepen c =
    incr deepened;
    (* when the condition compares a value against a width-annotated
       constant we know the value's width, so we can conjoin a fresh
       *slice* comparison over the same (already-read, hence defined)
       value: slice bounds survive canonicalization, so these keep
       minting new branch contexts across mutation generations *)
    let slice_atom =
      match c with
      | EBinop (_, x, EInt { width = Some w; _ }) when w >= 2 ->
          let lo = Random.State.int st (w - 1) in
          let hi = lo + Random.State.int st (w - lo) in
          let sw = hi - lo + 1 in
          Some
            (EBinop
               ( Eq,
                 ESlice (x, hi, lo),
                 int_lit ~width:sw (Random.State.int st (1 lsl min sw 24)) ))
      | _ -> None
    in
    match (slice_atom, Random.State.int st 3) with
    | Some a, 0 -> EBinop (LAnd, c, a)
    | Some a, _ -> EBinop (LOr, c, a)
    | None, 0 -> EUnop (LNot, c)
    | None, 1 -> EBinop (LAnd, c, c)
    | None, _ -> EBinop (LOr, c, c)
  in
  (* deepen every if at every depth — control bodies, nested branches
     and action bodies alike: statements nested under each if inherit
     the renamed context too, so one draw yields a whole program's
     worth of new branch contexts *)
  let rec deepen_stmt (s : stmt) : stmt =
    match s with
    | SIf (p, c, t, e) ->
        SIf (p, deepen c, List.map deepen_stmt t, List.map deepen_stmt e)
    | SBlock b -> SBlock (List.map deepen_stmt b)
    | SSwitch (p, e, cases) ->
        SSwitch
          ( p,
            e,
            List.map
              (fun c -> { c with sw_body = Option.map (List.map deepen_stmt) c.sw_body })
              cases )
    | s -> s
  in
  let deepen_local = function
    | LAction a -> LAction { a with act_body = List.map deepen_stmt a.act_body }
    | l -> l
  in
  let prog' =
    List.map
      (fun d ->
        match d with
        | DControl (cd, annos) ->
            DControl
              ( {
                  cd with
                  c_body = List.map deepen_stmt cd.c_body;
                  c_locals = List.map deepen_local cd.c_locals;
                },
                annos )
        | DAction a -> DAction { a with act_body = List.map deepen_stmt a.act_body }
        | d -> d)
      prog
  in
  if !deepened = 0 then None else Some prog'

(* ------------------------------------------------------------------ *)
(* 5e. guard action statements behind fresh branches on *slices* of
   the action's own value parameters.  Action parameters are table
   action-data — always defined when the body runs — so the new
   conditions are differentially safe, and each one genuinely splits
   the action's behavior: the oracle explores both arms (more tests,
   bitvector extract constraints in the solver).  Crucially, slice
   bounds survive canonicalization ([_[11:3]] is a different shape
   from [_[10:3]]), so unlike whole-value guards — whose [(_==k8)]
   shape is minted once and never again — random slice bounds keep
   producing coverage keys the generator grammar has no production
   for, across arbitrarily many mutation generations. *)

let guard_action (st : rng) ~donor:_ (prog : program) : program option =
  let value_params (a : action_decl) =
    List.filter (fun p -> match p.par_typ with TBit _ -> true | _ -> false) a.act_params
  in
  (* concrete argument values each action receives from constant table
     entries, keyed by parameter name.  Constant-entry tables invoke
     their actions with *fixed* data, so a guard whose constant is
     derived from an actual entry value is true on that entry's branch
     — a purely random constant would almost always be concretely
     false, leaving the guarded statement dead under every entry. *)
  let entry_args : (string, string * int) Hashtbl.t = Hashtbl.create 8 in
  let actions_by_name : (string, action_decl) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let locals =
        match d with
        | DControl (cd, _) -> cd.c_locals
        | DAction a ->
            Hashtbl.replace actions_by_name a.act_name a;
            []
        | _ -> []
      in
      List.iter
        (function LAction a -> Hashtbl.replace actions_by_name a.act_name a | _ -> ())
        locals)
    prog;
  List.iter
    (fun d ->
      match d with
      | DControl (cd, _) ->
          List.iter
            (function
              | LTable t ->
                  List.iter
                    (fun (e : table_entry) ->
                      match Hashtbl.find_opt actions_by_name e.te_action with
                      | Some a when List.length a.act_params = List.length e.te_args
                        ->
                          List.iter2
                            (fun (p : param) arg ->
                              match arg with
                              | EInt { iv; _ } when iv >= 0 ->
                                  Hashtbl.add entry_args a.act_name (p.par_name, iv)
                              | _ -> ())
                            a.act_params e.te_args
                      | _ -> ())
                    t.tbl_entries
              | _ -> ())
            cd.c_locals
      | _ -> ())
    prog;
  let wrapped = ref 0 in
  let slice_cond (a : action_decl) params =
    let p = pick st params in
    let w = match p.par_typ with TBit w -> w | _ -> assert false in
    (* concrete values this parameter takes under constant entries (if
       any): with probability 3/4 the guard constant is derived from
       one of them, so the true arm is reachable on that entry *)
    let concrete =
      List.filter_map
        (fun (n, v) -> if n = p.par_name then Some v else None)
        (Hashtbl.find_all entry_args a.act_name)
    in
    let konst ~width ~of_val =
      if concrete <> [] && Random.State.int st 4 < 3 then of_val (pick st concrete)
      else Random.State.int st (1 lsl min width 24)
    in
    if w >= 4 && Random.State.bool st then begin
      (* combine two equal-width slices of the parameter: the shape
         space is cubic in the width, so even narrow bit<8> parameters
         don't exhaust their mintable vocabulary mid-campaign *)
      let len = 1 + Random.State.int st (min w 16) in
      let lo1 = Random.State.int st (w - len + 1) in
      let lo2 = Random.State.int st (w - len + 1) in
      let op = pick st [ BAnd; BOr; BXor ] in
      let mask = (1 lsl min len 24) - 1 in
      let of_val v =
        let s1 = (v asr lo1) land mask and s2 = (v asr lo2) land mask in
        match op with BAnd -> s1 land s2 | BOr -> s1 lor s2 | _ -> s1 lxor s2
      in
      EBinop
        ( Eq,
          EBinop
            ( op,
              ESlice (EVar p.par_name, lo1 + len - 1, lo1),
              ESlice (EVar p.par_name, lo2 + len - 1, lo2) ),
          int_lit ~width:len (konst ~width:len ~of_val) )
    end
    else if w >= 2 then begin
      let lo = Random.State.int st (w - 1) in
      let hi = lo + Random.State.int st (w - lo) in
      let sw = hi - lo + 1 in
      let of_val v = (v asr lo) land ((1 lsl min sw 24) - 1) in
      EBinop
        ( Eq,
          ESlice (EVar p.par_name, hi, lo),
          int_lit ~width:sw (konst ~width:sw ~of_val) )
    end
    else
      EBinop
        ( Eq,
          EVar p.par_name,
          int_lit ~width:w (konst ~width:1 ~of_val:(fun v -> v land 1)) )
  in
  let guard (a : action_decl) =
    match value_params a with
    | [] -> a
    (* bound per-generation growth: once an action body is large
       enough, stop wrapping it and let other actions take the churn *)
    | _ when List.length a.act_body > 12 -> a
    | params ->
        (* every statement gets its own guard with its own fresh
           slice, so yield scales with the program and re-mutation
           nests contexts instead of replaying them; half the guards
           carry an else-copy, minting both arm contexts *)
        let body =
          List.map
            (fun s ->
              incr wrapped;
              let els = if Random.State.bool st then [ s ] else [] in
              SIf (no_pos, slice_cond a params, [ s ], els))
            a.act_body
        in
        { a with act_body = body }
  in
  let prog' =
    List.map
      (fun d ->
        match d with
        | DControl (cd, annos) ->
            let locals =
              List.map (function LAction a -> LAction (guard a) | l -> l) cd.c_locals
            in
            DControl ({ cd with c_locals = locals }, annos)
        | DAction a -> DAction (guard a)
        | d -> d)
      prog
  in
  if !wrapped = 0 then None else Some prog'

(* ------------------------------------------------------------------ *)
(* 5f. guard control apply-body statements behind fresh slice
   conditions over the Ethernet header — which every generated parser
   extracts unconditionally, so the sliced fields are defined and
   *symbolic* (packet-derived) wherever the apply body runs.  Both
   arms of each new branch are therefore satisfiable, which makes
   these guards the cheapest mint under the campaign's small per-case
   test budget: the control body is on every path, so the very first
   explored paths already cover the new contexts, unlike action-body
   guards whose leaves sit behind a table hit. *)

let guard_apply (st : rng) ~donor:_ (prog : program) : program option =
  let fields = [ ("src", 48); ("dst", 48); ("etype", 16) ] in
  let slice_cond () =
    let f, w = pick st fields in
    let base = EMember (EMember (EVar "hdr", "eth"), f) in
    let lo = Random.State.int st (w - 1) in
    let hi = lo + Random.State.int st (min (w - lo) 16) in
    let sw = hi - lo + 1 in
    EBinop
      ( Eq,
        ESlice (base, hi, lo),
        int_lit ~width:sw (Random.State.int st (1 lsl min sw 24)) )
  in
  let wrappable = function
    | SAssign _ | SCall _ | SIf _ | SSwitch _ | SBlock _ -> true
    | _ -> false
  in
  (* bound per-generation growth the same way [guard_action] does:
     stop nesting once a statement is already three branches deep *)
  let rec depth s =
    match s with
    | SIf (_, _, t, e) ->
        1 + List.fold_left (fun a s -> max a (depth s)) 0 (t @ e)
    | SBlock b -> List.fold_left (fun a s -> max a (depth s)) 0 b
    | _ -> 0
  in
  let wrapped = ref 0 in
  let prog' =
    List.map
      (fun d ->
        match d with
        | DControl (cd, annos)
          when List.exists (fun (p : param) -> p.par_name = "hdr") cd.c_params
               && List.length cd.c_body <= 24 ->
            let body =
              List.map
                (fun s ->
                  if wrappable s && depth s <= 2 && Random.State.bool st then begin
                    incr wrapped;
                    let els = if Random.State.bool st then [ s ] else [] in
                    SIf (no_pos, slice_cond (), [ s ], els)
                  end
                  else s)
                cd.c_body
            in
            DControl ({ cd with c_body = body }, annos)
        | d -> d)
      prog
  in
  if !wrapped = 0 then None else Some prog'

(* ------------------------------------------------------------------ *)
(* Driver *)

let mutators :
    (string * (rng -> donor:program option -> program -> program option)) list =
  [
    ("perturb_const", perturb_const);
    ("flip_match_kind", flip_match_kind);
    ("perturb_priority", perturb_priority);
    ("dup_stmt", dup_stmt);
    ("drop_stmt", drop_stmt);
    ("resize_stack", resize_stack);
    ("splice_table", splice_table);
    ("splice_state", splice_state);
    ("complicate_key", complicate_key);
    ("guard_dup", guard_dup);
    ("deepen_cond", deepen_cond);
    ("guard_action", guard_action);
    ("guard_apply", guard_apply);
  ]

(* Growth, splice and expression-deepening mutators dominate the draw:
   they are the ones that push mutants past the generator's own
   distribution (more paths per program, cross-program shape
   combinations, expression trees deeper than the generator's bound),
   which is where coverage novelty comes from.  Pure perturbations
   mostly steer *which* of the existing paths the solver picks, so
   they contribute little novelty and get small weights. *)
let weighted_mutators =
  let w n = List.assoc n mutators in
  [
    (8, "guard_apply", w "guard_apply");
    (6, "guard_action", w "guard_action");
    (3, "deepen_cond", w "deepen_cond");
    (2, "guard_dup", w "guard_dup");
    (1, "splice_table", w "splice_table");
    (1, "splice_state", w "splice_state");
    (1, "resize_stack", w "resize_stack");
    (1, "complicate_key", w "complicate_key");
    (1, "dup_stmt", w "dup_stmt");
    (1, "perturb_const", w "perturb_const");
    (1, "flip_match_kind", w "flip_match_kind");
    (1, "perturb_priority", w "perturb_priority");
    (1, "drop_stmt", w "drop_stmt");
  ]

(* The first round draws only coverage-bearing structural mutators
   (fresh branch contexts every time); later rounds mix in the pure
   perturbations, which rarely mint keys but diversify behavior. *)
let first_round_mutators =
  let w n = List.assoc n mutators in
  [
    (5, "guard_apply", w "guard_apply");
    (3, "guard_action", w "guard_action");
    (1, "deepen_cond", w "deepen_cond");
    (1, "guard_dup", w "guard_dup");
  ]

let draw_weighted (st : rng) table =
  let total = List.fold_left (fun a (w, _, _) -> a + w) 0 table in
  let r = Random.State.int st total in
  let rec go r = function
    | [ (_, n, m) ] -> (n, m)
    | (w, n, m) :: rest -> if r < w then (n, m) else go (r - w) rest
    | [] -> assert false
  in
  go r table

let draw_mutator ?(round = 1) (st : rng) =
  draw_weighted st (if round = 0 then first_round_mutators else weighted_mutators)

type mutation = {
  m_src : string;  (** the mutant, pretty-printed back to source *)
  m_ops : string list;  (** mutator names applied, in order *)
}

(** [mutate ~seed ?donor src] applies 1–3 randomly drawn mutators to
    [src] (splices draw from [donor]).  Returns [None] when [src] does
    not parse or no drawn mutator applies.  Deterministic in
    [(seed, src, donor)].  The result is *not* validated here: callers
    gate it through {!Testgen.Oracle.prepare_result}. *)
let mutate ~seed ?donor (src : string) : mutation option =
  match P4.Parser.parse_program src with
  | exception _ -> None
  | prog -> (
      let donor =
        Option.bind donor (fun d ->
            match P4.Parser.parse_program d with
            | d -> Some d
            | exception _ -> None)
      in
      let st = Random.State.make [| seed; 0x4D55_5441 |] in
      let rounds = 1 + Random.State.int st 3 in
      let prog', ops =
        List.fold_left
          (fun (p, ops) round ->
            let name, m = draw_mutator ~round st in
            match m st ~donor p with
            | Some p' -> (p', name :: ops)
            | None -> (p, ops))
          (prog, [])
          (List.init rounds Fun.id)
      in
      match ops with
      | [] -> None
      | ops -> Some { m_src = P4.Pretty.program_to_string prog'; m_ops = List.rev ops })
