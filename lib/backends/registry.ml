(* Back-end registry: concretizers from abstract test specifications
   (§4 phase 3) to framework files. *)

type t = { name : string; extension : string; emit : Testgen.Testspec.t list -> string }

let all =
  [
    { name = "stf"; extension = ".stf"; emit = Stf.emit };
    { name = "ptf"; extension = "_ptf.py"; emit = Ptf.emit };
    { name = "protobuf"; extension = ".txtpb"; emit = Proto.emit };
  ]

let find name = List.find_opt (fun b -> b.name = name) all

(* [emit_observed ~obs b tests] is [b.emit tests] reported into the
   run's registry: an [emit] span, the [backend.emit_time] timer and
   the [backend.tests_emitted] counter *)
let emit_observed ?obs (b : t) tests =
  match obs with
  | None -> b.emit tests
  | Some reg ->
      Obs.Counter.add
        (Obs.Registry.counter reg "backend.tests_emitted")
        (List.length tests);
      Obs.Span.with_ reg ~args:[ ("backend", b.name) ] "emit" (fun () ->
          Obs.Timer.time (Obs.Registry.timer reg "backend.emit_time") (fun () ->
              b.emit tests))
