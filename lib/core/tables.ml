(* Symbolic match-action table application.

   Each table application forks the path (§3, example 1): one branch
   per possible control-plane outcome.  For a table without constant
   entries P4Testgen creates a single synthesized entry per action
   (§6, "Interacting with the control plane"), plus a miss branch with
   an empty table.  For [const entries] tables the branches are the
   declared entries in priority order plus the miss branch.

   Taint heuristics (§5.3): a tainted key prevents synthesizing an
   entry that is guaranteed to match — unless every tainted key is a
   ternary/optional key, in which case a wildcard entry removes the
   nondeterminism. *)

module Expr = Smt.Expr
module Bits = Bitv.Bits
open P4
open Runtime

type applied = {
  ap_action : string;
  ap_args : (Ast.param * Expr.t) list;  (** action data, by declared parameter *)
  ap_hit : bool;
  ap_cond : Expr.t option;
  ap_state : state;
  ap_label : string;
}

let key_name (k : Ast.table_key) =
  match Ast.find_anno "name" k.tk_annos with
  | Some a -> ( match Ast.anno_string a with Some s -> s | None -> Ast.lvalue_path k.tk_expr)
  | None -> ( try Ast.lvalue_path k.tk_expr with Invalid_argument _ -> "key")

let eval_keys ctx fr st (tbl : Ast.table) =
  List.fold_left
    (fun (st, acc) (k : Ast.table_key) ->
      let st, v = Eval.eval ctx fr st k.tk_expr in
      (st, (key_name k, k.tk_kind, v) :: acc))
    (st, []) tbl.tbl_keys
  |> fun (st, acc) -> (st, List.rev acc)

(* --------------------------------------------------------------- *)
(* P4-constraints (@entry_restriction) support: restrict synthesized
   entry key variables (§6.1.1). *)

let compile_constraint ctx (keys : (string * string * Expr.t) list)
    (entry_vars : (string * Expr.t) list) (src : string) : Expr.t option =
  ignore (keys : (string * string * Expr.t) list);
  match P4.Parser.parse_expr_string src with
  | exception _ -> None
  | ast ->
      let rec comp (e : Ast.expr) : Expr.t option =
        match e with
        | EBool b -> Some (Expr.of_bool ctx.ectx b)
        | EVar n -> List.assoc_opt n entry_vars
        | EMember _ -> List.assoc_opt (Ast.lvalue_path e) entry_vars
        | EInt { iv; width; _ } ->
            let w = Option.value width ~default:32 in
            Some (Expr.of_int ctx.ectx ~width:w iv)
        | EUnop (LNot, a) -> Option.map Expr.bnot (comp a)
        | EBinop (op, a, b) -> (
            match (comp a, comp b) with
            | Some va, Some vb -> (
                let va, vb =
                  let wa = Expr.width va and wb = Expr.width vb in
                  if wa = wb then (va, vb)
                  else if wa < wb then (Expr.zext va wb, vb)
                  else (va, Expr.zext vb wa)
                in
                match op with
                | Eq -> Some (Expr.eq va vb)
                | Neq -> Some (Expr.neq va vb)
                | Lt -> Some (Expr.ult va vb)
                | Le -> Some (Expr.ule va vb)
                | Gt -> Some (Expr.ugt va vb)
                | Ge -> Some (Expr.uge va vb)
                | LAnd -> Some (Expr.band va vb)
                | LOr -> Some (Expr.bor va vb)
                | BAnd -> Some (Expr.logand va vb)
                | BOr -> Some (Expr.logor va vb)
                | BXor -> Some (Expr.logxor va vb)
                | _ -> None)
            | _ -> None)
        | ETernary (c, t, f) -> (
            match (comp c, comp t, comp f) with
            | Some vc, Some vt, Some vf -> Some (Expr.ite vc vt vf)
            | _ -> None)
        | _ -> None
      in
      comp ast

let entry_restriction ctx (tbl : Ast.table) keys entry_vars =
  if not ctx.opts.apply_constraints then None
  else
    match Ast.find_anno "entry_restriction" tbl.tbl_annos with
    | Some a -> (
        match Ast.anno_string a with
        | Some src -> compile_constraint ctx keys entry_vars src
        | None -> None)
    | None -> None

(* --------------------------------------------------------------- *)
(* Action lookup *)

let noaction : Ast.action_decl =
  { act_name = "NoAction"; act_params = []; act_body = []; act_annos = [] }

let action_decl ctx fr name =
  if name = "NoAction" then noaction
  else
    match find_action ctx fr name with
    | Some a -> a
    | None -> fail "unknown action %s" name

(* --------------------------------------------------------------- *)
(* Constant-entry matching *)

let rec match_pattern ctx fr st (keyv : Expr.t) (pat : Ast.expr) : state * Expr.t =
  let w = Expr.width keyv in
  match pat with
  | EDontCare | EDefault -> (st, Expr.tru ctx.ectx)
  | EMask (v, m) ->
      let st, vv = Eval.eval ~hint:w ctx fr st v in
      let st, vm = Eval.eval ~hint:w ctx fr st m in
      let vv = Expr.zext vv w and vm = Expr.zext vm w in
      (st, Expr.eq (Expr.logand keyv vm) (Expr.logand vv vm))
  | ERange (lo, hi) ->
      let st, vlo = Eval.eval ~hint:w ctx fr st lo in
      let st, vhi = Eval.eval ~hint:w ctx fr st hi in
      (st, Expr.band (Expr.ule (Expr.zext vlo w) keyv) (Expr.ule keyv (Expr.zext vhi w)))
  | EList [ p ] -> match_pattern ctx fr st keyv p
  | _ ->
      let st, v = Eval.eval ~hint:w ctx fr st pat in
      (st, Expr.eq keyv (Expr.zext v w))

let match_entry ctx fr st keys (e : Ast.table_entry) : state * Expr.t =
  if List.length keys <> List.length e.te_keys then
    fail "entry key arity mismatch in table";
  List.fold_left2
    (fun (st, acc) (_, _, keyv) pat ->
      let st, m = match_pattern ctx fr st keyv pat in
      (st, Expr.band acc m))
    (st, Expr.tru ctx.ectx) keys e.te_keys

(* order constant entries by priority (lower value = higher priority),
   then source order — the v1model "priority" annotation semantics *)
let ordered_entries (tbl : Ast.table) =
  let indexed = List.mapi (fun i e -> (i, e)) tbl.tbl_entries in
  List.stable_sort
    (fun (i, a) (j, b) ->
      match (a.Ast.te_priority, b.Ast.te_priority) with
      | Some x, Some y -> if x <> y then compare x y else compare i j
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> compare i j)
    indexed
  |> List.map snd

(* --------------------------------------------------------------- *)
(* Entry synthesis *)

type synth = {
  sy_cond : Expr.t;
  sy_keys : (string * sym_key) list;
  sy_vars : (string * Expr.t) list;  (** key name -> entry variable *)
  sy_ok : bool;  (** false when a tainted key prevents a guaranteed match *)
}

let synthesize_match ctx keys : synth =
  let ok = ref true in
  let conds = ref [] in
  let sks = ref [] in
  let vars = ref [] in
  List.iter
    (fun (name, kind, keyv) ->
      let w = Expr.width keyv in
      let tainted = Expr.tainted keyv in
      match kind with
      | "ternary" | "optional" when tainted ->
          (* wildcard entry: matches regardless of the tainted key *)
          let sk =
            if kind = "ternary" then
              SkTernary (Expr.zero ctx.ectx w, Expr.zero ctx.ectx w)
            else SkOptional None
          in
          sks := (name, sk) :: !sks
      | _ when tainted -> ok := false
      | "exact" ->
          let kv = fresh_var ctx ("$key_" ^ name) w in
          conds := Expr.eq keyv kv :: !conds;
          vars := (name, kv) :: !vars;
          sks := (name, SkExact kv) :: !sks
      | "ternary" ->
          let kv = fresh_var ctx ("$key_" ^ name) w in
          conds := Expr.eq keyv kv :: !conds;
          vars := (name, kv) :: !vars;
          sks := (name, SkTernary (kv, Expr.ones ctx.ectx w)) :: !sks
      | "lpm" ->
          let kv = fresh_var ctx ("$key_" ^ name) w in
          conds := Expr.eq keyv kv :: !conds;
          vars := (name, kv) :: !vars;
          sks := (name, SkLpm (kv, w)) :: !sks
      | "range" ->
          let kv = fresh_var ctx ("$key_" ^ name) w in
          conds := Expr.eq keyv kv :: !conds;
          vars := (name, kv) :: !vars;
          sks := (name, SkRange (kv, kv)) :: !sks
      | "optional" ->
          let kv = fresh_var ctx ("$key_" ^ name) w in
          conds := Expr.eq keyv kv :: !conds;
          vars := (name, kv) :: !vars;
          sks := (name, SkOptional (Some kv)) :: !sks
      | kind -> fail "unsupported match kind %s" kind)
    keys;
  {
    sy_cond = Expr.conj ctx.ectx (List.rev !conds);
    sy_keys = List.rev !sks;
    sy_vars = List.rev !vars;
    sy_ok = !ok;
  }

(* --------------------------------------------------------------- *)
(* Matching a key against an already-synthesized entry (an earlier
   application of the same table in this test — the previous packet of
   a sequence, or a recirculation) *)

let match_sym_key ctx (keyv : Expr.t) (sk : sym_key) : Expr.t =
  let w = Expr.width keyv in
  match sk with
  | SkExact v -> Expr.eq keyv (Expr.zext v w)
  | SkTernary (v, m) ->
      let v = Expr.zext v w and m = Expr.zext m w in
      Expr.eq (Expr.logand keyv m) (Expr.logand v m)
  | SkLpm (v, len) ->
      if len >= w then Expr.eq keyv (Expr.zext v w)
      else if len <= 0 then Expr.tru ctx.ectx
      else
        let shift = Expr.of_int ctx.ectx ~width:w (w - len) in
        Expr.eq (Expr.lshr keyv shift) (Expr.lshr (Expr.zext v w) shift)
  | SkRange (lo, hi) ->
      Expr.band (Expr.ule (Expr.zext lo w) keyv) (Expr.ule keyv (Expr.zext hi w))
  | SkOptional None -> Expr.tru ctx.ectx
  | SkOptional (Some v) -> Expr.eq keyv (Expr.zext v w)

(* --------------------------------------------------------------- *)

let default_of ctx fr st (tbl : Ast.table) =
  match tbl.tbl_default with
  | Some (name, args) ->
      let decl = action_decl ctx fr name in
      let st, vals =
        List.fold_left2
          (fun (st, acc) (p : Ast.param) arg ->
            let w = Typing.width_of ctx.tctx p.par_typ in
            let st, v = Eval.eval ~hint:w ctx fr st arg in
            (st, (p, Expr.zext v w) :: acc))
          (st, []) decl.act_params args
      in
      (st, name, List.rev vals)
  | None -> (st, "NoAction", [])

let fresh_action_args ctx fr (name : string) decl =
  ignore fr;
  List.map
    (fun (p : Ast.param) ->
      let w = Typing.width_of ctx.tctx p.par_typ in
      (p, fresh_var ctx (Printf.sprintf "$arg_%s_%s" name p.par_name) w))
    decl.Ast.act_params

(* Apply a table: returns every control-plane branch. *)
let apply ctx fr st (tbl : Ast.table) : applied list =
  let st, keys = eval_keys ctx fr st tbl in
  let st0 = note ("apply " ^ tbl.tbl_name) st in
  if tbl.tbl_entries <> [] then begin
    (* immutable table with constant entries; a tainted key makes the
       match outcome unpredictable — the branches are explored but
       marked so their tests are discarded (§5.3) *)
    let keys_tainted = List.exists (fun (_, _, v) -> Expr.tainted v) keys in
    let st0 = if keys_tainted then { st0 with ctrl_taint = true } else st0 in
    let entries = ordered_entries tbl in
    let _, branches, miss_conds =
      List.fold_left
        (fun (i, acc, misses) entry ->
          let st, m = match_entry ctx fr st0 keys entry in
          let cond = Expr.band m (Expr.conj ctx.ectx misses) in
          let decl = action_decl ctx fr entry.Ast.te_action in
          let st, args =
            List.fold_left2
              (fun (st, acc) (p : Ast.param) arg ->
                let w = Typing.width_of ctx.tctx p.par_typ in
                let st, v = Eval.eval ~hint:w ctx fr st arg in
                (st, (p, Expr.zext v w) :: acc))
              (st, []) decl.act_params entry.Ast.te_args
          in
          let b =
            {
              ap_action = entry.Ast.te_action;
              ap_args = List.rev args;
              ap_hit = true;
              ap_cond = Some cond;
              ap_state = st;
              ap_label = Printf.sprintf "%s:entry%d" tbl.tbl_name i;
            }
          in
          (i + 1, b :: acc, Expr.bnot m :: misses))
        (0, [], []) entries
    in
    let st, dname, dargs = default_of ctx fr st0 tbl in
    let miss =
      {
        ap_action = dname;
        ap_args = dargs;
        ap_hit = false;
        ap_cond = Some (Expr.conj ctx.ectx miss_conds);
        ap_state = st;
        ap_label = tbl.tbl_name ^ ":miss";
      }
    in
    List.rev (miss :: branches)
  end
  else begin
    (* programmable table: one synthesized entry per action + miss.

       The control plane is written ONCE for the whole test, so a
       later application of the same table — the next packet of a
       sequence, or a recirculated packet — sees the entries earlier
       applications synthesized.  First match wins on a real switch:
       the later application must therefore either *re-hit* one of
       those entries (replaying its stored action and data) or take a
       branch whose key provably matches none of them. *)
    let prev =
      List.rev
        (List.filter (fun (e : sym_entry) -> e.se_table = tbl.tbl_name) st0.entries)
    in
    let match_prev (e : sym_entry) : Expr.t =
      Expr.conj ctx.ectx
        (List.map2
           (fun (_, _, keyv) (_, sk) -> match_sym_key ctx keyv sk)
           keys e.se_keys)
    in
    let not_matching es = List.map (fun e -> Expr.bnot (match_prev e)) es in
    let rehit_branches =
      List.concat
        (List.mapi
           (fun i (e : sym_entry) ->
             match action_decl ctx fr e.se_action with
             | exception _ -> []
             | decl ->
                 let args =
                   List.map
                     (fun (p : Ast.param) ->
                       match List.assoc_opt p.par_name e.se_args with
                       | Some v -> (p, v)
                       | None ->
                           ( p,
                             fresh_var ctx
                               (Printf.sprintf "$arg_%s_%s" e.se_action p.par_name)
                               (Typing.width_of ctx.tctx p.par_typ) ))
                     decl.act_params
                 in
                 let earlier = List.filteri (fun j _ -> j < i) prev in
                 let cond =
                   Expr.conj ctx.ectx (match_prev e :: not_matching earlier)
                 in
                 [
                   {
                     ap_action = e.se_action;
                     ap_args = args;
                     ap_hit = true;
                     ap_cond = Some cond;
                     ap_state = st0;
                     ap_label =
                       Printf.sprintf "%s:rehit%d:%s" tbl.tbl_name i e.se_action;
                   };
                 ])
           prev)
    in
    (* a fresh synthesized entry (and the miss branch) must dodge every
       earlier entry of this table, and must also not match the key of
       any PAST application that took the miss branch — the entry is
       installed before the first packet, so it would retroactively
       turn that miss into a hit.  With no earlier applications both
       guards vanish and this is the historical shape, bit for bit. *)
    let past_misses =
      List.filter_map
        (fun (tname, mkeys) -> if tname = tbl.tbl_name then Some mkeys else None)
        st0.tbl_misses
    in
    let miss_guards (sy_keys : (string * sym_key) list) =
      List.map
        (fun mkeys ->
          Expr.bnot
            (Expr.conj ctx.ectx
               (List.map2 (fun mk (_, sk) -> match_sym_key ctx mk sk) mkeys sy_keys)))
        past_misses
    in
    let dodge sy_keys cond =
      match not_matching prev @ miss_guards sy_keys with
      | [] -> cond
      | guards -> Expr.conj ctx.ectx (cond :: guards)
    in
    let synth = synthesize_match ctx keys in
    let restriction = entry_restriction ctx tbl keys synth.sy_vars in
    let hit_branches =
      if not synth.sy_ok then []
      else
        List.filter_map
          (fun (aname, annos) ->
            if Ast.has_anno "defaultonly" annos then None
            else begin
              let decl = action_decl ctx fr aname in
              let args = fresh_action_args ctx fr tbl.tbl_name decl in
              let entry =
                {
                  se_table = tbl.tbl_name;
                  se_keys = synth.sy_keys;
                  se_action = aname;
                  se_args = List.map (fun ((p : Ast.param), v) -> (p.par_name, v)) args;
                  se_priority = None;
                }
              in
              let cond =
                match restriction with
                | Some r -> Expr.band synth.sy_cond r
                | None -> synth.sy_cond
              in
              Some
                {
                  ap_action = aname;
                  ap_args = args;
                  ap_hit = true;
                  ap_cond = Some (dodge synth.sy_keys cond);
                  ap_state = { st0 with entries = entry :: st0.entries };
                  ap_label = Printf.sprintf "%s:hit:%s" tbl.tbl_name aname;
                }
            end)
          tbl.tbl_actions
    in
    let st, dname, dargs = default_of ctx fr st0 tbl in
    (* record the miss: entries synthesized by later applications must
       not match this application's key *)
    let miss_st =
      {
        st with
        tbl_misses =
          (tbl.tbl_name, List.map (fun (_, _, v) -> v) keys) :: st.tbl_misses;
      }
    in
    let miss =
      {
        ap_action = dname;
        ap_args = dargs;
        ap_hit = false;
        ap_cond =
          (if prev = [] then None (* empty table: miss unconditionally *)
           else Some (Expr.conj ctx.ectx (not_matching prev)));
        ap_state = miss_st;
        ap_label = tbl.tbl_name ^ ":miss";
      }
    in
    rehit_branches @ hit_branches @ [ miss ]
  end
