(* Abstract test specification (§4, phase 3).

   A test is everything needed to exercise one program path on a real
   target: an ordered sequence of steps — packet injections with their
   expected outputs, interleaved with control-plane updates (table
   entry adds, register writes) — plus the initial control-plane
   configuration (table entries, register initialization) applied
   before the first step.  Extern state (registers, counters, meters)
   persists between steps, so a warm-up packet can set up state that a
   later packet's path depends on (§5's stateful-extern story).

   The common case is a single injection; {!make} builds exactly that
   and such tests print and execute identically to the historical
   one-packet representation.  Test back ends ({!Backends})
   concretize this representation into STF, PTF, or protobuf text. *)

module Bits = Bitv.Bits

type key_match =
  | MExact of Bits.t
  | MTernary of Bits.t * Bits.t  (** value, mask (1 = care) *)
  | MLpm of Bits.t * int  (** value, prefix length *)
  | MRange of Bits.t * Bits.t  (** inclusive bounds *)
  | MOptional of Bits.t option

type entry = {
  e_table : string;
  e_keys : (string * key_match) list;  (** key field name -> match *)
  e_action : string;
  e_args : (string * Bits.t) list;  (** action parameter name -> value *)
  e_priority : int option;
}

type register_init = { r_name : string; r_index : int; r_value : Bits.t }

type packet = {
  port : Bits.t;
  data : Bits.t;
  dontcare : Bits.t;  (** per-bit mask: 1 = don't care (tainted output) *)
}

type step =
  | SInject of { input : packet; outputs : packet list }
      (** inject [input]; [outputs = []] means dropped *)
  | SEntry of entry  (** add a table entry before the next injection *)
  | SRegister of register_init  (** control-plane register write *)

type t = {
  steps : step list;  (** in execution order; at least one [SInject] *)
  entries : entry list;  (** initial configuration, before any step *)
  registers : register_init list;  (** initial register writes *)
  covered : int list;  (** ids of statements this test covers *)
  comment : string;  (** human-readable path description *)
}

let make ~input ~outputs ~entries ~registers ~covered ~comment =
  { steps = [ SInject { input; outputs } ]; entries; registers; covered; comment }

let make_seq ~steps ~entries ~registers ~covered ~comment =
  if not (List.exists (function SInject _ -> true | _ -> false) steps) then
    invalid_arg "Testspec.make_seq: a test needs at least one packet injection";
  { steps; entries; registers; covered; comment }

let packet ?(dontcare = Bits.zero 0) ~port data =
  let dontcare =
    if Bits.width dontcare = Bits.width data then dontcare
    else Bits.zero (Bits.width data)
  in
  { port; data; dontcare }

let injects t =
  List.filter_map
    (function SInject { input; outputs } -> Some (input, outputs) | _ -> None)
    t.steps

let input t =
  match injects t with
  | (i, _) :: _ -> i
  | [] -> invalid_arg "Testspec.input: test has no packet injection"

let outputs t =
  match injects t with
  | (_, o) :: _ -> o
  | [] -> invalid_arg "Testspec.outputs: test has no packet injection"

let is_sequence t = match t.steps with [ SInject _ ] -> false | _ -> true
let is_drop t = List.for_all (fun (_, outs) -> outs = []) (injects t)

let pp_key_match ppf = function
  | MExact v -> Format.fprintf ppf "%s" (Bits.to_hex v)
  | MTernary (v, m) -> Format.fprintf ppf "%s &&& %s" (Bits.to_hex v) (Bits.to_hex m)
  | MLpm (v, l) -> Format.fprintf ppf "%s/%d" (Bits.to_hex v) l
  | MRange (a, b) -> Format.fprintf ppf "%s..%s" (Bits.to_hex a) (Bits.to_hex b)
  | MOptional (Some v) -> Format.fprintf ppf "%s" (Bits.to_hex v)
  | MOptional None -> Format.fprintf ppf "*"

let pp_entry ppf e =
  Format.fprintf ppf "%s: match(%a) action(%s(%a))%s" e.e_table
    (Format.pp_print_list
       ~pp_sep:(fun p () -> Format.fprintf p ", ")
       (fun p (k, m) -> Format.fprintf p "%s=%a" k pp_key_match m))
    e.e_keys e.e_action
    (Format.pp_print_list
       ~pp_sep:(fun p () -> Format.fprintf p ", ")
       (fun p (k, v) -> Format.fprintf p "%s=%s" k (Bits.to_hex v)))
    e.e_args
    (match e.e_priority with
    | Some p -> Printf.sprintf " prio=%d" p
    | None -> "")

let pp_packet ppf p =
  Format.fprintf ppf "port %s len %db data %s" (Bits.to_hex p.port)
    (Bits.width p.data) (Bits.to_hex p.data);
  if not (Bits.is_zero p.dontcare) then
    Format.fprintf ppf " mask %s" (Bits.to_hex (Bits.lognot p.dontcare))

let pp_reg ppf (r : register_init) =
  Format.fprintf ppf "%s[%d] = %s" r.r_name r.r_index (Bits.to_hex r.r_value)

let pp_inject ~label ppf (input, outputs) =
  Format.fprintf ppf "%sinput:  %a@," label pp_packet input;
  match outputs with
  | [] -> Format.fprintf ppf "%soutput: DROP@," label
  | ps -> List.iter (fun p -> Format.fprintf ppf "%soutput: %a@," label pp_packet p) ps

let pp ppf t =
  Format.fprintf ppf "@[<v 2>test {@,";
  (match t.steps with
  | [ SInject { input; outputs } ] ->
      (* the single-packet case keeps the historical byte-exact layout *)
      pp_inject ~label:"" ppf (input, outputs)
  | steps ->
      let k = ref 0 in
      List.iter
        (fun step ->
          match step with
          | SInject { input; outputs } ->
              incr k;
              pp_inject ~label:(Printf.sprintf "#%d " !k) ppf (input, outputs)
          | SEntry e -> Format.fprintf ppf "+entry: %a@," pp_entry e
          | SRegister r -> Format.fprintf ppf "+reg:   %a@," pp_reg r)
        steps);
  List.iter (fun e -> Format.fprintf ppf "entry:  %a@," pp_entry e) t.entries;
  List.iter (fun r -> Format.fprintf ppf "reg:    %a@," pp_reg r) t.registers;
  Format.fprintf ppf "path:   %s@]@,}" t.comment

let to_string t = Format.asprintf "%a" pp t
