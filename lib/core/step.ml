(* The symbolic small-step interpreter.

   [step] pops one work item from a state's continuation stack and
   returns the resulting branches ([None] when the stack is empty and
   the path is complete).  Targets build the initial stack with
   {!enter_parser} / {!enter_control} / [WOp] glue (§5.1.2); every P4
   construct below has its default interpretation here, and targets
   override behavior through {!Runtime.ctx} hooks. *)

module Expr = Smt.Expr
module Bits = Bitv.Bits
open P4
open Runtime

(* ------------------------------------------------------------------ *)
(* Frames and block entry *)

type binding =
  | Data of string  (** bind the parameter to this pipeline-state path *)
  | Packet  (** packet_in / packet_out parameter *)
  | Fresh  (** uninitialized local binding (taint) *)

let fresh_prefix ctx name = fresh_name ctx ("$f_" ^ name)

(* [stable] keys stateful-extern instances (registers, counters,
   meters) by the declaring block's type name instead of the fresh
   per-invocation [prefix], so the same instance resolves to the same
   cells on every invocation — the state-continuity invariant behind
   recirculation and multi-packet test sequences.  [add_register] &
   co. are create-if-absent, so re-entering the block keeps the
   contents. *)
let declare_locals ctx prefix ?(stable = prefix) (locals : Ast.local_decl list) st =
  let inst_size args = match args with Ast.EInt { iv; _ } :: _ -> min iv 1024 | _ -> 16 in
  List.fold_left
    (fun st l ->
      match l with
      | Ast.LVar (t, n, _) ->
          declare ctx ~init:(init_uninit ctx) t (prefix ^ "." ^ n) st
      | Ast.LConst (t, n, _) -> declare ctx ~init:(init_zero ctx) t (prefix ^ "." ^ n) st
      | Ast.LInstantiation (TSpec (("register" | "Register"), (elem :: _)), args, n) ->
          let width = Typing.width_of ctx.tctx elem in
          add_register (stable ^ "." ^ n) ~size:(inst_size args) ~width st
      | Ast.LInstantiation
          ( ( TName ("counter" | "direct_counter")
            | TSpec (("counter" | "Counter" | "DirectCounter"), _) ),
            args,
            n ) ->
          (* counter cells hold packet/byte counts the data plane never
             reads back; 32 bits of count is plenty for a test *)
          add_counter (stable ^ "." ^ n) ~size:(inst_size args) ~width:32 st
      | Ast.LInstantiation
          ( ( TName ("meter" | "direct_meter")
            | TSpec (("meter" | "Meter" | "DirectMeter"), _) ),
            args,
            n ) ->
          (* meter cells record the last (tainted) color *)
          add_meter (stable ^ "." ^ n) ~size:(inst_size args) ~width:8 st
      | Ast.LInstantiation ((TSpec ("value_set", [ _ ]) as t), _, n) ->
          (* parser value set: membership is control-plane state (§6) *)
          { st with vartypes = Env.add (prefix ^ "." ^ n) t st.vartypes }
      | Ast.LInstantiation _ | Ast.LAction _ | Ast.LTable _ -> st)
    st locals

let init_locals ctx prefix fr (locals : Ast.local_decl list) st =
  (* initializers run in scope order *)
  List.fold_left
    (fun st l ->
      match l with
      | Ast.LVar (t, n, Some e) ->
          let w = Typing.width_of ctx.tctx t in
          let st, v = Eval.eval ~hint:w ctx fr st e in
          write_leaf (prefix ^ "." ^ n) (Expr.zext v w) st
      | Ast.LConst (t, n, e) ->
          let w = Typing.width_of ctx.tctx t in
          let st, v = Eval.eval ~hint:w ctx fr st e in
          write_leaf (prefix ^ "." ^ n) (Expr.zext v w) st
      | _ -> st)
    st locals

let bind_params ctx prefix (params : Ast.param list) (bindings : binding list) st =
  List.fold_left2
    (fun st (p : Ast.param) b ->
      let dst = prefix ^ "." ^ p.par_name in
      match (b, p.par_dir) with
      | Packet, _ -> st
      | Fresh, _ -> declare ctx ~init:(init_uninit ctx) p.par_typ dst st
      | Data src, (Ast.DirIn | Ast.DirInOut | Ast.DirNone) ->
          let st = declare ctx ~init:(init_uninit ctx) p.par_typ dst st in
          copy_tree ctx p.par_typ ~src ~dst st
      | Data _, Ast.DirOut ->
          (* out params start uninitialized; headers become invalid *)
          declare ctx ~init:(init_uninit ctx) p.par_typ dst st)
    st params bindings

(* NOTE: [copy_out] is wrapped in [WExitFrame] closures below; like
   every deferred work-item closure, it may capture only names, AST
   nodes, and bindings — never an [Expr.t] — so that
   [Runtime.map_terms] sees every term a suspended state holds (the
   snapshot invariant documented on {!Runtime.work}). *)
let copy_out ctx prefix (params : Ast.param list) (bindings : binding list) st =
  List.fold_left2
    (fun st (p : Ast.param) b ->
      match (b, p.par_dir) with
      | Data dst, (Ast.DirOut | Ast.DirInOut) ->
          copy_tree ctx p.par_typ ~src:(prefix ^ "." ^ p.par_name) ~dst st
      | _ -> st)
    st params bindings

let control_frame prefix (cd : Ast.control_decl) =
  { fr_scopes = [ prefix ]; fr_ctrl = Some cd; fr_parser = None }

let parser_frame prefix (pd : Ast.parser_decl) =
  { fr_scopes = [ prefix ]; fr_ctrl = None; fr_parser = Some pd }

(** Queue execution of a control block bound to pipeline-state paths. *)
let enter_control ctx (cd : Ast.control_decl) (bindings : binding list) st =
  let prefix = fresh_prefix ctx cd.c_name in
  let st = bind_params ctx prefix cd.c_params bindings st in
  let st = declare_locals ctx prefix ~stable:cd.c_name cd.c_locals st in
  let fr = control_frame prefix cd in
  let st = init_locals ctx prefix fr cd.c_locals st in
  let exit_ = WExitFrame (KControl, cd.c_name, fun ctx st -> copy_out ctx prefix cd.c_params bindings st) in
  let st = push_work [ exit_ ] st in
  let st = push_stmts fr cd.c_body st in
  note ("enter control " ^ cd.c_name) st

(** Queue execution of a parser bound to pipeline-state paths. *)
let enter_parser ctx (pd : Ast.parser_decl) (bindings : binding list) st =
  let prefix = fresh_prefix ctx pd.p_name in
  let st = bind_params ctx prefix pd.p_params bindings st in
  let st = declare_locals ctx prefix ~stable:pd.p_name pd.p_locals st in
  let fr = parser_frame prefix pd in
  let st = init_locals ctx prefix fr pd.p_locals st in
  let exit_ =
    WExitFrame (KParserFrame, pd.p_name, fun ctx st -> copy_out ctx prefix pd.p_params bindings st)
  in
  let st = push_work [ exit_ ] st in
  let st = push_work [ WParserState (fr, "start") ] st in
  (* a fresh parser invocation restarts the loop-unrolling budget *)
  note ("enter parser " ^ pd.p_name) { st with state_visits = Env.empty }

let invoke_action ctx (fr : frame) (decl : Ast.action_decl) (args : (Ast.param * Expr.t) list) st =
  let prefix = fresh_prefix ctx decl.act_name in
  let st =
    List.fold_left
      (fun st ((p : Ast.param), v) ->
        let st = declare ctx ~init:(init_zero ctx) p.par_typ (prefix ^ "." ^ p.par_name) st in
        write_leaf (prefix ^ "." ^ p.par_name) v st)
      st args
  in
  let fr' = { fr with fr_scopes = prefix :: fr.fr_scopes } in
  let st = push_work [ WExitFrame (KAction, decl.act_name, fun _ st -> st) ] st in
  push_stmts fr' decl.act_body st

(* ------------------------------------------------------------------ *)
(* Lookahead hoisting *)

let rec find_lookahead (e : Ast.expr) : Ast.expr option =
  match e with
  | ECall (EMember (_, "lookahead"), _) -> Some e
  | EMember (b, _) | ESlice (b, _, _) | ECast (_, b) | EUnop (_, b) -> find_lookahead b
  | EIndex (a, b) | EBinop (_, a, b) | EMask (a, b) | ERange (a, b) -> (
      match find_lookahead a with Some r -> Some r | None -> find_lookahead b)
  | ETernary (a, b, c) -> (
      match find_lookahead a with
      | Some r -> Some r
      | None -> ( match find_lookahead b with Some r -> Some r | None -> find_lookahead c))
  | ECall (f, args) ->
      List.fold_left
        (fun acc a -> match acc with Some _ -> acc | None -> find_lookahead a)
        (find_lookahead f) args
  | EList es ->
      List.fold_left
        (fun acc a -> match acc with Some _ -> acc | None -> find_lookahead a)
        None es
  | _ -> None

let rec replace_expr ~target ~by (e : Ast.expr) : Ast.expr =
  if e = target then by
  else
    let go = replace_expr ~target ~by in
    match e with
    | EMember (b, f) -> EMember (go b, f)
    | EIndex (a, b) -> EIndex (go a, go b)
    | ESlice (b, hi, lo) -> ESlice (go b, hi, lo)
    | ECast (t, b) -> ECast (t, go b)
    | EUnop (op, b) -> EUnop (op, go b)
    | EBinop (op, a, b) -> EBinop (op, go a, go b)
    | ETernary (a, b, c) -> ETernary (go a, go b, go c)
    | ECall (f, args) -> ECall (go f, List.map go args)
    | EList es -> EList (List.map go es)
    | EMask (a, b) -> EMask (go a, go b)
    | ERange (a, b) -> ERange (go a, go b)
    | e -> e

(* Hoist the first lookahead out of [exprs]; [k] resumes with the
   rewritten expressions once none remain. *)
let rec hoist_lookaheads ctx fr st (exprs : Ast.expr list) k : branch list =
  let found = List.fold_left (fun acc e -> match acc with Some _ -> acc | None -> find_lookahead e) None exprs in
  match found with
  | None -> k st exprs
  | Some (ECall (EMember (_, "lookahead"), tyargs) as call) ->
      let w =
        match tyargs with
        | [ Ast.ETypeArg t ] -> Typing.width_of ctx.tctx t
        | _ -> fail "lookahead requires a type argument"
      in
      let outcomes = peek_bits ctx w st in
      List.concat_map
        (function
          | TakeOk (st', bits) ->
              let tmp = fresh_name ctx "$la" in
              let scope = List.hd fr.fr_scopes in
              let st' = declare ctx ~init:(init_zero ctx) (Ast.TBit w) (scope ^ "." ^ tmp) st' in
              let st' = write_leaf (scope ^ "." ^ tmp) bits st' in
              let exprs' =
                List.map (replace_expr ~target:call ~by:(Ast.EVar tmp)) exprs
              in
              hoist_lookaheads ctx fr st' exprs' k
          | TakeShort st' ->
              ctx.reject_hook ctx fr "PacketTooShort" (note "lookahead: too short" st'))
        outcomes
  | Some _ -> assert false

(* ------------------------------------------------------------------ *)
(* Branching helpers *)

let fork_cond ctx fr cond ~then_:(lt, st_t) ~else_:(le, st_e) : branch list =
  ignore ctx;
  ignore fr;
  if Expr.is_true cond then [ { br_cond = None; br_state = st_t; br_label = lt } ]
  else if Expr.is_false cond then [ { br_cond = None; br_state = st_e; br_label = le } ]
  else begin
    let taint = Expr.tainted cond in
    let mark st = if taint then { st with ctrl_taint = true } else st in
    [
      { br_cond = Some cond; br_state = mark st_t; br_label = lt };
      { br_cond = Some (Expr.bnot cond); br_state = mark st_e; br_label = le };
    ]
  end

(* ------------------------------------------------------------------ *)
(* Packet builtins *)

let rec do_extract ctx fr st (harg : Ast.expr) : branch list =
  (* resolve, advancing stack cursors for .next; Tofino-style targets
     also extract struct-typed intrinsic metadata, so any fixed-width
     composite is accepted (validity only applies to headers) *)
  match Eval.lvalue_of ctx fr st harg with
  | exception Exec_error msg
    when (match harg with Ast.EMember (_, "next") -> true | _ -> false) ->
      (* extracting past the end of a header stack *)
      ignore msg;
      ctx.reject_hook ctx fr "StackOutOfBounds" (note "stack overflow in extract" st)
  | lv -> do_extract_into ctx fr st harg lv

and do_extract_into ctx fr st (harg : Ast.expr) lv : branch list =
  let typ = lv.Eval.lv_typ in
  let is_header = Typing.is_header ctx.tctx typ in
  let w = Typing.width_of ctx.tctx typ in
  let bump_stack st =
    match harg with
    | Ast.EMember (b, "next") ->
        let base = Eval.lvalue_of ctx fr st b in
        let next = read_leaf st (base.lv_path ^ ".$next") in
        write_leaf (base.lv_path ^ ".$next") (Expr.add next (Expr.of_int ctx.ectx ~width:32 1)) st
    | _ -> st
  in
  List.concat_map
    (function
      | TakeOk (st', bits) ->
          let st' = Eval.write_tree ctx st' typ lv.lv_path bits in
          let st' =
            if is_header then write_leaf (lv.lv_path ^ ".$valid") (Expr.tru ctx.ectx) st' else st'
          in
          let st' = bump_stack st' in
          continue_ (note (Printf.sprintf "extract %s (%d bits)" lv.lv_path w) st')
      | TakeShort st' ->
          (* the header stays invalid with undefined content *)
          ctx.reject_hook ctx fr "PacketTooShort"
            (note (Printf.sprintf "extract %s: packet too short" lv.lv_path) st'))
    (take_bits ctx w st)

let do_advance ctx fr st (arg : Ast.expr) : branch list =
  let _, v = Eval.eval ~hint:32 ctx fr st arg in
  match Expr.is_const v with
  | Some b ->
      let w = Bits.to_int b in
      List.concat_map
        (function
          | TakeOk (st', _) -> continue_ (note (Printf.sprintf "advance %d" w) st')
          | TakeShort st' -> ctx.reject_hook ctx fr "PacketTooShort" st')
        (take_bits ctx w st)
  | None ->
      (* a dynamic advance amount needs symbolic-width slicing, which
         first-order bitvector logic cannot express (§2.3 challenge 4);
         like P4Testgen we branch over the concrete byte offsets *)
      let outcomes = ref [] in
      for bytes = 0 to 4 do
        let w = bytes * 8 in
        let cond = Expr.eq v (Expr.of_int ctx.ectx ~width:(Expr.width v) w) in
        List.iter
          (function
            | TakeOk (st', _) ->
                outcomes :=
                  { br_cond = Some cond; br_state = st'; br_label = Printf.sprintf "advance=%d" w }
                  :: !outcomes
            | TakeShort _ -> ())
          (take_bits ctx w st)
      done;
      List.rev !outcomes

let rec emit_one ctx fr (harg_path : string) (htyp : Ast.typ) st : branch list =
  match Typing.resolve ctx.tctx htyp with
  | Ast.TName n when Typing.header_fields ctx.tctx n <> None ->
      let valid = read_leaf st (harg_path ^ ".$valid") in
      let bits = Eval.header_emit_bits ctx st n harg_path in
      if Expr.is_true valid then continue_ (emit_bits bits st)
      else if Expr.is_false valid then continue_ st
      else
        fork_cond ctx fr valid
          ~then_:("emit:" ^ harg_path, emit_bits bits st)
          ~else_:("skip-emit:" ^ harg_path, st)
  | Ast.TName n -> (
      let members =
        match Typing.struct_fields ctx.tctx n with
        | Some fs -> Some fs
        | None -> Typing.union_fields ctx.tctx n
      in
      match members with
      | Some fs ->
          (* emit every member in order; queue as work so each fork is
             handled independently *)
          let ops =
            List.map
              (fun f ->
                WOp
                  ( "emit." ^ f.Ast.f_name,
                    fun ctx st -> emit_one ctx fr (harg_path ^ "." ^ f.Ast.f_name) f.Ast.f_typ st ))
              fs
          in
          continue_ (push_work ops st)
      | None -> fail "emit of unsupported type %s" n)
  | Ast.TStack (h, n) ->
      let ops =
        List.init n (fun i ->
            WOp
              ( Printf.sprintf "emit[%d]" i,
                fun ctx st -> emit_one ctx fr (Printf.sprintf "%s[%d]" harg_path i) (Ast.TName h) st ))
      in
      continue_ (push_work ops st)
  | _ -> fail "emit of non-header"

(* Two-argument extract: the header's (unique, trailing) varbit field
   receives [lenarg] bits.  A dynamic length cannot be expressed in
   first-order bitvector logic (§2.3 challenge 4), so like P4Testgen we
   branch over the concrete byte-aligned candidate lengths. *)
let do_extract_varbit ctx fr st (harg : Ast.expr) (lenarg : Ast.expr) : branch list =
  let lv = Eval.lvalue_of ctx fr st harg in
  let hname =
    match lv.Eval.lv_typ with
    | Ast.TName n when Typing.header_fields ctx.tctx n <> None -> n
    | _ -> fail "varbit extract into non-header"
  in
  let fields = Option.get (Typing.header_fields ctx.tctx hname) in
  let maxw =
    match
      List.find_map
        (fun f ->
          match Typing.resolve ctx.tctx f.Ast.f_typ with
          | Ast.TVarbit w -> Some w
          | _ -> None)
        fields
    with
    | Some w -> w
    | None -> fail "two-argument extract on a header without a varbit field"
  in
  let st, lenv = Eval.eval ~hint:32 ctx fr st lenarg in
  let lenv = Expr.zext lenv 32 in
  let extract_with st (len : int) : branch list =
    List.concat_map
      (fun outcome ->
        match outcome with
        | TakeOk (st', bits) ->
            let total = Expr.width bits in
            (* distribute the extracted bits across the fields, the
               varbit field receiving exactly [len] of them *)
            let st', _ =
              List.fold_left
                (fun (st', off) (f : Ast.field) ->
                  let fpath = lv.Eval.lv_path ^ "." ^ f.f_name in
                  match Typing.resolve ctx.tctx f.Ast.f_typ with
                  | Ast.TVarbit mw ->
                      let fb =
                        if len = 0 then Expr.zero ctx.ectx mw
                        else
                          Expr.concat
                            (Expr.slice bits ~hi:(total - off - 1) ~lo:(total - off - len))
                            (Expr.zero ctx.ectx (mw - len))
                      in
                      let st' = write_leaf fpath fb st' in
                      let st' = write_leaf (fpath ^ ".$vblen") (Expr.of_int ctx.ectx ~width:32 len) st' in
                      (st', off + len)
                  | t ->
                      let w = Typing.width_of ctx.tctx t in
                      let fb = Expr.slice bits ~hi:(total - off - 1) ~lo:(total - off - w) in
                      (Eval.write_tree ctx st' t fpath fb, off + w))
                (st', 0) fields
            in
            let st' = write_leaf (lv.Eval.lv_path ^ ".$valid") (Expr.tru ctx.ectx) st' in
            continue_ (note (Printf.sprintf "extract %s (varbit %d)" lv.Eval.lv_path len) st')
        | TakeShort st' ->
            ctx.reject_hook ctx fr "PacketTooShort"
              (note (Printf.sprintf "extract %s: packet too short" lv.Eval.lv_path) st'))
      (take_bits ctx (Typing.width_of ctx.tctx (Ast.TName hname) - maxw + len) st)
  in
  match Expr.is_const lenv with
  | Some b ->
      let len = Bits.to_int b in
      if len > maxw then ctx.reject_hook ctx fr "HeaderTooShort" st
      else extract_with st len
  | None ->
      (* candidate byte-aligned lengths, plus an overflow reject branch *)
      let candidates = List.init ((maxw / 8) + 1) (fun i -> i * 8) in
      let branches =
        List.concat_map
          (fun len ->
            let cond = Expr.eq lenv (Expr.of_int ctx.ectx ~width:32 len) in
            List.map
              (fun b ->
                { b with
                  br_cond =
                    Some
                      (match b.br_cond with
                      | Some c -> Expr.band cond c
                      | None -> cond) })
              (extract_with st len))
          candidates
      in
      let over = Expr.ugt lenv (Expr.of_int ctx.ectx ~width:32 maxw) in
      let reject_branches =
        List.map
          (fun b ->
            { b with
              br_cond =
                Some
                  (match b.br_cond with
                  | Some c -> Expr.band over c
                  | None -> over) })
          (ctx.reject_hook ctx fr "HeaderTooShort" st)
      in
      branches @ reject_branches

(* ------------------------------------------------------------------ *)
(* Table application plumbing *)

let push_applied ctx fr (ap : Tables.applied) ~after st_extra : branch list =
  ignore st_extra;
  let st = ap.Tables.ap_state in
  let st = cover Ast.no_pos st in
  let st = push_work after st in
  let decl = Tables.action_decl ctx fr ap.ap_action in
  let st = invoke_action ctx fr decl ap.ap_args st in
  [
    {
      br_cond = ap.ap_cond;
      br_state = note ("action " ^ ap.ap_action) st;
      br_label = ap.ap_label;
    };
  ]

let apply_table ctx fr st tbl ~after : branch list =
  List.concat_map (fun ap -> push_applied ctx fr ap ~after st) (Tables.apply ctx fr st tbl)

(* recognizers for table-result conditions *)
let rec table_of_cond fr (e : Ast.expr) :
    (Ast.table * [ `Hit | `Miss ]) option =
  match e with
  | EMember (ECall (EMember (EVar t, "apply"), []), "hit") ->
      Option.map (fun tb -> (tb, `Hit)) (find_table fr t)
  | EMember (ECall (EMember (EVar t, "apply"), []), "miss") ->
      Option.map (fun tb -> (tb, `Miss)) (find_table fr t)
  | EUnop (LNot, inner) ->
      Option.map
        (fun (tb, s) -> (tb, match s with `Hit -> `Miss | `Miss -> `Hit))
        (table_of_cond fr inner)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec exec_stmt ctx (fr : frame) st (s : Ast.stmt) : branch list =
  match s with
  | SEmpty -> continue_ st
  | SBlock b -> continue_ (push_stmts fr b st)
  | SAssign (pos, lhs, rhs) ->
      hoist_lookaheads ctx fr st [ rhs ]
        (fun st exprs ->
          let rhs = List.hd exprs in
          let st = cover pos st in
          let lv = Eval.lvalue_of ctx fr st lhs in
          if Typing.is_header ctx.tctx lv.lv_typ || Typing.is_struct ctx.tctx lv.lv_typ then
            (* composite copy, including validity bits *)
            continue_ (Eval.copy_lvalue ctx fr st ~src:rhs ~dst:lhs)
          else begin
            let w = Typing.width_of ctx.tctx lv.lv_typ in
            let w = match lv.lv_slice with Some (hi, lo) -> hi - lo + 1 | None -> w in
            let st, v = Eval.eval ~hint:w ctx fr st rhs in
            let v = if Expr.width v <> w then Expr.zext v w else v in
            continue_ (Eval.write_lvalue ctx fr st lhs v)
          end)
  | SCall (pos, f, args) -> exec_call ctx fr (cover pos st) f args
  | SIf (pos, cond, then_, else_) -> (
      let st = cover pos st in
      match table_of_cond fr cond with
      | Some (tbl, sense) ->
          List.concat_map
            (fun (ap : Tables.applied) ->
              let hit_branch = match sense with `Hit -> ap.ap_hit | `Miss -> not ap.ap_hit in
              let body = if hit_branch then then_ else else_ in
              push_applied ctx fr ap ~after:(List.map (fun s -> WStmt (fr, s)) body) st)
            (Tables.apply ctx fr st tbl)
      | None ->
          hoist_lookaheads ctx fr st [ cond ] (fun st exprs ->
              let cond = List.hd exprs in
              let st, v = Eval.eval ctx fr st cond in
              fork_cond ctx fr v
                ~then_:("then", push_stmts fr then_ st)
                ~else_:("else", push_stmts fr else_ st)))
  | SSwitch (pos, e, cases) -> (
      let st = cover pos st in
      match e with
      | EMember (ECall (EMember (EVar t, "apply"), []), "action_run") -> (
          match find_table fr t with
          | Some tbl ->
              List.concat_map
                (fun (ap : Tables.applied) ->
                  let body = switch_body_for cases ap.Tables.ap_action in
                  push_applied ctx fr ap ~after:(List.map (fun s -> WStmt (fr, s)) body) st)
                (Tables.apply ctx fr st tbl)
          | None -> fail "switch on unknown table %s" t)
      | _ -> fail "switch is only supported on table.apply().action_run")
  | SVarDecl (_, t, n, init) -> (
      let scope = List.hd fr.fr_scopes in
      let path = scope ^ "." ^ n in
      let st = declare ctx ~init:(init_uninit ctx) t path st in
      match init with
      | None -> continue_ st
      | Some e ->
          hoist_lookaheads ctx fr st [ e ] (fun st exprs ->
              let e = List.hd exprs in
              let w = Typing.width_of ctx.tctx t in
              let st, v = Eval.eval ~hint:w ctx fr st e in
              continue_ (write_leaf path (Expr.zext v w) st)))
  | SConstDecl (_, t, n, e) ->
      let scope = List.hd fr.fr_scopes in
      let path = scope ^ "." ^ n in
      let st = declare ctx ~init:(init_zero ctx) t path st in
      let w = Typing.width_of ctx.tctx t in
      let st, v = Eval.eval ~hint:w ctx fr st e in
      continue_ (write_leaf path (Expr.zext v w) st)
  | SReturn (pos, _) -> continue_ (cover pos (pop_to_exit [ KAction; KControl ] st))
  | SExit pos -> continue_ (cover pos (pop_to_exit [ KControl ] st))

and switch_body_for cases action =
  (* first case listing the action; otherwise the default case *)
  let matching =
    List.find_opt (fun c -> List.mem action c.Ast.sw_labels) cases
  in
  let chosen =
    match matching with
    | Some c -> Some c
    | None -> List.find_opt (fun c -> List.mem "default" c.Ast.sw_labels) cases
  in
  match chosen with Some { sw_body = Some b; _ } -> b | _ -> []

and exec_call ctx fr st (f : Ast.expr) (args : Ast.expr list) : branch list =
  match (f, args) with
  (* packet operations *)
  | EMember (pkt, "extract"), [ harg ] when is_packet_ref st fr pkt -> do_extract ctx fr st harg
  | EMember (pkt, "extract"), [ harg; lenarg ] when is_packet_ref st fr pkt ->
      do_extract_varbit ctx fr st harg lenarg
  | EMember (pkt, "advance"), [ arg ] when is_packet_ref st fr pkt -> do_advance ctx fr st arg
  | EMember (pkt, "emit"), [ harg ] when is_packet_ref st fr pkt ->
      let lv = Eval.lvalue_of ctx fr st harg in
      emit_one ctx fr lv.lv_path lv.lv_typ st
  (* header validity *)
  | EMember (h, "setValid"), [] ->
      let lv = Eval.lvalue_of ctx fr st h in
      continue_ (write_leaf (lv.lv_path ^ ".$valid") (Expr.tru ctx.ectx) st)
  | EMember (h, "setInvalid"), [] ->
      let lv = Eval.lvalue_of ctx fr st h in
      continue_ (write_leaf (lv.lv_path ^ ".$valid") (Expr.fls ctx.ectx) st)
  (* header stacks *)
  | EMember (h, "push_front"), [ Ast.EInt { iv; _ } ] -> continue_ (stack_shift ctx fr st h iv)
  | EMember (h, "pop_front"), [ Ast.EInt { iv; _ } ] -> continue_ (stack_shift ctx fr st h (-iv))
  (* core parser verify *)
  | EVar "verify", [ cond; err ] ->
      hoist_lookaheads ctx fr st [ cond ] (fun st exprs ->
          let cond = List.hd exprs in
          let st, v = Eval.eval ctx fr st cond in
          let err_name =
            match err with
            | Ast.EMember (Ast.EVar "error", n) -> n
            | _ -> "ParserInvalidArgument"
          in
          if Expr.is_true v then continue_ st
          else if Expr.is_false v then ctx.reject_hook ctx fr err_name st
          else
            { br_cond = Some v; br_state = st; br_label = "verify-ok" }
            :: List.map
                 (fun b -> { b with br_cond = Some (Expr.band (Expr.bnot v) (Option.value b.br_cond ~default:(Expr.tru ctx.ectx))) })
                 (ctx.reject_hook ctx fr err_name st))
  (* table application as a statement *)
  | EMember (EVar t, "apply"), [] -> (
      match find_table fr t with
      | Some tbl -> apply_table ctx fr st tbl ~after:[]
      | None -> dispatch_extern ctx fr st f args)
  (* direct action invocation *)
  | EVar name, _ when find_action ctx fr name <> None ->
      let decl = Option.get (find_action ctx fr name) in
      let st, vals =
        List.fold_left2
          (fun (st, acc) (p : Ast.param) arg ->
            let w = Typing.width_of ctx.tctx p.par_typ in
            let st, v = Eval.eval ~hint:w ctx fr st arg in
            (st, (p, Expr.zext v w) :: acc))
          (st, []) decl.act_params args
      in
      continue_ (invoke_action ctx fr decl (List.rev vals) st)
  | _ -> dispatch_extern ctx fr st f args

and is_packet_ref st fr (e : Ast.expr) =
  match e with
  | Ast.EVar n -> resolve_var st fr n = None
  | _ -> false

and stack_shift ctx fr st (h : Ast.expr) (k : int) : state =
  let lv = Eval.lvalue_of ctx fr st h in
  match lv.lv_typ with
  | Ast.TStack (hn, n) ->
      let read_elem i = Eval.read_tree ctx st (Ast.TName hn) (Printf.sprintf "%s[%d]" lv.lv_path i) in
      let read_valid i = read_leaf st (Printf.sprintf "%s[%d].$valid" lv.lv_path i) in
      let values = List.init n read_elem and valids = List.init n read_valid in
      let st = ref st in
      for i = 0 to n - 1 do
        let src = i - k in
        let path = Printf.sprintf "%s[%d]" lv.lv_path i in
        if src >= 0 && src < n then begin
          st := Eval.write_tree ctx !st (Ast.TName hn) path (List.nth values src);
          st := write_leaf (path ^ ".$valid") (List.nth valids src) !st
        end
        else begin
          st := write_leaf (path ^ ".$valid") (Expr.fls ctx.ectx) !st
        end
      done;
      (* adjust the next cursor, clamped to the stack bounds *)
      let nextp = lv.lv_path ^ ".$next" in
      let cur =
        match Expr.is_const (read_leaf !st nextp) with
        | Some b -> Bits.to_int b
        | None -> 0
      in
      write_leaf nextp (Expr.of_int ctx.ectx ~width:32 (max 0 (min n (cur + k)))) !st
  | _ -> fail "push_front/pop_front on non-stack"

and dispatch_extern ctx fr st (f : Ast.expr) (args : Ast.expr list) : branch list =
  let name =
    match f with
    | Ast.EVar n -> n
    | Ast.EMember (Ast.EVar obj, m) -> obj ^ "." ^ m
    | _ -> fail "unsupported call target %s" (Pretty.expr_to_string f)
  in
  match ctx.extern_hook ctx name args fr st with
  | RVal (st, _) -> continue_ st
  | RUnit st -> continue_ st
  | RBranch bs -> bs

(* ------------------------------------------------------------------ *)
(* Parser states *)

let rec exec_parser_state ctx (fr : frame) st (name : string) : branch list =
  let pd = match fr.fr_parser with Some p -> p | None -> fail "parser state outside parser" in
  let visits = Option.value (Env.find_opt name st.state_visits) ~default:0 in
  if visits >= ctx.opts.unroll_bound then
    (* unrolling bound reached: abandon this path (the paper unrolls
       parser loops up to a bound, §4) *)
    []
  else begin
    let st = { st with state_visits = Env.add name (visits + 1) st.state_visits } in
    match List.find_opt (fun s -> s.Ast.st_name = name) pd.p_states with
    | None -> fail "unknown parser state %s" name
    | Some decl ->
        let st = note ("state " ^ name) st in
        let trans_op = WOp ("transition:" ^ name, fun ctx st -> exec_transition ctx fr st decl.st_trans) in
        let st = push_work [ trans_op ] st in
        continue_ (push_stmts fr decl.st_stmts st)
  end

and exec_transition ctx (fr : frame) st (tr : Ast.transition) : branch list =
  match tr with
  | TrDirect "accept" -> continue_ (note "accept" st)
  | TrDirect "reject" -> ctx.reject_hook ctx fr "NoError" st
  | TrDirect next -> continue_ (push_work [ WParserState (fr, next) ] st)
  | TrSelect (keys, cases) ->
      hoist_lookaheads ctx fr st keys (fun st keys ->
          let st, keyvals =
            List.fold_left
              (fun (st, acc) k ->
                let st, v = Eval.eval ctx fr st k in
                (st, v :: acc))
              (st, []) keys
          in
          let keyvals = List.rev keyvals in
          let tainted = List.exists Expr.tainted keyvals in
          (* a select case whose pattern is a parser value set: the hit
             needs a synthesized control-plane member; the fall-through
             corresponds to an empty set, which adds no constraint *)
          let value_set_of (c : Ast.select_case) =
            match c.sel_keys with
            | [ Ast.EVar n ] -> (
                match resolve_var st fr n with
                | Some (path, Ast.TSpec ("value_set", [ elem ])) -> Some (n, path, elem)
                | _ -> None)
            | _ -> None
          in
          let case_cond st (c : Ast.select_case) =
            if List.length c.sel_keys <> List.length keyvals then
              fail "select pattern arity mismatch";
            List.fold_left2
              (fun (st, acc) keyv pat ->
                let st, m = Tables.match_pattern ctx fr st keyv pat in
                (st, Expr.band acc m))
              (st, Expr.tru ctx.ectx) keyvals c.sel_keys
          in
          let _, branches, miss =
            List.fold_left
              (fun (i, acc, misses) (c : Ast.select_case) ->
                match value_set_of c with
                | Some (vsname, _path, elem) ->
                    let w = Typing.width_of ctx.tctx elem in
                    let keyv = Expr.zext (List.hd keyvals) w in
                    let member = fresh_var ctx ("$vs_" ^ vsname) w in
                    let cond = Expr.band (Expr.eq keyv member) (Expr.conj ctx.ectx misses) in
                    let entry =
                      {
                        se_table = vsname;
                        se_keys = [ ("member", SkExact member) ];
                        se_action = "__vs_member__";
                        se_args = [];
                        se_priority = None;
                      }
                    in
                    let st' =
                      { st with
                        ctrl_taint = st.ctrl_taint || tainted;
                        entries = entry :: st.entries }
                    in
                    let b =
                      match c.sel_next with
                      | "accept" ->
                          [ { br_cond = Some cond; br_state = st'; br_label = "vs:accept" } ]
                      | "reject" ->
                          List.map
                            (fun b ->
                              { b with br_cond = Some (Expr.band cond (Option.value b.br_cond ~default:(Expr.tru ctx.ectx))) })
                            (ctx.reject_hook ctx fr "NoError" st')
                      | next ->
                          [
                            {
                              br_cond = Some cond;
                              br_state = push_work [ WParserState (fr, next) ] st';
                              br_label = "vs:" ^ next;
                            };
                          ]
                    in
                    (* fall-through: the value set is empty in those
                       tests, so no negated constraint is added *)
                    (i + 1, b @ acc, misses)
                | None ->
                let st, m = case_cond st c in
                let cond = Expr.band m (Expr.conj ctx.ectx misses) in
                let st' = { st with ctrl_taint = st.ctrl_taint || tainted } in
                let b =
                  match c.sel_next with
                  | "accept" ->
                      [ { br_cond = Some cond; br_state = st'; br_label = "select:accept" } ]
                  | "reject" ->
                      List.map
                        (fun b ->
                          { b with br_cond = Some (Expr.band cond (Option.value b.br_cond ~default:(Expr.tru ctx.ectx))) })
                        (ctx.reject_hook ctx fr "NoError" st')
                  | next ->
                      [
                        {
                          br_cond = Some cond;
                          br_state = push_work [ WParserState (fr, next) ] st';
                          br_label = "select:" ^ next;
                        };
                      ]
                in
                (i + 1, b @ acc, Expr.bnot m :: misses))
              (0, [], []) cases
          in
          (* no case matched: NoMatch error *)
          let miss_cond = Expr.conj ctx.ectx miss in
          let miss_branches =
            if Expr.is_false miss_cond then []
            else
              List.map
                (fun b ->
                  { b with br_cond = Some (Expr.band miss_cond (Option.value b.br_cond ~default:(Expr.tru ctx.ectx))) })
                (ctx.reject_hook ctx fr "NoMatch" { st with ctrl_taint = st.ctrl_taint || tainted })
          in
          List.rev branches @ miss_branches)

(* ------------------------------------------------------------------ *)
(* Top-level step *)

let step ctx (st : state) : branch list option =
  match st.work with
  | [] -> None
  | w :: rest ->
      let st = { st with work = rest } in
      let branches =
        match w with
        | WStmt (fr, s) -> exec_stmt ctx fr st s
        | WParserState (fr, name) -> exec_parser_state ctx fr st name
        | WOp (_, f) -> f ctx st
        | WExitFrame (_, _, f) -> continue_ (f ctx st)
      in
      Some branches
