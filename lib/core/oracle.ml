(* Top-level test-oracle API: everything from P4 source to tests.

   Mirrors the three-phase workflow of §4:
   1. parse + prelude + mid-end passes ([prepare]),
   2. symbolic execution over whole-program semantics ([Explore.run]
      with the target's pipeline template),
   3. abstract test specifications ([Testspec.t]) that back ends
      concretize. *)

open Runtime

type prepared = {
  ctx : Runtime.ctx;
  prog : P4.Ast.program;
  target : (module Target_intf.S);
  prep_time : float;
}

let prepare ?(opts = Runtime.default_options) ?obs (target : (module Target_intf.S))
    (source : string) : prepared =
  let module T = (val target) in
  (* the run's registry exists before its term context: the front-end
     phases below are already observed *)
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let t0 = Obs.Clock.now () in
  let sp = Obs.Span.enter obs "prepare" in
  (* [Runtime.make_ctx] below allocates a fresh term context for this
     run, so two prepared values coexist: terms and solvers of one run
     stay valid while another run explores *)
  let prelude, user =
    Obs.Span.with_ obs "parse" (fun () ->
        (P4.Parser.parse_program T.prelude, P4.Parser.parse_program source))
  in
  let prog, nstmts, tctx =
    Obs.Span.with_ obs "passes" (fun () ->
        let prog = prelude @ user in
        let prog = P4.Passes.fold prog in
        let tctx = P4.Typing.build prog in
        let prog = P4.Passes.elim_stack_indices tctx prog in
        let prog, nstmts = P4.Passes.number_statements prog in
        (prog, nstmts, tctx))
  in
  let ctx = Runtime.make_ctx ~opts ~obs prog ~nstmts tctx in
  ctx.extern_hook <- T.extern;
  ctx.reject_hook <- T.on_reject;
  (* sequence boundary: archive the finished packet, then let the
     target re-initialise its intrinsic metadata for the next one, so
     extern state (registers, counters, meters) persists while
     per-packet state starts fresh *)
  ctx.next_packet_hook <-
    (fun ctx st -> T.init ctx (Runtime.next_packet ctx ~port_width:T.port_width st));
  Obs.Span.exit obs sp;
  let prep_time = Obs.Clock.now () -. t0 in
  Obs.Timer.add (Obs.Registry.timer obs "oracle.prep_time") prep_time;
  { ctx; prog; target; prep_time }

let initial_state (p : prepared) : Runtime.state =
  let module T = (val p.target) in
  let st = Runtime.initial_state p.ctx ~port_width:T.port_width in
  T.init p.ctx st

type run = { result : Explore.result; prepared : prepared }

let registry (r : run) = r.prepared.ctx.Runtime.obs

(* A fresh, independent replica of a prepared run for a worker domain:
   its own term context and registry over the same (immutable, already
   passed) program, re-initialised by the same target.  Because
   [make_ctx] and [T.init] are deterministic, the replica's initial
   state is structurally identical to [initial_state p].  The frontier
   driver normally starts a subtree task from a snapshot of the
   splitter's state; this replica is its replay *fallback* for tasks
   whose snapshot would exceed [config.snapshot_max_bytes] — and the
   soundness basis of prefix replay in general (checkpoint/shard). *)
let fresh_instance (p : prepared) (reg : Obs.Registry.t) :
    Runtime.ctx * Runtime.state =
  let module T = (val p.target) in
  let ctx =
    Runtime.make_ctx ~opts:p.ctx.Runtime.opts ~obs:reg p.prog
      ~nstmts:p.ctx.Runtime.nstmts p.ctx.Runtime.tctx
  in
  ctx.Runtime.extern_hook <- T.extern;
  ctx.Runtime.reject_hook <- T.on_reject;
  ctx.Runtime.next_packet_hook <-
    (fun ctx st -> T.init ctx (Runtime.next_packet ctx ~port_width:T.port_width st));
  let st = Runtime.initial_state ctx ~port_width:T.port_width in
  (ctx, T.init ctx st)

let generate ?(opts = Runtime.default_options) ?(config = Explore.default_config)
    (target : (module Target_intf.S)) (source : string) : run =
  let p = prepare ~opts target source in
  let st = initial_state p in
  let result = Explore.run ~config ~fresh:(fresh_instance p) p.ctx st in
  { result; prepared = p }

(* ------------------------------------------------------------------ *)
(* Batch driver: many oracle jobs across OCaml domains.

   Each job owns its term context (created by [prepare]) and its own
   solver stack, so jobs share no mutable term state; the only shared
   structure is the atomic work-queue index that idle domains pull
   from.  A job's result therefore depends only on its own options
   (in particular the seed), never on scheduling — [jobs = 1] and
   [jobs = N] produce identical test sets per job. *)

type job = {
  job_label : string;
  job_target : (module Target_intf.S);
  job_source : string;
  job_opts : Runtime.options;
  job_config : Explore.config;
}

let job ?(opts = Runtime.default_options) ?(config = Explore.default_config)
    ~label target source =
  {
    job_label = label;
    job_target = target;
    job_source = source;
    job_opts = opts;
    job_config = config;
  }

type outcome = Finished of run | Failed of string

type batch = {
  outcomes : (string * outcome) list;  (* in submission order *)
  merged_stats : Explore.stats;
  merged_obs : Obs.Snapshot.t;
  batch_wall : float;
}

let run_job j =
  try Finished (generate ~opts:j.job_opts ~config:j.job_config j.job_target j.job_source)
  with e -> Failed (Printexc.to_string e)

let generate_batch ?(jobs = 1) (js : job list) : batch =
  let t0 = Obs.Clock.now () in
  let arr = Array.of_list js in
  let n = Array.length arr in
  let out = Array.make n (Failed "not run") in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        out.(i) <- run_job arr.(i);
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min jobs n) in
  (* extra domains come out of the shared pool, so [--jobs J] composed
     with per-job [path_jobs] stays within one process-wide domain
     budget instead of multiplying *)
  let extra = Explore.Pool.acquire (workers - 1) in
  if extra = 0 then worker ()
  else begin
    let domains = List.init extra (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Explore.Pool.release extra
  end;
  (* every job owns its registry (created by its [prepare]), so the
     per-domain snapshots merge associatively with no synchronization;
     the stats record is the same façade projected from the merge *)
  let merged_obs =
    Array.fold_left
      (fun acc o ->
        match o with
        | Finished r -> Obs.Snapshot.merge acc (Obs.Registry.snapshot (registry r))
        | Failed _ -> acc)
      Obs.Snapshot.empty out
  in
  {
    outcomes = Array.to_list (Array.map2 (fun j o -> (j.job_label, o)) arr out);
    merged_stats = Explore.stats_of_snapshot merged_obs;
    merged_obs;
    batch_wall = Obs.Clock.now () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Coverage report (§7, "What exactly do P4Testgen's tests cover?") *)

type coverage_report = {
  covered_count : int;
  total_count : int;
  percentage : float;
  uncovered : int list;  (** statement ids never exercised *)
}

let coverage_report (r : run) : coverage_report =
  let covered = r.result.Explore.covered in
  let total = r.result.Explore.total_stmts in
  let uncovered =
    List.filter (fun i -> not (IntSet.mem i covered)) (List.init total (fun i -> i + 1))
  in
  {
    covered_count = IntSet.cardinal covered;
    total_count = total;
    percentage = Explore.coverage_pct r.result;
    uncovered;
  }

let pp_coverage ppf (c : coverage_report) =
  Format.fprintf ppf "statement coverage: %d/%d (%.1f%%)" c.covered_count c.total_count
    c.percentage;
  if c.uncovered <> [] then
    Format.fprintf ppf "; uncovered ids: %s"
      (String.concat "," (List.map string_of_int c.uncovered))
