(* Top-level test-oracle API: everything from P4 source to tests.

   Mirrors the three-phase workflow of §4:
   1. parse + prelude + mid-end passes ([prepare]),
   2. symbolic execution over whole-program semantics ([Explore.run]
      with the target's pipeline template),
   3. abstract test specifications ([Testspec.t]) that back ends
      concretize. *)

open Runtime

type prepared = {
  ctx : Runtime.ctx;
  prog : P4.Ast.program;
  target : (module Target_intf.S);
  prep_time : float;
  qstore : Smt.Qcache.store;
}

(* ------------------------------------------------------------------ *)
(* Structured preparation errors.

   The raising [prepare] below is the historical entry point (the CLI
   keys its exit behavior on the exception constructors); a long-lived
   caller — the serve daemon — needs the same failures as data so one
   bad program fails one request instead of the process. *)

type prepare_error =
  | Parse_error of { msg : string; line : int; col : int }
      (** lexer or parser rejection, with the source position *)
  | Type_error of string  (** the program is not well-typed *)
  | Arch_error of string
      (** the program does not fit the target architecture
          (mid-end/instantiation failures, {!Runtime.Exec_error}) *)

let prepare_error_message = function
  | Parse_error { msg; line; col } ->
      Printf.sprintf "%d:%d: parse error: %s" line col msg
  | Type_error msg -> "type error: " ^ msg
  | Arch_error msg -> msg

let prepare_error_kind = function
  | Parse_error _ -> "parse"
  | Type_error _ -> "typecheck"
  | Arch_error _ -> "exec"

(* the raising [prepare] reconstructs the original exception, so
   pre-existing handlers (CLI, tests) observe exactly what they always
   did *)
let raise_prepare_error = function
  | Parse_error { msg; line; col } ->
      raise (P4.Parser.Error (msg, { P4.Ast.line; col }))
  | Type_error msg -> raise (P4.Typing.Type_error msg)
  | Arch_error msg -> raise (Runtime.Exec_error msg)

(* ------------------------------------------------------------------ *)
(* Program fingerprints: the cache key of the prepared-oracle cache.

   The key digests the *token stream* of the source (so whitespace and
   comments cannot cause a miss), the architecture name (the prelude is
   part of what [prepare] compiles), and a format version.  The mid-end
   passes are options-independent today — [Runtime.options] only
   steers exploration — so no option joins the hash; if a pass ever
   starts reading an option, that field must be appended here and the
   version bumped, or stale prepared values would be served. *)

(* fp2: the prepared value now carries a query-cache store
   ([qstore]) whose digest sets are derived from the compiled term
   graph — prepared payloads from fp1 builds are not equivalent, so
   the version bumps (see DESIGN.md, "Fingerprint versioning") *)
let fingerprint_version = "p4tg-fp2"

let fingerprint ~arch (source : string) : (string, prepare_error) result =
  let buf = Buffer.create (String.length source) in
  Buffer.add_string buf fingerprint_version;
  Buffer.add_char buf '\000';
  Buffer.add_string buf arch;
  Buffer.add_char buf '\000';
  let add_token (t : P4.Lexer.token) =
    (match t with
    | P4.Lexer.IDENT s ->
        Buffer.add_string buf "i:";
        Buffer.add_string buf s
    | P4.Lexer.NUMBER { iv; width; signed; base = _ } ->
        (* base is notation, not meaning: 0x10 and 16 are the same
           token; width and signedness are semantic *)
        Buffer.add_string buf
          (Printf.sprintf "n:%d:%s:%b" iv
             (match width with Some w -> string_of_int w | None -> "-")
             signed)
    | P4.Lexer.STRING s ->
        Buffer.add_string buf "s:";
        Buffer.add_string buf s
    | t -> Buffer.add_string buf (P4.Lexer.show_token t));
    Buffer.add_char buf '\000'
  in
  match
    let lx = P4.Lexer.create source in
    let rec go () =
      match P4.Lexer.next lx with
      | P4.Lexer.EOF, _ -> ()
      | t, _ ->
          add_token t;
          go ()
    in
    go ()
  with
  | () -> Ok (Digest.to_hex (Digest.string (Buffer.contents buf)))
  | exception P4.Lexer.Error (msg, pos) ->
      Error (Parse_error { msg; line = pos.P4.Ast.line; col = pos.P4.Ast.col })

let prepare ?(opts = Runtime.default_options) ?obs (target : (module Target_intf.S))
    (source : string) : prepared =
  let module T = (val target) in
  (* the run's registry exists before its term context: the front-end
     phases below are already observed *)
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let t0 = Obs.Clock.now () in
  let sp = Obs.Span.enter obs "prepare" in
  (* [Runtime.make_ctx] below allocates a fresh term context for this
     run, so two prepared values coexist: terms and solvers of one run
     stay valid while another run explores *)
  let prelude, user =
    Obs.Span.with_ obs "parse" (fun () ->
        (P4.Parser.parse_program T.prelude, P4.Parser.parse_program source))
  in
  let prog, nstmts, tctx =
    Obs.Span.with_ obs "passes" (fun () ->
        let prog = prelude @ user in
        let prog = P4.Passes.fold prog in
        let tctx = P4.Typing.build prog in
        let prog = P4.Passes.elim_stack_indices tctx prog in
        let prog, nstmts = P4.Passes.number_statements prog in
        (prog, nstmts, tctx))
  in
  let ctx = Runtime.make_ctx ~opts ~obs prog ~nstmts tctx in
  ctx.extern_hook <- T.extern;
  ctx.reject_hook <- T.on_reject;
  (* sequence boundary: archive the finished packet, then let the
     target re-initialise its intrinsic metadata for the next one, so
     extern state (registers, counters, meters) persists while
     per-packet state starts fresh *)
  ctx.next_packet_hook <-
    (fun ctx st -> T.init ctx (Runtime.next_packet ctx ~port_width:T.port_width st));
  Obs.Span.exit obs sp;
  let prep_time = Obs.Clock.now () -. t0 in
  Obs.Timer.add (Obs.Registry.timer obs "oracle.prep_time") prep_time;
  { ctx; prog; target; prep_time; qstore = Smt.Qcache.create_store () }

(* phase 1 as a result: every way the front end can reject a program,
   captured as data.  [prepare] keeps raising (reconstructed verbatim
   by [raise_prepare_error]), so existing exception handlers see no
   change. *)
let prepare_result ?opts ?obs target source : (prepared, prepare_error) result =
  match prepare ?opts ?obs target source with
  | p -> Ok p
  | exception P4.Lexer.Error (msg, pos) ->
      Error (Parse_error { msg; line = pos.P4.Ast.line; col = pos.P4.Ast.col })
  | exception P4.Parser.Error (msg, pos) ->
      Error (Parse_error { msg; line = pos.P4.Ast.line; col = pos.P4.Ast.col })
  | exception P4.Typing.Type_error msg -> Error (Type_error msg)
  | exception Runtime.Exec_error msg -> Error (Arch_error msg)

let initial_state (p : prepared) : Runtime.state =
  let module T = (val p.target) in
  let st = Runtime.initial_state p.ctx ~port_width:T.port_width in
  T.init p.ctx st

type run = { result : Explore.result; prepared : prepared }

let registry (r : run) = r.prepared.ctx.Runtime.obs

(* A fresh, independent replica of a prepared run for a worker domain:
   its own term context and registry over the same (immutable, already
   passed) program, re-initialised by the same target.  Because
   [make_ctx] and [T.init] are deterministic, the replica's initial
   state is structurally identical to [initial_state p].  The frontier
   driver normally starts a subtree task from a snapshot of the
   splitter's state; this replica is its replay *fallback* for tasks
   whose snapshot would exceed [config.snapshot_max_bytes] — and the
   soundness basis of prefix replay in general (checkpoint/shard). *)
let instance ~opts (p : prepared) (reg : Obs.Registry.t) :
    Runtime.ctx * Runtime.state =
  let module T = (val p.target) in
  let ctx =
    Runtime.make_ctx ~opts ~obs:reg p.prog ~nstmts:p.ctx.Runtime.nstmts
      p.ctx.Runtime.tctx
  in
  ctx.Runtime.extern_hook <- T.extern;
  ctx.Runtime.reject_hook <- T.on_reject;
  ctx.Runtime.next_packet_hook <-
    (fun ctx st -> T.init ctx (Runtime.next_packet ctx ~port_width:T.port_width st));
  let st = Runtime.initial_state ctx ~port_width:T.port_width in
  (ctx, T.init ctx st)

let fresh_instance (p : prepared) (reg : Obs.Registry.t) :
    Runtime.ctx * Runtime.state =
  instance ~opts:p.ctx.Runtime.opts p reg

(* [instantiate]: a request-scoped replica over the *cached* front-end
   work.  Unlike [fresh_instance] it takes its own options (a cached
   prepared value serves requests with any seed/strategy/budget — the
   mid-end artifacts do not depend on them, see [fingerprint]) and its
   own registry, so a daemon can account each request separately. *)
let instantiate ?(opts = Runtime.default_options) ?obs (p : prepared) :
    Runtime.ctx * Runtime.state =
  let reg = match obs with Some r -> r | None -> Obs.Registry.create () in
  instance ~opts p reg

(* route the prepared value's query-cache store into the exploration
   config unless the caller wired one explicitly: repeated runs over
   one prepared program then share SAT/UNSAT slice facts *)
let with_qstore (p : prepared) (config : Explore.config) =
  match config.Explore.qcache_store with
  | Some _ -> config
  | None -> { config with Explore.qcache_store = Some p.qstore }

let generate ?(opts = Runtime.default_options) ?(config = Explore.default_config)
    (target : (module Target_intf.S)) (source : string) : run =
  let p = prepare ~opts target source in
  let st = initial_state p in
  let result =
    Explore.run ~config:(with_qstore p config) ~fresh:(fresh_instance p) p.ctx st
  in
  { result; prepared = p }

(* End-to-end generation over an already-prepared program: phase 1 is
   skipped entirely (the warm path of the prepared-oracle cache).
   Because [Runtime.make_ctx] and the target's [init] are
   deterministic, the replica context is structurally identical to the
   one [generate] would have built from the same source and options —
   the test set is bit-identical to a single-shot [generate] with the
   same seed.  The returned run's [prep_time] is 0: this run paid no
   phase-1 cost. *)
let explore_prepared ?(opts = Runtime.default_options)
    ?(config = Explore.default_config) ?obs (p : prepared) : run =
  let reg = match obs with Some r -> r | None -> Obs.Registry.create () in
  let ctx, st = instance ~opts p reg in
  let result =
    Explore.run ~config:(with_qstore p config)
      ~fresh:(fun r -> instance ~opts p r)
      ctx st
  in
  { result; prepared = { p with ctx; prep_time = 0.0 } }

(* ------------------------------------------------------------------ *)
(* Batch driver: many oracle jobs across OCaml domains.

   Each job owns its term context (created by [prepare]) and its own
   solver stack, so jobs share no mutable term state; the only shared
   structure is the atomic work-queue index that idle domains pull
   from.  A job's result therefore depends only on its own options
   (in particular the seed), never on scheduling — [jobs = 1] and
   [jobs = N] produce identical test sets per job. *)

type job = {
  job_label : string;
  job_target : (module Target_intf.S);
  job_source : string;
  job_opts : Runtime.options;
  job_config : Explore.config;
}

let job ?(opts = Runtime.default_options) ?(config = Explore.default_config)
    ~label target source =
  {
    job_label = label;
    job_target = target;
    job_source = source;
    job_opts = opts;
    job_config = config;
  }

type outcome = Finished of run | Failed of string

type batch = {
  outcomes : (string * outcome) list;  (* in submission order *)
  merged_stats : Explore.stats;
  merged_obs : Obs.Snapshot.t;
  batch_wall : float;
}

let run_job j =
  try Finished (generate ~opts:j.job_opts ~config:j.job_config j.job_target j.job_source)
  with e -> Failed (Printexc.to_string e)

let generate_batch ?(jobs = 1) (js : job list) : batch =
  let t0 = Obs.Clock.now () in
  let arr = Array.of_list js in
  let n = Array.length arr in
  let out = Array.make n (Failed "not run") in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        out.(i) <- run_job arr.(i);
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min jobs n) in
  (* extra domains come out of the shared pool, so [--jobs J] composed
     with per-job [path_jobs] stays within one process-wide domain
     budget instead of multiplying *)
  let extra = Explore.Pool.acquire (workers - 1) in
  if extra = 0 then worker ()
  else begin
    let domains = List.init extra (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Explore.Pool.release extra
  end;
  (* every job owns its registry (created by its [prepare]), so the
     per-domain snapshots merge associatively with no synchronization;
     the stats record is the same façade projected from the merge *)
  let merged_obs =
    Array.fold_left
      (fun acc o ->
        match o with
        | Finished r -> Obs.Snapshot.merge acc (Obs.Registry.snapshot (registry r))
        | Failed _ -> acc)
      Obs.Snapshot.empty out
  in
  {
    outcomes = Array.to_list (Array.map2 (fun j o -> (j.job_label, o)) arr out);
    merged_stats = Explore.stats_of_snapshot merged_obs;
    merged_obs;
    batch_wall = Obs.Clock.now () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Coverage report (§7, "What exactly do P4Testgen's tests cover?") *)

type coverage_report = {
  covered_count : int;
  total_count : int;
  percentage : float;
  uncovered : int list;  (** statement ids never exercised *)
}

let coverage_report (r : run) : coverage_report =
  let covered = r.result.Explore.covered in
  let total = r.result.Explore.total_stmts in
  let uncovered =
    List.filter (fun i -> not (IntSet.mem i covered)) (List.init total (fun i -> i + 1))
  in
  {
    covered_count = IntSet.cardinal covered;
    total_count = total;
    percentage = Explore.coverage_pct r.result;
    uncovered;
  }

let pp_coverage ppf (c : coverage_report) =
  Format.fprintf ppf "statement coverage: %d/%d (%.1f%%)" c.covered_count c.total_count
    c.percentage;
  if c.uncovered <> [] then
    Format.fprintf ppf "; uncovered ids: %s"
      (String.concat "," (List.map string_of_int c.uncovered))
