(* Symbolic evaluation of P4 expressions against a {!Runtime.state}.

   Evaluation threads the state (concolic extern calls allocate
   placeholder variables) but never forks; constructs that fork
   (lookahead, table application, forking externs) are hoisted by
   {!Step} before this module sees them. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
open P4
open Runtime

(* ------------------------------------------------------------------ *)
(* L-values *)

type lvalue = {
  lv_path : string;  (** env key prefix of the referenced storage *)
  lv_typ : Ast.typ;  (** resolved type at that path *)
  lv_slice : (int * int) option;  (** bit slice of a leaf *)
}

let const_index st e =
  match e with
  | Ast.EInt { iv; _ } -> iv
  | _ ->
      ignore st;
      fail "header stack index must be constant after the stack-elimination pass (got %s)"
        (Pretty.expr_to_string e)

let rec lvalue_of ctx fr st (e : Ast.expr) : lvalue =
  match e with
  | EVar n -> (
      match resolve_var st fr n with
      | Some (path, t) -> { lv_path = path; lv_typ = Typing.resolve ctx.tctx t; lv_slice = None }
      | None -> fail "unbound variable %s" n)
  | EMember (b, f) -> (
      let base = lvalue_of ctx fr st b in
      match base.lv_typ with
      | TName tn -> (
          let fields =
            match Typing.header_fields ctx.tctx tn with
            | Some fs -> fs
            | None -> (
                match Typing.struct_fields ctx.tctx tn with
                | Some fs -> fs
                | None -> (
                    match Typing.union_fields ctx.tctx tn with
                    | Some fs -> fs
                    | None -> fail "member %s of non-composite type %s" f tn))
          in
          match List.find_opt (fun fd -> fd.Ast.f_name = f) fields with
          | Some fd ->
              {
                lv_path = base.lv_path ^ "." ^ f;
                lv_typ = Typing.resolve ctx.tctx fd.f_typ;
                lv_slice = None;
              }
          | None -> fail "unknown field %s of %s" f tn)
      | TStack (h, n) -> (
          match f with
          | "next" | "last" ->
              let next =
                match Expr.is_const (read_leaf st (base.lv_path ^ ".$next")) with
                | Some b -> Bits.to_int b
                | None -> fail "symbolic stack cursor for %s" base.lv_path
              in
              let idx = if f = "next" then next else next - 1 in
              if idx < 0 || idx >= n then fail "stack %s cursor out of bounds" base.lv_path
              else
                {
                  lv_path = Printf.sprintf "%s[%d]" base.lv_path idx;
                  lv_typ = TName h;
                  lv_slice = None;
                }
          | "lastIndex" -> fail "lastIndex is handled in Eval.eval"
          | _ -> fail "unknown stack member %s" f)
      | t -> fail "member %s of non-composite lvalue %s" f (Pretty.expr_to_string (Ast.EVar (Format.asprintf "%a" Pretty.pp_typ t))))
  | EIndex (b, i) -> (
      let base = lvalue_of ctx fr st b in
      match base.lv_typ with
      | TStack (h, n) ->
          let idx = const_index st i in
          if idx < 0 || idx >= n then fail "stack index %d out of bounds for %s" idx base.lv_path
          else
            {
              lv_path = Printf.sprintf "%s[%d]" base.lv_path idx;
              lv_typ = TName h;
              lv_slice = None;
            }
      | _ -> fail "index into non-stack %s" base.lv_path)
  | ESlice (b, hi, lo) -> (
      let base = lvalue_of ctx fr st b in
      match base.lv_slice with
      | None -> { base with lv_typ = TBit (hi - lo + 1); lv_slice = Some (hi, lo) }
      | Some (_, blo) ->
          (* x[h1:l1][h2:l2] reads bits [l1+h2 : l1+l2] of x *)
          { base with lv_typ = TBit (hi - lo + 1); lv_slice = Some (blo + hi, blo + lo) })
  | e -> fail "not an l-value: %s" (Pretty.expr_to_string e)

(* validity guard of the innermost enclosing header of a path, if any *)
let rec validity_of ctx fr st (e : Ast.expr) : Expr.t option =
  match e with
  | EMember (b, _) | EIndex (b, _) | ESlice (b, _, _) -> (
      match
        (try Some (lvalue_of ctx fr st b) with Exec_error _ -> None)
      with
      | Some lv when Typing.is_header ctx.tctx lv.lv_typ && (match lv.lv_typ with TName _ -> true | _ -> false)
        -> (
          match Env.find_opt (lv.lv_path ^ ".$valid") st.env with
          | Some v -> Some v
          | None -> validity_of ctx fr st b)
      | _ -> validity_of ctx fr st b)
  | _ -> None

(* Read the raw concatenated bits of a composite (or scalar) value. *)
let rec read_tree ctx st (t : Ast.typ) path : Expr.t =
  let t = Typing.resolve ctx.tctx t in
  match t with
  | TBit _ | TInt _ | TVarbit _ | TBool | TError -> read_leaf st path
  | TStack (h, n) ->
      let parts = List.init n (fun i -> read_tree ctx st (TName h) (Printf.sprintf "%s[%d]" path i)) in
      List.fold_left Expr.concat (Expr.zero ctx.ectx 0) parts
  | TName tn -> (
      let fields =
        match Typing.header_fields ctx.tctx tn with
        | Some fs -> Some fs
        | None -> (
            match Typing.struct_fields ctx.tctx tn with
            | Some fs -> Some fs
            | None -> Typing.union_fields ctx.tctx tn)
      in
      match fields with
      | Some fs ->
          List.fold_left
            (fun acc f -> Expr.concat acc (read_tree ctx st f.Ast.f_typ (path ^ "." ^ f.Ast.f_name)))
            (Expr.zero ctx.ectx 0) fs
      | None -> read_leaf st path)
  | TVoid | TSpec _ -> Expr.zero ctx.ectx 0

(* Write raw bits across the leaves of a composite value. *)
let rec write_tree ctx st (t : Ast.typ) path (bits : Expr.t) : state =
  let t = Typing.resolve ctx.tctx t in
  match t with
  | TBit _ | TInt _ | TVarbit _ | TBool | TError -> write_leaf path bits st
  | TName tn -> (
      let fields =
        match Typing.header_fields ctx.tctx tn with
        | Some fs -> Some fs
        | None -> Typing.struct_fields ctx.tctx tn
      in
      match fields with
      | Some fs ->
          let total = Expr.width bits in
          let st, _ =
            List.fold_left
              (fun (st, off) f ->
                let w = Typing.width_of ctx.tctx f.Ast.f_typ in
                let fb = Expr.slice bits ~hi:(total - off - 1) ~lo:(total - off - w) in
                (write_tree ctx st f.Ast.f_typ (path ^ "." ^ f.Ast.f_name) fb, off + w))
              (st, 0) fs
          in
          st
      | None -> write_leaf path bits st)
  | TStack (h, n) ->
      let hw = Typing.width_of ctx.tctx (Ast.TName h) in
      let total = Expr.width bits in
      let st = ref st in
      for i = 0 to n - 1 do
        let fb = Expr.slice bits ~hi:(total - (i * hw) - 1) ~lo:(total - ((i + 1) * hw)) in
        st := write_tree ctx !st (TName h) (Printf.sprintf "%s[%d]" path i) fb
      done;
      !st
  | TVoid | TSpec _ -> st

(* Serialize a header's wire bits, respecting dynamic varbit lengths
   (the stored varbit leaf is left-aligned at max width). *)
let header_emit_bits ctx st (hname : string) path : Expr.t =
  let fields =
    match Typing.header_fields ctx.tctx hname with
    | Some fs -> fs
    | None -> fail "header_emit_bits: unknown header %s" hname
  in
  List.fold_left
    (fun acc (f : Ast.field) ->
      let fpath = path ^ "." ^ f.f_name in
      match Typing.resolve ctx.tctx f.f_typ with
      | Ast.TVarbit maxw ->
          let len =
            match Expr.is_const (read_leaf st (fpath ^ ".$vblen")) with
            | Some b -> Bits.to_int b
            | None -> fail "symbolic varbit length at emit"
          in
          if len = 0 then acc
          else
            let v = read_leaf st fpath in
            Expr.concat acc (Expr.slice v ~hi:(maxw - 1) ~lo:(maxw - len))
      | t -> Expr.concat acc (read_tree ctx st t fpath))
    (Expr.zero ctx.ectx 0) fields

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let bool_width_check e v =
  if Expr.width v <> 1 then
    fail "expected a boolean (width-1) value for %s" (Pretty.expr_to_string e)
  else v

(* coerce an unsized-literal operand to the other operand's width *)
let coerce_pair a b =
  let wa = Expr.width a and wb = Expr.width b in
  if wa = wb then (a, b)
  else if wa = 0 then (Expr.zext a wb, b)
  else if wb = 0 then (a, Expr.zext b wa)
  else fail "width mismatch: %d vs %d" wa wb

let rec eval ?(hint = 0) ctx fr st (e : Ast.expr) : state * Expr.t =
  match e with
  | EBool true -> (st, Expr.tru ctx.ectx)
  | EBool false -> (st, Expr.fls ctx.ectx)
  | EInt { value = Some b; _ } -> (st, Expr.const ctx.ectx b)
  | EInt { iv; width = None; _ } ->
      let w = if hint > 0 then hint else 32 in
      (st, Expr.of_int ctx.ectx ~width:w iv)
  | EInt { iv; width = Some w; _ } -> (st, Expr.of_int ctx.ectx ~width:w iv)
  | EString _ -> fail "string in expression position"
  | EVar n -> (
      match resolve_var st fr n with
      | Some (path, t) -> eval_read ctx fr st e ~slice:None path (Typing.resolve ctx.tctx t)
      | None ->
          (* enum type name used bare, or error — resolved via EMember *)
          fail "unbound variable %s" n)
  | EMember (EVar "error", ename) ->
      (st, Expr.of_int ctx.ectx ~width:Typing.error_width (Typing.error_code ctx.tctx ename))
  | EMember (EVar base, m) when Hashtbl.mem ctx.tctx.Typing.enums base ->
      (st, Expr.of_int ctx.ectx ~width:Typing.enum_width (Typing.enum_code ctx.tctx base m))
  | EMember (EVar base, m) when Hashtbl.mem ctx.tctx.Typing.ser_enums base -> (
      let t, ms = Hashtbl.find ctx.tctx.Typing.ser_enums base in
      match List.assoc_opt m ms with
      | Some (EInt { iv; _ }) ->
          (st, Expr.of_int ctx.ectx ~width:(Typing.width_of ctx.tctx t) iv)
      | _ -> fail "unsupported serializable enum member %s.%s" base m)
  | EMember (b, "lastIndex") -> (
      let base = lvalue_of ctx fr st b in
      match base.lv_typ with
      | TStack _ ->
          let next = read_leaf st (base.lv_path ^ ".$next") in
          (st, Expr.sub next (Expr.of_int ctx.ectx ~width:32 1))
      | _ -> fail "lastIndex of non-stack")
  | EMember _ | EIndex _ | ESlice _ ->
      let lv = lvalue_of ctx fr st e in
      eval_read ctx fr st e ~slice:lv.lv_slice lv.lv_path lv.lv_typ
  | EUnop (LNot, a) ->
      let st, v = eval ctx fr st a in
      (st, Expr.bnot (bool_width_check a v))
  | EUnop (BitNot, a) ->
      let st, v = eval ~hint ctx fr st a in
      (st, Expr.lognot v)
  | EUnop (Neg, a) ->
      let st, v = eval ~hint ctx fr st a in
      (st, Expr.neg v)
  | EBinop (op, a, b) -> eval_binop ~hint ctx fr st op a b
  | ETernary (c, t, f) ->
      let st, vc = eval ctx fr st c in
      let st, vt = eval ~hint ctx fr st t in
      let st, vf = eval ~hint:(Expr.width vt) ctx fr st f in
      let vt, vf = coerce_pair vt vf in
      (st, Expr.ite (bool_width_check c vc) vt vf)
  | ECast (t, a) -> (
      let w = Typing.width_of ctx.tctx t in
      let st, v = eval ~hint:w ctx fr st a in
      match Typing.resolve ctx.tctx t with
      | TInt _ -> (st, Expr.sext v w)
      | TBool -> (st, Expr.neq v (Expr.zero ctx.ectx (Expr.width v)))
      | _ -> (st, Expr.zext v w))
  | ECall (EMember (b, "isValid"), []) ->
      let lv = lvalue_of ctx fr st b in
      (st, read_leaf st (lv.lv_path ^ ".$valid"))
  | ECall (EMember (_, "lookahead"), _) ->
      fail "lookahead must be hoisted before evaluation"
  | ECall (EMember (EVar t, "apply"), []) ->
      ignore t;
      fail "table application in expression position must be hoisted"
  | ECall (EVar fn, args) -> eval_extern ctx fr st fn args
  | ECall (EMember (EVar obj, m), args) ->
      (* extern object method in expression position *)
      eval_extern ctx fr st (obj ^ "." ^ m) args
  | ECall (f, _) -> fail "unsupported call %s" (Pretty.expr_to_string f)
  | EList es ->
      (* concatenation of the members (used for checksum/hash inputs) *)
      List.fold_left
        (fun (st, acc) e ->
          let st, v = eval ctx fr st e in
          (st, Expr.concat acc v))
        (st, Expr.zero ctx.ectx 0) es
  | ETypeArg _ -> fail "type argument in value position"
  | EDontCare -> fail "'_' in value position"
  | EDefault -> fail "'default' in value position"
  | EMask _ -> fail "mask pattern in value position"
  | ERange _ -> fail "range pattern in value position"

and eval_read ctx fr st e ~slice path t =
  let raw = read_tree ctx st t path in
  (* reading a field of an invalid header yields undefined content *)
  let guarded =
    match validity_of ctx fr st e with
    | Some v when Expr.is_true v -> raw
    | Some v when Expr.is_false v -> Expr.fresh_taint ctx.ectx (Expr.width raw)
    | Some v -> Expr.ite v raw (Expr.fresh_taint ctx.ectx (Expr.width raw))
    | None -> raw
  in
  let value =
    match slice with
    | Some (hi, lo) -> Expr.slice guarded ~hi ~lo
    | None -> guarded
  in
  (st, value)

and eval_binop ~hint ctx fr st op a b =
  let open Ast in
  match op with
  | LAnd ->
      let st, va = eval ctx fr st a in
      let st, vb = eval ctx fr st b in
      (st, Expr.band (bool_width_check a va) (bool_width_check b vb))
  | LOr ->
      let st, va = eval ctx fr st a in
      let st, vb = eval ctx fr st b in
      (st, Expr.bor (bool_width_check a va) (bool_width_check b vb))
  | Concat ->
      let st, va = eval ctx fr st a in
      let st, vb = eval ctx fr st b in
      (st, Expr.concat va vb)
  | Shl | Shr ->
      let st, va = eval ~hint ctx fr st a in
      let st, vb = eval ~hint:(Expr.width va) ctx fr st b in
      let vb = Expr.zext vb (Expr.width va) in
      let signed = is_signed_expr ctx fr st a in
      let f = match op with
        | Shl -> Expr.shl
        | _ -> if signed then Expr.ashr else Expr.lshr
      in
      (st, f va vb)
  | _ ->
      (* width-symmetric operators: evaluate the sized side first *)
      let st, va, vb =
        match (a, b) with
        | EInt { width = None; _ }, _ ->
            let st, vb = eval ~hint ctx fr st b in
            let st, va = eval ~hint:(Expr.width vb) ctx fr st a in
            (st, va, vb)
        | _ ->
            let st, va = eval ~hint ctx fr st a in
            let st, vb = eval ~hint:(Expr.width va) ctx fr st b in
            (st, va, vb)
      in
      let va, vb = coerce_pair va vb in
      let signed = is_signed_expr ctx fr st a || is_signed_expr ctx fr st b in
      let v =
        match op with
        | Add -> Expr.add va vb
        | Sub -> Expr.sub va vb
        | Mul -> Expr.mul va vb
        | Div -> Expr.udiv va vb
        | Mod -> Expr.urem va vb
        | AddSat ->
            (* unsigned saturating add: overflow -> all ones *)
            let w = Expr.width va in
            let ext = Expr.add (Expr.zext va (w + 1)) (Expr.zext vb (w + 1)) in
            let ovf = Expr.slice ext ~hi:w ~lo:w in
            Expr.ite (Expr.eq ovf (Expr.ones ctx.ectx 1)) (Expr.ones ctx.ectx w) (Expr.add va vb)
        | SubSat ->
            let underflow = Expr.ult va vb in
            Expr.ite underflow (Expr.zero ctx.ectx (Expr.width va)) (Expr.sub va vb)
        | BAnd -> Expr.logand va vb
        | BOr -> Expr.logor va vb
        | BXor -> Expr.logxor va vb
        | Eq -> Expr.eq va vb
        | Neq -> Expr.neq va vb
        | Lt -> if signed then Expr.slt va vb else Expr.ult va vb
        | Le -> if signed then Expr.sle va vb else Expr.ule va vb
        | Gt -> if signed then Expr.sgt va vb else Expr.ugt va vb
        | Ge -> if signed then Expr.sge va vb else Expr.uge va vb
        | Shl | Shr | LAnd | LOr | Concat -> assert false
      in
      (st, v)

and is_signed_expr ctx fr st (e : Ast.expr) =
  match e with
  | EInt { signed; _ } -> signed
  | ECast (t, _) -> Typing.is_signed ctx.tctx t
  | EVar _ | EMember _ | EIndex _ -> (
      match try Some (lvalue_of ctx fr st e) with Exec_error _ -> None with
      | Some lv -> Typing.is_signed ctx.tctx lv.lv_typ
      | None -> false)
  | _ -> false

and eval_extern ctx fr st fn args =
  match ctx.extern_hook ctx fn args fr st with
  | RVal (st, v) -> (st, v)
  | RUnit _ -> fail "extern %s returned no value in expression position" fn
  | RBranch _ -> fail "extern %s forks; not allowed in expression position" fn

(* ------------------------------------------------------------------ *)
(* L-value writes *)

let write_lvalue ctx fr st (lhs : Ast.expr) (v : Expr.t) : state =
  let lv = lvalue_of ctx fr st lhs in
  match lv.lv_slice with
  | Some (hi, lo) ->
      (* slices apply to scalar leaves: read-modify-write the leaf *)
      let base = lvalue_of ctx fr st (match lhs with Ast.ESlice (b, _, _) -> b | _ -> lhs) in
      let full = read_leaf st base.lv_path in
      let w = Expr.width full in
      let parts =
        [
          (if hi + 1 <= w - 1 then Some (Expr.slice full ~hi:(w - 1) ~lo:(hi + 1)) else None);
          Some v;
          (if lo > 0 then Some (Expr.slice full ~hi:(lo - 1) ~lo:0) else None);
        ]
      in
      let stitched =
        List.fold_left
          (fun acc p -> match p with Some e -> Expr.concat acc e | None -> acc)
          (Expr.zero ctx.ectx 0)
          parts
      in
      write_leaf base.lv_path stitched st
  | None ->
      let w = Typing.width_of ctx.tctx lv.lv_typ in
      let v = if Expr.width v = 0 && w > 0 then Expr.zero ctx.ectx w else v in
      if Expr.width v <> w then
        fail "assignment width mismatch at %s: %d vs %d" lv.lv_path (Expr.width v) w;
      let st = write_tree ctx st lv.lv_typ lv.lv_path v in
      (* assigning a whole header makes it valid; assigning between
         headers also copies validity, handled by Step for that case *)
      st

(* copy a composite value including validity bits *)
let copy_lvalue ctx fr st ~src ~dst =
  let slv = lvalue_of ctx fr st src and dlv = lvalue_of ctx fr st dst in
  let st = copy_tree ctx slv.lv_typ ~src:slv.lv_path ~dst:dlv.lv_path st in
  st
