(** The top-level test-oracle API — everything from P4 source to tests,
    mirroring the paper's three-phase workflow (§4):

    + {!prepare} parses the target's architecture prelude plus the user
      program and runs the mid-end passes (constant folding, dead-code
      elimination, stack-index elimination, statement numbering);
    + the target's pipeline template is instantiated
      ({!initial_state});
    + {!Explore.run} symbolically executes the whole-program semantics
      and emits abstract test specifications.

    {!generate} performs all three. *)

type prepared = {
  ctx : Runtime.ctx;
  prog : P4.Ast.program;
  target : (module Target_intf.S);
  prep_time : float;  (** seconds spent in phase 1 (Fig. 7's "IR prep") *)
  qstore : Smt.Qcache.store;
      (** query-cache store shared by every run over this prepared
          program: SAT/UNSAT slice facts published by one run are
          seeded into the next ({!generate}/{!explore_prepared} wire
          it into the exploration config unless the caller set one).
          Part of the prepared payload, hence fingerprint version
          "p4tg-fp2". *)
}

(** {1 Structured preparation errors} *)

type prepare_error =
  | Parse_error of { msg : string; line : int; col : int }
      (** lexer or parser rejection, with the source position *)
  | Type_error of string  (** the program is not well-typed *)
  | Arch_error of string
      (** the program does not fit the target architecture
          ({!Runtime.Exec_error} during phase 1) *)

val prepare_error_message : prepare_error -> string
(** Human-readable one-liner ("LINE:COL: parse error: ..."). *)

val prepare_error_kind : prepare_error -> string
(** Stable machine tag: ["parse"], ["typecheck"] or ["exec"] — the
    serve protocol's error kinds. *)

val raise_prepare_error : prepare_error -> 'a
(** Re-raises the exception the error was captured from
    ({!P4.Parser.Error}, {!P4.Typing.Type_error} or
    {!Runtime.Exec_error}), byte-for-byte as [prepare] would have
    raised it. *)

val prepare_result :
  ?opts:Runtime.options ->
  ?obs:Obs.Registry.t ->
  (module Target_intf.S) ->
  string ->
  (prepared, prepare_error) result
(** {!prepare} with every front-end failure captured as data instead
    of an exception — the entry point for long-lived callers (the
    serve daemon) where one bad program must fail one request, not the
    process. *)

(** {1 Program fingerprints}

    The cache key of the prepared-oracle cache ({!Serve} in
    [lib/serve]): a digest of the source's {e token stream} (so
    whitespace and comments never cause a cache miss), the
    architecture name, and a format version.  The mid-end is
    options-independent ([Runtime.options] only steers exploration),
    so no option joins the hash; a pass that starts reading an option
    must add that field here and bump {!fingerprint_version}. *)

val fingerprint_version : string

val fingerprint : arch:string -> string -> (string, prepare_error) result
(** [fingerprint ~arch source] is the hex cache key, or [Parse_error]
    when the source does not even lex. *)

val prepare :
  ?opts:Runtime.options ->
  ?obs:Obs.Registry.t ->
  (module Target_intf.S) ->
  string ->
  prepared
(** [prepare target source] runs phase 1.  Raises
    {!P4.Parser.Error} on syntax errors and {!Runtime.Exec_error} when
    the program does not fit the architecture.  Allocates a fresh
    {!Smt.Expr.ctx} for the run, so any number of prepared values can
    coexist and interleave; terms and solvers never cross runs.

    [obs] is the run's metrics registry (a fresh one is allocated when
    omitted, reachable as [ctx.Runtime.obs] or via {!registry}).  The
    whole stack reports into it: [prepare] records the [prepare] /
    [parse] / [passes] spans and the [oracle.prep_time] timer, and the
    explorer, solver, SAT core and concolic resolver add their own
    metrics during {!Explore.run}. *)

val initial_state : prepared -> Runtime.state
(** Pipeline-template instantiation (phase 2): the returned state has
    the target's block sequence and glue continuations queued. *)

type run = { result : Explore.result; prepared : prepared }

val registry : run -> Obs.Registry.t
(** The run's metrics registry — counters, timers and spans recorded
    by every layer during the run ([= run.prepared.ctx.Runtime.obs]).
    Export it with {!Obs.Trace.write_chrome} or print a
    {!Obs.Registry.snapshot}. *)

val fresh_instance :
  prepared -> Obs.Registry.t -> Runtime.ctx * Runtime.state
(** [fresh_instance p reg] builds an independent replica of the
    prepared run for a worker domain: a fresh term context reporting
    into [reg], over the same already-passed program, re-initialised
    by the same target.  Preparation is deterministic, so the replica's
    initial state is structurally identical to [initial_state p] —
    the soundness basis of {!Explore.run}'s prefix replay.  The
    frontier driver starts subtree tasks from state snapshots and uses
    this replica only as the replay fallback for tasks above
    [config.Explore.snapshot_max_bytes]. *)

val instantiate :
  ?opts:Runtime.options ->
  ?obs:Obs.Registry.t ->
  prepared ->
  Runtime.ctx * Runtime.state
(** A request-scoped replica over the cached front-end work: like
    {!fresh_instance}, but with caller-chosen options and registry.  A
    cached [prepared] value serves requests with any seed, strategy or
    budget — the mid-end artifacts do not depend on them (see
    {!fingerprint}).  Safe to call concurrently from several domains
    on the same [prepared]: only immutable preparation data is read. *)

val generate :
  ?opts:Runtime.options ->
  ?config:Explore.config ->
  (module Target_intf.S) ->
  string ->
  run
(** End-to-end test generation for a P4 source string.  When
    [config.Explore.path_jobs >= 1], path exploration itself runs on
    worker domains ({!Explore.run}'s frontier driver, seeded with
    {!fresh_instance}); the result is bit-identical for every
    [path_jobs] value [>= 1]. *)

val explore_prepared :
  ?opts:Runtime.options ->
  ?config:Explore.config ->
  ?obs:Obs.Registry.t ->
  prepared ->
  run
(** {!generate} minus phase 1 — the warm path of the prepared-oracle
    cache.  Explores a fresh {!instantiate}d replica, so the test set
    is bit-identical to a single-shot {!generate} of the same source
    with the same options, and several requests can explore the same
    [prepared] concurrently.  The returned run's [prep_time] is [0.]:
    this run paid no preparation. *)

(** {1 Batch driver}

    Runs many oracle jobs across OCaml domains.  Each job owns its
    term context and solver stack (created by its own {!prepare}), so
    jobs share no mutable term state; idle domains pull the next job
    from an atomic queue index.  Results depend only on each job's
    options (seed included), never on scheduling: [jobs = 1] and
    [jobs = N] produce identical test sets per job. *)

type job

val job :
  ?opts:Runtime.options ->
  ?config:Explore.config ->
  label:string ->
  (module Target_intf.S) ->
  string ->
  job
(** [job ~label target source] describes one end-to-end generation
    run, as {!generate} would perform it. *)

type outcome =
  | Finished of run
  | Failed of string  (** exception text of a job that raised *)

type batch = {
  outcomes : (string * outcome) list;
      (** (label, outcome) in submission order *)
  merged_stats : Explore.stats;
      (** the {!Explore.stats} façade projected from [merged_obs] *)
  merged_obs : Obs.Snapshot.t;
      (** per-domain metric registries, merged: counters and timers
          sum, gauges high-water.  Counter totals are scheduling
          independent — [jobs = 1] and [jobs = N] merge equal. *)
  batch_wall : float;  (** wall-clock seconds for the whole batch *)
}

val generate_batch : ?jobs:int -> job list -> batch
(** [generate_batch ~jobs js] runs the jobs on [min jobs (length js)]
    domains (the calling domain included).  [jobs] defaults to 1,
    which runs everything sequentially on the calling domain.  Extra
    domains are drawn from the process-wide {!Explore.Pool}, shared
    with per-job intra-program parallelism
    ([job_config.Explore.path_jobs]), so [jobs × path_jobs] never
    oversubscribes beyond one pool's worth of domains. *)

(** {1 Coverage reporting (§7)} *)

type coverage_report = {
  covered_count : int;
  total_count : int;
  percentage : float;
  uncovered : int list;  (** statement ids never exercised by any test *)
}

val coverage_report : run -> coverage_report
val pp_coverage : Format.formatter -> coverage_report -> unit
