(** The top-level test-oracle API — everything from P4 source to tests,
    mirroring the paper's three-phase workflow (§4):

    + {!prepare} parses the target's architecture prelude plus the user
      program and runs the mid-end passes (constant folding, dead-code
      elimination, stack-index elimination, statement numbering);
    + the target's pipeline template is instantiated
      ({!initial_state});
    + {!Explore.run} symbolically executes the whole-program semantics
      and emits abstract test specifications.

    {!generate} performs all three. *)

type prepared = {
  ctx : Runtime.ctx;
  prog : P4.Ast.program;
  target : (module Target_intf.S);
  prep_time : float;  (** seconds spent in phase 1 (Fig. 7's "IR prep") *)
}

val prepare :
  ?opts:Runtime.options ->
  ?obs:Obs.Registry.t ->
  (module Target_intf.S) ->
  string ->
  prepared
(** [prepare target source] runs phase 1.  Raises
    {!P4.Parser.Error} on syntax errors and {!Runtime.Exec_error} when
    the program does not fit the architecture.  Allocates a fresh
    {!Smt.Expr.ctx} for the run, so any number of prepared values can
    coexist and interleave; terms and solvers never cross runs.

    [obs] is the run's metrics registry (a fresh one is allocated when
    omitted, reachable as [ctx.Runtime.obs] or via {!registry}).  The
    whole stack reports into it: [prepare] records the [prepare] /
    [parse] / [passes] spans and the [oracle.prep_time] timer, and the
    explorer, solver, SAT core and concolic resolver add their own
    metrics during {!Explore.run}. *)

val initial_state : prepared -> Runtime.state
(** Pipeline-template instantiation (phase 2): the returned state has
    the target's block sequence and glue continuations queued. *)

type run = { result : Explore.result; prepared : prepared }

val registry : run -> Obs.Registry.t
(** The run's metrics registry — counters, timers and spans recorded
    by every layer during the run ([= run.prepared.ctx.Runtime.obs]).
    Export it with {!Obs.Trace.write_chrome} or print a
    {!Obs.Registry.snapshot}. *)

val fresh_instance :
  prepared -> Obs.Registry.t -> Runtime.ctx * Runtime.state
(** [fresh_instance p reg] builds an independent replica of the
    prepared run for a worker domain: a fresh term context reporting
    into [reg], over the same already-passed program, re-initialised
    by the same target.  Preparation is deterministic, so the replica's
    initial state is structurally identical to [initial_state p] —
    the soundness basis of {!Explore.run}'s prefix replay.  The
    frontier driver starts subtree tasks from state snapshots and uses
    this replica only as the replay fallback for tasks above
    [config.Explore.snapshot_max_bytes]. *)

val generate :
  ?opts:Runtime.options ->
  ?config:Explore.config ->
  (module Target_intf.S) ->
  string ->
  run
(** End-to-end test generation for a P4 source string.  When
    [config.Explore.path_jobs >= 1], path exploration itself runs on
    worker domains ({!Explore.run}'s frontier driver, seeded with
    {!fresh_instance}); the result is bit-identical for every
    [path_jobs] value [>= 1]. *)

(** {1 Batch driver}

    Runs many oracle jobs across OCaml domains.  Each job owns its
    term context and solver stack (created by its own {!prepare}), so
    jobs share no mutable term state; idle domains pull the next job
    from an atomic queue index.  Results depend only on each job's
    options (seed included), never on scheduling: [jobs = 1] and
    [jobs = N] produce identical test sets per job. *)

type job

val job :
  ?opts:Runtime.options ->
  ?config:Explore.config ->
  label:string ->
  (module Target_intf.S) ->
  string ->
  job
(** [job ~label target source] describes one end-to-end generation
    run, as {!generate} would perform it. *)

type outcome =
  | Finished of run
  | Failed of string  (** exception text of a job that raised *)

type batch = {
  outcomes : (string * outcome) list;
      (** (label, outcome) in submission order *)
  merged_stats : Explore.stats;
      (** the {!Explore.stats} façade projected from [merged_obs] *)
  merged_obs : Obs.Snapshot.t;
      (** per-domain metric registries, merged: counters and timers
          sum, gauges high-water.  Counter totals are scheduling
          independent — [jobs = 1] and [jobs = N] merge equal. *)
  batch_wall : float;  (** wall-clock seconds for the whole batch *)
}

val generate_batch : ?jobs:int -> job list -> batch
(** [generate_batch ~jobs js] runs the jobs on [min jobs (length js)]
    domains (the calling domain included).  [jobs] defaults to 1,
    which runs everything sequentially on the calling domain.  Extra
    domains are drawn from the process-wide {!Explore.Pool}, shared
    with per-job intra-program parallelism
    ([job_config.Explore.path_jobs]), so [jobs × path_jobs] never
    oversubscribes beyond one pool's worth of domains. *)

(** {1 Coverage reporting (§7)} *)

type coverage_report = {
  covered_count : int;
  total_count : int;
  percentage : float;
  uncovered : int list;  (** statement ids never exercised by any test *)
}

val coverage_report : run -> coverage_report
val pp_coverage : Format.formatter -> coverage_report -> unit
