(* Two-phase concolic resolution (§5.4).

   At path end every recorded concolic call must be bound to the value
   its concrete implementation produces.  Phase 1: solve the path
   constraints and read the model values of the call's arguments.
   Phase 2: run the concrete implementation on those values and check
   that binding argument and result equalities keeps the path
   satisfiable.  When it does not, we block the failing argument
   assignment and retry a bounded number of times before discarding
   the path. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Solver = Smt.Solver
open Runtime

let max_retries = 3

type outcome =
  | Resolved of (Expr.t -> Bits.t)  (** model evaluator for the final model *)
  | Infeasible

(* evaluate [e] under the solver model extended with already-computed
   concolic results *)
let eval_with s (computed : (Expr.var * Bits.t) list) (e : Expr.t) : Bits.t =
  Expr.eval
    ~taint:(fun id w -> Solver.model_taint s id w)
    (fun v ->
      match List.find_opt (fun (cv, _) -> cv.Expr.vid = v.Expr.vid) computed with
      | Some (_, b) -> b
      | None -> Solver.model_var s v)
    e

let bindings_of s (calls : concolic_call list) : Expr.t list * Expr.t list =
  (* returns (argument equalities, result equalities) under the
     current model, evaluating calls oldest-first so results of
     earlier calls feed later argument evaluations *)
  let arg_eqs, out_eqs, _ =
    List.fold_left
      (fun (aeqs, oeqs, computed) call ->
        let arg_vals = List.map (eval_with s computed) call.cc_args in
        let out = call.cc_impl arg_vals in
        let aeqs' =
          List.map2
            (fun a v -> Expr.eq a (Expr.const (Expr.ctx_of a) v))
            call.cc_args arg_vals
        in
        let oeq = Expr.eq call.cc_var (Expr.const (Expr.ctx_of call.cc_var) out) in
        (aeqs @ aeqs', oeqs @ [ oeq ], computed @ [ (Expr.var_of call.cc_var, out) ]))
      ([], [], []) calls
  in
  (arg_eqs, out_eqs)

(* [extra] are additional soft assumptions (e.g. randomization
   preferences) applied on a best-effort basis. *)
let resolve ?(extra = []) (s : Solver.t) (st : state) : outcome =
  (* report into the registry of the solver's run *)
  let reg = Solver.obs s in
  let c_blocked = Obs.Registry.counter reg "concolic.blocked" in
  let go () =
    let calls = List.rev st.concolic in
    let try_with assumptions =
      match Solver.check_assuming s assumptions with
      | Solver.Sat -> true
      | Solver.Unsat -> false
    in
    if calls = [] then begin
      if extra <> [] && try_with extra then Resolved (Solver.model_eval s)
      else
        match Solver.check s with
        | Solver.Sat -> Resolved (Solver.model_eval s)
        | Solver.Unsat -> Infeasible
    end
    else begin
      let rec attempt n blocked soft =
        if n > max_retries then Infeasible
        else if not (try_with (blocked @ soft)) then
          if soft <> [] then attempt n blocked [] else Infeasible
        else begin
          (* phase 1 model obtained; compute concrete bindings *)
          let arg_eqs, out_eqs = bindings_of s calls in
          if try_with (blocked @ soft @ arg_eqs @ out_eqs) then
            Resolved (Solver.model_eval s)
          else begin
            (* block this argument assignment and retry (§5.4,
               "handling unsatisfiable concolic assignments") *)
            Obs.Counter.incr c_blocked;
            let block = Expr.bnot (Expr.conj (Solver.ctx s) arg_eqs) in
            attempt (n + 1) (block :: blocked) soft
          end
        end
      in
      attempt 0 [] extra
    end
  in
  let outcome = Obs.Timer.time (Obs.Registry.timer reg "concolic.time") go in
  Obs.Counter.incr
    (Obs.Registry.counter reg
       (match outcome with
       | Resolved _ -> "concolic.resolved"
       | Infeasible -> "concolic.infeasible"));
  outcome
